# Convenience targets for the VideoPipe reproduction.

GO ?= go

.PHONY: all build vet meters lint check test race cover alloc bench chaos heal sandbox shapes fuzz experiments flood floodtune floodgate examples clean

all: build vet test

build:
	$(GO) build ./...

# Go-host static analysis. Cheap pre-steps first (gofmt, go vet), then the
# vpvet analyzer suite (framerelease, determinism, metername,
# lockdiscipline — see DESIGN.md "Static enforcement") over every package,
# then a staleness check of the generated meter registry. Exits non-zero
# on any finding; each step names itself on failure so a red `make check`
# points straight at the offending check.
vet:
	@unformatted=$$(gofmt -l . 2>/dev/null); if [ -n "$$unformatted" ]; then \
		echo "vet failed: gofmt (needs formatting):"; echo "$$unformatted"; exit 1; fi
	@$(GO) vet ./... || { echo "vet failed: go vet"; exit 1; }
	@$(GO) run ./cmd/vpvet ./... || { echo "vet failed: vpvet (findings above; suppress a false positive with //vpvet:allow <check> <reason>)"; exit 1; }
	@$(GO) run ./cmd/vpvet -check-meters ./... || { echo "vet failed: meter registry stale (run make meters)"; exit 1; }

# Regenerate the meter-name registry (internal/metrics/names.go) from
# every statically-visible Meter/Histogram/benchEntry.set name. Run after
# adding a metric; the metername analyzer and vpbench both check against
# the generated file.
meters:
	$(GO) run ./cmd/vpvet -write-meters ./...

# Static analysis: the Go-host suite above, then pipevet over every
# example pipeline config (module scripts + config cross-checks).
lint: vet
	@set -e; for cfg in examples/configs/*.cfg; do \
		$(GO) run ./cmd/videopipe -lint -config $$cfg || { echo "lint failed: pipevet on $$cfg"; exit 1; }; \
	done

# The pre-PR gate: everything that must be green before a change ships.
# `race` reruns the allocation-regression tests under the race detector
# (bounds logged, pool/scratch plumbing race-checked); `alloc` enforces
# the exact allocs/op bounds, which only hold without instrumentation.
check: build lint alloc race shapes

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Allocation-regression gate: steady-state allocs/op on the frame codec
# and wire message paths must stay pinned (near zero) after the buffer
# pool / copy-elision work.
alloc:
	$(GO) test -run 'Allocs|ReleaseGuards' ./internal/frame ./internal/wire

cover:
	$(GO) test -cover ./...

# End-to-end resilience suite: seeded fault schedules against full
# pipelines, race detector on. Override the seed to replay a different
# (still deterministic) fault sequence.
VP_CHAOS_SEED ?= 1
chaos:
	VP_CHAOS_SEED=$(VP_CHAOS_SEED) $(GO) test -race -v -run 'TestChaos' .

# Self-healing gate: the supervised chaos e2e suite (recovery left wholly
# to the supervisor, exact journal assertions) plus the supervisor,
# migration, breaker and snapshot unit tests — all under the race
# detector with a pinned seed.
heal:
	VP_CHAOS_SEED=$(VP_CHAOS_SEED) $(GO) test -race -v -run 'TestChaos' .
	$(GO) test -race -run 'TestSupervisor|TestMigrate|TestBreaker|TestSnapshot' ./internal/core ./internal/services ./internal/script

# Sandbox-governance gate: budget enforcement, kill/quarantine/restart and
# the module-sabotage chaos scenarios (hostile code contained by the
# sandbox, healed by the supervisor), all under the race detector.
sandbox:
	$(GO) test -race -run 'TestBudget|TestPreservationVersion|TestSnapshotCarriesVersion|TestModuleBreach|TestModuleOutput|TestModuleRestore|TestParseConfigLimits|TestEffectiveLimits|TestValidateRejectsBadLimits|TestPV014|TestBuiltinAppsWithin|TestPipelineRestartModule' ./internal/script ./internal/device ./internal/core
	VP_CHAOS_SEED=$(VP_CHAOS_SEED) $(GO) test -race -v -run 'TestChaosResilience/(runaway_module|hog_module)' .

# Pipetype gate: the shape-inference golden corpora (unit, script-level
# and config-level) plus the edge-contract checks and the runtime
# soundness test (inferred ⊇ observed over every shipped module), all
# under the race detector.
shapes:
	$(GO) test -race -run 'TestShape' ./internal/script ./internal/core .

# Short coverage-guided fuzz pass over the PipeScript and config parsers
# plus the sandbox budget enforcer and the shape-inference pass (seed
# corpora alone run in `make test`).
fuzz:
	$(GO) test -fuzz FuzzParse -fuzztime 30s ./internal/script
	$(GO) test -fuzz FuzzBudget -fuzztime 30s ./internal/script
	$(GO) test -fuzz FuzzShapes -fuzztime 30s ./internal/script
	$(GO) test -fuzz FuzzParseConfig -fuzztime 30s ./internal/core

# One measurement window per benchmark; see EXPERIMENTS.md for canonical
# longer-window numbers.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x -run=NONE .

# Regenerate every paper table/figure plus the ablations (takes ~3 min).
experiments:
	$(GO) run ./cmd/vpbench -exp all -dur 3s

# Saturation sweeps over every workload mix: open-loop knee finding with
# the canonical windows (EXPERIMENTS.md X4). Writes BENCH_flood.json.
flood:
	$(GO) run ./cmd/vpflood -sweep -mix all -dur 3s -out BENCH_flood.json

# Quick look at the tuner's effect: tuned-vs-untuned knee on the pose
# mix with short windows (EXPERIMENTS.md X5). The relaxed margin only
# rejects a tuner that actively hurts; use floodgate for the real bar.
floodtune:
	$(GO) run ./cmd/vpflood -tunediff -mix pose -dur 1500ms -tunemargin -0.25 -out ""

# Throughput-regression gate: a fresh tuned-vs-untuned sweep pair diffed
# against the checked-in baseline. Fails when any mix's knee (tuned or
# untuned) drops below the baseline by more than the tolerance, a
# knee-rung tail blows its absolute budget, or a tuned knee falls below
# its untuned knee by more than the margin. The margin floor is -5%, not
# 0: the scripted control mix's tuned gain (~+2%) sits inside run-to-run
# noise, and the gate's job there is "the tuner must not hurt", not "the
# tuner must win the coin flip". Override FLOOD_TOLERANCE /
# FLOOD_TUNEMARGIN for noisier machines (CI uses 0.5 / -0.25).
FLOOD_TOLERANCE ?= 0.15
FLOOD_TUNEMARGIN ?= -0.05
floodgate:
	$(GO) run ./cmd/vpflood -tunediff -mix all -dur 6s -out BENCH_flood.json \
		-gate BENCH_baseline.json -tolerance $(FLOOD_TOLERANCE) \
		-tunemargin $(FLOOD_TUNEMARGIN) -p999budget 600ms

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/fitness -dur 4s
	$(GO) run ./examples/gesture -dur 4s
	$(GO) run ./examples/falldetect -dur 6s
	$(GO) run ./examples/securitycam -dur 6s

clean:
	rm -f fitness_display.png test_output.txt bench_output.txt vpbench_results.txt BENCH_results.json BENCH_flood.json
