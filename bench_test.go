// Benchmark harness regenerating the paper's evaluation (§5). One
// benchmark per table and figure, plus the DESIGN.md ablations and
// microbenchmarks of the substrates. Numbers are reported as custom
// metrics (fps, ms) rather than ns/op, since each "op" is a full pipeline
// measurement window.
//
//	go test -bench=. -benchmem
//
// The vpbench command runs the same experiments with longer, more stable
// measurement windows; EXPERIMENTS.md records the canonical numbers.
package videopipe

import (
	"bytes"
	"context"
	"image/color"
	"sync"
	"testing"
	"time"

	"videopipe/internal/experiments"
	"videopipe/internal/frame"
	"videopipe/internal/script"
	"videopipe/internal/services"
	"videopipe/internal/vision"
	"videopipe/internal/wire"

	"videopipe/internal/netsim"
)

// benchWindow keeps pipeline benchmarks short; vpbench uses 3s windows for
// the canonical numbers.
const benchWindow = 1200 * time.Millisecond

var (
	benchRegOnce sync.Once
	benchReg     *services.Registry
	benchRegErr  error
)

func benchRegistry(b *testing.B) *services.Registry {
	b.Helper()
	benchRegOnce.Do(func() {
		benchReg, benchRegErr = services.NewStandardRegistry(services.DefaultOptions())
	})
	if benchRegErr != nil {
		b.Fatalf("standard registry: %v", benchRegErr)
	}
	return benchReg
}

func benchOptions(b *testing.B) experiments.Options {
	return experiments.Options{RunDuration: benchWindow, Registry: benchRegistry(b)}
}

// ---- Fig. 6: per-stage latency ----

func BenchmarkFig6_StageLatency(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.VideoPipe["pose"].Milliseconds()), "vp_pose_ms")
		b.ReportMetric(float64(res.Baseline["pose"].Milliseconds()), "bl_pose_ms")
		b.ReportMetric(float64(res.VideoPipe["total"].Milliseconds()), "vp_total_ms")
		b.ReportMetric(float64(res.Baseline["total"].Milliseconds()), "bl_total_ms")
	}
}

// ---- Table 2: end-to-end FPS vs source FPS ----

func benchTable2Row(b *testing.B, rate float64, shared bool) {
	o := benchOptions(b)
	var sharedRates []float64
	if shared {
		sharedRates = []float64{rate}
	} else {
		sharedRates = []float64{}
	}
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Table2(o, []float64{rate}, sharedRates)
		if err != nil {
			b.Fatal(err)
		}
		row := rows[0]
		b.ReportMetric(row.VideoPipe, "videopipe_fps")
		b.ReportMetric(row.Baseline, "baseline_fps")
		if row.HasShared {
			b.ReportMetric(row.Shared[0], "shared_fitness_fps")
			b.ReportMetric(row.Shared[1], "shared_gesture_fps")
		}
	}
}

func BenchmarkTable2_Source5FPS(b *testing.B)  { benchTable2Row(b, 5, true) }
func BenchmarkTable2_Source10FPS(b *testing.B) { benchTable2Row(b, 10, true) }
func BenchmarkTable2_Source20FPS(b *testing.B) { benchTable2Row(b, 20, true) }
func BenchmarkTable2_Source30FPS(b *testing.B) { benchTable2Row(b, 30, false) }
func BenchmarkTable2_Source60FPS(b *testing.B) { benchTable2Row(b, 60, false) }

// ---- §4.1.2 / §4.1.3: model accuracy ----

func BenchmarkActivityAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := experiments.ActivityAccuracy(1)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Accuracy*100, "accuracy_pct")
	}
}

func BenchmarkRepCountingAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_, mean, err := experiments.RepCountingAccuracy(24, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(mean*100, "accuracy_pct")
	}
}

// ---- §5.2.2 follow-on: scale-out ----

func BenchmarkScaleOut(b *testing.B) {
	o := benchOptions(b)
	// Contention-vs-capacity differences need a longer window than the
	// other benches to rise above scheduling noise.
	o.RunDuration = 3 * time.Second
	for i := 0; i < b.N; i++ {
		res, err := experiments.ScaleOut(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.Before[0]+res.Before[1], "before_total_fps")
		b.ReportMetric(res.After[0]+res.After[1], "after_total_fps")
	}
}

// ---- Ablations ----

func BenchmarkAblationQueueing(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationQueueing(o, []int{1, 2, 8})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].FPS, "credits1_fps")
		b.ReportMetric(points[1].FPS, "credits2_fps")
		b.ReportMetric(points[2].FPS, "credits8_fps")
		b.ReportMetric(float64(points[2].E2EMean.Milliseconds()), "credits8_e2e_ms")
	}
}

func BenchmarkAblationCodec(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationCodec(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(res.JPEGFPS, "jpeg_fps")
		b.ReportMetric(res.RawFPS, "raw_fps")
	}
}

func BenchmarkAblationBroker(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.AblationBroker(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(res.DirectE2E.Milliseconds()), "direct_e2e_ms")
		b.ReportMetric(float64(res.BrokerE2E.Milliseconds()), "broker_e2e_ms")
	}
}

func BenchmarkAblationWorkers(b *testing.B) {
	o := experiments.Options{RunDuration: benchWindow}
	for i := 0; i < b.N; i++ {
		points, err := experiments.AblationWorkers(o, []int{1, 2})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(points[0].Aggregate, "workers1_total_fps")
		b.ReportMetric(points[1].Aggregate, "workers2_total_fps")
	}
}

// ---- Substrate microbenchmarks ----

func BenchmarkPoseDetect480p(b *testing.B) {
	f := frame.MustNew(480, 360)
	subject := vision.DefaultSubject()
	subject.CenterX, subject.CenterY, subject.Scale = 240, 194, 60
	pose := vision.SynthesizePose(vision.Squat, 0.3, subject, nil)
	vision.RenderScene(f, pose)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := vision.DetectPose(f); !ok {
			b.Fatal("pose lost")
		}
	}
}

func BenchmarkJPEGEncode480p(b *testing.B) {
	f := frame.MustNew(480, 360)
	subject := vision.DefaultSubject()
	subject.CenterX, subject.CenterY, subject.Scale = 240, 194, 60
	vision.RenderScene(f, vision.SynthesizePose(vision.Idle, 0, subject, nil))
	codec := frame.JPEGCodec{Quality: 85}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := codec.Encode(f); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScriptEventDispatch(b *testing.B) {
	ctx := script.NewContext()
	err := ctx.Load(`
		var n = 0;
		function event_received(message) {
			n = n + message.delta;
			return n;
		}
	`)
	if err != nil {
		b.Fatal(err)
	}
	msg := script.NewObject()
	msg.Set("delta", float64(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ctx.Call("event_received", msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWireRPCRoundTrip(b *testing.B) {
	nw := netsim.NewNetwork(netsim.LinkProfile{})
	resp, err := wire.ListenResponder(nw.Host("server"), 0, func(_ context.Context, req wire.Message) (wire.Message, error) {
		return req, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	defer resp.Close()
	caller := wire.DialCaller(nw.Host("client"), resp.Addr().String())
	defer caller.Close()
	msg := wire.StringMessage("ping", "payload")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := caller.Call(context.Background(), msg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkActivityClassify(b *testing.B) {
	cfg := vision.DefaultDatasetConfig()
	cfg.SequencesPerActivity = 8
	ds, err := vision.GenerateDataset(cfg)
	if err != nil {
		b.Fatal(err)
	}
	clf := vision.NewActivityClassifier(3)
	if err := clf.Train(ds.Train); err != nil {
		b.Fatal(err)
	}
	feats := ds.Test[0].Features
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := clf.ClassifyFeatures(feats); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRepCounterObserve(b *testing.B) {
	poses, _ := vision.SynthesizeSequence(vision.Squat, 200, 15, 0.5, vision.DefaultSubject(), nil)
	rc := vision.NewRepCounter(0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rc.Observe(poses[i%len(poses)])
	}
}

func BenchmarkPlannerComparison(b *testing.B) {
	o := benchOptions(b)
	for i := 0; i < b.N; i++ {
		points, err := experiments.ComparePlanners(o)
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			b.ReportMetric(p.FPS, p.Planner+"_fps")
		}
	}
}

// ---- Allocation microbenchmarks (data-plane fast path) ----
//
// Steady-state per-frame traffic should recycle buffers instead of
// allocating: pixel buffers from frame.Pool, wire bytes into per-socket
// scratch. Run with -benchmem; allocs/op is the number under test.

func BenchmarkAllocsRawCodecRoundTrip(b *testing.B) {
	f := frame.MustNewPooled(480, 360)
	defer f.Release()
	f.Fill(color.RGBA{R: 10, G: 20, B: 30, A: 255})
	codec := frame.RawCodec{}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = codec.AppendEncode(buf[:0], f)
		if err != nil {
			b.Fatal(err)
		}
		g, err := codec.Decode(buf)
		if err != nil {
			b.Fatal(err)
		}
		g.Release()
	}
}

func BenchmarkAllocsFrameCloneRelease(b *testing.B) {
	f := frame.MustNew(480, 360)
	f.Fill(color.RGBA{R: 200, G: 100, B: 50, A: 255})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cl := f.Clone()
		cl.Release()
	}
}

func BenchmarkAllocsWireMessageRoundTrip(b *testing.B) {
	m := wire.StringMessage("service", `{"x":1}`, "0123456789abcdef0123456789abcdef")
	var scratch []byte
	rd := bytes.NewReader(nil)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		scratch, err = m.EncodeTo(scratch[:0])
		if err != nil {
			b.Fatal(err)
		}
		rd.Reset(scratch)
		if _, err := wire.ReadMessage(rd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAllocsJPEGEncodeScratch(b *testing.B) {
	f := frame.MustNew(480, 360)
	subject := vision.DefaultSubject()
	subject.CenterX, subject.CenterY, subject.Scale = 240, 194, 60
	vision.RenderScene(f, vision.SynthesizePose(vision.Idle, 0, subject, nil))
	codec := frame.JPEGCodec{Quality: 85}
	var buf []byte
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		buf, err = codec.AppendEncode(buf[:0], f)
		if err != nil {
			b.Fatal(err)
		}
	}
}
