package videopipe

import (
	"fmt"

	"videopipe/internal/core"
	"videopipe/internal/frame"
	"videopipe/internal/wire"
)

// PipelineBuilder assembles a PipelineConfig fluently. Methods that follow
// a Module call configure that module; Source-related methods configure
// the camera end. Errors are deferred to Build so call chains stay clean.
type PipelineBuilder struct {
	cfg  core.PipelineConfig
	errs []error
	cur  int // index of the module being configured, -1 if none
}

// NewPipelineBuilder starts a pipeline with the given name.
func NewPipelineBuilder(name string) *PipelineBuilder {
	return &PipelineBuilder{cfg: core.PipelineConfig{Name: name}, cur: -1}
}

func (b *PipelineBuilder) errf(format string, args ...any) *PipelineBuilder {
	b.errs = append(b.errs, fmt.Errorf(format, args...))
	return b
}

// Module adds a module with the given PipeScript source and makes it the
// target of subsequent Uses/Next/On/Endpoint calls.
func (b *PipelineBuilder) Module(name, source string) *PipelineBuilder {
	b.cfg.Modules = append(b.cfg.Modules, core.ModuleConfig{Name: name, Source: source})
	b.cur = len(b.cfg.Modules) - 1
	return b
}

func (b *PipelineBuilder) current() *core.ModuleConfig {
	if b.cur < 0 {
		return nil
	}
	return &b.cfg.Modules[b.cur]
}

// Uses grants the current module access to the named services.
func (b *PipelineBuilder) Uses(services ...string) *PipelineBuilder {
	m := b.current()
	if m == nil {
		return b.errf("videopipe: Uses(%v) before any Module", services)
	}
	m.Services = append(m.Services, services...)
	return b
}

// Next adds outgoing DAG edges from the current module.
func (b *PipelineBuilder) Next(modules ...string) *PipelineBuilder {
	m := b.current()
	if m == nil {
		return b.errf("videopipe: Next(%v) before any Module", modules)
	}
	m.Next = append(m.Next, modules...)
	return b
}

// On pins the current module to a device, overriding the planner.
func (b *PipelineBuilder) On(deviceName string) *PipelineBuilder {
	m := b.current()
	if m == nil {
		return b.errf("videopipe: On(%q) before any Module", deviceName)
	}
	m.Device = deviceName
	return b
}

// Endpoint fixes the current module's inbound endpoint, in the Listing-1
// grammar (e.g. "bind#tcp://*:5861").
func (b *PipelineBuilder) Endpoint(endpoint string) *PipelineBuilder {
	m := b.current()
	if m == nil {
		return b.errf("videopipe: Endpoint(%q) before any Module", endpoint)
	}
	ep, err := wire.ParseEndpoint(endpoint)
	if err != nil {
		return b.errf("videopipe: module %q: %v", m.Name, err)
	}
	m.Endpoint = ep
	return b
}

// Source sets the camera device and the module that receives its frames.
func (b *PipelineBuilder) Source(deviceName, firstModule string) *PipelineBuilder {
	b.cfg.Source.Device = deviceName
	b.cfg.Source.FirstModule = firstModule
	return b
}

// FPS sets the capture rate.
func (b *PipelineBuilder) FPS(fps float64) *PipelineBuilder {
	b.cfg.Source.FPS = fps
	return b
}

// Resolution sets the capture dimensions.
func (b *PipelineBuilder) Resolution(width, height int) *PipelineBuilder {
	b.cfg.Source.Width = width
	b.cfg.Source.Height = height
	return b
}

// Scene selects a built-in synthetic exercise scene for the source: the
// named activity performed at repRate reps per second.
func (b *PipelineBuilder) Scene(activity string, repRate float64) *PipelineBuilder {
	b.cfg.Source.Scene = activity
	b.cfg.Source.RepRate = repRate
	return b
}

// Renderer installs a custom frame renderer for the source, overriding
// Scene.
func (b *PipelineBuilder) Renderer(r frame.Renderer) *PipelineBuilder {
	b.cfg.Source.Renderer = r
	return b
}

// Build validates and returns the configuration.
func (b *PipelineBuilder) Build() (PipelineConfig, error) {
	if len(b.errs) > 0 {
		return PipelineConfig{}, b.errs[0]
	}
	// Default geometry when unset.
	if b.cfg.Source.Width == 0 && b.cfg.Source.Height == 0 {
		b.cfg.Source.Width, b.cfg.Source.Height = 480, 360
	}
	if b.cfg.Source.FPS == 0 {
		b.cfg.Source.FPS = 15
	}
	if err := b.cfg.Validate(); err != nil {
		return PipelineConfig{}, err
	}
	// Static analysis gate (pipevet): module scripts that reference
	// undefined names, call undeclared services, or target non-edges fail
	// here instead of mid-stream. Warnings are kept for Launch to log.
	if errs := core.AnalysisErrors(core.AnalyzePipeline(&b.cfg)); len(errs) > 0 {
		return PipelineConfig{}, &core.AnalysisError{Pipeline: b.cfg.Name, Diagnostics: errs}
	}
	return b.cfg, nil
}
