// End-to-end resilience suite: replays deterministic fault schedules
// against full home-cluster pipelines and asserts the system recovers.
// Each scenario runs three windows — clean, faulted, clean — and must
// return to >= 90% of its pre-fault delivered rate, with the injected
// event sequence exactly reproducing the seeded schedule.
//
// The seed defaults to 1 and can be overridden with VP_CHAOS_SEED
// (`make chaos` pins it explicitly).
package videopipe_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"
	"time"

	"videopipe/internal/chaos"
	"videopipe/internal/experiments"
	"videopipe/internal/services"
	"videopipe/internal/vision"
)

// chaosReg builds the standard services with tiny simulated costs so the
// suite measures flow control and recovery, not model latency. Shared
// across the chaos tests; trained once.
var (
	chaosRegOnce sync.Once
	chaosRegVal  *services.Registry
	chaosRegErr  error
)

func chaosReg(t *testing.T) *services.Registry {
	t.Helper()
	chaosRegOnce.Do(func() {
		opts := services.DefaultOptions()
		opts.PoseCost = 15 * time.Millisecond
		opts.ActivityCost = 2 * time.Millisecond
		opts.RepCost = time.Millisecond
		opts.DisplayCost = time.Millisecond
		opts.FallCost = time.Millisecond
		cfg := vision.DefaultDatasetConfig()
		cfg.SequencesPerActivity = 6
		cfg.FramesPerSequence = 45
		opts.DatasetConfig = cfg
		chaosRegVal, chaosRegErr = services.NewStandardRegistry(opts)
	})
	if chaosRegErr != nil {
		t.Fatalf("NewStandardRegistry: %v", chaosRegErr)
	}
	return chaosRegVal
}

// chaosSeed reads the suite seed, defaulting to 1.
func chaosSeed(t *testing.T) int64 {
	t.Helper()
	v := os.Getenv("VP_CHAOS_SEED")
	if v == "" {
		return 1
	}
	n, err := strconv.ParseInt(v, 10, 64)
	if err != nil {
		t.Fatalf("bad VP_CHAOS_SEED %q: %v", v, err)
	}
	return n
}

// resolveSchedule mirrors how the experiment derives each scenario's
// fault plan, so the suite can assert the run matched it exactly.
func resolveSchedule(sc experiments.ChaosScenario, seed int64) chaos.Schedule {
	if sc.Schedule != nil {
		return sc.Schedule.Sorted()
	}
	if sc.Gen != nil {
		return chaos.Generate(seed, *sc.Gen)
	}
	return nil
}

// scenarioHealthy applies the recovery acceptance bar to one run. The
// primary criterion is the sampled Recovery metric: after the last fault
// reverses, the delivered rate must re-sustain >= 90% of the pre-fault
// rate. The clean post-fault window must also hold that bar, relaxed
// under the race detector where compute-bound jitter dominates the few
// frames a short window delivers.
func scenarioHealthy(row experiments.ChaosRow) error {
	if row.PreFPS <= 0 {
		return fmt.Errorf("pre-fault window delivered nothing (pre %.2f fps)", row.PreFPS)
	}
	if row.Recovery < 0 {
		return fmt.Errorf("delivered rate never re-sustained 90%% of pre-fault %.2f fps", row.PreFPS)
	}
	bar := 0.9
	if chaosRaceBuild {
		bar = 0.7
	}
	if row.PostFPS < bar*row.PreFPS {
		return fmt.Errorf("post-fault fps %.2f below %.0f%% of pre-fault %.2f",
			row.PostFPS, bar*100, row.PreFPS)
	}
	return nil
}

// coLocatedContained applies the containment bar to a module-sabotage run:
// while the hostile module is breaching, being killed and restarted, the
// co-located gesture pipeline must keep >= 90% of its pre-fault rate (the
// sandbox aborts the runaway handler in bounded time, so neighbours never
// starve). Relaxed under the race detector like the recovery bar.
func coLocatedContained(row experiments.ChaosRow) error {
	if row.CoPreFPS <= 0 {
		return fmt.Errorf("co-located pre-fault window delivered nothing (pre %.2f fps)", row.CoPreFPS)
	}
	bar := 0.9
	if chaosRaceBuild {
		bar = 0.7
	}
	if row.CoDuringFPS < bar*row.CoPreFPS {
		return fmt.Errorf("co-located during-fault fps %.2f below %.0f%% of pre-fault %.2f",
			row.CoDuringFPS, bar*100, row.CoPreFPS)
	}
	return nil
}

func TestChaosResilience(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos e2e needs multi-second measurement windows")
	}
	reg := chaosReg(t)
	seed := chaosSeed(t)
	baseline := runtime.NumGoroutine()

	// Scenarios where the fault freezes whole stages long enough for the
	// monitor's stall detector to flag the pipeline degraded. With the
	// supervisor in the loop a killed pool restarts within a couple of
	// probe intervals — faster than the 500 ms stall bar — so only faults
	// it must wait out (a reboot) or detect slowly (a device death) still
	// show degraded time.
	wantDegraded := map[string]bool{"desktop_reboot": true, "device_crash": true}

	// The supervisor's recovery journal per scenario. The injector runs
	// with ExternalRepair, so every entry here is the only reason the
	// scenario recovers — and the journal is seed-deterministic by
	// construction (no timestamps, sorted iteration, config-order
	// targets), so these are exact matches, never retried.
	wantJournal := map[string][]string{
		"flaky_wifi":     {}, // link faults heal on their own; no intervention
		"desktop_reboot": {}, // reboot completes before the dead-declaration bar
		"pose_pool_kill": {"restart_service " + services.PoseDetector},
		"device_crash": {
			"device_dead tv",
			"redeploy_service " + services.Display + " tv->desktop",
			"migrate_module chaos_device_crash.display tv->desktop",
		},
		// Module sabotage: the sandbox kills the hostile module after
		// repeated budget breaches and the supervisor restarts it once,
		// from its original source.
		"runaway_module": {"restart_module chaos_runaway_module.rep_counter"},
		"hog_module":     {"restart_module chaos_hog_module.activity_recognition"},
	}

	// Module-sabotage scenarios additionally assert containment: the
	// co-located gesture pipeline keeps its rate during the fault.
	wantContained := map[string]bool{"runaway_module": true, "hog_module": true}

	for _, sc := range experiments.SupervisedChaosScenarios() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			opts := experiments.Options{RunDuration: 2 * time.Second, Registry: reg, Supervise: true}

			// The recovery bar is statistical (delivered-rate windows on a
			// loaded scheduler), so one retry absorbs machine noise; the
			// determinism assertions below never get a retry.
			var row experiments.ChaosRow
			const attempts = 2
			for i := 1; ; i++ {
				rows, err := experiments.Chaos(opts, seed, []experiments.ChaosScenario{sc})
				if err != nil {
					t.Fatalf("Chaos: %v", err)
				}
				row = rows[0]
				herr := scenarioHealthy(row)
				if herr == nil && wantContained[sc.Name] {
					herr = coLocatedContained(row)
				}
				if herr == nil {
					break
				}
				if i < attempts {
					t.Logf("attempt %d: %v; retrying", i, herr)
					continue
				}
				t.Errorf("after %d attempts: %v", attempts, herr)
				break
			}
			t.Logf("pre %.2f fps, during %.2f, post %.2f, recovery %v, degraded %.1fs",
				row.PreFPS, row.DuringFPS, row.PostFPS, row.Recovery, row.DegradedSeconds)
			if wantContained[sc.Name] {
				t.Logf("co-located pre %.2f fps, during %.2f", row.CoPreFPS, row.CoDuringFPS)
			}

			// Determinism: the run's fingerprint matches the schedule
			// re-derived from the same seed, and the injector applied
			// exactly that event sequence, in order.
			want := resolveSchedule(sc, seed)
			if len(want) == 0 {
				t.Fatal("scenario resolved to an empty schedule")
			}
			if got := want.Fingerprint(); row.Fingerprint != got {
				t.Errorf("fingerprint mismatch:\nrun:  %q\nre-derived: %q", row.Fingerprint, got)
			}
			if len(row.Applied) != len(want) {
				t.Fatalf("applied %d faults, schedule has %d: %v", len(row.Applied), len(want), row.Applied)
			}
			for i, ev := range want {
				got := row.Applied[i]
				if got.Kind != ev.Kind || got.Target != ev.Target || got.At != ev.At {
					t.Errorf("applied[%d] = %v, schedule wants %v", i, got, ev)
				}
			}

			if wantDegraded[sc.Name] && row.DegradedSeconds <= 0 {
				t.Errorf("monitor observed no degraded time for %s", sc.Name)
			}

			// Recovery journal: exactly the expected actions, in order.
			wantJ, known := wantJournal[sc.Name]
			if !known {
				t.Fatalf("no expected journal for scenario %s", sc.Name)
			}
			if len(row.Journal) != len(wantJ) {
				t.Fatalf("journal = %v, want %v", row.Journal, wantJ)
			}
			for i := range wantJ {
				if row.Journal[i] != wantJ[i] {
					t.Fatalf("journal = %v, want %v", row.Journal, wantJ)
				}
			}
		})
	}

	waitNoGoroutineLeak(t, baseline)
}

// TestChaosSameSeedSameSchedule asserts in-suite that replaying a seed
// yields byte-identical fault plans for every default scenario, and that
// a different seed actually perturbs the generated ones.
func TestChaosSameSeedSameSchedule(t *testing.T) {
	seed := chaosSeed(t)
	for _, sc := range experiments.SupervisedChaosScenarios() {
		a := resolveSchedule(sc, seed)
		b := resolveSchedule(sc, seed)
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: same seed produced different schedules:\n%s\n---\n%s",
				sc.Name, a.Fingerprint(), b.Fingerprint())
		}
		if sc.Gen != nil {
			c := resolveSchedule(sc, seed+1)
			if a.Fingerprint() == c.Fingerprint() {
				t.Errorf("%s: seeds %d and %d generated identical schedules", sc.Name, seed, seed+1)
			}
		}
	}
}

// waitNoGoroutineLeak polls until the goroutine count returns to the
// pre-suite baseline (plus scheduler slack), failing with a full stack
// dump if it never drains.
func waitNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Errorf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
			return
		}
		time.Sleep(50 * time.Millisecond)
	}
}
