//go:build !race

package videopipe_test

// chaosRaceBuild reports whether the race detector is active.
const chaosRaceBuild = false
