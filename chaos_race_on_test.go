//go:build race

package videopipe_test

// chaosRaceBuild reports that the race detector is active: pixel work is
// compute-bound and an order of magnitude slower, so the chaos suite's
// window-ratio recovery bar is relaxed (the sampled Recovery metric still
// demands a sustained 90% of the pre-fault rate).
const chaosRaceBuild = true
