// Command videopipe deploys and runs a pipeline described by a
// Listing-1-style configuration file on a simulated home cluster (phone +
// desktop + TV on Wi-Fi with the standard services).
//
// Usage:
//
//	videopipe -config fitness.cfg
//	videopipe -config app.cfg -planner baseline -duration 10s -fps 30
//	videopipe -lint -config app.cfg
//
// The config dialect matches the paper's Listing 1; include() paths
// resolve relative to the config file. Run with -example to print a
// ready-to-use config instead of running one, or with -lint to run the
// pipevet static analyzer over a config without deploying it: every
// diagnostic is printed and the exit status is non-zero when any is an
// error.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	"videopipe"
)

const exampleConfig = `// Example pipeline for the videopipe command.
// Save as app.cfg, put module code in PoseWatch.js next to it, then:
//   videopipe -config app.cfg
modules : [
	{ name: streamer
	  source: "function event_received(m) { call_module('watch', {frame_ref: m.frame_ref, captured_ms: m.captured_ms}); }"
	  next_module: watch }
	{ name: watch
	  include ("PoseWatch.js")
	  service: ['pose_detector'] }
]
source : { device: phone, module: streamer, fps: 15,
           width: 480, height: 360, scene: squat, rep_rate: 0.5 }
`

func main() {
	var (
		configPath = flag.String("config", "", "pipeline configuration file (Listing-1 dialect)")
		plannerArg = flag.String("planner", "videopipe", "deployment plan: videopipe|baseline|pinned|cost")
		duration   = flag.Duration("duration", 10*time.Second, "how long to run the pipeline")
		fps        = flag.Float64("fps", 0, "override the config's source frame rate")
		verbose    = flag.Bool("verbose", false, "print module log() output")
		example    = flag.Bool("example", false, "print an example config and exit")
		lint       = flag.Bool("lint", false, "statically analyze the config and exit (no deployment)")
		jsonOut    = flag.Bool("json", false, "with -lint, emit diagnostics as a JSON array on stdout")
		werror     = flag.Bool("Werror", false, "with -lint, treat warnings as errors (nonzero exit on any finding)")
	)
	flag.Parse()

	if *example {
		fmt.Print(exampleConfig)
		return
	}
	if *lint {
		os.Exit(runLint(*configPath, *jsonOut, *werror, os.Stdout, os.Stderr))
	}
	if err := run(*configPath, *plannerArg, *duration, *fps, *verbose); err != nil {
		fmt.Fprintln(os.Stderr, "videopipe:", err)
		os.Exit(1)
	}
}

func run(configPath, plannerArg string, duration time.Duration, fps float64, verbose bool) error {
	if configPath == "" {
		return fmt.Errorf("missing -config (use -example for a starting point)")
	}
	text, err := os.ReadFile(configPath)
	if err != nil {
		return err
	}
	name := strings.TrimSuffix(filepath.Base(configPath), filepath.Ext(configPath))
	cfg, err := videopipe.ParseConfig(name, string(text), videopipe.FileResolver(filepath.Dir(configPath)))
	if err != nil {
		return err
	}
	if fps > 0 {
		cfg.Source.FPS = fps
	}

	var planner videopipe.Planner
	switch plannerArg {
	case "videopipe":
		planner = videopipe.CoLocatePlanner{}
	case "baseline":
		planner = videopipe.BaselinePlanner{}
	case "pinned":
		planner = videopipe.PinnedPlanner{}
	case "cost":
		planner = videopipe.CostAwarePlanner{}
	default:
		return fmt.Errorf("unknown planner %q (videopipe|baseline|pinned|cost)", plannerArg)
	}

	fmt.Println("building standard services (training activity classifier)...")
	registry, err := videopipe.NewStandardServices(videopipe.DefaultServiceOptions())
	if err != nil {
		return err
	}

	spec := videopipe.HomeClusterSpec()
	if plannerArg == "baseline" {
		spec = videopipe.BaselineClusterSpec()
	}
	// The config may declare its own deployment (devices/services
	// sections); when present it overrides the default home cluster.
	if declared, found, err := videopipe.ParseClusterSpecText(string(text)); err != nil {
		return err
	} else if found {
		if len(declared.Devices) > 0 {
			spec.Devices = declared.Devices
		}
		if len(declared.Services) > 0 {
			spec.Services = declared.Services
		}
	}
	cluster, err := videopipe.NewCluster(spec, registry)
	if err != nil {
		return err
	}
	defer cluster.Close()

	if verbose {
		for _, dn := range cluster.DeviceNames() {
			d, _ := cluster.Device(dn)
			d.SetLogf(func(format string, args ...any) {
				fmt.Printf(format+"\n", args...)
			})
		}
	}

	pipeline, err := cluster.Launch(*cfg, planner)
	if err != nil {
		return err
	}
	fmt.Printf("pipeline %q deployed with the %s plan:\n", cfg.Name, pipeline.PlannerName())
	for _, m := range pipeline.Modules() {
		fmt.Printf("  %-24s on %s\n", m, pipeline.Placement()[m])
	}

	fmt.Printf("running for %v at %g fps source...\n\n", duration, cfg.Source.FPS)
	result, err := pipeline.Run(context.Background(), duration)
	if err != nil {
		return err
	}
	fmt.Print(result)
	return nil
}

// lintJSONDiag is the machine-readable form of one pipevet/pipecost
// finding, mirroring the field layout of `vpvet -json` so CI can consume
// both with one schema.
type lintJSONDiag struct {
	File     string `json:"file"`
	Module   string `json:"module,omitempty"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Code     string `json:"code"`
	Severity string `json:"severity"`
	Message  string `json:"message"`
}

// runLint statically analyzes a config with pipevet and reports every
// diagnostic without deploying anything. The return value is the process
// exit status: 0 when the pipeline is deployable (warnings allowed),
// 1 when the config fails to parse/validate or any diagnostic is an error.
// With werror, warnings also fail the lint (exit 1 on any finding); the
// diagnostics themselves keep their severities. With jsonOut, the
// diagnostics go to stdout as an indented JSON array (structural errors
// still print to stderr).
func runLint(configPath string, jsonOut, werror bool, stdout, stderr io.Writer) int {
	diags, err := lintConfig(configPath)
	errors := 0
	for _, d := range diags {
		if d.Severity == videopipe.SeverityError {
			errors++
		}
		if !jsonOut {
			fmt.Fprintf(stderr, "%s: %s\n", configPath, d)
		}
	}
	if jsonOut {
		out := make([]lintJSONDiag, 0, len(diags))
		for _, d := range diags {
			out = append(out, lintJSONDiag{
				File:     configPath,
				Module:   d.Module,
				Line:     d.Pos.Line,
				Col:      d.Pos.Col,
				Code:     d.Code,
				Severity: d.Severity.String(),
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if encErr := enc.Encode(out); encErr != nil {
			fmt.Fprintln(stderr, "videopipe:", encErr)
			return 1
		}
	}
	if err != nil {
		fmt.Fprintln(stderr, "videopipe:", err)
		return 1
	}
	if errors > 0 {
		fmt.Fprintf(stderr, "%s: %d error(s), %d warning(s)\n", configPath, errors, len(diags)-errors)
		return 1
	}
	if werror && len(diags) > 0 {
		fmt.Fprintf(stderr, "%s: %d warning(s) promoted to errors by -Werror\n", configPath, len(diags))
		return 1
	}
	if !jsonOut {
		fmt.Fprintf(stdout, "%s: ok (%d warning(s))\n", configPath, len(diags))
	}
	return 0
}

// lintConfig parses a Listing-1 config and runs the full analyzer over it.
// Structural problems (unreadable file, parse failure, Validate errors)
// come back as err alongside whatever script diagnostics were gathered.
func lintConfig(configPath string) ([]videopipe.Diagnostic, error) {
	if configPath == "" {
		return nil, fmt.Errorf("missing -config (use -example for a starting point)")
	}
	text, err := os.ReadFile(configPath)
	if err != nil {
		return nil, err
	}
	name := strings.TrimSuffix(filepath.Base(configPath), filepath.Ext(configPath))
	cfg, err := videopipe.ParseConfig(name, string(text), videopipe.FileResolver(filepath.Dir(configPath)))
	if err != nil {
		return nil, err
	}
	diags := videopipe.AnalyzePipeline(cfg)
	if err := cfg.Validate(); err != nil {
		return diags, err
	}
	return diags, nil
}
