package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeTestConfig(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := `
modules : [
	{ name: streamer
	  source: "function event_received(m) { call_module('watch', {frame_ref: m.frame_ref, captured_ms: m.captured_ms}); }"
	  next_module: watch }
	{ name: watch
	  include ("Watch.js")
	  service: ['pose_detector'] }
]
source : { device: phone, module: streamer, fps: 15,
           width: 480, height: 360, scene: squat, rep_rate: 0.5 }
`
	js := `
function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	if (r.found) { metric("found", 1); }
	metric("lag_ms", now_ms() - message.captured_ms);
	frame_done();
}
`
	path := filepath.Join(dir, "app.cfg")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Watch.js"), []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full service registry")
	}
	path := writeTestConfig(t)
	if err := run(path, "videopipe", 1500*time.Millisecond, 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "videopipe", time.Second, 0, false); err == nil {
		t.Error("missing config accepted")
	}
	if err := run("/nonexistent/path.cfg", "videopipe", time.Second, 0, false); err == nil {
		t.Error("unreadable config accepted")
	}
	path := writeTestConfig(t)
	if err := run(path, "warpdrive", time.Second, 0, false); err == nil {
		t.Error("unknown planner accepted")
	}
}

func TestRunBaselinePlanner(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full service registry")
	}
	path := writeTestConfig(t)
	if err := run(path, "baseline", time.Second, 10, true); err != nil {
		t.Fatalf("run baseline: %v", err)
	}
}

// writeBrokenConfig produces a config whose module calls a service it
// never declares — structurally valid, statically wrong.
func writeBrokenConfig(t *testing.T) string {
	t.Helper()
	cfg := `
modules : [
	{ name: watch
	  source: "function event_received(m) { call_service('pose_detector', {frame_ref: m.frame_ref}); frame_done(); }" }
]
source : { device: phone, module: watch, fps: 15, width: 480, height: 360 }
`
	path := filepath.Join(t.TempDir(), "broken.cfg")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintCleanConfig(t *testing.T) {
	path := writeTestConfig(t)
	var out, errOut strings.Builder
	if code := runLint(path, false, false, &out, &errOut); code != 0 {
		t.Fatalf("lint exit = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestLintBrokenConfig(t *testing.T) {
	path := writeBrokenConfig(t)
	var out, errOut strings.Builder
	if code := runLint(path, false, false, &out, &errOut); code != 1 {
		t.Fatalf("lint exit = %d, want 1", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, "PV101") || !strings.Contains(msg, "pose_detector") {
		t.Errorf("stderr lacks the PV101 diagnostic:\n%s", msg)
	}
	// Diagnostics are positioned: config path prefix plus line:col.
	if !strings.Contains(msg, path+": module watch: 1:") {
		t.Errorf("stderr lacks a positioned diagnostic:\n%s", msg)
	}
}

func TestLintErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := runLint("", false, false, &out, &errOut); code != 1 {
		t.Error("missing -config accepted")
	}
	if code := runLint("/nonexistent/path.cfg", false, false, &out, &errOut); code != 1 {
		t.Error("unreadable config accepted")
	}
	// Unparseable config text.
	bad := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(bad, []byte("modules : ["), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runLint(bad, false, false, &out, &errOut); code != 1 {
		t.Error("unparseable config accepted")
	}
}

// writeUnboundedConfig produces a deployable config whose module has a
// statically unbounded loop — a pipecost PV012 warning, not an error.
func writeUnboundedConfig(t *testing.T) string {
	t.Helper()
	cfg := `
modules : [
	{ name: watch
	  source: "function event_received(m) { while (m.seq > 0) { m.seq--; } frame_done(); }" }
]
source : { device: phone, module: watch, fps: 15, width: 480, height: 360 }
`
	path := filepath.Join(t.TempDir(), "unbounded.cfg")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLintJSON checks the machine-readable output: a JSON array on stdout
// carrying pipevet and pipecost findings, empty array for clean configs.
func TestLintJSON(t *testing.T) {
	path := writeUnboundedConfig(t)
	var out, errOut strings.Builder
	if code := runLint(path, true, false, &out, &errOut); code != 0 {
		t.Fatalf("lint exit = %d (warnings must not fail), stderr:\n%s", code, errOut.String())
	}
	var diags []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	found := false
	for _, d := range diags {
		if d["code"] == "PV012" {
			found = true
			if d["severity"] != "warning" {
				t.Errorf("PV012 severity = %v, want warning", d["severity"])
			}
			if d["module"] != "watch" {
				t.Errorf("PV012 module = %v, want watch", d["module"])
			}
			if d["file"] != path {
				t.Errorf("PV012 file = %v, want %s", d["file"], path)
			}
		}
	}
	if !found {
		t.Errorf("JSON output lacks the PV012 finding:\n%s", out.String())
	}

	// Clean config: an empty JSON array, nothing else on stdout.
	clean := writeTestConfig(t)
	out.Reset()
	errOut.Reset()
	if code := runLint(clean, true, false, &out, &errOut); code != 0 {
		t.Fatalf("clean lint exit = %d", code)
	}
	var empty []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &empty); err != nil {
		t.Fatalf("clean stdout is not JSON: %v\n%s", err, out.String())
	}
	if len(empty) != 0 {
		t.Errorf("clean config produced findings: %v", empty)
	}

	// Broken config: JSON still emitted, exit stays 1.
	broken := writeBrokenConfig(t)
	out.Reset()
	errOut.Reset()
	if code := runLint(broken, true, false, &out, &errOut); code != 1 {
		t.Fatalf("broken lint exit = %d, want 1", code)
	}
	var brokenDiags []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &brokenDiags); err != nil {
		t.Fatalf("broken stdout is not JSON: %v\n%s", err, out.String())
	}
	if len(brokenDiags) == 0 {
		t.Error("broken config produced no JSON findings")
	}
}

// writeShapeErrorConfig produces a config whose producer misspells a field
// the consumer reads — a pipetype PV015 error on the edge.
func writeShapeErrorConfig(t *testing.T) string {
	t.Helper()
	cfg := `
modules : [
	{ name: streamer
	  source: "function event_received(m) { call_module('sink', {valu: m.seq, frame_ref: m.frame_ref}); }"
	  next_module: sink }
	{ name: sink
	  source: "function event_received(m) { metric('v', m.value); frame_done(); }" }
]
source : { device: phone, module: streamer, fps: 15, width: 480, height: 360 }
`
	path := filepath.Join(t.TempDir(), "shapeerr.cfg")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestLintWerror: warnings pass by default but fail under -Werror, and the
// JSON stream carries the pipetype codes.
func TestLintWerror(t *testing.T) {
	warny := writeUnboundedConfig(t)
	var out, errOut strings.Builder
	if code := runLint(warny, false, true, &out, &errOut); code != 1 {
		t.Fatalf("lint -Werror exit = %d, want 1; stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(errOut.String(), "-Werror") {
		t.Errorf("stderr does not mention -Werror:\n%s", errOut.String())
	}

	// A clean config still exits 0 under -Werror.
	clean := writeTestConfig(t)
	out.Reset()
	errOut.Reset()
	if code := runLint(clean, false, true, &out, &errOut); code != 0 {
		t.Fatalf("clean lint -Werror exit = %d, stderr:\n%s", code, errOut.String())
	}
}

// TestLintJSONShapeCodes: the pipetype edge-contract findings surface in
// the machine-readable output with their code and position.
func TestLintJSONShapeCodes(t *testing.T) {
	path := writeShapeErrorConfig(t)
	var out, errOut strings.Builder
	if code := runLint(path, true, false, &out, &errOut); code != 1 {
		t.Fatalf("lint exit = %d, want 1", code)
	}
	var diags []map[string]any
	if err := json.Unmarshal([]byte(out.String()), &diags); err != nil {
		t.Fatalf("stdout is not a JSON array: %v\n%s", err, out.String())
	}
	found := false
	for _, d := range diags {
		if d["code"] == "PV015" {
			found = true
			if d["severity"] != "error" {
				t.Errorf("PV015 severity = %v, want error", d["severity"])
			}
			if d["module"] != "sink" {
				t.Errorf("PV015 module = %v, want sink", d["module"])
			}
			if line, _ := d["line"].(float64); line == 0 {
				t.Errorf("PV015 lost its position: %v", d)
			}
		}
	}
	if !found {
		t.Errorf("JSON output lacks the PV015 finding:\n%s", out.String())
	}
}
