package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func writeTestConfig(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	cfg := `
modules : [
	{ name: streamer
	  source: "function event_received(m) { call_module('watch', {frame_ref: m.frame_ref, captured_ms: m.captured_ms}); }"
	  next_module: watch }
	{ name: watch
	  include ("Watch.js")
	  service: ['pose_detector'] }
]
source : { device: phone, module: streamer, fps: 15,
           width: 480, height: 360, scene: squat, rep_rate: 0.5 }
`
	js := `
function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	if (r.found) { metric("found", 1); }
	frame_done();
}
`
	path := filepath.Join(dir, "app.cfg")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "Watch.js"), []byte(js), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRunWithConfig(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full service registry")
	}
	path := writeTestConfig(t)
	if err := run(path, "videopipe", 1500*time.Millisecond, 0, false); err != nil {
		t.Fatalf("run: %v", err)
	}
}

func TestRunErrors(t *testing.T) {
	if err := run("", "videopipe", time.Second, 0, false); err == nil {
		t.Error("missing config accepted")
	}
	if err := run("/nonexistent/path.cfg", "videopipe", time.Second, 0, false); err == nil {
		t.Error("unreadable config accepted")
	}
	path := writeTestConfig(t)
	if err := run(path, "warpdrive", time.Second, 0, false); err == nil {
		t.Error("unknown planner accepted")
	}
}

func TestRunBaselinePlanner(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full service registry")
	}
	path := writeTestConfig(t)
	if err := run(path, "baseline", time.Second, 10, true); err != nil {
		t.Fatalf("run baseline: %v", err)
	}
}

// writeBrokenConfig produces a config whose module calls a service it
// never declares — structurally valid, statically wrong.
func writeBrokenConfig(t *testing.T) string {
	t.Helper()
	cfg := `
modules : [
	{ name: watch
	  source: "function event_received(m) { call_service('pose_detector', {frame_ref: m.frame_ref}); frame_done(); }" }
]
source : { device: phone, module: watch, fps: 15, width: 480, height: 360 }
`
	path := filepath.Join(t.TempDir(), "broken.cfg")
	if err := os.WriteFile(path, []byte(cfg), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestLintCleanConfig(t *testing.T) {
	path := writeTestConfig(t)
	var out, errOut strings.Builder
	if code := runLint(path, &out, &errOut); code != 0 {
		t.Fatalf("lint exit = %d, stderr:\n%s", code, errOut.String())
	}
	if !strings.Contains(out.String(), "ok") {
		t.Errorf("stdout = %q", out.String())
	}
}

func TestLintBrokenConfig(t *testing.T) {
	path := writeBrokenConfig(t)
	var out, errOut strings.Builder
	if code := runLint(path, &out, &errOut); code != 1 {
		t.Fatalf("lint exit = %d, want 1", code)
	}
	msg := errOut.String()
	if !strings.Contains(msg, "PV101") || !strings.Contains(msg, "pose_detector") {
		t.Errorf("stderr lacks the PV101 diagnostic:\n%s", msg)
	}
	// Diagnostics are positioned: config path prefix plus line:col.
	if !strings.Contains(msg, path+": module watch: 1:") {
		t.Errorf("stderr lacks a positioned diagnostic:\n%s", msg)
	}
}

func TestLintErrors(t *testing.T) {
	var out, errOut strings.Builder
	if code := runLint("", &out, &errOut); code != 1 {
		t.Error("missing -config accepted")
	}
	if code := runLint("/nonexistent/path.cfg", &out, &errOut); code != 1 {
		t.Error("unreadable config accepted")
	}
	// Unparseable config text.
	bad := filepath.Join(t.TempDir(), "bad.cfg")
	if err := os.WriteFile(bad, []byte("modules : ["), 0o644); err != nil {
		t.Fatal(err)
	}
	if code := runLint(bad, &out, &errOut); code != 1 {
		t.Error("unparseable config accepted")
	}
}
