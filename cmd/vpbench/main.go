// Command vpbench regenerates the paper's evaluation (§5): Fig. 6's
// per-stage latencies, Table 2's frame-rate sweep (including the shared
// two-pipeline column), the §4.1 model-accuracy claims, the §5.2.2
// scale-out follow-on, and the ablations from DESIGN.md.
//
// Usage:
//
//	vpbench -exp table2            # one experiment
//	vpbench -exp all -dur 3s       # everything, 3s measurement windows
//
// Experiments: fig6, table2, activity, repcount, scaleout, queueing,
// codec, broker, workers, planners, chaos, all. The chaos experiment
// replays a seeded fault schedule (-seed) and prints a recovery-time
// table per scenario.
//
// Alongside the text report, vpbench writes a machine-readable
// BENCH_results.json (-out) holding every experiment's fps/latency
// metrics, its wall time and heap-allocation cost, and the data-plane
// counters (frame.pool.hit/miss, wire.bytes_copied).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"videopipe/internal/benchio"
	"videopipe/internal/experiments"
	"videopipe/internal/metrics"
	"videopipe/internal/services"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment to run: fig6|table2|activity|repcount|scaleout|queueing|codec|broker|workers|planners|chaos|all")
		dur       = flag.Duration("dur", 3*time.Second, "measurement window per configuration")
		scene     = flag.String("scene", "squat", "exercise the synthetic subject performs")
		seed      = flag.Int64("seed", 1, "seed for the accuracy experiments and the chaos fault schedule")
		out       = flag.String("out", "BENCH_results.json", "machine-readable report path (empty disables)")
		supervise = flag.Bool("supervise", false, "run chaos under the self-healing supervisor (adds the device_crash scenario; the injector stops repairing pools itself)")
	)
	flag.Parse()

	// Fail fast before any experiment runs: -out keys are validated
	// against the generated meter registry at write time, so an empty or
	// missing registry would only surface after minutes of benchmarking.
	if *out != "" && len(metrics.MeterNamePatterns) == 0 {
		fmt.Fprintln(os.Stderr, "vpbench: meter-name registry is empty; regenerate internal/metrics/names.go with `make meters`")
		os.Exit(2)
	}

	if err := run(*exp, *dur, *scene, *seed, *out, *supervise); err != nil {
		fmt.Fprintln(os.Stderr, "vpbench:", err)
		os.Exit(1)
	}
}

func run(exp string, dur time.Duration, scene string, seed int64, out string, supervise bool) error {
	opts := experiments.Options{RunDuration: dur, Scene: scene, Supervise: supervise}

	// The heavier pipeline experiments share one paper-calibrated registry
	// so the classifier trains once.
	needsRegistry := map[string]bool{
		"fig6": true, "table2": true, "scaleout": true,
		"queueing": true, "codec": true, "broker": true,
		"planners": true, "chaos": true, "all": true,
	}
	if needsRegistry[exp] {
		fmt.Println("building standard services (training activity classifier)...")
		reg, err := services.NewStandardRegistry(services.DefaultOptions())
		if err != nil {
			return err
		}
		opts.Registry = reg
	}

	report := &benchio.Report{
		GeneratedAt: time.Now().UTC(),
		Scene:       scene,
		WindowMS:    float64(dur) / float64(time.Millisecond),
		Seed:        seed,
	}

	all := exp == "all"
	ran := false
	dispatch := []struct {
		name string
		fn   func(experiments.Options, *benchio.Entry) error
	}{
		{"fig6", runFig6},
		{"table2", runTable2},
		{"activity", func(o experiments.Options, e *benchio.Entry) error { return runActivity(seed, e) }},
		{"repcount", func(o experiments.Options, e *benchio.Entry) error { return runRepCount(seed, e) }},
		{"scaleout", runScaleOut},
		{"queueing", runQueueing},
		{"codec", runCodec},
		{"broker", runBroker},
		{"workers", runWorkers},
		{"planners", runPlanners},
		{"chaos", func(o experiments.Options, e *benchio.Entry) error { return runChaos(o, seed, e) }},
	}
	for _, d := range dispatch {
		if all || exp == d.name {
			err := report.Measure(d.name, func(e *benchio.Entry) error { return d.fn(opts, e) })
			if err != nil {
				return fmt.Errorf("%s: %w", d.name, err)
			}
			ran = true
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q", exp)
	}
	if out != "" {
		if err := report.Write(out); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d experiments)\n", out, len(report.Experiments))
	}
	return nil
}

func header(title string) {
	fmt.Printf("\n=== %s ===\n", title)
}

func runFig6(o experiments.Options, e *benchio.Entry) error {
	header("Fig. 6 — per-stage latency, fitness pipeline @ 10 FPS source")
	res, err := experiments.Fig6(o)
	if err != nil {
		return err
	}
	fmt.Print(res.Table())
	fmt.Println("(paper shape: VideoPipe below baseline on pose and total; pose dominates the gap)")
	for stage, d := range res.VideoPipe {
		e.SetDurationMS("videopipe."+stage+"_ms", d)
	}
	for stage, d := range res.Baseline {
		e.SetDurationMS("baseline."+stage+"_ms", d)
	}
	return nil
}

func runTable2(o experiments.Options, e *benchio.Entry) error {
	header("Table 2 — end-to-end FPS vs source FPS")
	rows, err := experiments.Table2(o, nil, nil)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatTable2(rows))
	fmt.Println("(paper shape: both track the source at 5; VideoPipe saturates ~11, baseline ~8.3;")
	fmt.Println(" shared pipelines match solo rates until ~20, then contention caps each lower)")
	for _, r := range rows {
		src := fmt.Sprintf("%g", r.SourceFPS)
		e.Set("videopipe_fps_"+src, r.VideoPipe)
		e.Set("baseline_fps_"+src, r.Baseline)
		if r.HasShared {
			e.Set("shared_fitness_fps_"+src, r.Shared[0])
			e.Set("shared_gesture_fps_"+src, r.Shared[1])
		}
	}
	return nil
}

func runActivity(seed int64, e *benchio.Entry) error {
	header("§4.1.2 — activity recognition accuracy (withheld test set)")
	res, err := experiments.ActivityAccuracy(seed)
	if err != nil {
		return err
	}
	fmt.Printf("accuracy: %.1f%% over %d test windows (trained on %d)\n",
		res.Accuracy*100, res.TestN, res.TrainN)
	fmt.Println("(paper reports: above 90%)")
	e.Set("accuracy", res.Accuracy)
	e.Set("test_n", float64(res.TestN))
	e.Set("train_n", float64(res.TrainN))
	return nil
}

func runRepCount(seed int64, e *benchio.Entry) error {
	header("§4.1.3 — rep counting accuracy (withheld test set)")
	trials, mean, err := experiments.RepCountingAccuracy(24, seed)
	if err != nil {
		return err
	}
	for _, tr := range trials {
		fmt.Printf("  %-15s predicted %2d  truth %2d  accuracy %.2f\n",
			tr.Activity, tr.Predicted, tr.Truth, tr.Accuracy)
	}
	fmt.Printf("mean accuracy: %.1f%% over %d trials\n", mean*100, len(trials))
	fmt.Println("(paper reports: 83.3%)")
	e.Set("mean_accuracy", mean)
	e.Set("trials", float64(len(trials)))
	return nil
}

func runScaleOut(o experiments.Options, e *benchio.Entry) error {
	header("§5.2.2 — scaling out the saturated pose service")
	res, err := experiments.ScaleOut(o)
	if err != nil {
		return err
	}
	fmt.Printf("1 instance:  fitness %.2f fps, gesture %.2f fps\n", res.Before[0], res.Before[1])
	fmt.Printf("2 instances: fitness %.2f fps, gesture %.2f fps\n", res.After[0], res.After[1])
	fmt.Println("(expected: scaling the stateless service restores per-pipeline rates)")
	e.Set("before_fitness_fps", res.Before[0])
	e.Set("before_gesture_fps", res.Before[1])
	e.Set("after_fitness_fps", res.After[0])
	e.Set("after_gesture_fps", res.After[1])
	return nil
}

func runQueueing(o experiments.Options, e *benchio.Entry) error {
	header("Ablation — queue-free flow control vs deeper admission")
	points, err := experiments.AblationQueueing(o, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %12s\n", "credits", "FPS", "e2e mean")
	for _, p := range points {
		fmt.Printf("%-8d %10.2f %12s\n", p.Credits, p.FPS, p.E2EMean.Round(time.Millisecond))
		key := fmt.Sprintf("credits_%d", p.Credits)
		e.Set(key+"_fps", p.FPS)
		e.SetDurationMS(key+"_e2e_ms", p.E2EMean)
	}
	fmt.Println("(expected: FPS flat beyond 2 credits while latency keeps rising)")
	return nil
}

func runCodec(o experiments.Options, e *benchio.Entry) error {
	header("Ablation — JPEG vs raw frame transfer")
	res, err := experiments.AblationCodec(o)
	if err != nil {
		return err
	}
	fmt.Printf("jpeg: %6.2f fps, e2e %v\n", res.JPEGFPS, res.JPEGE2E.Round(time.Millisecond))
	fmt.Printf("raw:  %6.2f fps, e2e %v\n", res.RawFPS, res.RawE2E.Round(time.Millisecond))
	e.Set("jpeg_fps", res.JPEGFPS)
	e.SetDurationMS("jpeg_e2e_ms", res.JPEGE2E)
	e.Set("raw_fps", res.RawFPS)
	e.SetDurationMS("raw_e2e_ms", res.RawE2E)
	return nil
}

func runBroker(o experiments.Options, e *benchio.Entry) error {
	header("Ablation — brokerless transfer vs broker hop (§3.2)")
	res, err := experiments.AblationBroker(o)
	if err != nil {
		return err
	}
	fmt.Printf("direct:   %6.2f fps, e2e %v\n", res.DirectFPS, res.DirectE2E.Round(time.Millisecond))
	fmt.Printf("brokered: %6.2f fps, e2e %v\n", res.BrokerFPS, res.BrokerE2E.Round(time.Millisecond))
	e.Set("direct_fps", res.DirectFPS)
	e.SetDurationMS("direct_e2e_ms", res.DirectE2E)
	e.Set("broker_fps", res.BrokerFPS)
	e.SetDurationMS("broker_e2e_ms", res.BrokerE2E)
	return nil
}

func runPlanners(o experiments.Options, e *benchio.Entry) error {
	header("Extension — placement strategies compared (fitness @ 20 FPS)")
	points, err := experiments.ComparePlanners(o)
	if err != nil {
		return err
	}
	fmt.Printf("%-16s %10s %12s\n", "planner", "FPS", "e2e mean")
	for _, p := range points {
		fmt.Printf("%-16s %10.2f %12s\n", p.Planner, p.FPS, p.E2EMean.Round(time.Millisecond))
		e.Set(p.Planner+"_fps", p.FPS)
		e.SetDurationMS(p.Planner+"_e2e_ms", p.E2EMean)
	}
	fmt.Println("(expected: latency-aware derives the co-located plan; both beat the baseline)")
	return nil
}

func runChaos(o experiments.Options, seed int64, e *benchio.Entry) error {
	if o.Supervise {
		header("Resilience — supervised fault injection and self-healing recovery")
	} else {
		header("Resilience — deterministic fault injection and recovery")
	}
	var scenarios []experiments.ChaosScenario
	if o.Supervise {
		scenarios = experiments.SupervisedChaosScenarios()
	}
	rows, err := experiments.Chaos(o, seed, scenarios)
	if err != nil {
		return err
	}
	fmt.Print(experiments.FormatChaos(rows, seed))
	for _, r := range rows {
		fmt.Printf("\n%s schedule:\n%s\n", r.Scenario, r.Fingerprint)
		e.Set(r.Scenario+"_pre_fps", r.PreFPS)
		e.Set(r.Scenario+"_during_fps", r.DuringFPS)
		e.Set(r.Scenario+"_post_fps", r.PostFPS)
		e.SetDurationMS(r.Scenario+"_recovery_ms", r.Recovery)
		if o.Supervise {
			e.Set(r.Scenario+"_recovery_actions", float64(len(r.Journal)))
		}
	}
	if o.Supervise {
		fmt.Println("(expected: every scenario — including the permanent device crash — back within 10% of pre-fault; recovery is the supervisor's alone)")
	} else {
		fmt.Println("(expected: post-fault FPS within 10% of pre-fault; same seed replays the same schedule)")
	}
	return nil
}

func runWorkers(o experiments.Options, e *benchio.Entry) error {
	header("Ablation — pose service worker concurrency under shared load")
	points, err := experiments.AblationWorkers(o, nil)
	if err != nil {
		return err
	}
	fmt.Printf("%-8s %10s %10s %10s\n", "workers", "fitness", "gesture", "aggregate")
	for _, p := range points {
		fmt.Printf("%-8d %10.2f %10.2f %10.2f\n", p.Workers, p.Fitness, p.Gesture, p.Aggregate)
		key := fmt.Sprintf("workers_%d", p.Workers)
		e.Set(key+"_fitness_fps", p.Fitness)
		e.Set(key+"_gesture_fps", p.Gesture)
		e.Set(key+"_aggregate_fps", p.Aggregate)
	}
	return nil
}
