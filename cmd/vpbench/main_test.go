package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("warpdrive", time.Second, "squat", 1, "", false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAccuracyExperiments(t *testing.T) {
	// The accuracy experiments need no pipeline runs and finish quickly.
	if err := run("activity", time.Second, "squat", 1, "", false); err != nil {
		t.Fatalf("activity: %v", err)
	}
	if err := run("repcount", time.Second, "squat", 1, "", false); err != nil {
		t.Fatalf("repcount: %v", err)
	}
}

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := run("activity", time.Second, "squat", 1, out, false); err != nil {
		t.Fatalf("activity: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep benchReport
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "activity" {
		t.Fatalf("report experiments = %+v, want one activity entry", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.Metrics["accuracy"] <= 0 || e.Metrics["accuracy"] > 1 {
		t.Errorf("accuracy metric = %v, want in (0, 1]", e.Metrics["accuracy"])
	}
	if e.Mallocs == 0 || e.DurationMS <= 0 {
		t.Errorf("cost fields not populated: mallocs=%d duration=%vms", e.Mallocs, e.DurationMS)
	}
	for _, key := range []string{"frame.pool.hit", "frame.pool.miss", "wire.bytes_copied"} {
		if _, ok := rep.Counters[key]; !ok {
			t.Errorf("report missing counter %q", key)
		}
	}
}

func TestRunFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full service registry and runs pipelines")
	}
	if err := run("fig6", 1200*time.Millisecond, "squat", 1, "", false); err != nil {
		t.Fatalf("fig6: %v", err)
	}
}
