package main

import (
	"testing"
	"time"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("warpdrive", time.Second, "squat", 1); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAccuracyExperiments(t *testing.T) {
	// The accuracy experiments need no pipeline runs and finish quickly.
	if err := run("activity", time.Second, "squat", 1); err != nil {
		t.Fatalf("activity: %v", err)
	}
	if err := run("repcount", time.Second, "squat", 1); err != nil {
		t.Fatalf("repcount: %v", err)
	}
}

func TestRunFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full service registry and runs pipelines")
	}
	if err := run("fig6", 1200*time.Millisecond, "squat", 1); err != nil {
		t.Fatalf("fig6: %v", err)
	}
}
