package main

import (
	"videopipe/internal/benchio"

	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestRunUnknownExperiment(t *testing.T) {
	if err := run("warpdrive", time.Second, "squat", 1, "", false); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunAccuracyExperiments(t *testing.T) {
	// The accuracy experiments need no pipeline runs and finish quickly.
	if err := run("activity", time.Second, "squat", 1, "", false); err != nil {
		t.Fatalf("activity: %v", err)
	}
	if err := run("repcount", time.Second, "squat", 1, "", false); err != nil {
		t.Fatalf("repcount: %v", err)
	}
}

func TestRunWritesReport(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := run("activity", time.Second, "squat", 1, out, false); err != nil {
		t.Fatalf("activity: %v", err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatalf("report not written: %v", err)
	}
	var rep benchio.Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if len(rep.Experiments) != 1 || rep.Experiments[0].Name != "activity" {
		t.Fatalf("report experiments = %+v, want one activity entry", rep.Experiments)
	}
	e := rep.Experiments[0]
	if e.Metrics["accuracy"] <= 0 || e.Metrics["accuracy"] > 1 {
		t.Errorf("accuracy metric = %v, want in (0, 1]", e.Metrics["accuracy"])
	}
	if e.Mallocs == 0 || e.DurationMS <= 0 {
		t.Errorf("cost fields not populated: mallocs=%d duration=%vms", e.Mallocs, e.DurationMS)
	}
	for _, key := range []string{"frame.pool.hit", "frame.pool.miss", "wire.bytes_copied"} {
		if _, ok := rep.Counters[key]; !ok {
			t.Errorf("report missing counter %q", key)
		}
	}
}

// TestValidateKeys pins the registry gate on -out: a report carrying a
// key outside the generated meter registry must refuse to write.
func TestValidateKeys(t *testing.T) {
	rep := &benchio.Report{}
	good := &benchio.Entry{Name: "activity"}
	good.Set("accuracy", 0.9)
	good.Set("trials", 10)
	rep.Experiments = append(rep.Experiments, good)
	if err := rep.ValidateKeys(); err != nil {
		t.Fatalf("registered keys rejected: %v", err)
	}

	bad := &benchio.Entry{Name: "rogue"}
	bad.Set("accurracy", 0.9) //vpvet:allow metername deliberate typo exercising the runtime gate
	rep.Experiments = append(rep.Experiments, bad)
	err := rep.ValidateKeys()
	if err == nil {
		t.Fatal("unregistered key accepted")
	}
	for _, want := range []string{"rogue", "accurracy"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not name %q", err, want)
		}
	}
	out := filepath.Join(t.TempDir(), "BENCH_results.json")
	if werr := rep.Write(out); werr == nil {
		t.Fatal("write succeeded with an unregistered key")
	}
	if _, serr := os.Stat(out); serr == nil {
		t.Error("report file was written despite the validation failure")
	}
}

func TestRunFig6Quick(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the full service registry and runs pipelines")
	}
	if err := run("fig6", 1200*time.Millisecond, "squat", 1, "", false); err != nil {
		t.Fatalf("fig6: %v", err)
	}
}
