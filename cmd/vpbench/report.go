package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/metrics"
	"videopipe/internal/wire"
)

// benchEntry is one experiment's machine-readable record: what it measured
// (fps / latency metrics, flat key -> number) plus what it cost to run
// (wall time and heap allocation deltas from runtime.MemStats).
type benchEntry struct {
	Name       string             `json:"name"`
	DurationMS float64            `json:"duration_ms"`
	AllocBytes uint64             `json:"alloc_bytes"`
	Mallocs    uint64             `json:"mallocs"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// set records one named measurement on the entry.
func (e *benchEntry) set(key string, v float64) {
	if e.Metrics == nil {
		e.Metrics = make(map[string]float64)
	}
	e.Metrics[key] = v
}

// setDurationMS records a latency measurement in milliseconds.
func (e *benchEntry) setDurationMS(key string, d time.Duration) {
	//vpvet:allow metername pass-through; the literal key is checked at setDurationMS call sites
	e.set(key, float64(d)/float64(time.Millisecond))
}

// benchReport is the BENCH_results.json document: the text report's
// numbers, machine-readable, so CI and EXPERIMENTS.md diffs need no
// stdout scraping.
type benchReport struct {
	GeneratedAt time.Time         `json:"generated_at"`
	Scene       string            `json:"scene"`
	WindowMS    float64           `json:"window_ms"`
	Seed        int64             `json:"seed"`
	Experiments []*benchEntry     `json:"experiments"`
	Counters    map[string]uint64 `json:"counters"`
}

// measure runs fn as one experiment, capturing wall time and the heap
// allocation delta around it.
func (r *benchReport) measure(name string, fn func(e *benchEntry) error) error {
	e := &benchEntry{Name: name}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn(e)
	e.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	runtime.ReadMemStats(&after)
	e.AllocBytes = after.TotalAlloc - before.TotalAlloc
	e.Mallocs = after.Mallocs - before.Mallocs
	if err != nil {
		return err
	}
	r.Experiments = append(r.Experiments, e)
	return nil
}

// validateKeys checks every experiment's metric keys against the
// generated meter registry (internal/metrics/names.go). The metername
// analyzer already proves the literal parts of each key at build time;
// this is the runtime backstop for the dynamically-assembled ones, so the
// -out JSON can never carry a name the rest of the system (tests, the
// monitor, EXPERIMENTS.md tooling) does not know.
func (r *benchReport) validateKeys() error {
	var bad []string
	for _, e := range r.Experiments {
		for key := range e.Metrics {
			if !metrics.KnownMetricName(key) {
				bad = append(bad, fmt.Sprintf("%s: %q", e.Name, key))
			}
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("unregistered metric key(s) in benchmark output (regenerate the registry with `make meters` if intentional):\n  %s",
		joinLines(bad))
}

func joinLines(lines []string) string {
	out := ""
	for i, l := range lines {
		if i > 0 {
			out += "\n  "
		}
		out += l
	}
	return out
}

// write validates the metric keys, snapshots the data-plane counters and
// writes the report to path.
func (r *benchReport) write(path string) error {
	if err := r.validateKeys(); err != nil {
		return err
	}
	hits, misses := frame.PoolStats()
	r.Counters = map[string]uint64{
		"frame.pool.hit":    hits,
		"frame.pool.miss":   misses,
		"wire.bytes_copied": wire.BytesCopied(),
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	fmt.Printf("\nwrote %s (%d experiments)\n", path, len(r.Experiments))
	return nil
}
