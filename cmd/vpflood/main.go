// Command vpflood is the open-loop saturation harness: it floods fleets
// of pipelines with a seeded arrival schedule, reports latency
// percentiles and achieved-vs-offered throughput, and sweeps offered rate
// up a geometric ladder until the latency knee appears.
//
// Usage:
//
//	vpflood -mix pose -rate 5                 # one run at a fixed rate
//	vpflood -sweep -mix all                   # knee-finding sweeps, all mixes
//	vpflood -sweep -gate BENCH_baseline.json  # sweep, then regression-gate
//
// Mixes: pose (fitness pipelines), multistage (fitness/gesture/fall
// rotation), scripted (pure-PipeScript stages, no services), all.
//
// Sweeps write one BENCH_results.json row per ladder step plus a
// per-mix knee summary (-out); every metric key is validated against the
// generated meter registry, like vpbench. With -gate, the fresh knee
// entries are diffed against a checked-in baseline report: the build
// fails when knee throughput drifts past -tolerance or p99 exceeds
// -p99budget.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"videopipe/internal/benchio"
	"videopipe/internal/experiments"
	"videopipe/internal/flood"
	"videopipe/internal/metrics"
)

func main() {
	var (
		mix       = flag.String("mix", "pose", "workload mix: pose|multistage|scripted|all")
		pipelines = flag.Int("pipelines", 4, "concurrent pipelines per run")
		rate      = flag.Float64("rate", 5, "offered events/sec per pipeline (single-run mode)")
		dur       = flag.Duration("dur", 3*time.Second, "injection window per run")
		process   = flag.String("process", "poisson", "inter-arrival process: poisson|uniform")
		seed      = flag.Int64("seed", 1, "schedule seed; same seed, byte-identical schedules")
		sweep     = flag.Bool("sweep", false, "step offered rate up a ladder until the latency knee")
		start     = flag.Float64("start", 1, "sweep: first per-pipeline rate (events/sec)")
		factor    = flag.Float64("factor", 2, "sweep: rate multiplier between steps")
		maxsteps  = flag.Int("maxsteps", 8, "sweep: maximum ladder steps")
		p99budget = flag.Duration("p99budget", 250*time.Millisecond, "sweep stop / gate: end-to-end p99 ceiling")
		minach    = flag.Float64("minachieved", 0.95, "sweep stop: minimum achieved/offered fraction")
		out       = flag.String("out", "BENCH_results.json", "machine-readable report path (empty disables)")
		gate      = flag.String("gate", "", "baseline report to regression-gate a sweep against (implies -sweep)")
		tolerance = flag.Float64("tolerance", 0.15, "gate: allowed relative knee_eps drift")
	)
	flag.Parse()

	// Fail fast: report keys are validated against the generated meter
	// registry at write time; an empty registry would only surface after
	// the sweeps finish.
	if *out != "" && len(metrics.MeterNamePatterns) == 0 {
		fmt.Fprintln(os.Stderr, "vpflood: meter-name registry is empty; regenerate internal/metrics/names.go with `make meters`")
		os.Exit(2)
	}

	err := run(config{
		mix:       *mix,
		pipelines: *pipelines,
		rate:      *rate,
		dur:       *dur,
		process:   *process,
		seed:      *seed,
		sweep:     *sweep || *gate != "",
		start:     *start,
		factor:    *factor,
		maxsteps:  *maxsteps,
		p99budget: *p99budget,
		minach:    *minach,
		out:       *out,
		gate:      *gate,
		tolerance: *tolerance,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpflood:", err)
		os.Exit(1)
	}
}

type config struct {
	mix       string
	pipelines int
	rate      float64
	dur       time.Duration
	process   string
	seed      int64
	sweep     bool
	start     float64
	factor    float64
	maxsteps  int
	p99budget time.Duration
	minach    float64
	out       string
	gate      string
	tolerance float64
}

func (c config) mixes() ([]experiments.FloodMix, error) {
	if c.mix == "all" {
		return experiments.FloodMixes(), nil
	}
	m := experiments.FloodMix(c.mix)
	if _, err := experiments.FloodScenarioFor(m); err != nil {
		return nil, err
	}
	return []experiments.FloodMix{m}, nil
}

func run(c config) error {
	proc, err := flood.ParseProcess(c.process)
	if err != nil {
		return err
	}
	mixes, err := c.mixes()
	if err != nil {
		return err
	}
	report := &benchio.Report{
		GeneratedAt: time.Now().UTC(),
		WindowMS:    float64(c.dur) / float64(time.Millisecond),
		Seed:        c.seed,
	}
	base := flood.Options{
		Pipelines: c.pipelines,
		Horizon:   c.dur,
		Process:   proc,
		Seed:      c.seed,
	}
	for _, m := range mixes {
		sc, err := experiments.FloodScenarioFor(m)
		if err != nil {
			return err
		}
		if c.sweep {
			if err := runSweep(report, sc, base, c); err != nil {
				return err
			}
		} else {
			if err := runSingle(report, sc, base, c); err != nil {
				return err
			}
		}
	}
	if c.out != "" {
		if err := report.Write(c.out); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d entries)\n", c.out, len(report.Experiments))
	}
	if c.gate != "" {
		baseline, err := benchio.Read(c.gate)
		if err != nil {
			return err
		}
		diff, gerr := flood.Gate(baseline, report, flood.GateOptions{
			Tolerance: c.tolerance,
			P99Budget: c.p99budget,
		})
		fmt.Printf("\nregression gate vs %s:\n%s", c.gate, diff)
		if gerr != nil {
			return gerr
		}
		fmt.Println("gate: ok")
	}
	return nil
}

func runSingle(report *benchio.Report, sc experiments.FloodScenario, base flood.Options, c config) error {
	base.Rate = c.rate
	fmt.Printf("== %s: %d pipelines x %.3g eps (%s, %v, seed %d)\n",
		sc.Mix, base.Pipelines, base.Rate, base.Process, base.Horizon, base.Seed)
	return report.Measure(string(sc.Mix)+"_run", func(e *benchio.Entry) error {
		res, err := flood.Run(sc, base)
		if err != nil {
			return err
		}
		recordRun(e, base.Rate, res)
		fmt.Print(formatRun(res))
		return nil
	})
}

func runSweep(report *benchio.Report, sc experiments.FloodScenario, base flood.Options, c config) error {
	fmt.Printf("== %s: sweeping %d pipelines from %.3g eps x%.3g (%s, %v/step, seed %d)\n",
		sc.Mix, base.Pipelines, c.start, c.factor, base.Process, base.Horizon, base.Seed)
	sw, err := flood.Sweep(sc, flood.SweepOptions{
		Base:        base,
		StartRate:   c.start,
		Factor:      c.factor,
		MaxSteps:    c.maxsteps,
		P99Budget:   c.p99budget,
		MinAchieved: c.minach,
	})
	if err != nil {
		return err
	}
	kneeP99 := time.Duration(0)
	for i, st := range sw.Steps {
		e := &benchio.Entry{Name: fmt.Sprintf("%s_step%d", sc.Mix, i)}
		recordRun(e, st.Rate, st.Result)
		report.Experiments = append(report.Experiments, e)
		fmt.Printf("  step %d: offered %7.2f eps  achieved %7.2f eps  p99 %v  drops %d\n",
			i, st.Result.OfferedEPS, st.Result.AchievedEPS, st.Result.E2E.P99, st.Result.DroppedSource)
		if st.Result.AchievedEPS == sw.KneeEPS {
			kneeP99 = st.Result.E2E.P99
		}
	}
	knee := &benchio.Entry{Name: string(sc.Mix) + "_knee"}
	knee.Set("knee_eps", sw.KneeEPS)
	knee.Set("steps", float64(len(sw.Steps)))
	knee.SetDurationMS("p99_ms", kneeP99)
	report.Experiments = append(report.Experiments, knee)
	fmt.Printf("  knee: %.2f eps aggregate (%s)\n", sw.KneeEPS, sw.StopReason)
	return nil
}

// recordRun writes one run's metrics onto a report entry. Keys are
// literal so the metername analyzer registers and checks them.
func recordRun(e *benchio.Entry, ratePerPipeline float64, r flood.Result) {
	e.Set("pipelines", float64(r.Pipelines))
	e.Set("rate_per_pipeline_eps", ratePerPipeline)
	e.Set("offered_eps", r.OfferedEPS)
	e.Set("achieved_eps", r.AchievedEPS)
	e.Set("delivered", float64(r.Delivered))
	e.Set("dropped_source", float64(r.DroppedSource))
	e.SetDurationMS("p50_ms", r.E2E.P50)
	e.SetDurationMS("p95_ms", r.E2E.P95)
	e.SetDurationMS("p99_ms", r.E2E.P99)
	e.SetDurationMS("p999_ms", r.E2E.P999)
	e.SetDurationMS("gen_lateness_p99_ms", r.GenLateness.P99)
}

func formatRun(r flood.Result) string {
	return fmt.Sprintf(
		"  offered %.2f eps (%d events)  achieved %.2f eps  admitted %d  dropped %d\n"+
			"  e2e p50 %v  p95 %v  p99 %v  p99.9 %v  (gen lateness p99 %v)\n",
		r.OfferedEPS, r.Offered, r.AchievedEPS, r.Admitted, r.DroppedSource,
		r.E2E.P50, r.E2E.P95, r.E2E.P99, r.E2E.P999, r.GenLateness.P99)
}
