// Command vpflood is the open-loop saturation harness: it floods fleets
// of pipelines with a seeded arrival schedule, reports latency
// percentiles and achieved-vs-offered throughput, and sweeps offered rate
// up a geometric ladder until the latency knee appears.
//
// Usage:
//
//	vpflood -mix pose -rate 5                 # one run at a fixed rate
//	vpflood -sweep -mix all                   # knee-finding sweeps, all mixes
//	vpflood -sweep -gate BENCH_baseline.json  # sweep, then regression-gate
//	vpflood -sweep -tune                      # sweep with the adaptive tuner on
//	vpflood -tunediff -mix pose               # tuned vs untuned knee diff
//
// Mixes: pose (fitness pipelines), multistage (fitness/gesture/fall
// rotation), scripted (pure-PipeScript stages, no services), all.
//
// Sweeps write one BENCH_results.json row per ladder step plus a
// per-mix knee summary (-out); every metric key is validated against the
// generated meter registry, like vpbench. Tuned sweeps (-tune) write
// their rows under <mix>_tuned_* names, so tuned and untuned baselines
// coexist in one report. With -gate, the fresh knee entries are diffed
// against a checked-in baseline report: the build fails when knee
// throughput drifts past -tolerance or any set tail budget (-p95budget,
// -p99budget, -p999budget) is exceeded. With -tunediff, each mix is swept
// twice — tuner off, then on — and the build fails when the tuned knee
// does not beat the untuned one by at least -tunemargin. -profile writes
// pprof CPU/heap profiles per sweep step.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"videopipe/internal/benchio"
	"videopipe/internal/experiments"
	"videopipe/internal/flood"
	"videopipe/internal/metrics"
)

func main() {
	var (
		mix        = flag.String("mix", "pose", "workload mix: pose|multistage|scripted|all")
		pipelines  = flag.Int("pipelines", 4, "concurrent pipelines per run")
		rate       = flag.Float64("rate", 5, "offered events/sec per pipeline (single-run mode)")
		dur        = flag.Duration("dur", 3*time.Second, "injection window per run")
		process    = flag.String("process", "poisson", "inter-arrival process: poisson|uniform")
		seed       = flag.Int64("seed", 1, "schedule seed; same seed, byte-identical schedules")
		sweep      = flag.Bool("sweep", false, "step offered rate up a ladder until the latency knee")
		start      = flag.Float64("start", 1, "sweep: first per-pipeline rate (events/sec)")
		factor     = flag.Float64("factor", 2, "sweep: rate multiplier between steps")
		maxsteps   = flag.Int("maxsteps", 8, "sweep: maximum ladder steps")
		p99budget  = flag.Duration("p99budget", 400*time.Millisecond, "sweep stop / gate: end-to-end p99 ceiling")
		minach     = flag.Float64("minachieved", 0.85, "sweep: delivery floor for a rung to count toward the knee")
		collapse   = flag.Float64("collapse", 0.75, "sweep stop: achieved/offered fraction ending the ladder")
		out        = flag.String("out", "BENCH_results.json", "machine-readable report path (empty disables)")
		gate       = flag.String("gate", "", "baseline report to regression-gate a sweep against (implies -sweep)")
		tolerance  = flag.Float64("tolerance", 0.15, "gate: allowed relative knee_eps drift")
		p95budget  = flag.Duration("p95budget", 0, "gate: absolute knee p95 ceiling (0 skips)")
		p999budget = flag.Duration("p999budget", 0, "gate: absolute knee p99.9 ceiling (0 skips)")
		tune       = flag.Bool("tune", false, "run the adaptive runtime tuner (batching/scaling/credits/re-planning)")
		tunediff   = flag.Bool("tunediff", false, "sweep each mix untuned then tuned and compare knees (implies -sweep)")
		tunemargin = flag.Float64("tunemargin", 0, "tunediff: minimum relative tuned-over-untuned knee improvement")
		profile    = flag.String("profile", "", "sweep: directory for per-step pprof CPU/heap profiles")
	)
	flag.Parse()

	// Fail fast: report keys are validated against the generated meter
	// registry at write time; an empty registry would only surface after
	// the sweeps finish.
	if *out != "" && len(metrics.MeterNamePatterns) == 0 {
		fmt.Fprintln(os.Stderr, "vpflood: meter-name registry is empty; regenerate internal/metrics/names.go with `make meters`")
		os.Exit(2)
	}

	err := run(config{
		mix:        *mix,
		pipelines:  *pipelines,
		rate:       *rate,
		dur:        *dur,
		process:    *process,
		seed:       *seed,
		sweep:      *sweep || *gate != "" || *tunediff,
		start:      *start,
		factor:     *factor,
		maxsteps:   *maxsteps,
		p99budget:  *p99budget,
		minach:     *minach,
		collapse:   *collapse,
		out:        *out,
		gate:       *gate,
		tolerance:  *tolerance,
		p95budget:  *p95budget,
		p999budget: *p999budget,
		tune:       *tune,
		tunediff:   *tunediff,
		tunemargin: *tunemargin,
		profile:    *profile,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vpflood:", err)
		os.Exit(1)
	}
}

type config struct {
	mix        string
	pipelines  int
	rate       float64
	dur        time.Duration
	process    string
	seed       int64
	sweep      bool
	start      float64
	factor     float64
	maxsteps   int
	p99budget  time.Duration
	minach     float64
	collapse   float64
	out        string
	gate       string
	tolerance  float64
	p95budget  time.Duration
	p999budget time.Duration
	tune       bool
	tunediff   bool
	tunemargin float64
	profile    string
}

func (c config) mixes() ([]experiments.FloodMix, error) {
	if c.mix == "all" {
		return experiments.FloodMixes(), nil
	}
	m := experiments.FloodMix(c.mix)
	if _, err := experiments.FloodScenarioFor(m); err != nil {
		return nil, err
	}
	return []experiments.FloodMix{m}, nil
}

func run(c config) error {
	proc, err := flood.ParseProcess(c.process)
	if err != nil {
		return err
	}
	mixes, err := c.mixes()
	if err != nil {
		return err
	}
	report := &benchio.Report{
		GeneratedAt: time.Now().UTC(),
		WindowMS:    float64(c.dur) / float64(time.Millisecond),
		Seed:        c.seed,
	}
	base := flood.Options{
		Pipelines: c.pipelines,
		Horizon:   c.dur,
		Process:   proc,
		Seed:      c.seed,
	}
	for _, m := range mixes {
		sc, err := experiments.FloodScenarioFor(m)
		if err != nil {
			return err
		}
		switch {
		case c.tunediff:
			if err := runTuneDiff(report, sc, base, c); err != nil {
				return err
			}
		case c.sweep:
			if _, err := runSweep(report, sc, base, c, c.tune); err != nil {
				return err
			}
		default:
			if err := runSingle(report, sc, base, c); err != nil {
				return err
			}
		}
	}
	if c.out != "" {
		if err := report.Write(c.out); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s (%d entries)\n", c.out, len(report.Experiments))
	}
	if c.gate != "" {
		baseline, err := benchio.Read(c.gate)
		if err != nil {
			return err
		}
		diff, gerr := flood.Gate(baseline, report, flood.GateOptions{
			Tolerance:  c.tolerance,
			P99Budget:  c.p99budget,
			P95Budget:  c.p95budget,
			P999Budget: c.p999budget,
		})
		fmt.Printf("\nregression gate vs %s:\n%s", c.gate, diff)
		if gerr != nil {
			return gerr
		}
		fmt.Println("gate: ok")
	}
	return nil
}

func runSingle(report *benchio.Report, sc experiments.FloodScenario, base flood.Options, c config) error {
	base.Rate = c.rate
	base.Tune = c.tune
	name, label := string(sc.Mix)+"_run", ""
	if c.tune {
		name, label = string(sc.Mix)+"_tuned_run", ", tuned"
	}
	fmt.Printf("== %s: %d pipelines x %.3g eps (%s, %v, seed %d%s)\n",
		sc.Mix, base.Pipelines, base.Rate, base.Process, base.Horizon, base.Seed, label)
	return report.Measure(name, func(e *benchio.Entry) error {
		res, err := flood.Run(sc, base)
		if err != nil {
			return err
		}
		recordRun(e, base.Rate, res)
		fmt.Print(formatRun(res))
		printTunerActions(res.TunerActions)
		return nil
	})
}

// runSweep runs one knee-finding sweep and records it. Tuned sweeps write
// their entries under <mix>_tuned_* so a single report (and the checked-in
// baseline) can hold both operating points side by side. Returns the knee
// estimate so runTuneDiff can compare the two.
func runSweep(report *benchio.Report, sc experiments.FloodScenario, base flood.Options, c config, tuned bool) (float64, error) {
	base.Tune = tuned
	prefix, label := string(sc.Mix), ""
	if tuned {
		prefix, label = string(sc.Mix)+"_tuned", ", tuned"
	}
	fmt.Printf("== %s: sweeping %d pipelines from %.3g eps x%.3g (%s, %v/step, seed %d%s)\n",
		sc.Mix, base.Pipelines, c.start, c.factor, base.Process, base.Horizon, base.Seed, label)
	sw, err := flood.Sweep(sc, flood.SweepOptions{
		Base:        base,
		StartRate:   c.start,
		Factor:      c.factor,
		MaxSteps:    c.maxsteps,
		P99Budget:   c.p99budget,
		MinAchieved: c.minach,
		Collapse:    c.collapse,
		Profile:     c.profile,
	})
	if err != nil {
		return 0, err
	}
	var kneeP95, kneeP99, kneeP999 time.Duration
	kneeActions := 0
	for i, st := range sw.Steps {
		e := &benchio.Entry{Name: fmt.Sprintf("%s_step%d", prefix, i)}
		recordRun(e, st.Rate, st.Result)
		if tuned {
			e.Set("tuner_actions", float64(len(st.Result.TunerActions)))
		}
		report.Experiments = append(report.Experiments, e)
		fmt.Printf("  step %d: offered %7.2f eps  achieved %7.2f eps  p99 %v  drops %d",
			i, st.Result.OfferedEPS, st.Result.AchievedEPS, st.Result.E2E.P99, st.Result.DroppedSource)
		if tuned {
			fmt.Printf("  tuner acts %d", len(st.Result.TunerActions))
		}
		fmt.Println()
		if st.Result.AchievedEPS == sw.KneeEPS {
			kneeP95 = st.Result.E2E.P95
			kneeP99 = st.Result.E2E.P99
			kneeP999 = st.Result.E2E.P999
			kneeActions = len(st.Result.TunerActions)
		}
	}
	knee := &benchio.Entry{Name: prefix + "_knee"}
	knee.Set("knee_eps", sw.KneeEPS)
	knee.Set("steps", float64(len(sw.Steps)))
	knee.SetDurationMS("p95_ms", kneeP95)
	knee.SetDurationMS("p99_ms", kneeP99)
	knee.SetDurationMS("p999_ms", kneeP999)
	if tuned {
		knee.Set("tuner_actions", float64(kneeActions))
	}
	report.Experiments = append(report.Experiments, knee)
	fmt.Printf("  knee: %.2f eps aggregate (%s)\n", sw.KneeEPS, sw.StopReason)
	if tuned && len(sw.Steps) > 0 {
		printTunerActions(sw.Steps[len(sw.Steps)-1].Result.TunerActions)
	}
	return sw.KneeEPS, nil
}

// runTuneDiff sweeps the mix twice — tuner off, then on — and fails when
// the tuned knee does not clear the untuned one by tunemargin. Both sweeps
// land in the report, so one -tunediff run regenerates a full baseline.
func runTuneDiff(report *benchio.Report, sc experiments.FloodScenario, base flood.Options, c config) error {
	untuned, err := runSweep(report, sc, base, c, false)
	if err != nil {
		return err
	}
	tuned, err := runSweep(report, sc, base, c, true)
	if err != nil {
		return err
	}
	gain := 0.0
	if untuned > 0 {
		gain = (tuned - untuned) / untuned
	}
	fmt.Printf("== %s tunediff: untuned %.2f eps, tuned %.2f eps (%+.1f%%, required %+.1f%%)\n",
		sc.Mix, untuned, tuned, gain*100, c.tunemargin*100)
	if tuned < untuned*(1+c.tunemargin) {
		return fmt.Errorf("%s: tuned knee %.2f eps below required %.2f eps (untuned %.2f eps + %.0f%% margin)",
			sc.Mix, tuned, untuned*(1+c.tunemargin), untuned, c.tunemargin*100)
	}
	return nil
}

// printTunerActions lists the tuner's journal for a run, indented under
// the run's stats. Quiet when the tuner did nothing.
func printTunerActions(acts []string) {
	if len(acts) == 0 {
		return
	}
	fmt.Printf("  tuner journal (%d actions):\n", len(acts))
	for _, a := range acts {
		fmt.Printf("    %s\n", a)
	}
}

// recordRun writes one run's metrics onto a report entry. Keys are
// literal so the metername analyzer registers and checks them.
func recordRun(e *benchio.Entry, ratePerPipeline float64, r flood.Result) {
	e.Set("pipelines", float64(r.Pipelines))
	e.Set("rate_per_pipeline_eps", ratePerPipeline)
	e.Set("offered_eps", r.OfferedEPS)
	e.Set("achieved_eps", r.AchievedEPS)
	e.Set("delivered", float64(r.Delivered))
	e.Set("dropped_source", float64(r.DroppedSource))
	e.SetDurationMS("p50_ms", r.E2E.P50)
	e.SetDurationMS("p95_ms", r.E2E.P95)
	e.SetDurationMS("p99_ms", r.E2E.P99)
	e.SetDurationMS("p999_ms", r.E2E.P999)
	e.SetDurationMS("gen_lateness_p99_ms", r.GenLateness.P99)
}

func formatRun(r flood.Result) string {
	return fmt.Sprintf(
		"  offered %.2f eps (%d events)  achieved %.2f eps  admitted %d  dropped %d\n"+
			"  e2e p50 %v  p95 %v  p99 %v  p99.9 %v  (gen lateness p99 %v)\n",
		r.OfferedEPS, r.Offered, r.AchievedEPS, r.Admitted, r.DroppedSource,
		r.E2E.P50, r.E2E.P95, r.E2E.P99, r.E2E.P999, r.GenLateness.P99)
}
