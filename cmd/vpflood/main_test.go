package main

import (
	"path/filepath"
	"testing"
	"time"

	"videopipe/internal/benchio"
)

// scriptedSweepConfig is a fast sweep: the scripted mix needs no service
// training and sub-second windows still complete thousands of events.
// These tests exercise row format and seed determinism, not saturation,
// so under the race detector — which slows the interpreter enough to
// saturate the mix at trivial rates — the stop thresholds are relaxed
// until the ladder always exhausts, keeping step counts deterministic.
func scriptedSweepConfig(out string, seed int64) config {
	c := config{
		mix:       "scripted",
		pipelines: 2,
		dur:       400 * time.Millisecond,
		process:   "poisson",
		seed:      seed,
		sweep:     true,
		start:     5,
		factor:    4,
		maxsteps:  3,
		p99budget: 250 * time.Millisecond,
		minach:    0.95,
		out:       out,
		tolerance: 0.15,
	}
	if raceEnabled {
		c.p99budget = time.Minute
		c.minach = 0.01
	}
	return c
}

func TestSweepWritesRegistryValidRows(t *testing.T) {
	out := filepath.Join(t.TempDir(), "BENCH_results.json")
	if err := run(scriptedSweepConfig(out, 9)); err != nil {
		t.Fatalf("sweep: %v", err)
	}
	// Write already validated every key against the meter registry; a
	// readable report with steps and a knee summary is the contract.
	rep, err := benchio.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) < 3 {
		t.Fatalf("report has %d entries, want >= 3 (steps + knee)", len(rep.Experiments))
	}
	knee := rep.Entry("scripted_knee")
	if knee == nil {
		t.Fatal("report missing scripted_knee summary entry")
	}
	if knee.Metrics["knee_eps"] <= 0 {
		t.Errorf("knee_eps = %v, want > 0", knee.Metrics["knee_eps"])
	}
	if knee.Metrics["steps"] < 1 {
		t.Errorf("steps = %v, want >= 1", knee.Metrics["steps"])
	}
	step := rep.Entry("scripted_step0")
	if step == nil {
		t.Fatal("report missing scripted_step0")
	}
	for _, key := range []string{"pipelines", "offered_eps", "achieved_eps", "p99_ms", "gen_lateness_p99_ms"} {
		if _, ok := step.Metrics[key]; !ok {
			t.Errorf("step entry missing %q", key)
		}
	}
}

// TestSweepSeedReproducible pins the schedule-determinism contract at the
// CLI level: two same-seed sweeps emit the same rows with the same
// offered load; only the measured side may differ. The ladder is kept
// well under the scripted mix's capacity so it always exhausts — a rung
// at the saturation boundary would make the *step count* depend on
// measured throughput, which is exactly not the contract under test.
func TestSweepSeedReproducible(t *testing.T) {
	outA := filepath.Join(t.TempDir(), "a.json")
	outB := filepath.Join(t.TempDir(), "b.json")
	cfg := scriptedSweepConfig(outA, 21)
	cfg.factor = 2
	cfg.maxsteps = 2
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	cfg.out = outB
	if err := run(cfg); err != nil {
		t.Fatal(err)
	}
	a, err := benchio.Read(outA)
	if err != nil {
		t.Fatal(err)
	}
	b, err := benchio.Read(outB)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Experiments) != len(b.Experiments) {
		t.Fatalf("entry counts differ: %d vs %d", len(a.Experiments), len(b.Experiments))
	}
	for i, ea := range a.Experiments {
		eb := b.Experiments[i]
		if ea.Name != eb.Name {
			t.Errorf("entry %d name %q vs %q", i, ea.Name, eb.Name)
			continue
		}
		// The offered side is a pure function of the seed.
		for _, key := range []string{"pipelines", "rate_per_pipeline_eps", "offered_eps"} {
			if ea.Metrics[key] != eb.Metrics[key] {
				t.Errorf("%s: %s differs across same-seed runs: %v vs %v", ea.Name, key, ea.Metrics[key], eb.Metrics[key])
			}
		}
	}
}

func TestRunRejectsUnknownMix(t *testing.T) {
	c := scriptedSweepConfig("", 1)
	c.mix = "warp"
	if err := run(c); err == nil {
		t.Error("unknown mix accepted")
	}
	c = scriptedSweepConfig("", 1)
	c.process = "bursty"
	if err := run(c); err == nil {
		t.Error("unknown process accepted")
	}
}

// TestSweepPoseFindsKnee drives the flagship mix into saturation: the
// pose service's simulated cost caps the home cluster near ~20 aggregate
// eps, so a ladder reaching 72 eps must locate a knee.
func TestSweepPoseFindsKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("trains the activity classifier and runs multi-second sweeps")
	}
	if raceEnabled {
		t.Skip("race instrumentation inflates e2e latency past the knee thresholds")
	}
	out := filepath.Join(t.TempDir(), "BENCH_results.json")
	c := config{
		mix:       "pose",
		pipelines: 2,
		dur:       time.Second,
		process:   "poisson",
		seed:      1,
		sweep:     true,
		start:     1,
		factor:    3,
		maxsteps:  5,
		p99budget: 300 * time.Millisecond,
		minach:    0.95,
		out:       out,
		tolerance: 0.15,
	}
	if err := run(c); err != nil {
		t.Fatalf("pose sweep: %v", err)
	}
	rep, err := benchio.Read(out)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Experiments) < 3 {
		t.Fatalf("pose sweep emitted %d rows, want >= 3", len(rep.Experiments))
	}
	knee := rep.Entry("pose_knee")
	if knee == nil {
		t.Fatal("missing pose_knee entry")
	}
	if eps := knee.Metrics["knee_eps"]; eps <= 0 || eps > 200 {
		t.Errorf("pose knee %v eps is not a plausible capacity", eps)
	}
	// The sweep must have stopped for a saturation reason, not run off
	// the ladder: the last recorded step shows the overload.
	last := rep.Experiments[len(rep.Experiments)-2] // final step before the knee summary
	saturated := last.Metrics["p99_ms"] > 300 ||
		last.Metrics["achieved_eps"] < 0.95*last.Metrics["offered_eps"]
	if !saturated {
		t.Errorf("final step not saturated: p99=%vms achieved=%v offered=%v",
			last.Metrics["p99_ms"], last.Metrics["achieved_eps"], last.Metrics["offered_eps"])
	}
}
