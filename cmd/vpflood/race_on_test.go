//go:build race

package main

// raceEnabled reports that the race detector is active: instrumentation
// slows the service and interpreter paths enough that latency-shape
// assertions against absolute budgets stop measuring the system.
const raceEnabled = true
