// Alert sink: raises a (simulated) caregiver alarm on newly detected falls
// and returns the flow-control credit.
var alerts = 0;
function event_received(message) {
	if (message.fallen) {
		metric("falls_seen", 1);
	}
	if (message.alert) {
		alerts++;
		metric("fall_alerts", 1);
		log("FALL DETECTED - alerting caregiver");
	}
	metric("fall_total", now_ms() - message.captured_ms);
	frame_done();
}
