// Fall stage: feeds poses through the stateless fall detector, keeping the
// detector's state blob as module state.
var state = "";
function event_received(message) {
	var t0 = now_ms();
	var r = call_service("fall_detector", {state: state, pose: message.pose});
	metric("fall_check", now_ms() - t0);
	state = r.state;
	call_module("alert", {
		frame_ref: message.frame_ref,
		fallen: r.fallen,
		alert: r.alert,
		captured_ms: message.captured_ms
	});
}
