// Pose stage: runs the 2D pose detector and forwards found poses.
function event_received(message) {
	var t0 = now_ms();
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	metric("pose", now_ms() - t0);
	if (!r.found) {
		frame_done();
		return;
	}
	call_module("fall_monitor", {
		frame_ref: message.frame_ref,
		pose: r.pose,
		captured_ms: message.captured_ms
	});
}
