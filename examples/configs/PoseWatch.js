// Pose watcher: counts frames where the pose detector finds a subject.
// Included by posewatch.cfg; keeps its counter as module state.
var seen = 0;
function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	if (r.found) {
		seen++;
		metric("subject_seen", 1);
	}
	metric("watch_total", now_ms() - message.captured_ms);
	frame_done();
}
