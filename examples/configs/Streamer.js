// Camera-side streamer: forwards captured frames into the analysis chain.
function event_received(message) {
	call_module("pose", {
		frame_ref: message.frame_ref,
		captured_ms: message.captured_ms
	});
}
