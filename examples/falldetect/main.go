// Falldetect: the paper's fall-detection application (§4.3), configured
// from a Listing-1-style text file rather than Go code — demonstrating the
// config dialect, include() resolution and the pinned planner.
//
// The synthetic subject stands, then falls; the pipeline detects the
// sustained horizontal-torso, dropped-hips geometry and raises an alert.
//
//	go run ./examples/falldetect [-fps 15] [-dur 8s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"videopipe"
)

// pipelineConfig is the application in the paper's configuration dialect
// (Listing 1). Module code would normally live in .js files referenced by
// include(); here the resolver serves them from an in-memory map.
const pipelineConfig = `
// Fall detection for elderly care (paper §4.3).
modules : [
	{ name: video_streaming
	  include ("VideoStreaming.js")
	  device: phone
	  next_module: pose_detection }
	{ name: pose_detection
	  include ("PoseDetection.js")
	  service: ['pose_detector']
	  device: desktop
	  next_module: fall_monitor }
	{ name: fall_monitor
	  include ("FallMonitor.js")
	  service: ['fall_detector']
	  device: desktop
	  next_module: alert }
	{ name: alert
	  include ("Alert.js")
	  device: tv }
]
source : { device: phone, module: video_streaming, fps: 15,
           width: 480, height: 360, scene: fall, rep_rate: 0.4 }
`

// moduleFiles holds the PipeScript sources the config include()s.
var moduleFiles = map[string]string{
	"VideoStreaming.js": `
		function event_received(message) {
			call_module("pose_detection", {
				frame_ref: message.frame_ref,
				captured_ms: message.captured_ms
			});
		}
	`,
	"PoseDetection.js": `
		function event_received(message) {
			var r = call_service("pose_detector", {frame_ref: message.frame_ref});
			if (!r.found) { frame_done(); return; }
			call_module("fall_monitor", {
				frame_ref: message.frame_ref,
				pose: r.pose,
				captured_ms: message.captured_ms
			});
		}
	`,
	"FallMonitor.js": `
		var state = "";
		function event_received(message) {
			var r = call_service("fall_detector", {state: state, pose: message.pose});
			state = r.state;
			call_module("alert", {
				frame_ref: message.frame_ref,
				fallen: r.fallen,
				alert: r.alert,
				captured_ms: message.captured_ms
			});
		}
	`,
	"Alert.js": `
		var alerts = 0;
		function event_received(message) {
			if (message.alert) {
				alerts++;
				metric("fall_alerts", 1);
				log("FALL DETECTED at frame; notifying caregiver");
			}
			frame_done();
		}
	`,
}

func main() {
	var (
		fps = flag.Float64("fps", 15, "camera frame rate")
		dur = flag.Duration("dur", 8*time.Second, "run duration")
	)
	flag.Parse()

	cfg, err := videopipe.ParseConfig("falldetect", pipelineConfig, func(path string) (string, error) {
		src, ok := moduleFiles[path]
		if !ok {
			return "", fmt.Errorf("no module file %q", path)
		}
		return src, nil
	})
	if err != nil {
		log.Fatal(err)
	}
	cfg.Source.FPS = *fps

	registry, err := videopipe.NewStandardServices(videopipe.DefaultServiceOptions())
	if err != nil {
		log.Fatal(err)
	}
	cluster, err := videopipe.NewCluster(videopipe.HomeClusterSpec(), registry)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// Surface module log() output, so the alert is visible.
	for _, name := range cluster.DeviceNames() {
		d, _ := cluster.Device(name)
		d.SetLogf(func(format string, args ...any) {
			fmt.Printf(format+"\n", args...)
		})
	}

	// The config pins every module; the pinned planner follows it exactly.
	pipeline, err := cluster.Launch(*cfg, videopipe.PinnedPlanner{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("watching for falls (%v at %g fps)...\n", *dur, *fps)
	result, err := pipeline.Run(context.Background(), *dur)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nframes processed: %d (%.1f fps)\n", result.Delivered, result.FPS)
	if n := result.Stages["fall_alerts"].Count; n > 0 {
		fmt.Printf("fall alerts raised: %d\n", n)
	} else {
		fmt.Println("no fall detected (try a longer -dur)")
	}
}
