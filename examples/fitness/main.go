// Fitness: the paper's flagship application (§4.1, Fig. 4).
//
// A synthetic subject exercises in front of the phone camera; the pipeline
// detects their pose, recognizes the exercise over 15-frame windows,
// counts reps with the 2-means counter, and composes the TV display. The
// program runs the same application under both deployment plans — the
// co-locating VideoPipe planner and the EdgeEye-style remote-API baseline
// — and prints the side-by-side comparison, plus the final frame the TV
// would show (saved as a PNG).
//
//	go run ./examples/fitness [-scene squat] [-fps 20] [-dur 6s]
package main

import (
	"context"
	"flag"
	"fmt"
	"image/color"
	"image/png"
	"log"
	"os"
	"time"

	"videopipe"
	"videopipe/internal/frame"
	"videopipe/internal/vision"
)

func main() {
	var (
		scene = flag.String("scene", "squat", "exercise: squat|jumping_jack|overhead_press|lunge")
		fps   = flag.Float64("fps", 20, "camera frame rate")
		dur   = flag.Duration("dur", 6*time.Second, "run duration per plan")
		out   = flag.String("out", "fitness_display.png", "path for the rendered TV frame ('' to skip)")
	)
	flag.Parse()

	registry, err := videopipe.NewStandardServices(videopipe.DefaultServiceOptions())
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("== VideoPipe plan (modules co-located with services) ==\n")
	vp := runPlan(registry, videopipe.HomeClusterSpec(), videopipe.CoLocatePlanner{}, "fitness_vp", *scene, *fps, *dur)

	fmt.Printf("\n== Baseline plan (all modules on the phone, remote API calls) ==\n")
	bl := runPlan(registry, videopipe.BaselineClusterSpec(), videopipe.BaselinePlanner{}, "fitness_bl", *scene, *fps, *dur)

	fmt.Printf("\n== Comparison ==\n")
	fmt.Printf("delivered FPS:  videopipe %.2f   baseline %.2f   (x%.2f)\n", vp.FPS, bl.FPS, vp.FPS/bl.FPS)
	fmt.Printf("e2e latency:    videopipe %v   baseline %v\n",
		vp.E2E.Mean.Round(time.Millisecond), bl.E2E.Mean.Round(time.Millisecond))

	if *out != "" {
		if err := renderDisplayFrame(*out, *scene); err != nil {
			log.Printf("rendering display frame: %v", err)
		} else {
			fmt.Printf("\nTV display frame written to %s\n", *out)
		}
	}
}

func runPlan(registry *videopipe.ServiceRegistry, spec videopipe.ClusterSpec, planner videopipe.Planner, name, scene string, fps float64, dur time.Duration) videopipe.RunResult {
	cluster, err := videopipe.NewCluster(spec, registry)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	pipeline, err := cluster.Launch(videopipe.FitnessApp(name, fps, scene), planner)
	if err != nil {
		log.Fatal(err)
	}
	for _, m := range pipeline.Modules() {
		fmt.Printf("  %-22s on %s\n", m, pipeline.Placement()[m])
	}
	result, err := pipeline.Run(context.Background(), dur)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(result)
	return result
}

// renderDisplayFrame reproduces the Fig. 3 screenshot: the camera scene
// with the skeleton overlay, activity banner and rep ticks, composed by
// the display service's own renderer.
func renderDisplayFrame(path, scene string) error {
	activity, err := vision.ParseActivity(scene)
	if err != nil {
		return err
	}
	f := frame.MustNew(480, 360)
	subject := vision.DefaultSubject()
	subject.CenterX, subject.CenterY, subject.Scale = 240, 194, 60
	pose := vision.SynthesizePose(activity, 0.3, subject, nil)
	vision.RenderScene(f, pose)

	// Overlay, banner and ticks drawn the way the display service does.
	for _, bone := range vision.Bones {
		a, b := pose.Keypoints[bone[0]], pose.Keypoints[bone[1]]
		f.DrawLine(int(a.X)+1, int(a.Y)+1, int(b.X)+1, int(b.Y)+1, goldOverlay)
	}
	f.DrawRect(0, 0, f.Width-1, 11, bannerTeal)
	for k := 0; k < 3; k++ {
		f.DrawRect(8+k*14, f.Height-16, 16+k*14, f.Height-8, whiteTick)
	}

	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	return png.Encode(file, f.ToImage())
}

// Overlay palette for the rendered screenshot.
var (
	goldOverlay = color.RGBA{R: 255, G: 215, B: 0, A: 255}
	bannerTeal  = color.RGBA{R: 48, G: 160, B: 160, A: 255}
	whiteTick   = color.RGBA{R: 255, G: 255, B: 255, A: 255}
)
