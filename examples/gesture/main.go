// Gesture: the paper's gesture-controlled IoT application (§4.2).
//
// The pipeline watches the camera, classifies pose windows, and maps
// debounced gestures to home actions: clapping toggles the living-room
// light, waving toggles the doorbell camera. It runs two gesture scenes in
// sequence and reports the IoT actions each produced. It then launches the
// fitness pipeline *concurrently* with the gesture pipeline to demonstrate
// service sharing across pipelines (§5.2.2).
//
//	go run ./examples/gesture [-fps 15] [-dur 5s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"time"

	"videopipe"
)

func main() {
	var (
		fps = flag.Float64("fps", 15, "camera frame rate")
		dur = flag.Duration("dur", 5*time.Second, "run duration per scene")
	)
	flag.Parse()

	registry, err := videopipe.NewStandardServices(videopipe.DefaultServiceOptions())
	if err != nil {
		log.Fatal(err)
	}

	for _, scene := range []string{"clap", "wave"} {
		fmt.Printf("== Scene: subject performing %q ==\n", scene)
		cluster, err := videopipe.NewCluster(videopipe.HomeClusterSpec(), registry)
		if err != nil {
			log.Fatal(err)
		}
		pipeline, err := cluster.Launch(videopipe.GestureApp("gesture_"+scene, *fps, scene), videopipe.CoLocatePlanner{})
		if err != nil {
			log.Fatal(err)
		}
		result, err := pipeline.Run(context.Background(), *dur)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("frames processed: %d (%.1f fps)\n", result.Delivered, result.FPS)
		fmt.Printf("light toggles:    %d\n", result.Stages["light_toggles"].Count)
		fmt.Printf("doorbell toggles: %d\n", result.Stages["doorbell_toggles"].Count)
		fmt.Println()
		cluster.Close()
	}

	// Service sharing: gesture control and the fitness app at once, both
	// using the same pose-detector pool.
	fmt.Println("== Shared services: gesture + fitness concurrently ==")
	cluster, err := videopipe.NewCluster(videopipe.HomeClusterSpec(), registry)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	gesture, err := cluster.Launch(videopipe.GestureApp("shared_gesture", *fps, "clap"), videopipe.CoLocatePlanner{})
	if err != nil {
		log.Fatal(err)
	}
	fitness, err := cluster.Launch(videopipe.FitnessApp("shared_fitness", *fps, "squat"), videopipe.CoLocatePlanner{})
	if err != nil {
		log.Fatal(err)
	}

	var wg sync.WaitGroup
	var gestureRes, fitnessRes videopipe.RunResult
	wg.Add(2)
	go func() {
		defer wg.Done()
		var err error
		if gestureRes, err = gesture.Run(context.Background(), *dur); err != nil {
			log.Print(err)
		}
	}()
	go func() {
		defer wg.Done()
		var err error
		if fitnessRes, err = fitness.Run(context.Background(), *dur); err != nil {
			log.Print(err)
		}
	}()
	wg.Wait()

	fmt.Printf("gesture pipeline: %.2f fps (light toggles: %d)\n",
		gestureRes.FPS, gestureRes.Stages["light_toggles"].Count)
	fmt.Printf("fitness pipeline: %.2f fps\n", fitnessRes.FPS)
	fmt.Println("both pipelines shared the single pose-detector service pool.")
}
