// Quickstart: the smallest useful VideoPipe program.
//
// It builds a two-module pipeline with the fluent builder — an ingest
// module on a phone forwarding frames to an analyzer co-located with the
// pose-detector service on a desktop — runs it for a few seconds on a
// simulated home network, and prints the run report.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"videopipe"
)

// Module logic is PipeScript (a JavaScript-like embedded language), just
// as the paper's modules are JavaScript on Duktape.
const ingestSrc = `
	function event_received(message) {
		// Frames are passed by reference id, never copied on-device.
		call_module("analyze", {
			frame_ref: message.frame_ref,
			captured_ms: message.captured_ms
		});
	}
`

const analyzeSrc = `
	var people_seen = 0;
	function event_received(message) {
		var r = call_service("pose_detector", {frame_ref: message.frame_ref});
		if (r.found) {
			people_seen++;
			var nose = r.pose.keypoints[0];
			metric("nose_y", nose.y);
		}
		metric("latency", now_ms() - message.captured_ms);
		frame_done();   // flow-control credit back to the camera
	}
`

func main() {
	// 1. Build the service catalogue (trains the tiny activity model).
	registry, err := videopipe.NewStandardServices(videopipe.DefaultServiceOptions())
	if err != nil {
		log.Fatal(err)
	}

	// 2. Assemble a simulated home: phone + desktop + TV on Wi-Fi, with
	// the standard service placement.
	cluster, err := videopipe.NewCluster(videopipe.HomeClusterSpec(), registry)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	// 3. Describe the pipeline.
	cfg, err := videopipe.NewPipelineBuilder("quickstart").
		Module("ingest", ingestSrc).Next("analyze").
		Module("analyze", analyzeSrc).Uses(videopipe.PoseDetector).
		Source("phone", "ingest").
		FPS(15).
		Scene("wave", 0.4).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	// 4. Deploy with the co-locating planner: "analyze" lands on the
	// desktop, next to the pose detector; "ingest" stays on the phone.
	pipeline, err := cluster.Launch(cfg, videopipe.CoLocatePlanner{})
	if err != nil {
		log.Fatal(err)
	}
	for module, device := range pipeline.Placement() {
		fmt.Printf("module %-10s -> %s\n", module, device)
	}

	// 5. Run and report.
	result, err := pipeline.Run(context.Background(), 4*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(result)
}
