// Securitycam: a home security application in the spirit of the paper's
// §4.3 ("real-time video analytics consisting of hand detection/tracking,
// face detection/tracking and pose detection/tracking, can create ample
// opportunities for new user interfaces with IoT devices").
//
// A custom scene renderer simulates a hallway camera: furniture is always
// present, and a person walks through mid-run. The pipeline fans out from
// one watcher module to two analysis branches — object inventory and
// person/face detection — exercising the object-detector, image-classifier
// and face-detector services plus a DAG with fan-out and two sinks.
//
//	go run ./examples/securitycam [-fps 10] [-dur 8s]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"time"

	"videopipe"
	"videopipe/internal/frame"
	"videopipe/internal/vision"
)

const watcherSrc = `
	function event_received(message) {
		// Fan the frame out to both analysis branches; the runtime
		// reference-counts it so each branch owns its own reference.
		call_module("inventory", {frame_ref: message.frame_ref, captured_ms: message.captured_ms});
		call_module("person_watch", {frame_ref: message.frame_ref, captured_ms: message.captured_ms});
	}
`

const inventorySrc = `
	var last_count = -1;
	function event_received(message) {
		var r = call_service("object_detector", {frame_ref: message.frame_ref});
		if (r.count != last_count) {
			last_count = r.count;
			metric("inventory_changes", 1);
			log("inventory now", r.count, "objects");
		}
		metric("objects_seen", r.count);
		frame_done();
	}
`

const personWatchSrc = `
	var alarmed = false;
	function event_received(message) {
		var f = call_service("face_detector", {frame_ref: message.frame_ref});
		if (f.found && !alarmed) {
			alarmed = true;
			metric("intruder_alerts", 1);
			log("person detected at face box", f.box.min_x, f.box.min_y);
		}
		if (!f.found) { alarmed = false; }
	}
`

// hallwayRenderer draws the synthetic camera scene: static furniture, and
// a person crossing the hallway during the middle third of the run.
func hallwayRenderer(width, height int, personFrom, personUntil time.Duration) frame.Renderer {
	return func(seq uint64, elapsed time.Duration) (*frame.Frame, error) {
		f, err := frame.New(width, height)
		if err != nil {
			return nil, err
		}
		// Room fixtures.
		vision.DrawObject(f, "tv", width/2-70, 30, width/2+70, 90)
		vision.DrawObject(f, "chair", 40, height-120, 110, height-40)
		vision.DrawObject(f, "bottle", width-90, height/2, width-75, height/2+40)

		if elapsed >= personFrom && elapsed <= personUntil {
			// The person walks left to right while the pipeline watches.
			progress := float64(elapsed-personFrom) / float64(personUntil-personFrom)
			subject := vision.Subject{
				CenterX: 60 + progress*float64(width-120),
				CenterY: float64(height) * 0.55,
				Scale:   float64(height) / 6.5,
			}
			pose := vision.SynthesizePose(vision.Idle, progress, subject, nil)
			vision.RenderPose(f, pose)
		}
		return f, nil
	}
}

func main() {
	var (
		fps = flag.Float64("fps", 10, "camera frame rate")
		dur = flag.Duration("dur", 8*time.Second, "run duration")
	)
	flag.Parse()

	registry, err := videopipe.NewStandardServices(videopipe.DefaultServiceOptions())
	if err != nil {
		log.Fatal(err)
	}

	// This application needs services the fitness cluster doesn't deploy;
	// build a custom spec with the analytics on the desktop.
	spec := videopipe.ClusterSpec{
		Devices: []videopipe.DeviceConfig{
			{Name: "phone", Class: videopipe.Phone},
			{Name: "desktop", Class: videopipe.Desktop},
		},
		Services: []videopipe.ServicePlacement{
			{Service: videopipe.ObjectDetector, Device: "desktop"},
			{Service: videopipe.FaceDetector, Device: "desktop"},
			{Service: videopipe.ImageClassifier, Device: "desktop"},
		},
	}
	cluster, err := videopipe.NewCluster(spec, registry)
	if err != nil {
		log.Fatal(err)
	}
	defer cluster.Close()

	for _, name := range cluster.DeviceNames() {
		d, _ := cluster.Device(name)
		d.SetLogf(func(format string, args ...any) { fmt.Printf(format+"\n", args...) })
	}

	cfg, err := videopipe.NewPipelineBuilder("securitycam").
		Module("watcher", watcherSrc).Next("inventory", "person_watch").
		Module("inventory", inventorySrc).Uses(videopipe.ObjectDetector).
		Module("person_watch", personWatchSrc).Uses(videopipe.FaceDetector).
		Source("phone", "watcher").
		FPS(*fps).
		Resolution(480, 360).
		Renderer(hallwayRenderer(480, 360, *dur/3, 2**dur/3)).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	pipeline, err := cluster.Launch(cfg, videopipe.CoLocatePlanner{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("watching the hallway for %v (person crosses mid-run)...\n", *dur)
	result, err := pipeline.Run(context.Background(), *dur)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nframes analyzed:   %d\n", result.Stages["objects_seen"].Count)
	fmt.Printf("intruder alerts:   %d\n", result.Stages["intruder_alerts"].Count)
	fmt.Printf("inventory changes: %d\n", result.Stages["inventory_changes"].Count)
}
