module videopipe

go 1.22
