// Package apps defines the applications the paper builds on VideoPipe
// (§4): the fitness workout-guidance pipeline (Fig. 4), the gesture-based
// IoT control pipeline (§4.2) and the fall-detection pipeline (§4.3) —
// each as a module DAG whose module logic is PipeScript, exactly as the
// paper's modules are JavaScript.
//
// The same module sources run under both deployment plans; only placement
// differs. Per-stage timings are reported from inside the module code via
// metric(), which is how Fig. 6's bars are measured.
package apps

import (
	"videopipe/internal/core"
	"videopipe/internal/device"
	"videopipe/internal/netsim"
	"videopipe/internal/services"
)

// Module scripts for the fitness application (paper Fig. 4).
const (
	// VideoStreamingSrc runs on the phone: it receives camera frames and
	// streams them into the pipeline.
	VideoStreamingSrc = `
		function event_received(message) {
			var t0 = now_ms();
			call_module("pose_detection", {
				frame_ref: message.frame_ref,
				captured_ms: message.captured_ms,
				seq: message.seq
			});
			metric("stream", now_ms() - t0);
		}
	`

	// PoseDetectionSrc calls the 2D pose detector (§4.1.1). load_frame is
	// the capture-to-pose-stage delay, pose the detector call itself.
	PoseDetectionSrc = `
		function event_received(message) {
			metric("load_frame", now_ms() - message.captured_ms);
			var t0 = now_ms();
			var r = call_service("pose_detector", {frame_ref: message.frame_ref});
			metric("pose", now_ms() - t0);
			if (!r.found) {
				frame_done();
				return;
			}
			call_module("activity_recognition", {
				frame_ref: message.frame_ref,
				pose: r.pose,
				captured_ms: message.captured_ms,
				seq: message.seq
			});
		}
	`

	// ActivityRecognitionSrc keeps the 15-frame sliding window (§4.1.2)
	// as encapsulated module state and classifies once the window fills.
	ActivityRecognitionSrc = `
		var window = [];
		function event_received(message) {
			push(window, message.pose);
			if (len(window) > 15) { shift(window); }
			var activity = "warming_up";
			var confidence = 0;
			if (len(window) == 15) {
				var t0 = now_ms();
				var r = call_service("activity_classifier", {poses: window});
				metric("activity", now_ms() - t0);
				activity = r.activity;
				confidence = r.confidence;
			}
			call_module("rep_counter", {
				frame_ref: message.frame_ref,
				pose: message.pose,
				activity: activity,
				confidence: confidence,
				captured_ms: message.captured_ms,
				seq: message.seq
			});
		}
	`

	// RepCounterSrc owns the stateless rep-counter's state blob (§4.1.3):
	// the module keeps the state, the service does the math.
	RepCounterSrc = `
		var state = "";
		var reps = 0;
		function event_received(message) {
			if (message.confidence < 0.5) {
				metric("low_confidence", 1);
			}
			var t0 = now_ms();
			var r = call_service("rep_counter", {state: state, pose: message.pose});
			metric("rep_count", now_ms() - t0);
			// "Total Duration" matches the paper's Fig. 6 semantics: capture
			// through rep counting (the figure carries no display bar and its
			// total tracks the sum of the four analysis stages).
			metric("total", now_ms() - message.captured_ms);
			state = r.state;
			reps = r.reps;
			call_module("display", {
				frame_ref: message.frame_ref,
				pose: message.pose,
				activity: message.activity,
				reps: reps,
				captured_ms: message.captured_ms,
				seq: message.seq
			});
		}
	`

	// DisplaySrc composes the TV output (Fig. 3) and signals frame
	// completion — the §2.3 flow-control credit.
	DisplaySrc = `
		var frames = 0;
		var last_seq = -1;
		function event_received(message) {
			if (last_seq >= 0 && message.seq - last_seq > 1) {
				metric("display_gaps", message.seq - last_seq - 1);
			}
			last_seq = message.seq;
			var t0 = now_ms();
			call_service("display", {
				frame_ref: message.frame_ref,
				pose: message.pose,
				activity: message.activity,
				reps: message.reps
			});
			metric("display", now_ms() - t0);
			metric("display_total", now_ms() - message.captured_ms);
			frames++;
			frame_done();
		}
	`
)

// Gesture-control module scripts (paper §4.2).
const (
	// GestureRecognitionSrc classifies pose windows and debounces
	// actionable gestures with a cooldown so one wave doesn't fire twice.
	GestureRecognitionSrc = `
		var window = [];
		var cooldown = 0;
		function event_received(message) {
			push(window, message.pose);
			if (len(window) > 15) { shift(window); }
			if (cooldown > 0) { cooldown--; }
			var gesture = "none";
			if (len(window) == 15 && cooldown == 0) {
				var t0 = now_ms();
				var r = call_service("activity_classifier", {poses: window});
				metric("gesture_classify", now_ms() - t0);
				if (r.actionable && (r.activity == "clap" || r.activity == "wave")) {
					gesture = r.activity;
					cooldown = 20;
				}
			}
			call_module("iot_control", {
				frame_ref: message.frame_ref,
				gesture: gesture,
				captured_ms: message.captured_ms
			});
		}
	`

	// IoTControlSrc maps gestures to home actions: clapping toggles the
	// living-room light, waving toggles the doorbell camera (§4.2).
	IoTControlSrc = `
		var light_on = false;
		var doorbell_on = true;
		function event_received(message) {
			if (message.gesture == "clap") {
				light_on = !light_on;
				metric("light_toggles", 1);
				log("light toggled", light_on);
			}
			if (message.gesture == "wave") {
				doorbell_on = !doorbell_on;
				metric("doorbell_toggles", 1);
				log("doorbell toggled", doorbell_on);
			}
			metric("gesture_total", now_ms() - message.captured_ms);
			frame_done();
		}
	`
)

// Fall-detection module scripts (paper §4.3).
const (
	// FallMonitorSrc feeds poses through the stateless fall detector.
	FallMonitorSrc = `
		var state = "";
		function event_received(message) {
			var t0 = now_ms();
			var r = call_service("fall_detector", {state: state, pose: message.pose});
			metric("fall_check", now_ms() - t0);
			state = r.state;
			call_module("alert", {
				frame_ref: message.frame_ref,
				fallen: r.fallen,
				alert: r.alert,
				captured_ms: message.captured_ms
			});
		}
	`

	// AlertSrc raises (simulated) alarms on newly detected falls.
	AlertSrc = `
		var alerts = 0;
		function event_received(message) {
			if (message.fallen) {
				metric("falls_seen", 1);
			}
			if (message.alert) {
				alerts++;
				metric("fall_alerts", 1);
				log("FALL DETECTED - alerting caregiver");
			}
			metric("fall_total", now_ms() - message.captured_ms);
			frame_done();
		}
	`
)

// Default capture geometry for the applications: a phone camera at a
// living-room distance. Small enough that JPEG encode cost matches a
// phone-class device, large enough for reliable pose detection.
const (
	FrameWidth  = 480
	FrameHeight = 360
)

// FitnessConfig builds the fitness pipeline (Fig. 4): video streaming on
// the phone, pose detection, activity recognition and rep counting beside
// their services, display on the TV. scene names the exercise the
// synthetic subject performs.
func FitnessConfig(name string, fps float64, scene string) core.PipelineConfig {
	return core.PipelineConfig{
		Name: name,
		Modules: []core.ModuleConfig{
			{
				Name:   "video_streaming",
				Source: VideoStreamingSrc,
				Next:   []string{"pose_detection"},
			},
			{
				Name:     "pose_detection",
				Source:   PoseDetectionSrc,
				Services: []string{services.PoseDetector},
				Next:     []string{"activity_recognition"},
			},
			{
				Name:     "activity_recognition",
				Source:   ActivityRecognitionSrc,
				Services: []string{services.ActivityClassifier},
				Next:     []string{"rep_counter"},
			},
			{
				Name:     "rep_counter",
				Source:   RepCounterSrc,
				Services: []string{services.RepCounter},
				Next:     []string{"display"},
			},
			{
				Name:     "display",
				Source:   DisplaySrc,
				Services: []string{services.Display},
			},
		},
		Source: core.SourceConfig{
			Device:      "phone",
			FirstModule: "video_streaming",
			FPS:         fps,
			Width:       FrameWidth,
			Height:      FrameHeight,
			Scene:       scene,
			RepRate:     0.5,
		},
	}
}

// GestureConfig builds the IoT gesture-control pipeline (§4.2). scene is
// the gesture the synthetic subject performs ("clap" or "wave").
func GestureConfig(name string, fps float64, scene string) core.PipelineConfig {
	return core.PipelineConfig{
		Name: name,
		Modules: []core.ModuleConfig{
			{
				Name:   "video_streaming",
				Source: VideoStreamingSrc,
				Next:   []string{"pose_detection"},
			},
			{
				Name:     "pose_detection",
				Source:   gesturePoseSrc,
				Services: []string{services.PoseDetector},
				Next:     []string{"gesture_recognition"},
			},
			{
				Name:     "gesture_recognition",
				Source:   GestureRecognitionSrc,
				Services: []string{services.ActivityClassifier},
				Next:     []string{"iot_control"},
			},
			{
				Name:   "iot_control",
				Source: IoTControlSrc,
			},
		},
		Source: core.SourceConfig{
			Device:      "phone",
			FirstModule: "video_streaming",
			FPS:         fps,
			Width:       FrameWidth,
			Height:      FrameHeight,
			Scene:       scene,
			RepRate:     0.4,
		},
	}
}

// gesturePoseSrc is PoseDetectionSrc retargeted at the gesture chain.
const gesturePoseSrc = `
	var last_seq = -1;
	function event_received(message) {
		if (last_seq >= 0 && message.seq - last_seq > 1) {
			metric("dropped_frames", message.seq - last_seq - 1);
		}
		last_seq = message.seq;
		metric("load_frame", now_ms() - message.captured_ms);
		var t0 = now_ms();
		var r = call_service("pose_detector", {frame_ref: message.frame_ref});
		metric("pose", now_ms() - t0);
		if (!r.found) {
			frame_done();
			return;
		}
		call_module("gesture_recognition", {
			frame_ref: message.frame_ref,
			pose: r.pose,
			captured_ms: message.captured_ms
		});
	}
`

// fallPoseSrc is PoseDetectionSrc retargeted at the fall chain.
const fallPoseSrc = `
	var last_seq = -1;
	function event_received(message) {
		if (last_seq >= 0 && message.seq - last_seq > 1) {
			metric("dropped_frames", message.seq - last_seq - 1);
		}
		last_seq = message.seq;
		metric("load_frame", now_ms() - message.captured_ms);
		var t0 = now_ms();
		var r = call_service("pose_detector", {frame_ref: message.frame_ref});
		metric("pose", now_ms() - t0);
		if (!r.found) {
			frame_done();
			return;
		}
		call_module("fall_monitor", {
			frame_ref: message.frame_ref,
			pose: r.pose,
			captured_ms: message.captured_ms
		});
	}
`

// FallConfig builds the fall-detection pipeline (§4.3).
func FallConfig(name string, fps float64) core.PipelineConfig {
	return core.PipelineConfig{
		Name: name,
		Modules: []core.ModuleConfig{
			{
				Name:   "video_streaming",
				Source: VideoStreamingSrc,
				Next:   []string{"pose_detection"},
			},
			{
				Name:     "pose_detection",
				Source:   fallPoseSrc,
				Services: []string{services.PoseDetector},
				Next:     []string{"fall_monitor"},
			},
			{
				Name:     "fall_monitor",
				Source:   FallMonitorSrc,
				Services: []string{services.FallDetector},
				Next:     []string{"alert"},
			},
			{
				Name:   "alert",
				Source: AlertSrc,
			},
		},
		Source: core.SourceConfig{
			Device:      "phone",
			FirstModule: "video_streaming",
			FPS:         fps,
			Width:       FrameWidth,
			Height:      FrameHeight,
			Scene:       "fall",
			RepRate:     0.4,
		},
	}
}

// HomeClusterSpec is the paper's testbed (§5.1): a phone, a desktop and a
// TV on home Wi-Fi. VideoPipe's service placement puts the vision services
// on the desktop and the display service on the TV (Fig. 4).
func HomeClusterSpec() core.ClusterSpec {
	return core.ClusterSpec{
		Devices: []device.Config{
			{Name: "phone", Class: device.Phone},
			{Name: "desktop", Class: device.Desktop},
			{Name: "tv", Class: device.TV},
		},
		DefaultLink: netsim.WiFi,
		Services: []core.ServicePlacement{
			{Service: services.PoseDetector, Device: "desktop"},
			{Service: services.ActivityClassifier, Device: "desktop"},
			{Service: services.RepCounter, Device: "desktop"},
			{Service: services.FallDetector, Device: "desktop"},
			{Service: services.Display, Device: "tv"},
		},
	}
}

// BaselineClusterSpec mirrors the paper's baseline (Fig. 5): the same
// hardware, but every service — including display — lives on the desktop
// server the phone's application calls into.
func BaselineClusterSpec() core.ClusterSpec {
	return core.ClusterSpec{
		Devices: []device.Config{
			{Name: "phone", Class: device.Phone},
			{Name: "desktop", Class: device.Desktop},
			{Name: "tv", Class: device.TV},
		},
		DefaultLink: netsim.WiFi,
		Services: []core.ServicePlacement{
			{Service: services.PoseDetector, Device: "desktop"},
			{Service: services.ActivityClassifier, Device: "desktop"},
			{Service: services.RepCounter, Device: "desktop"},
			{Service: services.FallDetector, Device: "desktop"},
			{Service: services.Display, Device: "desktop"},
		},
	}
}
