package apps

import (
	"strings"
	"testing"

	"videopipe/internal/script"
	"videopipe/internal/services"
)

func TestConfigsValidate(t *testing.T) {
	cases := []struct {
		name string
		cfg  interface{ Validate() error }
	}{
		{"fitness", ptr(FitnessConfig("f", 20, "squat"))},
		{"gesture", ptr(GestureConfig("g", 15, "clap"))},
		{"fall", ptr(FallConfig("fa", 15))},
	}
	for _, c := range cases {
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.name, err)
		}
	}
}

func ptr[T any](v T) *T { return &v }

func TestAllModuleScriptsParse(t *testing.T) {
	sources := map[string]string{
		"video_streaming":      VideoStreamingSrc,
		"pose_detection":       PoseDetectionSrc,
		"activity_recognition": ActivityRecognitionSrc,
		"rep_counter":          RepCounterSrc,
		"display":              DisplaySrc,
		"gesture_recognition":  GestureRecognitionSrc,
		"iot_control":          IoTControlSrc,
		"fall_monitor":         FallMonitorSrc,
		"alert":                AlertSrc,
	}
	for name, src := range sources {
		ctx := script.NewContext()
		// Stub the host API so top-level load succeeds standalone.
		for _, fn := range []string{"call_service", "call_module", "metric", "frame_done", "log", "now_ms"} {
			ctx.Bind(fn, func([]script.Value) (script.Value, error) { return nil, nil })
		}
		if err := ctx.Load(src); err != nil {
			t.Errorf("module %s does not load: %v", name, err)
			continue
		}
		if !ctx.Has("event_received") {
			t.Errorf("module %s missing event_received", name)
		}
	}
}

func TestFitnessTopology(t *testing.T) {
	cfg := FitnessConfig("f", 20, "squat")
	order, err := cfg.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	want := []string{"video_streaming", "pose_detection", "activity_recognition", "rep_counter", "display"}
	if strings.Join(order, ",") != strings.Join(want, ",") {
		t.Errorf("order = %v, want %v", order, want)
	}
	if sinks := cfg.Sinks(); len(sinks) != 1 || sinks[0] != "display" {
		t.Errorf("sinks = %v", sinks)
	}
	used := cfg.ServicesUsed()
	for _, svc := range []string{services.PoseDetector, services.ActivityClassifier, services.RepCounter, services.Display} {
		found := false
		for _, u := range used {
			if u == svc {
				found = true
			}
		}
		if !found {
			t.Errorf("fitness does not declare service %s", svc)
		}
	}
}

func TestGestureAndFallTopologies(t *testing.T) {
	g := GestureConfig("g", 15, "wave")
	if sinks := g.Sinks(); len(sinks) != 1 || sinks[0] != "iot_control" {
		t.Errorf("gesture sinks = %v", sinks)
	}
	f := FallConfig("fa", 15)
	if sinks := f.Sinks(); len(sinks) != 1 || sinks[0] != "alert" {
		t.Errorf("fall sinks = %v", sinks)
	}
	if f.Source.Scene != "fall" {
		t.Errorf("fall scene = %q", f.Source.Scene)
	}
}

func TestClusterSpecsConsistency(t *testing.T) {
	for _, tc := range []struct {
		name string
		spec func() (devices int, placements int)
	}{
		{"home", func() (int, int) { s := HomeClusterSpec(); return len(s.Devices), len(s.Services) }},
		{"baseline", func() (int, int) { s := BaselineClusterSpec(); return len(s.Devices), len(s.Services) }},
	} {
		devices, placements := tc.spec()
		if devices != 3 {
			t.Errorf("%s: %d devices, want 3 (phone, desktop, tv)", tc.name, devices)
		}
		if placements != 5 {
			t.Errorf("%s: %d service placements, want 5", tc.name, placements)
		}
	}
	// Every placed service exists in the standard registry names.
	known := map[string]bool{
		services.PoseDetector: true, services.ActivityClassifier: true,
		services.RepCounter: true, services.Display: true,
		services.FallDetector: true, services.ObjectDetector: true,
		services.ImageClassifier: true, services.FaceDetector: true,
	}
	for _, sp := range append(HomeClusterSpec().Services, BaselineClusterSpec().Services...) {
		if !known[sp.Service] {
			t.Errorf("placement references unknown service %q", sp.Service)
		}
	}
}

func TestConfigsUseDistinctNames(t *testing.T) {
	a := FitnessConfig("one", 10, "squat")
	b := FitnessConfig("two", 10, "squat")
	if a.Name == b.Name {
		t.Error("names not distinct")
	}
}
