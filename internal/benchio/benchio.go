// Package benchio is the shared reader/writer for BENCH_results.json —
// the machine-readable benchmark document vpbench (paper experiments) and
// vpflood (saturation sweeps) both emit and the floodgate regression gate
// consumes. One Report holds a list of Entries (one per experiment or
// sweep step: flat metric key -> number, plus wall time and heap
// allocation cost) and a snapshot of the data-plane counters.
//
// Every metric key written through Entry.Set is held to the generated
// meter-name registry (internal/metrics/names.go), statically by the
// metername analyzer (internal/golint) and at Write time by
// Report.ValidateKeys, so benchmark output can never carry a name the
// rest of the system (tests, the monitor, EXPERIMENTS.md tooling, CI
// gates) does not know.
package benchio

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"sort"
	"strings"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/metrics"
	"videopipe/internal/wire"
)

// Entry is one experiment's (or sweep step's) machine-readable record:
// what it measured plus what it cost to run.
type Entry struct {
	Name       string             `json:"name"`
	DurationMS float64            `json:"duration_ms"`
	AllocBytes uint64             `json:"alloc_bytes"`
	Mallocs    uint64             `json:"mallocs"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Set records one named measurement on the entry.
func (e *Entry) Set(key string, v float64) {
	if e.Metrics == nil {
		e.Metrics = make(map[string]float64)
	}
	e.Metrics[key] = v
}

// SetDurationMS records a latency measurement in milliseconds.
func (e *Entry) SetDurationMS(key string, d time.Duration) {
	//vpvet:allow metername pass-through; the literal key is checked at SetDurationMS call sites
	e.Set(key, float64(d)/float64(time.Millisecond))
}

// Report is the BENCH_results.json document.
type Report struct {
	GeneratedAt time.Time         `json:"generated_at"`
	Scene       string            `json:"scene,omitempty"`
	WindowMS    float64           `json:"window_ms"`
	Seed        int64             `json:"seed"`
	Experiments []*Entry          `json:"experiments"`
	Counters    map[string]uint64 `json:"counters"`
}

// Measure runs fn as one experiment, capturing wall time and the heap
// allocation delta around it, and appends the entry on success.
func (r *Report) Measure(name string, fn func(e *Entry) error) error {
	e := &Entry{Name: name}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	start := time.Now()
	err := fn(e)
	e.DurationMS = float64(time.Since(start)) / float64(time.Millisecond)
	runtime.ReadMemStats(&after)
	e.AllocBytes = after.TotalAlloc - before.TotalAlloc
	e.Mallocs = after.Mallocs - before.Mallocs
	if err != nil {
		return err
	}
	r.Experiments = append(r.Experiments, e)
	return nil
}

// Entry returns the named experiment entry, or nil when absent.
func (r *Report) Entry(name string) *Entry {
	for _, e := range r.Experiments {
		if e.Name == name {
			return e
		}
	}
	return nil
}

// ValidateKeys checks every experiment's metric keys against the
// generated meter registry (internal/metrics/names.go). The metername
// analyzer already proves the literal parts of each key at build time;
// this is the runtime backstop for the dynamically-assembled ones.
func (r *Report) ValidateKeys() error {
	var bad []string
	for _, e := range r.Experiments {
		for key := range e.Metrics {
			if !metrics.KnownMetricName(key) {
				bad = append(bad, fmt.Sprintf("%s: %q", e.Name, key))
			}
		}
	}
	if len(bad) == 0 {
		return nil
	}
	sort.Strings(bad)
	return fmt.Errorf("unregistered metric key(s) in benchmark output (regenerate the registry with `make meters` if intentional):\n  %s",
		strings.Join(bad, "\n  "))
}

// Write validates the metric keys, snapshots the data-plane counters and
// writes the report to path.
func (r *Report) Write(path string) error {
	if err := r.ValidateKeys(); err != nil {
		return err
	}
	hits, misses := frame.PoolStats()
	r.Counters = map[string]uint64{
		"frame.pool.hit":    hits,
		"frame.pool.miss":   misses,
		"wire.bytes_copied": wire.BytesCopied(),
	}
	data, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return fmt.Errorf("marshal report: %w", err)
	}
	data = append(data, '\n')
	if err := os.WriteFile(path, data, 0o644); err != nil {
		return fmt.Errorf("write report: %w", err)
	}
	return nil
}

// Read parses a report document from disk — the gate's input path.
func Read(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("read report: %w", err)
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("parse report %s: %w", path, err)
	}
	return &r, nil
}
