// Package chaos is a deterministic fault-injection harness for VideoPipe
// clusters. A Schedule is a declarative list of timed fault events —
// network partitions, latency spikes, loss bursts, service-pool kills and
// device pauses — either written literally or generated from a seed, so a
// resilience experiment replays the exact same fault sequence on every
// run. The Injector applies a schedule against a running core.Cluster
// through the substrates' own failure knobs (netsim.Partition/Shape,
// services.Pool.Kill, device.Pause) and always reverses every fault it
// injected, even when the run is cancelled mid-outage.
package chaos

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

// Kind identifies one class of injected fault.
type Kind int

// Fault kinds. Enums start at one.
const (
	// KindPartition severs a link (target: LinkTarget(a, b)) for the
	// event's duration, then heals it.
	KindPartition Kind = iota + 1
	// KindLatencySpike overlays a high-latency profile on a link.
	KindLatencySpike
	// KindLossBurst overlays a lossy profile on a link.
	KindLossBurst
	// KindKillService empties a service pool (target: service name), then
	// restores it to its prior size.
	KindKillService
	// KindPauseDevice freezes a device's modules and pools (target:
	// device name), then resumes them.
	KindPauseDevice
	// KindDeviceCrash kills a device permanently (target: device name):
	// it hangs and drops off the network for every peer, and is never
	// reversed — recovery is the supervisor's job, not the injector's.
	KindDeviceCrash
	// KindRunawayModule hot-swaps a hostile infinite-loop body into a live
	// module (target: ModuleTarget(pipeline, module)). Never reversed —
	// the sandbox must breach, kill, and the supervisor restart the module
	// from its original source.
	KindRunawayModule
	// KindHogModule hot-swaps a hostile allocation-bomb body into a live
	// module (target: ModuleTarget(pipeline, module)). Never reversed, as
	// with KindRunawayModule.
	KindHogModule
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindPartition:
		return "partition"
	case KindLatencySpike:
		return "latency_spike"
	case KindLossBurst:
		return "loss_burst"
	case KindKillService:
		return "kill_service"
	case KindPauseDevice:
		return "pause_device"
	case KindDeviceCrash:
		return "device_crash"
	case KindRunawayModule:
		return "runaway_module"
	case KindHogModule:
		return "hog_module"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Event is one scheduled fault: at offset At from the start of the run,
// inject Kind against Target and reverse it after Duration.
type Event struct {
	At       time.Duration
	Kind     Kind
	Target   string
	Duration time.Duration
}

// String renders the event in the canonical fingerprint form.
//
//vpvet:deterministic
func (e Event) String() string {
	return fmt.Sprintf("%s %s %s for %s", e.At, e.Kind, e.Target, e.Duration)
}

// Schedule is an ordered fault plan. Events need not be pre-sorted;
// consumers order by At (ties broken by kind then target) so a schedule's
// meaning is independent of literal ordering.
type Schedule []Event

// Sorted returns a copy ordered by At with a deterministic tie-break.
//
//vpvet:deterministic
func (s Schedule) Sorted() Schedule {
	out := append(Schedule(nil), s...)
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].At != out[j].At {
			return out[i].At < out[j].At
		}
		if out[i].Kind != out[j].Kind {
			return out[i].Kind < out[j].Kind
		}
		return out[i].Target < out[j].Target
	})
	return out
}

// Fingerprint renders the sorted schedule as one canonical string — the
// value reproducibility tests compare across same-seed runs.
//
//vpvet:deterministic
func (s Schedule) Fingerprint() string {
	var b strings.Builder
	for i, e := range s.Sorted() {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(e.String())
	}
	return b.String()
}

// linkSep joins the two hosts of a link target. Host names come from
// cluster specs, which never contain '|'.
const linkSep = "|"

// LinkTarget encodes a host pair as an Event target for the link kinds.
// Order does not matter: the pair is canonicalized.
func LinkTarget(a, b string) string {
	if a > b {
		a, b = b, a
	}
	return a + linkSep + b
}

// SplitLink decodes a link target back into its two hosts.
func SplitLink(target string) (a, b string, err error) {
	parts := strings.Split(target, linkSep)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", fmt.Errorf("chaos: bad link target %q, want \"hostA|hostB\"", target)
	}
	return parts[0], parts[1], nil
}

// ModuleTarget encodes a pipeline/module pair as an Event target for the
// module-sabotage kinds. Unlike LinkTarget the order is significant, so no
// canonicalization happens.
func ModuleTarget(pipeline, module string) string {
	return pipeline + linkSep + module
}

// SplitModuleTarget decodes a module target into pipeline and module.
func SplitModuleTarget(target string) (pipeline, module string, err error) {
	parts := strings.Split(target, linkSep)
	if len(parts) != 2 || parts[0] == "" || parts[1] == "" {
		return "", "", fmt.Errorf("chaos: bad module target %q, want \"pipeline|module\"", target)
	}
	return parts[0], parts[1], nil
}

// GenOptions bounds a generated schedule. At least one target class
// (Links, Services, Devices) must be non-empty.
type GenOptions struct {
	// Horizon is the window fault start times are drawn from; zero
	// selects 5 s.
	Horizon time.Duration
	// Events is how many faults to generate; zero selects 3.
	Events int
	// Links lists link targets (LinkTarget form) eligible for partition,
	// latency-spike and loss-burst events.
	Links []string
	// Services lists service names eligible for kill events.
	Services []string
	// Devices lists device names eligible for pause events.
	Devices []string
	// CrashDevices lists device names eligible for permanent crash
	// events. Crashes are unrecoverable without a supervisor, so only
	// supervised experiments should populate this.
	CrashDevices []string
	// MinDuration and MaxDuration bound each fault's length; zeros select
	// 200 ms and 800 ms.
	MinDuration time.Duration
	MaxDuration time.Duration
	// RunawayModules lists module targets (ModuleTarget form) eligible for
	// hostile infinite-loop injection. Sandbox governance plus a
	// supervisor are required to recover, so only supervised experiments
	// should populate this.
	RunawayModules []string
	// HogModules lists module targets eligible for hostile
	// allocation-bomb injection, under the same caveat.
	HogModules []string
}

// Generate derives a schedule from a seed: the same seed and options
// always produce the identical event sequence. Faults are drawn uniformly
// over the eligible kind/target space with start times in [0, Horizon)
// and durations in [MinDuration, MaxDuration].
//
//vpvet:deterministic
func Generate(seed int64, o GenOptions) Schedule {
	horizon := o.Horizon
	if horizon <= 0 {
		horizon = 5 * time.Second
	}
	events := o.Events
	if events <= 0 {
		events = 3
	}
	minD := o.MinDuration
	if minD <= 0 {
		minD = 200 * time.Millisecond
	}
	maxD := o.MaxDuration
	if maxD < minD {
		maxD = minD + 600*time.Millisecond
	}

	type choice struct {
		kind    Kind
		targets []string
	}
	var choices []choice
	if len(o.Links) > 0 {
		choices = append(choices,
			choice{KindPartition, o.Links},
			choice{KindLatencySpike, o.Links},
			choice{KindLossBurst, o.Links},
		)
	}
	if len(o.Services) > 0 {
		choices = append(choices, choice{KindKillService, o.Services})
	}
	if len(o.Devices) > 0 {
		choices = append(choices, choice{KindPauseDevice, o.Devices})
	}
	// Appended after the legacy classes so existing seeds keep producing
	// byte-identical schedules when CrashDevices is empty.
	if len(o.CrashDevices) > 0 {
		choices = append(choices, choice{KindDeviceCrash, o.CrashDevices})
	}
	// Likewise appended after every older class.
	if len(o.RunawayModules) > 0 {
		choices = append(choices, choice{KindRunawayModule, o.RunawayModules})
	}
	if len(o.HogModules) > 0 {
		choices = append(choices, choice{KindHogModule, o.HogModules})
	}
	if len(choices) == 0 {
		return nil
	}

	rng := rand.New(rand.NewSource(seed))
	s := make(Schedule, 0, events)
	for i := 0; i < events; i++ {
		c := choices[rng.Intn(len(choices))]
		d := minD
		if span := maxD - minD; span > 0 {
			d += time.Duration(rng.Int63n(int64(span)))
		}
		s = append(s, Event{
			At:       time.Duration(rng.Int63n(int64(horizon))),
			Kind:     c.kind,
			Target:   c.targets[rng.Intn(len(c.targets))],
			Duration: d,
		})
	}
	return s.Sorted()
}
