package chaos

import (
	"context"
	"strings"
	"testing"
	"time"

	"videopipe/internal/core"
	"videopipe/internal/device"
	"videopipe/internal/netsim"
	"videopipe/internal/services"
)

func TestGenerateIsSeedDeterministic(t *testing.T) {
	opts := GenOptions{
		Horizon:  3 * time.Second,
		Events:   8,
		Links:    []string{LinkTarget("phone", "desktop"), LinkTarget("desktop", "tv")},
		Services: []string{"pose_detection"},
		Devices:  []string{"desktop"},
	}
	a := Generate(42, opts)
	b := Generate(42, opts)
	if a.Fingerprint() != b.Fingerprint() {
		t.Errorf("same seed produced different schedules:\n%s\n---\n%s", a.Fingerprint(), b.Fingerprint())
	}
	c := Generate(43, opts)
	if a.Fingerprint() == c.Fingerprint() {
		t.Error("different seeds produced identical schedules")
	}
}

func TestGenerateRespectsOptions(t *testing.T) {
	opts := GenOptions{
		Horizon:     2 * time.Second,
		Events:      20,
		Links:       []string{LinkTarget("a", "b")},
		Services:    []string{"svc"},
		MinDuration: 100 * time.Millisecond,
		MaxDuration: 300 * time.Millisecond,
	}
	s := Generate(7, opts)
	if len(s) != 20 {
		t.Fatalf("generated %d events, want 20", len(s))
	}
	for i, ev := range s {
		if ev.At < 0 || ev.At >= opts.Horizon {
			t.Errorf("event %d At=%v outside horizon", i, ev.At)
		}
		if ev.Duration < opts.MinDuration || ev.Duration > opts.MaxDuration {
			t.Errorf("event %d Duration=%v outside bounds", i, ev.Duration)
		}
		switch ev.Kind {
		case KindPartition, KindLatencySpike, KindLossBurst:
			if ev.Target != "a|b" {
				t.Errorf("event %d link target %q", i, ev.Target)
			}
		case KindKillService:
			if ev.Target != "svc" {
				t.Errorf("event %d service target %q", i, ev.Target)
			}
		case KindPauseDevice:
			t.Errorf("event %d pause generated with no devices", i)
		}
		if i > 0 && s[i-1].At > ev.At {
			t.Errorf("schedule not sorted at %d", i)
		}
	}
}

// TestGenerateCrashDevices checks the device_crash class: populated
// CrashDevices yield seed-stable device_crash events, and an empty
// CrashDevices leaves legacy seeds byte-identical — the new class is
// appended after the old ones so existing golden fingerprints hold.
func TestGenerateCrashDevices(t *testing.T) {
	legacy := GenOptions{
		Horizon:  3 * time.Second,
		Events:   12,
		Links:    []string{LinkTarget("phone", "desktop")},
		Services: []string{"pose_detection"},
		Devices:  []string{"desktop"},
	}
	withCrash := legacy
	withCrash.CrashDevices = []string{"tv"}

	// Empty CrashDevices must not perturb legacy schedules.
	if Generate(42, legacy).Fingerprint() != Generate(42, GenOptions{
		Horizon:      legacy.Horizon,
		Events:       legacy.Events,
		Links:        legacy.Links,
		Services:     legacy.Services,
		Devices:      legacy.Devices,
		CrashDevices: nil,
	}).Fingerprint() {
		t.Error("nil CrashDevices changed a legacy schedule")
	}

	a := Generate(42, withCrash)
	if a.Fingerprint() != Generate(42, withCrash).Fingerprint() {
		t.Error("crash-enabled generation not seed-deterministic")
	}
	crashes := 0
	for _, ev := range a {
		if ev.Kind == KindDeviceCrash {
			crashes++
			if ev.Target != "tv" {
				t.Errorf("device_crash target %q, want tv", ev.Target)
			}
		}
	}
	if crashes == 0 {
		t.Error("no device_crash events drawn over 12 events with 6 classes")
	}
	if !strings.Contains(a.Fingerprint(), "device_crash tv") {
		t.Errorf("fingerprint missing device_crash: %q", a.Fingerprint())
	}

	// Crash-only generation works too.
	only := Generate(7, GenOptions{Events: 4, CrashDevices: []string{"tv", "phone"}})
	for i, ev := range only {
		if ev.Kind != KindDeviceCrash {
			t.Errorf("event %d kind %v, want device_crash", i, ev.Kind)
		}
	}
}

func TestGenerateWithNoTargetsIsEmpty(t *testing.T) {
	if s := Generate(1, GenOptions{Events: 5}); s != nil {
		t.Errorf("targetless generation produced %v", s)
	}
}

func TestLinkTargetRoundTrip(t *testing.T) {
	if LinkTarget("b", "a") != LinkTarget("a", "b") {
		t.Error("link target not canonical")
	}
	a, b, err := SplitLink(LinkTarget("phone", "desktop"))
	if err != nil || a != "desktop" || b != "phone" {
		t.Errorf("SplitLink = %q, %q, %v", a, b, err)
	}
	for _, bad := range []string{"", "solo", "|x", "x|", "a|b|c"} {
		if _, _, err := SplitLink(bad); err == nil {
			t.Errorf("SplitLink(%q) succeeded", bad)
		}
	}
}

func TestScheduleSortingAndFingerprint(t *testing.T) {
	s := Schedule{
		{At: 2 * time.Second, Kind: KindPartition, Target: "a|b", Duration: time.Second},
		{At: time.Second, Kind: KindKillService, Target: "svc", Duration: time.Second},
		{At: time.Second, Kind: KindPartition, Target: "a|b", Duration: time.Second},
	}
	sorted := s.Sorted()
	if sorted[0].Kind != KindPartition || sorted[1].Kind != KindKillService {
		t.Errorf("tie-break order wrong: %v", sorted)
	}
	fp := s.Fingerprint()
	if !strings.Contains(fp, "partition a|b") || !strings.Contains(fp, "kill_service svc") {
		t.Errorf("fingerprint rendering: %q", fp)
	}
	// Fingerprint is order-insensitive over the literal slice.
	shuffled := Schedule{s[2], s[0], s[1]}
	if shuffled.Fingerprint() != fp {
		t.Error("fingerprint depends on literal event order")
	}
}

// testCluster builds a minimal two-device cluster with one trivial
// service on the desktop.
func testCluster(t *testing.T) *core.Cluster {
	t.Helper()
	reg := services.NewRegistry()
	err := reg.Register(services.Spec{
		Name: "echo",
		Handler: func(_ context.Context, req services.Request) (services.Response, error) {
			return services.Response{Result: map[string]any{"ok": true}}, nil
		},
	})
	if err != nil {
		t.Fatalf("Register: %v", err)
	}
	c, err := core.NewCluster(core.ClusterSpec{
		Devices: []device.Config{
			{Name: "phone", Class: device.Phone},
			{Name: "desktop", Class: device.Desktop},
		},
		DefaultLink: netsim.LinkProfile{},
		Services:    []core.ServicePlacement{{Service: "echo", Device: "desktop", Instances: 2}},
	}, reg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestInjectorAppliesAndReverses(t *testing.T) {
	c := testCluster(t)
	inj := NewInjector(c)
	link := LinkTarget("phone", "desktop")
	s := Schedule{
		{At: 0, Kind: KindPartition, Target: link, Duration: 80 * time.Millisecond},
		{At: 20 * time.Millisecond, Kind: KindLatencySpike, Target: link, Duration: 80 * time.Millisecond},
		{At: 40 * time.Millisecond, Kind: KindKillService, Target: "echo", Duration: 80 * time.Millisecond},
	}

	// Observe mid-run state from a goroutine while Run blocks.
	nw := c.Network()
	pool, err := c.Pool("echo")
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	midChecked := make(chan struct{})
	go func() {
		defer close(midChecked)
		time.Sleep(60 * time.Millisecond)
		if !nw.Partitioned("phone", "desktop") {
			t.Error("partition not applied mid-run")
		}
		if !nw.Shaped("phone", "desktop") {
			t.Error("latency spike not applied mid-run")
		}
		if pool.Size() != 0 {
			t.Errorf("pool size mid-kill = %d, want 0", pool.Size())
		}
	}()

	applied := inj.Run(context.Background(), s)
	<-midChecked

	if len(applied) != 3 {
		t.Fatalf("applied %d events, want 3: %v", len(applied), applied)
	}
	// Injection order matches schedule order.
	for i, ev := range s {
		if applied[i].Kind != ev.Kind || applied[i].Target != ev.Target {
			t.Errorf("applied[%d] = %v, want %v %s", i, applied[i], ev.Kind, ev.Target)
		}
	}
	// Everything reversed.
	if nw.Partitioned("phone", "desktop") {
		t.Error("partition not healed after Run")
	}
	if nw.Shaped("phone", "desktop") {
		t.Error("shape not cleared after Run")
	}
	if pool.Size() != 2 {
		t.Errorf("pool size after restore = %d, want 2", pool.Size())
	}
	if got := c.Metrics().Meter("chaos.injected").Count(); got != 3 {
		t.Errorf("chaos.injected = %d, want 3", got)
	}
}

func TestInjectorPausesAndResumesDevice(t *testing.T) {
	c := testCluster(t)
	inj := NewInjector(c)
	desktop, _ := c.Device("desktop")
	s := Schedule{{At: 0, Kind: KindPauseDevice, Target: "desktop", Duration: 60 * time.Millisecond}}

	go func() {
		time.Sleep(30 * time.Millisecond)
		if !desktop.Paused() {
			t.Error("device not paused mid-event")
		}
	}()
	inj.Run(context.Background(), s)
	if desktop.Paused() {
		t.Error("device still paused after Run")
	}
}

// TestInjectorDeviceCrashIsPermanent injects a device_crash and verifies
// the fault is never reversed: the device stays crashed and partitioned
// from every peer after Run returns.
func TestInjectorDeviceCrashIsPermanent(t *testing.T) {
	c := testCluster(t)
	inj := NewInjector(c)
	s := Schedule{{At: 0, Kind: KindDeviceCrash, Target: "desktop", Duration: 20 * time.Millisecond}}
	applied := inj.Run(context.Background(), s)
	if len(applied) != 1 || applied[0].Kind != KindDeviceCrash {
		t.Fatalf("applied = %v, want one device_crash", applied)
	}
	desktop, _ := c.Device("desktop")
	if !desktop.Crashed() {
		t.Error("device not crashed after Run")
	}
	if !c.Network().Partitioned("phone", "desktop") {
		t.Error("crashed device's links healed: crash must be permanent")
	}
}

// TestInjectorExternalRepair verifies that with ExternalRepair set the
// injector leaves a killed pool down (the supervisor's job) while still
// reversing link faults itself.
func TestInjectorExternalRepair(t *testing.T) {
	c := testCluster(t)
	inj := NewInjector(c)
	inj.ExternalRepair = true
	link := LinkTarget("phone", "desktop")
	s := Schedule{
		{At: 0, Kind: KindKillService, Target: "echo", Duration: 20 * time.Millisecond},
		{At: 0, Kind: KindPartition, Target: link, Duration: 20 * time.Millisecond},
	}
	inj.Run(context.Background(), s)
	pool, err := c.Pool("echo")
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	if pool.Size() != 0 {
		t.Errorf("pool size = %d after external-repair run, want 0 (left for the supervisor)", pool.Size())
	}
	if c.Network().Partitioned("phone", "desktop") {
		t.Error("partition not reversed: link faults heal regardless of ExternalRepair")
	}
}

func TestInjectorReversesOnCancel(t *testing.T) {
	c := testCluster(t)
	inj := NewInjector(c)
	link := LinkTarget("phone", "desktop")
	s := Schedule{
		{At: 0, Kind: KindPartition, Target: link, Duration: time.Hour},
		// Never reached: cancellation stops further injection.
		{At: time.Hour, Kind: KindKillService, Target: "echo", Duration: time.Second},
	}
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	start := time.Now()
	applied := inj.Run(ctx, s)
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("cancelled Run blocked %v", elapsed)
	}
	if len(applied) != 1 {
		t.Errorf("applied = %v, want only the partition", applied)
	}
	if c.Network().Partitioned("phone", "desktop") {
		t.Error("hour-long partition not reversed on cancel")
	}
}

func TestInjectorSkipsBadTargets(t *testing.T) {
	c := testCluster(t)
	inj := NewInjector(c)
	s := Schedule{
		{At: 0, Kind: KindKillService, Target: "ghost", Duration: 10 * time.Millisecond},
		{At: 0, Kind: KindPauseDevice, Target: "ghost", Duration: 10 * time.Millisecond},
		{At: 0, Kind: KindPartition, Target: "not-a-link", Duration: 10 * time.Millisecond},
		{At: 10 * time.Millisecond, Kind: KindLossBurst, Target: LinkTarget("phone", "desktop"), Duration: 10 * time.Millisecond},
	}
	applied := inj.Run(context.Background(), s)
	if len(applied) != 1 || applied[0].Kind != KindLossBurst {
		t.Errorf("applied = %v, want only the loss burst", applied)
	}
	if got := c.Metrics().Meter("chaos.errors").Count(); got != 3 {
		t.Errorf("chaos.errors = %d, want 3", got)
	}
}
