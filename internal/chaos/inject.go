package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"videopipe/internal/core"
	"videopipe/internal/netsim"
)

// Applied records one fault the injector actually injected, in injection
// order — the run log reproducibility tests compare against the schedule.
type Applied struct {
	// At is the event's scheduled offset.
	At time.Duration
	// Kind and Target identify the fault.
	Kind   Kind
	Target string
}

// String renders the applied entry.
func (a Applied) String() string {
	return fmt.Sprintf("%s %s %s", a.At, a.Kind, a.Target)
}

// Injector drives a Schedule against a running cluster. Every injected
// fault is reversed — after its duration, or immediately when the run
// context is cancelled — so a cluster is always restored to health before
// Run returns.
type Injector struct {
	cluster *core.Cluster

	// Spike is the profile overlaid by latency-spike events: congested
	// Wi-Fi an order of magnitude slower than the healthy link.
	Spike netsim.LinkProfile
	// Burst is the profile overlaid by loss-burst events: heavy
	// retransmission on otherwise-nominal Wi-Fi.
	Burst netsim.LinkProfile

	// ExternalRepair hands kill_service recovery to an external agent
	// (the supervisor): the injector stops restoring killed pools itself,
	// so a test passing only proves the supervisor healed the cluster.
	// Link faults and device pauses still reverse (a reboot completes, a
	// cable comes back, with or without a supervisor).
	ExternalRepair bool

	mu      sync.Mutex
	applied []Applied
}

// NewInjector creates an injector for the cluster with default spike and
// burst profiles.
func NewInjector(c *core.Cluster) *Injector {
	return &Injector{
		cluster: c,
		Spike: netsim.LinkProfile{
			Latency:   80 * time.Millisecond,
			Jitter:    30 * time.Millisecond,
			Bandwidth: 1_500_000, // ~12 Mbit/s: congested Wi-Fi
			Loss:      0.01,
		},
		Burst: netsim.LinkProfile{
			Latency:   5 * time.Millisecond,
			Jitter:    2 * time.Millisecond,
			Bandwidth: 12_500_000,
			Loss:      0.35,
		},
	}
}

// Applied returns the injection log so far, in injection order.
func (inj *Injector) Applied() []Applied {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	return append([]Applied(nil), inj.applied...)
}

// Run executes the schedule against the cluster: it waits to each event's
// offset, injects the fault, and schedules its reversal. When ctx ends,
// no further events are injected but every outstanding fault is reversed
// before Run returns. It returns the injection log.
func (inj *Injector) Run(ctx context.Context, s Schedule) []Applied {
	start := time.Now()
	reg := inj.cluster.Metrics()
	var reversals sync.WaitGroup

	for _, ev := range s.Sorted() {
		if !sleepUntil(ctx, start.Add(ev.At)) {
			break
		}
		reverse, err := inj.apply(ev)
		if err != nil {
			// A bad target (unknown service, malformed link) is a
			// schedule bug, not a fault to inject; record and move on.
			reg.Meter("chaos.errors").Mark()
			continue
		}
		reg.Meter("chaos.injected").Mark()
		inj.mu.Lock()
		inj.applied = append(inj.applied, Applied{At: ev.At, Kind: ev.Kind, Target: ev.Target})
		inj.mu.Unlock()

		reversals.Add(1)
		go func(d time.Duration, reverse func()) {
			defer reversals.Done()
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-t.C:
			case <-ctx.Done():
			}
			reverse()
		}(ev.Duration, reverse)
	}

	reversals.Wait()
	return inj.Applied()
}

// apply injects one fault and returns its reversal. Reversals use the
// substrates' unconditional restore paths (Heal, ClearShape, Resume,
// Scale with a background context) so they succeed even mid-shutdown.
func (inj *Injector) apply(ev Event) (func(), error) {
	nw := inj.cluster.Network()
	switch ev.Kind {
	case KindPartition:
		a, b, err := SplitLink(ev.Target)
		if err != nil {
			return nil, err
		}
		nw.Partition(a, b)
		return func() { nw.Heal(a, b) }, nil

	case KindLatencySpike, KindLossBurst:
		a, b, err := SplitLink(ev.Target)
		if err != nil {
			return nil, err
		}
		profile := inj.Spike
		if ev.Kind == KindLossBurst {
			profile = inj.Burst
		}
		nw.Shape(a, b, profile)
		return func() { nw.ClearShape(a, b) }, nil

	case KindKillService:
		pool, err := inj.cluster.Pool(ev.Target)
		if err != nil {
			return nil, err
		}
		prev := pool.Size()
		if prev == 0 {
			return nil, fmt.Errorf("chaos: pool %q already empty", ev.Target)
		}
		pool.Kill(prev)
		if inj.ExternalRepair {
			return func() {}, nil
		}
		return func() { _ = pool.Scale(context.Background(), prev) }, nil

	case KindPauseDevice:
		dev, ok := inj.cluster.Device(ev.Target)
		if !ok {
			return nil, fmt.Errorf("chaos: unknown device %q", ev.Target)
		}
		dev.Pause()
		return dev.Resume, nil

	case KindRunawayModule, KindHogModule:
		pname, mod, err := SplitModuleTarget(ev.Target)
		if err != nil {
			return nil, err
		}
		var pipe *core.Pipeline
		for _, p := range inj.cluster.Pipelines() {
			if p.Name() == pname {
				pipe = p
				break
			}
		}
		if pipe == nil {
			return nil, fmt.Errorf("chaos: unknown pipeline %q", pname)
		}
		src := RunawaySource
		if ev.Kind == KindHogModule {
			src = HogSource
		}
		// Hot-swap hostile code into the live module. The fault is
		// permanent from the injector's perspective: the sandbox must
		// breach and kill the module, and the supervisor must restart it
		// from its original source — there is deliberately no reversal.
		if err := pipe.UpdateModule(mod, src); err != nil {
			return nil, err
		}
		return func() {}, nil

	case KindDeviceCrash:
		dev, ok := inj.cluster.Device(ev.Target)
		if !ok {
			return nil, fmt.Errorf("chaos: unknown device %q", ev.Target)
		}
		// A crashed host hangs (Crash) and drops off the LAN for every
		// peer; the supervisor's probe vantage point is not a device, so
		// it still observes the hang and can declare death. The fault is
		// permanent: there is deliberately no reversal.
		dev.Crash()
		for _, other := range inj.cluster.DeviceNames() {
			if other != ev.Target {
				nw.Partition(other, ev.Target)
			}
		}
		return func() {}, nil

	default:
		return nil, fmt.Errorf("chaos: unknown event kind %v", ev.Kind)
	}
}

// sleepUntil blocks until t or ctx ends, reporting whether t was reached.
func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}
