package chaos

// Hostile PipeScript bodies for the module-sabotage fault kinds. Both are
// valid, loadable modules — the attack is in the handler, so the hot-swap
// succeeds and every subsequent event breaches a sandbox budget. Both pin
// _PRESERVATION_VERSION to a value no benign module uses, so when the
// supervisor restarts the module from its original source the hostile
// globals snapshot is discarded rather than restored.

// RunawaySource spins forever in event_received: each event burns the
// module's entire instruction budget and is aborted by the sandbox.
const RunawaySource = `
var _PRESERVATION_VERSION = 666;

function event_received(m) {
	var i = 0;
	while (true) { i = i + 1; }
}
`

// HogSource doubles a string until the allocation accounting trips the
// module's memory budget (or, failing that, the instruction budget).
const HogSource = `
var _PRESERVATION_VERSION = 666;

function event_received(m) {
	var chunk = "0123456789abcdef";
	var hoard = [];
	while (true) {
		chunk = chunk + chunk;
		push(hoard, chunk);
	}
}
`
