package core

import (
	"fmt"
	"strings"

	"videopipe/internal/script"
)

// Config-aware static analysis ("pipevet", layer 2). AnalyzePipeline runs
// the script-level analyzer over every module of a pipeline and then
// cross-checks what each module's AST actually references against what its
// ModuleConfig declares: literal call_service targets must appear in
// Services, literal call_module targets must be declared Next edges, and —
// vice versa — declared services and edges that no call site references are
// flagged. Modules reachable from the video source must define
// event_received. Launch and PipelineBuilder.Build reject pipelines with
// error-severity findings, so these mistakes fail at deploy time instead of
// killing frames at runtime.

// Diagnostic codes added by the config cross-check layer, extending the
// script-level PV0xx range.
const (
	CodeUndeclaredService = "PV101" // call_service target missing from Services
	CodeUndeclaredEdge    = "PV102" // call_module target is not a Next edge
	CodeUnusedService     = "PV103" // declared service never called
	CodeUnusedEdge        = "PV104" // declared edge never targeted
)

// CodeLimitBreach (PV014) flags sandbox-budget problems visible
// statically: an instruction limit below the pipecost worst-case bound
// (every event is guaranteed to breach), or an unbounded handler deployed
// with no declared instruction limit (it will run until the cluster
// default kills it). It continues the script-level PV0xx range because the
// check joins pipecost's script analysis with the config's limits.
const CodeLimitBreach = "PV014"

// Diagnostic is one analyzer finding attributed to a pipeline module.
type Diagnostic struct {
	Pipeline string
	Module   string
	Pos      script.Position
	Code     string
	Severity script.Severity
	Message  string
}

func (d Diagnostic) String() string {
	var b strings.Builder
	if d.Module != "" {
		fmt.Fprintf(&b, "module %s: ", d.Module)
	}
	if d.Pos != (script.Position{}) {
		fmt.Fprintf(&b, "%s: ", d.Pos)
	}
	fmt.Fprintf(&b, "%s %s: %s", d.Severity, d.Code, d.Message)
	return b.String()
}

// AnalysisError is returned by Launch and Build when pipevet finds
// error-severity diagnostics; it carries every error so one deploy attempt
// surfaces all of them.
type AnalysisError struct {
	Pipeline    string
	Diagnostics []Diagnostic
}

func (e *AnalysisError) Error() string {
	msgs := make([]string, len(e.Diagnostics))
	for i, d := range e.Diagnostics {
		msgs[i] = d.String()
	}
	return fmt.Sprintf("core: pipeline %q failed static analysis:\n  %s",
		e.Pipeline, strings.Join(msgs, "\n  "))
}

// AnalyzePipeline runs the full pipevet pass — script-level checks plus
// config cross-checks — over every module and returns all diagnostics,
// warnings included. It does not require the config to pass Validate, so
// the lint path can report script diagnostics alongside structural errors.
func AnalyzePipeline(cfg *PipelineConfig) []Diagnostic {
	reachable := reachableModules(cfg)
	var out []Diagnostic
	shapes := make(map[string]script.ShapeReport, len(cfg.Modules))
	for i := range cfg.Modules {
		m := &cfg.Modules[i]
		rep := script.Analyze(m.Source, script.Options{
			RequireEventReceived: reachable[m.Name],
		})
		for _, d := range rep.Diagnostics {
			out = append(out, Diagnostic{
				Pipeline: cfg.Name, Module: m.Name,
				Pos: d.Pos, Code: d.Code, Severity: d.Severity, Message: d.Message,
			})
		}
		out = append(out, crossCheckModule(cfg, m, rep)...)
		out = append(out, limitsCheckModule(cfg, m)...)
		shapes[m.Name] = rep.Shapes
	}
	// pipetype: whole-DAG edge-contract checks over the per-module shape
	// reports (shapecheck.go).
	out = append(out, shapeCheckPipeline(cfg, shapes)...)
	return out
}

// limitsCheckModule cross-checks a module's sandbox budget against its
// pipecost static bounds (PV014). Both findings are warnings: a
// guaranteed-breach limit may be a deliberate canary, and an unbounded
// handler still runs under the cluster default — but both deserve a loud
// note at deploy time.
func limitsCheckModule(cfg *PipelineConfig, m *ModuleConfig) []Diagnostic {
	eff := cfg.EffectiveLimits(m.Name)
	declared := m.Limits.Instructions > 0 || cfg.Limits.Instructions > 0
	cost := script.AnalyzeCost(m.Source)

	var out []Diagnostic
	add := func(pos script.Position, msg string) {
		out = append(out, Diagnostic{
			Pipeline: cfg.Name, Module: m.Name,
			Pos: pos, Code: CodeLimitBreach, Severity: script.SeverityWarning, Message: msg,
		})
	}

	for _, h := range cost.Handlers {
		// Resolve which budget governs this handler: init and top-level
		// load run under the init budget when one is set.
		limit := eff.Instructions
		budget := "instruction_limit"
		if (h.Name == "init" || h.Name == script.LoadHandler) && eff.InitInstructions > 0 {
			limit = eff.InitInstructions
			budget = "init_instructions"
		}
		if h.Bounded {
			if limit > 0 && h.Steps > limit {
				add(h.Pos, fmt.Sprintf(
					"%s static worst case (%d steps) exceeds the effective %s (%d): every invocation is guaranteed to breach",
					handlerLabelFor(h.Name), h.Steps, budget, limit))
			}
		} else if !declared {
			add(h.Pos, fmt.Sprintf(
				"%s has no static cost bound and the module declares no instruction_limit; it runs until the cluster default (%d steps) kills it",
				handlerLabelFor(h.Name), int64(DefaultInstructionLimit)))
		}
	}
	return out
}

// handlerLabelFor renders a cost-handler name for diagnostics.
func handlerLabelFor(name string) string {
	if name == script.LoadHandler {
		return "module top level"
	}
	return name + "()"
}

// AnalyzeModuleSource runs only the script-level checks over one module
// source, without config cross-checks — for tooling that lints standalone
// PipeScript files.
func AnalyzeModuleSource(src string) []Diagnostic {
	rep := script.Analyze(src, script.Options{})
	out := make([]Diagnostic, 0, len(rep.Diagnostics))
	for _, d := range rep.Diagnostics {
		out = append(out, Diagnostic{Pos: d.Pos, Code: d.Code, Severity: d.Severity, Message: d.Message})
	}
	return out
}

// AnalysisErrors filters diagnostics down to error severity.
func AnalysisErrors(diags []Diagnostic) []Diagnostic {
	var out []Diagnostic
	for _, d := range diags {
		if d.Severity == script.SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// analyzeForLaunch gates a deployment: error-severity findings come back as
// an *AnalysisError, warnings are returned for the caller to log.
func analyzeForLaunch(cfg *PipelineConfig) ([]Diagnostic, error) {
	diags := AnalyzePipeline(cfg)
	var warns []Diagnostic
	var errs []Diagnostic
	for _, d := range diags {
		if d.Severity == script.SeverityError {
			errs = append(errs, d)
		} else {
			warns = append(warns, d)
		}
	}
	if len(errs) > 0 {
		return warns, &AnalysisError{Pipeline: cfg.Name, Diagnostics: errs}
	}
	return warns, nil
}

// reachableModules walks the DAG from the source's first module.
func reachableModules(cfg *PipelineConfig) map[string]bool {
	reachable := make(map[string]bool, len(cfg.Modules))
	if cfg.Source.FirstModule == "" {
		return reachable
	}
	queue := []string{cfg.Source.FirstModule}
	for len(queue) > 0 {
		name := queue[0]
		queue = queue[1:]
		if reachable[name] {
			continue
		}
		m, ok := cfg.Module(name)
		if !ok {
			continue // Validate reports unknown names
		}
		reachable[name] = true
		queue = append(queue, m.Next...)
	}
	return reachable
}

// crossCheckModule compares the literal call targets the analyzer extracted
// from a module's source against the module's declared Services and Next
// edges (PV101–PV104).
func crossCheckModule(cfg *PipelineConfig, m *ModuleConfig, rep script.Report) []Diagnostic {
	declaredSvc := toSet(m.Services)
	declaredNext := toSet(m.Next)
	usedSvc := make(map[string]bool)
	usedNext := make(map[string]bool)
	var out []Diagnostic

	add := func(pos script.Position, code string, sev script.Severity, msg string) {
		out = append(out, Diagnostic{
			Pipeline: cfg.Name, Module: m.Name,
			Pos: pos, Code: code, Severity: sev, Message: msg,
		})
	}

	for _, t := range rep.Facts.ServiceTargets {
		usedSvc[t.Name] = true
		if !declaredSvc[t.Name] {
			add(t.Pos, CodeUndeclaredService, script.SeverityError,
				fmt.Sprintf("call_service(%q) targets a service the module does not declare; add it to the module's services", t.Name))
		}
	}
	for _, t := range rep.Facts.ModuleTargets {
		usedNext[t.Name] = true
		if !declaredNext[t.Name] {
			add(t.Pos, CodeUndeclaredEdge, script.SeverityError,
				fmt.Sprintf("call_module(%q) has no matching DAG edge; add %q to next_module", t.Name, t.Name))
		}
	}

	// Dynamic (computed) targets mean the source may reach any declared
	// name, so "never referenced" warnings would be noise.
	if rep.Facts.DynamicServiceTargets == 0 {
		for _, s := range m.Services {
			if !usedSvc[s] {
				add(script.Position{}, CodeUnusedService, script.SeverityWarning,
					fmt.Sprintf("declared service %q is never called", s))
			}
		}
	}
	if rep.Facts.DynamicModuleTargets == 0 {
		for _, n := range m.Next {
			if !usedNext[n] {
				add(script.Position{}, CodeUnusedEdge, script.SeverityWarning,
					fmt.Sprintf("declared edge to %q is never used by call_module", n))
			}
		}
	}
	return out
}

func toSet(names []string) map[string]bool {
	set := make(map[string]bool, len(names))
	for _, n := range names {
		set[n] = true
	}
	return set
}
