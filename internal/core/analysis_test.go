package core_test

import (
	"errors"
	"strings"
	"testing"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/script"
)

// twoStage builds a minimal streamer -> sink pipeline whose sink source is
// supplied by the caller.
func twoStage(sinkSource string, sinkServices []string) core.PipelineConfig {
	return core.PipelineConfig{
		Name: "undertest",
		Modules: []core.ModuleConfig{
			{
				Name:   "streamer",
				Source: `function event_received(m) { call_module("sink", {frame_ref: m.frame_ref}); }`,
				Next:   []string{"sink"},
			},
			{
				Name:     "sink",
				Source:   sinkSource,
				Services: sinkServices,
			},
		},
		Source: core.SourceConfig{Device: "phone", FirstModule: "streamer", FPS: 15, Width: 64, Height: 48},
	}
}

func findDiag(diags []core.Diagnostic, code string) (core.Diagnostic, bool) {
	for _, d := range diags {
		if d.Code == code {
			return d, true
		}
	}
	return core.Diagnostic{}, false
}

// TestAnalyzePipelineCrossChecks covers the config-aware layer: literal
// call targets vs declared services/edges, unused declarations, and the
// reachable-module event_received requirement.
func TestAnalyzePipelineCrossChecks(t *testing.T) {
	t.Run("undeclared service is an error with a position", func(t *testing.T) {
		cfg := twoStage(`function event_received(m) { call_service("pose_detector", {frame_ref: m.frame_ref}); frame_done(); }`, nil)
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeUndeclaredService)
		if !ok {
			t.Fatal("no PV101 diagnostic")
		}
		if d.Severity != script.SeverityError || d.Module != "sink" {
			t.Errorf("bad diagnostic: %+v", d)
		}
		if d.Pos.Line != 1 || d.Pos.Col == 0 {
			t.Errorf("missing position: %+v", d.Pos)
		}
	})

	t.Run("call_module to a non-edge is an error", func(t *testing.T) {
		cfg := twoStage(`function event_received(m) { call_module("elsewhere", {frame_ref: m.frame_ref}); }`, nil)
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeUndeclaredEdge)
		if !ok {
			t.Fatal("no PV102 diagnostic")
		}
		if d.Severity != script.SeverityError {
			t.Errorf("PV102 severity = %v", d.Severity)
		}
	})

	t.Run("declared but unreferenced service warns", func(t *testing.T) {
		cfg := twoStage(`function event_received(m) { frame_done(); }`, []string{"pose_detector"})
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeUnusedService)
		if !ok {
			t.Fatal("no PV103 diagnostic")
		}
		if d.Severity != script.SeverityWarning {
			t.Errorf("PV103 severity = %v", d.Severity)
		}
	})

	t.Run("dynamic service targets suppress the unused warning", func(t *testing.T) {
		cfg := twoStage(`
			var svc = "pose_detector";
			function event_received(m) { call_service(svc, {frame_ref: m.frame_ref}); frame_done(); }`,
			[]string{"pose_detector"})
		if d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeUnusedService); ok {
			t.Errorf("unexpected PV103 with dynamic targets: %v", d)
		}
	})

	t.Run("declared but untargeted edge warns", func(t *testing.T) {
		cfg := twoStage(`function event_received(m) { frame_done(); }`, nil)
		cfg.Modules[1].Next = nil
		cfg.Modules[0].Source = `function event_received(m) { frame_done(); }`
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeUnusedEdge)
		if !ok {
			t.Fatal("no PV104 diagnostic")
		}
		if d.Severity != script.SeverityWarning || d.Module != "streamer" {
			t.Errorf("bad diagnostic: %+v", d)
		}
	})

	t.Run("reachable module without event_received is an error", func(t *testing.T) {
		cfg := twoStage(`function init() { log("sink up"); }`, nil)
		d, ok := findDiag(core.AnalyzePipeline(&cfg), "PV008")
		if !ok {
			t.Fatal("no PV008 diagnostic")
		}
		if d.Module != "sink" || d.Severity != script.SeverityError {
			t.Errorf("bad diagnostic: %+v", d)
		}
	})

	t.Run("unreachable module without event_received passes", func(t *testing.T) {
		cfg := twoStage(`function event_received(m) { frame_done(); }`, nil)
		cfg.Modules = append(cfg.Modules, core.ModuleConfig{
			Name:   "helper",
			Source: `function init() { log("side helper"); }`,
		})
		if d, ok := findDiag(core.AnalyzePipeline(&cfg), "PV008"); ok {
			t.Errorf("unexpected PV008 on unreachable module: %v", d)
		}
	})

	t.Run("script-level errors are attributed to their module", func(t *testing.T) {
		cfg := twoStage(`function event_received(m) { frame_done(); ghost(m); }`, nil)
		d, ok := findDiag(core.AnalyzePipeline(&cfg), "PV001")
		if !ok {
			t.Fatal("no PV001 diagnostic")
		}
		if d.Module != "sink" || !strings.Contains(d.String(), "module sink") {
			t.Errorf("bad attribution: %q", d.String())
		}
	})
}

// TestLaunchRejectsAnalysisErrors proves the deploy gate: Launch refuses a
// structurally valid pipeline whose module calls an undeclared service, and
// the error carries positioned diagnostics.
func TestLaunchRejectsAnalysisErrors(t *testing.T) {
	c := homeCluster(t)
	cfg := twoStage(`function event_received(m) { call_service("pose_detector", {frame_ref: m.frame_ref}); frame_done(); }`, nil)
	_, err := c.Launch(cfg, core.CoLocatePlanner{})
	if err == nil {
		t.Fatal("Launch accepted a module calling an undeclared service")
	}
	var ae *core.AnalysisError
	if !errors.As(err, &ae) {
		t.Fatalf("error type %T, want *core.AnalysisError: %v", err, err)
	}
	if len(ae.Diagnostics) == 0 || ae.Diagnostics[0].Code != core.CodeUndeclaredService {
		t.Fatalf("diagnostics = %+v", ae.Diagnostics)
	}
	if ae.Diagnostics[0].Pos.Line == 0 {
		t.Error("diagnostic lost its position")
	}
	if !strings.Contains(err.Error(), "PV101") {
		t.Errorf("error text lacks the code: %v", err)
	}
}

// TestLaunchCountsAnalysisWarnings: warning-only findings do not block a
// launch; they bump the analysis meter instead.
func TestLaunchCountsAnalysisWarnings(t *testing.T) {
	c := homeCluster(t)
	cfg := apps.FitnessConfig("warnfit", 15, "squat")
	// An unused variable produces a PV003 warning, nothing more.
	cfg.Modules[0].Source = `
		var debug_mode = false;
		function event_received(message) {
			call_module("pose_detection", {
				frame_ref: message.frame_ref,
				captured_ms: message.captured_ms,
				seq: message.seq
			});
		}
	`
	p, err := c.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("warning-only pipeline rejected: %v", err)
	}
	defer p.Close()
	if got := c.Metrics().Meter("analysis.warnfit.warnings").Count(); got == 0 {
		t.Error("analysis warnings meter not marked")
	}
}

// TestBuiltinAppsAnalyzeClean is the golden corpus for the built-in
// applications: every shipped pipeline must pass the analyzer with zero
// error-severity diagnostics.
func TestBuiltinAppsAnalyzeClean(t *testing.T) {
	cfgs := []core.PipelineConfig{
		apps.FitnessConfig("fitness", 20, "squat"),
		apps.GestureConfig("gesture", 20, "wave"),
		apps.FallConfig("fall", 15),
	}
	for _, cfg := range cfgs {
		for _, d := range core.AnalyzePipeline(&cfg) {
			if d.Severity == script.SeverityError {
				t.Errorf("%s: %s", cfg.Name, d)
			}
		}
	}
}
