package core

import (
	"context"
	"fmt"
	"sort"
	"sync"

	"videopipe/internal/device"
	"videopipe/internal/frame"
	"videopipe/internal/metrics"
	"videopipe/internal/netsim"
	"videopipe/internal/services"
)

// ServicePlacement deploys one service pool onto a device.
type ServicePlacement struct {
	// Service names a spec in the cluster's registry.
	Service string
	// Device hosts the pool; it must be container-capable.
	Device string
	// Instances is the initial pool size; <= 0 means 1.
	Instances int
}

// ClusterSpec assembles a simulated home deployment: the devices, the
// network between them, and where each service runs.
type ClusterSpec struct {
	// Devices lists the edge devices.
	Devices []device.Config
	// DefaultLink shapes unconfigured device pairs; the zero value selects
	// the Wi-Fi preset (the paper's testbed fabric).
	DefaultLink netsim.LinkProfile
	// Services places service pools on devices.
	Services []ServicePlacement
}

// Cluster is a running set of devices with deployed services, shared by
// the pipelines launched onto it (service sharing across pipelines is
// §5.2.2's experiment).
type Cluster struct {
	network  *netsim.Network
	registry *services.Registry
	reg      *metrics.Registry

	mu          sync.Mutex
	devices     map[string]*device.Device
	order       []string
	down        map[string]bool   // devices declared dead by the supervisor
	serviceHost map[string]string // service -> device name
	pipelines   []*Pipeline
	closed      bool
}

// NewCluster builds the devices and network and deploys the services.
func NewCluster(spec ClusterSpec, registry *services.Registry) (*Cluster, error) {
	if len(spec.Devices) == 0 {
		return nil, fmt.Errorf("core: cluster needs at least one device")
	}
	if registry == nil {
		return nil, fmt.Errorf("core: cluster needs a service registry")
	}
	link := spec.DefaultLink
	if link == (netsim.LinkProfile{}) {
		link = netsim.WiFi
	}

	c := &Cluster{
		network:     netsim.NewNetwork(link),
		registry:    registry,
		reg:         metrics.NewRegistry(),
		devices:     make(map[string]*device.Device),
		down:        make(map[string]bool),
		serviceHost: make(map[string]string),
	}
	for _, dc := range spec.Devices {
		if _, dup := c.devices[dc.Name]; dup {
			c.Close()
			return nil, fmt.Errorf("core: duplicate device %q", dc.Name)
		}
		d, err := device.New(dc, c.network.Host(dc.Name), c.reg)
		if err != nil {
			c.Close()
			return nil, err
		}
		c.devices[dc.Name] = d
		c.order = append(c.order, dc.Name)
	}

	// Deploy service pools.
	needServer := make(map[string]bool)
	for _, sp := range spec.Services {
		d, ok := c.devices[sp.Device]
		if !ok {
			c.Close()
			return nil, fmt.Errorf("core: service %q placed on unknown device %q", sp.Service, sp.Device)
		}
		svcSpec, err := registry.Lookup(sp.Service)
		if err != nil {
			c.Close()
			return nil, err
		}
		n := sp.Instances
		if n <= 0 {
			n = 1
		}
		if _, err := d.DeployService(svcSpec, n); err != nil {
			c.Close()
			return nil, err
		}
		if prev, dup := c.serviceHost[sp.Service]; dup {
			c.Close()
			return nil, fmt.Errorf("core: service %q deployed on both %q and %q; one host per cluster", sp.Service, prev, sp.Device)
		}
		c.serviceHost[sp.Service] = sp.Device
		needServer[sp.Device] = true
	}

	// Start service servers and register remote directories everywhere.
	serverAddr := make(map[string]string)
	for devName := range needServer {
		addr, err := c.devices[devName].ServeServices(0)
		if err != nil {
			c.Close()
			return nil, err
		}
		serverAddr[devName] = addr.String()
	}
	for svc, host := range c.serviceHost {
		for name, d := range c.devices {
			if name == host {
				continue
			}
			d.RegisterRemoteService(svc, serverAddr[host])
		}
	}
	return c, nil
}

// Device returns a cluster device by name.
func (c *Cluster) Device(name string) (*device.Device, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	d, ok := c.devices[name]
	return d, ok
}

// DeviceNames lists the live devices in configuration order. Devices
// declared dead via MarkDown are excluded, so planners re-planning after
// a failure never place modules on them.
func (c *Cluster) DeviceNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.order))
	for _, n := range c.order {
		if !c.down[n] {
			out = append(out, n)
		}
	}
	return out
}

// MarkDown declares a device dead — the supervisor's verdict after
// repeated missed health probes. The device stays reachable through
// Device (teardown still needs it) but disappears from DeviceNames and
// from future plans.
func (c *Cluster) MarkDown(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.down[name] = true
}

// IsDown reports whether a device has been declared dead.
func (c *Cluster) IsDown(name string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.down[name]
}

// Pipelines snapshots the pipelines launched on this cluster.
func (c *Cluster) Pipelines() []*Pipeline {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]*Pipeline(nil), c.pipelines...)
}

// RedeployService moves a service pool to a new host device — the
// failover path after the original host dies. The pool is deployed fresh
// on the target (reusing an existing pool if the target already hosts
// one), the target's server picks it up, and every live device's remote
// directory is repointed. Callers resolving via Cluster.Pool see the new
// host immediately.
func (c *Cluster) RedeployService(ctx context.Context, service, target string, instances int) error {
	d, ok := c.Device(target)
	if !ok {
		return fmt.Errorf("core: redeploy %q: unknown device %q", service, target)
	}
	if c.IsDown(target) {
		return fmt.Errorf("core: redeploy %q: device %q is down", service, target)
	}
	spec, err := c.registry.Lookup(service)
	if err != nil {
		return err
	}
	if instances <= 0 {
		instances = 1
	}
	if pool, hosted := d.Pool(service); hosted {
		// Target already hosts a pool (perhaps drained); make sure it is
		// big enough, paying any simulated container spin-up here.
		if pool.Size() < instances {
			if err := pool.Scale(ctx, instances); err != nil {
				return err
			}
		}
	} else {
		if _, err := d.DeployService(spec, instances); err != nil {
			return err
		}
	}
	addr, err := d.ServeServices(0)
	if err != nil {
		return err
	}

	c.mu.Lock()
	c.serviceHost[service] = target
	devs := make(map[string]*device.Device, len(c.devices))
	for n, dev := range c.devices {
		if n == target || c.down[n] {
			continue
		}
		devs[n] = dev
	}
	c.mu.Unlock()

	for _, dev := range devs {
		dev.RegisterRemoteService(service, addr.String())
	}
	return nil
}

// ServiceHost reports which device hosts a service pool.
func (c *Cluster) ServiceHost(service string) (string, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	h, ok := c.serviceHost[service]
	return h, ok
}

// Pool returns the pool backing a service, for scaling experiments.
func (c *Cluster) Pool(service string) (*services.Pool, error) {
	host, ok := c.ServiceHost(service)
	if !ok {
		return nil, fmt.Errorf("core: service %q not deployed", service)
	}
	d, _ := c.Device(host)
	pool, ok := d.Pool(service)
	if !ok {
		return nil, fmt.Errorf("core: device %q lost pool %q", host, service)
	}
	return pool, nil
}

// Registry exposes the cluster's service registry.
func (c *Cluster) Registry() *services.Registry { return c.registry }

// Network exposes the simulated fabric, for link-shaping experiments.
func (c *Cluster) Network() *netsim.Network { return c.network }

// Metrics exposes the cluster-wide measurement registry shared by all
// devices and pipelines.
func (c *Cluster) Metrics() *metrics.Registry { return c.reg }

// SetCodec overrides the frame codec on every device — the transfer-cost
// ablation knob (JPEG vs raw).
func (c *Cluster) SetCodec(codec frame.Codec) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, d := range c.devices {
		d.SetCodec(codec)
	}
}

// ServiceNames lists deployed services, sorted.
func (c *Cluster) ServiceNames() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make([]string, 0, len(c.serviceHost))
	for s := range c.serviceHost {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}

// Close stops all pipelines and devices.
func (c *Cluster) Close() {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return
	}
	c.closed = true
	pipelines := append([]*Pipeline(nil), c.pipelines...)
	devs := make([]*device.Device, 0, len(c.devices))
	for _, d := range c.devices {
		devs = append(devs, d)
	}
	c.mu.Unlock()

	for _, p := range pipelines {
		p.Close()
	}
	for _, d := range devs {
		d.Close()
	}
	if c.network != nil {
		c.network.Close()
	}
}
