// Package core is VideoPipe's control plane: pipeline configurations
// (paper §3.1, Listing 1), DAG validation, deployment planning (the
// co-locating VideoPipe planner and the EdgeEye-style baseline), cluster
// assembly over simulated devices, and the pipeline runtime with the
// queue-free, source-signalled flow control of §2.3.
package core

import (
	"fmt"
	"sort"

	"videopipe/internal/frame"
	"videopipe/internal/script"
	"videopipe/internal/wire"
)

// ModuleConfig describes one module of an application DAG (one entry of
// Listing 1's modules list).
type ModuleConfig struct {
	// Name identifies the module within the pipeline.
	Name string
	// Source is the module's PipeScript code.
	Source string
	// Services lists the stateless services the module may call.
	Services []string
	// Endpoint optionally fixes the module's inbound endpoint; the zero
	// value means an ephemeral bind.
	Endpoint wire.Endpoint
	// Next lists the destination module names of outgoing DAG edges.
	Next []string
	// Device optionally pins the module to a device, overriding the
	// planner.
	Device string
	// Limits overrides the pipeline's sandbox resource budget for this
	// module; zero fields inherit (see LimitsConfig).
	Limits LimitsConfig
}

// SourceConfig describes the pipeline's video source — the camera end.
type SourceConfig struct {
	// Device names the device holding the camera.
	Device string
	// FirstModule names the module receiving captured frames.
	FirstModule string
	// FPS is the capture rate (Table 2's swept parameter).
	FPS float64
	// Width and Height are the capture dimensions.
	Width, Height int
	// Renderer generates the synthetic camera image; when nil, Scene and
	// RepRate select a built-in exercise scene.
	Renderer frame.Renderer
	// Scene is an activity name for the built-in scene renderer.
	Scene string
	// RepRate is the exercise rep rate in reps per second.
	RepRate float64
}

// PipelineConfig is a full application: a module DAG plus its source.
type PipelineConfig struct {
	// Name identifies the pipeline; metrics are namespaced under it.
	Name string
	// Modules is the DAG's node list.
	Modules []ModuleConfig
	// Source is the camera end.
	Source SourceConfig
	// Limits is the pipeline-wide sandbox resource budget; zero fields
	// fall back to the cluster defaults (see LimitsConfig).
	Limits LimitsConfig
}

// Validate checks structural soundness: unique names, resolvable edges and
// source, an acyclic graph, and sane source parameters.
func (c *PipelineConfig) Validate() error {
	if c.Name == "" {
		return fmt.Errorf("core: pipeline missing name")
	}
	if len(c.Modules) == 0 {
		return fmt.Errorf("core: pipeline %q has no modules", c.Name)
	}
	byName := make(map[string]*ModuleConfig, len(c.Modules))
	for i := range c.Modules {
		m := &c.Modules[i]
		if m.Name == "" {
			return fmt.Errorf("core: pipeline %q: module %d missing name", c.Name, i)
		}
		if m.Source == "" {
			return fmt.Errorf("core: pipeline %q: module %q has no source code", c.Name, m.Name)
		}
		if _, dup := byName[m.Name]; dup {
			return fmt.Errorf("core: pipeline %q: duplicate module %q", c.Name, m.Name)
		}
		byName[m.Name] = m
	}
	for _, m := range c.Modules {
		for _, next := range m.Next {
			if _, ok := byName[next]; !ok {
				return fmt.Errorf("core: pipeline %q: module %q references unknown module %q", c.Name, m.Name, next)
			}
			if next == m.Name {
				return fmt.Errorf("core: pipeline %q: module %q links to itself", c.Name, m.Name)
			}
		}
	}
	if _, err := c.TopoOrder(); err != nil {
		return err
	}
	if c.Source.FirstModule == "" {
		return fmt.Errorf("core: pipeline %q: source missing first module", c.Name)
	}
	if _, ok := byName[c.Source.FirstModule]; !ok {
		return fmt.Errorf("core: pipeline %q: source feeds unknown module %q", c.Name, c.Source.FirstModule)
	}
	if c.Source.Device == "" {
		return fmt.Errorf("core: pipeline %q: source missing device", c.Name)
	}
	if c.Source.FPS <= 0 {
		return fmt.Errorf("core: pipeline %q: source fps %v must be positive", c.Name, c.Source.FPS)
	}
	if c.Source.Width <= 0 || c.Source.Height <= 0 {
		return fmt.Errorf("core: pipeline %q: bad source dimensions %dx%d", c.Name, c.Source.Width, c.Source.Height)
	}
	if err := c.Limits.validate(fmt.Sprintf("pipeline %q", c.Name)); err != nil {
		return err
	}
	for _, m := range c.Modules {
		if err := m.Limits.validate(fmt.Sprintf("pipeline %q: module %q", c.Name, m.Name)); err != nil {
			return err
		}
	}
	return nil
}

// Module returns the named module config.
func (c *PipelineConfig) Module(name string) (*ModuleConfig, bool) {
	for i := range c.Modules {
		if c.Modules[i].Name == name {
			return &c.Modules[i], true
		}
	}
	return nil, false
}

// TopoOrder returns the module names in topological order (sources first)
// or an error if the graph has a cycle — applications are DAGs (§2).
func (c *PipelineConfig) TopoOrder() ([]string, error) {
	indeg := make(map[string]int, len(c.Modules))
	adj := make(map[string][]string, len(c.Modules))
	for _, m := range c.Modules {
		if _, ok := indeg[m.Name]; !ok {
			indeg[m.Name] = 0
		}
		for _, next := range m.Next {
			adj[m.Name] = append(adj[m.Name], next)
			indeg[next]++
		}
	}
	// Deterministic order among ready nodes.
	var ready []string
	for name, d := range indeg {
		if d == 0 {
			ready = append(ready, name)
		}
	}
	sort.Strings(ready)

	var order []string
	for len(ready) > 0 {
		n := ready[0]
		ready = ready[1:]
		order = append(order, n)
		var unblocked []string
		for _, next := range adj[n] {
			indeg[next]--
			if indeg[next] == 0 {
				unblocked = append(unblocked, next)
			}
		}
		sort.Strings(unblocked)
		ready = append(ready, unblocked...)
	}
	if len(order) != len(indeg) {
		return nil, fmt.Errorf("core: pipeline %q: module graph has a cycle", c.Name)
	}
	return order, nil
}

// Sinks reports modules with no outgoing edges — the pipeline's final
// stage(s), whose frame_done() calls drive flow control.
func (c *PipelineConfig) Sinks() []string {
	var out []string
	for _, m := range c.Modules {
		if len(m.Next) == 0 {
			out = append(out, m.Name)
		}
	}
	sort.Strings(out)
	return out
}

// CostReports runs the pipecost static analysis over every module's
// source and returns the per-module reports, keyed by module name. A
// module that does not parse gets an empty report; deploy-time analysis
// rejects it separately. The cost-aware planner consumes this to weight
// placement and credit decisions.
func (c *PipelineConfig) CostReports() map[string]script.CostReport {
	out := make(map[string]script.CostReport, len(c.Modules))
	for _, m := range c.Modules {
		out[m.Name] = script.AnalyzeCost(m.Source)
	}
	return out
}

// ServicesUsed reports the union of services referenced by modules.
func (c *PipelineConfig) ServicesUsed() []string {
	set := make(map[string]bool)
	for _, m := range c.Modules {
		for _, s := range m.Services {
			set[s] = true
		}
	}
	out := make([]string, 0, len(set))
	for s := range set {
		out = append(out, s)
	}
	sort.Strings(out)
	return out
}
