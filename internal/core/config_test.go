package core

import (
	"fmt"
	"reflect"
	"strings"
	"testing"

	"videopipe/internal/wire"
)

// minimalModule returns a valid module config for structural tests.
func minimalModule(name string, next ...string) ModuleConfig {
	return ModuleConfig{Name: name, Source: "function event_received(m) {}", Next: next}
}

func validConfig() PipelineConfig {
	return PipelineConfig{
		Name: "test",
		Modules: []ModuleConfig{
			minimalModule("a", "b"),
			minimalModule("b"),
		},
		Source: SourceConfig{Device: "phone", FirstModule: "a", FPS: 10, Width: 64, Height: 48},
	}
}

func TestValidateAcceptsGoodConfig(t *testing.T) {
	cfg := validConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*PipelineConfig)
	}{
		{"missing name", func(c *PipelineConfig) { c.Name = "" }},
		{"no modules", func(c *PipelineConfig) { c.Modules = nil }},
		{"module without name", func(c *PipelineConfig) { c.Modules[0].Name = "" }},
		{"module without source", func(c *PipelineConfig) { c.Modules[0].Source = "" }},
		{"duplicate module", func(c *PipelineConfig) { c.Modules[1].Name = "a" }},
		{"unknown next", func(c *PipelineConfig) { c.Modules[0].Next = []string{"ghost"} }},
		{"self loop", func(c *PipelineConfig) { c.Modules[0].Next = []string{"a"} }},
		{"cycle", func(c *PipelineConfig) { c.Modules[1].Next = []string{"a"} }},
		{"missing first module", func(c *PipelineConfig) { c.Source.FirstModule = "" }},
		{"unknown first module", func(c *PipelineConfig) { c.Source.FirstModule = "ghost" }},
		{"missing source device", func(c *PipelineConfig) { c.Source.Device = "" }},
		{"zero fps", func(c *PipelineConfig) { c.Source.FPS = 0 }},
		{"bad dimensions", func(c *PipelineConfig) { c.Source.Width = 0 }},
	}
	for _, c := range cases {
		cfg := validConfig()
		c.mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid config", c.name)
		}
	}
}

func TestTopoOrder(t *testing.T) {
	cfg := PipelineConfig{
		Name: "t",
		Modules: []ModuleConfig{
			minimalModule("d"),
			minimalModule("b", "c"),
			minimalModule("a", "b"),
			minimalModule("c", "d"),
		},
	}
	order, err := cfg.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	if !reflect.DeepEqual(order, []string{"a", "b", "c", "d"}) {
		t.Errorf("TopoOrder = %v", order)
	}
}

func TestTopoOrderFanOut(t *testing.T) {
	cfg := PipelineConfig{
		Name: "t",
		Modules: []ModuleConfig{
			minimalModule("a", "b", "c"),
			minimalModule("b", "d"),
			minimalModule("c", "d"),
			minimalModule("d"),
		},
	}
	order, err := cfg.TopoOrder()
	if err != nil {
		t.Fatalf("TopoOrder: %v", err)
	}
	pos := map[string]int{}
	for i, n := range order {
		pos[n] = i
	}
	if pos["a"] > pos["b"] || pos["a"] > pos["c"] || pos["b"] > pos["d"] || pos["c"] > pos["d"] {
		t.Errorf("TopoOrder violates edges: %v", order)
	}
	if got := cfg.Sinks(); len(got) != 1 || got[0] != "d" {
		t.Errorf("Sinks = %v", got)
	}
}

func TestServicesUsed(t *testing.T) {
	cfg := validConfig()
	cfg.Modules[0].Services = []string{"pose", "rep"}
	cfg.Modules[1].Services = []string{"pose"}
	if got := cfg.ServicesUsed(); !reflect.DeepEqual(got, []string{"pose", "rep"}) {
		t.Errorf("ServicesUsed = %v", got)
	}
}

const listing1Style = `
// The fitness pipeline, in the paper's Listing-1 dialect.
modules : [
	{ name: pose_detector_module
	  include ("./PoseDetectorModule.js")
	  service: ['pose_detector']
	  endpoint: ["bind#tcp://*:5861"]
	  next_module: activity_detector_module }
	{ name: activity_detector_module
	  include ("./ActivityDetectorModule.js")
	  service: ['activity_detector']
	  endpoint: ["bind#tcp://*:5862"]
	  next_module: [rep_counter_module, display_module] }
	{ name: rep_counter_module
	  include ("./RepCounterModule.js")
	  service: ['rep_counter']
	  endpoint: ["bind#tcp://*:5863"]
	  next_module: display_module }
	{ name: display_module
	  source: "function event_received(m) { frame_done(); }" }
]
source : { device: phone, module: pose_detector_module, fps: 20,
           width: 480, height: 360, scene: squat, rep_rate: 0.5 }
`

func fakeResolver(path string) (string, error) {
	return "function event_received(m) { /* from " + path + " */ }", nil
}

func TestParseListing1Config(t *testing.T) {
	cfg, err := ParseConfig("fitness", listing1Style, fakeResolver)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if cfg.Name != "fitness" {
		t.Errorf("Name = %q", cfg.Name)
	}
	if len(cfg.Modules) != 4 {
		t.Fatalf("modules = %d, want 4", len(cfg.Modules))
	}
	m0 := cfg.Modules[0]
	if m0.Name != "pose_detector_module" {
		t.Errorf("module 0 name = %q", m0.Name)
	}
	if !strings.Contains(m0.Source, "PoseDetectorModule.js") {
		t.Errorf("include not resolved: %q", m0.Source)
	}
	if len(m0.Services) != 1 || m0.Services[0] != "pose_detector" {
		t.Errorf("services = %v", m0.Services)
	}
	if m0.Endpoint != (wire.Endpoint{Mode: wire.Bind, Proto: "tcp", Host: "*", Port: 5861}) {
		t.Errorf("endpoint = %+v", m0.Endpoint)
	}
	if len(m0.Next) != 1 || m0.Next[0] != "activity_detector_module" {
		t.Errorf("next = %v", m0.Next)
	}
	if got := cfg.Modules[1].Next; !reflect.DeepEqual(got, []string{"rep_counter_module", "display_module"}) {
		t.Errorf("fan-out next = %v", got)
	}
	if cfg.Source.Device != "phone" || cfg.Source.FPS != 20 || cfg.Source.Scene != "squat" {
		t.Errorf("source = %+v", cfg.Source)
	}
	if cfg.Source.Width != 480 || cfg.Source.Height != 360 || cfg.Source.RepRate != 0.5 {
		t.Errorf("source geometry = %+v", cfg.Source)
	}
	if cfg.Source.FirstModule != "pose_detector_module" {
		t.Errorf("first module = %q", cfg.Source.FirstModule)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("parsed config invalid: %v", err)
	}
}

func TestParseConfigDefaultsFirstModule(t *testing.T) {
	text := `modules: [ { name: only, source: "function event_received(m){}" } ]`
	cfg, err := ParseConfig("p", text, nil)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if cfg.Source.FirstModule != "only" {
		t.Errorf("FirstModule = %q, want only", cfg.Source.FirstModule)
	}
}

func TestParseConfigErrors(t *testing.T) {
	cases := []string{
		``,                                   // no modules
		`modules: { }`,                       // not a list
		`modules: [ { source: "x" } ]`,       // module without name
		`modules: [ { name: a, bogus: 1 } ]`, // unknown field
		`modules: [ { name: a, endpoint: ["nonsense"] } ]`,              // bad endpoint
		`modules: [ { name: a include`,                                  // truncated
		`modules: [ { name: a, source: "x" } ] source: { fps: "fast" }`, // non-numeric fps
		`modules: [ { name: a, source: "x" } ] source: { warp: 9 }`,     // unknown source field
		`modules: [ { name: "unterminated`,                              // unterminated string
		`modules: [ { name: a, include("m.js") } ]`,                     // include without resolver
	}
	for i, text := range cases {
		if _, err := ParseConfig("p", text, nil); err == nil {
			t.Errorf("case %d: ParseConfig accepted %q", i, text)
		}
	}
}

func TestParseConfigCommentsAndCommas(t *testing.T) {
	text := `
	# hash comment
	modules: [
		{ name: a, source: "function event_received(m){}", next: b },
		{ name: b, source: "function event_received(m){}" },
	]
	`
	cfg, err := ParseConfig("p", text, nil)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(cfg.Modules) != 2 || cfg.Modules[0].Next[0] != "b" {
		t.Errorf("parsed %+v", cfg.Modules)
	}
}

func TestParseConfigNameOverride(t *testing.T) {
	text := `
	name: custom_name
	modules: [ { name: a, source: "x" } ]
	`
	cfg, err := ParseConfig("fallback", text, nil)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if cfg.Name != "custom_name" {
		t.Errorf("Name = %q", cfg.Name)
	}
}

func TestParseConfigResolverError(t *testing.T) {
	text := `modules: [ { name: a, include("missing.js") } ]`
	_, err := ParseConfig("p", text, func(string) (string, error) {
		return "", fmt.Errorf("no such file")
	})
	if err == nil || !strings.Contains(err.Error(), "no such file") {
		t.Errorf("resolver error not propagated: %v", err)
	}
}
