package core

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"unicode"

	"videopipe/internal/wire"
)

// This file parses the pipeline configuration dialect of the paper's
// Listing 1:
//
//	modules : [
//	  { name: pose_detector_module
//	    include ("./PoseDetectorModule.js")
//	    service: ['pose_detector']
//	    endpoint: ["bind#tcp://*:5861"]
//	    next_module: activity_detector_module }
//	  ...
//	]
//	source : { device: phone, module: video_streaming, fps: 20,
//	           width: 480, height: 360, scene: squat, rep_rate: 0.5 }
//
// The grammar is deliberately forgiving: commas are optional separators,
// identifiers and quoted strings are interchangeable as scalar values, and
// single-element lists may be written bare.

// Resolver loads the contents of an include()d module file.
type Resolver func(path string) (string, error)

// FileResolver resolves includes relative to dir.
func FileResolver(dir string) Resolver {
	return func(path string) (string, error) {
		data, err := os.ReadFile(filepath.Join(dir, path))
		if err != nil {
			return "", fmt.Errorf("core: include %q: %w", path, err)
		}
		return string(data), nil
	}
}

// ParseConfig parses a Listing-1-style pipeline configuration. name is
// used as the pipeline name when the config does not set one. resolve
// loads include()d files; nil rejects includes.
func ParseConfig(name, text string, resolve Resolver) (*PipelineConfig, error) {
	toks, err := lexConfig(text)
	if err != nil {
		return nil, err
	}
	p := &configParser{toks: toks}
	doc, err := p.document()
	if err != nil {
		return nil, err
	}
	return buildConfig(name, doc, resolve)
}

// ---- lexer ----

type cfgToken struct {
	kind string // "ident", "string", "number", "punct", "eof"
	text string
	num  float64
	line int
}

func lexConfig(src string) ([]cfgToken, error) {
	var toks []cfgToken
	line := 1
	i := 0
	for i < len(src) {
		ch := src[i]
		switch {
		case ch == '\n':
			line++
			i++
		case ch == ' ' || ch == '\t' || ch == '\r':
			i++
		case ch == '/' && i+1 < len(src) && src[i+1] == '/':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case ch == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case strings.ContainsRune("{}[]():,", rune(ch)):
			toks = append(toks, cfgToken{kind: "punct", text: string(ch), line: line})
			i++
		case ch == '\'' || ch == '"':
			quote := ch
			j := i + 1
			var b strings.Builder
			for j < len(src) && src[j] != quote {
				if src[j] == '\n' {
					return nil, fmt.Errorf("core: config line %d: unterminated string", line)
				}
				b.WriteByte(src[j])
				j++
			}
			if j >= len(src) {
				return nil, fmt.Errorf("core: config line %d: unterminated string", line)
			}
			toks = append(toks, cfgToken{kind: "string", text: b.String(), line: line})
			i = j + 1
		case ch >= '0' && ch <= '9' || ch == '-' || ch == '+':
			j := i + 1
			for j < len(src) && (src[j] >= '0' && src[j] <= '9' || src[j] == '.' || src[j] == 'e' || src[j] == 'E') {
				j++
			}
			n, err := strconv.ParseFloat(src[i:j], 64)
			if err != nil {
				return nil, fmt.Errorf("core: config line %d: bad number %q", line, src[i:j])
			}
			toks = append(toks, cfgToken{kind: "number", text: src[i:j], num: n, line: line})
			i = j
		case ch == '_' || unicode.IsLetter(rune(ch)):
			j := i + 1
			for j < len(src) && (src[j] == '_' || src[j] == '.' || src[j] == '-' ||
				unicode.IsLetter(rune(src[j])) || unicode.IsDigit(rune(src[j]))) {
				j++
			}
			toks = append(toks, cfgToken{kind: "ident", text: src[i:j], line: line})
			i = j
		default:
			return nil, fmt.Errorf("core: config line %d: unexpected character %q", line, ch)
		}
	}
	toks = append(toks, cfgToken{kind: "eof", line: line})
	return toks, nil
}

// ---- parser: produces generic values ----

// cfgValue is string | float64 | []cfgValue | cfgObject | cfgCall.
type cfgValue any

type cfgObject struct {
	entries []cfgEntry
}

type cfgEntry struct {
	key   string
	value cfgValue
	line  int
}

type cfgCall struct {
	name string
	arg  cfgValue
}

type configParser struct {
	toks []cfgToken
	pos  int
}

func (p *configParser) cur() cfgToken { return p.toks[p.pos] }

func (p *configParser) advance() cfgToken {
	t := p.cur()
	if t.kind != "eof" {
		p.pos++
	}
	return t
}

func (p *configParser) errf(format string, args ...any) error {
	return fmt.Errorf("core: config line %d: %s", p.cur().line, fmt.Sprintf(format, args...))
}

func (p *configParser) isPunct(s string) bool {
	t := p.cur()
	return t.kind == "punct" && t.text == s
}

func (p *configParser) skipCommas() {
	for p.isPunct(",") {
		p.advance()
	}
}

// document parses top-level "key : value" entries until EOF.
func (p *configParser) document() (*cfgObject, error) {
	doc := &cfgObject{}
	for {
		p.skipCommas()
		if p.cur().kind == "eof" {
			return doc, nil
		}
		e, err := p.entry()
		if err != nil {
			return nil, err
		}
		doc.entries = append(doc.entries, *e)
	}
}

func (p *configParser) entry() (*cfgEntry, error) {
	t := p.cur()
	if t.kind != "ident" && t.kind != "string" {
		return nil, p.errf("expected key, found %q", t.text)
	}
	p.advance()
	// Call form: include ("path") — keyless entry.
	if p.isPunct("(") {
		p.advance()
		arg, err := p.value()
		if err != nil {
			return nil, err
		}
		if !p.isPunct(")") {
			return nil, p.errf("expected ')' after %s(...)", t.text)
		}
		p.advance()
		return &cfgEntry{key: t.text, value: cfgCall{name: t.text, arg: arg}, line: t.line}, nil
	}
	if !p.isPunct(":") {
		return nil, p.errf("expected ':' after key %q", t.text)
	}
	p.advance()
	v, err := p.value()
	if err != nil {
		return nil, err
	}
	return &cfgEntry{key: t.text, value: v, line: t.line}, nil
}

func (p *configParser) value() (cfgValue, error) {
	t := p.cur()
	switch {
	case t.kind == "string":
		p.advance()
		return t.text, nil
	case t.kind == "number":
		p.advance()
		return t.num, nil
	case t.kind == "ident":
		p.advance()
		if p.isPunct("(") { // call as a value
			p.advance()
			arg, err := p.value()
			if err != nil {
				return nil, err
			}
			if !p.isPunct(")") {
				return nil, p.errf("expected ')'")
			}
			p.advance()
			return cfgCall{name: t.text, arg: arg}, nil
		}
		return t.text, nil
	case p.isPunct("["):
		p.advance()
		var list []cfgValue
		for {
			p.skipCommas()
			if p.isPunct("]") {
				p.advance()
				return list, nil
			}
			if p.cur().kind == "eof" {
				return nil, p.errf("unterminated list")
			}
			v, err := p.value()
			if err != nil {
				return nil, err
			}
			list = append(list, v)
		}
	case p.isPunct("{"):
		p.advance()
		obj := &cfgObject{}
		for {
			p.skipCommas()
			if p.isPunct("}") {
				p.advance()
				return obj, nil
			}
			if p.cur().kind == "eof" {
				return nil, p.errf("unterminated object")
			}
			e, err := p.entry()
			if err != nil {
				return nil, err
			}
			obj.entries = append(obj.entries, *e)
		}
	default:
		return nil, p.errf("unexpected token %q", t.text)
	}
}

// ---- mapping to PipelineConfig ----

func (o *cfgObject) get(key string) (cfgValue, bool) {
	for _, e := range o.entries {
		if e.key == key {
			return e.value, true
		}
	}
	return nil, false
}

// asStrings normalizes a scalar-or-list value to a string slice.
func asStrings(v cfgValue) ([]string, error) {
	switch x := v.(type) {
	case string:
		return []string{x}, nil
	case []cfgValue:
		out := make([]string, 0, len(x))
		for _, e := range x {
			s, ok := e.(string)
			if !ok {
				return nil, fmt.Errorf("core: config: expected string in list, found %T", e)
			}
			out = append(out, s)
		}
		return out, nil
	default:
		return nil, fmt.Errorf("core: config: expected string or list, found %T", v)
	}
}

func buildConfig(name string, doc *cfgObject, resolve Resolver) (*PipelineConfig, error) {
	cfg := &PipelineConfig{Name: name}
	if v, ok := doc.get("name"); ok {
		if s, ok := v.(string); ok {
			cfg.Name = s
		}
	}

	modulesVal, ok := doc.get("modules")
	if !ok {
		return nil, fmt.Errorf("core: config: missing modules list")
	}
	moduleList, ok := modulesVal.([]cfgValue)
	if !ok {
		return nil, fmt.Errorf("core: config: modules must be a list")
	}
	for i, mv := range moduleList {
		obj, ok := mv.(*cfgObject)
		if !ok {
			return nil, fmt.Errorf("core: config: module %d is not an object", i)
		}
		mc, err := buildModule(obj, resolve)
		if err != nil {
			return nil, err
		}
		cfg.Modules = append(cfg.Modules, *mc)
	}

	if sv, ok := doc.get("source"); ok {
		obj, ok := sv.(*cfgObject)
		if !ok {
			return nil, fmt.Errorf("core: config: source must be an object")
		}
		if err := buildSource(obj, &cfg.Source); err != nil {
			return nil, err
		}
	}
	if lv, ok := doc.get("limits"); ok {
		obj, ok := lv.(*cfgObject)
		if !ok {
			return nil, fmt.Errorf("core: config: limits must be an object")
		}
		if err := buildLimits(obj, &cfg.Limits); err != nil {
			return nil, err
		}
	}
	if cfg.Source.FirstModule == "" && len(cfg.Modules) > 0 {
		cfg.Source.FirstModule = cfg.Modules[0].Name
	}
	return cfg, nil
}

func buildModule(obj *cfgObject, resolve Resolver) (*ModuleConfig, error) {
	mc := &ModuleConfig{}
	for _, e := range obj.entries {
		switch e.key {
		case "name":
			s, ok := e.value.(string)
			if !ok {
				return nil, fmt.Errorf("core: config line %d: module name must be a string", e.line)
			}
			mc.Name = s
		case "include":
			call, ok := e.value.(cfgCall)
			var path string
			if ok {
				path, _ = call.arg.(string)
			} else {
				path, _ = e.value.(string)
			}
			if path == "" {
				return nil, fmt.Errorf("core: config line %d: include needs a path", e.line)
			}
			if resolve == nil {
				return nil, fmt.Errorf("core: config line %d: include %q: no resolver provided", e.line, path)
			}
			src, err := resolve(path)
			if err != nil {
				return nil, err
			}
			mc.Source = src
		case "source", "code":
			s, ok := e.value.(string)
			if !ok {
				return nil, fmt.Errorf("core: config line %d: module source must be a string", e.line)
			}
			mc.Source = s
		case "service", "services":
			ss, err := asStrings(e.value)
			if err != nil {
				return nil, fmt.Errorf("core: config line %d: %w", e.line, err)
			}
			mc.Services = ss
		case "endpoint", "endpoints":
			ss, err := asStrings(e.value)
			if err != nil {
				return nil, fmt.Errorf("core: config line %d: %w", e.line, err)
			}
			if len(ss) > 0 {
				ep, err := wire.ParseEndpoint(ss[0])
				if err != nil {
					return nil, fmt.Errorf("core: config line %d: %w", e.line, err)
				}
				mc.Endpoint = ep
			}
		case "next_module", "next":
			ss, err := asStrings(e.value)
			if err != nil {
				return nil, fmt.Errorf("core: config line %d: %w", e.line, err)
			}
			mc.Next = ss
		case "device":
			s, ok := e.value.(string)
			if !ok {
				return nil, fmt.Errorf("core: config line %d: device must be a string", e.line)
			}
			mc.Device = s
		case "limits":
			obj, ok := e.value.(*cfgObject)
			if !ok {
				return nil, fmt.Errorf("core: config line %d: limits must be an object", e.line)
			}
			if err := buildLimits(obj, &mc.Limits); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("core: config line %d: unknown module field %q", e.line, e.key)
		}
	}
	if mc.Name == "" {
		return nil, fmt.Errorf("core: config: module missing name")
	}
	return mc, nil
}

// buildLimits maps a `limits { ... }` block onto a LimitsConfig; it
// appears at the top level (pipeline-wide budget) and inside a module
// entry (per-module override).
func buildLimits(obj *cfgObject, lc *LimitsConfig) error {
	for _, e := range obj.entries {
		n, ok := e.value.(float64)
		if !ok {
			return fmt.Errorf("core: config line %d: %s must be a number", e.line, e.key)
		}
		switch e.key {
		case "instructions", "instruction_limit":
			lc.Instructions = int64(n)
		case "init_instructions":
			lc.InitInstructions = int64(n)
		case "memory", "memory_limit":
			lc.Memory = int64(n)
		case "output", "output_limit":
			lc.Output = int64(n)
		case "timeout_ms":
			lc.TimeoutMS = n
		default:
			return fmt.Errorf("core: config line %d: unknown limits field %q", e.line, e.key)
		}
	}
	return nil
}

func buildSource(obj *cfgObject, sc *SourceConfig) error {
	for _, e := range obj.entries {
		strVal := func() (string, error) {
			s, ok := e.value.(string)
			if !ok {
				return "", fmt.Errorf("core: config line %d: %s must be a string", e.line, e.key)
			}
			return s, nil
		}
		numVal := func() (float64, error) {
			n, ok := e.value.(float64)
			if !ok {
				return 0, fmt.Errorf("core: config line %d: %s must be a number", e.line, e.key)
			}
			return n, nil
		}
		var err error
		switch e.key {
		case "device":
			sc.Device, err = strVal()
		case "module", "first_module":
			sc.FirstModule, err = strVal()
		case "fps":
			sc.FPS, err = numVal()
		case "width":
			var n float64
			n, err = numVal()
			sc.Width = int(n)
		case "height":
			var n float64
			n, err = numVal()
			sc.Height = int(n)
		case "scene":
			sc.Scene, err = strVal()
		case "rep_rate":
			sc.RepRate, err = numVal()
		default:
			return fmt.Errorf("core: config line %d: unknown source field %q", e.line, e.key)
		}
		if err != nil {
			return err
		}
	}
	return nil
}
