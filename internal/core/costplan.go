package core

import (
	"fmt"
	"sort"

	"videopipe/internal/script"
)

// defaultHopPenalty is the placement cost of moving a frame across the
// network instead of keeping it on the predecessor's device, in the same
// abstract instruction units as pipecost handler weights. A serviceless
// module migrates off its predecessor's device only when that device has
// already accumulated more than this much per-frame work.
const defaultHopPenalty = int64(100_000)

// CostAwarePlanner extends the co-locating strategy with the pipecost
// signal: modules with services still land beside their services (that
// rule is VideoPipe's core result and cost cannot beat a saved network
// round-trip), but serviceless modules are placed by minimizing
// accumulated per-frame handler weight plus a hop penalty, instead of
// blindly inheriting the predecessor's device. Flow-control credits scale
// with the number of symbolic (DNN-backed) stages, so deeper inference
// pipelines get more frames in flight to overlap transfer with inference.
type CostAwarePlanner struct {
	// Credits overrides the in-flight frame allowance; <= 0 derives it
	// from the pipeline's symbolic stage count (2..4).
	Credits int
	// HopPenalty overrides the cross-device placement penalty; <= 0
	// selects defaultHopPenalty.
	HopPenalty int64
}

var _ Planner = CostAwarePlanner{}

// Name identifies the strategy.
func (CostAwarePlanner) Name() string { return "cost-aware" }

// Plan places modules in topological order, maintaining a per-device load
// ledger of the handler weights already assigned there.
func (p CostAwarePlanner) Plan(cfg *PipelineConfig, c *Cluster) (Plan, error) {
	order, err := cfg.TopoOrder()
	if err != nil {
		return Plan{}, err
	}
	costs := cfg.CostReports()
	hop := p.HopPenalty
	if hop <= 0 {
		hop = defaultHopPenalty
	}

	placement := make(map[string]string, len(cfg.Modules))
	load := make(map[string]int64)

	for _, name := range order {
		m, _ := cfg.Module(name)
		dev, err := p.placeModule(cfg, c, m, placement, load, costs, hop)
		if err != nil {
			return Plan{}, err
		}
		placement[name] = dev
		load[dev] += costs[name].EventWeight()
	}

	credits := p.Credits
	if credits <= 0 {
		symbolic := 0
		for _, name := range order {
			if costs[name].EventSymbolic() {
				symbolic++
			}
		}
		credits = 1 + symbolic
		if credits < 2 {
			credits = 2
		}
		if credits > 4 {
			credits = 4
		}
	}
	return Plan{Placement: placement, Credits: credits}, nil
}

func (p CostAwarePlanner) placeModule(cfg *PipelineConfig, c *Cluster, m *ModuleConfig,
	placed map[string]string, load map[string]int64, costs map[string]script.CostReport, hop int64) (string, error) {
	// 1. Explicit pin wins, as in every planner.
	if m.Device != "" {
		if _, ok := c.Device(m.Device); !ok {
			return "", fmt.Errorf("core: module %q pinned to unknown device %q", m.Name, m.Device)
		}
		return m.Device, nil
	}
	// 2. Modules with services co-locate with the device hosting the most
	// of them — a remote call_service per frame always costs more than any
	// script work. Ties break by lighter accumulated load, then by name.
	if len(m.Services) > 0 {
		counts := make(map[string]int)
		for _, svc := range m.Services {
			if host, ok := c.ServiceHost(svc); ok {
				counts[host]++
			}
		}
		if len(counts) > 0 {
			hosts := make([]string, 0, len(counts))
			for h := range counts {
				hosts = append(hosts, h)
			}
			sort.Slice(hosts, func(i, j int) bool {
				if counts[hosts[i]] != counts[hosts[j]] {
					return counts[hosts[i]] > counts[hosts[j]]
				}
				if load[hosts[i]] != load[hosts[j]] {
					return load[hosts[i]] < load[hosts[j]]
				}
				return hosts[i] < hosts[j]
			})
			return hosts[0], nil
		}
	}
	// 3. The source's first module stays on the camera device: frames are
	// born there, and moving ingestion would ship every raw frame.
	if m.Name == cfg.Source.FirstModule && cfg.Source.Device != "" {
		if _, ok := c.Device(cfg.Source.Device); !ok {
			return "", fmt.Errorf("core: source device %q unknown", cfg.Source.Device)
		}
		return cfg.Source.Device, nil
	}
	// 4. Serviceless modules: minimize accumulated handler weight plus a
	// hop penalty for leaving the predecessor's device. With an idle
	// cluster this reduces to the co-locating inherit rule; it diverges
	// exactly when the predecessor's device already carries more than a
	// hop's worth of per-frame work.
	predDev := ""
	for _, other := range cfg.Modules {
		for _, next := range other.Next {
			if next != m.Name {
				continue
			}
			if dev, ok := placed[other.Name]; ok {
				predDev = dev
			}
		}
	}
	candidates := c.DeviceNames()
	best, bestScore := "", int64(-1)
	for _, dev := range candidates {
		if c.IsDown(dev) {
			continue
		}
		score := load[dev]
		if predDev != "" && dev != predDev {
			score += hop
		}
		better := bestScore < 0 || score < bestScore
		if !better && score == bestScore {
			// Deterministic ties: prefer staying with the predecessor,
			// then lexicographic order.
			better = dev == predDev || (best != predDev && dev < best)
		}
		if better {
			best, bestScore = dev, score
		}
	}
	if best != "" {
		return best, nil
	}
	// 5. Fall back to the camera device.
	if cfg.Source.Device != "" {
		return cfg.Source.Device, nil
	}
	return "", fmt.Errorf("core: cannot place module %q", m.Name)
}
