package core

import (
	"fmt"
	"sort"
	"time"

	"videopipe/internal/script"
)

// defaultHopPenalty is the placement cost of moving a frame across the
// network instead of keeping it on the predecessor's device, in the same
// abstract instruction units as pipecost handler weights. A serviceless
// module migrates off its predecessor's device only when that device has
// already accumulated more than this much per-frame work.
const defaultHopPenalty = int64(100_000)

// CostAwarePlanner extends the co-locating strategy with the pipecost
// signal: modules with services still land beside their services (that
// rule is VideoPipe's core result and cost cannot beat a saved network
// round-trip), but serviceless modules are placed by minimizing
// accumulated per-frame handler weight plus a hop penalty, instead of
// blindly inheriting the predecessor's device. Flow-control credits scale
// with the number of symbolic (DNN-backed) stages, so deeper inference
// pipelines get more frames in flight to overlap transfer with inference.
type CostAwarePlanner struct {
	// Credits overrides the in-flight frame allowance; <= 0 derives it
	// from the pipeline's symbolic stage count (2..4).
	Credits int
	// HopPenalty overrides the cross-device placement penalty; <= 0
	// selects defaultHopPenalty.
	HopPenalty int64
}

var _ Planner = CostAwarePlanner{}

// Name identifies the strategy.
func (CostAwarePlanner) Name() string { return "cost-aware" }

// measuredHopPenalty is defaultHopPenalty's analogue in the measured
// domain: re-planning scores use observed per-event handle time in
// nanoseconds, so the cross-device penalty is priced as one frame
// transfer's worth of latency.
const measuredHopPenalty = int64(10 * time.Millisecond)

// Plan places modules in topological order, maintaining a per-device load
// ledger of the handler weights already assigned there.
func (p CostAwarePlanner) Plan(cfg *PipelineConfig, c *Cluster) (Plan, error) {
	costs := cfg.CostReports()
	hop := p.HopPenalty
	if hop <= 0 {
		hop = defaultHopPenalty
	}
	placement, err := p.place(cfg, c, func(name string) int64 { return costs[name].EventWeight() }, hop)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Placement: placement, Credits: p.credits(cfg, costs)}, nil
}

// PlanMeasured re-scores placement with measured per-module service time
// (nanoseconds per event) replacing the static pipecost weight — the
// tuner's load-aware re-planning input. Modules with no measurement yet
// score as free; the placement rules (pins, service co-location, source
// anchoring) are identical to Plan, so only the load-balancing of
// serviceless modules can move.
func (p CostAwarePlanner) PlanMeasured(cfg *PipelineConfig, c *Cluster, measured map[string]int64) (Plan, error) {
	hop := p.HopPenalty
	if hop <= 0 {
		hop = measuredHopPenalty
	}
	placement, err := p.place(cfg, c, func(name string) int64 {
		if ns, ok := measured[name]; ok && ns > 0 {
			return ns
		}
		return 0
	}, hop)
	if err != nil {
		return Plan{}, err
	}
	return Plan{Placement: placement, Credits: p.credits(cfg, cfg.CostReports())}, nil
}

// place runs the placement loop with an arbitrary weight source.
func (p CostAwarePlanner) place(cfg *PipelineConfig, c *Cluster, weightOf func(string) int64, hop int64) (map[string]string, error) {
	order, err := cfg.TopoOrder()
	if err != nil {
		return nil, err
	}
	placement := make(map[string]string, len(cfg.Modules))
	load := make(map[string]int64)
	for _, name := range order {
		m, _ := cfg.Module(name)
		dev, err := p.placeModule(cfg, c, m, placement, load, hop)
		if err != nil {
			return nil, err
		}
		placement[name] = dev
		load[dev] += weightOf(name)
	}
	return placement, nil
}

// credits derives the flow-control window from the symbolic stage count.
func (p CostAwarePlanner) credits(cfg *PipelineConfig, costs map[string]script.CostReport) int {
	if p.Credits > 0 {
		return p.Credits
	}
	symbolic := 0
	for i := range cfg.Modules {
		if costs[cfg.Modules[i].Name].EventSymbolic() {
			symbolic++
		}
	}
	credits := 1 + symbolic
	if credits < 2 {
		credits = 2
	}
	if credits > 4 {
		credits = 4
	}
	return credits
}

func (p CostAwarePlanner) placeModule(cfg *PipelineConfig, c *Cluster, m *ModuleConfig,
	placed map[string]string, load map[string]int64, hop int64) (string, error) {
	// 1. Explicit pin wins, as in every planner.
	if m.Device != "" {
		if _, ok := c.Device(m.Device); !ok {
			return "", fmt.Errorf("core: module %q pinned to unknown device %q", m.Name, m.Device)
		}
		return m.Device, nil
	}
	// 2. Modules with services co-locate with the device hosting the most
	// of them — a remote call_service per frame always costs more than any
	// script work. Ties break by lighter accumulated load, then by name.
	if len(m.Services) > 0 {
		counts := make(map[string]int)
		for _, svc := range m.Services {
			if host, ok := c.ServiceHost(svc); ok {
				counts[host]++
			}
		}
		if len(counts) > 0 {
			hosts := make([]string, 0, len(counts))
			for h := range counts {
				hosts = append(hosts, h)
			}
			sort.Slice(hosts, func(i, j int) bool {
				if counts[hosts[i]] != counts[hosts[j]] {
					return counts[hosts[i]] > counts[hosts[j]]
				}
				if load[hosts[i]] != load[hosts[j]] {
					return load[hosts[i]] < load[hosts[j]]
				}
				return hosts[i] < hosts[j]
			})
			return hosts[0], nil
		}
	}
	// 3. The source's first module stays on the camera device: frames are
	// born there, and moving ingestion would ship every raw frame.
	if m.Name == cfg.Source.FirstModule && cfg.Source.Device != "" {
		if _, ok := c.Device(cfg.Source.Device); !ok {
			return "", fmt.Errorf("core: source device %q unknown", cfg.Source.Device)
		}
		return cfg.Source.Device, nil
	}
	// 4. Serviceless modules: minimize accumulated handler weight plus a
	// hop penalty for leaving the predecessor's device. With an idle
	// cluster this reduces to the co-locating inherit rule; it diverges
	// exactly when the predecessor's device already carries more than a
	// hop's worth of per-frame work.
	predDev := ""
	for _, other := range cfg.Modules {
		for _, next := range other.Next {
			if next != m.Name {
				continue
			}
			if dev, ok := placed[other.Name]; ok {
				predDev = dev
			}
		}
	}
	candidates := c.DeviceNames()
	best, bestScore := "", int64(-1)
	for _, dev := range candidates {
		if c.IsDown(dev) {
			continue
		}
		score := load[dev]
		if predDev != "" && dev != predDev {
			score += hop
		}
		better := bestScore < 0 || score < bestScore
		if !better && score == bestScore {
			// Deterministic ties: prefer staying with the predecessor,
			// then lexicographic order.
			better = dev == predDev || (best != predDev && dev < best)
		}
		if better {
			best, bestScore = dev, score
		}
	}
	if best != "" {
		return best, nil
	}
	// 5. Fall back to the camera device.
	if cfg.Source.Device != "" {
		return cfg.Source.Device, nil
	}
	return "", fmt.Errorf("core: cannot place module %q", m.Name)
}
