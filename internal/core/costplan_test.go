package core_test

import (
	"fmt"
	"reflect"
	"testing"

	"videopipe/internal/apps"
	"videopipe/internal/core"
)

// chainConfig builds phone-sourced ingest -> crunch -> relay, all
// serviceless, with the given crunch handler body.
func chainConfig(crunchBody string) core.PipelineConfig {
	fwd := func(next string) string {
		return fmt.Sprintf(`function event_received(message) { call_module(%q, {seq: message.seq}); }`, next)
	}
	return core.PipelineConfig{
		Name: "chain",
		Modules: []core.ModuleConfig{
			{Name: "ingest", Source: fwd("crunch"), Next: []string{"crunch"}},
			{Name: "crunch", Source: crunchBody, Next: []string{"relay"}},
			{Name: "relay", Source: `function event_received(message) { frame_done(); }`},
		},
		Source: core.SourceConfig{
			Device: "phone", FirstModule: "ingest", FPS: 10, Width: 64, Height: 48,
		},
	}
}

// TestCostAwarePlacementFlip is the acceptance demonstration: the same
// DAG places differently once the cost analysis reports a heavy handler.
// With a light crunch module, relay inherits the phone like the
// co-locating planner would; with a crunch handler whose counted loop
// outweighs the hop penalty, relay migrates to an idle device.
func TestCostAwarePlacementFlip(t *testing.T) {
	c := homeCluster(t)
	planner := core.CostAwarePlanner{}

	light := chainConfig(`function event_received(message) {
  call_module("relay", {seq: message.seq + 1});
}`)
	lightPlan, err := planner.Plan(&light, c)
	if err != nil {
		t.Fatalf("light plan: %v", err)
	}
	if got := lightPlan.Placement["relay"]; got != "phone" {
		t.Errorf("light pipeline: relay on %q, want phone (inherit predecessor)", got)
	}

	heavy := chainConfig(`function event_received(message) {
  var acc = 0;
  for (var i = 0; i < 60000; i++) {
    acc = acc + i;
  }
  call_module("relay", {seq: acc});
}`)
	heavyPlan, err := planner.Plan(&heavy, c)
	if err != nil {
		t.Fatalf("heavy plan: %v", err)
	}
	if got := heavyPlan.Placement["crunch"]; got != "phone" {
		t.Errorf("heavy pipeline: crunch on %q, want phone (placed before the load accumulates)", got)
	}
	if got := heavyPlan.Placement["relay"]; got == "phone" {
		t.Errorf("heavy pipeline: relay stayed on the loaded phone; placement %v", heavyPlan.Placement)
	}

	// The co-locating planner is blind to the difference: both variants
	// place identically under it.
	coLight, err := core.CoLocatePlanner{}.Plan(&light, c)
	if err != nil {
		t.Fatal(err)
	}
	coHeavy, err := core.CoLocatePlanner{}.Plan(&heavy, c)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(coLight.Placement, coHeavy.Placement) {
		t.Errorf("co-locate planner should not distinguish the variants: %v vs %v",
			coLight.Placement, coHeavy.Placement)
	}
}

// TestCostAwareMatchesCoLocateOnApps: on the paper's real applications —
// light glue modules around DNN services — the cost signal must not
// disturb the co-locating placement that produces the paper's results.
func TestCostAwareMatchesCoLocateOnApps(t *testing.T) {
	c := homeCluster(t)
	for _, cfg := range []core.PipelineConfig{
		apps.FitnessConfig("fit", 10, "squat"),
		apps.FallConfig("fall", 10),
	} {
		co, err := core.CoLocatePlanner{}.Plan(&cfg, c)
		if err != nil {
			t.Fatalf("%s co-locate: %v", cfg.Name, err)
		}
		ca, err := core.CostAwarePlanner{}.Plan(&cfg, c)
		if err != nil {
			t.Fatalf("%s cost-aware: %v", cfg.Name, err)
		}
		if !reflect.DeepEqual(co.Placement, ca.Placement) {
			t.Errorf("%s: placement diverged:\nco-locate:  %v\ncost-aware: %v",
				cfg.Name, co.Placement, ca.Placement)
		}
	}
}

// TestCostAwareCredits: the in-flight allowance scales with the number of
// symbolic (call_service) stages, clamped to [2, 4].
func TestCostAwareCredits(t *testing.T) {
	c := homeCluster(t)

	svcStage := func(next string) string {
		body := `var r = call_service("pose_detector", {frame_ref: message.frame_ref});`
		if next != "" {
			return fmt.Sprintf("function event_received(message) { %s call_module(%q, {p: r.pose}); }", body, next)
		}
		return fmt.Sprintf("function event_received(message) { %s log(r.pose); frame_done(); }", body)
	}
	plain := `function event_received(message) { frame_done(); }`

	cases := []struct {
		name    string
		sources []string // module i forwards to i+1
		want    int
	}{
		{"no symbolic stages", []string{plain}, 2},
		{"one symbolic stage", []string{svcStage("")}, 2},
		{"three symbolic stages", []string{svcStage("m1"), svcStage("m2"), svcStage("")}, 4},
		{"five symbolic stages", []string{svcStage("m1"), svcStage("m2"), svcStage("m3"), svcStage("m4"), svcStage("")}, 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := core.PipelineConfig{
				Name:   "credits",
				Source: core.SourceConfig{Device: "phone", FirstModule: "m0", FPS: 10, Width: 64, Height: 48},
			}
			for i, src := range tc.sources {
				m := core.ModuleConfig{Name: fmt.Sprintf("m%d", i), Source: src}
				if i+1 < len(tc.sources) {
					m.Next = []string{fmt.Sprintf("m%d", i+1)}
				}
				cfg.Modules = append(cfg.Modules, m)
			}
			plan, err := core.CostAwarePlanner{}.Plan(&cfg, c)
			if err != nil {
				t.Fatal(err)
			}
			if plan.Credits != tc.want {
				t.Errorf("credits = %d, want %d", plan.Credits, tc.want)
			}

			// An explicit override still wins.
			fixed, err := core.CostAwarePlanner{Credits: 7}.Plan(&cfg, c)
			if err != nil {
				t.Fatal(err)
			}
			if fixed.Credits != 7 {
				t.Errorf("override credits = %d, want 7", fixed.Credits)
			}
		})
	}
}

// TestCostAwarePins: explicit device pins override the cost signal.
func TestCostAwarePins(t *testing.T) {
	c := homeCluster(t)
	cfg := chainConfig(`function event_received(message) {
  var acc = 0;
  for (var i = 0; i < 60000; i++) { acc = acc + i; }
  call_module("relay", {seq: acc});
}`)
	cfg.Modules[2].Device = "tv"
	plan, err := core.CostAwarePlanner{}.Plan(&cfg, c)
	if err != nil {
		t.Fatal(err)
	}
	if got := plan.Placement["relay"]; got != "tv" {
		t.Errorf("pinned relay on %q, want tv", got)
	}
}

// TestCostReports: the config-level accessor returns a report per module
// with the expected boundedness.
func TestCostReports(t *testing.T) {
	cfg := chainConfig(`function event_received(message) {
  while (message.seq > 0) { message.seq--; }
  call_module("relay", {seq: 0});
}`)
	reports := cfg.CostReports()
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	if h, ok := reports["ingest"].Handler("event_received"); !ok || !h.Bounded {
		t.Errorf("ingest should be bounded: %+v", h)
	}
	if h, ok := reports["crunch"].Handler("event_received"); !ok || h.Bounded {
		t.Errorf("crunch (while loop) should be unbounded: %+v", h)
	}
}
