package core

import (
	"fmt"

	"videopipe/internal/device"
)

// Deployment sections of the configuration dialect. Beyond Listing 1's
// module list, a config may describe the cluster it expects — the paper
// notes each service "is embodied within a container spec" referenced from
// the configuration:
//
//	devices : [
//	  { name: phone, class: phone }
//	  { name: desktop, class: desktop }
//	]
//	services : [
//	  { name: pose_detector, device: desktop, instances: 2 }
//	]

// ParseClusterSpec extracts the optional devices/services sections from a
// configuration. found reports whether the text declares any deployment at
// all; when false the caller should fall back to a default cluster.
func ParseClusterSpec(text string) (spec ClusterSpec, found bool, err error) {
	toks, err := lexConfig(text)
	if err != nil {
		return ClusterSpec{}, false, err
	}
	p := &configParser{toks: toks}
	doc, err := p.document()
	if err != nil {
		return ClusterSpec{}, false, err
	}
	return buildClusterSpec(doc)
}

func buildClusterSpec(doc *cfgObject) (ClusterSpec, bool, error) {
	var spec ClusterSpec
	found := false

	if dv, ok := doc.get("devices"); ok {
		found = true
		list, ok := dv.([]cfgValue)
		if !ok {
			return ClusterSpec{}, false, fmt.Errorf("core: config: devices must be a list")
		}
		for i, raw := range list {
			obj, ok := raw.(*cfgObject)
			if !ok {
				return ClusterSpec{}, false, fmt.Errorf("core: config: device %d is not an object", i)
			}
			dc, err := buildDevice(obj)
			if err != nil {
				return ClusterSpec{}, false, err
			}
			spec.Devices = append(spec.Devices, dc)
		}
	}

	if sv, ok := doc.get("services"); ok {
		found = true
		list, ok := sv.([]cfgValue)
		if !ok {
			return ClusterSpec{}, false, fmt.Errorf("core: config: services must be a list")
		}
		for i, raw := range list {
			obj, ok := raw.(*cfgObject)
			if !ok {
				return ClusterSpec{}, false, fmt.Errorf("core: config: service %d is not an object", i)
			}
			sp, err := buildPlacement(obj)
			if err != nil {
				return ClusterSpec{}, false, err
			}
			spec.Services = append(spec.Services, sp)
		}
	}
	return spec, found, nil
}

func buildDevice(obj *cfgObject) (device.Config, error) {
	var dc device.Config
	for _, e := range obj.entries {
		switch e.key {
		case "name":
			s, ok := e.value.(string)
			if !ok {
				return device.Config{}, fmt.Errorf("core: config line %d: device name must be a string", e.line)
			}
			dc.Name = s
		case "class":
			s, ok := e.value.(string)
			if !ok {
				return device.Config{}, fmt.Errorf("core: config line %d: device class must be a string", e.line)
			}
			class, err := device.ParseClass(s)
			if err != nil {
				return device.Config{}, fmt.Errorf("core: config line %d: %w", e.line, err)
			}
			dc.Class = class
		case "cpu":
			n, ok := e.value.(float64)
			if !ok || n <= 0 {
				return device.Config{}, fmt.Errorf("core: config line %d: device cpu must be a positive number", e.line)
			}
			dc.Profile.CPUFactor = n
		case "containers":
			s, ok := e.value.(string)
			if !ok || (s != "true" && s != "false") {
				return device.Config{}, fmt.Errorf("core: config line %d: containers must be true or false", e.line)
			}
			dc.Profile.ContainerCapable = s == "true"
		default:
			return device.Config{}, fmt.Errorf("core: config line %d: unknown device field %q", e.line, e.key)
		}
	}
	if dc.Name == "" {
		return device.Config{}, fmt.Errorf("core: config: device missing name")
	}
	if dc.Class == 0 && dc.Profile.CPUFactor == 0 {
		return device.Config{}, fmt.Errorf("core: config: device %q needs a class or a cpu factor", dc.Name)
	}
	return dc, nil
}

func buildPlacement(obj *cfgObject) (ServicePlacement, error) {
	var sp ServicePlacement
	for _, e := range obj.entries {
		switch e.key {
		case "name", "service":
			s, ok := e.value.(string)
			if !ok {
				return ServicePlacement{}, fmt.Errorf("core: config line %d: service name must be a string", e.line)
			}
			sp.Service = s
		case "device":
			s, ok := e.value.(string)
			if !ok {
				return ServicePlacement{}, fmt.Errorf("core: config line %d: service device must be a string", e.line)
			}
			sp.Device = s
		case "instances":
			n, ok := e.value.(float64)
			if !ok || n < 1 || n != float64(int(n)) {
				return ServicePlacement{}, fmt.Errorf("core: config line %d: instances must be a positive integer", e.line)
			}
			sp.Instances = int(n)
		default:
			return ServicePlacement{}, fmt.Errorf("core: config line %d: unknown service field %q", e.line, e.key)
		}
	}
	if sp.Service == "" || sp.Device == "" {
		return ServicePlacement{}, fmt.Errorf("core: config: service placement needs name and device")
	}
	return sp, nil
}
