package core

import (
	"strings"
	"testing"

	"videopipe/internal/device"
)

const deploymentConfig = `
devices : [
	{ name: phone, class: phone }
	{ name: desktop, class: desktop }
	{ name: kiosk, cpu: 0.7, containers: true }
]
services : [
	{ name: pose_detector, device: desktop, instances: 2 }
	{ name: display, device: kiosk }
]
modules : [
	{ name: only, source: "function event_received(m) {}" }
]
`

func TestParseClusterSpec(t *testing.T) {
	spec, found, err := ParseClusterSpec(deploymentConfig)
	if err != nil {
		t.Fatalf("ParseClusterSpec: %v", err)
	}
	if !found {
		t.Fatal("deployment sections not found")
	}
	if len(spec.Devices) != 3 {
		t.Fatalf("devices = %d", len(spec.Devices))
	}
	if spec.Devices[0].Name != "phone" || spec.Devices[0].Class != device.Phone {
		t.Errorf("device 0 = %+v", spec.Devices[0])
	}
	kiosk := spec.Devices[2]
	if kiosk.Name != "kiosk" || kiosk.Profile.CPUFactor != 0.7 || !kiosk.Profile.ContainerCapable {
		t.Errorf("kiosk = %+v", kiosk)
	}
	if len(spec.Services) != 2 {
		t.Fatalf("services = %d", len(spec.Services))
	}
	if spec.Services[0] != (ServicePlacement{Service: "pose_detector", Device: "desktop", Instances: 2}) {
		t.Errorf("placement 0 = %+v", spec.Services[0])
	}
	if spec.Services[1].Instances != 0 {
		t.Errorf("default instances = %d, want 0 (pool default)", spec.Services[1].Instances)
	}
}

func TestParseClusterSpecAbsent(t *testing.T) {
	_, found, err := ParseClusterSpec(`modules: [ { name: a, source: "x" } ]`)
	if err != nil {
		t.Fatalf("ParseClusterSpec: %v", err)
	}
	if found {
		t.Error("found deployment in config without one")
	}
}

func TestParseClusterSpecErrors(t *testing.T) {
	cases := []string{
		`devices: { }`,                                     // not a list
		`devices: [ 42 ]`,                                  // not an object
		`devices: [ { class: phone } ]`,                    // missing name
		`devices: [ { name: x } ]`,                         // no class or cpu
		`devices: [ { name: x, class: toaster } ]`,         // unknown class
		`devices: [ { name: x, cpu: -1 } ]`,                // bad cpu
		`devices: [ { name: x, class: phone, bogus: 1 } ]`, // unknown field
		`devices: [ { name: x, class: phone, containers: maybe } ]`,
		`services: [ { name: pose } ]`,      // missing device
		`services: [ { device: desktop } ]`, // missing name
		`services: [ { name: p, device: d, instances: 0 } ]`,
		`services: [ { name: p, device: d, instances: 1.5 } ]`,
		`services: [ { name: p, device: d, weird: 1 } ]`,
	}
	for i, text := range cases {
		if _, _, err := ParseClusterSpec(text); err == nil {
			t.Errorf("case %d accepted: %s", i, text)
		}
	}
}

func TestModuleConfigIgnoresDeploymentSections(t *testing.T) {
	// The pipeline parser must coexist with deployment sections in the
	// same file.
	cfg, err := ParseConfig("dep", deploymentConfig, nil)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if len(cfg.Modules) != 1 || cfg.Modules[0].Name != "only" {
		t.Errorf("modules = %+v", cfg.Modules)
	}
}

func TestDeviceParseClass(t *testing.T) {
	for _, c := range []device.Class{device.Phone, device.Desktop, device.TV, device.Laptop, device.Watch, device.Fridge} {
		got, err := device.ParseClass(c.String())
		if err != nil || got != c {
			t.Errorf("ParseClass(%s) = %v, %v", c, got, err)
		}
	}
	if _, err := device.ParseClass("toaster"); err == nil || !strings.Contains(err.Error(), "toaster") {
		t.Errorf("ParseClass(toaster) = %v", err)
	}
}
