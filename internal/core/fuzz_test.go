package core

import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// configFuzzSeeds cover the configuration dialect's corners: bare values
// vs lists, nested objects, the deployment sections, includes, comments,
// and malformed documents.
var configFuzzSeeds = []string{
	"",
	"pipeline : demo",
	"modules : [ { name: a, device: phone, file: include(\"A.js\") } ]",
	"modules : [\n  { name: a, device: phone }\n  { name: b, device: desktop, after: a }\n]",
	"source : { module: a, fps: 15 }",
	"devices : [ { name: phone, class: phone } ]\nservices : [ { name: pose_detector, device: desktop, instances: 2 } ]",
	"# comment\npipeline : x # trailing\n",
	"a : [ 1 2 3 ]",
	"a : { b : { c : d } }",
	"a : \"quoted string with spaces\"",
	"a : -1.5",
	"a : [",
	"a }",
	": nothing",
	"a : include(",
	"a : include(42)",
	"\x00\x01",
	"modules : [ { name: a } ] modules : [ { name: a } ]",
}

// FuzzParseConfig feeds arbitrary text through the configuration parser
// and both builders (pipeline config and cluster spec), asserting none of
// it panics. Includes resolve to a trivial module so the include path is
// exercised without filesystem access.
func FuzzParseConfig(f *testing.F) {
	for _, seed := range configFuzzSeeds {
		f.Add(seed)
	}
	// The example configurations are the richest well-formed seeds.
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "configs", "*.cfg"))
	if err != nil {
		f.Fatalf("glob examples: %v", err)
	}
	for _, p := range paths {
		text, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read %s: %v", p, err)
		}
		f.Add(string(text))
	}

	resolve := func(path string) (string, error) {
		if path == "missing.js" {
			return "", fmt.Errorf("no such module")
		}
		return "function event_received(message) { frame_done(); }", nil
	}
	f.Fuzz(func(t *testing.T, text string) {
		cfg, err := ParseConfig("fuzz", text, resolve)
		if err == nil && cfg == nil {
			t.Error("ParseConfig returned nil config without error")
		}
		// A nil resolver must reject includes, never dereference them.
		_, _ = ParseConfig("fuzz", text, nil)
		_, _, _ = ParseClusterSpec(text)
	})
}
