package core_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/chaos"
	"videopipe/internal/core"
	"videopipe/internal/script"
)

// TestParseConfigLimitsBlock: `limits { ... }` parses at both the pipeline
// and module scope, and EffectiveLimits merges module over pipeline over
// cluster defaults.
func TestParseConfigLimitsBlock(t *testing.T) {
	text := `
		modules : [
			{ name: tight
			  source: "function event_received(m) { frame_done(); }"
			  limits: { instructions: 1000, memory: 4096 } }
			{ name: loose
			  source: "function event_received(m) { frame_done(); }" }
		]
		limits : { instruction_limit: 500000, init_instructions: 2000,
		           output_limit: 1024, timeout_ms: 250 }
		source : { device: phone, module: tight, fps: 15, width: 64, height: 48 }
	`
	cfg, err := core.ParseConfig("p", text, nil)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	if err := cfg.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}

	// Module scope wins over pipeline scope; unset module fields inherit.
	eff := cfg.EffectiveLimits("tight")
	if eff.Instructions != 1000 || eff.Memory != 4096 {
		t.Errorf("tight limits = %+v", eff)
	}
	if eff.InitInstructions != 2000 || eff.Output != 1024 || eff.TimeoutMS != 250 {
		t.Errorf("tight inherited fields = %+v", eff)
	}

	// Pipeline scope wins over cluster defaults; unset fields default.
	eff = cfg.EffectiveLimits("loose")
	if eff.Instructions != 500000 {
		t.Errorf("loose instructions = %d", eff.Instructions)
	}
	if eff.Memory != core.DefaultMemoryLimit {
		t.Errorf("loose memory = %d, want cluster default %d", eff.Memory, int64(core.DefaultMemoryLimit))
	}

	// ToScript carries the values into the sandbox's own type.
	lim := cfg.EffectiveLimits("tight").ToScript()
	if lim.Instructions != 1000 || lim.Timeout.Milliseconds() != 250 {
		t.Errorf("ToScript = %+v", lim)
	}
}

// TestEffectiveLimitsDefaults: a config with no limits at all runs under
// the cluster defaults, never unlimited.
func TestEffectiveLimitsDefaults(t *testing.T) {
	cfg := apps.FitnessConfig("fit", 15, "squat")
	eff := cfg.EffectiveLimits("rep_counter")
	def := core.DefaultLimits()
	if eff != def {
		t.Errorf("EffectiveLimits = %+v, want defaults %+v", eff, def)
	}
	if !eff.ToScript().Bounded() {
		t.Error("default limits must bound the sandbox")
	}
}

func TestParseConfigLimitsErrors(t *testing.T) {
	cases := []string{
		`modules: [ { name: a, source: "x", limits: { instructions: "many" } } ]`, // non-numeric
		`modules: [ { name: a, source: "x", limits: { fuel: 5 } } ]`,              // unknown field
		`modules: [ { name: a, source: "x" } ] limits: { memory: "big" }`,         // non-numeric, pipeline scope
	}
	for i, text := range cases {
		if _, err := core.ParseConfig("p", text, nil); err == nil {
			t.Errorf("case %d: ParseConfig accepted %q", i, text)
		}
	}
}

func TestValidateRejectsBadLimits(t *testing.T) {
	base := func() core.PipelineConfig {
		return core.PipelineConfig{
			Name: "p",
			Modules: []core.ModuleConfig{
				{Name: "a", Source: "function event_received(m) { frame_done(); }"},
			},
			Source: core.SourceConfig{Device: "phone", FirstModule: "a", FPS: 15, Width: 64, Height: 48},
		}
	}

	cfg := base()
	cfg.Limits.Instructions = -1
	if err := cfg.Validate(); err == nil {
		t.Error("negative pipeline instruction limit accepted")
	}

	cfg = base()
	cfg.Modules[0].Limits.Memory = -5
	if err := cfg.Validate(); err == nil {
		t.Error("negative module memory limit accepted")
	}

	cfg = base()
	cfg.Limits.Instructions = script.DefaultMaxSteps + 1
	if err := cfg.Validate(); err == nil {
		t.Error("instruction limit above the interpreter hard ceiling accepted")
	}
}

// TestPV014LimitBreachWarnings covers the budget cross-check: a declared
// limit below the static worst case warns (guaranteed breach), and an
// unbounded handler with no declared limit warns it runs under the
// cluster default.
func TestPV014LimitBreachWarnings(t *testing.T) {
	t.Run("static bound above declared limit", func(t *testing.T) {
		cfg := twoStage(`function event_received(m) { frame_done(); }`, nil)
		cfg.Modules[1].Limits.Instructions = 2 // no handler fits two steps
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeLimitBreach)
		if !ok {
			t.Fatal("no PV014 diagnostic for a guaranteed-breach limit")
		}
		if d.Severity != script.SeverityWarning || d.Module != "sink" {
			t.Errorf("bad diagnostic: %+v", d)
		}
		if !strings.Contains(d.Message, "guaranteed to breach") {
			t.Errorf("message = %q", d.Message)
		}
	})

	t.Run("unbounded handler with no declared limit", func(t *testing.T) {
		cfg := twoStage(`
			function event_received(m) {
				var i = 0;
				while (m.go > 0) { i = i + 1; }
				frame_done();
			}`, nil)
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeLimitBreach)
		if !ok {
			t.Fatal("no PV014 diagnostic for an unbounded, unlimited handler")
		}
		if !strings.Contains(d.Message, "no static cost bound") {
			t.Errorf("message = %q", d.Message)
		}
	})

	t.Run("declared limit silences the unbounded warning", func(t *testing.T) {
		cfg := twoStage(`
			function event_received(m) {
				var i = 0;
				while (m.go > 0) { i = i + 1; }
				frame_done();
			}`, nil)
		cfg.Limits.Instructions = 100_000
		if d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeLimitBreach); ok {
			t.Errorf("unexpected PV014 with a declared limit: %v", d)
		}
	})

	t.Run("bounded handlers under the default limits are clean", func(t *testing.T) {
		cfg := twoStage(`function event_received(m) { frame_done(); }`, nil)
		if d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeLimitBreach); ok {
			t.Errorf("unexpected PV014: %v", d)
		}
	})
}

// TestBuiltinAppsWithinDefaultLimits is the soundness cross-check: every
// shipped application's static worst-case cost fits under the cluster
// default budgets, so the examples run breach-free out of the box.
func TestBuiltinAppsWithinDefaultLimits(t *testing.T) {
	cfgs := []core.PipelineConfig{
		apps.FitnessConfig("fitness", 20, "squat"),
		apps.GestureConfig("gesture", 20, "wave"),
		apps.FallConfig("fall", 15),
	}
	for _, cfg := range cfgs {
		for _, m := range cfg.Modules {
			eff := cfg.EffectiveLimits(m.Name)
			cost := script.AnalyzeCost(m.Source)
			for _, h := range cost.Handlers {
				if !h.Bounded {
					t.Errorf("%s/%s: handler %s has no static bound", cfg.Name, m.Name, h.Name)
					continue
				}
				limit := eff.Instructions
				if (h.Name == "init" || h.Name == script.LoadHandler) && eff.InitInstructions > 0 {
					limit = eff.InitInstructions
				}
				if h.Steps > limit {
					t.Errorf("%s/%s: handler %s worst case %d exceeds default budget %d",
						cfg.Name, m.Name, h.Name, h.Steps, limit)
				}
			}
		}
		// And the analyzer agrees: no PV014 findings on shipped apps.
		if d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeLimitBreach); ok {
			t.Errorf("%s: unexpected PV014: %v", cfg.Name, d)
		}
	}
}

// TestPipelineRestartModuleHealsSabotage drives the whole kill/restart arc
// at the pipeline level: hostile code hot-swapped into a live module
// breaches until the sandbox kills it, RestartModule respawns it from the
// original config source, and the hostile snapshot (version 666) is
// discarded on restore because the benign code carries no matching
// preservation version.
func TestPipelineRestartModuleHealsSabotage(t *testing.T) {
	c := homeCluster(t)
	cfg := apps.FitnessConfig("gov", 30, "squat")
	cfg.Limits.Instructions = 50_000
	p, err := c.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer p.Close()

	if err := p.UpdateModule("rep_counter", chaos.RunawaySource); err != nil {
		t.Fatalf("UpdateModule: %v", err)
	}
	// Drive the source until the breach allowance is exhausted.
	if _, err := p.Run(context.Background(), 1500*time.Millisecond); err != nil {
		t.Fatalf("Run: %v", err)
	}
	killed := p.KilledModules()
	if len(killed) != 1 || killed[0] != "rep_counter" {
		t.Fatalf("KilledModules = %v, want [rep_counter]", killed)
	}

	if err := p.RestartModule("rep_counter"); err != nil {
		t.Fatalf("RestartModule: %v", err)
	}
	if got := p.KilledModules(); len(got) != 0 {
		t.Fatalf("KilledModules after restart = %v", got)
	}
	if got := c.Metrics().Meter("pipeline.gov.recoveries").Count(); got == 0 {
		t.Error("recoveries meter not marked")
	}
	// The hostile snapshot carried _PRESERVATION_VERSION 666; the restored
	// benign code does not, so the state was discarded. The restore runs on
	// the new module's event loop, so poll briefly.
	discarded := c.Metrics().Meter("module.gov.rep_counter.restore_discarded")
	deadline := time.Now().Add(2 * time.Second)
	for discarded.Count() == 0 && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := discarded.Count(); got != 1 {
		t.Errorf("restore_discarded = %d, want 1", got)
	}

	// The pipeline delivers frames again end to end.
	before := c.Metrics().Meter("pipeline.gov.display.frames_done").Count()
	if _, err := p.Run(context.Background(), time.Second); err != nil {
		t.Fatalf("Run after restart: %v", err)
	}
	if got := c.Metrics().Meter("pipeline.gov.display.frames_done").Count(); got <= before {
		t.Errorf("no frames delivered after restart (%d -> %d)", before, got)
	}

	// Restarting a healthy module is an error-free no-op for the caller to
	// guard, but an unknown module is rejected.
	if err := p.RestartModule("ghost"); err == nil {
		t.Error("RestartModule(ghost) succeeded")
	}
}
