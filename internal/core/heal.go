package core

import (
	"context"
	"fmt"
	"time"
)

// ActionKind classifies one supervisor recovery action.
type ActionKind int

// Recovery action kinds. Enums start at one.
const (
	// ActionRestartService restored a dead or error-bursting pool.
	ActionRestartService ActionKind = iota + 1
	// ActionDeviceDead declared a device dead after missed probes.
	ActionDeviceDead
	// ActionRedeployService moved a dead device's pool to a survivor.
	ActionRedeployService
	// ActionMigrateModule live-migrated a module off a dead device.
	ActionMigrateModule
	// ActionScalePool resized a service pool's instance count (tuner).
	ActionScalePool
	// ActionSetBatch changed a pool's dynamic batch size (tuner).
	ActionSetBatch
	// ActionResizeCredits changed a pipeline's credit window (tuner).
	ActionResizeCredits
	// ActionRebalanceModule re-placed a saturated module using measured
	// service times (tuner re-planning via live migration).
	ActionRebalanceModule
	// ActionRestartModule replaced a module its sandbox killed after
	// repeated resource-budget breaches.
	ActionRestartModule
)

// Action is one journal entry: what the supervisor did and to what. It
// deliberately carries no timestamps — journals are compared across runs
// of the same seed, and wall-clock would break that.
type Action struct {
	Kind   ActionKind
	Target string
	From   string
	To     string
}

// String renders the action for journals and logs.
//
//vpvet:deterministic
func (a Action) String() string {
	switch a.Kind {
	case ActionRestartService:
		return "restart_service " + a.Target
	case ActionDeviceDead:
		return "device_dead " + a.Target
	case ActionRedeployService:
		return fmt.Sprintf("redeploy_service %s %s->%s", a.Target, a.From, a.To)
	case ActionMigrateModule:
		return fmt.Sprintf("migrate_module %s %s->%s", a.Target, a.From, a.To)
	case ActionScalePool:
		return fmt.Sprintf("scale_pool %s %s->%s", a.Target, a.From, a.To)
	case ActionSetBatch:
		return fmt.Sprintf("set_batch %s %s->%s", a.Target, a.From, a.To)
	case ActionResizeCredits:
		return fmt.Sprintf("resize_credits %s %s->%s", a.Target, a.From, a.To)
	case ActionRebalanceModule:
		return fmt.Sprintf("rebalance_module %s %s->%s", a.Target, a.From, a.To)
	case ActionRestartModule:
		return "restart_module " + a.Target
	default:
		return fmt.Sprintf("action(%d) %s", int(a.Kind), a.Target)
	}
}

// errUnknownDevice keeps the supervisor's error text in one place.
func errUnknownDevice(name string) error {
	return fmt.Errorf("core: supervisor: unknown device %q", name)
}

// declareDead runs the full failover sequence for a device that missed
// too many probes: mark it down (planners stop seeing it), move its
// service pools to surviving container-capable devices, then re-plan
// every pipeline and live-migrate the orphaned modules. The action
// journal it appends to is compared across same-seed runs.
//
//vpvet:deterministic
func (s *Supervisor) declareDead(ctx context.Context, name string) {
	s.cluster.MarkDown(name)
	s.record(Action{Kind: ActionDeviceDead, Target: name})
	s.cluster.Metrics().Meter("supervisor.devices_dead").Mark()

	// Move every pool the dead device hosted. Services iterate sorted
	// (ServiceNames) and the target is the first surviving
	// container-capable device in configuration order, so the journal is
	// identical run to run.
	for _, svc := range s.cluster.ServiceNames() {
		host, ok := s.cluster.ServiceHost(svc)
		if !ok || host != name {
			continue
		}
		target, ok := s.redeployTarget()
		if !ok {
			continue
		}
		desired := 1
		s.mu.Lock()
		if st, ok := s.svc[svc]; ok && st.desired > 0 {
			desired = st.desired
		}
		s.mu.Unlock()
		if err := s.cluster.RedeployService(ctx, svc, target, desired); err != nil {
			continue
		}
		s.record(Action{Kind: ActionRedeployService, Target: svc, From: name, To: target})
	}

	// Re-plan and migrate. Launch order of pipelines is stable, and
	// FailOver migrates orphans in sorted order.
	for _, p := range s.cluster.Pipelines() {
		migrated, _ := p.FailOver(name)
		placement := p.Placement()
		for _, mod := range migrated {
			s.record(Action{
				Kind:   ActionMigrateModule,
				Target: p.Name() + "." + mod,
				From:   name,
				To:     placement[mod],
			})
		}
	}
}

// redeployTarget picks the first surviving container-capable device in
// configuration order.
func (s *Supervisor) redeployTarget() (string, bool) {
	for _, name := range s.cluster.DeviceNames() {
		if d, ok := s.cluster.Device(name); ok && d.ContainerCapable() {
			return name, true
		}
	}
	return "", false
}

// checkModules restarts modules whose sandbox killed them after repeated
// budget breaches, under the same backoff/budget discipline as service
// restarts. Pipelines iterate in launch order and killed modules sorted,
// so the journal stays seed-deterministic.
//
//vpvet:deterministic
func (s *Supervisor) checkModules(ctx context.Context) {
	_ = ctx
	now := time.Now() //vpvet:allow determinism real-time backoff clock; never recorded in the action journal
	for _, p := range s.cluster.Pipelines() {
		killed := make(map[string]bool)
		for _, mod := range p.KilledModules() {
			killed[mod] = true
		}
		for _, mod := range p.Modules() {
			key := p.Name() + "." + mod
			if !killed[mod] {
				// Sustained health refills the restart budget, mirroring
				// the service path.
				s.mu.Lock()
				if st, ok := s.mod[key]; ok && st.restarts > 0 {
					if st.healthySince.IsZero() {
						st.healthySince = now
					} else if now.Sub(st.healthySince) > s.cfg.HealthyAfter {
						st.restarts = 0
						st.nextAttempt = time.Time{}
					}
				}
				s.mu.Unlock()
				continue
			}

			s.mu.Lock()
			st, ok := s.mod[key]
			if !ok {
				st = &modState{}
				s.mod[key] = st
			}
			st.healthySince = time.Time{}
			if now.Before(st.nextAttempt) || st.restarts >= s.cfg.MaxRestarts {
				s.mu.Unlock()
				continue
			}
			st.restarts++
			attempt := st.restarts
			s.mu.Unlock()

			err := p.RestartModule(mod)
			backoff := s.backoffAfter(attempt)
			s.mu.Lock()
			st.nextAttempt = time.Now().Add(backoff) //vpvet:allow determinism real-time backoff clock; never recorded in the action journal
			s.mu.Unlock()
			if err != nil {
				continue
			}
			s.record(Action{Kind: ActionRestartModule, Target: key})
			s.cluster.Metrics().Meter("supervisor.module_restarts").Mark()
		}
	}
}

// checkServices walks the monitor's service view and restarts pools that
// are dead (zero instances) or error-bursting, under backoff and budget.
// It feeds the seed-compared action journal, so everything except the
// explicitly-allowed backoff clock must be deterministic.
//
//vpvet:deterministic
func (s *Supervisor) checkServices(ctx context.Context, rep Report) {
	reg := s.cluster.Metrics()
	now := time.Now() //vpvet:allow determinism real-time backoff clock; never recorded in the action journal
	for _, sh := range rep.Services {
		svc := sh.Service
		if s.cluster.IsDown(sh.Device) {
			// The failover path owns this pool now.
			continue
		}
		pool, err := s.cluster.Pool(svc)
		if err != nil {
			continue
		}
		if pool.Paused() {
			// Hung host (chaos reboot): it will resume; restarting a
			// paused pool would just block here too.
			continue
		}

		s.mu.Lock()
		st, ok := s.svc[svc]
		if !ok {
			st = &svcState{healthySince: now}
			s.svc[svc] = st
		}

		// Error-burst detection from the per-service error meter. The
		// meter can move backwards when the experiment harness resets the
		// registry between phases; treat that as a fresh baseline.
		cur := reg.Meter("service." + svc + ".errors").Count()
		if cur < st.lastErr {
			st.lastErr = cur
		}
		delta := cur - st.lastErr
		st.lastErr = cur
		if delta > s.cfg.ErrorBurst {
			st.burstSteps++
		} else {
			st.burstSteps = 0
		}

		size := pool.Size()
		healthy := size > 0 && st.burstSteps == 0
		if healthy {
			st.desired = size
			if st.healthySince.IsZero() {
				st.healthySince = now
			}
			// Sustained health refills the restart budget.
			if st.restarts > 0 && now.Sub(st.healthySince) > s.cfg.HealthyAfter {
				st.restarts = 0
				st.nextAttempt = time.Time{}
			}
			s.mu.Unlock()
			continue
		}
		st.healthySince = time.Time{}

		trigger := size == 0 || st.burstSteps >= 2
		if !trigger || now.Before(st.nextAttempt) || st.restarts >= s.cfg.MaxRestarts {
			s.mu.Unlock()
			continue
		}
		desired := st.desired
		if desired <= 0 {
			desired = 1
		}
		st.restarts++
		attempt := st.restarts
		st.burstSteps = 0
		s.mu.Unlock()

		// Restart: drop the (possibly wedged) instances, then scale back
		// to the last healthy size.
		if size > 0 {
			pool.Kill(size)
		}
		err = pool.Scale(ctx, desired)
		backoff := s.backoffAfter(attempt)
		if err != nil {
			s.mu.Lock()
			st.nextAttempt = time.Now().Add(backoff) //vpvet:allow determinism real-time backoff clock; never recorded in the action journal
			s.mu.Unlock()
			continue
		}
		s.record(Action{Kind: ActionRestartService, Target: svc})
		reg.Meter("supervisor.restarts." + svc).Mark()
		s.mu.Lock()
		// Absorb errors that accrued during the outage so the restarted
		// pool doesn't immediately trip the burst detector again.
		st.lastErr = reg.Meter("service." + svc + ".errors").Count()
		st.nextAttempt = time.Now().Add(backoff) //vpvet:allow determinism real-time backoff clock; never recorded in the action journal
		s.mu.Unlock()
	}
}
