package core

import (
	"fmt"
	"time"

	"videopipe/internal/script"
)

// Default cluster-wide sandbox budgets. Deny-by-default: every deployed
// module runs under these unless its pipeline or module config overrides
// them. They are sized an order of magnitude above the heaviest shipped
// module's pipecost static worst case (asserted by tests), so well-behaved
// code never notices them while a runaway loop or allocation bomb is
// contained within one event.
const (
	// DefaultInstructionLimit bounds interpreter steps per event. Well
	// below script.DefaultMaxSteps so the configured budget, not the
	// interpreter's hard ceiling, is what fires.
	DefaultInstructionLimit = 2_000_000
	// DefaultInitInstructionLimit bounds init() and top-level load.
	DefaultInitInstructionLimit = 1_000_000
	// DefaultMemoryLimit bounds per-event script-value allocation (bytes).
	DefaultMemoryLimit = 8 << 20
	// DefaultOutputLimit bounds per-event host-emitted payload (bytes).
	DefaultOutputLimit = 256 << 10
	// DefaultTimeoutMS is the wall-clock backstop per invocation.
	DefaultTimeoutMS = 2000
)

// LimitsConfig declares a sandbox resource budget in a pipeline config —
// the `limits { instructions=…; memory=…; output=…; timeout_ms=… }` block,
// at pipeline scope (default for all modules) or per module (override).
// Zero fields inherit from the enclosing scope, ending at the cluster
// defaults above: there is no way to configure an unlimited module.
type LimitsConfig struct {
	// Instructions is the per-event interpreter step budget.
	Instructions int64
	// InitInstructions is the budget for init() and top-level load
	// (0 = same as Instructions).
	InitInstructions int64
	// Memory is the per-event allocation budget in bytes.
	Memory int64
	// Output is the per-event host-emit budget in bytes.
	Output int64
	// TimeoutMS is the per-invocation wall-clock backstop in milliseconds.
	TimeoutMS float64
}

// DefaultLimits returns the cluster-wide default budget.
func DefaultLimits() LimitsConfig {
	return LimitsConfig{
		Instructions:     DefaultInstructionLimit,
		InitInstructions: DefaultInitInstructionLimit,
		Memory:           DefaultMemoryLimit,
		Output:           DefaultOutputLimit,
		TimeoutMS:        DefaultTimeoutMS,
	}
}

// merged overlays l on top of def field-wise: set fields win, zero fields
// inherit.
func (l LimitsConfig) merged(def LimitsConfig) LimitsConfig {
	out := def
	if l.Instructions > 0 {
		out.Instructions = l.Instructions
	}
	if l.InitInstructions > 0 {
		out.InitInstructions = l.InitInstructions
	}
	if l.Memory > 0 {
		out.Memory = l.Memory
	}
	if l.Output > 0 {
		out.Output = l.Output
	}
	if l.TimeoutMS > 0 {
		out.TimeoutMS = l.TimeoutMS
	}
	return out
}

// validate rejects negative budgets and instruction limits the interpreter
// could never reach (above its hard step ceiling).
func (l LimitsConfig) validate(scope string) error {
	if l.Instructions < 0 || l.InitInstructions < 0 || l.Memory < 0 || l.Output < 0 || l.TimeoutMS < 0 {
		return fmt.Errorf("core: %s: limits must be non-negative", scope)
	}
	if l.Instructions > script.DefaultMaxSteps || l.InitInstructions > script.DefaultMaxSteps {
		return fmt.Errorf("core: %s: instruction limit exceeds the interpreter ceiling %d", scope, int64(script.DefaultMaxSteps))
	}
	return nil
}

// ToScript converts a fully-resolved budget into the script layer's form.
func (l LimitsConfig) ToScript() script.Limits {
	return script.Limits{
		Instructions:     l.Instructions,
		InitInstructions: l.InitInstructions,
		Memory:           l.Memory,
		Output:           l.Output,
		Timeout:          time.Duration(l.TimeoutMS * float64(time.Millisecond)),
	}
}

// EffectiveLimits resolves the budget a module deploys under:
// module-level overrides pipeline-level overrides cluster defaults.
func (c *PipelineConfig) EffectiveLimits(module string) LimitsConfig {
	eff := c.Limits.merged(DefaultLimits())
	if m, ok := c.Module(module); ok {
		eff = m.Limits.merged(eff)
	}
	return eff
}
