package core

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"videopipe/internal/device"
	"videopipe/internal/services"
	"videopipe/internal/wire"
)

// Monitor implements the paper's stated future work (§7: "we aim to
// include automatic deployment, scheduling and monitoring components"):
// a cluster-level observer that samples pipeline progress, module errors
// and service-pool utilization, detects stalled pipelines, and can drive
// autoscalers for saturated services.
type Monitor struct {
	cluster *Cluster
	// Interval is the sampling period; zero selects 250 ms.
	Interval time.Duration
	// StallAfter is how long a running pipeline may go without completing
	// a frame before it is flagged; zero selects 2 s.
	StallAfter time.Duration

	mu       sync.Mutex
	lastDone map[string]uint64
	lastMove map[string]time.Time
	stalled  map[string]bool
	// per-module stall tracking, keyed pipeline+"."+module.
	modEvents map[string]uint64
	modMove   map[string]time.Time
	modStall  map[string]bool
	// lastErrors tracks per-pipeline module error totals between samples.
	lastErrors map[string]uint64
	// degraded state: when a sample finds a running pipeline stalled (or a
	// module stalled, or fresh errors), the time since the previous sample
	// accrues to degradedSecs and the pipeline.<name>.degraded_ms meter.
	degraded     map[string]bool
	lastSample   map[string]time.Time
	degradedSecs map[string]float64
	scalers      []*services.AutoScaler
	pub          *wire.Pub
}

// NewMonitor creates a monitor for the cluster.
func NewMonitor(c *Cluster) *Monitor {
	return &Monitor{
		cluster:      c,
		lastDone:     make(map[string]uint64),
		lastMove:     make(map[string]time.Time),
		stalled:      make(map[string]bool),
		modEvents:    make(map[string]uint64),
		modMove:      make(map[string]time.Time),
		modStall:     make(map[string]bool),
		lastErrors:   make(map[string]uint64),
		degraded:     make(map[string]bool),
		lastSample:   make(map[string]time.Time),
		degradedSecs: make(map[string]float64),
	}
}

// DegradedSeconds reports the accumulated time Sample has observed the
// named pipeline in a degraded state (stalled pipeline or module, or
// fresh module errors while running).
func (m *Monitor) DegradedSeconds(pipeline string) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.degradedSecs[pipeline]
}

// AutoScale attaches an autoscaler to a deployed service's pool; the
// monitor steps it on every sample. It returns the scaler for inspection.
func (m *Monitor) AutoScale(service string, minN, maxN int) (*services.AutoScaler, error) {
	pool, err := m.cluster.Pool(service)
	if err != nil {
		return nil, err
	}
	interval := m.Interval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	as, err := services.NewAutoScaler(pool, minN, maxN, interval)
	if err != nil {
		return nil, err
	}
	m.mu.Lock()
	m.scalers = append(m.scalers, as)
	m.mu.Unlock()
	return as, nil
}

// ModuleHealth is one module's observed state.
type ModuleHealth struct {
	Module  string
	Events  uint64
	Errors  uint64
	Stalled bool
}

// PipelineHealth is one pipeline's observed state.
type PipelineHealth struct {
	Pipeline  string
	Delivered uint64
	Stalled   bool
	// Degraded is set while the running pipeline is stalled, has a stalled
	// stage, or accrued module errors since the previous sample — the
	// graceful-degradation signal chaos experiments assert on.
	Degraded bool
	// Recoveries counts supervisor interventions (module migrations) on
	// this pipeline, from the pipeline.<name>.recoveries meter.
	Recoveries uint64
	Modules    []ModuleHealth
}

// ServiceHealth is one service pool's observed state.
type ServiceHealth struct {
	Service   string
	Device    string
	Instances int
	InFlight  int
	Calls     uint64
	// Restarts counts supervisor pool restarts, from the
	// supervisor.restarts.<service> meter.
	Restarts uint64
	// Breaker is the worst per-device circuit state observed for this
	// service (open > half-open > closed); zero when no device has called
	// it remotely yet.
	Breaker services.BreakerState
}

// Report is a point-in-time view of the cluster.
type Report struct {
	At        time.Time
	Pipelines []PipelineHealth
	Services  []ServiceHealth
}

// String renders the report for operators.
func (r Report) String() string {
	var b strings.Builder
	for _, p := range r.Pipelines {
		status := "ok"
		switch {
		case p.Stalled:
			status = "STALLED"
		case p.Degraded:
			status = "DEGRADED"
		}
		recov := ""
		if p.Recoveries > 0 {
			recov = fmt.Sprintf(" recoveries=%d", p.Recoveries)
		}
		fmt.Fprintf(&b, "pipeline %-20s delivered=%-6d %s%s\n", p.Pipeline, p.Delivered, status, recov)
		for _, mod := range p.Modules {
			note := ""
			if mod.Stalled {
				note = " STALLED"
			}
			fmt.Fprintf(&b, "  module %-28s events=%-6d errors=%d%s\n", mod.Module, mod.Events, mod.Errors, note)
		}
	}
	for _, s := range r.Services {
		extra := ""
		if s.Restarts > 0 {
			extra += fmt.Sprintf(" restarts=%d", s.Restarts)
		}
		if s.Breaker != 0 && s.Breaker != services.BreakerClosed {
			extra += " breaker=" + s.Breaker.String()
		}
		fmt.Fprintf(&b, "service %-20s on %-8s instances=%d in_flight=%d calls=%d%s\n",
			s.Service, s.Device, s.Instances, s.InFlight, s.Calls, extra)
	}
	return b.String()
}

// Sample takes one observation, updating stall tracking and stepping any
// attached autoscalers.
func (m *Monitor) Sample(ctx context.Context) Report {
	now := time.Now()
	reg := m.cluster.Metrics()

	m.mu.Lock()
	defer m.mu.Unlock()

	rep := Report{At: now}

	m.cluster.mu.Lock()
	pipelines := append([]*Pipeline(nil), m.cluster.pipelines...)
	m.cluster.mu.Unlock()

	stallAfter := m.StallAfter
	if stallAfter <= 0 {
		stallAfter = 2 * time.Second
	}

	for _, p := range pipelines {
		ph := PipelineHealth{
			Pipeline:   p.Name(),
			Recoveries: reg.Meter("pipeline." + p.Name() + ".recoveries").Count(),
		}
		running := p.isRunning()
		for _, sink := range p.cfg.Sinks() {
			ph.Delivered += reg.Meter("pipeline." + p.prefixed(sink) + ".frames_done").Count()
		}
		var errTotal uint64
		anyModStalled := false
		for _, mod := range p.Modules() {
			mh := ModuleHealth{
				Module: mod,
				Events: reg.Meter("module." + p.prefixed(mod) + ".events").Count(),
				Errors: reg.Meter("module." + p.prefixed(mod) + ".errors").Count(),
			}
			errTotal += mh.Errors

			// Per-module stall detection mirrors the pipeline-level check
			// on the module's event counter, so a report names the exact
			// stage a partition or pause has frozen.
			mkey := p.Name() + "." + mod
			if mh.Events != m.modEvents[mkey] {
				m.modEvents[mkey] = mh.Events
				m.modMove[mkey] = now
				m.modStall[mkey] = false
			} else if running {
				if last, seen := m.modMove[mkey]; seen && now.Sub(last) > stallAfter {
					m.modStall[mkey] = true
				} else if !seen {
					m.modMove[mkey] = now
				}
			}
			mh.Stalled = m.modStall[mkey]
			if mh.Stalled {
				anyModStalled = true
			}
			ph.Modules = append(ph.Modules, mh)
		}

		// Stall detection: a pipeline is stalled when it is mid-run and
		// the delivered counter has not moved within the window.
		key := p.Name()
		if ph.Delivered != m.lastDone[key] {
			m.lastDone[key] = ph.Delivered
			m.lastMove[key] = now
			m.stalled[key] = false
		} else if running {
			if last, seen := m.lastMove[key]; seen && now.Sub(last) > stallAfter {
				m.stalled[key] = true
			} else if !seen {
				m.lastMove[key] = now
			}
		}
		ph.Stalled = m.stalled[key]

		errDelta := errTotal - m.lastErrors[key]
		m.lastErrors[key] = errTotal
		ph.Degraded = running && (ph.Stalled || anyModStalled || errDelta > 0)

		// Accrue degraded time: the interval since the previous sample is
		// attributed to whichever state that sample ended in.
		if prev, seen := m.lastSample[key]; seen && m.degraded[key] {
			interval := now.Sub(prev)
			m.degradedSecs[key] += interval.Seconds()
			reg.Meter("pipeline." + key + ".degraded_ms").MarkN(uint64(interval.Milliseconds()))
		}
		m.degraded[key] = ph.Degraded
		m.lastSample[key] = now

		rep.Pipelines = append(rep.Pipelines, ph)
	}

	for _, svc := range m.cluster.ServiceNames() {
		pool, err := m.cluster.Pool(svc)
		if err != nil {
			continue
		}
		host, _ := m.cluster.ServiceHost(svc)
		rep.Services = append(rep.Services, ServiceHealth{
			Service:   svc,
			Device:    host,
			Instances: pool.Size(),
			InFlight:  pool.InFlight(),
			Calls:     pool.Calls(),
			Restarts:  reg.Meter("supervisor.restarts." + svc).Count(),
			Breaker:   m.worstBreaker(svc),
		})
	}
	sort.Slice(rep.Services, func(i, j int) bool { return rep.Services[i].Service < rep.Services[j].Service })

	for _, as := range m.scalers {
		as.Step(ctx)
	}
	return rep
}

// worstBreaker aggregates a service's circuit state across all devices:
// any open breaker dominates, then half-open, then closed.
func (m *Monitor) worstBreaker(service string) services.BreakerState {
	var worst services.BreakerState
	rank := func(s services.BreakerState) int {
		switch s {
		case services.BreakerOpen:
			return 3
		case services.BreakerHalfOpen:
			return 2
		case services.BreakerClosed:
			return 1
		default:
			return 0
		}
	}
	m.cluster.mu.Lock()
	devs := make([]*device.Device, 0, len(m.cluster.devices))
	for _, d := range m.cluster.devices {
		devs = append(devs, d)
	}
	m.cluster.mu.Unlock()
	for _, d := range devs {
		if s, ok := d.BreakerStates()[service]; ok && rank(s) > rank(worst) {
			worst = s
		}
	}
	return worst
}

// TelemetryTopic is the pub/sub topic reports are broadcast under.
const TelemetryTopic = "monitor.report"

// ServeTelemetry broadcasts every report over a pub socket as JSON under
// TelemetryTopic, so dashboards anywhere in the home can subscribe. It
// returns the publisher; Close it (or close the monitor's context) when
// done.
func (m *Monitor) ServeTelemetry(t wire.Transport, port int) (*wire.Pub, error) {
	pub, err := wire.ListenPub(t, port)
	if err != nil {
		return nil, fmt.Errorf("core: telemetry: %w", err)
	}
	m.mu.Lock()
	m.pub = pub
	m.mu.Unlock()
	return pub, nil
}

// publish broadcasts a report when telemetry is enabled.
func (m *Monitor) publish(rep Report) {
	m.mu.Lock()
	pub := m.pub
	m.mu.Unlock()
	if pub == nil {
		return
	}
	data, err := json.Marshal(rep)
	if err != nil {
		return
	}
	// Best effort: a closed publisher just means telemetry is off.
	_ = pub.Publish(TelemetryTopic, wire.NewMessage(data))
}

// Run samples periodically until ctx is done, delivering each report to
// sink (which may be nil for scaling-only monitors).
func (m *Monitor) Run(ctx context.Context, sink func(Report)) {
	interval := m.Interval
	if interval <= 0 {
		interval = 250 * time.Millisecond
	}
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			rep := m.Sample(ctx)
			m.publish(rep)
			if sink != nil {
				sink(rep)
			}
		}
	}
}

// isRunning reports whether the pipeline is mid-Run.
func (p *Pipeline) isRunning() bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.running
}
