package core_test

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/frame"
	"videopipe/internal/netsim"
	"videopipe/internal/services"
	"videopipe/internal/wire"

	"encoding/json"
)

func TestMonitorReportsPipelinesAndServices(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("monfit", 15, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	mon := core.NewMonitor(c)

	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(context.Background(), time.Second)
	}()
	time.Sleep(600 * time.Millisecond)
	rep := mon.Sample(context.Background())
	<-done

	if len(rep.Pipelines) != 1 || rep.Pipelines[0].Pipeline != "monfit" {
		t.Fatalf("pipelines = %+v", rep.Pipelines)
	}
	ph := rep.Pipelines[0]
	if ph.Delivered == 0 {
		t.Error("monitor saw no delivered frames")
	}
	if ph.Stalled {
		t.Error("healthy pipeline flagged as stalled")
	}
	if len(ph.Modules) != 5 {
		t.Errorf("modules observed = %d, want 5", len(ph.Modules))
	}
	if len(rep.Services) != 5 {
		t.Errorf("services observed = %d, want 5", len(rep.Services))
	}
	foundPose := false
	for _, s := range rep.Services {
		if s.Service == services.PoseDetector {
			foundPose = true
			if s.Device != "desktop" || s.Instances != 1 || s.Calls == 0 {
				t.Errorf("pose health = %+v", s)
			}
		}
	}
	if !foundPose {
		t.Error("pose service missing from report")
	}
	out := rep.String()
	if !strings.Contains(out, "monfit") || !strings.Contains(out, services.PoseDetector) {
		t.Errorf("report rendering: %q", out)
	}
}

func TestMonitorDetectsStall(t *testing.T) {
	c := homeCluster(t)
	// A pipeline whose sink never calls frame_done: after the credits are
	// consumed, nothing progresses — a stall.
	cfg := core.PipelineConfig{
		Name: "stuck",
		Modules: []core.ModuleConfig{
			{Name: "hole", Source: `function event_received(m) { /* swallow the frame */ }`},
		},
		Source: core.SourceConfig{
			Device: "phone", FirstModule: "hole", FPS: 15,
			Width: 64, Height: 48,
		},
	}
	p, err := c.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	mon := core.NewMonitor(c)
	mon.StallAfter = 200 * time.Millisecond

	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(context.Background(), 1200*time.Millisecond)
	}()
	defer func() { <-done }()

	deadline := time.Now().Add(time.Second)
	stalled := false
	for time.Now().Before(deadline) {
		rep := mon.Sample(context.Background())
		for _, ph := range rep.Pipelines {
			if ph.Pipeline == "stuck" && ph.Stalled {
				stalled = true
			}
		}
		if stalled {
			break
		}
		time.Sleep(50 * time.Millisecond)
	}
	if !stalled {
		t.Error("monitor never flagged the stuck pipeline")
	}
}

func TestMonitorAutoScaleAttachesToPool(t *testing.T) {
	c := homeCluster(t)
	mon := core.NewMonitor(c)
	as, err := mon.AutoScale(services.PoseDetector, 1, 3)
	if err != nil {
		t.Fatalf("AutoScale: %v", err)
	}
	if as == nil {
		t.Fatal("nil scaler")
	}
	if _, err := mon.AutoScale("ghost", 1, 2); err == nil {
		t.Error("AutoScale on undeployed service succeeded")
	}
	// Sampling steps the scaler without panicking on an idle pool.
	mon.Sample(context.Background())
}

func TestMonitorRunDeliversReports(t *testing.T) {
	c := homeCluster(t)
	mon := core.NewMonitor(c)
	mon.Interval = 20 * time.Millisecond

	got := make(chan core.Report, 8)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	go mon.Run(ctx, func(r core.Report) {
		select {
		case got <- r:
		default:
		}
	})
	<-ctx.Done()
	if len(got) == 0 {
		t.Error("monitor Run produced no reports")
	}
}

func TestLatencyAwarePlannerMatchesCoLocateOnPaperTopology(t *testing.T) {
	c := homeCluster(t)
	cfg := apps.FitnessConfig("lat", 20, "squat")
	plan, err := core.LatencyAwarePlanner{}.Plan(&cfg, c)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	want := map[string]string{
		"video_streaming":      "phone",
		"pose_detection":       "desktop",
		"activity_recognition": "desktop",
		"rep_counter":          "desktop",
		"display":              "tv",
	}
	for mod, dev := range want {
		if plan.Placement[mod] != dev {
			t.Errorf("placement[%s] = %q, want %q", mod, plan.Placement[mod], dev)
		}
	}
}

func TestLatencyAwarePlannerRespectsPins(t *testing.T) {
	c := homeCluster(t)
	cfg := validConfig()
	cfg.Modules[0].Device = "tv"
	plan, err := core.LatencyAwarePlanner{}.Plan(&cfg, c)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if plan.Placement["a"] != "tv" {
		t.Errorf("pin ignored: %v", plan.Placement)
	}
	cfg.Modules[0].Device = "ghost"
	if _, err := (core.LatencyAwarePlanner{}).Plan(&cfg, c); err == nil {
		t.Error("unknown pin accepted")
	}
}

func TestLatencyAwarePlannerAvoidsExpensiveLink(t *testing.T) {
	// Give the chain no services so placement is driven purely by
	// transfers; make the phone<->desktop link terrible. The planner
	// should keep the whole chain on the phone rather than hop across.
	c := homeCluster(t)
	c.Network().SetLink("phone", "desktop", netsim.LinkProfile{Latency: 500 * time.Millisecond, Bandwidth: 100_000})
	cfg := core.PipelineConfig{
		Name: "chain",
		Modules: []core.ModuleConfig{
			{Name: "a", Source: "function event_received(m) {}", Next: []string{"b"}},
			{Name: "b", Source: "function event_received(m) {}"},
		},
		Source: core.SourceConfig{Device: "phone", FirstModule: "a", FPS: 10, Width: 480, Height: 360},
	}
	plan, err := core.LatencyAwarePlanner{}.Plan(&cfg, c)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if plan.Placement["a"] != "phone" || plan.Placement["b"] != "phone" {
		t.Errorf("serviceless chain left the camera device: %v", plan.Placement)
	}
}

func TestLatencyAwarePipelineRuns(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("latrun", 15, "squat"), core.LatencyAwarePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if p.PlannerName() != "latency-aware" {
		t.Errorf("planner name = %q", p.PlannerName())
	}
	res, err := p.Run(context.Background(), time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Delivered == 0 {
		t.Error("latency-aware plan delivered nothing")
	}
}

func TestMonitorTelemetryBroadcast(t *testing.T) {
	c := homeCluster(t)
	mon := core.NewMonitor(c)
	mon.Interval = 20 * time.Millisecond

	phone, _ := c.Device("phone")
	pub, err := mon.ServeTelemetry(phone.Transport(), 0)
	if err != nil {
		t.Fatalf("ServeTelemetry: %v", err)
	}
	defer pub.Close()

	tv, _ := c.Device("tv")
	sub, err := wire.DialSub(tv.Transport(), pub.Addr().String(), core.TelemetryTopic)
	if err != nil {
		t.Fatalf("DialSub: %v", err)
	}
	defer sub.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	go mon.Run(ctx, nil)

	msg, err := sub.Recv(ctx)
	if err != nil {
		t.Fatalf("Recv: %v", err)
	}
	if msg.StringPart(0) != core.TelemetryTopic {
		t.Errorf("topic = %q", msg.StringPart(0))
	}
	var rep core.Report
	if err := json.Unmarshal(msg.Part(1), &rep); err != nil {
		t.Fatalf("telemetry payload not JSON: %v", err)
	}
	if len(rep.Services) != 5 {
		t.Errorf("telemetry report services = %d, want 5", len(rep.Services))
	}
}

func TestClusterMiscAccessors(t *testing.T) {
	c := homeCluster(t)
	if c.Registry() == nil {
		t.Error("nil registry")
	}
	c.SetCodec(frame.RawCodec{}) // must not panic; effect covered by the codec ablation
	c.SetCodec(frame.JPEGCodec{Quality: 85})
	if got := (core.PinnedPlanner{}).Name(); got != "pinned" {
		t.Errorf("pinned planner name = %q", got)
	}
}

func TestFileResolverReadsRelative(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "mod.js"), []byte("function event_received(m) {}"), 0o644); err != nil {
		t.Fatal(err)
	}
	resolve := core.FileResolver(dir)
	src, err := resolve("mod.js")
	if err != nil || !strings.Contains(src, "event_received") {
		t.Errorf("FileResolver: %q, %v", src, err)
	}
	if _, err := resolve("missing.js"); err == nil {
		t.Error("missing include resolved")
	}
}

func TestPipelineModuleAccessor(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("acc", 10, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	m, ok := p.Module("display")
	if !ok || m == nil {
		t.Error("Module(display) not found")
	}
	if _, ok := p.Module("ghost"); ok {
		t.Error("Module(ghost) found")
	}
	if got := p.Placement()["display"]; got != "tv" {
		t.Errorf("Placement()[display] = %q", got)
	}
}

// TestMonitorDetectsStallUnderPartition partitions the phone↔desktop link
// mid-run and checks the monitor (a) names the exact stage the partition
// froze, (b) marks the pipeline degraded and accrues degraded time, and
// (c) clears both once the link heals and delivery resumes.
func TestMonitorDetectsStallUnderPartition(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("partmon", 15, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	mon := core.NewMonitor(c)
	mon.StallAfter = 300 * time.Millisecond

	done := make(chan struct{})
	go func() {
		defer close(done)
		if _, err := p.Run(context.Background(), 6*time.Second); err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	defer func() { <-done }()

	sample := func() core.PipelineHealth {
		rep := mon.Sample(context.Background())
		for _, ph := range rep.Pipelines {
			if ph.Pipeline == "partmon" {
				return ph
			}
		}
		t.Fatal("pipeline missing from report")
		return core.PipelineHealth{}
	}
	pollUntil := func(deadline time.Duration, cond func(core.PipelineHealth) bool) bool {
		end := time.Now().Add(deadline)
		for time.Now().Before(end) {
			if cond(sample()) {
				return true
			}
			time.Sleep(50 * time.Millisecond)
		}
		return false
	}

	// Healthy warm-up: frames flowing, nothing stalled.
	if !pollUntil(2*time.Second, func(ph core.PipelineHealth) bool { return ph.Delivered >= 3 }) {
		t.Fatal("pipeline never became healthy")
	}

	// Partition: the cross-link stages freeze while the source keeps
	// dropping frames. The monitor must name a stalled downstream module.
	c.Network().Partition("phone", "desktop")
	stalledStage := ""
	found := pollUntil(3*time.Second, func(ph core.PipelineHealth) bool {
		if !ph.Degraded {
			return false
		}
		for _, mh := range ph.Modules {
			if mh.Stalled && mh.Module != "video_streaming" {
				stalledStage = mh.Module
				return true
			}
		}
		return false
	})
	if !found {
		t.Fatal("monitor never flagged a stalled stage during the partition")
	}
	t.Logf("stalled stage during partition: %s", stalledStage)

	// Heal: delivery resumes and the stall flags clear.
	c.Network().Heal("phone", "desktop")
	cleared := pollUntil(3*time.Second, func(ph core.PipelineHealth) bool {
		if ph.Stalled || ph.Degraded {
			return false
		}
		for _, mh := range ph.Modules {
			if mh.Stalled {
				return false
			}
		}
		return true
	})
	if !cleared {
		t.Error("stall flags did not clear after heal")
	}
	if got := mon.DegradedSeconds("partmon"); got <= 0 {
		t.Errorf("DegradedSeconds = %v, want > 0 after an outage", got)
	}
	if c.Metrics().Meter("pipeline.partmon.degraded_ms").Count() == 0 {
		t.Error("degraded_ms meter never accrued")
	}
}
