package core

import (
	"context"
	"fmt"
	"image/color"
	"sort"
	"strings"
	"sync"
	"time"

	"videopipe/internal/device"
	"videopipe/internal/frame"
	"videopipe/internal/metrics"
	"videopipe/internal/script"
	"videopipe/internal/vision"
)

// Pipeline is a deployed application: modules spawned across cluster
// devices per a plan, wired into a DAG, with a paced source feeding the
// first module under credit-based flow control (§2.3).
type Pipeline struct {
	name    string
	cfg     PipelineConfig
	cluster *Cluster
	planner string
	// plannerImpl is kept so the supervisor can re-plan after a device
	// failure with the same strategy the pipeline launched with.
	plannerImpl Planner

	source *frame.Source

	// creditMu guards the credit window (§2.3). A counter rather than a
	// channel so the tuner can widen or narrow the window on a live
	// pipeline (ResizeCredits); avail + in-flight never exceeds cap.
	creditMu    sync.Mutex
	creditAvail int
	creditCap   int

	// mu guards the fields below: placement and module instances become
	// mutable once live migration exists.
	mu        sync.Mutex
	plan      Plan
	modules   map[string]*device.Module // raw module name -> instance
	entry     *device.Module
	closed    bool
	running   bool
	migrating bool
}

// Launch validates, plans and deploys a pipeline onto the cluster. Module
// and metric names are prefixed with the pipeline name, so multiple
// pipelines coexist (sharing service pools, §5.2.2).
func (c *Cluster) Launch(cfg PipelineConfig, planner Planner) (*Pipeline, error) {
	if planner == nil {
		planner = CoLocatePlanner{}
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	// Static analysis gate (pipevet): reject error-severity findings before
	// anything deploys; warnings only bump a meter.
	warns, err := analyzeForLaunch(&cfg)
	for range warns {
		c.reg.Meter("analysis." + cfg.Name + ".warnings").Mark()
	}
	if err != nil {
		return nil, err
	}
	plan, err := planner.Plan(&cfg, c)
	if err != nil {
		return nil, err
	}
	for name, dev := range plan.Placement {
		if _, ok := c.Device(dev); !ok {
			return nil, fmt.Errorf("core: plan places %q on unknown device %q", name, dev)
		}
	}
	// Every service a module uses must be reachable from its device.
	for _, m := range cfg.Modules {
		d, _ := c.Device(plan.Placement[m.Name])
		for _, svc := range m.Services {
			if !d.HasService(svc) {
				return nil, fmt.Errorf("core: module %q on %q cannot reach service %q", m.Name, d.Name(), svc)
			}
		}
	}

	p := &Pipeline{
		name:        cfg.Name,
		cfg:         cfg,
		cluster:     c,
		plan:        plan,
		planner:     planner.Name(),
		plannerImpl: planner,
		modules:     make(map[string]*device.Module, len(cfg.Modules)),
		creditCap:   plan.Credits,
	}

	// Spawn sinks-first (reverse topological order) so every edge's
	// destination endpoint exists when its source spawns.
	order, err := cfg.TopoOrder()
	if err != nil {
		return nil, err
	}
	for i := len(order) - 1; i >= 0; i-- {
		mc, _ := cfg.Module(order[i])
		if err := p.spawnModule(mc); err != nil {
			p.Close()
			return nil, err
		}
	}

	// All modules signal frame completion back to the source's credit
	// pool; the script decides which module calls frame_done(). Events
	// that error out before frame_done also return their credit so a
	// fault burst cannot permanently starve the source.
	for _, m := range p.modules {
		m.SetFrameDone(p.returnCredit)
		m.SetFrameAbandoned(p.returnCredit)
	}

	// Build the source.
	renderer := cfg.Source.Renderer
	if renderer == nil {
		renderer, err = sceneRenderer(cfg.Source)
		if err != nil {
			p.Close()
			return nil, err
		}
	}
	src, err := frame.NewSource(cfg.Source.FPS, renderer)
	if err != nil {
		p.Close()
		return nil, err
	}
	p.source = src
	p.entry = p.modules[cfg.Source.FirstModule]

	c.mu.Lock()
	c.pipelines = append(c.pipelines, p)
	c.mu.Unlock()
	return p, nil
}

// SourceRenderer builds the synthetic-camera renderer the pipeline's own
// source would use for sc — exported for the flood harness, which paces
// frame injection itself (via Offer) but must render frames exactly as
// Run would, so flooded and source-driven pipelines see the same scenes.
func SourceRenderer(sc SourceConfig) (frame.Renderer, error) {
	return sceneRenderer(sc)
}

func sceneRenderer(sc SourceConfig) (frame.Renderer, error) {
	if sc.Scene == "" {
		return frame.SolidRenderer(sc.Width, sc.Height, backgroundGray), nil
	}
	activity, err := vision.ParseActivity(sc.Scene)
	if err != nil {
		return nil, err
	}
	repRate := sc.RepRate
	if repRate <= 0 {
		repRate = 0.5
	}
	subject := vision.DefaultSubject()
	subject.CenterX = float64(sc.Width) / 2
	subject.CenterY = float64(sc.Height) * 0.54
	subject.Scale = float64(sc.Height) / 6
	return vision.SceneRenderer(sc.Width, sc.Height, activity, repRate, subject), nil
}

func (p *Pipeline) spawnModule(mc *ModuleConfig) error {
	devName := p.plan.Placement[mc.Name]
	d, _ := p.cluster.Device(devName)

	var routes []device.Route
	for _, next := range mc.Next {
		dst := p.modules[next]
		if dst == nil {
			return fmt.Errorf("core: internal: destination %q not yet spawned", next)
		}
		route := device.Route{Module: p.prefixed(next), Label: next}
		if p.plan.Placement[next] != devName {
			route.Address = dst.Addr().String()
		}
		routes = append(routes, route)
	}

	port := 0
	if mc.Endpoint.Port != 0 {
		port = mc.Endpoint.Port
	}
	m, err := d.SpawnModule(device.ModuleSpec{
		Name:         p.prefixed(mc.Name),
		Source:       mc.Source,
		Services:     mc.Services,
		Port:         port,
		Next:         routes,
		MetricPrefix: p.name,
		Limits:       p.cfg.EffectiveLimits(mc.Name).ToScript(),
	})
	if err != nil {
		return err
	}
	p.modules[mc.Name] = m
	return nil
}

func (p *Pipeline) prefixed(module string) string { return p.name + "." + module }

// Name reports the pipeline name.
func (p *Pipeline) Name() string { return p.name }

// PlannerName reports the placement strategy used.
func (p *Pipeline) PlannerName() string { return p.planner }

// Placement reports the module-to-device assignment.
func (p *Pipeline) Placement() map[string]string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make(map[string]string, len(p.plan.Placement))
	for k, v := range p.plan.Placement {
		out[k] = v
	}
	return out
}

// returnCredit gives a frame admission slot back to the source. The cap
// clamp absorbs both double returns and a window narrowed while frames
// were in flight.
func (p *Pipeline) returnCredit() {
	p.creditMu.Lock()
	if p.creditAvail < p.creditCap {
		p.creditAvail++
	}
	p.creditMu.Unlock()
}

// takeCredit claims one admission slot, reporting whether one was free.
func (p *Pipeline) takeCredit() bool {
	p.creditMu.Lock()
	defer p.creditMu.Unlock()
	if p.creditAvail <= 0 {
		return false
	}
	p.creditAvail--
	return true
}

// ResizeCredits adjusts the flow-control window to n credits — the
// tuner's actuator when the source, not the services, is the bottleneck.
// Growth is effective immediately; shrinking narrows the cap and lets
// in-flight frames drain without reclaiming their credits early.
func (p *Pipeline) ResizeCredits(n int) error {
	if n < 1 {
		return fmt.Errorf("core: pipeline %q: credit window must be >= 1, got %d", p.name, n)
	}
	p.creditMu.Lock()
	defer p.creditMu.Unlock()
	if delta := n - p.creditCap; delta > 0 {
		p.creditAvail += delta
	} else if p.creditAvail > n {
		p.creditAvail = n
	}
	p.creditCap = n
	return nil
}

// Credits reports the current credit window cap.
func (p *Pipeline) Credits() int {
	p.creditMu.Lock()
	defer p.creditMu.Unlock()
	return p.creditCap
}

// CreditsAvail reports how many credits are currently unclaimed. Zero
// means the window is fully in flight — the next burst arrival drops.
func (p *Pipeline) CreditsAvail() int {
	p.creditMu.Lock()
	defer p.creditMu.Unlock()
	return p.creditAvail
}

// RunResult summarizes one pipeline run — the measurements behind the
// paper's Fig. 6 and Table 2.
type RunResult struct {
	// Pipeline and Planner identify the run.
	Pipeline string
	Planner  string
	// Duration is the measured wall-clock window.
	Duration time.Duration
	// Source reports captured/emitted/dropped frames at the camera.
	Source frame.SourceStats
	// Delivered is the number of frames that completed the pipeline.
	Delivered uint64
	// FPS is the end-to-end delivered frame rate (Table 2's metric).
	FPS float64
	// E2E is the capture-to-display latency distribution (Fig. 6 "Total
	// Duration").
	E2E metrics.Snapshot
	// Stages maps stage names to their latency distributions (Fig. 6
	// bars), as reported by module scripts via metric().
	Stages map[string]metrics.Snapshot
}

// String renders the result like the paper's tables.
func (r RunResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s [%s]: source %.1f fps -> delivered %.2f fps (%d frames, %d dropped at source), e2e %v\n",
		r.Pipeline, r.Planner, float64(r.Source.Captured)/r.Duration.Seconds(), r.FPS, r.Delivered,
		r.Source.Dropped, r.E2E.Mean.Round(time.Millisecond))
	names := make([]string, 0, len(r.Stages))
	for n := range r.Stages {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Fprintf(&b, "  stage %-16s %s\n", n, r.Stages[n])
	}
	return b.String()
}

// Run drives the source for the given duration and collects results. A
// pipeline can be Run repeatedly; metrics accumulate unless the cluster
// registry is reset between runs.
func (p *Pipeline) Run(ctx context.Context, d time.Duration) (RunResult, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return RunResult{}, fmt.Errorf("core: pipeline %q is closed", p.name)
	}
	if p.running {
		p.mu.Unlock()
		return RunResult{}, fmt.Errorf("core: pipeline %q is already running", p.name)
	}
	p.running = true
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.running = false
		p.mu.Unlock()
	}()

	p.PrimeCredits()

	runCtx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	start := time.Now()
	err := p.source.Run(runCtx, p.Offer)
	elapsed := time.Since(start)
	if err != nil {
		return RunResult{}, err
	}
	// Let in-flight frames drain before reading the meters.
	time.Sleep(150 * time.Millisecond)
	return p.collect(elapsed), nil
}

// PrimeCredits refills the admission pool to the plan's in-flight
// allowance — what Run does at window start. External drivers (the
// vpflood open-loop generator) call it once before their first Offer.
func (p *Pipeline) PrimeCredits() {
	p.creditMu.Lock()
	p.creditAvail = p.creditCap
	p.creditMu.Unlock()
}

// Offer admits one captured frame if a flow-control credit is available,
// otherwise drops it at the source (§2.3: dropping happens at the
// beginning of the pipeline, never inside it). It is the source's emit
// callback, and the injection path open-loop load generators
// (internal/flood) drive in place of the built-in paced source. Offer
// never blocks; the frame must carry Captured (end-to-end latency is
// measured from it at the sink) and ownership transfers unconditionally —
// a rejected frame has already been released when Offer returns false.
func (p *Pipeline) Offer(f *frame.Frame) bool {
	if !p.takeCredit() {
		// Dropped at the source: emit owns the frame, so recycle its
		// buffer here. (Once TryInject Puts it in the device store, the
		// store owns it and releases on eviction.)
		f.Release()
		p.cluster.Metrics().Meter("pipeline." + p.name + ".source_drops").Mark()
		return false
	}
	body := map[string]any{
		"captured_ms": float64(f.Captured.UnixNano()) / 1e6,
		"seq":         float64(f.Seq),
	}
	p.mu.Lock()
	entry := p.entry
	p.mu.Unlock()
	ok, err := entry.TryInject(body, f)
	if err != nil || !ok {
		p.returnCredit()
		return false
	}
	return true
}

// collect aggregates this pipeline's metrics from the cluster registry.
func (p *Pipeline) collect(elapsed time.Duration) RunResult {
	reg := p.cluster.Metrics()
	res := RunResult{
		Pipeline: p.name,
		Planner:  p.planner,
		Duration: elapsed,
		Source:   p.source.Stats(),
		Stages:   make(map[string]metrics.Snapshot),
	}

	var delivered uint64
	var rate float64
	for _, sink := range p.cfg.Sinks() {
		meter := reg.Meter("pipeline." + p.prefixed(sink) + ".frames_done")
		delivered += meter.Count()
		rate += meter.Rate()
		e2e := reg.Histogram("pipeline." + p.prefixed(sink) + ".e2e")
		if e2e.Count() > 0 {
			res.E2E = e2e.Snapshot()
		}
	}
	res.Delivered = delivered
	res.FPS = rate

	stagePrefix := "stage." + p.name + "."
	for _, name := range reg.HistogramNames() {
		if strings.HasPrefix(name, stagePrefix) {
			//vpvet:allow metername re-reads an instrument already registered under this name
			res.Stages[strings.TrimPrefix(name, stagePrefix)] = reg.Histogram(name).Snapshot()
		}
	}
	return res
}

// Modules lists the deployed module names (unprefixed).
func (p *Pipeline) Modules() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.modules))
	for name := range p.modules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Module returns a deployed module instance by its config name.
func (p *Pipeline) Module(name string) (*device.Module, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	m, ok := p.modules[name]
	return m, ok
}

// UpdateModule hot-swaps a module's code in the running pipeline (live
// redeployment, paper §7). Placement, routing and flow control are
// untouched; the module's encapsulated state restarts fresh.
func (p *Pipeline) UpdateModule(name, source string) error {
	m, ok := p.Module(name)
	if !ok {
		return fmt.Errorf("core: pipeline %q has no module %q", p.name, name)
	}
	// pipetype: a swap must not break an edge contract the rest of the DAG
	// still relies on (shapecheck.go). Only error-severity findings block.
	if err := checkShapeUpdate(p.cfg, name, source); err != nil {
		return err
	}
	return m.UpdateSource(source)
}

// RecordShapes installs a debug-mode runtime shape recorder on every
// module of the pipeline: each call_module payload is joined into the
// recorder under its "producer->target" edge, so observed traffic can be
// compared against the static pipetype inference (inferred must contain
// observed). Call StopRecordingShapes to detach the observers.
func (p *Pipeline) RecordShapes() *script.ShapeRecorder {
	rec := script.NewShapeRecorder()
	p.mu.Lock()
	defer p.mu.Unlock()
	for name, m := range p.modules {
		producer := name
		m.SetShapeObserver(func(target string, payload script.Value) {
			rec.Observe(producer+"->"+target, payload)
		})
	}
	return rec
}

// StopRecordingShapes detaches any shape observers installed by
// RecordShapes.
func (p *Pipeline) StopRecordingShapes() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, m := range p.modules {
		m.SetShapeObserver(nil)
	}
}

// MigrateModule moves a running module to another device — the live-
// migration half of self-healing. The old instance is quiesced (parked
// events drain, their flow-control credits return to the source), its
// PipeScript global state is snapshotted, and a fresh instance spawns on
// the target with that state restored before its first event. Upstream
// modules' routes are repointed in place; no other module restarts.
func (p *Pipeline) MigrateModule(name, target string) error {
	mc, ok := p.cfg.Module(name)
	if !ok {
		return fmt.Errorf("core: pipeline %q has no module %q", p.name, name)
	}
	d, ok := p.cluster.Device(target)
	if !ok {
		return fmt.Errorf("core: migrate %q: unknown device %q", name, target)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("core: pipeline %q is closed", p.name)
	}
	if p.migrating {
		p.mu.Unlock()
		return fmt.Errorf("core: pipeline %q already has a migration in flight", p.name)
	}
	p.migrating = true
	old := p.modules[name]
	oldDev := p.plan.Placement[name]
	// Resolve the new instance's outgoing routes against current
	// placement while we hold the lock.
	var routes []device.Route
	for _, next := range mc.Next {
		dst := p.modules[next]
		route := device.Route{Module: p.prefixed(next), Label: next}
		if p.plan.Placement[next] != target {
			route.Address = dst.Addr().String()
		}
		routes = append(routes, route)
	}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.migrating = false
		p.mu.Unlock()
	}()

	// Quiesce: after Close returns the event loop is gone, parked events
	// have handed their credits back, and the script context is ours to
	// snapshot.
	oldAddr := old.Addr().String()
	old.Close()
	snap := old.SnapshotState()

	newM, err := d.SpawnModule(device.ModuleSpec{
		Name:         p.prefixed(name),
		Source:       mc.Source,
		Services:     mc.Services,
		Next:         routes,
		MetricPrefix: p.name,
		Restore:      snap,
		Limits:       p.cfg.EffectiveLimits(name).ToScript(),
	})
	if err != nil {
		return fmt.Errorf("core: migrating %q to %q: %w", name, target, err)
	}
	newM.SetFrameDone(p.returnCredit)
	newM.SetFrameAbandoned(p.returnCredit)

	// Commit — unless the pipeline closed while we were spawning, in
	// which case the replacement must die here or its goroutines leak.
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		newM.Close()
		d.DropModule(p.prefixed(name))
		return fmt.Errorf("core: pipeline %q closed during migration of %q", p.name, name)
	}
	p.modules[name] = newM
	p.plan.Placement[name] = target
	if p.cfg.Source.FirstModule == name {
		p.entry = newM
	}
	// Repoint every predecessor's edge at the new instance.
	type repoint struct {
		m *device.Module
		r device.Route
	}
	var repoints []repoint
	for i := range p.cfg.Modules {
		pred := &p.cfg.Modules[i]
		for _, next := range pred.Next {
			if next != name {
				continue
			}
			route := device.Route{Module: p.prefixed(name), Label: name}
			if p.plan.Placement[pred.Name] != target {
				route.Address = newM.Addr().String()
			}
			repoints = append(repoints, repoint{m: p.modules[pred.Name], r: route})
		}
	}
	p.mu.Unlock()

	for _, rp := range repoints {
		rp.m.UpdateRoute(name, rp.r)
		// A predecessor mid-Send to the dead instance would otherwise spin
		// in the push's reconnect loop until its deadline, holding a frame
		// credit (and its whole event loop) hostage the entire time.
		rp.m.AbortPush(oldAddr)
	}
	// The dead device must not re-close the migrated-away instance (it
	// already is closed) nor hold the name.
	if od, ok := p.cluster.Device(oldDev); ok && oldDev != target {
		od.DropModule(p.prefixed(name))
	}
	p.cluster.Metrics().Meter("pipeline." + p.name + ".recoveries").Mark()
	return nil
}

// KilledModules lists modules (by config name, sorted) whose sandbox
// killed them after repeated budget breaches — the supervisor's restart
// work list.
func (p *Pipeline) KilledModules() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	var out []string
	for name, m := range p.modules {
		if m.Killed() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// RestartModule replaces a module in place on its current device — the
// recovery action for a sandbox kill. The replacement loads from the
// pipeline config's original source (discarding any hot-swapped code, the
// usual way hostile code arrived), and the old instance's global state is
// carried over only when its _PRESERVATION_VERSION matches the fresh
// code's — a mismatch starts clean rather than resurrecting a poisoned
// global.
func (p *Pipeline) RestartModule(name string) error {
	mc, ok := p.cfg.Module(name)
	if !ok {
		return fmt.Errorf("core: pipeline %q has no module %q", p.name, name)
	}

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return fmt.Errorf("core: pipeline %q is closed", p.name)
	}
	if p.migrating {
		p.mu.Unlock()
		return fmt.Errorf("core: pipeline %q already has a migration in flight", p.name)
	}
	p.migrating = true
	old := p.modules[name]
	devName := p.plan.Placement[name]
	var routes []device.Route
	for _, next := range mc.Next {
		dst := p.modules[next]
		route := device.Route{Module: p.prefixed(next), Label: next}
		if p.plan.Placement[next] != devName {
			route.Address = dst.Addr().String()
		}
		routes = append(routes, route)
	}
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.migrating = false
		p.mu.Unlock()
	}()

	d, ok := p.cluster.Device(devName)
	if !ok {
		return fmt.Errorf("core: restart %q: device %q is gone", name, devName)
	}

	// Quiesce exactly as migration does; the respawn is on the same
	// device, so the name must be dropped before the replacement spawns.
	oldAddr := old.Addr().String()
	old.Close()
	snap := old.SnapshotState()
	d.DropModule(p.prefixed(name))

	newM, err := d.SpawnModule(device.ModuleSpec{
		Name:         p.prefixed(name),
		Source:       mc.Source,
		Services:     mc.Services,
		Next:         routes,
		MetricPrefix: p.name,
		Restore:      snap,
		Limits:       p.cfg.EffectiveLimits(name).ToScript(),
	})
	if err != nil {
		return fmt.Errorf("core: restarting %q on %q: %w", name, devName, err)
	}
	newM.SetFrameDone(p.returnCredit)
	newM.SetFrameAbandoned(p.returnCredit)

	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		newM.Close()
		d.DropModule(p.prefixed(name))
		return fmt.Errorf("core: pipeline %q closed during restart of %q", p.name, name)
	}
	p.modules[name] = newM
	if p.cfg.Source.FirstModule == name {
		p.entry = newM
	}
	// The endpoint moved (fresh ephemeral bind); repoint remote
	// predecessors and unwedge any push still aimed at the old one.
	type repoint struct {
		m *device.Module
		r device.Route
	}
	var repoints []repoint
	for i := range p.cfg.Modules {
		pred := &p.cfg.Modules[i]
		for _, next := range pred.Next {
			if next != name {
				continue
			}
			route := device.Route{Module: p.prefixed(name), Label: name}
			if p.plan.Placement[pred.Name] != devName {
				route.Address = newM.Addr().String()
			}
			repoints = append(repoints, repoint{m: p.modules[pred.Name], r: route})
		}
	}
	p.mu.Unlock()

	for _, rp := range repoints {
		rp.m.UpdateRoute(name, rp.r)
		rp.m.AbortPush(oldAddr)
	}
	p.cluster.Metrics().Meter("pipeline." + p.name + ".recoveries").Mark()
	return nil
}

// FailOver migrates every module this pipeline had on a dead device,
// re-running the launch planner over the surviving devices (the caller
// marks the device down first, which removes it from DeviceNames and so
// from the new plan). It returns the migrated module names in order.
func (p *Pipeline) FailOver(dead string) ([]string, error) {
	p.mu.Lock()
	var orphans []string
	for name, devName := range p.plan.Placement {
		if devName == dead {
			orphans = append(orphans, name)
		}
	}
	p.mu.Unlock()
	if len(orphans) == 0 {
		return nil, nil
	}
	sort.Strings(orphans)

	plan, err := p.plannerImpl.Plan(&p.cfg, p.cluster)
	if err != nil {
		return nil, fmt.Errorf("core: re-planning %q after %s died: %w", p.name, dead, err)
	}
	var migrated []string
	for _, name := range orphans {
		target := plan.Placement[name]
		if target == "" || target == dead {
			return migrated, fmt.Errorf("core: re-plan left %q on dead device %q", name, dead)
		}
		if err := p.MigrateModule(name, target); err != nil {
			return migrated, err
		}
		migrated = append(migrated, name)
	}
	return migrated, nil
}

// Close tears the pipeline's modules down. Safe against a concurrent
// migration: the migration's commit step sees closed and tears its fresh
// module down instead of publishing it.
func (p *Pipeline) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	mods := make([]*device.Module, 0, len(p.modules))
	for _, m := range p.modules {
		mods = append(mods, m)
	}
	p.mu.Unlock()
	for _, m := range mods {
		m.Close()
	}
}

// backgroundGray is the solid-source fill used when no scene is set.
var backgroundGray = color.RGBA{R: 40, G: 40, B: 40, A: 255}
