package core_test

import (
	"context"
	"sync"
	"testing"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/device"
	"videopipe/internal/frame"
	"videopipe/internal/netsim"
	"videopipe/internal/services"
	"videopipe/internal/vision"
)

// fastRegistry builds the standard services with tiny simulated costs and
// a small training corpus, shared across tests.
var (
	fastRegOnce sync.Once
	fastRegVal  *services.Registry
	fastRegErr  error
)

func fastRegistry(t *testing.T) *services.Registry {
	t.Helper()
	fastRegOnce.Do(func() {
		opts := services.DefaultOptions()
		opts.PoseCost = 15 * time.Millisecond
		opts.ActivityCost = 2 * time.Millisecond
		opts.RepCost = time.Millisecond
		opts.DisplayCost = time.Millisecond
		opts.FallCost = time.Millisecond
		cfg := vision.DefaultDatasetConfig()
		cfg.SequencesPerActivity = 6
		cfg.FramesPerSequence = 45
		opts.DatasetConfig = cfg
		fastRegVal, fastRegErr = services.NewStandardRegistry(opts)
	})
	if fastRegErr != nil {
		t.Fatalf("NewStandardRegistry: %v", fastRegErr)
	}
	return fastRegVal
}

func homeCluster(t *testing.T) *core.Cluster {
	t.Helper()
	c, err := core.NewCluster(apps.HomeClusterSpec(), fastRegistry(t))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(c.Close)
	return c
}

func TestNewClusterValidation(t *testing.T) {
	reg := fastRegistry(t)
	if _, err := core.NewCluster(core.ClusterSpec{}, reg); err == nil {
		t.Error("empty cluster accepted")
	}
	if _, err := core.NewCluster(core.ClusterSpec{Devices: []device.Config{{Name: "a"}}}, nil); err == nil {
		t.Error("nil registry accepted")
	}
	dup := core.ClusterSpec{Devices: []device.Config{{Name: "a"}, {Name: "a"}}}
	if _, err := core.NewCluster(dup, reg); err == nil {
		t.Error("duplicate devices accepted")
	}
	badSvc := core.ClusterSpec{
		Devices:  []device.Config{{Name: "a", Class: device.Desktop}},
		Services: []core.ServicePlacement{{Service: "nope", Device: "a"}},
	}
	if _, err := core.NewCluster(badSvc, reg); err == nil {
		t.Error("unknown service accepted")
	}
	badDev := core.ClusterSpec{
		Devices:  []device.Config{{Name: "a", Class: device.Desktop}},
		Services: []core.ServicePlacement{{Service: services.PoseDetector, Device: "ghost"}},
	}
	if _, err := core.NewCluster(badDev, reg); err == nil {
		t.Error("service on unknown device accepted")
	}
	noContainers := core.ClusterSpec{
		Devices:  []device.Config{{Name: "a", Class: device.Phone}},
		Services: []core.ServicePlacement{{Service: services.PoseDetector, Device: "a"}},
	}
	if _, err := core.NewCluster(noContainers, reg); err == nil {
		t.Error("service on container-less device accepted")
	}
}

func TestClusterAccessors(t *testing.T) {
	c := homeCluster(t)
	if names := c.DeviceNames(); len(names) != 3 || names[0] != "phone" {
		t.Errorf("DeviceNames = %v", names)
	}
	if host, ok := c.ServiceHost(services.PoseDetector); !ok || host != "desktop" {
		t.Errorf("ServiceHost(pose) = %q, %v", host, ok)
	}
	if host, ok := c.ServiceHost(services.Display); !ok || host != "tv" {
		t.Errorf("ServiceHost(display) = %q, %v", host, ok)
	}
	if _, err := c.Pool(services.PoseDetector); err != nil {
		t.Errorf("Pool: %v", err)
	}
	if _, err := c.Pool("ghost"); err == nil {
		t.Error("Pool(ghost) succeeded")
	}
	if got := c.ServiceNames(); len(got) != 5 {
		t.Errorf("ServiceNames = %v", got)
	}
}

func TestCoLocatePlannerPlacesModulesWithServices(t *testing.T) {
	c := homeCluster(t)
	cfg := apps.FitnessConfig("fit", 10, "squat")
	plan, err := core.CoLocatePlanner{}.Plan(&cfg, c)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	want := map[string]string{
		"video_streaming":      "phone",
		"pose_detection":       "desktop",
		"activity_recognition": "desktop",
		"rep_counter":          "desktop",
		"display":              "tv",
	}
	for mod, dev := range want {
		if plan.Placement[mod] != dev {
			t.Errorf("placement[%s] = %q, want %q", mod, plan.Placement[mod], dev)
		}
	}
	if plan.Credits != 2 {
		t.Errorf("credits = %d, want 2", plan.Credits)
	}
}

func TestBaselinePlannerPutsEverythingOnPhone(t *testing.T) {
	c := homeCluster(t)
	cfg := apps.FitnessConfig("fit", 10, "squat")
	plan, err := core.BaselinePlanner{}.Plan(&cfg, c)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	for mod, dev := range plan.Placement {
		if dev != "phone" {
			t.Errorf("baseline placed %s on %s", mod, dev)
		}
	}
	if plan.Credits != 1 {
		t.Errorf("baseline credits = %d, want 1 (synchronous)", plan.Credits)
	}
}

func validConfig() core.PipelineConfig {
	return core.PipelineConfig{
		Name: "test",
		Modules: []core.ModuleConfig{
			{Name: "a", Source: "function event_received(m) {}", Next: []string{"b"}},
			{Name: "b", Source: "function event_received(m) {}"},
		},
		Source: core.SourceConfig{Device: "phone", FirstModule: "a", FPS: 10, Width: 64, Height: 48},
	}
}

func TestPinnedPlanner(t *testing.T) {
	c := homeCluster(t)
	cfg := validConfig()
	cfg.Modules[0].Device = "phone"
	cfg.Modules[1].Device = "tv"
	plan, err := core.PinnedPlanner{}.Plan(&cfg, c)
	if err != nil {
		t.Fatalf("Plan: %v", err)
	}
	if plan.Placement["a"] != "phone" || plan.Placement["b"] != "tv" {
		t.Errorf("placement = %v", plan.Placement)
	}
	cfg.Modules[1].Device = ""
	if _, err := (core.PinnedPlanner{}).Plan(&cfg, c); err == nil {
		t.Error("unpinned module accepted")
	}
	cfg.Modules[1].Device = "ghost"
	if _, err := (core.PinnedPlanner{}).Plan(&cfg, c); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestLaunchRejectsUnreachableService(t *testing.T) {
	c := homeCluster(t)
	cfg := validConfig()
	cfg.Modules[0].Services = []string{"undeployed_service"}
	if _, err := c.Launch(cfg, nil); err == nil {
		t.Error("Launch accepted module using undeployed service")
	}
}

func TestFitnessPipelineEndToEnd(t *testing.T) {
	c := homeCluster(t)
	cfg := apps.FitnessConfig("fit", 20, "squat")
	p, err := c.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := p.Run(context.Background(), 3*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("result:\n%s", res)

	if res.Delivered < 5 {
		t.Errorf("delivered %d frames in 3s at 20fps, want >= 5", res.Delivered)
	}
	if res.FPS <= 0 {
		t.Error("no delivered FPS")
	}
	if res.Source.Captured == 0 {
		t.Error("source captured nothing")
	}
	// All Fig-6 stages must be measured. The activity stage only fires
	// once the 15-frame window fills, which slow (race-detector) builds
	// may not reach.
	required := []string{"load_frame", "pose", "rep_count", "display", "total"}
	if res.Delivered >= 16 {
		required = append(required, "activity")
	}
	for _, stage := range required {
		if res.Stages[stage].Count == 0 {
			t.Errorf("stage %q not measured (stages: %v)", stage, res.Stages)
		}
	}
	if res.E2E.Count == 0 {
		t.Error("no end-to-end latency samples")
	}
	// The pose stage dominates (it carries the 15ms test-scaled DNN cost).
	if res.Stages["pose"].Mean < res.Stages["rep_count"].Mean {
		t.Error("pose stage should dominate rep counting")
	}

	// No frame leaks anywhere after the run drains.
	deadline := time.Now().Add(3 * time.Second)
	for _, devName := range c.DeviceNames() {
		d, _ := c.Device(devName)
		for d.Store().Len() > 0 && time.Now().Before(deadline) {
			time.Sleep(10 * time.Millisecond)
		}
		if n := d.Store().Len(); n > 0 {
			t.Errorf("device %s leaks %d frames", devName, n)
		}
	}
}

func TestFitnessPipelineBaselinePlan(t *testing.T) {
	reg := fastRegistry(t)
	c, err := core.NewCluster(apps.BaselineClusterSpec(), reg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c.Close()

	cfg := apps.FitnessConfig("fitb", 20, "squat")
	p, err := c.Launch(cfg, core.BaselinePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := p.Run(context.Background(), 1500*time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("baseline result:\n%s", res)
	// Loose bound: race-detector builds slow the pixel path heavily.
	if res.Delivered < 2 {
		t.Errorf("baseline delivered %d frames", res.Delivered)
	}
	// All modules on the phone: pose calls were remote.
	phone, _ := c.Device("phone")
	if phone.Metrics().Histogram("service."+services.PoseDetector+".remote").Count() == 0 {
		t.Error("baseline made no remote pose calls")
	}
}

func TestVideoPipeBeatsBaseline(t *testing.T) {
	// The headline comparison at a saturating source rate, with
	// test-scaled costs: co-location must deliver more FPS than the
	// remote-API baseline.
	reg := fastRegistry(t)

	run := func(spec core.ClusterSpec, planner core.Planner, name string) float64 {
		c, err := core.NewCluster(spec, reg)
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		defer c.Close()
		p, err := c.Launch(apps.FitnessConfig(name, 60, "squat"), planner)
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		res, err := p.Run(context.Background(), 2*time.Second)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.FPS
	}

	vp := run(apps.HomeClusterSpec(), core.CoLocatePlanner{}, "vp")
	bl := run(apps.BaselineClusterSpec(), core.BaselinePlanner{}, "bl")
	t.Logf("videopipe %.2f fps vs baseline %.2f fps", vp, bl)
	if vp <= bl {
		t.Errorf("videopipe (%.2f fps) did not beat baseline (%.2f fps)", vp, bl)
	}
}

func TestTwoPipelinesShareServices(t *testing.T) {
	c := homeCluster(t)
	fit, err := c.Launch(apps.FitnessConfig("fit2", 10, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch(fitness): %v", err)
	}
	gest, err := c.Launch(apps.GestureConfig("gest2", 10, "clap"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch(gesture): %v", err)
	}

	var wg sync.WaitGroup
	var fitRes, gestRes core.RunResult
	var fitErr, gestErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		fitRes, fitErr = fit.Run(context.Background(), 3*time.Second)
	}()
	go func() {
		defer wg.Done()
		gestRes, gestErr = gest.Run(context.Background(), 3*time.Second)
	}()
	wg.Wait()
	if fitErr != nil || gestErr != nil {
		t.Fatalf("Run: %v / %v", fitErr, gestErr)
	}
	// Thresholds are loose: under the race detector the pixel work runs an
	// order of magnitude slower.
	if fitRes.Delivered < 2 || gestRes.Delivered < 2 {
		t.Errorf("shared pipelines delivered %d / %d frames", fitRes.Delivered, gestRes.Delivered)
	}
	// Both pipelines hit the same pose pool.
	pool, err := c.Pool(services.PoseDetector)
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	if pool.Calls() < fitRes.Delivered+gestRes.Delivered {
		t.Errorf("pose pool served %d calls, want >= %d", pool.Calls(), fitRes.Delivered+gestRes.Delivered)
	}
}

func TestGesturePipelineTogglesIoT(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.GestureConfig("gesttoggle", 15, "clap"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := p.Run(context.Background(), 2500*time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("gesture result:\n%s", res)
	if res.Stages["light_toggles"].Count == 0 {
		t.Error("clapping never toggled the light")
	}
}

func TestFallPipelineAlerts(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FallConfig("falltest", 15), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := p.Run(context.Background(), 3*time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	t.Logf("fall result:\n%s", res)
	if res.Stages["fall_alerts"].Count == 0 {
		t.Error("fall never alerted")
	}
}

func TestPipelineRunTwiceAndConcurrentRunRejected(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("fit3", 10, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	ctx := context.Background()
	done := make(chan struct{})
	go func() {
		defer close(done)
		p.Run(ctx, 500*time.Millisecond)
	}()
	time.Sleep(50 * time.Millisecond)
	if _, err := p.Run(ctx, time.Millisecond); err == nil {
		t.Error("concurrent Run accepted")
	}
	<-done
	if _, err := p.Run(ctx, 200*time.Millisecond); err != nil {
		t.Errorf("second Run: %v", err)
	}
	p.Close()
	if _, err := p.Run(ctx, time.Millisecond); err == nil {
		t.Error("Run on closed pipeline accepted")
	}
}

func TestLaunchParsedListing1Config(t *testing.T) {
	// The Listing-1 dialect round trip: parse, launch, run.
	c := homeCluster(t)
	text := `
	name: parsed
	modules: [
		{ name: streamer
		  source: "function event_received(m) { call_module('analyze', {frame_ref: m.frame_ref, captured_ms: m.captured_ms}); }"
		  next_module: analyze }
		{ name: analyze
		  source: "function event_received(m) { var r = call_service('pose_detector', {frame_ref: m.frame_ref}); metric('found', r.found ? 1 : 0); frame_done(); }"
		  service: ['pose_detector'] }
	]
	source : { device: phone, module: streamer, fps: 15, width: 480, height: 360, scene: wave }
	`
	cfg, err := core.ParseConfig("parsed", text, nil)
	if err != nil {
		t.Fatalf("ParseConfig: %v", err)
	}
	p, err := c.Launch(*cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := p.Run(context.Background(), time.Second)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stages["found"].Count == 0 {
		t.Error("parsed pipeline processed no frames")
	}
	if res.Stages["found"].Mean == 0 {
		t.Error("pose never found in parsed pipeline")
	}
}

func TestLinkProfilesAffectPlacedPipelines(t *testing.T) {
	// Sanity: with a WAN between phone and desktop, e2e latency grows.
	reg := fastRegistry(t)
	spec := apps.HomeClusterSpec()
	c1, err := core.NewCluster(spec, reg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c1.Close()
	spec2 := apps.HomeClusterSpec()
	c2, err := core.NewCluster(spec2, reg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer c2.Close()
	// An exaggerated satellite-like link so the difference dwarfs
	// compute noise (the race detector slows pixel work a lot).
	c2.Network().SetLink("phone", "desktop", netsim.LinkProfile{Latency: 150 * time.Millisecond})

	run := func(c *core.Cluster, name string) time.Duration {
		p, err := c.Launch(apps.FitnessConfig(name, 10, "squat"), core.CoLocatePlanner{})
		if err != nil {
			t.Fatalf("Launch: %v", err)
		}
		res, err := p.Run(context.Background(), 1200*time.Millisecond)
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
		return res.E2E.Mean
	}
	wifi := run(c1, "wifi")
	wan := run(c2, "wan")
	t.Logf("e2e wifi=%v wan=%v", wifi, wan)
	if wan <= wifi {
		t.Errorf("WAN e2e (%v) not slower than Wi-Fi (%v)", wan, wifi)
	}
}

// TestOfferInjection drives a pipeline through the public Offer path —
// the injection API open-loop load generators use instead of Run — and
// asserts the §2.3 contract holds: Offer never blocks, admission is
// bounded by the credit pool, rejected frames are dropped at the source,
// and admitted frames complete with end-to-end latency recorded from
// their Captured timestamp.
func TestOfferInjection(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("offer", 10, ""), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}

	p.PrimeCredits()
	const burst = 16
	admitted := 0
	start := time.Now()
	for i := 0; i < burst; i++ {
		f, err := frame.NewPooled(apps.FrameWidth, apps.FrameHeight)
		if err != nil {
			t.Fatalf("NewPooled: %v", err)
		}
		f.Seq = uint64(i)
		f.Captured = time.Now()
		if p.Offer(f) {
			admitted++
		}
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("16 Offers took %v; Offer must not block", elapsed)
	}
	if admitted == 0 {
		t.Fatal("no frame admitted from a primed credit pool")
	}
	if admitted == burst {
		t.Errorf("all %d burst frames admitted; expected source-side drops once credits ran out", burst)
	}

	// Solid frames carry no subject, so pose_detection finishes them
	// (frame_done on !found); completion is recorded under that module.
	deadline := time.Now().Add(5 * time.Second)
	done := func() uint64 {
		return c.Metrics().Meter("pipeline.offer.pose_detection.frames_done").Count()
	}
	for done() < uint64(admitted) && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if got := done(); got != uint64(admitted) {
		t.Fatalf("frames_done = %d, want %d (every admitted frame must complete)", got, admitted)
	}
	e2e := c.Metrics().Histogram("pipeline.offer.pose_detection.e2e")
	if got := e2e.Count(); got != uint64(admitted) {
		t.Errorf("e2e observations = %d, want %d", got, admitted)
	}
	if e2e.Max() <= 0 {
		t.Errorf("e2e latency not measured from Captured: max = %v", e2e.Max())
	}
}
