package core

import (
	"fmt"
	"sort"
)

// Plan is a deployment decision: where each module runs and how many
// frames the pipeline admits concurrently.
type Plan struct {
	// Placement maps module name to device name.
	Placement map[string]string
	// Credits is the number of frames allowed in flight at once. The
	// queue-free flow control (§2.3) admits a new frame only when a credit
	// is available; the sink's frame_done() returns one.
	Credits int
}

// Planner decides module placement for a pipeline on a cluster.
type Planner interface {
	// Name identifies the strategy in reports.
	Name() string
	// Plan computes the placement.
	Plan(cfg *PipelineConfig, c *Cluster) (Plan, error)
}

// CoLocatePlanner is VideoPipe's strategy (§5.1): each module is placed on
// the device hosting the services it calls, so call_service never crosses
// the network; modules without services inherit their predecessor's device
// (the source module lands on the camera device). Pipelined execution
// admits two frames in flight, overlapping transfer with inference.
type CoLocatePlanner struct {
	// Credits overrides the in-flight frame allowance; <= 0 selects 2.
	Credits int
}

var _ Planner = CoLocatePlanner{}

// Name identifies the strategy.
func (CoLocatePlanner) Name() string { return "videopipe" }

// Plan places each module next to its services.
func (p CoLocatePlanner) Plan(cfg *PipelineConfig, c *Cluster) (Plan, error) {
	order, err := cfg.TopoOrder()
	if err != nil {
		return Plan{}, err
	}
	placement := make(map[string]string, len(cfg.Modules))

	for _, name := range order {
		m, _ := cfg.Module(name)
		dev, err := p.placeModule(cfg, c, m, placement)
		if err != nil {
			return Plan{}, err
		}
		placement[name] = dev
	}

	credits := p.Credits
	if credits <= 0 {
		credits = 2
	}
	return Plan{Placement: placement, Credits: credits}, nil
}

func (p CoLocatePlanner) placeModule(cfg *PipelineConfig, c *Cluster, m *ModuleConfig, placed map[string]string) (string, error) {
	// 1. Explicit pin wins.
	if m.Device != "" {
		if _, ok := c.Device(m.Device); !ok {
			return "", fmt.Errorf("core: module %q pinned to unknown device %q", m.Name, m.Device)
		}
		return m.Device, nil
	}
	// 2. Co-locate with the module's services: choose the device hosting
	// the most of them (ties broken by name for determinism).
	if len(m.Services) > 0 {
		counts := make(map[string]int)
		for _, svc := range m.Services {
			if host, ok := c.ServiceHost(svc); ok {
				counts[host]++
			}
		}
		if len(counts) > 0 {
			hosts := make([]string, 0, len(counts))
			for h := range counts {
				hosts = append(hosts, h)
			}
			sort.Slice(hosts, func(i, j int) bool {
				if counts[hosts[i]] != counts[hosts[j]] {
					return counts[hosts[i]] > counts[hosts[j]]
				}
				return hosts[i] < hosts[j]
			})
			return hosts[0], nil
		}
	}
	// 3. The source's first module defaults to the camera device.
	if m.Name == cfg.Source.FirstModule && cfg.Source.Device != "" {
		if _, ok := c.Device(cfg.Source.Device); !ok {
			return "", fmt.Errorf("core: source device %q unknown", cfg.Source.Device)
		}
		return cfg.Source.Device, nil
	}
	// 4. Inherit from an already-placed predecessor.
	for _, other := range cfg.Modules {
		for _, next := range other.Next {
			if next != m.Name {
				continue
			}
			if dev, ok := placed[other.Name]; ok {
				return dev, nil
			}
		}
	}
	// 5. Fall back to the camera device.
	if cfg.Source.Device != "" {
		return cfg.Source.Device, nil
	}
	return "", fmt.Errorf("core: cannot place module %q", m.Name)
}

// BaselinePlanner reproduces the EdgeEye-inspired architecture of the
// paper's Fig. 5: every module runs on one device (the camera device by
// default) and each call_service is a remote API call, synchronous
// request-per-frame — one frame in flight at a time.
type BaselinePlanner struct {
	// Device hosts all modules; empty selects the source device.
	Device string
	// Credits overrides the in-flight allowance; <= 0 selects 1
	// (synchronous request/response, as in EdgeEye applications).
	Credits int
}

var _ Planner = BaselinePlanner{}

// Name identifies the strategy.
func (BaselinePlanner) Name() string { return "baseline" }

// Plan puts every module on one device.
func (p BaselinePlanner) Plan(cfg *PipelineConfig, c *Cluster) (Plan, error) {
	dev := p.Device
	if dev == "" {
		dev = cfg.Source.Device
	}
	if _, ok := c.Device(dev); !ok {
		return Plan{}, fmt.Errorf("core: baseline device %q unknown", dev)
	}
	placement := make(map[string]string, len(cfg.Modules))
	for _, m := range cfg.Modules {
		placement[m.Name] = dev
	}
	credits := p.Credits
	if credits <= 0 {
		credits = 1
	}
	return Plan{Placement: placement, Credits: credits}, nil
}

// PinnedPlanner places modules exactly as configured (each ModuleConfig
// must carry a Device), for experiments that need manual control.
type PinnedPlanner struct {
	// Credits is the in-flight allowance; <= 0 selects 2.
	Credits int
}

var _ Planner = PinnedPlanner{}

// Name identifies the strategy.
func (PinnedPlanner) Name() string { return "pinned" }

// Plan follows the per-module Device pins.
func (p PinnedPlanner) Plan(cfg *PipelineConfig, c *Cluster) (Plan, error) {
	placement := make(map[string]string, len(cfg.Modules))
	for _, m := range cfg.Modules {
		if m.Device == "" {
			return Plan{}, fmt.Errorf("core: pinned plan: module %q has no device", m.Name)
		}
		if _, ok := c.Device(m.Device); !ok {
			return Plan{}, fmt.Errorf("core: pinned plan: module %q pinned to unknown device %q", m.Name, m.Device)
		}
		placement[m.Name] = m.Device
	}
	credits := p.Credits
	if credits <= 0 {
		credits = 2
	}
	return Plan{Placement: placement, Credits: credits}, nil
}
