package core_test

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/device"
	"videopipe/internal/services"
)

// TestPipelineSurvivesNetworkPartition cuts the phone↔desktop Wi-Fi link
// mid-run and heals it: delivery stops during the outage (frames drop at
// the source, per the queue-free design) and resumes after — the wire
// layer's reconnect machinery recovers without operator action.
func TestPipelineSurvivesNetworkPartition(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("partfit", 15, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}

	reg := c.Metrics()
	delivered := func() uint64 {
		return reg.Meter("pipeline.partfit.display.frames_done").Count()
	}

	done := make(chan core.RunResult, 1)
	go func() {
		res, err := p.Run(context.Background(), 4*time.Second)
		if err != nil {
			t.Errorf("Run: %v", err)
		}
		done <- res
	}()

	// Phase 1: healthy.
	waitCond(t, 2*time.Second, func() bool { return delivered() >= 5 })

	// Phase 2: partition. Delivery stalls.
	c.Network().Partition("phone", "desktop")
	atCut := delivered()
	time.Sleep(800 * time.Millisecond)
	during := delivered()
	if during > atCut+2 {
		t.Errorf("delivered %d frames across a partition (had %d at cut)", during, atCut)
	}

	// Phase 3: heal. Delivery resumes.
	c.Network().Heal("phone", "desktop")
	waitCond(t, 3*time.Second, func() bool { return delivered() >= during+3 })

	res := <-done
	if res.Source.Dropped == 0 {
		t.Error("no frames dropped at the source during the outage")
	}
}

// TestPipelineSurvivesFlakyService runs the fitness chain against a pose
// service that fails a third of its calls: failed frames are abandoned
// (module error path), credits recycle via the runtime, and throughput
// continues.
func TestPipelineSurvivesFlakyService(t *testing.T) {
	reg := services.NewRegistry()
	std := fastRegistry(t)
	var calls atomic.Int64
	for _, name := range []string{services.PoseDetector, services.ActivityClassifier, services.RepCounter, services.Display, services.FallDetector} {
		spec, err := std.Lookup(name)
		if err != nil {
			t.Fatalf("Lookup(%s): %v", name, err)
		}
		if name == services.PoseDetector {
			inner := spec.Handler
			spec.Handler = func(ctx context.Context, req services.Request) (services.Response, error) {
				if calls.Add(1)%3 == 0 {
					return services.Response{}, errors.New("injected inference failure")
				}
				return inner(ctx, req)
			}
		}
		if err := reg.Register(spec); err != nil {
			t.Fatalf("Register(%s): %v", name, err)
		}
	}

	cluster, err := core.NewCluster(apps.HomeClusterSpec(), reg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	// The pose module catches service failures and abandons the frame.
	cfg := apps.FitnessConfig("flaky", 15, "squat")
	for i := range cfg.Modules {
		if cfg.Modules[i].Name == "pose_detection" {
			cfg.Modules[i].Source = `
				function event_received(message) {
					var r = null;
					try {
						r = call_service("pose_detector", {frame_ref: message.frame_ref});
					} catch (e) {
						metric("pose_failures", 1);
						frame_done();
						return;
					}
					if (!r.found) { frame_done(); return; }
					call_module("activity_recognition", {
						frame_ref: message.frame_ref,
						pose: r.pose,
						captured_ms: message.captured_ms,
						seq: message.seq
					});
				}
			`
		}
	}

	p, err := cluster.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	res, err := p.Run(context.Background(), 2500*time.Millisecond)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Stages["pose_failures"].Count == 0 {
		t.Error("no injected failures observed")
	}
	if res.Delivered < 5 {
		t.Errorf("pipeline collapsed under flaky service: delivered %d", res.Delivered)
	}
	// Frames from failed calls must not leak.
	for _, name := range cluster.DeviceNames() {
		d, _ := cluster.Device(name)
		waitCond(t, 3*time.Second, func() bool { return d.Store().Len() == 0 })
	}
}

// TestPipelineSurvivesServiceErrorWithoutCatch exercises the default error
// path: the module does NOT catch the failure, so event_received aborts;
// the runtime still releases the frame and counts the error — the pipeline
// loses credits but the device stays healthy.
func TestPipelineErrorPathReleasesFrames(t *testing.T) {
	reg := services.NewRegistry()
	err := reg.Register(services.Spec{
		Name: "alwaysfails",
		Handler: func(context.Context, services.Request) (services.Response, error) {
			return services.Response{}, errors.New("permanent failure")
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	cluster, err := core.NewCluster(core.ClusterSpec{
		Devices: []device.Config{
			{Name: "phone", Class: device.Phone},
			{Name: "desktop", Class: device.Desktop},
		},
		Services: []core.ServicePlacement{{Service: "alwaysfails", Device: "desktop"}},
	}, reg)
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	defer cluster.Close()

	cfg := core.PipelineConfig{
		Name: "doomed",
		Modules: []core.ModuleConfig{{
			Name:     "m",
			Source:   `function event_received(msg) { call_service("alwaysfails", {frame_ref: msg.frame_ref}); frame_done(); }`,
			Services: []string{"alwaysfails"},
		}},
		Source: core.SourceConfig{Device: "phone", FirstModule: "m", FPS: 20, Width: 64, Height: 48},
	}
	p, err := cluster.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if _, err := p.Run(context.Background(), time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}
	// Uncaught throws mean frame_done never runs: errors counted, frames
	// released regardless.
	if got := cluster.Metrics().Meter("module.doomed.m.errors").Count(); got == 0 {
		t.Error("no module errors recorded")
	}
	desktop, _ := cluster.Device("desktop")
	waitCond(t, 3*time.Second, func() bool { return desktop.Store().Len() == 0 })
}

// waitCond polls cond until it holds or the deadline passes.
func waitCond(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("condition not met within %v", timeout)
}

// TestPipelineUpdateModuleLive hot-swaps the display module while the
// pipeline runs: frames keep flowing and the new code takes over.
func TestPipelineUpdateModuleLive(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("hotfit", 15, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	if err := p.UpdateModule("ghost", "function event_received(m) {}"); err == nil {
		t.Error("update of unknown module accepted")
	}

	done := make(chan core.RunResult, 1)
	go func() {
		res, err := p.Run(context.Background(), 3*time.Second)
		if err != nil {
			t.Errorf("Run: %v", err)
		}
		done <- res
	}()

	reg := c.Metrics()
	waitCond(t, 2*time.Second, func() bool {
		return reg.Meter("pipeline.hotfit.display.frames_done").Count() >= 3
	})

	// Swap the display module for one that tags its frames differently.
	v2 := `
		function event_received(message) {
			metric("v2_total", now_ms() - message.captured_ms);
			frame_done();
		}
	`
	if err := p.UpdateModule("display", v2); err != nil {
		t.Fatalf("UpdateModule: %v", err)
	}
	waitCond(t, 2*time.Second, func() bool {
		return reg.Histogram("stage.hotfit.v2_total").Count() >= 3
	})
	res := <-done
	// The waits above already proved >=3 frames on each side of the swap;
	// the bar here only confirms the run total is consistent with that,
	// without assuming non-race frame rates.
	if res.Delivered < 6 {
		t.Errorf("delivered %d frames across a live update", res.Delivered)
	}
}
