package core

import (
	"fmt"
	"sort"
	"time"
)

// LatencyAwarePlanner implements the paper's "scheduling" future work
// (§7): instead of the fixed co-location rule, it places each module by
// minimizing an explicit per-frame latency estimate built from the
// cluster's link profiles — inbound frame-transfer cost from predecessors
// plus remote-service-call penalties. On the paper's topology it derives
// the same placement as CoLocatePlanner; on clusters where a module's
// services are split across devices, or where links are asymmetric, it
// weighs the trade-off instead of guessing.
type LatencyAwarePlanner struct {
	// Credits is the in-flight frame allowance; <= 0 selects 2.
	Credits int
	// EncodeCost estimates one codec pass for a frame crossing devices;
	// zero selects 4 ms (JPEG at the applications' 480x360 geometry).
	EncodeCost time.Duration
}

var _ Planner = LatencyAwarePlanner{}

// Name identifies the strategy.
func (LatencyAwarePlanner) Name() string { return "latency-aware" }

// Plan greedily assigns each module (in topological order) to the device
// with the lowest estimated per-frame cost.
func (p LatencyAwarePlanner) Plan(cfg *PipelineConfig, c *Cluster) (Plan, error) {
	order, err := cfg.TopoOrder()
	if err != nil {
		return Plan{}, err
	}

	frameBytes := estimateFrameBytes(cfg.Source.Width, cfg.Source.Height)
	encode := p.EncodeCost
	if encode <= 0 {
		encode = 4 * time.Millisecond
	}

	devices := c.DeviceNames()
	sort.Strings(devices)
	placement := make(map[string]string, len(cfg.Modules))

	// preds maps module -> its predecessors.
	preds := make(map[string][]string)
	for _, m := range cfg.Modules {
		for _, next := range m.Next {
			preds[next] = append(preds[next], m.Name)
		}
	}

	for _, name := range order {
		m, _ := cfg.Module(name)
		if m.Device != "" {
			if _, ok := c.Device(m.Device); !ok {
				return Plan{}, fmt.Errorf("core: module %q pinned to unknown device %q", m.Name, m.Device)
			}
			placement[name] = m.Device
			continue
		}

		best := ""
		bestCost := time.Duration(1<<62 - 1)
		for _, dev := range devices {
			cost := p.moduleCost(cfg, c, m, dev, placement, preds[name], frameBytes, encode)
			if cost < bestCost {
				best, bestCost = dev, cost
			}
		}
		if best == "" {
			return Plan{}, fmt.Errorf("core: no placement candidate for module %q", name)
		}
		placement[name] = best
	}

	credits := p.Credits
	if credits <= 0 {
		credits = 2
	}
	return Plan{Placement: placement, Credits: credits}, nil
}

// moduleCost estimates the per-frame latency this module adds when placed
// on dev.
func (p LatencyAwarePlanner) moduleCost(cfg *PipelineConfig, c *Cluster, m *ModuleConfig, dev string, placed map[string]string, preds []string, frameBytes int, encode time.Duration) time.Duration {
	var cost time.Duration

	// Inbound frame transfers from already-placed predecessors (or from
	// the camera for the first module).
	sources := preds
	if m.Name == cfg.Source.FirstModule {
		sources = append([]string(nil), preds...)
		if cfg.Source.Device != "" {
			cost += p.transferCost(c, cfg.Source.Device, dev, frameBytes, encode)
		}
	}
	for _, pred := range sources {
		from, ok := placed[pred]
		if !ok {
			continue
		}
		cost += p.transferCost(c, from, dev, frameBytes, encode)
	}

	// Remote service penalties: a call to a service hosted elsewhere pays
	// a round trip plus the frame upload.
	for _, svc := range m.Services {
		host, ok := c.ServiceHost(svc)
		if !ok || host == dev {
			continue
		}
		profile := c.Network().Profile(dev, host)
		cost += profile.RTT() + encode + bandwidthDelay(profile.Bandwidth, frameBytes)
	}
	return cost
}

// transferCost estimates moving one frame from device a to device b.
func (p LatencyAwarePlanner) transferCost(c *Cluster, a, b string, frameBytes int, encode time.Duration) time.Duration {
	if a == b {
		return 0
	}
	profile := c.Network().Profile(a, b)
	return encode + profile.Latency + bandwidthDelay(profile.Bandwidth, frameBytes)
}

func bandwidthDelay(bandwidth int64, bytes int) time.Duration {
	if bandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / float64(bandwidth) * float64(time.Second))
}

// estimateFrameBytes approximates the JPEG size of a frame at the
// applications' scene complexity.
func estimateFrameBytes(width, height int) int {
	if width <= 0 || height <= 0 {
		return 40 << 10
	}
	return width * height / 4
}
