package core

import (
	"fmt"
	"sort"
	"strings"

	"videopipe/internal/script"
)

// pipetype edge-contract checking (layer 2 of the shape analysis; the
// inference itself lives in internal/script/shapes.go). For every DAG edge
// of a pipeline, the payload shapes a producer emits are checked against
// the fields its consumer's event_received reads:
//
//	PV015 (error)   — a field read downstream is never produced on any
//	                  inbound emit path
//	PV016 (error)   — a field's produced kinds are disjoint from the kinds
//	                  its uses require
//	PV017 (warning) — a produced field is never consumed by the edge's
//	                  handler
//
// The checks run wherever pipevet runs — Build, Launch, -lint — and again
// on hot-swap (Pipeline.UpdateModule), so a live swap cannot silently
// break an edge contract.
//
// Soundness stance: PV015/PV016 are errors, so they must never reject a
// working pipeline. They are skipped whenever the analysis cannot prove
// the edge's traffic — any inbound producer with zero call_module sites
// (no events ever arrive on that edge, e.g. a sabotage swap), any inbound
// emission that degraded to top/open (PV018 already warned at the
// producer), or a consumer whose reads could not be attributed.
const (
	CodeMissingField = "PV015" // field read downstream but never produced upstream
	CodeKindMismatch = "PV016" // produced kinds disjoint from required kinds
	CodeDeadField    = "PV017" // produced field never consumed on the edge
)

// sourceInjectedShape is what Pipeline.Offer hands the entry module: the
// runtime stamps captured_ms/seq and the frame reference travels as
// frame_ref. The shape is open because device-level injection may carry
// arbitrary extra body fields, so unknown entry reads never error.
func sourceInjectedShape() *script.Shape {
	return &script.Shape{
		Kinds: script.KindObject,
		Open:  true,
		Fields: map[string]*script.Shape{
			"captured_ms": {Kinds: script.KindNumber},
			"seq":         {Kinds: script.KindNumber},
			"frame_ref":   {Kinds: script.KindNumber},
		},
	}
}

// shapeCheckPipeline cross-checks produced and consumed shapes along every
// DAG edge. reports must hold one script report per module (as produced by
// script.Analyze or, for the hot-swap gate, script.AnalyzeShapes).
func shapeCheckPipeline(cfg *PipelineConfig, reports map[string]script.ShapeReport) []Diagnostic {
	byName := make(map[string]*ModuleConfig, len(cfg.Modules))
	for i := range cfg.Modules {
		byName[cfg.Modules[i].Name] = &cfg.Modules[i]
	}

	// producers[c] lists the modules declaring an edge into c, in config
	// order for deterministic output.
	producers := make(map[string][]string)
	for _, m := range cfg.Modules {
		seen := make(map[string]bool)
		for _, next := range m.Next {
			if _, ok := byName[next]; !ok || seen[next] {
				continue // phantom edge: PV103/Validate territory
			}
			seen[next] = true
			producers[next] = append(producers[next], m.Name)
		}
	}

	var out []Diagnostic
	add := func(module string, pos script.Position, code string, sev script.Severity, msg string) {
		out = append(out, Diagnostic{
			Pipeline: cfg.Name, Module: module,
			Pos: pos, Code: code, Severity: sev, Message: msg,
		})
	}

	// Consumer-side checks: PV015 / PV016.
	for _, m := range cfg.Modules {
		consumed := reports[m.Name].Consumed
		if !consumed.HasHandler || len(consumed.Fields) == 0 {
			continue
		}

		var inbound *script.Shape
		silent := false
		if m.Name == cfg.Source.FirstModule {
			inbound = inbound.Join(sourceInjectedShape())
		}
		for _, p := range producers[m.Name] {
			prep := reports[p]
			produced := prep.Emits[m.Name].Join(prep.DynamicEmit)
			if produced == nil {
				// The producer never emits on this edge: no events will
				// ever arrive through it, so nothing can be proven about
				// the consumer's traffic. This keeps sabotage swaps
				// (modules with zero call_module sites) deployable.
				silent = true
				continue
			}
			inbound = inbound.Join(produced)
		}
		if silent || inbound == nil {
			continue
		}
		if inbound.IsTop() || inbound.Kinds&script.KindObject == 0 {
			continue
		}

		fields := make([]string, 0, len(consumed.Fields))
		for f := range consumed.Fields {
			fields = append(fields, f)
		}
		sort.Strings(fields)
		for _, f := range fields {
			use := consumed.Fields[f]
			produced, present := inbound.Fields[f]
			if !present {
				if inbound.Open || f == "frame_ref" {
					// Open field sets say nothing about absence, and
					// frame_ref is injected by the runtime whenever a
					// frame travels.
					continue
				}
				add(m.Name, use.Pos, CodeMissingField, script.SeverityError,
					fmt.Sprintf("field %q is read by event_received but never produced on any inbound edge (from %s)",
						f, strings.Join(producers[m.Name], ", ")))
				continue
			}
			if use.Kinds != 0 && produced != nil && !produced.IsTop() &&
				produced.Kinds != 0 && produced.Kinds&use.Kinds == 0 {
				add(m.Name, use.Pos, CodeKindMismatch, script.SeverityError,
					fmt.Sprintf("field %q arrives as %s but its uses require %s",
						f, produced.Kinds, use.Kinds))
			}
		}
	}

	// Producer-side checks: PV017. Only literal-target emissions with
	// closed shapes participate; a dynamic or open producer may feed
	// consumers the analysis cannot see.
	for _, m := range cfg.Modules {
		rep := reports[m.Name]
		seen := make(map[string]bool)
		for _, target := range m.Next {
			if seen[target] {
				continue
			}
			seen[target] = true
			em := rep.Emits[target]
			if em == nil || em.IsTop() || em.Open {
				continue
			}
			consumer, ok := reports[target]
			if !ok || !consumer.Consumed.HasHandler || consumer.Consumed.Dynamic {
				continue
			}
			fields := make([]string, 0, len(em.Fields))
			for f := range em.Fields {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				if f == "frame_ref" {
					continue // consumed by the runtime's frame transfer
				}
				if _, reads := consumer.Consumed.Fields[f]; reads {
					continue
				}
				pos := emitPosFor(rep, target, f)
				add(m.Name, pos, CodeDeadField, script.SeverityWarning,
					fmt.Sprintf("field %q emitted to %q is never read by its handler", f, target))
			}
		}
	}
	return out
}

// emitPosFor finds the first emit site to target whose payload carries the
// field, for positioning PV017 at the responsible call.
func emitPosFor(rep script.ShapeReport, target, field string) script.Position {
	for _, s := range rep.EmitSites {
		if s.Target != target || s.Payload == nil {
			continue
		}
		if _, ok := s.Payload.Fields[field]; ok {
			return s.Pos
		}
	}
	for _, s := range rep.EmitSites {
		if s.Target == target {
			return s.Pos
		}
	}
	return script.Position{}
}

// ShapeReports runs the pipetype shape inference over every module's
// source and returns the per-module reports, keyed by module name. A
// module that does not parse gets an empty report; deploy-time analysis
// rejects it separately.
func (c *PipelineConfig) ShapeReports() map[string]script.ShapeReport {
	out := make(map[string]script.ShapeReport, len(c.Modules))
	for _, m := range c.Modules {
		out[m.Name] = script.AnalyzeShapes(m.Source)
	}
	return out
}

// checkShapeUpdate re-runs the edge-contract checks against a config copy
// in which module name carries the proposed new source, and returns an
// error if the swap would introduce an error-severity PV015/PV016
// finding. Warnings (PV017/PV018) never block a swap.
func checkShapeUpdate(cfg PipelineConfig, name, source string) error {
	mods := make([]ModuleConfig, len(cfg.Modules))
	copy(mods, cfg.Modules)
	for i := range mods {
		if mods[i].Name == name {
			mods[i].Source = source
		}
	}
	cfg.Modules = mods
	diags := shapeCheckPipeline(&cfg, cfg.ShapeReports())
	var errs []Diagnostic
	for _, d := range diags {
		if d.Severity == script.SeverityError {
			errs = append(errs, d)
		}
	}
	if len(errs) == 0 {
		return nil
	}
	return &AnalysisError{Pipeline: cfg.Name, Diagnostics: errs}
}
