package core_test

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"videopipe/internal/core"
	"videopipe/internal/script"
)

// shapePair builds a minimal streamer -> sink pipeline from the two module
// sources, for exercising the pipetype edge-contract checks.
func shapePair(streamerSource, sinkSource string) core.PipelineConfig {
	return core.PipelineConfig{
		Name: "shapetest",
		Modules: []core.ModuleConfig{
			{Name: "streamer", Source: streamerSource, Next: []string{"sink"}},
			{Name: "sink", Source: sinkSource},
		},
		Source: core.SourceConfig{Device: "phone", FirstModule: "streamer", FPS: 15, Width: 64, Height: 48},
	}
}

func TestShapeCheckEdgeContracts(t *testing.T) {
	t.Run("misspelled payload field is a positioned PV015 error", func(t *testing.T) {
		// The producer misspells "pose" as "pse"; the consumer's read of
		// m.pose can never be satisfied.
		cfg := shapePair(
			`function event_received(m) { call_module("sink", {pse: m.seq, frame_ref: m.frame_ref}); }`,
			`function event_received(m) { log(m.pose); frame_done(); }`,
		)
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeMissingField)
		if !ok {
			t.Fatal("no PV015 diagnostic")
		}
		if d.Severity != script.SeverityError || d.Module != "sink" {
			t.Errorf("bad diagnostic: %+v", d)
		}
		if d.Pos.Line != 1 || d.Pos.Col == 0 {
			t.Errorf("missing position: %+v", d.Pos)
		}
		if !strings.Contains(d.Message, `"pose"`) {
			t.Errorf("message does not name the field: %s", d.Message)
		}
	})

	t.Run("kind mismatch is a PV016 error", func(t *testing.T) {
		cfg := shapePair(
			`function event_received(m) { call_module("sink", {count: "high", frame_ref: m.frame_ref}); }`,
			`function event_received(m) { metric("twice", m.count * 2); frame_done(); }`,
		)
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeKindMismatch)
		if !ok {
			t.Fatal("no PV016 diagnostic")
		}
		if d.Severity != script.SeverityError || d.Module != "sink" {
			t.Errorf("bad diagnostic: %+v", d)
		}
	})

	t.Run("dead field is a PV017 warning at the emit site", func(t *testing.T) {
		cfg := shapePair(
			`function event_received(m) { call_module("sink", {seq: m.seq, extra: 1, frame_ref: m.frame_ref}); }`,
			`function event_received(m) { metric("seq", m.seq); frame_done(); }`,
		)
		d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeDeadField)
		if !ok {
			t.Fatal("no PV017 diagnostic")
		}
		if d.Severity != script.SeverityWarning || d.Module != "streamer" {
			t.Errorf("bad diagnostic: %+v", d)
		}
		if d.Pos.Line == 0 {
			t.Errorf("PV017 lost the emit position: %+v", d)
		}
		if !strings.Contains(d.Message, `"extra"`) {
			t.Errorf("message does not name the field: %s", d.Message)
		}
	})

	t.Run("entry module reads of runtime-injected fields are clean", func(t *testing.T) {
		cfg := shapePair(
			`function event_received(m) { metric("lag", now_ms() - m.captured_ms); call_module("sink", {seq: m.seq, frame_ref: m.frame_ref}); }`,
			`function event_received(m) { metric("seq", m.seq); frame_done(); }`,
		)
		for _, d := range core.AnalyzePipeline(&cfg) {
			if d.Severity == script.SeverityError {
				t.Errorf("unexpected error: %s", d)
			}
		}
	})

	t.Run("silent producer suppresses consumer-side errors", func(t *testing.T) {
		// A producer with zero call_module sites (a sabotage swap, say)
		// means no events ever reach the sink; its reads must not error.
		cfg := shapePair(
			`function event_received(m) { frame_done(); }`,
			`function event_received(m) { log(m.anything_at_all); frame_done(); }`,
		)
		if d, ok := findDiag(core.AnalyzePipeline(&cfg), core.CodeMissingField); ok {
			t.Errorf("PV015 on a silent edge: %+v", d)
		}
	})

	t.Run("dynamic payload degrades to PV018, never PV015", func(t *testing.T) {
		cfg := shapePair(
			`function event_received(m) { var p = {frame_ref: m.frame_ref}; p[m.key] = 1; call_module("sink", p); }`,
			`function event_received(m) { log(m.whatever); frame_done(); }`,
		)
		diags := core.AnalyzePipeline(&cfg)
		if d, ok := findDiag(diags, core.CodeMissingField); ok {
			t.Errorf("PV015 on a top-degraded edge: %+v", d)
		}
		if _, ok := findDiag(diags, script.CodeShapeUnknown); !ok {
			t.Error("no PV018 warning for the dynamically built payload")
		}
	})
}

// TestLaunchRejectsShapeErrors: the edge-contract checks gate deployment
// like every other pipevet error.
func TestLaunchRejectsShapeErrors(t *testing.T) {
	c := homeCluster(t)
	cfg := shapePair(
		`function event_received(m) { call_module("sink", {valu: m.seq, frame_ref: m.frame_ref}); }`,
		`function event_received(m) { metric("v", m.value); frame_done(); }`,
	)
	_, err := c.Launch(cfg, core.CoLocatePlanner{})
	if err == nil {
		t.Fatal("Launch accepted a pipeline with a broken edge contract")
	}
	var ae *core.AnalysisError
	if !errors.As(err, &ae) {
		t.Fatalf("error type %T, want *core.AnalysisError: %v", err, err)
	}
	if !strings.Contains(err.Error(), "PV015") {
		t.Errorf("error text lacks PV015: %v", err)
	}
}

// TestUpdateModuleShapeGate: hot swaps re-run the edge-contract checks —
// a swap that breaks a downstream read is rejected, while swaps that keep
// the contract (including zero-emission sabotage sources, which the
// governance tests rely on) go through.
func TestUpdateModuleShapeGate(t *testing.T) {
	c := homeCluster(t)
	cfg := shapePair(
		`function event_received(m) { call_module("sink", {value: m.seq, frame_ref: m.frame_ref}); }`,
		`function event_received(m) { metric("v", m.value); frame_done(); }`,
	)
	p, err := c.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer p.Close()

	// Dropping the field the sink reads must be rejected with PV015.
	err = p.UpdateModule("streamer",
		`function event_received(m) { call_module("sink", {other: m.seq, frame_ref: m.frame_ref}); }`)
	if err == nil {
		t.Fatal("UpdateModule accepted a swap that breaks the sink's contract")
	}
	if !strings.Contains(err.Error(), "PV015") {
		t.Errorf("rejection lacks PV015: %v", err)
	}

	// A compatible replacement passes. (Each pipeline takes one swap here:
	// a module holds at most one pending update until events drain it.)
	if err := p.UpdateModule("streamer",
		`function event_received(m) { call_module("sink", {value: m.seq + 1, frame_ref: m.frame_ref}); }`); err != nil {
		t.Fatalf("compatible swap rejected: %v", err)
	}

	// A zero-emission source (chaos sabotage) silences the edge and passes.
	cfg2 := cfg
	cfg2.Name = "shapetest2"
	p2, err := c.Launch(cfg2, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer p2.Close()
	if err := p2.UpdateModule("streamer",
		`function event_received(m) { frame_done(); }`); err != nil {
		t.Fatalf("silent swap rejected: %v", err)
	}
}

// TestRecordShapesOnLivePipeline: the debug-mode recorder observes real
// call_module traffic per edge, and the static inference contains every
// observed payload shape.
func TestRecordShapesOnLivePipeline(t *testing.T) {
	c := homeCluster(t)
	cfg := shapePair(
		`function event_received(m) { call_module("sink", {value: m.seq, frame_ref: m.frame_ref}); }`,
		`function event_received(m) { metric("v", m.value); frame_done(); }`,
	)
	p, err := c.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	defer p.Close()

	rec := p.RecordShapes()
	defer p.StopRecordingShapes()
	if _, err := p.Run(context.Background(), time.Second); err != nil {
		t.Fatalf("Run: %v", err)
	}

	edges := rec.Edges()
	if len(edges) == 0 {
		t.Fatal("recorder observed no traffic")
	}
	observed := rec.Shape("streamer->sink")
	if observed == nil {
		t.Fatalf("no observation on streamer->sink; edges = %v", edges)
	}
	rep := script.AnalyzeShapes(cfg.Modules[0].Source)
	inferred := rep.Emits["sink"].Join(rep.DynamicEmit)
	if inferred == nil || !inferred.Contains(observed) {
		t.Errorf("inferred %s does not contain observed %s", inferred, observed)
	}
}
