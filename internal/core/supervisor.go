package core

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"videopipe/internal/wire"
)

// SupervisorConfig tunes the self-healing control loop. The defaults are
// sized for the simulated testbed: probes every 150 ms with a 100 ms
// deadline, and a device is declared dead only after nine consecutive
// misses (~1.35 s) — long enough that a rebooting host (which resumes)
// is never mistaken for a dead one (which never does).
type SupervisorConfig struct {
	// Interval is the control-loop period; zero selects 150 ms.
	Interval time.Duration
	// ProbeTimeout bounds one liveness probe; zero selects 100 ms.
	ProbeTimeout time.Duration
	// DeadAfter is how many consecutive missed probes declare a device
	// dead; zero selects 9.
	DeadAfter int
	// RestartBackoff is the base delay between service-restart attempts,
	// growing exponentially per attempt; zero selects 250 ms.
	RestartBackoff time.Duration
	// RestartBackoffMax caps the exponential backoff; zero selects 2 s.
	RestartBackoffMax time.Duration
	// MaxRestarts is the per-service restart budget; the budget refills
	// after HealthyAfter of sustained health. Zero selects 5.
	MaxRestarts int
	// ErrorBurst is the per-step service-error delta that counts toward a
	// restart trigger (two consecutive bursty steps trip it); zero
	// selects 10.
	ErrorBurst uint64
	// HealthyAfter is how long a service must stay healthy before its
	// restart budget and backoff reset; zero selects 5 s.
	HealthyAfter time.Duration
	// Seed drives backoff jitter. Jitter only shifts timing — never which
	// recovery actions run or their order — so journals stay
	// seed-deterministic.
	Seed int64
}

func (c SupervisorConfig) withDefaults() SupervisorConfig {
	if c.Interval <= 0 {
		c.Interval = 150 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 100 * time.Millisecond
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 9
	}
	if c.RestartBackoff <= 0 {
		c.RestartBackoff = 250 * time.Millisecond
	}
	if c.RestartBackoffMax <= 0 {
		c.RestartBackoffMax = 2 * time.Second
	}
	if c.MaxRestarts <= 0 {
		c.MaxRestarts = 5
	}
	if c.ErrorBurst <= 0 {
		c.ErrorBurst = 10
	}
	if c.HealthyAfter <= 0 {
		c.HealthyAfter = 5 * time.Second
	}
	return c
}

// svcState is the supervisor's per-service bookkeeping.
type svcState struct {
	// desired is the pool size observed while last healthy — the size a
	// restart restores.
	desired int
	// lastErr is the service error-meter reading at the previous step.
	lastErr uint64
	// burstSteps counts consecutive steps whose error delta exceeded the
	// burst threshold.
	burstSteps int
	// restarts spent from the budget since the last healthy stretch.
	restarts int
	// nextAttempt gates restart attempts (exponential backoff + jitter).
	nextAttempt time.Time
	// healthySince tracks sustained health for budget refill.
	healthySince time.Time
}

// modState is the supervisor's per-module restart bookkeeping (sandbox
// kills), keyed by "pipeline.module".
type modState struct {
	// restarts spent from the budget since the last healthy stretch.
	restarts int
	// nextAttempt gates restart attempts (exponential backoff + jitter).
	nextAttempt time.Time
	// healthySince tracks sustained health for budget refill.
	healthySince time.Time
}

// Supervisor is the per-cluster self-healing control loop (the paper's
// §7 monitoring component grown teeth): it samples the cluster monitor,
// pings every device's health endpoint, and turns what it sees into
// recovery actions — service restarts, failover re-planning and live
// module migration (heal.go).
type Supervisor struct {
	cluster *Cluster
	cfg     SupervisorConfig
	mon     *Monitor
	rng     *rand.Rand
	// probes run from a dedicated network vantage point: device-pair
	// partitions (a crashed host dropping off the LAN) must not blind the
	// supervisor itself.
	probeNet wire.Transport

	mu      sync.Mutex
	callers map[string]*wire.Caller
	missed  map[string]int
	dead    map[string]bool
	svc     map[string]*svcState
	mod     map[string]*modState
	journal []Action
	// tuner, when attached, steps inside the supervisor loop (tuner.go).
	tuner *Tuner
}

// NewSupervisor creates a supervisor for the cluster. It does nothing
// until Run.
func NewSupervisor(c *Cluster, cfg SupervisorConfig) *Supervisor {
	cfg = cfg.withDefaults()
	mon := NewMonitor(c)
	mon.Interval = cfg.Interval
	return &Supervisor{
		cluster:  c,
		cfg:      cfg,
		mon:      mon,
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		probeNet: c.Network().Host("@supervisor"),
		callers:  make(map[string]*wire.Caller),
		missed:   make(map[string]int),
		dead:     make(map[string]bool),
		svc:      make(map[string]*svcState),
		mod:      make(map[string]*modState),
	}
}

// Monitor exposes the supervisor's embedded monitor (for telemetry or
// degraded-time queries).
func (s *Supervisor) Monitor() *Monitor { return s.mon }

// Journal returns the recovery actions taken so far, in order.
func (s *Supervisor) Journal() []Action {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]Action(nil), s.journal...)
}

// JournalStrings renders the journal, for logs and assertions.
func (s *Supervisor) JournalStrings() []string {
	acts := s.Journal()
	out := make([]string, len(acts))
	for i, a := range acts {
		out[i] = a.String()
	}
	return out
}

func (s *Supervisor) record(a Action) {
	s.mu.Lock()
	s.journal = append(s.journal, a)
	s.mu.Unlock()
}

// Run drives the control loop until ctx is done, then releases the probe
// connections. Callers typically run it in a goroutine and cancel before
// tearing the cluster down.
func (s *Supervisor) Run(ctx context.Context) {
	ticker := time.NewTicker(s.cfg.Interval)
	defer ticker.Stop()
	defer s.closeCallers()
	for {
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
			s.step(ctx)
		}
	}
}

func (s *Supervisor) closeCallers() {
	s.mu.Lock()
	callers := s.callers
	s.callers = make(map[string]*wire.Caller)
	s.mu.Unlock()
	for _, c := range callers {
		c.Close()
	}
}

// step is one control-loop iteration: observe, probe, heal, tune.
func (s *Supervisor) step(ctx context.Context) {
	rep := s.mon.Sample(ctx)
	s.probeDevices(ctx)
	s.checkServices(ctx, rep)
	s.checkModules(ctx)
	s.mu.Lock()
	tuner := s.tuner
	s.mu.Unlock()
	if tuner != nil {
		tuner.Step(ctx)
	}
}

// probeDevices pings every live device in parallel and declares dead any
// that has missed DeadAfter probes in a row.
func (s *Supervisor) probeDevices(ctx context.Context) {
	names := s.cluster.DeviceNames()
	type result struct {
		name string
		err  error
	}
	results := make([]result, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		caller, err := s.callerFor(name)
		if err != nil {
			results[i] = result{name: name, err: err}
			continue
		}
		wg.Add(1)
		go func(i int, name string, c *wire.Caller) {
			defer wg.Done()
			results[i] = result{name: name, err: wire.Ping(ctx, c)}
		}(i, name, caller)
	}
	wg.Wait()

	// Declaration happens outside the probe fan-out, in device order, so
	// the journal order is deterministic even when two devices die in the
	// same tick.
	for _, r := range results {
		if r.name == "" {
			continue
		}
		s.mu.Lock()
		if r.err == nil {
			s.missed[r.name] = 0
			s.mu.Unlock()
			continue
		}
		s.missed[r.name]++
		trip := s.missed[r.name] >= s.cfg.DeadAfter && !s.dead[r.name]
		if trip {
			s.dead[r.name] = true
		}
		s.mu.Unlock()
		if trip {
			s.declareDead(ctx, r.name)
		}
	}
}

// callerFor returns (dialing on first use) the probe caller for a device.
func (s *Supervisor) callerFor(name string) (*wire.Caller, error) {
	s.mu.Lock()
	if c, ok := s.callers[name]; ok {
		s.mu.Unlock()
		return c, nil
	}
	s.mu.Unlock()
	d, ok := s.cluster.Device(name)
	if !ok {
		return nil, errUnknownDevice(name)
	}
	addr, err := d.ServeHealth()
	if err != nil {
		return nil, err
	}
	c := wire.DialCaller(s.probeNet, addr.String())
	c.SetCallTimeout(s.cfg.ProbeTimeout)
	c.SetRetryBudget(1)
	s.mu.Lock()
	if prev, ok := s.callers[name]; ok {
		s.mu.Unlock()
		c.Close()
		return prev, nil
	}
	s.callers[name] = c
	s.mu.Unlock()
	return c, nil
}

// backoffAfter computes the post-restart backoff for attempt n (1-based):
// exponential from the base, capped, plus up to 25% seeded jitter so a
// fleet of supervisors never thunders in lockstep. Jitter shifts timing
// only; it never decides whether an action runs.
func (s *Supervisor) backoffAfter(n int) time.Duration {
	d := s.cfg.RestartBackoff << uint(n-1)
	if d > s.cfg.RestartBackoffMax || d <= 0 {
		d = s.cfg.RestartBackoffMax
	}
	s.mu.Lock()
	j := time.Duration(s.rng.Int63n(int64(d)/4 + 1))
	s.mu.Unlock()
	return d + j
}
