package core_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/services"
)

// startSupervisor runs a supervisor in the background and returns it plus
// a stop function that blocks until the control loop has fully exited —
// required before closing the cluster, since an in-flight step may still
// be probing or migrating.
func startSupervisor(t *testing.T, c *core.Cluster, cfg core.SupervisorConfig) (*core.Supervisor, func()) {
	t.Helper()
	sup := core.NewSupervisor(c, cfg)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		sup.Run(ctx)
	}()
	var stopped bool
	stop := func() {
		if stopped {
			return
		}
		stopped = true
		cancel()
		<-done
	}
	t.Cleanup(stop)
	return sup, stop
}

// TestSupervisorRestartsKilledPool kills the pose pool mid-run and leaves
// recovery entirely to the supervisor: the pool comes back at its old
// size, frames flow again, and the journal records exactly one restart.
func TestSupervisorRestartsKilledPool(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("supfit", 15, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sup, stop := startSupervisor(t, c, core.SupervisorConfig{
		Interval:       50 * time.Millisecond,
		RestartBackoff: 50 * time.Millisecond,
	})

	reg := c.Metrics()
	delivered := func() uint64 {
		return reg.Meter("pipeline.supfit.display.frames_done").Count()
	}
	go func() {
		if _, err := p.Run(context.Background(), 6*time.Second); err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	waitCond(t, 3*time.Second, func() bool { return delivered() >= 3 })

	pool, err := c.Pool(services.PoseDetector)
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	prev := pool.Size()
	pool.Kill(prev)

	// No manual repair: the supervisor must notice and restore the pool.
	waitCond(t, 3*time.Second, func() bool { return pool.Size() == prev })
	at := delivered()
	waitCond(t, 3*time.Second, func() bool { return delivered() >= at+3 })

	stop()
	journal := sup.JournalStrings()
	want := []string{"restart_service " + services.PoseDetector}
	if len(journal) != 1 || journal[0] != want[0] {
		t.Errorf("journal = %v, want %v", journal, want)
	}
	if got := reg.Meter("supervisor.restarts." + services.PoseDetector).Count(); got != 1 {
		t.Errorf("restart meter = %d, want 1", got)
	}
}

// TestSupervisorRestartBudget exhausts the restart budget: with
// MaxRestarts=1 and a pool that is killed again right after its restart,
// the supervisor spends its single restart and then stops intervening.
func TestSupervisorRestartBudget(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("budfit", 15, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	sup, stop := startSupervisor(t, c, core.SupervisorConfig{
		Interval:       50 * time.Millisecond,
		RestartBackoff: 50 * time.Millisecond,
		MaxRestarts:    1,
		HealthyAfter:   time.Hour, // never refill within the test
	})

	go func() {
		if _, err := p.Run(context.Background(), 5*time.Second); err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	reg := c.Metrics()
	waitCond(t, 3*time.Second, func() bool {
		return reg.Meter("pipeline.budfit.display.frames_done").Count() >= 3
	})

	pool, err := c.Pool(services.PoseDetector)
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	pool.Kill(pool.Size())
	waitCond(t, 3*time.Second, func() bool { return pool.Size() > 0 })

	// Kill it again: the budget is spent, so the pool must stay down.
	pool.Kill(pool.Size())
	time.Sleep(time.Second)
	if pool.Size() != 0 {
		t.Errorf("pool restarted beyond its budget (size=%d)", pool.Size())
	}
	stop()
	if journal := sup.JournalStrings(); len(journal) != 1 {
		t.Errorf("journal = %v, want exactly one restart", journal)
	}
}

// TestSupervisorDeviceFailover crashes the TV mid-run: the supervisor
// declares it dead after missed probes, moves the display service to the
// desktop, live-migrates the display module, and the pipeline keeps
// delivering frames — with no recovery code in the test.
func TestSupervisorDeviceFailover(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("failfit", 15, "squat"), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	// ProbeTimeout stays generous: detection of the crash does not depend
	// on it (a crashed device never answers at all), while healthy probes
	// must not miss under race-detector slowdown.
	sup, stop := startSupervisor(t, c, core.SupervisorConfig{
		Interval:     50 * time.Millisecond,
		ProbeTimeout: 250 * time.Millisecond,
		DeadAfter:    4,
	})

	reg := c.Metrics()
	delivered := func() uint64 {
		return reg.Meter("pipeline.failfit.display.frames_done").Count()
	}
	go func() {
		if _, err := p.Run(context.Background(), 8*time.Second); err != nil {
			t.Errorf("Run: %v", err)
		}
	}()
	waitCond(t, 3*time.Second, func() bool { return delivered() >= 3 })

	// Crash the TV: permanently hung and off the LAN for its peers.
	tv, _ := c.Device("tv")
	tv.Crash()
	c.Network().Partition("phone", "tv")
	c.Network().Partition("desktop", "tv")

	waitCond(t, 4*time.Second, func() bool { return len(sup.Journal()) >= 3 })
	at := delivered()
	waitCond(t, 4*time.Second, func() bool { return delivered() >= at+3 })
	stop()

	want := []string{
		"device_dead tv",
		"redeploy_service " + services.Display + " tv->desktop",
		"migrate_module failfit.display tv->desktop",
	}
	journal := sup.JournalStrings()
	if len(journal) != len(want) {
		t.Fatalf("journal = %v, want %v", journal, want)
	}
	for i := range want {
		if journal[i] != want[i] {
			t.Fatalf("journal = %v, want %v", journal, want)
		}
	}
	if !c.IsDown("tv") {
		t.Error("tv not marked down")
	}
	if got := p.Placement()["display"]; got != "desktop" {
		t.Errorf("display placed on %q after failover, want desktop", got)
	}
	if host, _ := c.ServiceHost(services.Display); host != "desktop" {
		t.Errorf("display service hosted on %q after failover, want desktop", host)
	}
	if got := reg.Meter("pipeline.failfit.recoveries").Count(); got != 1 {
		t.Errorf("recoveries meter = %d, want 1", got)
	}
}

// TestSupervisorShutdownLeavesNoGoroutines runs a full supervised cluster
// lifecycle and verifies the goroutine count returns to baseline — the
// supervisor's probes, monitors and any respawned modules must all stop.
func TestSupervisorShutdownLeavesNoGoroutines(t *testing.T) {
	base := runtime.NumGoroutine()

	c, err := core.NewCluster(apps.HomeClusterSpec(), fastRegistry(t))
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	p, err := c.Launch(apps.FitnessConfig("leakfit", 15, "squat"), core.CoLocatePlanner{})
	if err != nil {
		c.Close()
		t.Fatalf("Launch: %v", err)
	}
	sup, stop := startSupervisor(t, c, core.SupervisorConfig{Interval: 50 * time.Millisecond})

	if _, err := p.Run(context.Background(), time.Second); err != nil {
		t.Errorf("Run: %v", err)
	}
	// Exercise a recovery so respawn machinery is part of the lifecycle.
	pool, err := c.Pool(services.PoseDetector)
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	pool.Kill(pool.Size())
	waitCond(t, 3*time.Second, func() bool { return pool.Size() > 0 })
	_ = sup

	stop()
	c.Close()

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked: base=%d now=%d\n%s", base, runtime.NumGoroutine(), buf[:n])
}

// TestMigrateModuleCloseRace hammers Pipeline.Close against an in-flight
// migration: whichever wins, no module instance may survive (leaked
// goroutines) and nothing may double-close or panic.
func TestMigrateModuleCloseRace(t *testing.T) {
	base := runtime.NumGoroutine()
	for i := 0; i < 5; i++ {
		c, err := core.NewCluster(apps.HomeClusterSpec(), fastRegistry(t))
		if err != nil {
			t.Fatalf("NewCluster: %v", err)
		}
		p, err := c.Launch(apps.FitnessConfig("racefit", 10, "squat"), core.CoLocatePlanner{})
		if err != nil {
			c.Close()
			t.Fatalf("Launch: %v", err)
		}
		migrated := make(chan error, 1)
		go func() { migrated <- p.MigrateModule("display", "desktop") }()
		if i%2 == 1 {
			time.Sleep(time.Duration(i) * 200 * time.Microsecond)
		}
		p.Close()
		// Either outcome is legal; what matters is that a post-close
		// migration did not publish a live module.
		<-migrated
		for _, mod := range p.Modules() {
			if m, ok := p.Module(mod); ok && m != nil {
				m.Close() // must be idempotent no-op after pipeline Close
			}
		}
		c.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base+3 {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	buf := make([]byte, 1<<20)
	n := runtime.Stack(buf, true)
	t.Fatalf("goroutines leaked after close/migrate race: base=%d now=%d\n%s", base, runtime.NumGoroutine(), buf[:n])
}
