package core

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"
)

// TunerConfig shapes the adaptive runtime tuner's control loop. Every
// threshold is in ticks (control-loop iterations), not wall-clock, so
// decisions depend only on the observed sample sequence — the same
// discipline that keeps supervisor journals seed-comparable.
type TunerConfig struct {
	// Interval is the control-loop period when the tuner runs standalone
	// (Run); zero selects 100 ms. A tuner attached to a supervisor steps
	// at the supervisor's interval instead.
	Interval time.Duration
	// P99Target is the end-to-end latency budget the tuner defends. A pool
	// whose excess-wait p99 exceeds an eighth of it counts as saturated
	// even with a shallow queue: pipelines chain several hops, so one
	// stage eating an eighth of the whole budget in queueing alone is
	// already a threat. Zero selects 250 ms.
	P99Target time.Duration
	// HighQueue is the per-instance queue depth that marks a pool
	// saturated; zero selects 2.
	HighQueue int
	// SaturatedAfter is how many consecutive saturated samples arm a
	// growth action (hysteresis); zero selects 2.
	SaturatedAfter int
	// IdleAfter is how many consecutive idle samples arm a shrink action;
	// zero selects 25 (idleness must be much staler news than saturation).
	IdleAfter int
	// Cooldown is the per-target tick count between actions, letting one
	// actuation take effect before the next is considered; zero selects 5.
	Cooldown int
	// MaxCredits caps per-pipeline credit-window growth; zero selects 16.
	MaxCredits int
	// Replan enables load-aware re-planning: when a pipeline still drops
	// frames with its credit window maxed, placements are re-scored with
	// measured module service times and divergent serviceless modules are
	// live-migrated. Off by default — migration is the heaviest actuator.
	Replan bool
	// Seed drives loop-interval jitter in Run. As with the supervisor,
	// jitter only shifts timing — never which actions run or their order.
	Seed int64
}

func (c TunerConfig) withDefaults() TunerConfig {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.P99Target <= 0 {
		c.P99Target = 250 * time.Millisecond
	}
	if c.HighQueue <= 0 {
		c.HighQueue = 2
	}
	if c.SaturatedAfter <= 0 {
		c.SaturatedAfter = 2
	}
	if c.IdleAfter <= 0 {
		c.IdleAfter = 25
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 5
	}
	if c.MaxCredits <= 0 {
		c.MaxCredits = 16
	}
	return c
}

// svcSample is one service pool's observed state at a tick.
type svcSample struct {
	name         string
	size         int
	workers      int
	queue        int
	busy         int
	batch        int
	maxBatch     int
	maxInstances int
	linger       time.Duration
	cost         time.Duration
	serial       float64
	waitP99      time.Duration
}

// pipeSample is one pipeline's observed state at a tick.
type pipeSample struct {
	name    string
	credits int
	avail   int
	drops   uint64
	e2eP99  time.Duration
}

// tunerSample is one tick's full observation, in deterministic order.
type tunerSample struct {
	services  []svcSample
	pipelines []pipeSample
}

// tunerAct is one decided actuation: the journal entry plus the numeric
// setpoint apply needs.
type tunerAct struct {
	act Action
	n   int
}

// tuneSvcState is the tuner's per-pool hysteresis bookkeeping.
type tuneSvcState struct {
	// baseline is the deployed size first observed — the floor shrink
	// returns to.
	baseline      int
	hotSteps      int
	idleSteps     int
	cooldownUntil int
}

// tunePipeState is the tuner's per-pipeline bookkeeping.
type tunePipeState struct {
	lastDrops     uint64
	seen          bool
	cooldownUntil int
	replanned     bool
}

// Tuner is the adaptive runtime control loop (the perf-tuning sibling of
// the supervisor's self-healing loop): it samples per-pool queue depth,
// busy workers and wait latency plus per-pipeline source drops, and
// actuates dynamic batching, pool scaling, credit-window resizing and —
// when everything else is maxed — measured-cost re-planning. Decisions
// are pure functions of the sample stream and tick counters; the seed
// only jitters the standalone loop's timing.
type Tuner struct {
	cluster *Cluster
	cfg     TunerConfig
	rng     *rand.Rand
	// forward mirrors journal entries into an owning supervisor.
	forward func(Action)

	mu      sync.Mutex
	tick    int
	svc     map[string]*tuneSvcState
	pipe    map[string]*tunePipeState
	journal []Action
}

// NewTuner creates a tuner for the cluster. It does nothing until Run or
// Step.
func NewTuner(c *Cluster, cfg TunerConfig) *Tuner {
	cfg = cfg.withDefaults()
	return &Tuner{
		cluster: c,
		cfg:     cfg,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		svc:     make(map[string]*tuneSvcState),
		pipe:    make(map[string]*tunePipeState),
	}
}

// AttachTuner creates a tuner that steps inside the supervisor's control
// loop and mirrors its decisions into the supervisor journal.
func (s *Supervisor) AttachTuner(cfg TunerConfig) *Tuner {
	t := NewTuner(s.cluster, cfg)
	t.forward = s.record
	s.mu.Lock()
	s.tuner = t
	s.mu.Unlock()
	return t
}

// Journal returns the tuning actions taken so far, in order.
func (t *Tuner) Journal() []Action {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Action(nil), t.journal...)
}

// JournalStrings renders the journal, for logs and assertions.
func (t *Tuner) JournalStrings() []string {
	acts := t.Journal()
	out := make([]string, len(acts))
	for i, a := range acts {
		out[i] = a.String()
	}
	return out
}

func (t *Tuner) record(a Action) {
	t.mu.Lock()
	t.journal = append(t.journal, a)
	fwd := t.forward
	t.mu.Unlock()
	if fwd != nil {
		fwd(a)
	}
}

// Run drives the standalone control loop until ctx is done. The seeded
// jitter (up to 10% of the interval per tick) shifts timing only.
func (t *Tuner) Run(ctx context.Context) {
	for {
		d := t.cfg.Interval
		t.mu.Lock()
		d += time.Duration(t.rng.Int63n(int64(t.cfg.Interval)/10 + 1))
		t.mu.Unlock()
		timer := time.NewTimer(d)
		select {
		case <-ctx.Done():
			timer.Stop()
			return
		case <-timer.C:
		}
		t.Step(ctx)
	}
}

// Step runs one control-loop iteration: observe, decide, actuate.
func (t *Tuner) Step(ctx context.Context) {
	s := t.sample()
	if os.Getenv("VPTUNE_DEBUG") != "" {
		for _, sv := range s.services {
			fmt.Fprintf(os.Stderr, "[tuner] svc %s size=%d queue=%d busy=%d batch=%d waitP99=%v\n",
				sv.name, sv.size, sv.queue, sv.busy, sv.batch, sv.waitP99)
		}
		for _, pp := range s.pipelines {
			fmt.Fprintf(os.Stderr, "[tuner] pipe %s credits=%d avail=%d drops=%d e2eP99=%v\n",
				pp.name, pp.credits, pp.avail, pp.drops, pp.e2eP99)
		}
	}
	for _, a := range t.decide(s) {
		t.apply(ctx, a)
	}
}

// sample observes every pool and pipeline, in sorted (deterministic)
// order.
func (t *Tuner) sample() tunerSample {
	var s tunerSample
	reg := t.cluster.Metrics()
	for _, name := range t.cluster.ServiceNames() {
		pool, err := t.cluster.Pool(name)
		if err != nil {
			continue
		}
		spec := pool.Spec()
		workers := spec.Workers
		if workers <= 0 {
			workers = 1
		}
		s.services = append(s.services, svcSample{
			name:         name,
			size:         pool.Size(),
			workers:      workers,
			queue:        pool.QueueDepth(),
			busy:         pool.BusyWorkers(),
			batch:        pool.BatchSize(),
			maxBatch:     spec.MaxBatch,
			maxInstances: spec.MaxInstances,
			linger:       spec.BatchLinger,
			cost:         spec.Cost,
			serial:       spec.SerialFraction,
			waitP99:      pool.WaitStats().P99,
		})
	}
	pipes := t.cluster.Pipelines()
	sort.Slice(pipes, func(i, j int) bool { return pipes[i].Name() < pipes[j].Name() })
	for _, p := range pipes {
		// The pipeline's end-to-end tail is the worst across its modules'
		// e2e histograms — the same distributions the flood harness merges.
		var e2e time.Duration
		for _, mod := range p.Modules() {
			snap := reg.Histogram("pipeline." + p.Name() + "." + mod + ".e2e").Snapshot()
			if snap.P99 > e2e {
				e2e = snap.P99
			}
		}
		s.pipelines = append(s.pipelines, pipeSample{
			name:    p.Name(),
			credits: p.Credits(),
			avail:   p.CreditsAvail(),
			drops:   reg.Meter("pipeline." + p.Name() + ".source_drops").Count(),
			e2eP99:  e2e,
		})
	}
	return s
}

// decide turns one sample into actuations. It is a pure function of the
// sample and the tuner's tick-counter state: no clocks, no randomness —
// identical sample sequences always produce identical journals.
//
//vpvet:deterministic
func (t *Tuner) decide(s tunerSample) []tunerAct {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.tick++
	var acts []tunerAct

	for _, sv := range s.services {
		st, ok := t.svc[sv.name]
		if !ok {
			st = &tuneSvcState{baseline: sv.size}
			t.svc[sv.name] = st
		}

		// Three saturation symptoms: a deep queue, excess wait eating an
		// eighth of the e2e budget, or every worker slot busy with
		// arrivals still waiting — the last fires long before the queue is
		// deep enough for the first, which matters when windows are short.
		saturated := sv.queue > t.cfg.HighQueue*sv.size ||
			sv.waitP99 > t.cfg.P99Target/8 ||
			(sv.busy >= sv.size*sv.workers && sv.queue > 0)
		idle := sv.queue == 0 && sv.busy == 0
		switch {
		case idle:
			// Instantaneous idleness overrides the sticky wait histogram:
			// scaling a pool with nothing in it helps nobody.
			st.idleSteps++
			st.hotSteps = 0
		case saturated:
			st.hotSteps++
			st.idleSteps = 0
		default:
			// Leaky, not reset: the queue and busy gauges are point
			// samples, and bursty saturation flickers between ticks.
			if st.hotSteps > 0 {
				st.hotSteps--
			}
			st.idleSteps = 0
		}
		if t.tick < st.cooldownUntil {
			continue
		}

		ceiling := sv.maxInstances
		if ceiling <= 0 {
			ceiling = st.baseline
		}
		switch {
		case st.hotSteps >= t.cfg.SaturatedAfter && sv.size < ceiling:
			// Scaling first: another instance cuts queueing without adding
			// a single microsecond to any request's path.
			acts = append(acts, tunerAct{
				act: Action{Kind: ActionScalePool, Target: sv.name,
					From: strconv.Itoa(sv.size), To: strconv.Itoa(sv.size + 1)},
				n: sv.size + 1,
			})
			st.hotSteps = 0
			st.cooldownUntil = t.tick + t.cfg.Cooldown
		case st.hotSteps >= t.cfg.SaturatedAfter && sv.batch < batchCeiling(sv, t.cfg.P99Target):
			// Instances maxed and still hot: amortize the serialized
			// section. Batching trades per-request hold time for
			// per-instance throughput, so it is the move of second resort,
			// and only up to the window whose worst-case hold still fits
			// the latency target (batchCeiling) — a batch that blows the
			// budget it defends is capacity nobody can use.
			best := batchCeiling(sv, t.cfg.P99Target)
			acts = append(acts, tunerAct{
				act: Action{Kind: ActionSetBatch, Target: sv.name,
					From: strconv.Itoa(sv.batch), To: strconv.Itoa(best)},
				n: best,
			})
			st.hotSteps = 0
			st.cooldownUntil = t.tick + t.cfg.Cooldown
		case st.idleSteps >= t.cfg.IdleAfter && sv.batch > 0:
			// Idle unwind, batching first: a lone request should not pay
			// the linger once load is gone.
			acts = append(acts, tunerAct{
				act: Action{Kind: ActionSetBatch, Target: sv.name,
					From: strconv.Itoa(sv.batch), To: "0"},
				n: 0,
			})
			st.idleSteps = 0
			st.cooldownUntil = t.tick + t.cfg.Cooldown
		case st.idleSteps >= t.cfg.IdleAfter && sv.size > st.baseline:
			acts = append(acts, tunerAct{
				act: Action{Kind: ActionScalePool, Target: sv.name,
					From: strconv.Itoa(sv.size), To: strconv.Itoa(sv.size - 1)},
				n: sv.size - 1,
			})
			st.idleSteps = 0
			st.cooldownUntil = t.tick + t.cfg.Cooldown
		}
	}

	// A drop on any pipeline pressures the whole fleet: the lanes share
	// devices and services, so a burst that overran one lane's window is
	// about to overrun its neighbours' — widening only the lane that
	// already lost a frame would always be one burst too late.
	anyDrops := false
	for _, pp := range s.pipelines {
		st, ok := t.pipe[pp.name]
		if !ok {
			st = &tunePipeState{seen: true, lastDrops: pp.drops}
			t.pipe[pp.name] = st
			// First sight: pre-existing drops are history, not news.
			continue
		}
		if pp.drops > st.lastDrops {
			anyDrops = true
		}
		st.lastDrops = pp.drops
	}
	for _, pp := range s.pipelines {
		st := t.pipe[pp.name]
		// Act on pressure, not just loss: an exhausted window (avail == 0)
		// means the very next burst arrival drops. Unlike the pool ladder
		// there is no hysteresis — the drop counter is monotone, so a
		// positive delta is confirmed lost work, not a sampling artifact.
		pressed := anyDrops || pp.avail == 0
		if !pressed {
			continue
		}
		// Pressure re-checks placement once per lane, outside the actuator
		// cooldown: the re-score is a cheap pure decision against measured
		// service times and migrates only what diverged, so there is no
		// reason to queue it behind credit moves. It waits only for the
		// lane's first completed frame, so the measured costs exist.
		if t.cfg.Replan && !st.replanned && pp.e2eP99 > 0 {
			acts = append(acts, tunerAct{
				act: Action{Kind: ActionRebalanceModule, Target: pp.name},
			})
			st.replanned = true
		}
		if t.tick < st.cooldownUntil {
			continue
		}
		switch {
		case pp.credits < t.cfg.MaxCredits && pp.e2eP99 < t.cfg.P99Target*5/8:
			// Widen by one, and only while the lane's own tail still sits
			// well inside the budget. Every extra credit is another frame
			// that may queue behind the chain's slowest stage, so admission
			// grows additively into the measured headroom and freezes at
			// five eighths of the target: each widening takes effect a full
			// cooldown after the tail that justified it was measured, and
			// costs up to one more queued service call (~⅓ of the target
			// for the heavy vision stages) on the burst path. Guarding at
			// ¾ leaves the equilibrium tail — guard plus one widening's
			// overshoot — straddling the budget itself and the run's
			// compliance becomes a coin flip; ⅝ prices the overshoot in.
			// Past the guard, shedding at the source is the correct
			// defense, not a failure the tuner should fix.
			acts = append(acts, tunerAct{
				act: Action{Kind: ActionResizeCredits, Target: pp.name,
					From: strconv.Itoa(pp.credits), To: strconv.Itoa(pp.credits + 1)},
				n: pp.credits + 1,
			})
			st.cooldownUntil = t.tick + t.cfg.Cooldown
		}
	}
	return acts
}

// batchCeiling is the largest batch window whose worst-case per-call hold
// still fits inside half the end-to-end latency target, or 0 when even a
// pair does not fit. A batch of n holds a worker for the serial section
// once plus n parallel shares, and a call can additionally wait out the
// full linger before the batch flushes:
//
//	hold(n) = linger + serial + n*(cost - serial)
//
// Half the budget is the allowance because the batched stage is one hop of
// a multi-hop chain that must also absorb transport and queueing. This is
// what keeps the tuner from batching an expensive stage (pose at 85 ms
// never batches under a 250 ms budget) while still batching cheap ones.
func batchCeiling(sv svcSample, target time.Duration) int {
	if sv.maxBatch < 2 || sv.cost <= 0 {
		return 0
	}
	serial := time.Duration(float64(sv.cost) * sv.serial)
	perFrame := sv.cost - serial
	allowance := target/2 - sv.linger - serial
	if perFrame <= 0 {
		// Fully serial cost: hold is independent of batch size, so any
		// window that fits, fits at the max.
		if allowance >= 0 {
			return sv.maxBatch
		}
		return 0
	}
	n := int(allowance / perFrame)
	if n > sv.maxBatch {
		n = sv.maxBatch
	}
	if n < 2 {
		return 0
	}
	return n
}

// apply executes one decided actuation and journals it.
func (t *Tuner) apply(ctx context.Context, a tunerAct) {
	switch a.act.Kind {
	case ActionSetBatch:
		pool, err := t.cluster.Pool(a.act.Target)
		if err != nil {
			return
		}
		pool.SetBatching(a.n, pool.Spec().BatchLinger)
		t.record(a.act)
	case ActionScalePool:
		pool, err := t.cluster.Pool(a.act.Target)
		if err != nil {
			return
		}
		if err := pool.Scale(ctx, a.n); err != nil {
			return
		}
		t.record(a.act)
	case ActionResizeCredits:
		p := t.pipelineByName(a.act.Target)
		if p == nil {
			return
		}
		if err := p.ResizeCredits(a.n); err != nil {
			return
		}
		t.record(a.act)
	case ActionRebalanceModule:
		t.rebalance(a.act.Target)
	}
}

// ServiceSetpoint is one pool's actuator state: instance count and batch
// window.
type ServiceSetpoint struct {
	Size  int
	Batch int
}

// TuningSetpoints is a snapshot of every actuator the tuner controls —
// pool sizes, batch windows, credit caps — detached from the cluster that
// produced it. A sweep carries it from rung to rung (flood.Sweep) so each
// rung starts from the configuration the previous rung learned, the way a
// long-lived deployment faces rising load: already tuned, not cold.
type TuningSetpoints struct {
	// Services maps service name to its pool setpoint.
	Services map[string]ServiceSetpoint
	// Pipelines maps pipeline name to its credit-window cap.
	Pipelines map[string]int
	// Placements maps pipeline name to its module placement (module →
	// device), so a re-planned layout survives into the next rung instead
	// of being re-learned mid-run every time.
	Placements map[string]map[string]string
}

// Setpoints snapshots the cluster's current actuator state.
func (t *Tuner) Setpoints() TuningSetpoints {
	sp := TuningSetpoints{
		Services:  make(map[string]ServiceSetpoint),
		Pipelines: make(map[string]int),
	}
	for _, name := range t.cluster.ServiceNames() {
		pool, err := t.cluster.Pool(name)
		if err != nil {
			continue
		}
		sp.Services[name] = ServiceSetpoint{Size: pool.Size(), Batch: pool.BatchSize()}
	}
	for _, p := range t.cluster.Pipelines() {
		sp.Pipelines[p.Name()] = p.Credits()
	}
	sp.Placements = make(map[string]map[string]string)
	for _, p := range t.cluster.Pipelines() {
		sp.Placements[p.Name()] = p.Placement()
	}
	return sp
}

// Prime applies carried-over setpoints to a fresh cluster before load
// arrives: pools grow to (never shrink below) their learned size, batch
// windows and credit caps are restored. Prime is initial configuration,
// not a decision, so nothing is journaled.
func (t *Tuner) Prime(ctx context.Context, sp TuningSetpoints) {
	names := make([]string, 0, len(sp.Services))
	for name := range sp.Services {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := sp.Services[name]
		pool, err := t.cluster.Pool(name)
		if err != nil {
			continue
		}
		if s.Size > pool.Size() {
			_ = pool.Scale(ctx, s.Size)
		}
		if s.Batch != pool.BatchSize() {
			pool.SetBatching(s.Batch, pool.Spec().BatchLinger)
		}
	}
	pipes := make([]string, 0, len(sp.Pipelines))
	for name := range sp.Pipelines {
		pipes = append(pipes, name)
	}
	sort.Strings(pipes)
	for _, name := range pipes {
		credits := sp.Pipelines[name]
		if p := t.pipelineByName(name); p != nil && credits > p.Credits() {
			_ = p.ResizeCredits(credits)
		}
	}
	placed := make([]string, 0, len(sp.Placements))
	for name := range sp.Placements {
		placed = append(placed, name)
	}
	sort.Strings(placed)
	for _, name := range placed {
		p := t.pipelineByName(name)
		if p == nil {
			continue
		}
		want := sp.Placements[name]
		current := p.Placement()
		for _, mod := range p.Modules() {
			mc, ok := p.cfg.Module(mod)
			if !ok || mc.Device != "" || len(mc.Services) > 0 {
				// Same rule as rebalance: pins and service co-location are
				// plan invariants, never carried state.
				continue
			}
			if tgt := want[mod]; tgt != "" && tgt != current[mod] {
				_ = p.MigrateModule(mod, tgt)
			}
		}
	}
}

// pipelineByName finds a live pipeline.
func (t *Tuner) pipelineByName(name string) *Pipeline {
	for _, p := range t.cluster.Pipelines() {
		if p.Name() == name {
			return p
		}
	}
	return nil
}

// rebalance re-scores a pipeline's placement using measured per-module
// handle time and live-migrates serviceless modules whose best device
// changed — the actuator of last resort, reached only once per pipeline
// and only after batching, scaling and credits are all exhausted.
func (t *Tuner) rebalance(pipeline string) {
	p := t.pipelineByName(pipeline)
	if p == nil {
		return
	}
	planner, ok := p.plannerImpl.(CostAwarePlanner)
	if !ok {
		planner = CostAwarePlanner{}
	}
	planner.HopPenalty = 0 // re-derive for the measured domain

	reg := t.cluster.Metrics()
	measured := make(map[string]int64, len(p.cfg.Modules))
	for _, mod := range p.Modules() {
		//vpvet:allow metername re-reads the module handle histogram the device registered
		snap := reg.Histogram("module." + p.prefixed(mod) + ".handle").Snapshot()
		if snap.Count > 0 {
			measured[mod] = int64(snap.Mean)
		}
	}

	plan, err := planner.PlanMeasured(&p.cfg, t.cluster, measured)
	if err != nil {
		return
	}
	current := p.Placement()
	for _, mod := range p.Modules() {
		mc, ok := p.cfg.Module(mod)
		if !ok || mc.Device != "" || len(mc.Services) > 0 {
			// Pins and service co-location never move: those rules are
			// identical in both scoring domains.
			continue
		}
		target := plan.Placement[mod]
		if target == "" || target == current[mod] {
			continue
		}
		if err := p.MigrateModule(mod, target); err != nil {
			continue
		}
		t.record(Action{Kind: ActionRebalanceModule, Target: pipeline + "." + mod,
			From: current[mod], To: target})
	}
}
