package core

import (
	"testing"
	"time"
)

// testTunerConfig keeps the hysteresis and cooldown windows tiny so each
// scenario fits in a handful of decide calls.
func testTunerConfig() TunerConfig {
	return TunerConfig{
		P99Target:      250 * time.Millisecond,
		HighQueue:      2,
		SaturatedAfter: 2,
		IdleAfter:      3,
		Cooldown:       3,
		MaxCredits:     4,
	}
}

// hotService is a pool sample that trips the deep-queue saturation symptom.
func hotService(size int) svcSample {
	return svcSample{
		name: "svc", size: size, workers: 1, queue: 2*size + 1, busy: size,
		maxBatch: 8, maxInstances: 2, linger: 5 * time.Millisecond,
		cost: 2 * time.Millisecond, serial: 0.5,
	}
}

func actStrings(acts []tunerAct) []string {
	out := make([]string, len(acts))
	for i, a := range acts {
		out[i] = a.act.String()
	}
	return out
}

func TestBatchCeiling(t *testing.T) {
	target := 250 * time.Millisecond
	cases := []struct {
		name string
		sv   svcSample
		want int
	}{
		// Pose-like: hold(2) = 20 + 42.5 + 2*42.5 = 147.5ms > 125ms, so
		// even a pair blows half the budget — the expensive stage never
		// batches.
		{"expensive never batches",
			svcSample{maxBatch: 4, linger: 20 * time.Millisecond, cost: 85 * time.Millisecond, serial: 0.5}, 0},
		// Cheap stage: allowance 119ms / 1ms per frame, capped at maxBatch.
		{"cheap caps at maxBatch",
			svcSample{maxBatch: 8, linger: 5 * time.Millisecond, cost: 2 * time.Millisecond, serial: 0.5}, 8},
		// Mid-cost: allowance (125-10-5)=110ms / 15ms per frame = 7.
		{"mid-cost lands between",
			svcSample{maxBatch: 16, linger: 10 * time.Millisecond, cost: 20 * time.Millisecond, serial: 0.25}, 7},
		// Fully serial: hold is independent of n, so any window that fits
		// fits at the max.
		{"fully serial fits at max",
			svcSample{maxBatch: 6, cost: 30 * time.Millisecond, serial: 1.0}, 6},
		{"fully serial over budget",
			svcSample{maxBatch: 6, linger: 130 * time.Millisecond, cost: 30 * time.Millisecond, serial: 1.0}, 0},
		// The spec must declare a batching envelope at all.
		{"no batch envelope",
			svcSample{maxBatch: 1, cost: time.Millisecond}, 0},
		{"no cost model",
			svcSample{maxBatch: 8}, 0},
	}
	for _, tc := range cases {
		if got := batchCeiling(tc.sv, target); got != tc.want {
			t.Errorf("%s: batchCeiling = %d, want %d", tc.name, got, tc.want)
		}
	}
}

func TestTunerScalesBeforeBatching(t *testing.T) {
	tu := NewTuner(nil, testTunerConfig())

	// Two saturated ticks arm the ladder; instances are below MaxInstances,
	// so the first move must be a scale-out, not a batch window.
	var acts []tunerAct
	for i := 0; i < 2; i++ {
		acts = tu.decide(tunerSample{services: []svcSample{hotService(1)}})
	}
	if len(acts) != 1 || acts[0].act.Kind != ActionScalePool || acts[0].n != 2 {
		t.Fatalf("hot pool below ceiling: acts = %v, want scale_pool to 2", actStrings(acts))
	}

	// Still hot at the instance ceiling, past the cooldown: the move of
	// second resort is batching, up to batchCeiling (here the spec's max).
	for i := 0; i < 6; i++ {
		acts = tu.decide(tunerSample{services: []svcSample{hotService(2)}})
		if len(acts) > 0 {
			break
		}
	}
	if len(acts) != 1 || acts[0].act.Kind != ActionSetBatch || acts[0].n != 8 {
		t.Fatalf("hot pool at ceiling: acts = %v, want set_batch to 8", actStrings(acts))
	}
}

func TestTunerNeverBatchesPastLatencyCeiling(t *testing.T) {
	tu := NewTuner(nil, testTunerConfig())
	// A pose-like stage at its instance ceiling: batchCeiling is 0, so the
	// tuner must sit on its hands no matter how hot the pool runs.
	sv := svcSample{
		name: "pose", size: 2, workers: 2, queue: 10, busy: 4,
		maxBatch: 4, maxInstances: 2, linger: 20 * time.Millisecond,
		cost: 85 * time.Millisecond, serial: 0.5,
	}
	for i := 0; i < 10; i++ {
		if acts := tu.decide(tunerSample{services: []svcSample{sv}}); len(acts) != 0 {
			t.Fatalf("tick %d: batched an expensive stage: %v", i, actStrings(acts))
		}
	}
}

func TestTunerIdleUnwindsBatchThenSize(t *testing.T) {
	tu := NewTuner(nil, testTunerConfig())
	idle := svcSample{
		name: "svc", size: 2, workers: 1, maxBatch: 8, maxInstances: 2,
		cost: 2 * time.Millisecond, batch: 4,
	}
	// First sight records size 2... but baseline is the first observed
	// size, so shrink below it must never fire; start from a grown pool by
	// seeding the baseline at 1.
	tu.svc["svc"] = &tuneSvcState{baseline: 1}

	var got []string
	for i := 0; i < 20; i++ {
		acts := tu.decide(tunerSample{services: []svcSample{idle}})
		for _, a := range acts {
			got = append(got, a.act.String())
			if a.act.Kind == ActionSetBatch {
				idle.batch = a.n
			}
			if a.act.Kind == ActionScalePool {
				idle.size = a.n
			}
		}
	}
	if len(got) != 2 {
		t.Fatalf("idle unwind actions = %v, want batch-off then scale-down", got)
	}
	if idle.batch != 0 || idle.size != 1 {
		t.Errorf("after unwind: batch = %d (want 0), size = %d (want baseline 1)", idle.batch, idle.size)
	}
}

func TestTunerCreditsGrowAdditivelyUnderTailGuard(t *testing.T) {
	tu := NewTuner(nil, testTunerConfig())
	lane := pipeSample{name: "lane", credits: 2, avail: 0, e2eP99: 100 * time.Millisecond}

	// An exhausted window is pressure even before a drop lands; the first
	// widen is a single credit, not a doubling.
	acts := tu.decide(tunerSample{pipelines: []pipeSample{lane}})
	if len(acts) != 1 || acts[0].act.Kind != ActionResizeCredits || acts[0].n != 3 {
		t.Fatalf("pressed lane under budget: acts = %v, want resize_credits to 3", actStrings(acts))
	}
	// Inside the cooldown nothing moves.
	if acts := tu.decide(tunerSample{pipelines: []pipeSample{lane}}); len(acts) != 0 {
		t.Errorf("resize inside cooldown: %v", actStrings(acts))
	}
	// Past the cooldown but with the tail above 5/8 of the target — still
	// inside the budget! — the guard holds: widening acts a cooldown after
	// the tail that justified it, so growth must stop short of the edge.
	// Shedding at the source is the defense now, not a wider window.
	lane.credits = 3
	lane.e2eP99 = 160 * time.Millisecond
	for i := 0; i < 6; i++ {
		if acts := tu.decide(tunerSample{pipelines: []pipeSample{lane}}); len(acts) != 0 {
			t.Fatalf("widened a lane whose tail is over target: %v", actStrings(acts))
		}
	}
	// Tail back under budget: growth resumes until MaxCredits, then stops.
	lane.e2eP99 = 120 * time.Millisecond
	lane.credits = 4 // == MaxCredits
	for i := 0; i < 6; i++ {
		if acts := tu.decide(tunerSample{pipelines: []pipeSample{lane}}); len(acts) != 0 {
			t.Fatalf("widened past MaxCredits: %v", actStrings(acts))
		}
	}
}

func TestTunerDropsOnOneLanePressureWholeFleet(t *testing.T) {
	tu := NewTuner(nil, testTunerConfig())
	a := pipeSample{name: "a", credits: 2, avail: 1, drops: 0, e2eP99: 50 * time.Millisecond}
	b := pipeSample{name: "b", credits: 2, avail: 1, drops: 0, e2eP99: 50 * time.Millisecond}
	// First sight: pre-existing drops are history, and neither lane is
	// pressed (credits available).
	if acts := tu.decide(tunerSample{pipelines: []pipeSample{a, b}}); len(acts) != 0 {
		t.Fatalf("first sight acted: %v", actStrings(acts))
	}
	// A drop on lane a presses lane b too — the fleet shares the burst.
	a.drops = 1
	acts := tu.decide(tunerSample{pipelines: []pipeSample{a, b}})
	if len(acts) != 2 {
		t.Fatalf("one-lane drop: acts = %v, want both lanes widened", actStrings(acts))
	}
	for i, want := range []string{"a", "b"} {
		if acts[i].act.Kind != ActionResizeCredits || acts[i].act.Target != want {
			t.Errorf("act %d = %v, want resize_credits on %s", i, acts[i].act, want)
		}
	}
}

func TestTunerReplansOncePerLaneAfterFirstFrame(t *testing.T) {
	cfg := testTunerConfig()
	cfg.Replan = true
	tu := NewTuner(nil, cfg)

	// Pressed but no completed frame yet: measured costs don't exist, so
	// the re-score must wait (the credits actuator may still move).
	lane := pipeSample{name: "lane", credits: 4, avail: 0, e2eP99: 0}
	tu.pipe["lane"] = &tunePipeState{seen: true}
	rebalances := func(acts []tunerAct) int {
		n := 0
		for _, a := range acts {
			if a.act.Kind == ActionRebalanceModule {
				n++
			}
		}
		return n
	}
	if got := rebalances(tu.decide(tunerSample{pipelines: []pipeSample{lane}})); got != 0 {
		t.Fatalf("replanned before the first completed frame (%d acts)", got)
	}
	// With latency measured, the replan fires exactly once, regardless of
	// how long the pressure lasts or where the cooldown sits.
	lane.e2eP99 = 90 * time.Millisecond
	total := 0
	for i := 0; i < 10; i++ {
		total += rebalances(tu.decide(tunerSample{pipelines: []pipeSample{lane}}))
	}
	if total != 1 {
		t.Errorf("rebalance fired %d times under sustained pressure, want exactly once", total)
	}
}

func TestTunerDecisionsAreDeterministic(t *testing.T) {
	// decide is a pure function of the sample stream: two tuners fed the
	// identical sequence must emit identical journals, tick for tick. The
	// stream deliberately mixes every regime — hot, idle, pressed, guarded.
	stream := make([]tunerSample, 0, 40)
	for i := 0; i < 40; i++ {
		sv := hotService(1 + i%2)
		if i%7 < 3 {
			sv.queue, sv.busy = 0, 0 // idle stretch
		}
		lane := pipeSample{name: "lane", credits: 2 + i%3, avail: i % 2, e2eP99: time.Duration(i%5) * 60 * time.Millisecond}
		if i%3 == 0 {
			lane.drops = uint64(i)
		}
		stream = append(stream, tunerSample{services: []svcSample{sv}, pipelines: []pipeSample{lane}})
	}

	run := func() []string {
		cfg := testTunerConfig()
		cfg.Replan = true
		tu := NewTuner(nil, cfg)
		var out []string
		for _, s := range stream {
			out = append(out, actStrings(tu.decide(s))...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) == 0 {
		t.Fatal("determinism stream produced no actions; the scenario is vacuous")
	}
	if len(a) != len(b) {
		t.Fatalf("journal lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("journals diverge at %d: %q vs %q", i, a[i], b[i])
		}
	}
}
