package core_test

import (
	"context"
	"testing"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/frame"
	"videopipe/internal/services"
)

// TestOfferDropReleasesFrameAndCountsIt pins the source-drop contract the
// tuner meters depend on: a frame rejected for want of a credit is
// recycled before Offer returns, and the pipeline's source_drops meter —
// the tuner's pressure signal — records the loss.
func TestOfferDropReleasesFrameAndCountsIt(t *testing.T) {
	c := homeCluster(t)
	p, err := c.Launch(apps.FitnessConfig("droptest", 10, ""), core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}

	// Credits are never primed, so the window is empty and the very first
	// Offer must be shed at the source.
	f, err := frame.NewPooled(apps.FrameWidth, apps.FrameHeight)
	if err != nil {
		t.Fatalf("NewPooled: %v", err)
	}
	f.Captured = time.Now()
	if p.Offer(f) {
		t.Fatal("Offer admitted a frame with no credits available")
	}
	if !f.Released() {
		t.Error("rejected frame not released — source drops would leak buffers")
	}
	if got := c.Metrics().Meter("pipeline.droptest.source_drops").Count(); got != 1 {
		t.Errorf("source_drops = %d, want 1", got)
	}
}

// TestTunerSetpointsPrimeRoundTrip drives the sweep's rung-to-rung carry
// through the public API: actuator state learned on one cluster is
// captured with Setpoints and restored onto a fresh cluster with Prime.
func TestTunerSetpointsPrimeRoundTrip(t *testing.T) {
	ctx := context.Background()
	cfg := apps.FitnessConfig("carry", 10, "squat")

	c1 := homeCluster(t)
	p1, err := c1.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	pose1, err := c1.Pool(services.PoseDetector)
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	if err := pose1.Scale(ctx, 2); err != nil {
		t.Fatalf("Scale: %v", err)
	}
	pose1.SetBatching(3, pose1.Spec().BatchLinger)
	if err := p1.ResizeCredits(5); err != nil {
		t.Fatalf("ResizeCredits: %v", err)
	}

	sp := core.NewTuner(c1, core.TunerConfig{}).Setpoints()
	if got := sp.Services[services.PoseDetector]; got.Size != 2 || got.Batch != 3 {
		t.Fatalf("captured pose setpoint = %+v, want size 2 batch 3", got)
	}
	if got := sp.Pipelines["carry"]; got != 5 {
		t.Fatalf("captured credits = %d, want 5", got)
	}
	if len(sp.Placements["carry"]) == 0 {
		t.Fatal("captured setpoints carry no placement")
	}

	// A fresh cluster starts cold; Prime must restore the learned state
	// without journaling anything (it is configuration, not a decision).
	c2 := homeCluster(t)
	p2, err := c2.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		t.Fatalf("Launch: %v", err)
	}
	tu := core.NewTuner(c2, core.TunerConfig{})
	tu.Prime(ctx, sp)
	pose2, err := c2.Pool(services.PoseDetector)
	if err != nil {
		t.Fatalf("Pool: %v", err)
	}
	if got := pose2.Size(); got != 2 {
		t.Errorf("primed pose pool size = %d, want 2", got)
	}
	if got := pose2.BatchSize(); got != 3 {
		t.Errorf("primed pose batch = %d, want 3", got)
	}
	if got := p2.Credits(); got != 5 {
		t.Errorf("primed credits = %d, want 5", got)
	}
	if j := tu.Journal(); len(j) != 0 {
		t.Errorf("Prime journaled %d actions, want none", len(j))
	}

	// Prime never narrows: a cluster already wider than the carried state
	// keeps its capacity.
	if err := pose2.Scale(ctx, 3); err != nil {
		t.Fatalf("Scale: %v", err)
	}
	tu.Prime(ctx, sp)
	if got := pose2.Size(); got != 3 {
		t.Errorf("Prime shrank the pool to %d; carried state must only grow capacity", got)
	}
}
