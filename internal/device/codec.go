package device

import (
	"time"

	"videopipe/internal/frame"
)

// paddedCodec wraps a frame codec so encode/decode take 1/cpuFactor as
// long as they do on the reference machine: a phone-class device pays
// phone-class media costs. The padding is sleep-based, like the service
// compute model.
type paddedCodec struct {
	inner     frame.Codec
	cpuFactor float64
}

var (
	_ frame.Codec         = paddedCodec{}
	_ frame.AppendEncoder = paddedCodec{}
)

// Name reports the wrapped codec's name.
func (c paddedCodec) Name() string { return c.inner.Name() }

// Encode runs the real encoder, then pads to the device-scaled duration.
func (c paddedCodec) Encode(f *frame.Frame) ([]byte, error) {
	start := time.Now()
	data, err := c.inner.Encode(f)
	c.pad(start)
	return data, err
}

// AppendEncode passes the scratch buffer through to the inner codec, then
// pads like Encode — copy elision must not dodge the simulated media cost.
func (c paddedCodec) AppendEncode(dst []byte, f *frame.Frame) ([]byte, error) {
	start := time.Now()
	out, err := frame.AppendEncode(c.inner, dst, f)
	c.pad(start)
	return out, err
}

// Decode runs the real decoder, then pads to the device-scaled duration.
func (c paddedCodec) Decode(data []byte) (*frame.Frame, error) {
	start := time.Now()
	f, err := c.inner.Decode(data)
	c.pad(start)
	return f, err
}

func (c paddedCodec) pad(start time.Time) {
	if c.cpuFactor >= 1 || c.cpuFactor <= 0 {
		return
	}
	elapsed := time.Since(start)
	extra := time.Duration(float64(elapsed)*(1/c.cpuFactor)) - elapsed
	if extra > 0 {
		time.Sleep(extra)
	}
}
