// Package device models the heterogeneous edge devices VideoPipe runs on:
// phones, desktops, TVs and other home hardware that differ in CPU speed
// and in whether they can run containers (paper §1: "Some of these devices
// … cannot run container-based applications but can support a high-level
// language … Others … can run container-based applications").
//
// Every device exposes the same module runtime — an isolated PipeScript
// context per module with the Table-1 host API — which is the paper's
// central trick: a uniform runtime over non-uniform hardware. Container-
// capable devices additionally host stateless service pools; modules call
// services locally when co-located and transparently fall back to remote
// API calls otherwise.
package device

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/metrics"
	"videopipe/internal/services"
	"videopipe/internal/wire"
)

// Class describes the kind of device, which determines its default
// capability profile.
type Class int

// Device classes. Enums start at one.
const (
	Phone Class = iota + 1
	Desktop
	TV
	Laptop
	Watch
	Fridge
)

// String names the class.
func (c Class) String() string {
	switch c {
	case Phone:
		return "phone"
	case Desktop:
		return "desktop"
	case TV:
		return "tv"
	case Laptop:
		return "laptop"
	case Watch:
		return "watch"
	case Fridge:
		return "fridge"
	default:
		return fmt.Sprintf("Class(%d)", int(c))
	}
}

// Profile is a class's default hardware capability.
type Profile struct {
	// CPUFactor scales service compute: 1.0 is the reference desktop.
	CPUFactor float64
	// MediaFactor scales codec work (JPEG encode/decode). Modern consumer
	// devices carry hardware codecs, so this is usually 1.0 even on slow
	// CPUs; wearables and appliances lack them. Zero means same as
	// CPUFactor.
	MediaFactor float64
	// ContainerCapable reports whether the device can host services.
	ContainerCapable bool
}

// DefaultProfile returns the capability profile the paper's testbed
// implies for each class.
func DefaultProfile(c Class) Profile {
	switch c {
	case Desktop:
		return Profile{CPUFactor: 1.0, MediaFactor: 1.0, ContainerCapable: true}
	case Laptop:
		return Profile{CPUFactor: 0.8, MediaFactor: 1.0, ContainerCapable: true}
	case Phone:
		// 2018-flagship class: slow general compute relative to a desktop,
		// but a hardware JPEG codec.
		return Profile{CPUFactor: 0.5, MediaFactor: 1.0, ContainerCapable: false}
	case TV:
		return Profile{CPUFactor: 0.5, MediaFactor: 1.0, ContainerCapable: true}
	case Watch:
		return Profile{CPUFactor: 0.08, MediaFactor: 0.3, ContainerCapable: false}
	case Fridge:
		return Profile{CPUFactor: 0.15, MediaFactor: 0.3, ContainerCapable: false}
	default:
		return Profile{CPUFactor: 0.2}
	}
}

// Config describes one device.
type Config struct {
	// Name is the device's network identity (netsim host name).
	Name string
	// Class is the device kind.
	Class Class
	// Profile overrides the class default when non-zero.
	Profile Profile
}

// Device is a running edge device.
type Device struct {
	name    string
	class   Class
	profile Profile

	transport wire.Transport
	store     *frame.Store
	codec     frame.Codec
	reg       *metrics.Registry

	logf func(format string, args ...any)

	mu        sync.Mutex
	pools     map[string]*services.Pool
	server    *services.Server
	health    *wire.Responder
	remoteDir map[string]string // service name -> "host:port"
	clients   map[string]*services.Client
	modules   map[string]*Module
	closed    bool

	pauseMu  sync.Mutex
	resumeCh chan struct{} // non-nil while paused; closed by Resume
	crashed  bool

	// baseCtx parents every in-flight service call from this device's
	// modules; Crash cancels it so calls blocked on a dead host's pools
	// fail immediately instead of holding event loops until their 30 s
	// deadlines (which would stall migration for the same span).
	baseCtx    context.Context
	baseCancel context.CancelFunc

	// breakerStates mirrors the per-service circuit states of this
	// device's remote-service clients, for monitor reports.
	breakerMu     sync.Mutex
	breakerStates map[string]services.BreakerState
}

// New creates a device on the given transport. reg receives the device's
// measurements; nil creates a private registry.
func New(cfg Config, t wire.Transport, reg *metrics.Registry) (*Device, error) {
	if cfg.Name == "" {
		return nil, fmt.Errorf("device: config missing name")
	}
	if t == nil {
		return nil, fmt.Errorf("device: %s: nil transport", cfg.Name)
	}
	profile := cfg.Profile
	if profile.CPUFactor == 0 {
		profile = DefaultProfile(cfg.Class)
	}
	if profile.MediaFactor == 0 {
		profile.MediaFactor = profile.CPUFactor
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	baseCtx, baseCancel := context.WithCancel(context.Background())
	return &Device{
		name:          cfg.Name,
		class:         cfg.Class,
		profile:       profile,
		transport:     t,
		store:         frame.NewStore(0),
		codec:         paddedCodec{inner: frame.JPEGCodec{Quality: 85}, cpuFactor: profile.MediaFactor},
		reg:           reg,
		pools:         make(map[string]*services.Pool),
		remoteDir:     make(map[string]string),
		clients:       make(map[string]*services.Client),
		modules:       make(map[string]*Module),
		baseCtx:       baseCtx,
		baseCancel:    baseCancel,
		breakerStates: make(map[string]services.BreakerState),
	}, nil
}

// Name reports the device's network name.
func (d *Device) Name() string { return d.name }

// Class reports the device kind.
func (d *Device) Class() Class { return d.class }

// ContainerCapable reports whether services can be deployed here.
func (d *Device) ContainerCapable() bool { return d.profile.ContainerCapable }

// CPUFactor reports the device's relative compute speed.
func (d *Device) CPUFactor() float64 { return d.profile.CPUFactor }

// Store exposes the device's frame store.
func (d *Device) Store() *frame.Store { return d.store }

// Transport exposes the device's network view.
func (d *Device) Transport() wire.Transport { return d.transport }

// Metrics exposes the device's measurement registry.
func (d *Device) Metrics() *metrics.Registry { return d.reg }

// SetCodec overrides the frame codec used for network transfers. The
// codec still pays device-scaled CPU cost.
func (d *Device) SetCodec(c frame.Codec) {
	d.codec = paddedCodec{inner: c, cpuFactor: d.profile.MediaFactor}
}

// SetLogf installs a sink for module log() output; nil silences it.
func (d *Device) SetLogf(logf func(format string, args ...any)) { d.logf = logf }

// DeployService starts a pool of n instances of the service on this
// device. Only container-capable devices may host services (paper §2.2:
// "we can only deploy the services on the devices that support
// containers").
func (d *Device) DeployService(spec services.Spec, n int) (*services.Pool, error) {
	if !d.profile.ContainerCapable {
		return nil, fmt.Errorf("device: %s (%s) cannot run containers", d.name, d.class)
	}
	pool, err := services.NewPool(spec, n, d.profile.CPUFactor)
	if err != nil {
		return nil, err
	}
	pool.Instrument(d.reg)
	d.mu.Lock()
	defer d.mu.Unlock()
	if _, dup := d.pools[spec.Name]; dup {
		return nil, fmt.Errorf("device: %s already hosts %s", d.name, spec.Name)
	}
	d.pools[spec.Name] = pool
	return pool, nil
}

// Pool returns the local pool for a service, if hosted here.
func (d *Device) Pool(name string) (*services.Pool, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	p, ok := d.pools[name]
	return p, ok
}

// ServeServices exposes this device's pools to remote callers at port
// (0 = ephemeral) and returns the bound address. Calling it again is
// idempotent: pools deployed since the first call (the failover
// redeployment path) join the existing server rather than leaking a
// second listener.
func (d *Device) ServeServices(port int) (net.Addr, error) {
	d.mu.Lock()
	pools := make(map[string]*services.Pool, len(d.pools))
	for n, p := range d.pools {
		pools[n] = p
	}
	if srv := d.server; srv != nil {
		d.mu.Unlock()
		for n, p := range pools {
			srv.AddPool(n, p)
		}
		return srv.Addr(), nil
	}
	d.mu.Unlock()
	srv, err := services.NewServer(d.transport, port, pools, d.codec)
	if err != nil {
		return nil, fmt.Errorf("device: %s: %w", d.name, err)
	}
	d.mu.Lock()
	if d.server != nil {
		// Lost a race with a concurrent ServeServices; keep the winner.
		existing := d.server
		d.mu.Unlock()
		srv.Close()
		for n, p := range pools {
			existing.AddPool(n, p)
		}
		return existing.Addr(), nil
	}
	d.server = srv
	d.mu.Unlock()
	return srv.Addr(), nil
}

// ServeHealth binds the device's liveness-probe endpoint (idempotent) and
// returns its address. Replies go through the pause gate, so a paused
// (hung) or crashed device accepts the probe connection but never
// answers — exactly how a wedged host looks from the outside.
func (d *Device) ServeHealth() (net.Addr, error) {
	d.mu.Lock()
	if d.health != nil {
		h := d.health
		d.mu.Unlock()
		return h.Addr(), nil
	}
	d.mu.Unlock()
	resp, err := wire.ListenHealth(d.transport, 0, d.healthGate)
	if err != nil {
		return nil, fmt.Errorf("device: %s: health endpoint: %w", d.name, err)
	}
	d.mu.Lock()
	if d.health != nil {
		h := d.health
		d.mu.Unlock()
		resp.Close()
		return h.Addr(), nil
	}
	d.health = resp
	d.mu.Unlock()
	return resp.Addr(), nil
}

// healthGate blocks health replies while the device is paused or crashed,
// mirroring the module event loops' pause behaviour.
func (d *Device) healthGate(ctx context.Context) error {
	for {
		ch := d.pauseGate()
		if ch == nil {
			return nil
		}
		select {
		case <-ch:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
}

// RegisterRemoteService tells this device where to reach a service it does
// not host.
func (d *Device) RegisterRemoteService(name, address string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.remoteDir[name] = address
}

// CallService invokes a service by name: locally when a pool is hosted
// here (the co-located fast path — no encode, no network), otherwise as a
// remote API call to the registered address.
func (d *Device) CallService(ctx context.Context, name string, args map[string]any, f *frame.Frame) (services.Response, error) {
	start := time.Now()
	resp, remote, err := d.callService(ctx, name, args, f)
	where := "local"
	if remote {
		where = "remote"
	}
	d.reg.Histogram("service." + name + "." + where).Observe(time.Since(start))
	if err != nil {
		// The supervisor watches this meter's rate for error bursts that
		// call for a service restart.
		d.reg.Meter("service." + name + ".errors").Mark()
		if errors.Is(err, context.DeadlineExceeded) {
			d.reg.Meter("rpc.timeouts").Mark()
		}
	}
	return resp, err
}

func (d *Device) callService(ctx context.Context, name string, args map[string]any, f *frame.Frame) (services.Response, bool, error) {
	if pool, ok := d.Pool(name); ok {
		resp, err := pool.Invoke(ctx, services.Request{Args: args, Frame: f})
		return resp, false, err
	}

	d.mu.Lock()
	addr, ok := d.remoteDir[name]
	if !ok {
		d.mu.Unlock()
		return services.Response{}, true, fmt.Errorf("device: %s: service %q neither local nor registered", d.name, name)
	}
	client, ok := d.clients[addr]
	if !ok {
		client = services.NewClient(d.transport, addr, d.codec)
		client.SetBreakerNotify(func(service string, s services.BreakerState) {
			d.breakerMu.Lock()
			d.breakerStates[service] = s
			d.breakerMu.Unlock()
			d.reg.Meter("breaker." + service + "." + s.String()).Mark()
		})
		d.clients[addr] = client
	}
	d.mu.Unlock()

	resp, err := client.Call(ctx, name, args, f)
	return resp, true, err
}

// Pause freezes the device — the chaos engine's reboot/crash hook. Module
// event loops stop consuming events and locally hosted service pools stop
// serving (remote callers block until their deadlines) until Resume.
// Network endpoints stay bound, mirroring a hung rather than powered-off
// host; pair with netsim.Partition to model a full outage.
func (d *Device) Pause() {
	d.pauseMu.Lock()
	if d.resumeCh == nil {
		d.resumeCh = make(chan struct{})
	}
	d.pauseMu.Unlock()
	d.mu.Lock()
	pools := make([]*services.Pool, 0, len(d.pools))
	for _, p := range d.pools {
		pools = append(pools, p)
	}
	d.mu.Unlock()
	for _, p := range pools {
		p.Pause()
	}
}

// Resume releases a paused device; modules and pools pick up where they
// stopped.
func (d *Device) Resume() {
	d.pauseMu.Lock()
	if d.resumeCh != nil {
		close(d.resumeCh)
		d.resumeCh = nil
	}
	d.pauseMu.Unlock()
	d.mu.Lock()
	pools := make([]*services.Pool, 0, len(d.pools))
	for _, p := range d.pools {
		pools = append(pools, p)
	}
	d.mu.Unlock()
	for _, p := range pools {
		p.Resume()
	}
}

// Crash marks the device permanently dead — the chaos engine's
// device_crash hook. Unlike Pause there is no matching Resume in the
// fault model: recovery means the supervisor migrating this device's
// modules and services elsewhere. Cancelling baseCtx first makes every
// in-flight service call from this device's modules fail immediately, so
// their event loops park on the pause gate instead of blocking module
// Close (and hence migration) until a 30 s call deadline.
func (d *Device) Crash() {
	d.pauseMu.Lock()
	if d.crashed {
		d.pauseMu.Unlock()
		return
	}
	d.crashed = true
	d.pauseMu.Unlock()
	d.baseCancel()
	d.Pause()
}

// Crashed reports whether the device has been declared dead via Crash.
func (d *Device) Crashed() bool {
	d.pauseMu.Lock()
	defer d.pauseMu.Unlock()
	return d.crashed
}

// Paused reports whether the device is currently frozen.
func (d *Device) Paused() bool {
	d.pauseMu.Lock()
	defer d.pauseMu.Unlock()
	return d.resumeCh != nil
}

// BreakerStates snapshots the per-service circuit states observed by this
// device's remote-service clients.
func (d *Device) BreakerStates() map[string]services.BreakerState {
	d.breakerMu.Lock()
	defer d.breakerMu.Unlock()
	out := make(map[string]services.BreakerState, len(d.breakerStates))
	for n, s := range d.breakerStates {
		out[n] = s
	}
	return out
}

// pauseGate returns the channel module event loops wait on while the
// device is paused, or nil when running.
func (d *Device) pauseGate() <-chan struct{} {
	d.pauseMu.Lock()
	defer d.pauseMu.Unlock()
	return d.resumeCh
}

// HasService reports whether the device can reach the named service at
// all (locally or remotely).
func (d *Device) HasService(name string) bool {
	if _, ok := d.Pool(name); ok {
		return true
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	_, ok := d.remoteDir[name]
	return ok
}

// Close stops the device: modules, service server and clients.
func (d *Device) Close() error {
	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return nil
	}
	d.closed = true
	mods := make([]*Module, 0, len(d.modules))
	for _, m := range d.modules {
		mods = append(mods, m)
	}
	server := d.server
	health := d.health
	clients := make([]*services.Client, 0, len(d.clients))
	for _, c := range d.clients {
		clients = append(clients, c)
	}
	d.mu.Unlock()

	for _, m := range mods {
		m.Close()
	}
	// Modules are down; cancel the service-call context purely as cleanup.
	d.baseCancel()
	if server != nil {
		server.Close()
	}
	if health != nil {
		health.Close()
	}
	for _, c := range clients {
		c.Close()
	}
	return nil
}

// DropModule forgets a module without closing it — the migration path:
// the module has already been closed explicitly and its replacement lives
// on another device, so this (possibly dead) device must not re-close it
// during teardown.
func (d *Device) DropModule(name string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	delete(d.modules, name)
}

// ParseClass parses a device class name from a configuration file.
func ParseClass(s string) (Class, error) {
	for _, c := range []Class{Phone, Desktop, TV, Laptop, Watch, Fridge} {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("device: unknown device class %q", s)
}
