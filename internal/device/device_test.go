package device

import (
	"context"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/netsim"
	"videopipe/internal/services"
	"videopipe/internal/vision"
)

func testNet() *netsim.Network { return netsim.NewNetwork(netsim.LinkProfile{}) }

func newDevice(t *testing.T, nw *netsim.Network, name string, class Class) *Device {
	t.Helper()
	d, err := New(Config{Name: name, Class: class}, nw.Host(name), nil)
	if err != nil {
		t.Fatalf("New(%s): %v", name, err)
	}
	t.Cleanup(func() { d.Close() })
	return d
}

// echoSpec returns a trivial service spec that echoes its args.
func echoSpec(name string) services.Spec {
	return services.Spec{
		Name: name,
		Handler: func(_ context.Context, req services.Request) (services.Response, error) {
			out := map[string]any{"echo": true}
			for k, v := range req.Args {
				out[k] = v
			}
			if req.Frame != nil {
				out["frame_w"] = float64(req.Frame.Width)
			}
			return services.Response{Result: out}, nil
		},
	}
}

func TestNewValidation(t *testing.T) {
	nw := testNet()
	if _, err := New(Config{}, nw.Host("x"), nil); err == nil {
		t.Error("empty name accepted")
	}
	if _, err := New(Config{Name: "x"}, nil, nil); err == nil {
		t.Error("nil transport accepted")
	}
}

func TestDefaultProfiles(t *testing.T) {
	if !DefaultProfile(Desktop).ContainerCapable {
		t.Error("desktop not container capable")
	}
	if DefaultProfile(Phone).ContainerCapable {
		t.Error("phone container capable")
	}
	if DefaultProfile(Desktop).CPUFactor != 1.0 {
		t.Error("desktop is not the reference CPU")
	}
	if DefaultProfile(Watch).CPUFactor >= DefaultProfile(Phone).CPUFactor {
		t.Error("watch should be slower than phone")
	}
}

func TestDeployServiceCapability(t *testing.T) {
	nw := testNet()
	phone := newDevice(t, nw, "phone", Phone)
	if _, err := phone.DeployService(echoSpec("s"), 1); err == nil {
		t.Error("phone (no containers) deployed a service")
	}
	desktop := newDevice(t, nw, "desktop", Desktop)
	if _, err := desktop.DeployService(echoSpec("s"), 1); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	if _, err := desktop.DeployService(echoSpec("s"), 1); err == nil {
		t.Error("duplicate service deployment accepted")
	}
	if _, ok := desktop.Pool("s"); !ok {
		t.Error("pool not registered")
	}
}

func TestCallServiceLocalAndRemote(t *testing.T) {
	nw := testNet()
	desktop := newDevice(t, nw, "desktop", Desktop)
	phone := newDevice(t, nw, "phone", Phone)

	if _, err := desktop.DeployService(echoSpec("echo"), 1); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	addr, err := desktop.ServeServices(0)
	if err != nil {
		t.Fatalf("ServeServices: %v", err)
	}
	phone.RegisterRemoteService("echo", addr.String())

	ctx := context.Background()
	f := frame.MustNew(32, 16)

	// Local call from the desktop.
	resp, err := desktop.CallService(ctx, "echo", map[string]any{"k": "v"}, f)
	if err != nil {
		t.Fatalf("local CallService: %v", err)
	}
	if resp.Result["k"] != "v" || resp.Result["frame_w"] != float64(32) {
		t.Errorf("local result = %v", resp.Result)
	}

	// Remote call from the phone (frame crosses the wire).
	resp, err = phone.CallService(ctx, "echo", map[string]any{"k": "v2"}, f)
	if err != nil {
		t.Fatalf("remote CallService: %v", err)
	}
	if resp.Result["k"] != "v2" || resp.Result["frame_w"] != float64(32) {
		t.Errorf("remote result = %v", resp.Result)
	}

	// Metric split records local vs remote.
	if desktop.Metrics().Histogram("service.echo.local").Count() == 0 {
		t.Error("local call not recorded")
	}
	if phone.Metrics().Histogram("service.echo.remote").Count() == 0 {
		t.Error("remote call not recorded")
	}

	// Unknown service.
	if _, err := phone.CallService(ctx, "nope", nil, nil); err == nil {
		t.Error("unknown service call succeeded")
	}
	if !phone.HasService("echo") || phone.HasService("nope") {
		t.Error("HasService wrong")
	}
}

func TestSpawnModuleValidation(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	if _, err := d.SpawnModule(ModuleSpec{Source: "1"}); err == nil {
		t.Error("missing name accepted")
	}
	if _, err := d.SpawnModule(ModuleSpec{Name: "m"}); err == nil {
		t.Error("missing source accepted")
	}
	if _, err := d.SpawnModule(ModuleSpec{Name: "m", Source: "var x = ;"}); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := d.SpawnModule(ModuleSpec{Name: "m", Source: "var ok = 1;"}); err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	if _, err := d.SpawnModule(ModuleSpec{Name: "m", Source: "var ok = 1;"}); err == nil {
		t.Error("duplicate module accepted")
	}
}

func TestModuleInitAndEvents(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		var inits = 0;
		var seen = [];
		function init() { inits++; }
		function event_received(message) {
			push(seen, message.value);
			metric("seen_count", len(seen));
		}
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "acc", Source: src})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	ctx := context.Background()
	for i := 1; i <= 3; i++ {
		if err := m.Inject(ctx, map[string]any{"value": float64(i)}, nil); err != nil {
			t.Fatalf("Inject: %v", err)
		}
	}
	waitFor(t, func() bool {
		return d.Metrics().Meter("module.acc.events").Count() == 3
	})
	if errs := d.Metrics().Meter("module.acc.errors").Count(); errs != 0 {
		t.Errorf("module errors = %d", errs)
	}
	if got := d.Metrics().Histogram("stage.seen_count").Count(); got != 3 {
		t.Errorf("metric() observations = %d", got)
	}
}

func TestModuleCallServiceWithFrame(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	if _, err := d.DeployService(echoSpec("analyze"), 1); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	src := `
		function event_received(message) {
			var r = call_service("analyze", {frame_ref: message.frame_ref, tag: "t"});
			metric("frame_w", r.frame_w);
		}
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "caller", Source: src, Services: []string{"analyze"}})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	if err := m.Inject(context.Background(), nil, frame.MustNew(48, 48)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool {
		return d.Metrics().Histogram("stage.frame_w").Count() == 1
	})
	if got := d.Metrics().Histogram("stage.frame_w").Mean(); got != 48*time.Millisecond {
		t.Errorf("service saw frame width %v, want 48 (as ms)", got)
	}
	// Frame refs released after the event.
	waitFor(t, func() bool { return d.Store().Len() == 0 })
}

func TestModuleServicePermissionEnforced(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	if _, err := d.DeployService(echoSpec("allowed"), 1); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	if _, err := d.DeployService(echoSpec("forbidden"), 1); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	src := `
		var denied = false;
		function event_received(message) {
			try { call_service("forbidden", {}); }
			catch (e) { denied = true; metric("denied", 1); }
		}
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "m", Source: src, Services: []string{"allowed"}})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	m.Inject(context.Background(), nil, nil)
	waitFor(t, func() bool {
		return d.Metrics().Histogram("stage.denied").Count() == 1
	})
}

func TestModuleChainLocalFrameByReference(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)

	first := `
		function event_received(message) {
			call_module("second", {frame_ref: message.frame_ref, hop: 1});
		}
	`
	second := `
		function event_received(message) {
			if (message.frame_ref != null && message.hop == 1) {
				metric("arrived", 1);
			}
			frame_done();
		}
	`
	if _, err := d.SpawnModule(ModuleSpec{Name: "second", Source: second}); err != nil {
		t.Fatalf("SpawnModule(second): %v", err)
	}
	m1, err := d.SpawnModule(ModuleSpec{
		Name: "first", Source: first,
		Next: []Route{{Module: "second"}}, // local edge
	})
	if err != nil {
		t.Fatalf("SpawnModule(first): %v", err)
	}

	var credits atomic.Int64
	sec, _ := d.Module("second")
	sec.SetFrameDone(func() { credits.Add(1) })

	f := frame.MustNew(16, 16)
	f.Captured = time.Now()
	if err := m1.Inject(context.Background(), nil, f); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool { return credits.Load() == 1 })
	if got := d.Metrics().Histogram("stage.arrived").Count(); got != 1 {
		t.Errorf("frame did not arrive by reference: %d", got)
	}
	if got := d.Metrics().Histogram("pipeline.second.e2e").Count(); got != 1 {
		t.Errorf("e2e latency not recorded: %d", got)
	}
	// All references released after both events completed.
	waitFor(t, func() bool { return d.Store().Len() == 0 })
}

func TestModuleChainRemote(t *testing.T) {
	nw := testNet()
	phone := newDevice(t, nw, "phone", Phone)
	desktop := newDevice(t, nw, "desktop", Desktop)

	receiver := `
		function event_received(message) {
			if (message.frame_ref != null) {
				var r = call_service("analyze", {frame_ref: message.frame_ref});
				metric("remote_w", r.frame_w);
			}
		}
	`
	if _, err := desktop.DeployService(echoSpec("analyze"), 1); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	recv, err := desktop.SpawnModule(ModuleSpec{Name: "recv", Source: receiver, Services: []string{"analyze"}})
	if err != nil {
		t.Fatalf("SpawnModule(recv): %v", err)
	}

	sender := `
		function event_received(message) {
			call_module("recv", {frame_ref: message.frame_ref, note: "hi"});
		}
	`
	send, err := phone.SpawnModule(ModuleSpec{
		Name: "send", Source: sender,
		Next: []Route{{Module: "recv", Address: recv.Addr().String()}},
	})
	if err != nil {
		t.Fatalf("SpawnModule(send): %v", err)
	}

	if err := send.Inject(context.Background(), nil, frame.MustNew(64, 32)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool {
		return desktop.Metrics().Histogram("stage.remote_w").Count() == 1
	})
	// Sender encoded the frame for the wire.
	if phone.Metrics().Histogram("module.send.encode").Count() == 0 {
		t.Error("no encode recorded for remote transfer")
	}
	// Both stores drain.
	waitFor(t, func() bool { return phone.Store().Len() == 0 && desktop.Store().Len() == 0 })
}

func TestModuleUnknownEdgeRejected(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		function event_received(message) {
			try { call_module("ghost", {}); }
			catch (e) { metric("rejected", 1); }
		}
	`
	m, _ := d.SpawnModule(ModuleSpec{Name: "m", Source: src})
	m.Inject(context.Background(), nil, nil)
	waitFor(t, func() bool {
		return d.Metrics().Histogram("stage.rejected").Count() == 1
	})
}

func TestTryInjectDropsWhenBusy(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		function event_received(message) {
			var t0 = now_ms();
			while (now_ms() - t0 < 50) {}
		}
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "slow", Source: src})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	accepted, dropped := 0, 0
	for i := 0; i < 10; i++ {
		ok, err := m.TryInject(map[string]any{"i": float64(i)}, nil)
		if err != nil {
			t.Fatalf("TryInject: %v", err)
		}
		if ok {
			accepted++
		} else {
			dropped++
		}
		time.Sleep(2 * time.Millisecond)
	}
	if dropped == 0 {
		t.Error("no drops despite busy module — queue-free design violated")
	}
	if accepted == 0 {
		t.Error("nothing accepted")
	}
	// Dropped frames must not leak store entries.
	waitFor(t, func() bool { return d.Store().Len() == 0 })
}

func TestModuleLogSink(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	var logged atomic.Int64
	var lastMsg atomic.Value
	d.SetLogf(func(format string, args ...any) {
		logged.Add(1)
		lastMsg.Store(fmt.Sprintf(format, args...))
	})
	src := `function event_received(message) { log("frame", message.n); }`
	m, _ := d.SpawnModule(ModuleSpec{Name: "logger", Source: src})
	m.Inject(context.Background(), map[string]any{"n": float64(7)}, nil)
	waitFor(t, func() bool { return logged.Load() == 1 })
	if s, _ := lastMsg.Load().(string); !strings.Contains(s, "desktop/logger") || !strings.Contains(s, "7") {
		t.Errorf("log output = %q", s)
	}
}

func TestModuleUsesPoseServiceEndToEnd(t *testing.T) {
	// Integration: script module calls the real pose detector on a rendered
	// frame, co-located on one desktop.
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	spec := services.Spec{
		Name: services.PoseDetector,
		Handler: func(_ context.Context, req services.Request) (services.Response, error) {
			pose, found := vision.DetectPose(req.Frame)
			res := map[string]any{"found": found}
			if found {
				res["pose"] = pose.ToMap()
			}
			return services.Response{Result: res}, nil
		},
	}
	if _, err := d.DeployService(spec, 1); err != nil {
		t.Fatalf("DeployService: %v", err)
	}

	src := `
		function event_received(message) {
			var r = call_service("pose_detector", {frame_ref: message.frame_ref});
			if (r.found) {
				var nose = r.pose.keypoints[0];
				metric("nose_x", nose.x);
			}
			frame_done();
		}
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "posed", Source: src, Services: []string{services.PoseDetector}})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}

	f := frame.MustNew(640, 480)
	truth := vision.SynthesizePose(vision.Idle, 0, vision.DefaultSubject(), nil)
	vision.RenderScene(f, truth)
	if err := m.Inject(context.Background(), nil, f); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool {
		return d.Metrics().Histogram("stage.nose_x").Count() == 1
	})
	noseX := d.Metrics().Histogram("stage.nose_x").Mean()
	wantX := time.Duration(truth.Keypoints[vision.Nose].X * float64(time.Millisecond))
	diff := noseX - wantX
	if diff < 0 {
		diff = -diff
	}
	if diff > 5*time.Millisecond {
		t.Errorf("script saw nose x %v, truth %v", noseX, wantX)
	}
}

func TestDeviceCloseIdempotent(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	d.SpawnModule(ModuleSpec{Name: "m", Source: "var x = 1;"})
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := d.SpawnModule(ModuleSpec{Name: "late", Source: "var y = 1;"}); err != nil {
		// Spawning after close is allowed to fail or succeed; just must not
		// panic. Nothing to assert.
		_ = err
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal("condition not met within 5s")
}

func TestDeviceAccessors(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	if d.Name() != "desktop" {
		t.Errorf("Name = %q", d.Name())
	}
	if d.Class() != Desktop || d.Class().String() != "desktop" {
		t.Errorf("Class = %v", d.Class())
	}
	if !d.ContainerCapable() {
		t.Error("desktop not container capable")
	}
	if d.CPUFactor() != 1.0 {
		t.Errorf("CPUFactor = %v", d.CPUFactor())
	}
	if d.Transport() == nil {
		t.Error("nil transport")
	}
}

func TestClassStrings(t *testing.T) {
	want := map[Class]string{
		Phone: "phone", Desktop: "desktop", TV: "tv",
		Laptop: "laptop", Watch: "watch", Fridge: "fridge",
	}
	for c, s := range want {
		if c.String() != s {
			t.Errorf("Class(%d).String() = %q, want %q", c, c.String(), s)
		}
	}
	if !strings.Contains(Class(99).String(), "99") {
		t.Errorf("invalid class String = %q", Class(99).String())
	}
}

func TestDefaultProfilesComplete(t *testing.T) {
	for _, c := range []Class{Phone, Desktop, TV, Laptop, Watch, Fridge} {
		p := DefaultProfile(c)
		if p.CPUFactor <= 0 {
			t.Errorf("%s: cpu factor %v", c, p.CPUFactor)
		}
	}
	if DefaultProfile(Class(99)).CPUFactor <= 0 {
		t.Error("unknown class has no fallback profile")
	}
	// Media factors: consumer devices have hardware codecs; wearables and
	// appliances do not.
	if DefaultProfile(Phone).MediaFactor != 1.0 {
		t.Error("phone should have a hardware codec")
	}
	if DefaultProfile(Watch).MediaFactor >= 1.0 {
		t.Error("watch should lack a hardware codec")
	}
}

func TestPaddedCodecScalesTime(t *testing.T) {
	f := frame.MustNew(160, 120)
	inner := frame.JPEGCodec{Quality: 85}
	fast := paddedCodec{inner: inner, cpuFactor: 1.0}
	slow := paddedCodec{inner: inner, cpuFactor: 0.1}
	if fast.Name() != "jpeg" {
		t.Errorf("Name = %q", fast.Name())
	}

	start := time.Now()
	data, err := fast.Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	fastTime := time.Since(start)

	start = time.Now()
	if _, err := slow.Encode(f); err != nil {
		t.Fatalf("slow Encode: %v", err)
	}
	slowTime := time.Since(start)
	// Loose bound: CI scheduling noise can compress the gap.
	if slowTime < 3*fastTime {
		t.Errorf("slow codec %v not much slower than fast %v", slowTime, fastTime)
	}

	// Decode path pads too, and round trips.
	if _, err := slow.Decode(data); err != nil {
		t.Fatalf("Decode: %v", err)
	}
}

func TestSetCodecKeepsPadding(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "watch", Watch) // MediaFactor 0.3
	d.SetCodec(frame.RawCodec{})
	pc, ok := d.codec.(paddedCodec)
	if !ok {
		t.Fatalf("codec type %T", d.codec)
	}
	if pc.Name() != "raw" {
		t.Errorf("inner codec %q", pc.Name())
	}
	if pc.cpuFactor != 0.3 {
		t.Errorf("pad factor %v, want media factor 0.3", pc.cpuFactor)
	}
}

func TestModuleInjectContextCancelled(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	// A module that never drains its channel.
	src := `function event_received(message) { var t0 = now_ms(); while (now_ms() - t0 < 300) {} }`
	m, err := d.SpawnModule(ModuleSpec{Name: "busy", Source: src})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	// Fill the slot and occupy the handler.
	m.Inject(context.Background(), nil, frame.MustNew(4, 4))
	m.Inject(context.Background(), nil, frame.MustNew(4, 4))

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	if err := m.Inject(ctx, nil, frame.MustNew(4, 4)); err == nil {
		t.Error("Inject into saturated module with expired ctx succeeded")
	}
	// The cancelled inject's frame must not leak.
	waitFor(t, func() bool { return d.Store().Len() == 0 })
}

func TestModuleFanOutRetainsPerDestination(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	sink := `function event_received(message) {
		if (message.frame_ref != null) { metric("got_frame", 1); }
	}`
	if _, err := d.SpawnModule(ModuleSpec{Name: "left", Source: sink}); err != nil {
		t.Fatal(err)
	}
	if _, err := d.SpawnModule(ModuleSpec{Name: "right", Source: sink}); err != nil {
		t.Fatal(err)
	}
	fan := `function event_received(message) {
		call_module("left", {frame_ref: message.frame_ref});
		call_module("right", {frame_ref: message.frame_ref});
	}`
	m, err := d.SpawnModule(ModuleSpec{
		Name: "fan", Source: fan,
		Next: []Route{{Module: "left"}, {Module: "right"}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Inject(context.Background(), nil, frame.MustNew(8, 8)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool {
		return d.Metrics().Histogram("stage.got_frame").Count() == 2
	})
	// Both branches done: every reference released.
	waitFor(t, func() bool { return d.Store().Len() == 0 })
}

func TestHostMetricValidation(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		function event_received(message) {
			var failures = 0;
			try { metric(); } catch (e) { failures++; }
			try { metric(42, 1); } catch (e) { failures++; }
			try { metric("name", "notanumber"); } catch (e) { failures++; }
			metric("failures", failures);
		}
	`
	m, _ := d.SpawnModule(ModuleSpec{Name: "m", Source: src})
	m.Inject(context.Background(), nil, nil)
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.failures").Count() == 1 })
	if got := d.Metrics().Histogram("stage.failures").Mean(); got != 3*time.Millisecond {
		t.Errorf("metric() validation failures = %v, want 3 (as ms)", got)
	}
}

func TestCallServiceValidationFromScript(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	if _, err := d.DeployService(echoSpec("svc"), 1); err != nil {
		t.Fatal(err)
	}
	src := `
		function event_received(message) {
			var failures = 0;
			try { call_service(); } catch (e) { failures++; }
			try { call_service(42); } catch (e) { failures++; }
			try { call_service("svc", "not an object"); } catch (e) { failures++; }
			try { call_service("svc", {frame_ref: "bad"}); } catch (e) { failures++; }
			try { call_service("svc", {frame_ref: 99999}); } catch (e) { failures++; }
			metric("failures", failures);
		}
	`
	m, _ := d.SpawnModule(ModuleSpec{Name: "m", Source: src, Services: []string{"svc"}})
	m.Inject(context.Background(), nil, nil)
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.failures").Count() == 1 })
	if got := d.Metrics().Histogram("stage.failures").Mean(); got != 5*time.Millisecond {
		t.Errorf("call_service validation failures = %v, want 5 (as ms)", got)
	}
}

func TestCallModuleValidationFromScript(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	if _, err := d.SpawnModule(ModuleSpec{Name: "next", Source: "function event_received(m) {}"}); err != nil {
		t.Fatal(err)
	}
	src := `
		function event_received(message) {
			var failures = 0;
			try { call_module(); } catch (e) { failures++; }
			try { call_module(7); } catch (e) { failures++; }
			try { call_module("next", 5); } catch (e) { failures++; }
			try { call_module("next", {frame_ref: "bad"}); } catch (e) { failures++; }
			metric("failures", failures);
		}
	`
	m, _ := d.SpawnModule(ModuleSpec{Name: "m", Source: src, Next: []Route{{Module: "next"}}})
	m.Inject(context.Background(), nil, nil)
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.failures").Count() == 1 })
	if got := d.Metrics().Histogram("stage.failures").Mean(); got != 4*time.Millisecond {
		t.Errorf("call_module validation failures = %v, want 4 (as ms)", got)
	}
}

func TestModuleUpdateSourceHotSwap(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	v1 := `
		var inits = 0;
		function init() { inits++; metric("v1_init", 1); }
		function event_received(message) { metric("v1_events", 1); }
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "hot", Source: v1})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	ctx := context.Background()
	m.Inject(ctx, nil, nil)
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.v1_events").Count() == 1 })

	// A syntactically broken update must be rejected without disturbing
	// the running code.
	if err := m.UpdateSource("var broken = ;"); err == nil {
		t.Error("broken update accepted")
	}
	if err := m.UpdateSource(""); err == nil {
		t.Error("empty update accepted")
	}
	m.Inject(ctx, nil, nil)
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.v1_events").Count() == 2 })

	// A valid update swaps behaviour and runs the new init().
	v2 := `
		function init() { metric("v2_init", 1); }
		function event_received(message) { metric("v2_events", 1); }
	`
	if err := m.UpdateSource(v2); err != nil {
		t.Fatalf("UpdateSource: %v", err)
	}
	waitFor(t, func() bool { return d.Metrics().Meter("module.hot.updates").Count() == 1 })
	if got := d.Metrics().Histogram("stage.v2_init").Count(); got != 1 {
		t.Errorf("new init ran %d times, want 1", got)
	}
	m.Inject(ctx, nil, nil)
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.v2_events").Count() == 1 })
	if got := d.Metrics().Histogram("stage.v1_events").Count(); got != 2 {
		t.Errorf("old code still running: v1_events = %d", got)
	}
}

func TestModuleUpdateKeepsEndpointAndRoutes(t *testing.T) {
	nw := testNet()
	phone := newDevice(t, nw, "phone", Phone)
	desktop := newDevice(t, nw, "desktop", Desktop)

	recv, err := desktop.SpawnModule(ModuleSpec{
		Name:   "recv",
		Source: `function event_received(m) { metric("received", m.tag); }`,
	})
	if err != nil {
		t.Fatal(err)
	}
	send, err := phone.SpawnModule(ModuleSpec{
		Name:   "send",
		Source: `function event_received(m) { call_module("recv", {tag: 1}); }`,
		Next:   []Route{{Module: "recv", Address: recv.Addr().String()}},
	})
	if err != nil {
		t.Fatal(err)
	}
	send.Inject(context.Background(), nil, nil)
	waitFor(t, func() bool { return desktop.Metrics().Histogram("stage.received").Count() == 1 })

	// After the hot swap the same DAG edge still routes.
	if err := send.UpdateSource(`function event_received(m) { call_module("recv", {tag: 2}); }`); err != nil {
		t.Fatalf("UpdateSource: %v", err)
	}
	waitFor(t, func() bool { return phone.Metrics().Meter("module.send.updates").Count() == 1 })
	send.Inject(context.Background(), nil, nil)
	waitFor(t, func() bool { return desktop.Metrics().Histogram("stage.received").Count() == 2 })
	if got := desktop.Metrics().Histogram("stage.received").Max(); got != 2*time.Millisecond {
		t.Errorf("updated sender's tag = %v, want 2ms", got)
	}
}

func TestDevicePauseFreezesModulesAndPools(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	if _, err := d.DeployService(echoSpec("svc"), 1); err != nil {
		t.Fatalf("DeployService: %v", err)
	}
	src := `
		function event_received(message) { metric("handled", 1); }
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "m", Source: src})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}

	if err := m.Inject(context.Background(), nil, nil); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.handled").Count() == 1 })

	if d.Paused() {
		t.Error("fresh device reports paused")
	}
	d.Pause()
	if !d.Paused() {
		t.Error("Paused() false after Pause")
	}

	// Events injected during the pause are held, not processed.
	if err := m.Inject(context.Background(), nil, nil); err != nil {
		t.Fatalf("Inject while paused: %v", err)
	}
	time.Sleep(60 * time.Millisecond)
	if got := d.Metrics().Histogram("stage.handled").Count(); got != 1 {
		t.Errorf("paused module handled %d events, want 1 (pre-pause only)", got)
	}

	// Hosted pools are frozen too: a bounded call fails on deadline.
	ctx, cancel := context.WithTimeout(context.Background(), 40*time.Millisecond)
	if _, err := d.CallService(ctx, "svc", nil, nil); err == nil {
		t.Error("service call on a paused device succeeded")
	}
	cancel()

	// Resume: the held event drains and new work flows.
	d.Resume()
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.handled").Count() == 2 })
	if _, err := d.CallService(context.Background(), "svc", nil, nil); err != nil {
		t.Errorf("service call after resume: %v", err)
	}
	if d.Paused() {
		t.Error("Paused() true after Resume")
	}
}

func TestModulePausedCloseReleasesHeldFrame(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		function event_received(message) { frame_done(); }
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "m", Source: src})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	d.Pause()
	if err := m.Inject(context.Background(), nil, frame.MustNew(16, 16)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	time.Sleep(30 * time.Millisecond)
	// Closing a paused module must not deadlock or leak the held frame.
	m.Close()
	d.Resume()
	waitFor(t, func() bool { return d.Store().Len() == 0 })
}

func TestModuleAbandonedFrameReturnsCredit(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		function event_received(message) {
			if (message.fail) { boom(); } // undefined function: runtime error
			frame_done();
		}
	`
	m, err := d.SpawnModule(ModuleSpec{Name: "m", Source: src})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	var done, abandoned atomic.Int64
	m.SetFrameDone(func() { done.Add(1) })
	m.SetFrameAbandoned(func() { abandoned.Add(1) })

	if err := m.Inject(context.Background(), map[string]any{"fail": true}, frame.MustNew(8, 8)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool { return abandoned.Load() == 1 })
	if done.Load() != 0 {
		t.Errorf("frame_done fired on a failing event: %d", done.Load())
	}

	// A successful event fires frame_done, not the abandoned hook.
	if err := m.Inject(context.Background(), nil, frame.MustNew(8, 8)); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool { return done.Load() == 1 })
	if abandoned.Load() != 1 {
		t.Errorf("abandoned fired on a successful event: %d", abandoned.Load())
	}

	// An error without a frame returns no credit (nothing was consumed).
	if err := m.Inject(context.Background(), map[string]any{"fail": true}, nil); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool { return d.Metrics().Meter("module.m.errors").Count() == 2 })
	if abandoned.Load() != 1 {
		t.Errorf("frameless error returned a credit: %d", abandoned.Load())
	}
	if got := d.Metrics().Meter("module.m.abandoned").Count(); got != 1 {
		t.Errorf("abandoned meter = %d, want 1", got)
	}
}
