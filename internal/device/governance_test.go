package device

import (
	"context"
	"sync/atomic"
	"testing"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/script"
)

// TestModuleBreachKillQuarantine walks the full sandbox discipline: each
// runaway event breaches the instruction budget, the third consecutive
// breach kills the module, and a killed module abandons every further
// event so frame credits keep flowing back to the source.
func TestModuleBreachKillQuarantine(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	m, err := d.SpawnModule(ModuleSpec{
		Name:   "runaway",
		Source: `function event_received(m) { while (true) {} }`,
		Limits: script.Limits{Instructions: 5000},
	})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	var abandoned atomic.Int64
	m.SetFrameAbandoned(func() { abandoned.Add(1) })

	ctx := context.Background()
	for i := 0; i < DefaultMaxBreaches; i++ {
		if err := m.Inject(ctx, nil, frame.MustNew(4, 4)); err != nil {
			t.Fatalf("Inject %d: %v", i, err)
		}
	}
	waitFor(t, func() bool { return m.Killed() })
	if got := d.Metrics().Meter("script.runaway.breaches").Count(); got != DefaultMaxBreaches {
		t.Errorf("breaches = %d, want %d", got, DefaultMaxBreaches)
	}
	if got := d.Metrics().Meter("script.runaway.killed").Count(); got != 1 {
		t.Errorf("killed meter = %d, want 1", got)
	}
	// Every breached event abandoned its frame (credit returned).
	waitFor(t, func() bool { return abandoned.Load() == DefaultMaxBreaches })

	// Quarantine: events after the kill never reach the handler; their
	// frames are abandoned immediately and the store drains.
	events := d.Metrics().Meter("module.runaway.events").Count()
	if err := m.Inject(ctx, nil, frame.MustNew(4, 4)); err != nil {
		t.Fatalf("Inject after kill: %v", err)
	}
	waitFor(t, func() bool { return abandoned.Load() == DefaultMaxBreaches+1 })
	if got := d.Metrics().Meter("module.runaway.events").Count(); got != events {
		t.Errorf("quarantined event reached the handler (events %d -> %d)", events, got)
	}
	waitFor(t, func() bool { return d.Store().Len() == 0 })
}

// TestModuleBreachCountResetsOnSuccess: the kill threshold demands
// consecutive breaches — an occasional expensive event is tolerated.
func TestModuleBreachCountResetsOnSuccess(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		function event_received(m) {
			if (m.spin > 0) { while (true) {} }
		}
	`
	m, err := d.SpawnModule(ModuleSpec{
		Name:   "sometimes",
		Source: src,
		Limits: script.Limits{Instructions: 5000},
	})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	ctx := context.Background()
	// breach, breach, success — repeated: never 3 consecutive breaches.
	for round := 0; round < 3; round++ {
		for _, spin := range []float64{1, 1, 0} {
			if err := m.Inject(ctx, map[string]any{"spin": spin}, nil); err != nil {
				t.Fatalf("Inject: %v", err)
			}
		}
	}
	waitFor(t, func() bool {
		return d.Metrics().Meter("script.sometimes.breaches").Count() == 6
	})
	if m.Killed() {
		t.Error("module killed despite breach count resetting on success")
	}
}

// TestModuleOutputBudgetBreach: bytes emitted through the log host call
// count against output_limit, and the breach is uncatchable by script.
func TestModuleOutputBudgetBreach(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		function event_received(m) {
			try { log("0123456789012345678901234567890123456789"); } catch (e) {}
			log("should never run: the handler is already dead");
		}
	`
	m, err := d.SpawnModule(ModuleSpec{
		Name:   "chatty",
		Source: src,
		Limits: script.Limits{Output: 16},
	})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	if err := m.Inject(context.Background(), nil, nil); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool {
		return d.Metrics().Meter("script.chatty.breaches").Count() == 1
	})
	if got := d.Metrics().Meter("module.chatty.logs").Count(); got != 0 {
		t.Errorf("logs emitted = %d, want 0 (both exceed the 16-byte budget)", got)
	}
}

// TestModuleRestoreVersionGate: preserved state is restored only when its
// _PRESERVATION_VERSION matches the code now running; a mismatch discards
// it and the module starts fresh.
func TestModuleRestoreVersionGate(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)
	src := `
		var _PRESERVATION_VERSION = 1;
		var total = 0;
		function event_received(m) { total = total + m.value; metric("total", total); }
	`
	m1, err := d.SpawnModule(ModuleSpec{Name: "counter", Source: src})
	if err != nil {
		t.Fatalf("SpawnModule: %v", err)
	}
	if err := m1.Inject(context.Background(), map[string]any{"value": float64(5)}, nil); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool { return d.Metrics().Meter("module.counter.events").Count() == 1 })
	m1.Close()
	snap := m1.SnapshotState()
	if snap.Version() != 1 {
		t.Fatalf("snapshot version = %d, want 1", snap.Version())
	}

	// Same version: state carries over (total resumes at 5).
	m2, err := d.SpawnModule(ModuleSpec{Name: "counter2", Source: src, Restore: snap})
	if err != nil {
		t.Fatalf("SpawnModule counter2: %v", err)
	}
	if err := m2.Inject(context.Background(), map[string]any{"value": float64(1)}, nil); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.total").Count() == 2 })
	if got := d.Metrics().Histogram("stage.total").Max(); got != 6*time.Millisecond {
		t.Errorf("restored total observation = %v, want 6 (as ms)", got)
	}

	// Version bump: the old snapshot is discarded, total restarts at 0.
	srcV2 := `
		var _PRESERVATION_VERSION = 2;
		var total = 0;
		function event_received(m) { total = total + m.value; metric("total2", total); }
	`
	m3, err := d.SpawnModule(ModuleSpec{Name: "counter3", Source: srcV2, Restore: snap})
	if err != nil {
		t.Fatalf("SpawnModule counter3: %v", err)
	}
	waitFor(t, func() bool {
		return d.Metrics().Meter("module.counter3.restore_discarded").Count() == 1
	})
	if err := m3.Inject(context.Background(), map[string]any{"value": float64(2)}, nil); err != nil {
		t.Fatalf("Inject: %v", err)
	}
	waitFor(t, func() bool { return d.Metrics().Histogram("stage.total2").Count() == 1 })
	if got := d.Metrics().Histogram("stage.total2").Max(); got != 2*time.Millisecond {
		t.Errorf("fresh total observation = %v, want 2 (as ms)", got)
	}
}
