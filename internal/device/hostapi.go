package device

import (
	"context"
	"encoding/json"
	"fmt"
	"time"
	"videopipe/internal/frame"

	"videopipe/internal/script"
	"videopipe/internal/wire"
)

// serviceCallTimeout bounds one service invocation from a module.
const serviceCallTimeout = 30 * time.Second

// chargeOutput meters n bytes of host-emitted payload (call_module /
// call_service / log) against the module's per-event output budget.
// Frame pixel payloads are exempt — they travel by reference under the
// store's own accounting; the budget is for the data a module *generates*.
func (m *Module) chargeOutput(n int) error {
	if m.limits.Output <= 0 {
		return nil
	}
	m.outputUsed += int64(n)
	if m.outputUsed > m.limits.Output {
		return &script.BudgetError{
			Resource: script.ResourceOutput,
			Limit:    m.limits.Output,
			Used:     m.outputUsed,
		}
	}
	return nil
}

// payloadSize estimates the emitted size of a ToGo-converted message body:
// strings by length, scalars by word, containers by per-slot overhead plus
// contents. It mirrors the script layer's allocation accounting.
func payloadSize(v any) int {
	switch x := v.(type) {
	case string:
		return len(x) + 16
	case []any:
		n := 24
		for _, e := range x {
			n += 16 + payloadSize(e)
		}
		return n
	case map[string]any:
		n := 48
		for k, e := range x {
			n += 16 + len(k) + payloadSize(e)
		}
		return n
	case nil:
		return 0
	default:
		return 8
	}
}

// bindHostAPI installs the Table-1 module interface plus runtime helpers
// into the module's script context:
//
//	call_service(service, message) -> result   (paper Table 1)
//	call_module(module, message)               (paper Table 1)
//	log(values...)
//	now_ms() -> number
//	frame_done()                               (flow-control credit, §2.3)
//	device_name() -> string
//	metric(name, ms)
//
// Frames travel as "frame_ref" ids inside messages (paper §3: "rather than
// copying the full image frames to the module, we pass on a reference id").
func (m *Module) bindHostAPI() { m.bindHostAPIInto(m.ctx) }

// bindHostAPIInto installs the bindings into an arbitrary context — used
// both at spawn and when hot-swapping module code (UpdateSource).
func (m *Module) bindHostAPIInto(ctx *script.Context) {
	ctx.Bind("call_service", m.hostCallService)
	ctx.Bind("call_module", m.hostCallModule)
	ctx.Bind("log", m.hostLog)
	ctx.Bind("now_ms", func([]script.Value) (script.Value, error) {
		return float64(time.Now().UnixNano()) / 1e6, nil
	})
	ctx.Bind("frame_done", m.hostFrameDone)
	ctx.Bind("device_name", func([]script.Value) (script.Value, error) {
		return m.dev.name, nil
	})
	ctx.Bind("metric", m.hostMetric)
}

// hostCallService implements call_service(service, message). Arity and
// argument types are validated against the shared host-API signature table
// (script.CheckHostArgs) — the same table pipevet checks statically — so
// only the dynamic checks (allowed services, frame refs) live here.
func (m *Module) hostCallService(args []script.Value) (script.Value, error) {
	if err := script.CheckHostArgs("call_service", args); err != nil {
		return nil, err
	}
	name := args[0].(string)
	if len(m.allowed) > 0 && !m.allowed[name] {
		return nil, fmt.Errorf("call_service: module %q is not configured to use service %q", m.spec.Name, name)
	}

	callArgs := map[string]any{}
	if len(args) >= 2 && args[1] != nil {
		converted, ok := script.ToGo(args[1]).(map[string]any)
		if !ok {
			return nil, fmt.Errorf("call_service: message must be an object, got %s", script.TypeName(args[1]))
		}
		callArgs = converted
	}

	if err := m.chargeOutput(payloadSize(callArgs)); err != nil {
		return nil, err
	}

	// Resolve a frame reference into the actual frame for the service.
	var reqFrame *frame.Frame
	if refRaw, has := callArgs["frame_ref"]; has {
		ref, ok := refRaw.(float64)
		if !ok {
			return nil, fmt.Errorf("call_service: frame_ref must be a number")
		}
		f, err := m.dev.store.Get(uint64(ref))
		if err != nil {
			return nil, fmt.Errorf("call_service: %w", err)
		}
		reqFrame = f
		delete(callArgs, "frame_ref")
	}

	// Derived from the device's base context so that Crash cancels the
	// call immediately instead of holding this event loop for the full
	// timeout (which would stall migration for the same span).
	ctx, cancel := context.WithTimeout(m.dev.baseCtx, serviceCallTimeout)
	defer cancel()
	resp, err := m.dev.CallService(ctx, name, callArgs, reqFrame)
	if err != nil {
		return nil, fmt.Errorf("call_service: %w", err)
	}

	result := resp.Result
	if result == nil {
		result = map[string]any{}
	}
	if resp.Frame != nil {
		id, err := m.dev.store.Put(resp.Frame)
		if err != nil {
			resp.Frame.Release()
			return nil, fmt.Errorf("call_service: storing result frame: %w", err)
		}
		m.ownedRefs = append(m.ownedRefs, id)
		result["frame_ref"] = float64(id)
	}
	return script.FromGo(result), nil
}

// hostCallModule implements call_module(module, message): the DAG edge
// transfer. Local destinations receive the frame by reference; remote
// destinations receive an encoded copy over the wire.
func (m *Module) hostCallModule(args []script.Value) (script.Value, error) {
	if err := script.CheckHostArgs("call_module", args); err != nil {
		return nil, err
	}
	target := args[0].(string)
	m.routeMu.RLock()
	route, ok := m.routes[target]
	m.routeMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("call_module: module %q has no edge to %q", m.spec.Name, target)
	}

	if obs := m.shapeObserver(); obs != nil {
		var payload script.Value
		if len(args) >= 2 {
			payload = args[1]
		}
		obs(target, payload)
	}

	body := map[string]any{}
	if len(args) >= 2 && args[1] != nil {
		converted, ok := script.ToGo(args[1]).(map[string]any)
		if !ok {
			return nil, fmt.Errorf("call_module: message must be an object, got %s", script.TypeName(args[1]))
		}
		body = converted
	}

	var frameID uint64
	if refRaw, has := body["frame_ref"]; has {
		ref, ok := refRaw.(float64)
		if !ok {
			return nil, fmt.Errorf("call_module: frame_ref must be a number")
		}
		frameID = uint64(ref)
		delete(body, "frame_ref")
	}

	if err := m.chargeOutput(payloadSize(body)); err != nil {
		return nil, err
	}

	if route.Address == "" {
		return nil, m.deliverLocal(route.Module, body, frameID)
	}
	return nil, m.deliverRemote(route, body, frameID)
}

// deliverLocal hands an event to a module on the same device: the frame
// reference is retained for the receiver — zero pixel copies.
func (m *Module) deliverLocal(target string, body map[string]any, frameID uint64) error {
	dst, ok := m.dev.Module(target)
	if !ok {
		return fmt.Errorf("call_module: local module %q not found on %s", target, m.dev.name)
	}
	ev := event{body: body}
	if frameID != 0 {
		if err := m.dev.store.Retain(frameID); err != nil {
			return fmt.Errorf("call_module: %w", err)
		}
		ev.frameID = frameID
	}
	select {
	case dst.events <- ev:
		return nil
	case <-dst.done:
		if ev.frameID != 0 {
			m.dev.store.Release(ev.frameID)
		}
		return fmt.Errorf("call_module: module %q is closed", target)
	case <-m.done:
		if ev.frameID != 0 {
			m.dev.store.Release(ev.frameID)
		}
		return fmt.Errorf("call_module: module %q is closing", m.spec.Name)
	}
}

// deliverRemote ships the event across the network, encoding the frame
// into the module's reusable scratch buffer (safe: deliverRemote only runs
// on the event-loop goroutine, and push.Send has copied the bytes into the
// socket's own buffer by the time it returns).
func (m *Module) deliverRemote(route Route, body map[string]any, frameID uint64) error {
	bodyJSON, err := json.Marshal(body)
	if err != nil {
		return fmt.Errorf("call_module: marshal body: %w", err)
	}
	msg := wire.NewMessage(bodyJSON)
	if frameID != 0 {
		f, err := m.dev.store.Get(frameID)
		if err != nil {
			return fmt.Errorf("call_module: %w", err)
		}
		encStart := time.Now()
		data, err := frame.AppendEncode(m.dev.codec, m.encBuf[:0], f)
		if err != nil {
			return fmt.Errorf("call_module: encode frame: %w", err)
		}
		m.encBuf = data
		m.dev.reg.Histogram("module." + m.spec.Name + ".encode").Observe(time.Since(encStart))
		msg.Parts = append(msg.Parts, data)
	}

	m.pushMu.Lock()
	push, ok := m.pushes[route.Address]
	if !ok {
		push = wire.DialPush(m.dev.transport, route.Address)
		m.pushes[route.Address] = push
	}
	m.pushMu.Unlock()

	ctx, cancel := context.WithTimeout(context.Background(), serviceCallTimeout)
	defer cancel()
	if err := push.Send(ctx, msg); err != nil {
		return fmt.Errorf("call_module: send to %q at %s: %w", route.Module, route.Address, err)
	}
	return nil
}

// hostLog implements log(...): module diagnostics tagged with device and
// module name.
func (m *Module) hostLog(args []script.Value) (script.Value, error) {
	parts := make([]any, 0, len(args))
	logged := 0
	for _, a := range args {
		s := script.Stringify(a)
		logged += len(s)
		parts = append(parts, s)
	}
	if err := m.chargeOutput(logged); err != nil {
		return nil, err
	}
	m.dev.reg.Meter("module." + m.spec.Name + ".logs").Mark()
	if m.dev.logf != nil {
		m.dev.logf("[%s/%s] %v", m.dev.name, m.spec.Name, parts)
	}
	return nil, nil
}

// hostFrameDone implements frame_done(): the sink's completion signal. The
// runtime also records end-to-end pipeline latency from the current
// frame's capture timestamp.
func (m *Module) hostFrameDone([]script.Value) (script.Value, error) {
	m.frameDoneSeen = true
	if m.currentFrame != nil && !m.currentFrame.Captured.IsZero() {
		m.dev.reg.Histogram("pipeline." + m.spec.Name + ".e2e").Observe(time.Since(m.currentFrame.Captured))
	}
	m.dev.reg.Meter("pipeline." + m.spec.Name + ".frames_done").Mark()
	if m.onFrameDone != nil {
		m.onFrameDone()
	}
	return nil, nil
}

// hostMetric implements metric(name, ms): module-level stage timing, used
// by the experiment scripts to report per-stage latency (Fig. 6).
func (m *Module) hostMetric(args []script.Value) (script.Value, error) {
	if err := script.CheckHostArgs("metric", args); err != nil {
		return nil, err
	}
	name := args[0].(string)
	ms := args[1].(float64)
	d := time.Duration(ms * float64(time.Millisecond))
	if m.spec.MetricPrefix != "" {
		m.dev.reg.Histogram("stage." + m.spec.MetricPrefix + "." + name).Observe(d)
	} else {
		m.dev.reg.Histogram("stage." + name).Observe(d)
	}
	return nil, nil
}
