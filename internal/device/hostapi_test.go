package device

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"videopipe/internal/script"
)

// The static analyzer (pipevet) catches literal-target mistakes at deploy
// time; targets computed at runtime survive to the host API. These tests
// pin down that the surviving runtime errors still carry a line:col
// Position — the paper's debuggability story must not regress now that the
// shared signature table owns the arity/type checks.

// callEvent runs the module's event_received directly and returns the
// script error, bypassing the event loop (which swallows errors into the
// module error meter).
func callEvent(t *testing.T, m *Module, msg map[string]any) error {
	t.Helper()
	_, err := m.ctx.Call("event_received", script.FromGo(msg))
	return err
}

func TestRuntimeErrorsKeepPosition(t *testing.T) {
	nw := testNet()
	d := newDevice(t, nw, "desktop", Desktop)

	cases := []struct {
		name     string
		src      string
		line     int
		fragment string
	}{
		{
			// Dynamic module target: no literal for the analyzer to check,
			// the route lookup fails at runtime.
			name: "dynamic call_module target",
			src: "function event_received(message) {\n" +
				"\tvar target = \"gh\" + \"ost\";\n" +
				"\tcall_module(target, {});\n" +
				"}",
			line:     3,
			fragment: `has no edge to "ghost"`,
		},
		{
			// Dynamic service target: the allowed-set check fires at runtime.
			name: "dynamic call_service target",
			src: "function event_received(message) {\n" +
				"\tvar svc = message.which;\n" +
				"\tcall_service(svc, {});\n" +
				"}",
			line:     3,
			fragment: "is not configured to use service",
		},
		{
			// Dynamic bad argument type: the shared signature table rejects
			// it with the module's call position intact.
			name: "dynamic metric value type",
			src: "function event_received(message) {\n" +
				"\tmetric(\"stage\", message.which);\n" +
				"}",
			line:     2,
			fragment: "metric: value must be a number",
		},
	}

	for i, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m, err := d.SpawnModule(ModuleSpec{
				Name:     fmt.Sprintf("m%d", i),
				Source:   tc.src,
				Services: []string{"some_service"},
			})
			if err != nil {
				t.Fatalf("SpawnModule: %v", err)
			}
			err = callEvent(t, m, map[string]any{"which": "forbidden"})
			if err == nil {
				t.Fatal("no runtime error")
			}
			var re *script.RuntimeError
			if !errors.As(err, &re) {
				t.Fatalf("error type %T, want *script.RuntimeError: %v", err, err)
			}
			if re.Pos.Line != tc.line || re.Pos.Col == 0 {
				t.Errorf("position = %s, want line %d with a column", re.Pos, tc.line)
			}
			if want := fmt.Sprintf("%d:%d", re.Pos.Line, re.Pos.Col); !strings.Contains(re.Error(), want) {
				t.Errorf("error text %q lacks line:col %q", re.Error(), want)
			}
			if !strings.Contains(re.Error(), tc.fragment) {
				t.Errorf("error text %q lacks %q", re.Error(), tc.fragment)
			}
		})
	}
}
