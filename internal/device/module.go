package device

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"videopipe/internal/frame"
	"videopipe/internal/script"
	"videopipe/internal/wire"
)

// DefaultMaxBreaches is how many consecutive budget breaches a module
// survives before the runtime kills it (spec.MaxBreaches overrides). A
// successful event resets the count, so an occasional expensive event is
// tolerated while a wedged module converges to a kill in K events.
const DefaultMaxBreaches = 3

// Route is one outgoing DAG edge from a module: the destination module
// name and where it lives. An empty Address means the destination is
// hosted on the same device and messages are handed over in process.
type Route struct {
	// Module is the destination module's spawned (possibly
	// pipeline-prefixed) name.
	Module string
	// Label is the name module code uses in call_module; empty means the
	// same as Module.
	Label string
	// Address locates the destination's inbound endpoint; empty means the
	// destination is on this device.
	Address string
}

// ModuleSpec describes one module to spawn on a device, derived from the
// pipeline configuration (paper Listing 1).
type ModuleSpec struct {
	// Name identifies the module within its pipeline.
	Name string
	// Source is the module's PipeScript code. It may define init() and
	// must define event_received(message).
	Source string
	// Services lists the services the module is allowed to call — the
	// config's `service:` field.
	Services []string
	// Port is the bind port of the module's inbound endpoint (0 =
	// ephemeral).
	Port int
	// Next lists the outgoing edges — the config's `next_module` field,
	// resolved to routes by the deployment planner.
	Next []Route
	// MetricPrefix namespaces metric() observations (set to the pipeline
	// name by the core runtime so concurrent pipelines don't mix).
	MetricPrefix string
	// Restore, when non-nil, is applied to the module's script context
	// after init() runs and before the first event — the live-migration
	// path carries the predecessor's global state here. It is only applied
	// when its Version matches the new code's _PRESERVATION_VERSION;
	// otherwise the state is discarded and the module starts fresh.
	Restore *script.Snapshot
	// Limits is the sandbox resource budget enforced on the module's
	// script context (zero fields are unlimited; the core runtime fills in
	// cluster defaults before spawning).
	Limits script.Limits
	// MaxBreaches overrides DefaultMaxBreaches (0 = default).
	MaxBreaches int
}

// event is one unit of work for a module: a message body plus an optional
// frame already resident in the device store (the runtime passes frames by
// reference id, paper §3).
type event struct {
	body    map[string]any
	frameID uint64
}

// Module is a running module instance: an isolated script context fed by a
// single event loop, mirroring one Duktape context per module.
type Module struct {
	dev  *Device
	spec ModuleSpec

	ctx    *script.Context
	pull   *wire.Pull
	events chan event
	swaps  chan *script.Context
	done   chan struct{}
	wg     sync.WaitGroup

	allowed map[string]bool
	routeMu sync.RWMutex
	routes  map[string]Route
	pushMu  sync.Mutex
	pushes  map[string]*wire.Push

	// onFrameDone is invoked when module code calls frame_done() — the
	// queue-free flow-control signal back to the pipeline source (§2.3).
	onFrameDone func()
	// onFrameAbandoned fires when an event that owned a frame errors out
	// before frame_done() was called, so the pipeline can reclaim the
	// credit instead of leaking it for the rest of the run.
	onFrameAbandoned func()

	// shapeObs, when set, sees every outbound call_module payload — the
	// debug-mode runtime half of the pipetype shape analysis. Atomic
	// because it is installed on live modules from another goroutine.
	shapeObs atomic.Pointer[ShapeObserver]

	// limits is the sandbox budget from the spec; breachLimit is the
	// resolved consecutive-breach kill threshold.
	limits      script.Limits
	breachLimit int
	// killed flips when consecutive budget breaches exhaust the breach
	// allowance; a killed module quarantines (abandons) every event until
	// the supervisor restarts it. Read from other goroutines via Killed().
	killed atomic.Bool

	// per-event state, touched only by the event loop goroutine.
	ownedRefs     []uint64
	currentFrame  *frame.Frame
	frameDoneSeen bool
	// consecBreaches counts back-to-back budget breaches; outputUsed
	// meters host-emitted bytes for the current event.
	consecBreaches int
	outputUsed     int64
	// encBuf is the frame-encode scratch for outgoing remote edges, reused
	// across events (event-loop goroutine only).
	encBuf []byte

	closeOnce sync.Once
	loadErr   error
}

// SpawnModule creates, loads and starts a module on the device.
func (d *Device) SpawnModule(spec ModuleSpec) (*Module, error) {
	if spec.Name == "" {
		return nil, fmt.Errorf("device: %s: module missing name", d.name)
	}
	if spec.Source == "" {
		return nil, fmt.Errorf("device: %s: module %q has no source", d.name, spec.Name)
	}
	d.mu.Lock()
	if _, dup := d.modules[spec.Name]; dup {
		d.mu.Unlock()
		return nil, fmt.Errorf("device: %s: module %q already exists", d.name, spec.Name)
	}
	d.mu.Unlock()

	m := &Module{
		dev:  d,
		spec: spec,
		// Queue-free by design (§2.3): a single slot only decouples the
		// socket reader from the handler; flow control keeps it near-empty.
		events:  make(chan event, 1),
		swaps:   make(chan *script.Context, 1),
		done:    make(chan struct{}),
		allowed: make(map[string]bool, len(spec.Services)),
		routes:  make(map[string]Route, len(spec.Next)),
		pushes:  make(map[string]*wire.Push),
	}
	for _, s := range spec.Services {
		m.allowed[s] = true
	}
	for _, r := range spec.Next {
		label := r.Label
		if label == "" {
			label = r.Module
		}
		m.routes[label] = r
	}
	m.limits = spec.Limits
	m.breachLimit = spec.MaxBreaches
	if m.breachLimit <= 0 {
		m.breachLimit = DefaultMaxBreaches
	}

	m.ctx = script.NewContext()
	m.ctx.SetLimits(spec.Limits)
	m.bindHostAPI()
	if err := m.ctx.Load(spec.Source); err != nil {
		return nil, fmt.Errorf("device: %s: loading module %q: %w", d.name, spec.Name, err)
	}

	pull, err := wire.ListenPull(d.transport, spec.Port)
	if err != nil {
		return nil, fmt.Errorf("device: %s: module %q endpoint: %w", d.name, spec.Name, err)
	}
	m.pull = pull

	d.mu.Lock()
	d.modules[spec.Name] = m
	d.mu.Unlock()

	// init() runs on the event loop's goroutine before any events, so
	// module state never sees concurrent access.
	m.wg.Add(2)
	go m.receiveLoop()
	go m.eventLoop()
	return m, nil
}

// Module returns a hosted module by name.
func (d *Device) Module(name string) (*Module, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	m, ok := d.modules[name]
	return m, ok
}

// Name reports the module name.
func (m *Module) Name() string { return m.spec.Name }

// Addr reports the module's inbound endpoint address.
func (m *Module) Addr() net.Addr { return m.pull.Addr() }

// UpdateRoute repoints one outgoing edge — how predecessors of a migrated
// module learn its new address without respawning.
func (m *Module) UpdateRoute(label string, r Route) {
	m.routeMu.Lock()
	defer m.routeMu.Unlock()
	m.routes[label] = r
}

// AbortPush tears down this module's outbound connection to address, if
// any. An in-flight Send to it fails on its next retry instead of
// spinning until its deadline — migration uses this to unwedge
// predecessors still pushing to a dead device, releasing the frame
// credits their blocked events hold.
func (m *Module) AbortPush(address string) {
	m.pushMu.Lock()
	p, ok := m.pushes[address]
	if ok {
		delete(m.pushes, address)
	}
	m.pushMu.Unlock()
	if ok {
		p.Close()
	}
}

// SnapshotState captures the module's PipeScript global state for
// migration. Only call after Close has returned: while the module runs,
// the event-loop goroutine owns the script context.
func (m *Module) SnapshotState() *script.Snapshot { return m.ctx.Snapshot() }

// SetFrameDone installs the flow-control callback fired by frame_done().
func (m *Module) SetFrameDone(fn func()) { m.onFrameDone = fn }

// SetFrameAbandoned installs the callback fired when an event carrying a
// frame fails before reaching frame_done().
func (m *Module) SetFrameAbandoned(fn func()) { m.onFrameAbandoned = fn }

// ShapeObserver receives each outbound call_module payload before wire
// conversion: target is the destination module, payload the raw second
// argument (nil for one-argument calls). Used by the debug-mode runtime
// shape recorder to validate the static shape inference against traffic.
type ShapeObserver func(target string, payload script.Value)

// SetShapeObserver installs (or, with nil, clears) the per-emission
// payload observer. Safe to call on a running module.
func (m *Module) SetShapeObserver(fn ShapeObserver) {
	if fn == nil {
		m.shapeObs.Store(nil)
		return
	}
	m.shapeObs.Store(&fn)
}

// shapeObserver returns the installed observer, or nil.
func (m *Module) shapeObserver() ShapeObserver {
	if p := m.shapeObs.Load(); p != nil {
		return *p
	}
	return nil
}

// Inject delivers an event directly from Go — how the video source (a
// camera, not a script) feeds the first module. The frame, if any, is
// stored in the device store and owned by the receiving event.
func (m *Module) Inject(ctx context.Context, body map[string]any, f *frame.Frame) error {
	ev := event{body: body}
	if f != nil {
		id, err := m.dev.store.Put(f)
		if err != nil {
			return fmt.Errorf("device: inject into %s: %w", m.spec.Name, err)
		}
		ev.frameID = id
	}
	select {
	case m.events <- ev:
		return nil
	case <-m.done:
		return fmt.Errorf("device: module %s is closed", m.spec.Name)
	case <-ctx.Done():
		if ev.frameID != 0 {
			m.dev.store.Release(ev.frameID)
		}
		return ctx.Err()
	}
}

// TryInject is Inject without blocking: it reports false when the module
// is busy (no credit) — the source-side drop point of the queue-free
// design.
func (m *Module) TryInject(body map[string]any, f *frame.Frame) (bool, error) {
	ev := event{body: body}
	if f != nil {
		id, err := m.dev.store.Put(f)
		if err != nil {
			return false, fmt.Errorf("device: inject into %s: %w", m.spec.Name, err)
		}
		ev.frameID = id
	}
	select {
	case m.events <- ev:
		return true, nil
	case <-m.done:
		if ev.frameID != 0 {
			m.dev.store.Release(ev.frameID)
		}
		return false, fmt.Errorf("device: module %s is closed", m.spec.Name)
	default:
		if ev.frameID != 0 {
			m.dev.store.Release(ev.frameID)
		}
		return false, nil
	}
}

// receiveLoop decodes inbound wire messages into events.
func (m *Module) receiveLoop() {
	defer m.wg.Done()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-m.done
		cancel()
	}()
	for {
		msg, err := m.pull.Recv(ctx)
		if err != nil {
			return
		}
		ev, err := m.decodeWireEvent(msg)
		if err != nil {
			m.dev.reg.Meter("module." + m.spec.Name + ".decode_errors").Mark()
			continue
		}
		select {
		case m.events <- ev:
		case <-m.done:
			if ev.frameID != 0 {
				m.abandonFrame(ev.frameID)
			}
			return
		}
	}
}

// abandonFrame releases a frame reference whose event will never reach
// frame_done() and hands its flow-control credit back to the source —
// the close/drain counterpart of the error path in handleEvent.
func (m *Module) abandonFrame(id uint64) {
	m.dev.store.Release(id)
	if m.onFrameAbandoned != nil {
		m.dev.reg.Meter("module." + m.spec.Name + ".abandoned").Mark()
		m.onFrameAbandoned()
	}
}

func (m *Module) decodeWireEvent(msg wire.Message) (event, error) {
	var body map[string]any
	if raw := msg.Part(0); len(raw) > 0 {
		if err := json.Unmarshal(raw, &body); err != nil {
			return event{}, fmt.Errorf("device: module %s: bad message body: %w", m.spec.Name, err)
		}
	}
	ev := event{body: body}
	if msg.Len() >= 2 && len(msg.Part(1)) > 0 {
		f, err := m.dev.codec.Decode(msg.Part(1))
		if err != nil {
			return event{}, fmt.Errorf("device: module %s: bad frame payload: %w", m.spec.Name, err)
		}
		id, err := m.dev.store.Put(f)
		if err != nil {
			return event{}, err
		}
		ev.frameID = id
	}
	return ev, nil
}

// eventLoop runs init() then serially applies events to the script
// context.
func (m *Module) eventLoop() {
	defer m.wg.Done()
	if m.ctx.Has("init") {
		if _, err := m.ctx.Call("init"); err != nil {
			m.loadErr = err
			m.dev.reg.Meter("module." + m.spec.Name + ".errors").Mark()
		}
	}
	if m.spec.Restore != nil {
		// Migration/restart: overlay the predecessor's global state on top
		// of whatever init() just set up — but only when the preserved
		// state's version matches the code now running. A mismatch means
		// the state shape changed (or a hostile swap poisoned it); starting
		// fresh is the safe outcome.
		if m.spec.Restore.Version() == m.ctx.PreservationVersion() {
			m.ctx.Restore(m.spec.Restore)
		} else {
			m.dev.reg.Meter("module." + m.spec.Name + ".restore_discarded").Mark()
		}
	}
	for {
		select {
		case <-m.done:
			return
		case ctx := <-m.swaps:
			m.applySwap(ctx)
		case ev := <-m.events:
			m.handleEvent(ev)
		}
	}
}

// applySwap replaces the script context between events — the hot-update
// path. Module state resets (the new code's top level ran at parse time);
// init() runs on the fresh context before the next event.
func (m *Module) applySwap(ctx *script.Context) {
	m.ctx = ctx
	if ctx.Has("init") {
		if _, err := ctx.Call("init"); err != nil {
			m.dev.reg.Meter("module." + m.spec.Name + ".errors").Mark()
		}
	}
	m.dev.reg.Meter("module." + m.spec.Name + ".updates").Mark()
}

// UpdateSource hot-swaps the module's code without disturbing its
// endpoint, routes or in-flight traffic — the live-redeployment half of
// the paper's "automatic deployment" future work. The new source is parsed
// and loaded off to the side; on failure the running module is untouched.
// The swap takes effect between events; module state starts fresh.
func (m *Module) UpdateSource(source string) error {
	if source == "" {
		return fmt.Errorf("device: module %s: empty source", m.spec.Name)
	}
	ctx := script.NewContext()
	ctx.SetLimits(m.limits)
	m.bindHostAPIInto(ctx)
	if err := ctx.Load(source); err != nil {
		return fmt.Errorf("device: updating module %s: %w", m.spec.Name, err)
	}
	select {
	case m.swaps <- ctx:
		return nil
	case <-m.done:
		return fmt.Errorf("device: module %s is closed", m.spec.Name)
	default:
		return fmt.Errorf("device: module %s already has an update pending", m.spec.Name)
	}
}

// Killed reports whether the sandbox killed this module after exhausting
// its breach allowance. A killed module abandons every event (credits flow
// back to the source) until the supervisor replaces it.
func (m *Module) Killed() bool { return m.killed.Load() }

func (m *Module) handleEvent(ev event) {
	// A killed module is quarantined: events are abandoned immediately so
	// their frame credits return to the source while the supervisor
	// arranges the restart.
	if m.killed.Load() {
		if ev.frameID != 0 {
			m.abandonFrame(ev.frameID)
		}
		return
	}

	// A paused device (chaos reboot) holds the event until Resume; the
	// single-slot channel upstream means flow control sees the stall and
	// the source drops frames instead of queueing.
	for {
		ch := m.dev.pauseGate()
		if ch == nil {
			break
		}
		select {
		case <-ch:
		case <-m.done:
			if ev.frameID != 0 {
				m.abandonFrame(ev.frameID)
			}
			return
		}
	}

	start := time.Now()
	m.ownedRefs = m.ownedRefs[:0]
	m.currentFrame = nil
	m.frameDoneSeen = false
	if ev.frameID != 0 {
		m.ownedRefs = append(m.ownedRefs, ev.frameID)
		if f, err := m.dev.store.Get(ev.frameID); err == nil {
			m.currentFrame = f
		}
		if ev.body == nil {
			ev.body = make(map[string]any, 1)
		}
		ev.body["frame_ref"] = float64(ev.frameID)
	}

	m.outputUsed = 0
	_, err := m.ctx.Call("event_received", script.FromGo(anyMap(ev.body)))
	// Per-event interpreter instruction count — the runtime half of the
	// pipecost validation loop (static bound >= this) and the counter the
	// sandbox instruction budget is enforced against.
	m.dev.reg.Meter("script." + m.spec.Name + ".instructions").MarkN(uint64(m.ctx.LastInstructions()))
	if err != nil {
		m.dev.reg.Meter("module." + m.spec.Name + ".errors").Mark()
		// The frame this event owned will never reach frame_done();
		// return its credit so the source is not starved forever.
		if ev.frameID != 0 && !m.frameDoneSeen && m.onFrameAbandoned != nil {
			m.dev.reg.Meter("module." + m.spec.Name + ".abandoned").Mark()
			m.onFrameAbandoned()
		}
		var be *script.BudgetError
		if errors.As(err, &be) {
			m.dev.reg.Meter("script." + m.spec.Name + ".breaches").Mark()
			m.consecBreaches++
			if m.consecBreaches >= m.breachLimit && !m.killed.Load() {
				m.killed.Store(true)
				m.dev.reg.Meter("script." + m.spec.Name + ".killed").Mark()
			}
		} else {
			m.consecBreaches = 0
		}
	} else {
		m.consecBreaches = 0
	}

	// Release every frame reference this event owned; anything handed to a
	// local successor was retained on its behalf.
	for _, id := range m.ownedRefs {
		m.dev.store.Release(id)
	}
	m.ownedRefs = m.ownedRefs[:0]
	m.currentFrame = nil
	m.dev.reg.Histogram("module." + m.spec.Name + ".handle").Observe(time.Since(start))
	m.dev.reg.Meter("module." + m.spec.Name + ".events").Mark()
}

func anyMap(m map[string]any) map[string]any {
	if m == nil {
		return map[string]any{}
	}
	return m
}

// Close stops the module and its sockets.
func (m *Module) Close() {
	m.closeOnce.Do(func() {
		close(m.done)
		m.pull.Close()
		m.pushMu.Lock()
		for _, p := range m.pushes {
			p.Close()
		}
		m.pushMu.Unlock()
		m.wg.Wait()
		// Drain any event parked in the channel so its frame ref is not
		// leaked in the store and its credit flows back to the source.
		for {
			select {
			case ev := <-m.events:
				if ev.frameID != 0 {
					m.abandonFrame(ev.frameID)
				}
			default:
				return
			}
		}
	})
}
