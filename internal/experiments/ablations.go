package experiments

import (
	"context"
	"fmt"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/device"
	"videopipe/internal/frame"
	"videopipe/internal/services"
)

// Ablations for the design choices DESIGN.md calls out. Each isolates one
// mechanism of the system and measures its contribution.

// QueueingPoint is one credit setting's outcome.
type QueueingPoint struct {
	Credits int
	FPS     float64
	E2EMean time.Duration
}

// AblationQueueing contrasts the queue-free credit discipline (§2.3)
// against deeper admission: more credits ≈ bounded queues inside the
// pipeline. Expected shape: FPS saturates by 2 credits while end-to-end
// latency keeps growing — queueing buys latency, not throughput.
func AblationQueueing(o Options, creditSettings []int) ([]QueueingPoint, error) {
	reg, err := o.registry()
	if err != nil {
		return nil, err
	}
	if creditSettings == nil {
		creditSettings = []int{1, 2, 4, 8}
	}
	var out []QueueingPoint
	for _, credits := range creditSettings {
		res, err := runFitness(reg, apps.HomeClusterSpec(),
			core.CoLocatePlanner{Credits: credits},
			fmt.Sprintf("abq%d", credits), 30, o.scene(), o.duration())
		if err != nil {
			return nil, fmt.Errorf("experiments: queueing ablation credits=%d: %w", credits, err)
		}
		out = append(out, QueueingPoint{Credits: credits, FPS: res.FPS, E2EMean: res.E2E.Mean})
	}
	return out, nil
}

// CodecResult contrasts compressed vs raw frame transfer between devices.
type CodecResult struct {
	JPEGFPS float64
	JPEGE2E time.Duration
	RawFPS  float64
	RawE2E  time.Duration
}

// AblationCodec measures what JPEG compression buys on the Wi-Fi hops: raw
// RGBA frames are ~20x larger, so transfer serialization dominates.
func AblationCodec(o Options) (CodecResult, error) {
	reg, err := o.registry()
	if err != nil {
		return CodecResult{}, err
	}

	run := func(codec frame.Codec, name string) (core.RunResult, error) {
		cluster, err := core.NewCluster(apps.HomeClusterSpec(), reg)
		if err != nil {
			return core.RunResult{}, err
		}
		defer cluster.Close()
		if codec != nil {
			cluster.SetCodec(codec)
		}
		p, err := cluster.Launch(apps.FitnessConfig(name, 20, o.scene()), core.CoLocatePlanner{})
		if err != nil {
			return core.RunResult{}, err
		}
		return p.Run(context.Background(), o.duration())
	}

	jpegRes, err := run(nil, "abcjpeg")
	if err != nil {
		return CodecResult{}, fmt.Errorf("experiments: codec ablation jpeg: %w", err)
	}
	rawRes, err := run(frame.RawCodec{}, "abcraw")
	if err != nil {
		return CodecResult{}, fmt.Errorf("experiments: codec ablation raw: %w", err)
	}
	return CodecResult{
		JPEGFPS: jpegRes.FPS, JPEGE2E: jpegRes.E2E.Mean,
		RawFPS: rawRes.FPS, RawE2E: rawRes.E2E.Mean,
	}, nil
}

// BrokerResult contrasts direct module-to-module transfer against routing
// frames through a broker hop.
type BrokerResult struct {
	DirectFPS float64
	DirectE2E time.Duration
	BrokerFPS float64
	BrokerE2E time.Duration
}

// AblationBroker quantifies the paper's §3.2 argument against brokered
// messaging (Kafka/RabbitMQ): the same fitness pipeline, but with frames
// relayed through a broker module on a fourth device between the phone and
// the desktop — one extra network traversal per frame.
func AblationBroker(o Options) (BrokerResult, error) {
	reg, err := o.registry()
	if err != nil {
		return BrokerResult{}, err
	}

	direct, err := runFitness(reg, apps.HomeClusterSpec(), core.CoLocatePlanner{}, "abbdirect", 20, o.scene(), o.duration())
	if err != nil {
		return BrokerResult{}, fmt.Errorf("experiments: broker ablation direct: %w", err)
	}

	// Brokered: insert a relay module pinned to a separate broker host.
	spec := apps.HomeClusterSpec()
	spec.Devices = append(spec.Devices, device.Config{Name: "brokerhost", Class: device.Laptop})
	cluster, err := core.NewCluster(spec, reg)
	if err != nil {
		return BrokerResult{}, err
	}
	defer cluster.Close()

	cfg := apps.FitnessConfig("abbbroker", 20, o.scene())
	// Rewire: video_streaming -> broker -> pose_detection.
	for i := range cfg.Modules {
		if cfg.Modules[i].Name == "video_streaming" {
			cfg.Modules[i].Next = []string{"broker"}
			cfg.Modules[i].Source = brokeredStreamingSrc
		}
	}
	cfg.Modules = append(cfg.Modules, core.ModuleConfig{
		Name:   "broker",
		Source: brokerRelaySrc,
		Next:   []string{"pose_detection"},
		Device: "brokerhost",
	})

	p, err := cluster.Launch(cfg, core.CoLocatePlanner{})
	if err != nil {
		return BrokerResult{}, err
	}
	brokered, err := p.Run(context.Background(), o.duration())
	if err != nil {
		return BrokerResult{}, fmt.Errorf("experiments: broker ablation brokered: %w", err)
	}
	return BrokerResult{
		DirectFPS: direct.FPS, DirectE2E: direct.E2E.Mean,
		BrokerFPS: brokered.FPS, BrokerE2E: brokered.E2E.Mean,
	}, nil
}

const brokeredStreamingSrc = `
	function event_received(message) {
		call_module("broker", {
			frame_ref: message.frame_ref,
			captured_ms: message.captured_ms,
			seq: message.seq
		});
	}
`

const brokerRelaySrc = `
	function event_received(message) {
		call_module("pose_detection", {
			frame_ref: message.frame_ref,
			captured_ms: message.captured_ms,
			seq: message.seq
		});
	}
`

// WorkersPoint is one worker-count setting's outcome under shared load.
type WorkersPoint struct {
	Workers   int
	Fitness   float64
	Gesture   float64
	Aggregate float64
}

// AblationWorkers sweeps the pose container's internal concurrency with
// two pipelines sharing it at 20 FPS each — the knob behind Table 2's
// shared-column saturation.
func AblationWorkers(o Options, workerSettings []int) ([]WorkersPoint, error) {
	if workerSettings == nil {
		workerSettings = []int{1, 2, 4}
	}
	var out []WorkersPoint
	for _, w := range workerSettings {
		opts := services.DefaultOptions()
		opts.PoseWorkers = w
		reg, err := services.NewStandardRegistry(opts)
		if err != nil {
			return nil, err
		}
		a, b, err := runShared(reg, 20, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: workers ablation w=%d: %w", w, err)
		}
		out = append(out, WorkersPoint{Workers: w, Fitness: a, Gesture: b, Aggregate: a + b})
	}
	return out, nil
}
