package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/chaos"
	"videopipe/internal/core"
	"videopipe/internal/services"
)

// ---- Resilience experiment: deterministic fault injection ----

// ChaosScenario is one resilience case: a pipeline workload plus a fault
// schedule, either literal or generated from the experiment seed.
type ChaosScenario struct {
	// Name labels the scenario in the results table.
	Name string
	// Schedule is the literal fault plan; nil generates one from Gen.
	Schedule chaos.Schedule
	// Gen derives the schedule from the experiment seed when Schedule is
	// nil.
	Gen *chaos.GenOptions
	// SourceFPS is the fitness source rate; zero selects 15.
	SourceFPS float64
	// Shared also runs the gesture pipeline concurrently, so faults land
	// on a service pool two pipelines share (§5.2.2 under failure).
	Shared bool
	// Limits overrides the fitness pipeline's sandbox budgets, so
	// module-sabotage scenarios can pick limits low enough that breaches
	// trip on instruction counts (deterministic) rather than wall clock.
	Limits *core.LimitsConfig
}

// schedule resolves the scenario's fault plan for a seed.
func (sc ChaosScenario) schedule(seed int64) chaos.Schedule {
	if sc.Schedule != nil {
		return sc.Schedule.Sorted()
	}
	if sc.Gen != nil {
		return chaos.Generate(seed, *sc.Gen)
	}
	return nil
}

// DefaultChaosScenarios are the paper-testbed failure stories: flaky home
// Wi-Fi between the phone and the desktop, the desktop rebooting mid-run,
// and the shared pose pool dying under two-pipeline load.
func DefaultChaosScenarios() []ChaosScenario {
	return []ChaosScenario{
		{
			Name: "flaky_wifi",
			Gen: &chaos.GenOptions{
				Horizon:     1200 * time.Millisecond,
				Events:      3,
				Links:       []string{chaos.LinkTarget("phone", "desktop")},
				MinDuration: 200 * time.Millisecond,
				MaxDuration: 600 * time.Millisecond,
			},
		},
		{
			Name: "desktop_reboot",
			Schedule: chaos.Schedule{
				{At: 400 * time.Millisecond, Kind: chaos.KindPauseDevice, Target: "desktop", Duration: 800 * time.Millisecond},
			},
		},
		{
			Name:   "pose_pool_kill",
			Shared: true,
			Schedule: chaos.Schedule{
				{At: 400 * time.Millisecond, Kind: chaos.KindKillService, Target: services.PoseDetector, Duration: time.Second},
			},
		},
	}
}

// SupervisedChaosScenarios are the supervised resilience stories: the
// default three plus faults only the supervisor can recover from — a
// permanent TV crash (re-plan the display service, live-migrate the
// display module) and two module-sabotage cases where hostile code is
// hot-swapped into a live module and the sandbox must breach, kill, and
// restart it from its original source. The sabotage scenarios run shared
// so the co-located gesture pipeline's rate during the fault measures
// containment.
func SupervisedChaosScenarios() []ChaosScenario {
	sandboxLimits := &core.LimitsConfig{Instructions: 50_000}
	return append(DefaultChaosScenarios(),
		ChaosScenario{
			Name: "device_crash",
			Schedule: chaos.Schedule{
				{At: 400 * time.Millisecond, Kind: chaos.KindDeviceCrash, Target: "tv", Duration: 600 * time.Millisecond},
			},
		},
		ChaosScenario{
			Name:   "runaway_module",
			Shared: true,
			Limits: sandboxLimits,
			Schedule: chaos.Schedule{
				{At: 400 * time.Millisecond, Kind: chaos.KindRunawayModule,
					Target: chaos.ModuleTarget("chaos_runaway_module", "rep_counter"), Duration: 600 * time.Millisecond},
			},
		},
		ChaosScenario{
			Name:   "hog_module",
			Shared: true,
			Limits: sandboxLimits,
			Schedule: chaos.Schedule{
				{At: 400 * time.Millisecond, Kind: chaos.KindHogModule,
					Target: chaos.ModuleTarget("chaos_hog_module", "activity_recognition"), Duration: 600 * time.Millisecond},
			},
		},
	)
}

// ChaosRow is one scenario's outcome.
type ChaosRow struct {
	Scenario string
	// Fingerprint is the canonical schedule text; identical across runs
	// with the same seed.
	Fingerprint string
	// Applied is the injector's log, in injection order.
	Applied []chaos.Applied
	// PreFPS and PostFPS are delivered rates in clean windows before and
	// after the fault run; recovery demands Post >= ~0.9 Pre.
	PreFPS  float64
	PostFPS float64
	// DuringFPS is the delivered rate across the fault window.
	DuringFPS float64
	// CoPreFPS and CoDuringFPS are the co-located gesture pipeline's
	// delivered rates in the pre-fault and fault windows (shared runs
	// only). Module-sabotage scenarios demand CoDuring >= ~0.9 CoPre: a
	// runaway module must not starve its neighbours while it is being
	// contained.
	CoPreFPS    float64
	CoDuringFPS float64
	// Recovery is how long after the last fault reversed the pipeline
	// took to sustain >= 90% of PreFPS; negative means it never did
	// within the observation window.
	Recovery time.Duration
	// DegradedSeconds is the monitor-observed degraded time during the
	// fault run.
	DegradedSeconds float64
	// Journal is the supervisor's recovery-action log (supervised runs
	// only); seed-deterministic across same-seed runs.
	Journal []string
}

// Chaos runs every scenario: a clean pre-fault window, a fault window
// driven by the seeded injector, and a clean post-fault window, measuring
// recovery rate and time. The same seed replays the identical fault
// sequence.
func Chaos(o Options, seed int64, scenarios []ChaosScenario) ([]ChaosRow, error) {
	reg, err := o.registry()
	if err != nil {
		return nil, err
	}
	if scenarios == nil {
		scenarios = DefaultChaosScenarios()
	}
	rows := make([]ChaosRow, 0, len(scenarios))
	for _, sc := range scenarios {
		row, err := runChaosScenario(reg, sc, seed, o)
		if err != nil {
			return nil, fmt.Errorf("experiments: chaos %s: %w", sc.Name, err)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runChaosScenario(reg *services.Registry, sc ChaosScenario, seed int64, o Options) (ChaosRow, error) {
	cluster, err := core.NewCluster(apps.HomeClusterSpec(), reg)
	if err != nil {
		return ChaosRow{}, err
	}
	defer cluster.Close()

	fps := sc.SourceFPS
	if fps <= 0 {
		fps = 15
	}
	name := "chaos_" + sc.Name
	fitCfg := apps.FitnessConfig(name, fps, o.scene())
	if sc.Limits != nil {
		fitCfg.Limits = *sc.Limits
	}
	fit, err := cluster.Launch(fitCfg, core.CoLocatePlanner{})
	if err != nil {
		return ChaosRow{}, err
	}
	var gest *core.Pipeline
	if sc.Shared {
		if gest, err = cluster.Launch(apps.GestureConfig(name+"_gest", fps, "clap"), core.CoLocatePlanner{}); err != nil {
			return ChaosRow{}, err
		}
	}

	// Supervised runs start the self-healing control loop before any
	// window is measured, and must stop it (blocking until the loop fully
	// exits) before the deferred cluster.Close — an in-flight step may
	// still be probing or migrating.
	var sup *core.Supervisor
	supStop := func() {}
	if o.Supervise {
		sup = core.NewSupervisor(cluster, core.SupervisorConfig{Seed: seed})
		supCtx, supCancel := context.WithCancel(context.Background())
		supDone := make(chan struct{})
		go func() {
			defer close(supDone)
			sup.Run(supCtx)
		}()
		var supOnce sync.Once
		supStop = func() {
			supOnce.Do(func() {
				supCancel()
				<-supDone
			})
		}
		defer supStop()
	}

	// run executes one measurement window across the launched pipelines
	// and returns the fitness pipeline's delivered rate, measured with the
	// sink meter's trailing-window estimator: at the low frame counts of
	// short windows the first-to-last-mark rate swings with delivery
	// clustering, while RateWindow divides by the fixed window so phases
	// compare like-for-like.
	sink := cluster.Metrics().Meter("pipeline." + name + ".display.frames_done")
	coSink := cluster.Metrics().Meter("pipeline." + name + "_gest.iot_control.frames_done")
	run := func(dur time.Duration) (float64, float64, error) {
		cluster.Metrics().Reset()
		var wg sync.WaitGroup
		var fitRes core.RunResult
		var fitErr, gestErr error
		wg.Add(1)
		go func() {
			defer wg.Done()
			fitRes, fitErr = fit.Run(context.Background(), dur)
		}()
		if gest != nil {
			wg.Add(1)
			go func() {
				defer wg.Done()
				_, gestErr = gest.Run(context.Background(), dur)
			}()
		}
		wg.Wait()
		if fitErr != nil {
			return 0, 0, fitErr
		}
		if gestErr != nil {
			return 0, 0, gestErr
		}
		if fitRes.Duration <= 0 {
			return 0, 0, nil
		}
		return sink.RateWindow(fitRes.Duration), coSink.RateWindow(fitRes.Duration), nil
	}

	row := ChaosRow{Scenario: sc.Name}
	schedule := sc.schedule(seed)
	row.Fingerprint = schedule.Fingerprint()

	// Warm-up: the first run after launch spends part of its window on
	// connection setup before frames flow, skewing whatever rate it
	// reports — so reach steady state before the pre-fault baseline is
	// measured.
	warm := o.duration() / 2
	if warm < 500*time.Millisecond {
		warm = 500 * time.Millisecond
	}
	if _, _, err := run(warm); err != nil {
		return ChaosRow{}, err
	}

	// Phase 1: clean pre-fault window.
	if row.PreFPS, row.CoPreFPS, err = run(o.duration()); err != nil {
		return ChaosRow{}, err
	}

	// Phase 2: fault window. The injector drives the schedule while the
	// pipelines run; a sampler tracks the delivered counter so recovery
	// time is measured from the moment the last fault reverses.
	var faultEnd time.Duration
	for _, ev := range schedule {
		if end := ev.At + ev.Duration; end > faultEnd {
			faultEnd = end
		}
	}
	chaosDur := faultEnd + o.duration()

	mon := core.NewMonitor(cluster)
	mon.StallAfter = 500 * time.Millisecond
	monCtx, monCancel := context.WithCancel(context.Background())
	go mon.Run(monCtx, nil)

	delivered := func() uint64 {
		return cluster.Metrics().Meter("pipeline." + name + ".display.frames_done").Count()
	}
	var (
		samplesMu sync.Mutex
		samples   []deliverySample
		healedAt  time.Time
	)
	samplerCtx, samplerCancel := context.WithCancel(context.Background())
	var aux sync.WaitGroup
	aux.Add(2)
	go func() {
		defer aux.Done()
		tick := time.NewTicker(100 * time.Millisecond)
		defer tick.Stop()
		for {
			select {
			case <-samplerCtx.Done():
				return
			case now := <-tick.C:
				samplesMu.Lock()
				samples = append(samples, deliverySample{at: now, count: delivered()})
				samplesMu.Unlock()
			}
		}
	}()
	inj := chaos.NewInjector(cluster)
	inj.ExternalRepair = o.Supervise
	go func() {
		defer aux.Done()
		inj.Run(samplerCtx, schedule)
		samplesMu.Lock()
		healedAt = time.Now()
		samplesMu.Unlock()
	}()

	row.DuringFPS, row.CoDuringFPS, err = run(chaosDur)
	monCancel()
	if err != nil {
		samplerCancel()
		aux.Wait()
		return ChaosRow{}, err
	}
	row.Applied = inj.Applied()
	row.DegradedSeconds = mon.DegradedSeconds(name)

	// Phase 3: clean post-fault window. The sampler keeps running so the
	// recovery clock can land here when the pipeline was still draining
	// at the end of the fault window.
	row.PostFPS, _, err = run(o.duration())
	samplerCancel()
	aux.Wait()
	if err != nil {
		return ChaosRow{}, err
	}
	row.Recovery = recoveryTime(samples, healedAt, row.PreFPS)
	if sup != nil {
		// Stop the control loop before reading the journal so no action
		// lands after collection.
		supStop()
		row.Journal = sup.JournalStrings()
	}
	return row, nil
}

// deliverySample is one timestamped reading of a sink's delivered
// counter.
type deliverySample struct {
	at    time.Time
	count uint64
}

// recoveryTime finds how long after healedAt the sampled delivered
// counter first sustained >= 90% of preFPS over a trailing window. It
// returns a negative duration when the rate never recovered in-sample.
func recoveryTime(samples []deliverySample, healedAt time.Time, preFPS float64) time.Duration {
	const window = 500 * time.Millisecond
	target := 0.9 * preFPS
	if healedAt.IsZero() || preFPS <= 0 {
		return -1
	}
	for i := range samples {
		if samples[i].at.Before(healedAt) {
			continue
		}
		// Find the sample a window earlier.
		j := i
		for j > 0 && samples[i].at.Sub(samples[j-1].at) <= window {
			j--
		}
		span := samples[i].at.Sub(samples[j].at).Seconds()
		if span <= 0 || samples[i].count < samples[j].count {
			continue
		}
		rate := float64(samples[i].count-samples[j].count) / span
		if rate >= target {
			d := samples[i].at.Sub(healedAt)
			if d < 0 {
				d = 0
			}
			return d
		}
	}
	return -1
}

// FormatChaos renders scenario rows as the recovery-time table.
func FormatChaos(rows []ChaosRow, seed int64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Chaos resilience (seed %d)\n", seed)
	fmt.Fprintf(&b, "%-16s %8s %8s %8s %10s %10s %7s\n",
		"Scenario", "Pre FPS", "During", "Post", "Recovery", "Degraded", "Faults")
	for _, r := range rows {
		rec := "never"
		if r.Recovery >= 0 {
			rec = r.Recovery.Round(10 * time.Millisecond).String()
		}
		fmt.Fprintf(&b, "%-16s %8.2f %8.2f %8.2f %10s %9.1fs %7d\n",
			r.Scenario, r.PreFPS, r.DuringFPS, r.PostFPS, rec, r.DegradedSeconds, len(r.Applied))
		if r.CoPreFPS > 0 {
			fmt.Fprintf(&b, "  co-located: pre %.2f fps, during fault %.2f\n", r.CoPreFPS, r.CoDuringFPS)
		}
		for _, act := range r.Journal {
			fmt.Fprintf(&b, "  heal: %s\n", act)
		}
	}
	return b.String()
}
