// Package experiments regenerates every table and figure in the paper's
// evaluation (§5), plus the ablations DESIGN.md calls out. Each experiment
// builds a fresh simulated home cluster with paper-calibrated service
// costs, runs the relevant pipelines, and returns structured results the
// vpbench CLI and the benchmark suite render.
//
// Absolute numbers differ from the paper (our substrate is a simulator,
// not their testbed); the reproduced quantities are the *shapes*: who
// wins, by what factor, and where saturation sets in.
package experiments

import (
	"context"
	"fmt"
	"strings"
	"sync"
	"time"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/services"
	"videopipe/internal/vision"
)

// Options configures an experiment run.
type Options struct {
	// RunDuration is the measurement window per configuration; zero
	// selects 3 seconds (long enough for rates to stabilize at the paper's
	// frame rates).
	RunDuration time.Duration
	// Registry supplies the services; nil builds the paper-calibrated
	// standard registry.
	Registry *services.Registry
	// Scene is the exercise the synthetic subject performs; empty selects
	// squat.
	Scene string
	// Supervise runs chaos scenarios under the self-healing supervisor:
	// the injector stops repairing killed pools itself (the supervisor
	// restarts them), and each ChaosRow carries the supervisor's recovery
	// journal. Required for scenarios with unrecoverable faults such as
	// device_crash.
	Supervise bool
}

func (o Options) duration() time.Duration {
	if o.RunDuration <= 0 {
		return 3 * time.Second
	}
	return o.RunDuration
}

func (o Options) scene() string {
	if o.Scene == "" {
		return "squat"
	}
	return o.Scene
}

func (o Options) registry() (*services.Registry, error) {
	if o.Registry != nil {
		return o.Registry, nil
	}
	return services.NewStandardRegistry(services.DefaultOptions())
}

// runFitness launches the fitness pipeline on a fresh cluster and measures
// one window.
func runFitness(reg *services.Registry, spec core.ClusterSpec, planner core.Planner, name string, fps float64, scene string, dur time.Duration) (core.RunResult, error) {
	cluster, err := core.NewCluster(spec, reg)
	if err != nil {
		return core.RunResult{}, err
	}
	defer cluster.Close()
	p, err := cluster.Launch(apps.FitnessConfig(name, fps, scene), planner)
	if err != nil {
		return core.RunResult{}, err
	}
	return p.Run(context.Background(), dur)
}

// ---- Fig. 6: per-stage latency, VideoPipe vs baseline ----

// Fig6Stages are the paper's bars, in display order.
var Fig6Stages = []string{"load_frame", "pose", "activity", "rep_count", "total"}

// Fig6Result holds mean per-stage latencies for both deployments.
type Fig6Result struct {
	VideoPipe map[string]time.Duration
	Baseline  map[string]time.Duration
}

// Fig6 reproduces Fig. 6: per-stage mean latency of the fitness pipeline
// under the VideoPipe plan vs the baseline. The source runs at 10 FPS —
// just below the pipeline's saturation point — so the bars measure
// per-frame processing latency rather than admission queueing, matching
// the paper's per-stage semantics.
func Fig6(o Options) (Fig6Result, error) {
	reg, err := o.registry()
	if err != nil {
		return Fig6Result{}, err
	}
	vp, err := runFitness(reg, apps.HomeClusterSpec(), core.CoLocatePlanner{}, "fig6vp", 10, o.scene(), o.duration())
	if err != nil {
		return Fig6Result{}, fmt.Errorf("experiments: fig6 videopipe: %w", err)
	}
	bl, err := runFitness(reg, apps.BaselineClusterSpec(), core.BaselinePlanner{}, "fig6bl", 10, o.scene(), o.duration())
	if err != nil {
		return Fig6Result{}, fmt.Errorf("experiments: fig6 baseline: %w", err)
	}
	out := Fig6Result{
		VideoPipe: make(map[string]time.Duration),
		Baseline:  make(map[string]time.Duration),
	}
	for _, stage := range Fig6Stages {
		out.VideoPipe[stage] = vp.Stages[stage].Mean
		out.Baseline[stage] = bl.Stages[stage].Mean
	}
	return out, nil
}

// Table renders the result like the paper's figure, as text.
func (r Fig6Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %12s %12s\n", "Stage", "VideoPipe", "Baseline")
	for _, stage := range Fig6Stages {
		fmt.Fprintf(&b, "%-12s %12s %12s\n", stage,
			r.VideoPipe[stage].Round(100*time.Microsecond),
			r.Baseline[stage].Round(100*time.Microsecond))
	}
	return b.String()
}

// ---- Table 2: end-to-end FPS vs source FPS ----

// Table2Row is one row of the paper's Table 2.
type Table2Row struct {
	SourceFPS float64
	VideoPipe float64
	Baseline  float64
	// Shared holds the two concurrent pipelines' rates when measured
	// (paper columns "(x, y)"); HasShared marks rows with that column.
	Shared    [2]float64
	HasShared bool
}

// Table2Rates are the paper's swept source rates.
var Table2Rates = []float64{5, 10, 20, 30, 60}

// Table2SharedRates are the rows the paper measures with two pipelines.
var Table2SharedRates = []float64{5, 10, 20}

// Table2 reproduces Table 2: end-to-end frame rate of the fitness pipeline
// as the source rate sweeps, for VideoPipe, the baseline, and (on the
// shared rows) two pipelines sharing the pose detector service.
func Table2(o Options, rates, sharedRates []float64) ([]Table2Row, error) {
	reg, err := o.registry()
	if err != nil {
		return nil, err
	}
	if rates == nil {
		rates = Table2Rates
	}
	if sharedRates == nil {
		sharedRates = Table2SharedRates
	}
	sharedSet := make(map[float64]bool, len(sharedRates))
	for _, r := range sharedRates {
		sharedSet[r] = true
	}

	var rows []Table2Row
	for _, rate := range rates {
		row := Table2Row{SourceFPS: rate}

		vp, err := runFitness(reg, apps.HomeClusterSpec(), core.CoLocatePlanner{}, fmt.Sprintf("t2vp%g", rate), rate, o.scene(), o.duration())
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 videopipe @%g: %w", rate, err)
		}
		row.VideoPipe = vp.FPS

		bl, err := runFitness(reg, apps.BaselineClusterSpec(), core.BaselinePlanner{}, fmt.Sprintf("t2bl%g", rate), rate, o.scene(), o.duration())
		if err != nil {
			return nil, fmt.Errorf("experiments: table2 baseline @%g: %w", rate, err)
		}
		row.Baseline = bl.FPS

		if sharedSet[rate] {
			a, b, err := runShared(reg, rate, o)
			if err != nil {
				return nil, fmt.Errorf("experiments: table2 shared @%g: %w", rate, err)
			}
			row.Shared = [2]float64{a, b}
			row.HasShared = true
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// runShared runs the fitness and gesture pipelines concurrently on one
// cluster, sharing the pose-detector pool (§5.2.2).
func runShared(reg *services.Registry, rate float64, o Options) (float64, float64, error) {
	cluster, err := core.NewCluster(apps.HomeClusterSpec(), reg)
	if err != nil {
		return 0, 0, err
	}
	defer cluster.Close()

	fit, err := cluster.Launch(apps.FitnessConfig(fmt.Sprintf("shfit%g", rate), rate, o.scene()), core.CoLocatePlanner{})
	if err != nil {
		return 0, 0, err
	}
	gest, err := cluster.Launch(apps.GestureConfig(fmt.Sprintf("shgest%g", rate), rate, "clap"), core.CoLocatePlanner{})
	if err != nil {
		return 0, 0, err
	}

	var wg sync.WaitGroup
	var fitRes, gestRes core.RunResult
	var fitErr, gestErr error
	wg.Add(2)
	go func() {
		defer wg.Done()
		fitRes, fitErr = fit.Run(context.Background(), o.duration())
	}()
	go func() {
		defer wg.Done()
		gestRes, gestErr = gest.Run(context.Background(), o.duration())
	}()
	wg.Wait()
	if fitErr != nil {
		return 0, 0, fitErr
	}
	if gestErr != nil {
		return 0, 0, gestErr
	}
	return fitRes.FPS, gestRes.FPS, nil
}

// FormatTable2 renders rows like the paper's Table 2.
func FormatTable2(rows []Table2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-11s %10s %10s %16s\n", "Source FPS", "VideoPipe", "Baseline", "Two Pipelines")
	for _, r := range rows {
		shared := "-"
		if r.HasShared {
			shared = fmt.Sprintf("(%.2f, %.2f)", r.Shared[0], r.Shared[1])
		}
		fmt.Fprintf(&b, "%-11g %10.2f %10.2f %16s\n", r.SourceFPS, r.VideoPipe, r.Baseline, shared)
	}
	return b.String()
}

// ---- §4.1.2 / §4.1.3: model accuracies ----

// AccuracyResult reports the activity-recognition evaluation.
type AccuracyResult struct {
	Accuracy float64
	TrainN   int
	TestN    int
}

// ActivityAccuracy reproduces the §4.1.2 claim: k-NN over 15-frame
// hip-normalized windows, trained on all labelled data except a withheld
// test set; the paper reports above 90%.
func ActivityAccuracy(seed int64) (AccuracyResult, error) {
	cfg := vision.DefaultDatasetConfig()
	cfg.Seed = seed
	ds, err := vision.GenerateDataset(cfg)
	if err != nil {
		return AccuracyResult{}, err
	}
	clf := vision.NewActivityClassifier(3)
	if err := clf.Train(ds.Train); err != nil {
		return AccuracyResult{}, err
	}
	acc, err := clf.EvaluateAccuracy(ds.Test)
	if err != nil {
		return AccuracyResult{}, err
	}
	return AccuracyResult{Accuracy: acc, TrainN: len(ds.Train), TestN: len(ds.Test)}, nil
}

// RepCountingAccuracy reproduces the §4.1.3 claim: the 2-means rep counter
// with 4-frame debounce scored against known rep counts; the paper reports
// 83.3%.
func RepCountingAccuracy(trials int, seed int64) ([]vision.RepTrial, float64, error) {
	return vision.EvaluateRepCounting(trials, seed)
}

// ---- §5.2.2 follow-on: scaling out a saturated service ----

// ScaleOutResult compares two shared pipelines before and after the pose
// pool scales from one instance to two.
type ScaleOutResult struct {
	Before [2]float64
	After  [2]float64
}

// ScaleOut reproduces the §5.2.2 implication: when the shared pose service
// saturates, scaling it out (easy, because services are stateless)
// restores per-pipeline frame rates.
func ScaleOut(o Options) (ScaleOutResult, error) {
	reg, err := o.registry()
	if err != nil {
		return ScaleOutResult{}, err
	}
	cluster, err := core.NewCluster(apps.HomeClusterSpec(), reg)
	if err != nil {
		return ScaleOutResult{}, err
	}
	defer cluster.Close()

	fit, err := cluster.Launch(apps.FitnessConfig("sofit", 30, o.scene()), core.CoLocatePlanner{})
	if err != nil {
		return ScaleOutResult{}, err
	}
	gest, err := cluster.Launch(apps.GestureConfig("sogest", 30, "clap"), core.CoLocatePlanner{})
	if err != nil {
		return ScaleOutResult{}, err
	}

	measure := func() ([2]float64, error) {
		var wg sync.WaitGroup
		var fitRes, gestRes core.RunResult
		var fitErr, gestErr error
		cluster.Metrics().Reset()
		wg.Add(2)
		go func() {
			defer wg.Done()
			fitRes, fitErr = fit.Run(context.Background(), o.duration())
		}()
		go func() {
			defer wg.Done()
			gestRes, gestErr = gest.Run(context.Background(), o.duration())
		}()
		wg.Wait()
		if fitErr != nil {
			return [2]float64{}, fitErr
		}
		if gestErr != nil {
			return [2]float64{}, gestErr
		}
		return [2]float64{fitRes.FPS, gestRes.FPS}, nil
	}

	var out ScaleOutResult
	if out.Before, err = measure(); err != nil {
		return ScaleOutResult{}, err
	}
	pool, err := cluster.Pool(services.PoseDetector)
	if err != nil {
		return ScaleOutResult{}, err
	}
	if err := pool.Scale(context.Background(), 2); err != nil {
		return ScaleOutResult{}, err
	}
	if out.After, err = measure(); err != nil {
		return ScaleOutResult{}, err
	}
	return out, nil
}

// ---- Extension experiment: planner comparison ----

// PlannerPoint is one placement strategy's outcome on the fitness app.
type PlannerPoint struct {
	Planner string
	FPS     float64
	E2EMean time.Duration
}

// ComparePlanners runs the fitness application under every placement
// strategy on the same cluster topology: the co-location rule, the
// latency-aware scheduler (paper §7 future work), and the remote-API
// baseline. On the paper's topology the first two should coincide and both
// should dominate the baseline.
func ComparePlanners(o Options) ([]PlannerPoint, error) {
	reg, err := o.registry()
	if err != nil {
		return nil, err
	}
	planners := []core.Planner{
		core.CoLocatePlanner{},
		core.LatencyAwarePlanner{},
		core.BaselinePlanner{},
	}
	var out []PlannerPoint
	for _, planner := range planners {
		spec := apps.HomeClusterSpec()
		if planner.Name() == "baseline" {
			spec = apps.BaselineClusterSpec()
		}
		res, err := runFitness(reg, spec, planner, "plan"+planner.Name(), 20, o.scene(), o.duration())
		if err != nil {
			return nil, fmt.Errorf("experiments: planner %s: %w", planner.Name(), err)
		}
		out = append(out, PlannerPoint{Planner: planner.Name(), FPS: res.FPS, E2EMean: res.E2E.Mean})
	}
	return out, nil
}
