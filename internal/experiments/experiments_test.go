package experiments

import (
	"strings"
	"sync"
	"testing"
	"time"

	"videopipe/internal/services"
	"videopipe/internal/vision"
)

// fastRegistry keeps experiment tests quick: small costs, small corpus.
var (
	regOnce sync.Once
	regVal  *services.Registry
	regErr  error
)

func fastOptions(t *testing.T) Options {
	t.Helper()
	regOnce.Do(func() {
		opts := services.DefaultOptions()
		opts.PoseCost = 12 * time.Millisecond
		opts.ActivityCost = 2 * time.Millisecond
		opts.RepCost = time.Millisecond
		opts.DisplayCost = time.Millisecond
		opts.FallCost = time.Millisecond
		cfg := vision.DefaultDatasetConfig()
		cfg.SequencesPerActivity = 6
		cfg.FramesPerSequence = 45
		opts.DatasetConfig = cfg
		regVal, regErr = services.NewStandardRegistry(opts)
	})
	if regErr != nil {
		t.Fatalf("NewStandardRegistry: %v", regErr)
	}
	return Options{RunDuration: 1200 * time.Millisecond, Registry: regVal}
}

func TestOptionDefaults(t *testing.T) {
	var o Options
	if o.duration() != 3*time.Second {
		t.Errorf("default duration = %v", o.duration())
	}
	if o.scene() != "squat" {
		t.Errorf("default scene = %q", o.scene())
	}
	o.RunDuration = time.Second
	o.Scene = "wave"
	if o.duration() != time.Second || o.scene() != "wave" {
		t.Error("overrides ignored")
	}
}

func TestFig6ProducesAllStages(t *testing.T) {
	res, err := Fig6(fastOptions(t))
	if err != nil {
		t.Fatalf("Fig6: %v", err)
	}
	for _, stage := range []string{"load_frame", "pose", "rep_count", "total"} {
		if res.VideoPipe[stage] == 0 {
			t.Errorf("videopipe stage %q unmeasured", stage)
		}
		if res.Baseline[stage] == 0 {
			t.Errorf("baseline stage %q unmeasured", stage)
		}
	}
	// The headline shape: remote pose calls cost more than local ones.
	if res.VideoPipe["pose"] >= res.Baseline["pose"] {
		t.Errorf("pose: videopipe %v >= baseline %v", res.VideoPipe["pose"], res.Baseline["pose"])
	}
	table := res.Table()
	if !strings.Contains(table, "pose") || !strings.Contains(table, "VideoPipe") {
		t.Errorf("Table() = %q", table)
	}
}

func TestTable2SingleRow(t *testing.T) {
	rows, err := Table2(fastOptions(t), []float64{10}, []float64{10})
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if len(rows) != 1 {
		t.Fatalf("rows = %d", len(rows))
	}
	r := rows[0]
	if r.SourceFPS != 10 || r.VideoPipe <= 0 || r.Baseline <= 0 {
		t.Errorf("row = %+v", r)
	}
	if !r.HasShared || r.Shared[0] <= 0 || r.Shared[1] <= 0 {
		t.Errorf("shared column missing: %+v", r)
	}
	out := FormatTable2(rows)
	if !strings.Contains(out, "10") || !strings.Contains(out, "(") {
		t.Errorf("FormatTable2 = %q", out)
	}
}

func TestTable2NoSharedColumn(t *testing.T) {
	rows, err := Table2(fastOptions(t), []float64{5}, []float64{})
	if err != nil {
		t.Fatalf("Table2: %v", err)
	}
	if rows[0].HasShared {
		t.Error("unexpected shared column")
	}
	if !strings.Contains(FormatTable2(rows), "-") {
		t.Error("missing '-' placeholder for absent shared column")
	}
}

func TestActivityAccuracyExperiment(t *testing.T) {
	res, err := ActivityAccuracy(1)
	if err != nil {
		t.Fatalf("ActivityAccuracy: %v", err)
	}
	if res.Accuracy <= 0.9 {
		t.Errorf("accuracy = %.3f, want > 0.9 (paper §4.1.2)", res.Accuracy)
	}
	if res.TrainN == 0 || res.TestN == 0 {
		t.Errorf("split sizes: train %d test %d", res.TrainN, res.TestN)
	}
}

func TestRepCountingExperiment(t *testing.T) {
	trials, mean, err := RepCountingAccuracy(12, 7)
	if err != nil {
		t.Fatalf("RepCountingAccuracy: %v", err)
	}
	if len(trials) != 12 {
		t.Fatalf("trials = %d", len(trials))
	}
	if mean < 0.7 {
		t.Errorf("mean accuracy = %.3f, want >= 0.7 (paper: 0.833)", mean)
	}
}

func TestScaleOutImprovesSaturatedService(t *testing.T) {
	if raceEnabled {
		t.Skip("performance-shape assertion; race builds are compute-bound")
	}
	// Use a single-worker pose service so one instance is clearly
	// saturated by two pipelines.
	opts := services.DefaultOptions()
	opts.PoseCost = 40 * time.Millisecond
	opts.PoseWorkers = 1
	opts.ActivityCost = 2 * time.Millisecond
	opts.RepCost = time.Millisecond
	opts.DisplayCost = time.Millisecond
	cfg := vision.DefaultDatasetConfig()
	cfg.SequencesPerActivity = 4
	cfg.FramesPerSequence = 45
	opts.DatasetConfig = cfg
	reg, err := services.NewStandardRegistry(opts)
	if err != nil {
		t.Fatalf("registry: %v", err)
	}

	res, err := ScaleOut(Options{RunDuration: 2 * time.Second, Registry: reg})
	if err != nil {
		t.Fatalf("ScaleOut: %v", err)
	}
	before := res.Before[0] + res.Before[1]
	after := res.After[0] + res.After[1]
	t.Logf("scale-out: before %.2f+%.2f=%.2f fps, after %.2f+%.2f=%.2f fps",
		res.Before[0], res.Before[1], before, res.After[0], res.After[1], after)
	if after <= before*1.2 {
		t.Errorf("scaling out did not help: %.2f -> %.2f total fps", before, after)
	}
}

func TestAblationQueueing(t *testing.T) {
	if raceEnabled {
		t.Skip("performance-shape assertion; race builds are compute-bound")
	}
	points, err := AblationQueueing(fastOptions(t), []int{1, 4})
	if err != nil {
		t.Fatalf("AblationQueueing: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	// More credits must not reduce FPS, and must raise latency.
	if points[1].FPS < points[0].FPS*0.85 {
		t.Errorf("credits=4 FPS %.2f much lower than credits=1 %.2f", points[1].FPS, points[0].FPS)
	}
	if points[1].E2EMean <= points[0].E2EMean {
		t.Errorf("deeper admission did not raise latency: %v vs %v", points[1].E2EMean, points[0].E2EMean)
	}
}

func TestAblationCodec(t *testing.T) {
	if raceEnabled {
		t.Skip("performance-shape assertion; race builds are compute-bound")
	}
	res, err := AblationCodec(fastOptions(t))
	if err != nil {
		t.Fatalf("AblationCodec: %v", err)
	}
	if res.JPEGFPS <= 0 || res.RawFPS <= 0 {
		t.Fatalf("degenerate result: %+v", res)
	}
	// Raw transfer is ~17x larger; latency must suffer.
	if res.RawE2E <= res.JPEGE2E {
		t.Errorf("raw e2e %v not worse than jpeg %v", res.RawE2E, res.JPEGE2E)
	}
}

func TestAblationBroker(t *testing.T) {
	if raceEnabled {
		t.Skip("performance-shape assertion; race builds are compute-bound")
	}
	res, err := AblationBroker(fastOptions(t))
	if err != nil {
		t.Fatalf("AblationBroker: %v", err)
	}
	if res.BrokerE2E <= res.DirectE2E {
		t.Errorf("broker hop e2e %v not worse than direct %v", res.BrokerE2E, res.DirectE2E)
	}
}

func TestAblationWorkers(t *testing.T) {
	if raceEnabled {
		t.Skip("performance-shape assertion; race builds are compute-bound")
	}
	// Dedicated fast registries are built inside; use small worker set.
	o := Options{RunDuration: 1200 * time.Millisecond}
	points, err := AblationWorkers(o, []int{1, 2})
	if err != nil {
		t.Fatalf("AblationWorkers: %v", err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	if points[1].Aggregate < points[0].Aggregate {
		t.Errorf("2 workers aggregate %.2f below 1 worker %.2f", points[1].Aggregate, points[0].Aggregate)
	}
}

func TestComparePlanners(t *testing.T) {
	points, err := ComparePlanners(fastOptions(t))
	if err != nil {
		t.Fatalf("ComparePlanners: %v", err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	byName := map[string]PlannerPoint{}
	for _, p := range points {
		byName[p.Planner] = p
	}
	for _, name := range []string{"videopipe", "latency-aware", "baseline"} {
		if byName[name].FPS <= 0 {
			t.Errorf("planner %s produced no throughput", name)
		}
	}
	if !raceEnabled {
		// Both smart planners beat the synchronous remote baseline.
		if byName["videopipe"].FPS <= byName["baseline"].FPS {
			t.Errorf("videopipe %.2f <= baseline %.2f", byName["videopipe"].FPS, byName["baseline"].FPS)
		}
		if byName["latency-aware"].FPS <= byName["baseline"].FPS {
			t.Errorf("latency-aware %.2f <= baseline %.2f", byName["latency-aware"].FPS, byName["baseline"].FPS)
		}
	}
}
