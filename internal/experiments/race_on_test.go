//go:build race

package experiments

// raceEnabled reports that the race detector is active: pixel work runs an
// order of magnitude slower, so performance-shape assertions (which compare
// simulated costs that real compute then dwarfs) are skipped.
const raceEnabled = true
