package experiments

import (
	"fmt"

	"videopipe/internal/apps"
	"videopipe/internal/core"
	"videopipe/internal/device"
	"videopipe/internal/netsim"
	"videopipe/internal/services"
)

// ---- Flood scenarios: shared workload mixes for the saturation harness ----
//
// vpflood (cmd/vpflood, internal/flood) sweeps offered load against a
// cluster until latency knees over. The mixes below are the workloads it
// sweeps: each bundles a cluster spec, a service registry constructor and
// a per-pipeline config builder, so the harness, its tests and
// EXPERIMENTS.md all agree on what "pose" or "scripted" means.

// FloodMix names one of the workload families the saturation harness can
// drive.
type FloodMix string

const (
	// MixPose floods N copies of the fitness pipeline (Fig. 4) — the
	// paper's flagship app, dominated by the pose-detection service.
	MixPose FloodMix = "pose"
	// MixMultiStage rotates the three evaluation apps (fitness, gesture,
	// fall) across pipelines, exercising heterogeneous DAG shapes and
	// service sets competing for the same devices.
	MixMultiStage FloodMix = "multistage"
	// MixScripted floods pipelines whose stages are pure PipeScript
	// counted loops with no services at all, isolating the interpreter
	// and transport from the service tier.
	MixScripted FloodMix = "scripted"
)

// FloodMixes lists every mix, in the order EXPERIMENTS.md tables them.
func FloodMixes() []FloodMix {
	return []FloodMix{MixPose, MixMultiStage, MixScripted}
}

// FloodScenario is everything the harness needs to stand up one workload:
// the cluster to build, the registry to back it, and the config of the
// i-th flooded pipeline.
type FloodScenario struct {
	// Mix is the family this scenario realises.
	Mix FloodMix
	// Spec is the cluster the pipelines launch onto.
	Spec core.ClusterSpec
	// Registry builds a fresh service registry for one cluster.
	Registry func() (*services.Registry, error)
	// Pipeline builds the config of pipeline i, named name. The source
	// FPS is nominal: the flood driver injects frames itself via
	// Pipeline.Offer and never runs the camera source.
	Pipeline func(name string, i int) core.PipelineConfig
}

// FloodScenarioFor resolves a mix name to its scenario.
func FloodScenarioFor(mix FloodMix) (FloodScenario, error) {
	switch mix {
	case MixPose:
		return FloodScenario{
			Mix:      MixPose,
			Spec:     apps.HomeClusterSpec(),
			Registry: standardFloodRegistry,
			Pipeline: func(name string, _ int) core.PipelineConfig {
				return apps.FitnessConfig(name, floodNominalFPS, "squat")
			},
		}, nil
	case MixMultiStage:
		return FloodScenario{
			Mix:      MixMultiStage,
			Spec:     apps.HomeClusterSpec(),
			Registry: standardFloodRegistry,
			Pipeline: func(name string, i int) core.PipelineConfig {
				switch i % 3 {
				case 0:
					return apps.FitnessConfig(name, floodNominalFPS, "squat")
				case 1:
					return apps.GestureConfig(name, floodNominalFPS, "clap")
				default:
					return apps.FallConfig(name, floodNominalFPS)
				}
			},
		}, nil
	case MixScripted:
		return FloodScenario{
			Mix:  MixScripted,
			Spec: scriptedClusterSpec(),
			Registry: func() (*services.Registry, error) {
				// No services: the mix measures the script interpreter
				// and transport alone, and skips classifier training.
				return services.NewRegistry(), nil
			},
			Pipeline: func(name string, _ int) core.PipelineConfig {
				return scriptedConfig(name)
			},
		}, nil
	}
	return FloodScenario{}, fmt.Errorf("experiments: unknown flood mix %q (known: %v)", mix, FloodMixes())
}

// floodNominalFPS satisfies config validation; the flood driver bypasses
// the source, so the value never paces anything.
const floodNominalFPS = 10

// standardFloodRegistry backs the service-using mixes with the
// paper-calibrated costs, so knees land where the evaluation predicts.
func standardFloodRegistry() (*services.Registry, error) {
	return services.NewStandardRegistry(services.DefaultOptions())
}

// scriptedClusterSpec is a two-device cluster with no service placements:
// the phone runs the first stage, the desktop the rest.
func scriptedClusterSpec() core.ClusterSpec {
	return core.ClusterSpec{
		Devices: []device.Config{
			{Name: "phone", Class: device.Phone},
			{Name: "desktop", Class: device.Desktop},
		},
		DefaultLink: netsim.WiFi,
	}
}

// scriptedStageSrc is one scripted-heavy stage: a counted busy loop, then
// hand the frame to the next stage.
const scriptedStageSrc = `
	function event_received(message) {
		var acc = 0;
		for (var i = 0; i < 4000; i++) {
			acc = acc + i * 3;
		}
		call_module("%s", {frame_ref: message.frame_ref, acc: acc});
	}
`

// scriptedSinkSrc terminates the chain after a final busy loop.
const scriptedSinkSrc = `
	function event_received(message) {
		var acc = 0;
		for (var i = 0; i < 4000; i++) {
			acc = acc + i * 3;
		}
		frame_done();
	}
`

// scriptedConfig builds a three-stage pure-PipeScript pipeline: no
// services, every stage a counted loop, frames completed at the sink.
func scriptedConfig(name string) core.PipelineConfig {
	return core.PipelineConfig{
		Name: name,
		Modules: []core.ModuleConfig{
			{
				Name:   "burn_a",
				Source: fmt.Sprintf(scriptedStageSrc, "burn_b"),
				Next:   []string{"burn_b"},
			},
			{
				Name:   "burn_b",
				Source: fmt.Sprintf(scriptedStageSrc, "burn_c"),
				Next:   []string{"burn_c"},
				Device: "desktop",
			},
			{
				Name:   "burn_c",
				Source: scriptedSinkSrc,
				Device: "desktop",
			},
		},
		Source: core.SourceConfig{
			Device:      "phone",
			FirstModule: "burn_a",
			FPS:         floodNominalFPS,
			Width:       apps.FrameWidth,
			Height:      apps.FrameHeight,
		},
	}
}
