package flood

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"videopipe/internal/core"
	"videopipe/internal/experiments"
	"videopipe/internal/frame"
	"videopipe/internal/metrics"
)

// Options configures one open-loop run.
type Options struct {
	// Pipelines is the fleet size; zero selects 4.
	Pipelines int
	// Rate is the offered rate per pipeline in events per second; zero
	// selects 5.
	Rate float64
	// Horizon is the injection window; zero selects 3 seconds.
	Horizon time.Duration
	// Process is the inter-arrival model; empty selects Poisson.
	Process Process
	// Seed determines every schedule in the fleet (via PipelineSeed) and
	// the merged histogram's reservoir; zero selects 1.
	Seed int64
	// Planner places modules; nil selects the cluster default
	// (CoLocatePlanner).
	Planner core.Planner
	// DrainTimeout bounds the wait for in-flight frames after the last
	// injection; zero selects 5 seconds.
	DrainTimeout time.Duration
	// Tune runs the adaptive runtime tuner (core.Tuner) against the fleet
	// for the duration of the run: dynamic batching, pool scaling, credit
	// resizing and measured-cost re-planning, journaled into the result.
	Tune bool
	// TuneConfig overrides the tuner's knobs; nil selects defaults seeded
	// from the run seed.
	TuneConfig *core.TunerConfig
	// InitialTuning, when set (and Tune is on), primes the fresh cluster
	// with previously learned setpoints before injection starts — how a
	// sweep carries tuning from rung to rung.
	InitialTuning *core.TuningSetpoints
}

func (o Options) withDefaults() Options {
	if o.Pipelines <= 0 {
		o.Pipelines = 4
	}
	if o.Rate <= 0 {
		o.Rate = 5
	}
	if o.Horizon <= 0 {
		o.Horizon = 3 * time.Second
	}
	if o.Process == "" {
		o.Process = Poisson
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.DrainTimeout <= 0 {
		o.DrainTimeout = 5 * time.Second
	}
	return o
}

// Result is one run's measurement: offered vs achieved throughput plus
// the latency distributions.
type Result struct {
	// Pipelines is the fleet size that ran.
	Pipelines int
	// Offered is the total number of scheduled arrival events.
	Offered int
	// OfferedEPS is the aggregate offered rate (Offered / Horizon).
	OfferedEPS float64
	// Admitted counts frames the pipelines accepted at the source.
	Admitted uint64
	// DroppedSource counts frames rejected at admission (no credit) —
	// the open-loop generator never waits, so overload lands here.
	DroppedSource uint64
	// Delivered counts frames that reached frame_done anywhere in the
	// fleet (sinks and early-completing intermediate modules alike).
	Delivered uint64
	// AchievedEPS is the aggregate completion rate (Delivered / Horizon).
	AchievedEPS float64
	// E2E is the end-to-end latency distribution, merged across every
	// module of every pipeline, measured from the *scheduled* arrival
	// instant so queueing delay is charged to the system, not hidden by
	// a late generator (no coordinated omission).
	E2E metrics.Snapshot
	// GenLateness is how far behind schedule the generator itself fired —
	// the harness's own health check. It must stay tiny for the run to
	// count as open-loop.
	GenLateness metrics.Snapshot
	// Elapsed is wall time from first scheduled event through drain.
	Elapsed time.Duration
	// TunerActions is the tuner's journal for the run (empty without
	// Options.Tune) — what the adaptive runtime actually did.
	TunerActions []string
	// Tuning is the final actuator state of a tuned run, for carrying into
	// the next run of a sweep (zero-valued without Options.Tune).
	Tuning core.TuningSetpoints
}

// startLead is how far in the future the fleet's common start instant is
// placed, so offset-zero events are not already late at launch.
const startLead = 20 * time.Millisecond

// cycleLen is how many template frames each lane pre-renders; injection
// cycles through them so rendering cost never perturbs the schedule.
const cycleLen = 16

// lane is one pipeline's share of the fleet: its schedule and pre-rendered
// frames, plus its injection tallies.
type lane struct {
	pipe      *core.Pipeline
	cfg       core.PipelineConfig
	sched     Schedule
	templates []*frame.Frame
	admitted  uint64
	dropped   uint64
}

// Run executes one open-loop run of the scenario: build a fresh cluster,
// launch the fleet, inject every pipeline's schedule against a common
// start instant, drain, and merge the measurements.
func Run(sc experiments.FloodScenario, o Options) (Result, error) {
	o = o.withDefaults()
	reg, err := sc.Registry()
	if err != nil {
		return Result{}, fmt.Errorf("flood: registry: %w", err)
	}
	cluster, err := core.NewCluster(sc.Spec, reg)
	if err != nil {
		return Result{}, fmt.Errorf("flood: cluster: %w", err)
	}
	defer cluster.Close()

	lanes := make([]*lane, o.Pipelines)
	for i := range lanes {
		cfg := sc.Pipeline(fmt.Sprintf("flood%d", i), i)
		p, err := cluster.Launch(cfg, o.Planner)
		if err != nil {
			return Result{}, fmt.Errorf("flood: launch pipeline %d: %w", i, err)
		}
		p.PrimeCredits()
		sched, err := Generate(o.Process, o.Rate, o.Horizon, PipelineSeed(o.Seed, i))
		if err != nil {
			return Result{}, err
		}
		templates, err := renderCycle(cfg.Source)
		if err != nil {
			return Result{}, fmt.Errorf("flood: render templates for pipeline %d: %w", i, err)
		}
		lanes[i] = &lane{pipe: p, cfg: cfg, sched: sched, templates: templates}
	}
	defer func() {
		for _, ln := range lanes {
			for _, t := range ln.templates {
				t.Release()
			}
		}
	}()

	// The tuner runs alongside injection and is stopped (and read) after
	// drain, so late actions are journaled too.
	var tuner *core.Tuner
	if o.Tune {
		var tc core.TunerConfig
		if o.TuneConfig != nil {
			tc = *o.TuneConfig
		}
		if tc.Seed == 0 {
			tc.Seed = o.Seed
		}
		tuner = core.NewTuner(cluster, tc)
		tuneCtx, cancelTune := context.WithCancel(context.Background())
		defer cancelTune()
		if o.InitialTuning != nil {
			tuner.Prime(tuneCtx, *o.InitialTuning)
		}
		go tuner.Run(tuneCtx)
	}

	// Inject. Each lane walks its schedule against the shared start
	// instant; when the system backs up, Offer rejects instantly and the
	// lane stays on schedule — it never blocks or skips.
	lateness := &metrics.Histogram{}
	lateness.Seed(uint64(o.Seed))
	start := time.Now().Add(startLead)
	var wg sync.WaitGroup
	for _, ln := range lanes {
		wg.Add(1)
		go func(ln *lane) {
			defer wg.Done()
			for k, off := range ln.sched.Offsets {
				due := start.Add(off)
				if d := time.Until(due); d > 0 {
					time.Sleep(d)
				}
				f := ln.templates[k%len(ln.templates)].Clone()
				// Charge latency from the scheduled instant: a frame
				// that waited to be injected pays for the wait.
				f.Captured = due
				if ln.pipe.Offer(f) {
					ln.admitted++
				} else {
					ln.dropped++
				}
				if late := time.Since(due); late > 0 {
					lateness.Observe(late)
				} else {
					lateness.Observe(0)
				}
			}
		}(ln)
	}
	wg.Wait()

	res := Result{Pipelines: o.Pipelines}
	for _, ln := range lanes {
		res.Offered += len(ln.sched.Offsets)
		res.Admitted += ln.admitted
		res.DroppedSource += ln.dropped
	}

	// Drain: wait until every admitted frame completed, or the delivered
	// count stops moving, or the timeout lapses.
	mreg := cluster.Metrics()
	delivered := func() uint64 {
		var sum uint64
		for _, ln := range lanes {
			for _, mod := range ln.pipe.Modules() {
				key := ln.pipe.Name() + "." + mod
				sum += mreg.Meter("pipeline." + key + ".frames_done").Count()
			}
		}
		return sum
	}
	deadline := time.Now().Add(o.DrainTimeout)
	last, stableSince := delivered(), time.Now()
	for last < res.Admitted && time.Now().Before(deadline) {
		time.Sleep(25 * time.Millisecond)
		cur := delivered()
		if cur != last {
			last, stableSince = cur, time.Now()
			continue
		}
		if time.Since(stableSince) > 500*time.Millisecond {
			break
		}
	}
	res.Delivered = delivered()
	res.Elapsed = time.Since(start)
	if os.Getenv("VPFLOOD_DEBUG") != "" {
		for _, ln := range lanes {
			for _, mod := range ln.pipe.Modules() {
				key := ln.pipe.Name() + "." + mod
				fmt.Fprintf(os.Stderr, "[flood] %s done=%d abandoned=%d e2e_p99=%v\n",
					key,
					mreg.Meter("pipeline."+key+".frames_done").Count(),
					mreg.Meter("module."+key+".abandoned").Count(),
					mreg.Histogram("pipeline."+key+".e2e").Snapshot().P99)
			}
		}
		for _, svc := range cluster.ServiceNames() {
			if pool, err := cluster.Pool(svc); err == nil {
				fmt.Fprintf(os.Stderr, "[flood] pool %s size=%d calls=%d batches=%d waitP99=%v\n",
					svc, pool.Size(), pool.Calls(), pool.Batches(), pool.WaitStats().P99)
			}
		}
	}

	// Merge the per-module e2e histograms into one distribution. Each
	// module contributes its (unbiased) reservoir; re-observing through a
	// seeded histogram keeps the merge reproducible.
	merged := &metrics.Histogram{}
	merged.Seed(uint64(o.Seed) * 2654435761)
	for _, ln := range lanes {
		for _, mod := range ln.pipe.Modules() {
			key := ln.pipe.Name() + "." + mod
			for _, s := range mreg.Histogram("pipeline." + key + ".e2e").Samples() {
				merged.Observe(s)
			}
		}
	}
	res.E2E = merged.Snapshot()
	res.GenLateness = lateness.Snapshot()
	if tuner != nil {
		res.TunerActions = tuner.JournalStrings()
		res.Tuning = tuner.Setpoints()
	}
	res.OfferedEPS = float64(res.Offered) / o.Horizon.Seconds()
	res.AchievedEPS = float64(res.Delivered) / o.Horizon.Seconds()
	return res, nil
}

// renderCycle pre-renders the lane's template frames by sampling the
// pipeline's own renderer across one scene cycle. Injection clones a
// template per event, so per-event cost is one pooled copy regardless of
// scene complexity.
func renderCycle(sc core.SourceConfig) ([]*frame.Frame, error) {
	render, err := core.SourceRenderer(sc)
	if err != nil {
		return nil, err
	}
	// Sample across two seconds — one rep at the default 0.5 reps/sec —
	// so pose-bearing scenes show motion, not one frozen posture.
	const cycleSpan = 2 * time.Second
	frames := make([]*frame.Frame, 0, cycleLen)
	for k := 0; k < cycleLen; k++ {
		f, err := render(uint64(k), cycleSpan*time.Duration(k)/cycleLen)
		if err != nil {
			for _, t := range frames {
				t.Release()
			}
			return nil, err
		}
		frames = append(frames, f)
	}
	return frames, nil
}
