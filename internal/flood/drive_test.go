package flood_test

import (
	"context"
	"runtime"
	"testing"
	"time"

	"videopipe/internal/core"
	"videopipe/internal/device"
	"videopipe/internal/experiments"
	"videopipe/internal/flood"
	"videopipe/internal/netsim"
	"videopipe/internal/services"
)

// slowSinkSrc hands every frame to the (deliberately slow) sink service
// and completes it.
const slowSinkSrc = `
	function event_received(message) {
		call_service("slow_sink", {frame_ref: message.frame_ref});
		frame_done();
	}
`

// slowScenario is a one-module pipeline backed by a sink service with a
// fixed simulated cost — a workload whose capacity is known by
// construction (workers / cost), so the harness's own claims can be
// checked against arithmetic instead of against itself.
func slowScenario(cost time.Duration, workers int) experiments.FloodScenario {
	return experiments.FloodScenario{
		Mix: "slowsink",
		Spec: core.ClusterSpec{
			Devices: []device.Config{
				{Name: "phone", Class: device.Phone},
				{Name: "desktop", Class: device.Desktop},
			},
			DefaultLink: netsim.WiFi,
			Services:    []core.ServicePlacement{{Service: "slow_sink", Device: "desktop"}},
		},
		Registry: func() (*services.Registry, error) {
			reg := services.NewRegistry()
			err := reg.Register(services.Spec{
				Name:    "slow_sink",
				Cost:    cost,
				Workers: workers,
				Handler: func(context.Context, services.Request) (services.Response, error) {
					return services.Response{}, nil
				},
			})
			return reg, err
		},
		Pipeline: func(name string, _ int) core.PipelineConfig {
			return core.PipelineConfig{
				Name: name,
				Modules: []core.ModuleConfig{{
					Name:     "sink",
					Source:   slowSinkSrc,
					Services: []string{"slow_sink"},
				}},
				Source: core.SourceConfig{
					Device:      "phone",
					FirstModule: "sink",
					FPS:         10,
					Width:       64,
					Height:      48,
				},
			}
		},
	}
}

// TestOpenLoopUnderOverload is the harness-correctness proof: drive a
// sink that can serve ~16 eps at 100 eps and check that the *generator*
// stays on schedule while the *system* shows the overload — rising
// latency and source-side drops. A closed-loop (blocking) generator would
// fail every one of these assertions: it would fall behind schedule,
// admit everything, and report flattering latency.
func TestOpenLoopUnderOverload(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sc := slowScenario(60*time.Millisecond, 1)

	overload, err := flood.Run(sc, flood.Options{
		Pipelines: 1,
		Rate:      100,
		Horizon:   1200 * time.Millisecond,
		Process:   flood.Uniform,
		Seed:      5,
	})
	if err != nil {
		t.Fatalf("overload run: %v", err)
	}
	light, err := flood.Run(sc, flood.Options{
		Pipelines: 1,
		Rate:      5,
		Horizon:   1200 * time.Millisecond,
		Process:   flood.Uniform,
		Seed:      5,
	})
	if err != nil {
		t.Fatalf("light run: %v", err)
	}

	// Offered load is exactly the schedule, independent of the sink.
	if overload.Offered != 120 {
		t.Errorf("overload offered %d events, want 120 (uniform 100 eps x 1.2s)", overload.Offered)
	}
	if overload.Admitted+overload.DroppedSource != uint64(overload.Offered) {
		t.Errorf("admitted %d + dropped %d != offered %d",
			overload.Admitted, overload.DroppedSource, overload.Offered)
	}
	// The generator itself never fell behind: open loop means injection
	// timing is independent of the system's backlog.
	if p99 := overload.GenLateness.P99; p99 > 150*time.Millisecond {
		t.Errorf("generator lateness p99 = %v under overload; the loop is not open", p99)
	}
	// Overload shows up where it should: drops at the source...
	if overload.DroppedSource == 0 {
		t.Error("no source drops at 6x capacity; admission is not shedding")
	}
	if light.DroppedSource != 0 {
		t.Errorf("light run dropped %d frames at 1/3 capacity", light.DroppedSource)
	}
	// ...and in the latency distribution, charged from the scheduled
	// arrival instant.
	if overload.E2E.P99 <= light.E2E.P99 {
		t.Errorf("overload p99 %v not above light-load p99 %v", overload.E2E.P99, light.E2E.P99)
	}
	if light.Delivered == 0 || overload.Delivered == 0 {
		t.Errorf("deliveries: light %d, overload %d, want both > 0", light.Delivered, overload.Delivered)
	}

	waitNoGoroutineLeak(t, baseline)
}

// TestRunReproducible pins the schedule side of a run: same seed, same
// offered event count, byte-identical per-pipeline schedules.
func TestRunReproducible(t *testing.T) {
	sc := slowScenario(2*time.Millisecond, 4)
	opts := flood.Options{
		Pipelines: 2,
		Rate:      30,
		Horizon:   400 * time.Millisecond,
		Process:   flood.Poisson,
		Seed:      11,
	}
	a, err := flood.Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := flood.Run(sc, opts)
	if err != nil {
		t.Fatal(err)
	}
	if a.Offered != b.Offered {
		t.Errorf("same seed offered %d vs %d events", a.Offered, b.Offered)
	}
	for i := 0; i < opts.Pipelines; i++ {
		s1, err := flood.Generate(opts.Process, opts.Rate, opts.Horizon, flood.PipelineSeed(opts.Seed, i))
		if err != nil {
			t.Fatal(err)
		}
		s2, err := flood.Generate(opts.Process, opts.Rate, opts.Horizon, flood.PipelineSeed(opts.Seed, i))
		if err != nil {
			t.Fatal(err)
		}
		if s1.Fingerprint() != s2.Fingerprint() {
			t.Errorf("pipeline %d schedules differ across identical runs", i)
		}
	}
}

// TestSweepFindsKnee smoke-tests the ladder against a sink whose capacity
// is known by construction (~50 eps): the sweep must record multiple
// steps, estimate a positive knee, and stop for a saturation reason
// rather than running off the end of the ladder.
func TestSweepFindsKnee(t *testing.T) {
	baseline := runtime.NumGoroutine()
	sc := slowScenario(20*time.Millisecond, 1)
	sw, err := flood.Sweep(sc, flood.SweepOptions{
		Base: flood.Options{
			Pipelines: 1,
			Horizon:   600 * time.Millisecond,
			Process:   flood.Uniform,
			Seed:      3,
		},
		StartRate: 10,
		Factor:    2,
		MaxSteps:  6,
		P99Budget: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sw.Steps) < 2 {
		t.Fatalf("sweep recorded %d steps, want >= 2", len(sw.Steps))
	}
	if sw.KneeEPS <= 0 {
		t.Errorf("knee estimate %v, want > 0", sw.KneeEPS)
	}
	if sw.StopReason == "" {
		t.Error("sweep finished without a stop reason")
	}
	// 10 eps against a 50 eps sink must not read as saturation.
	first := sw.Steps[0].Result
	if first.AchievedEPS < 0.9*first.OfferedEPS {
		t.Errorf("first step achieved %.3g of offered %.3g eps; harness is losing frames at 1/5 capacity",
			first.AchievedEPS, first.OfferedEPS)
	}
	waitNoGoroutineLeak(t, baseline)
}

// waitNoGoroutineLeak polls until the goroutine count returns to the
// pre-test baseline (plus scheduler slack), failing with a full stack
// dump if it never drains — same contract as the chaos suite's check.
func waitNoGoroutineLeak(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= baseline+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			t.Errorf("goroutine leak: %d running, baseline %d\n%s",
				n, baseline, buf[:runtime.Stack(buf, true)])
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
}
