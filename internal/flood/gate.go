package flood

import (
	"fmt"
	"strings"
	"time"

	"videopipe/internal/benchio"
)

// GateOptions configures the regression gate's tolerances.
type GateOptions struct {
	// Tolerance is the allowed relative drop of each knee_eps below the
	// baseline; zero selects 0.15 (-15%). The check is one-sided: a knee
	// that moved up is an improvement, not a regression — failing on it
	// would make the gate flakier without catching anything (a stale
	// baseline shows up in the printed margins either way).
	Tolerance float64
	// P99Budget is an absolute ceiling on each knee entry's p99_ms in the
	// *current* run, independent of the baseline; zero skips the check.
	P99Budget time.Duration
	// P95Budget and P999Budget are the same absolute check on the knee's
	// p95_ms / p999_ms — the tail-headroom gates; zero skips each.
	P95Budget  time.Duration
	P999Budget time.Duration
}

func (o GateOptions) withDefaults() GateOptions {
	if o.Tolerance <= 0 {
		o.Tolerance = 0.15
	}
	return o
}

// kneeSuffix marks the per-mix summary entries the gate compares. vpflood
// writes one such entry per swept mix alongside the per-step rows.
const kneeSuffix = "_knee"

// Gate diffs a fresh sweep report against the checked-in baseline and
// decides pass/fail. For every baseline knee entry it checks that the
// current report has the entry, that knee_eps drifted by at most the
// relative tolerance, and (when a budget is set) that the current p99_ms
// is under the absolute budget. The returned string is the full
// per-metric diff — printed on pass and fail alike, so CI logs always
// show the margins, not just the verdict.
func Gate(baseline, current *benchio.Report, o GateOptions) (string, error) {
	o = o.withDefaults()
	var b strings.Builder
	var violations []string
	compared := 0
	for _, base := range baseline.Experiments {
		if !strings.HasSuffix(base.Name, kneeSuffix) {
			continue
		}
		compared++
		cur := current.Entry(base.Name)
		if cur == nil {
			violations = append(violations, fmt.Sprintf("%s: missing from current report", base.Name))
			fmt.Fprintf(&b, "%-22s MISSING from current report\n", base.Name)
			continue
		}
		bk, ck := base.Metrics["knee_eps"], cur.Metrics["knee_eps"]
		drift := 0.0
		if bk > 0 {
			drift = (ck - bk) / bk
		}
		verdict := "ok"
		if bk <= 0 {
			verdict = "FAIL"
			violations = append(violations, fmt.Sprintf("%s: baseline knee_eps %.4g is not positive", base.Name, bk))
		} else if drift < -o.Tolerance {
			verdict = "FAIL"
			violations = append(violations, fmt.Sprintf("%s: knee_eps dropped %+.1f%% (baseline %.4g, current %.4g, tolerance -%.0f%%)",
				base.Name, drift*100, bk, ck, o.Tolerance*100))
		}
		fmt.Fprintf(&b, "%-22s knee_eps  baseline=%-9.4g current=%-9.4g drift=%+6.1f%%  (tolerance -%.0f%%)  %s\n",
			base.Name, bk, ck, drift*100, o.Tolerance*100, verdict)
		for _, tail := range []struct {
			metric string
			budget time.Duration
		}{
			{"p95_ms", o.P95Budget},
			{"p99_ms", o.P99Budget},
			{"p999_ms", o.P999Budget},
		} {
			if tail.budget <= 0 {
				continue
			}
			budgetMS := float64(tail.budget) / float64(time.Millisecond)
			val, present := cur.Metrics[tail.metric]
			verdict = "ok"
			switch {
			case !present:
				verdict = "FAIL"
				violations = append(violations, fmt.Sprintf("%s: current report has no %s to gate on", base.Name, tail.metric))
			case val > budgetMS:
				verdict = "FAIL"
				violations = append(violations, fmt.Sprintf("%s: current %s %.4g exceeds absolute budget %.4gms", base.Name, tail.metric, val, budgetMS))
			}
			fmt.Fprintf(&b, "%-22s %-9s current=%-9.4g budget=%-9.4g %s\n", base.Name, tail.metric, val, budgetMS, verdict)
		}
	}
	if compared == 0 {
		return b.String(), fmt.Errorf("flood: baseline report has no %s entries to gate on", kneeSuffix)
	}
	if len(violations) > 0 {
		return b.String(), fmt.Errorf("flood: regression gate failed:\n  %s", strings.Join(violations, "\n  "))
	}
	return b.String(), nil
}
