package flood_test

import (
	"strings"
	"testing"
	"time"

	"videopipe/internal/benchio"
	"videopipe/internal/flood"
)

func kneeReport(name string, kneeEPS, p99MS float64) *benchio.Report {
	e := &benchio.Entry{Name: name + "_knee"}
	e.Set("knee_eps", kneeEPS)
	e.Set("p99_ms", p99MS)
	return &benchio.Report{Experiments: []*benchio.Entry{e}}
}

func TestGatePassesWithinTolerance(t *testing.T) {
	base := kneeReport("pose", 40, 120)
	cur := kneeReport("pose", 36, 130) // -10%, inside the default ±15%
	diff, err := flood.Gate(base, cur, flood.GateOptions{P99Budget: 250 * time.Millisecond})
	if err != nil {
		t.Fatalf("gate failed inside tolerance: %v\n%s", err, diff)
	}
	for _, want := range []string{"pose_knee", "knee_eps", "-10.0%", "p99_ms", "ok"} {
		if !strings.Contains(diff, want) {
			t.Errorf("diff missing %q:\n%s", want, diff)
		}
	}
}

func TestGateFailsOnKneeDrift(t *testing.T) {
	base := kneeReport("pose", 40, 120)
	cur := kneeReport("pose", 30, 120) // -25%
	diff, err := flood.Gate(base, cur, flood.GateOptions{})
	if err == nil {
		t.Fatalf("gate passed a -25%% knee regression:\n%s", diff)
	}
	for _, want := range []string{"pose_knee", "-25.0%", "tolerance"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
	// A custom tolerance wide enough must pass the same pair.
	if _, err := flood.Gate(base, cur, flood.GateOptions{Tolerance: 0.30}); err != nil {
		t.Errorf("gate failed with a -30%% tolerance: %v", err)
	}
}

func TestGatePassesOnKneeImprovement(t *testing.T) {
	// The knee check is one-sided: a knee far above baseline is an
	// improvement (and a hint the baseline is stale), not a regression.
	base := kneeReport("pose", 40, 120)
	cur := kneeReport("pose", 70, 120) // +75%
	if diff, err := flood.Gate(base, cur, flood.GateOptions{}); err != nil {
		t.Errorf("gate failed a +75%% knee improvement: %v\n%s", err, diff)
	}
}

func TestGateFailsOnP99Budget(t *testing.T) {
	base := kneeReport("pose", 40, 120)
	cur := kneeReport("pose", 41, 400)
	diff, err := flood.Gate(base, cur, flood.GateOptions{P99Budget: 250 * time.Millisecond})
	if err == nil {
		t.Fatalf("gate passed a p99 over budget:\n%s", diff)
	}
	if !strings.Contains(err.Error(), "p99") || !strings.Contains(err.Error(), "budget") {
		t.Errorf("error does not name the p99 budget: %v", err)
	}
	// Without a budget the same pair passes.
	if _, err := flood.Gate(base, cur, flood.GateOptions{}); err != nil {
		t.Errorf("gate enforced an unset p99 budget: %v", err)
	}
}

func TestGateFailsOnTailBudgets(t *testing.T) {
	base := kneeReport("pose", 40, 120)
	cur := kneeReport("pose", 41, 120)
	cur.Experiments[0].Set("p95_ms", 300)
	cur.Experiments[0].Set("p999_ms", 500)

	// Each tail budget is independent: p95 over its ceiling fails even
	// with p99 comfortably inside.
	_, err := flood.Gate(base, cur, flood.GateOptions{P95Budget: 250 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "p95_ms") {
		t.Errorf("p95 budget not enforced: %v", err)
	}
	_, err = flood.Gate(base, cur, flood.GateOptions{P999Budget: 400 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "p999_ms") {
		t.Errorf("p999 budget not enforced: %v", err)
	}
	// Wide enough budgets pass, and unset budgets are skipped entirely.
	if _, err := flood.Gate(base, cur, flood.GateOptions{
		P95Budget: 350 * time.Millisecond, P999Budget: 600 * time.Millisecond,
	}); err != nil {
		t.Errorf("gate failed inside the tail budgets: %v", err)
	}
	if _, err := flood.Gate(base, cur, flood.GateOptions{}); err != nil {
		t.Errorf("gate enforced unset tail budgets: %v", err)
	}
}

func TestGateFailsWhenTailMetricAbsent(t *testing.T) {
	// A budget against a report that never recorded the metric must fail
	// loudly, not silently pass the missing check.
	base := kneeReport("pose", 40, 120)
	cur := kneeReport("pose", 40, 120) // has p99_ms only
	_, err := flood.Gate(base, cur, flood.GateOptions{P95Budget: 250 * time.Millisecond})
	if err == nil || !strings.Contains(err.Error(), "p95_ms") {
		t.Errorf("missing p95_ms not flagged: %v", err)
	}
}

func TestGateFailsOnMissingEntry(t *testing.T) {
	base := kneeReport("pose", 40, 120)
	cur := kneeReport("scripted", 80, 30)
	if _, err := flood.Gate(base, cur, flood.GateOptions{}); err == nil {
		t.Error("gate passed with the baseline's knee entry missing from current")
	}
}

func TestGateRejectsEmptyBaseline(t *testing.T) {
	empty := &benchio.Report{}
	cur := kneeReport("pose", 40, 120)
	if _, err := flood.Gate(empty, cur, flood.GateOptions{}); err == nil {
		t.Error("gate accepted a baseline with no knee entries")
	}
}
