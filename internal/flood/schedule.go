// Package flood is the open-loop load harness: it launches fleets of
// pipelines on an in-process cluster and injects frames on a
// pre-generated arrival schedule, so offered load never slows down when
// the system backs up — overload shows up honestly as latency and
// source-side drops instead of silently throttling the generator
// (coordination omission). On top of the single-run driver sits a
// knee-finding sweep (step offered rate until p99 blows a budget or
// achieved throughput falls behind offered) and a regression gate that
// diffs sweep results against a checked-in baseline.
package flood

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"sort"
	"time"
)

// Process names an inter-arrival process.
type Process string

const (
	// Poisson draws exponential inter-arrival gaps — bursty, memoryless
	// traffic, the standard open-loop arrival model.
	Poisson Process = "poisson"
	// Uniform spaces events evenly at 1/rate with a random phase — a
	// pessimal-jitter-free baseline to compare Poisson against.
	Uniform Process = "uniform"
)

// ParseProcess resolves a CLI process name.
func ParseProcess(s string) (Process, error) {
	switch Process(s) {
	case Poisson:
		return Poisson, nil
	case Uniform:
		return Uniform, nil
	}
	return "", fmt.Errorf("flood: unknown arrival process %q (known: %s, %s)", s, Poisson, Uniform)
}

// Schedule is one pipeline's pre-generated arrival plan: event offsets
// from the run's start instant. It is fully determined by (process, rate,
// horizon, seed) — same inputs, byte-identical Fingerprint — so a run can
// be replayed exactly and the generator never consults a clock or shared
// randomness while driving.
type Schedule struct {
	// Process is the inter-arrival model the offsets were drawn from.
	Process Process
	// Rate is the offered rate in events per second.
	Rate float64
	// Horizon is the schedule's span; all offsets fall in [0, Horizon).
	Horizon time.Duration
	// Seed is the generator seed the offsets were drawn with.
	Seed int64
	// Offsets are the event instants, ascending, relative to run start.
	Offsets []time.Duration
}

// Generate draws an arrival schedule. The schedule is a pure function of
// the arguments: an owned rand.Rand is seeded from seed, and nothing else
// feeds the draw.
//
//vpvet:deterministic
func Generate(process Process, rate float64, horizon time.Duration, seed int64) (Schedule, error) {
	if rate <= 0 {
		return Schedule{}, fmt.Errorf("flood: rate must be positive, got %v", rate)
	}
	if horizon <= 0 {
		return Schedule{}, fmt.Errorf("flood: horizon must be positive, got %v", horizon)
	}
	rng := rand.New(rand.NewSource(seed))
	s := Schedule{Process: process, Rate: rate, Horizon: horizon, Seed: seed}
	switch process {
	case Poisson:
		// Exponential gaps with mean 1/rate.
		for t := time.Duration(float64(time.Second) * rng.ExpFloat64() / rate); t < horizon; {
			s.Offsets = append(s.Offsets, t)
			t += time.Duration(float64(time.Second) * rng.ExpFloat64() / rate)
		}
	case Uniform:
		// Even spacing with a random phase, so fleets of uniform
		// schedules with different seeds do not arrive in lockstep.
		interval := time.Duration(float64(time.Second) / rate)
		for t := time.Duration(rng.Float64() * float64(interval)); t < horizon; t += interval {
			s.Offsets = append(s.Offsets, t)
		}
	default:
		return Schedule{}, fmt.Errorf("flood: unknown arrival process %q", process)
	}
	sort.Slice(s.Offsets, func(i, j int) bool { return s.Offsets[i] < s.Offsets[j] })
	return s, nil
}

// Fingerprint renders the schedule as a canonical string: a header with
// the generating parameters and event count, then an FNV-1a hash over the
// exact nanosecond offsets. Equal fingerprints mean byte-identical
// schedules; the hash keeps the string short enough to pin in a golden
// test (mirroring chaos.Schedule.Fingerprint's role for fault plans).
//
//vpvet:deterministic
func (s Schedule) Fingerprint() string {
	h := fnv.New64a()
	var buf [8]byte
	for _, off := range s.Offsets {
		v := uint64(off)
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		h.Write(buf[:])
	}
	return fmt.Sprintf("%s rate=%.6g horizon=%s seed=%d events=%d offsets=%016x",
		s.Process, s.Rate, s.Horizon, s.Seed, len(s.Offsets), h.Sum64())
}

// PipelineSeed derives pipeline i's schedule seed from the run seed, so a
// fleet's schedules are mutually independent but jointly reproducible
// from one number.
func PipelineSeed(runSeed int64, i int) int64 {
	// Distinct odd stride keeps derived seeds collision-free for any
	// realistic fleet size.
	return runSeed + int64(i)*1_000_003
}
