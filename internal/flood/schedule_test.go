package flood

import (
	"testing"
	"time"
)

func TestGenerateDeterministic(t *testing.T) {
	for _, proc := range []Process{Poisson, Uniform} {
		a, err := Generate(proc, 20, 2*time.Second, 1234)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Generate(proc, 20, 2*time.Second, 1234)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Errorf("%s: same seed produced different schedules:\n%s\n%s", proc, a.Fingerprint(), b.Fingerprint())
		}
		if len(a.Offsets) != len(b.Offsets) {
			t.Fatalf("%s: event counts differ: %d vs %d", proc, len(a.Offsets), len(b.Offsets))
		}
		for i := range a.Offsets {
			if a.Offsets[i] != b.Offsets[i] {
				t.Fatalf("%s: offset %d differs: %v vs %v", proc, i, a.Offsets[i], b.Offsets[i])
			}
		}
		c, err := Generate(proc, 20, 2*time.Second, 1235)
		if err != nil {
			t.Fatal(err)
		}
		if a.Fingerprint() == c.Fingerprint() {
			t.Errorf("%s: different seeds produced identical schedules", proc)
		}
	}
}

// TestGenerateGolden pins one schedule byte-for-byte. If this fails, the
// generator's draw order changed and every recorded benchmark seed means
// something different now — treat as a breaking change, not a test to
// update casually.
func TestGenerateGolden(t *testing.T) {
	s, err := Generate(Poisson, 10, time.Second, 42)
	if err != nil {
		t.Fatal(err)
	}
	const want = "poisson rate=10 horizon=1s seed=42 events=11 offsets=fedb2ba534173436"
	if got := s.Fingerprint(); got != want {
		t.Errorf("pinned fingerprint changed:\n got %q\nwant %q", got, want)
	}
}

func TestGenerateRates(t *testing.T) {
	// Poisson: expect ~rate*horizon events; 4 sigma of slack on a
	// Poisson(600) keeps this deterministic-in-practice for a fixed seed
	// while still catching rate-units mistakes.
	p, err := Generate(Poisson, 200, 3*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	mean := 600.0
	if n := float64(len(p.Offsets)); n < mean-4*24.5 || n > mean+4*24.5 {
		t.Errorf("poisson event count %v far from expected %v", n, mean)
	}
	// Uniform: exactly floor or ceil of rate*horizon events, evenly
	// spaced.
	u, err := Generate(Uniform, 50, 2*time.Second, 7)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(u.Offsets); n < 99 || n > 101 {
		t.Errorf("uniform event count %d, want ~100", n)
	}
	interval := time.Second / 50
	for i := 1; i < len(u.Offsets); i++ {
		if gap := u.Offsets[i] - u.Offsets[i-1]; gap != interval {
			t.Fatalf("uniform gap %d is %v, want %v", i, gap, interval)
		}
	}
	for _, s := range []Schedule{p, u} {
		for i, off := range s.Offsets {
			if off < 0 || off >= s.Horizon {
				t.Errorf("%s offset %d = %v outside [0, %v)", s.Process, i, off, s.Horizon)
			}
		}
	}
}

func TestGenerateErrors(t *testing.T) {
	if _, err := Generate(Poisson, 0, time.Second, 1); err == nil {
		t.Error("zero rate accepted")
	}
	if _, err := Generate(Poisson, 5, 0, 1); err == nil {
		t.Error("zero horizon accepted")
	}
	if _, err := Generate(Process("bursty"), 5, time.Second, 1); err == nil {
		t.Error("unknown process accepted")
	}
	if _, err := ParseProcess("bursty"); err == nil {
		t.Error("ParseProcess accepted unknown process")
	}
	if p, err := ParseProcess("uniform"); err != nil || p != Uniform {
		t.Errorf("ParseProcess(uniform) = %v, %v", p, err)
	}
}

func TestPipelineSeedsDistinct(t *testing.T) {
	seen := map[int64]bool{}
	for i := 0; i < 64; i++ {
		s := PipelineSeed(99, i)
		if seen[s] {
			t.Fatalf("pipeline seed collision at %d", i)
		}
		seen[s] = true
	}
}
