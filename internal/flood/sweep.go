package flood

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"time"

	"videopipe/internal/core"
	"videopipe/internal/experiments"
)

// SweepOptions configures a knee-finding sweep: a geometric ladder of
// offered rates, stepped until the system visibly saturates.
type SweepOptions struct {
	// Base carries the per-run knobs (fleet size, horizon, process,
	// seed). Base.Rate is ignored; the ladder sets each step's rate.
	Base Options
	// StartRate is the ladder's first per-pipeline rate in events per
	// second; zero selects 1.
	StartRate float64
	// Factor is the ladder's multiplier between steps; values <= 1 select
	// 2.
	Factor float64
	// MaxSteps bounds the ladder; zero selects 8.
	MaxSteps int
	// P99Budget is the latency ceiling a rung must meet for its achieved
	// rate to count toward the knee; zero selects 400ms. The default must
	// leave headroom above the fleet's burst floor: the pose-bearing
	// chains serialize an ~85ms stage per lane, so absorbing a burst of
	// three frames — the whole point of a tuned admission window — costs
	// ~275ms end-to-end. A 250ms ceiling sits below that floor and turns
	// the tuned-vs-untuned comparison into a coin flip on burst timing;
	// 400ms prices real burst absorption while still failing collapse.
	P99Budget time.Duration
	// MinAchieved is the delivery floor a rung must clear for its
	// achieved rate to count toward the knee; zero selects 0.85. The
	// default sits under the pre-knee delivery band: a system's last good
	// rung delivers 90%+ of offered (the credit-limited mixes shed ~10%
	// at the source and still meet the latency budget), so a floor at
	// 0.95 rides the edge of pre-knee measurement noise and turns the
	// knee into a coin flip.
	MinAchieved float64
	// Collapse ends the sweep once achieved throughput falls below this
	// fraction of offered; zero selects 0.75. Deliberately lower than
	// MinAchieved: rungs in the 75–85% band are overloaded but not yet
	// collapsed, and their delivery fraction wobbles a few percent run to
	// run — a ladder that stops inside that band has a coin-flip length,
	// and with it a coin-flip knee whenever the best rung lies beyond.
	// Stopping only on deep collapse costs at most a rung or two of extra
	// runtime and keeps the ladder's reach deterministic.
	Collapse float64
	// Profile, when set, writes pprof CPU and heap profiles for every
	// step into this directory (<mix>_step<k>.cpu.pprof / .heap.pprof).
	Profile string
}

func (o SweepOptions) withDefaults() SweepOptions {
	o.Base = o.Base.withDefaults()
	if o.StartRate <= 0 {
		o.StartRate = 1
	}
	if o.Factor <= 1 {
		o.Factor = 2
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 8
	}
	if o.P99Budget <= 0 {
		o.P99Budget = 400 * time.Millisecond
	}
	if o.MinAchieved <= 0 {
		o.MinAchieved = 0.85
	}
	if o.Collapse <= 0 {
		o.Collapse = 0.75
	}
	// A tuned sweep with no explicit tuner config gets one that defends
	// the sweep's own latency budget, with re-planning armed.
	if o.Base.Tune && o.Base.TuneConfig == nil {
		o.Base.TuneConfig = &core.TunerConfig{
			P99Target: o.P99Budget,
			Replan:    true,
			Seed:      o.Base.Seed,
		}
	}
	return o
}

// Step is one rung of the ladder: the offered per-pipeline rate and the
// run it produced.
type Step struct {
	// Rate is the per-pipeline offered rate for this step.
	Rate float64
	// Result is the step's measurement.
	Result Result
	// Retuned marks a tuned rung that was re-measured: the first attempt
	// failed a sweep criterion while the tuner was still moving, so the
	// rung ran again from the adapted setpoints and this is the re-run.
	Retuned bool
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Mix names the workload that was swept.
	Mix experiments.FloodMix
	// Steps are the ladder rungs that ran, in order.
	Steps []Step
	// KneeEPS is the capacity estimate: the highest achieved aggregate
	// rate observed across the sweep's fully-compliant steps — merged e2e
	// p99 within P99Budget AND at least MinAchieved of offered delivered.
	// Capacity at equal latency budget, so tuned and untuned knees
	// compare fairly. Rungs past the collapse are deliberately not
	// credited even when their tail happens to fit the budget: throughput
	// salvaged during overload swings ±20% run to run (it depends on
	// where drops land in the schedule), while pre-collapse rungs repeat
	// to within a couple percent — and a gate needs the stable number.
	KneeEPS float64
	// StopReason records which criterion ended the sweep.
	StopReason string
}

// Sweep steps the offered rate up a geometric ladder, running each step
// on a fresh cluster, until achieved throughput falls behind offered or
// the ladder runs out. The saturating step is still recorded — the knee
// estimate needs the rung past the cliff to know the cliff is real.
func Sweep(sc experiments.FloodScenario, o SweepOptions) (SweepResult, error) {
	o = o.withDefaults()
	sw := SweepResult{Mix: sc.Mix}
	rate := o.StartRate
	// Tuned sweeps carry learned setpoints from rung to rung: the knee
	// then measures the tuned steady state, the way a long-lived
	// deployment meets rising load — not each rung's cold-start transient.
	var carried *core.TuningSetpoints
	for step := 0; step < o.MaxSteps; step++ {
		base := o.Base
		base.Rate = rate
		base.InitialTuning = carried
		// Each step draws fresh schedules, still pinned to the run seed.
		base.Seed = o.Base.Seed + int64(step)*7919
		res, err := profiledRun(sc, base, o.Profile, step)
		if err != nil {
			return sw, fmt.Errorf("flood: sweep step %d (rate %.3g): %w", step, rate, err)
		}
		retuned := false
		// A tuned rung that fails a criterion while the tuner was still
		// moving measured the adaptation transient, not the adapted system.
		// Re-measure it once from the setpoints the tuner converged on — a
		// long-lived deployment meets this load in steady state. If the
		// re-run fails too, the failure is real and stands. Admission
		// posture is dropped exactly as between rungs: a rung whose first
		// attempt blew the tail did so with its credits already widened,
		// and re-running maximally unprotected from the first injection
		// just re-measures the known-bad window instead of the gradual
		// re-learning a steady deployment actually exhibits.
		if base.Tune && len(res.TunerActions) > 0 &&
			(res.E2E.P99 > o.P99Budget || res.AchievedEPS < o.MinAchieved*res.OfferedEPS) {
			t := res.Tuning
			t.Pipelines = nil
			base.InitialTuning = &t
			res2, err := profiledRun(sc, base, o.Profile, step)
			if err != nil {
				return sw, fmt.Errorf("flood: sweep step %d retune (rate %.3g): %w", step, rate, err)
			}
			// Keep the transient's journal in front of the re-run's: together
			// they tell the rung's whole story.
			res2.TunerActions = append(res.TunerActions, res2.TunerActions...)
			res, retuned = res2, true
		}
		if base.Tune {
			t := res.Tuning
			// Capacity state (pool sizes, batch windows, placements) carries
			// forward; admission posture does not. Credits widen additively
			// into each rung's measured latency headroom and have no
			// narrowing actuator, so a window learned under lighter load
			// would start the next, heavier rung maximally unprotected —
			// every rung re-learns admission from the planner's floor.
			t.Pipelines = nil
			carried = &t
		}
		sw.Steps = append(sw.Steps, Step{Rate: rate, Result: res, Retuned: retuned})
		// Only fully-compliant steps advance the knee: capacity past the
		// latency budget is not capacity the gate should credit, and
		// neither is throughput salvaged during a collapse rung (see
		// KneeEPS). A blown rung does not end the sweep, though —
		// compliance is not monotone in offered rate when the system
		// adapts between rungs (the rung where the tuner learns eats a
		// transient the next, warm-started rung never pays), so the
		// ladder climbs until throughput itself collapses.
		if res.E2E.P99 <= o.P99Budget &&
			res.AchievedEPS >= o.MinAchieved*res.OfferedEPS &&
			res.AchievedEPS > sw.KneeEPS {
			sw.KneeEPS = res.AchievedEPS
		}
		if res.AchievedEPS < o.Collapse*res.OfferedEPS {
			sw.StopReason = fmt.Sprintf("achieved %.3g eps collapsed below %.0f%% of offered %.3g eps at %.3g eps/pipeline",
				res.AchievedEPS, o.Collapse*100, res.OfferedEPS, rate)
			return sw, nil
		}
		rate *= o.Factor
	}
	sw.StopReason = fmt.Sprintf("ladder exhausted after %d steps without saturating", o.MaxSteps)
	return sw, nil
}

// profiledRun wraps Run with per-step pprof capture when dir is set: a
// CPU profile spanning the run and a heap snapshot at its end.
func profiledRun(sc experiments.FloodScenario, base Options, dir string, step int) (Result, error) {
	if dir == "" {
		return Run(sc, base)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Result{}, fmt.Errorf("flood: profile dir: %w", err)
	}
	prefix := filepath.Join(dir, fmt.Sprintf("%s_step%d", sc.Mix, step))
	cpuF, err := os.Create(prefix + ".cpu.pprof")
	if err != nil {
		return Result{}, fmt.Errorf("flood: profile: %w", err)
	}
	cpuStarted := pprof.StartCPUProfile(cpuF) == nil
	res, runErr := Run(sc, base)
	if cpuStarted {
		pprof.StopCPUProfile()
	}
	cpuF.Close()
	heapF, err := os.Create(prefix + ".heap.pprof")
	if err == nil {
		runtime.GC() // fold transient allocations so the heap profile shows what's retained
		_ = pprof.WriteHeapProfile(heapF)
		heapF.Close()
	}
	return res, runErr
}
