package flood

import (
	"fmt"
	"time"

	"videopipe/internal/experiments"
)

// SweepOptions configures a knee-finding sweep: a geometric ladder of
// offered rates, stepped until the system visibly saturates.
type SweepOptions struct {
	// Base carries the per-run knobs (fleet size, horizon, process,
	// seed). Base.Rate is ignored; the ladder sets each step's rate.
	Base Options
	// StartRate is the ladder's first per-pipeline rate in events per
	// second; zero selects 1.
	StartRate float64
	// Factor is the ladder's multiplier between steps; values <= 1 select
	// 2.
	Factor float64
	// MaxSteps bounds the ladder; zero selects 8.
	MaxSteps int
	// P99Budget ends the sweep once merged e2e p99 exceeds it; zero
	// selects 250ms.
	P99Budget time.Duration
	// MinAchieved ends the sweep once achieved throughput falls below
	// this fraction of offered; zero selects 0.95.
	MinAchieved float64
}

func (o SweepOptions) withDefaults() SweepOptions {
	o.Base = o.Base.withDefaults()
	if o.StartRate <= 0 {
		o.StartRate = 1
	}
	if o.Factor <= 1 {
		o.Factor = 2
	}
	if o.MaxSteps <= 0 {
		o.MaxSteps = 8
	}
	if o.P99Budget <= 0 {
		o.P99Budget = 250 * time.Millisecond
	}
	if o.MinAchieved <= 0 {
		o.MinAchieved = 0.95
	}
	return o
}

// Step is one rung of the ladder: the offered per-pipeline rate and the
// run it produced.
type Step struct {
	// Rate is the per-pipeline offered rate for this step.
	Rate float64
	// Result is the step's measurement.
	Result Result
}

// SweepResult is a completed sweep.
type SweepResult struct {
	// Mix names the workload that was swept.
	Mix experiments.FloodMix
	// Steps are the ladder rungs that ran, in order.
	Steps []Step
	// KneeEPS is the capacity estimate: the highest achieved aggregate
	// rate observed across the sweep. It is a continuous measurement
	// (completions per second), not a rung of the quantized offered
	// ladder, which makes it stable enough to gate on.
	KneeEPS float64
	// StopReason records which criterion ended the sweep.
	StopReason string
}

// Sweep steps the offered rate up a geometric ladder, running each step
// on a fresh cluster, until latency blows the p99 budget, achieved
// throughput falls behind offered, or the ladder runs out. The saturating
// step is still recorded — the knee estimate needs the rung past the
// cliff to know the cliff is real.
func Sweep(sc experiments.FloodScenario, o SweepOptions) (SweepResult, error) {
	o = o.withDefaults()
	sw := SweepResult{Mix: sc.Mix}
	rate := o.StartRate
	for step := 0; step < o.MaxSteps; step++ {
		base := o.Base
		base.Rate = rate
		// Each step draws fresh schedules, still pinned to the run seed.
		base.Seed = o.Base.Seed + int64(step)*7919
		res, err := Run(sc, base)
		if err != nil {
			return sw, fmt.Errorf("flood: sweep step %d (rate %.3g): %w", step, rate, err)
		}
		sw.Steps = append(sw.Steps, Step{Rate: rate, Result: res})
		if res.AchievedEPS > sw.KneeEPS {
			sw.KneeEPS = res.AchievedEPS
		}
		if res.E2E.P99 > o.P99Budget {
			sw.StopReason = fmt.Sprintf("p99 %v exceeded budget %v at %.3g eps/pipeline", res.E2E.P99, o.P99Budget, rate)
			return sw, nil
		}
		if res.AchievedEPS < o.MinAchieved*res.OfferedEPS {
			sw.StopReason = fmt.Sprintf("achieved %.3g eps fell below %.0f%% of offered %.3g eps at %.3g eps/pipeline",
				res.AchievedEPS, o.MinAchieved*100, res.OfferedEPS, rate)
			return sw, nil
		}
		rate *= o.Factor
	}
	sw.StopReason = fmt.Sprintf("ladder exhausted after %d steps without saturating", o.MaxSteps)
	return sw, nil
}
