package frame

import (
	"image/color"
	"strings"
	"testing"
)

// The data-plane contract: once the pool is warm, per-frame traffic through
// the raw codec allocates only the *Frame header (the pixel buffer cycles
// through the pool). These tests pin that so a regression shows up as a
// test failure, not a gradual fps slide.

func assertAllocs(t *testing.T, what string, got, want float64) {
	t.Helper()
	if raceEnabled {
		t.Logf("%s: %.1f allocs/op (bound %0.f not enforced under -race)", what, got, want)
		return
	}
	if got > want {
		t.Errorf("%s: %.1f allocs/op, want <= %.0f", what, got, want)
	}
}

func TestRawCodecRoundTripAllocs(t *testing.T) {
	f := MustNewPooled(64, 48)
	defer f.Release()
	f.Fill(color.RGBA{R: 10, G: 20, B: 30, A: 255})
	c := RawCodec{}

	var buf []byte
	encode := testing.AllocsPerRun(200, func() {
		var err error
		buf, err = c.AppendEncode(buf[:0], f)
		if err != nil {
			t.Fatal(err)
		}
	})
	assertAllocs(t, "raw AppendEncode into scratch", encode, 0)

	// Encode + decode + release: the decoded frame's pixels come back
	// from the pool, so only the Frame header and the pool's interface
	// boxing remain.
	roundTrip := testing.AllocsPerRun(200, func() {
		buf, _ = c.AppendEncode(buf[:0], f)
		g, err := c.Decode(buf)
		if err != nil {
			t.Fatal(err)
		}
		g.Release()
	})
	assertAllocs(t, "raw encode/decode/release round trip", roundTrip, 2)
}

func TestCloneReleaseAllocs(t *testing.T) {
	f := MustNew(64, 48)
	f.Fill(color.RGBA{R: 200, G: 100, B: 50, A: 255})

	hitsBefore, _ := PoolStats()
	allocs := testing.AllocsPerRun(200, func() {
		cl := f.Clone()
		cl.Release()
	})
	assertAllocs(t, "Clone+Release cycle", allocs, 2)
	if hitsAfter, _ := PoolStats(); hitsAfter <= hitsBefore {
		t.Errorf("pool hits did not advance (%d -> %d): clones are not recycling", hitsBefore, hitsAfter)
	}
}

func TestReleaseGuards(t *testing.T) {
	t.Run("nil is a no-op", func(t *testing.T) {
		var f *Frame
		f.Release()
	})

	t.Run("double release panics", func(t *testing.T) {
		f := MustNewPooled(8, 8)
		f.Release()
		defer func() {
			r := recover()
			if r == nil {
				t.Fatal("second Release did not panic")
			}
			if msg, ok := r.(string); !ok || !strings.Contains(msg, "double Release") {
				t.Fatalf("panic = %v, want double-Release message", r)
			}
		}()
		f.Release()
	})

	t.Run("release poisons pixels", func(t *testing.T) {
		f := MustNewPooled(8, 8)
		f.Release()
		if !f.Released() {
			t.Error("Released() = false after Release")
		}
		// Use-after-release must fail loudly (nil Pix), not silently
		// read pixels now owned by someone else.
		if f.Pix != nil {
			t.Error("Pix not nil after Release: use-after-release would read recycled memory")
		}
	})

	t.Run("unpooled frames release safely", func(t *testing.T) {
		f := MustNew(8, 8)
		f.Release()
		if f.Pix != nil {
			t.Error("unpooled Release must still poison Pix")
		}
	})
}
