package frame

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"image/jpeg"
	"time"
)

// Codec encodes frames for network transfer. The paper's pipeline encodes
// and decodes images whenever frames cross a device boundary (§3.2); the
// codec's CPU cost and output size drive the baseline-vs-VideoPipe gap, so
// both a real JPEG path and a raw path are provided.
type Codec interface {
	// Encode serializes a frame.
	Encode(f *Frame) ([]byte, error)
	// Decode reconstructs a frame from Encode's output.
	Decode(data []byte) (*Frame, error)
	// Name identifies the codec in configs and metrics.
	Name() string
}

// AppendEncoder is the copy-eliding side of Codec: encode into the caller's
// buffer (growing it only when capacity runs out) instead of allocating a
// fresh slice per frame. Hot paths that reuse a per-socket or per-module
// scratch buffer should type-assert for it via AppendEncode.
type AppendEncoder interface {
	// AppendEncode appends the encoded frame to dst and returns the
	// extended slice, like append.
	AppendEncode(dst []byte, f *Frame) ([]byte, error)
}

// AppendEncode encodes f into dst's spare capacity when the codec supports
// it, falling back to Encode plus append otherwise. The result aliases dst
// whenever capacity allowed, so callers must treat dst as consumed.
func AppendEncode(c Codec, dst []byte, f *Frame) ([]byte, error) {
	if ae, ok := c.(AppendEncoder); ok {
		return ae.AppendEncode(dst, f)
	}
	data, err := c.Encode(f)
	if err != nil {
		return nil, err
	}
	return append(dst, data...), nil
}

// header layout shared by both codecs:
// [8 seq][8 capturedUnixNano][4 width][4 height][payload...]
const headerSize = 8 + 8 + 4 + 4

func appendHeader(dst []byte, f *Frame) []byte {
	var buf [headerSize]byte
	binary.BigEndian.PutUint64(buf[0:], f.Seq)
	binary.BigEndian.PutUint64(buf[8:], uint64(f.Captured.UnixNano()))
	binary.BigEndian.PutUint32(buf[16:], uint32(f.Width))
	binary.BigEndian.PutUint32(buf[20:], uint32(f.Height))
	return append(dst, buf[:]...)
}

func unmarshalHeader(data []byte) (seq uint64, captured time.Time, w, h int, payload []byte, err error) {
	if len(data) < headerSize {
		return 0, time.Time{}, 0, 0, nil, fmt.Errorf("frame: truncated header (%d bytes)", len(data))
	}
	seq = binary.BigEndian.Uint64(data[0:])
	captured = time.Unix(0, int64(binary.BigEndian.Uint64(data[8:])))
	w = int(binary.BigEndian.Uint32(data[16:]))
	h = int(binary.BigEndian.Uint32(data[20:]))
	if w <= 0 || h <= 0 || w*h > 64<<20 {
		return 0, time.Time{}, 0, 0, nil, fmt.Errorf("frame: bad dimensions %dx%d", w, h)
	}
	return seq, captured, w, h, data[headerSize:], nil
}

// JPEGCodec compresses frames with the standard library JPEG encoder,
// giving realistic transfer sizes and encode/decode CPU cost.
type JPEGCodec struct {
	// Quality is the JPEG quality (1-100); zero means jpeg.DefaultQuality.
	Quality int
}

var _ Codec = JPEGCodec{}

// Name identifies the codec.
func (JPEGCodec) Name() string { return "jpeg" }

// Encode serializes the frame header plus JPEG payload.
func (c JPEGCodec) Encode(f *Frame) ([]byte, error) {
	return c.AppendEncode(nil, f)
}

// AppendEncode serializes into dst's spare capacity; the JPEG encoder
// writes through a thin append adapter so a warm scratch buffer makes the
// whole encode allocation-free apart from the encoder's own state.
func (c JPEGCodec) AppendEncode(dst []byte, f *Frame) ([]byte, error) {
	q := c.Quality
	if q == 0 {
		q = jpeg.DefaultQuality
	}
	w := appendWriter{buf: appendHeader(dst, f)}
	if err := jpeg.Encode(&w, f.ToImage(), &jpeg.Options{Quality: q}); err != nil {
		return nil, fmt.Errorf("frame: jpeg encode: %w", err)
	}
	return w.buf, nil
}

// appendWriter adapts append-style buffer growth to the stdlib JPEG
// encoder. It implements Flush and WriteByte alongside Write so
// jpeg.Encode uses it directly instead of wrapping it in a fresh
// bufio.Writer per call. Bytes stage through a fixed array first:
// appending straight to buf would pay a bounds check and a slice-header
// write barrier on every WriteByte in the encoder's bit-emit loop.
type appendWriter struct {
	buf []byte
	n   int
	tmp [2048]byte
}

func (w *appendWriter) flushTmp() {
	w.buf = append(w.buf, w.tmp[:w.n]...)
	w.n = 0
}

func (w *appendWriter) Write(p []byte) (int, error) {
	if w.n > 0 {
		w.flushTmp()
	}
	w.buf = append(w.buf, p...)
	return len(p), nil
}

func (w *appendWriter) WriteByte(c byte) error {
	if w.n == len(w.tmp) {
		w.flushTmp()
	}
	w.tmp[w.n] = c
	w.n++
	return nil
}

func (w *appendWriter) Flush() error {
	if w.n > 0 {
		w.flushTmp()
	}
	return nil
}

// Decode reconstructs a frame from a JPEG-encoded payload. JPEG is lossy:
// pixel values approximate the original.
func (c JPEGCodec) Decode(data []byte) (*Frame, error) {
	seq, captured, w, h, payload, err := unmarshalHeader(data)
	if err != nil {
		return nil, err
	}
	img, err := jpeg.Decode(bytes.NewReader(payload))
	if err != nil {
		return nil, fmt.Errorf("frame: jpeg decode: %w", err)
	}
	f := FromImage(img)
	if f.Width != w || f.Height != h {
		gotW, gotH := f.Width, f.Height
		f.Release()
		return nil, fmt.Errorf("frame: header says %dx%d but payload is %dx%d", w, h, gotW, gotH)
	}
	f.Seq = seq
	f.Captured = captured
	return f, nil
}

// RawCodec serializes pixels verbatim: lossless, zero compression cost,
// maximal size. It is the ablation point for "what if we didn't compress".
type RawCodec struct{}

var _ Codec = RawCodec{}

// Name identifies the codec.
func (RawCodec) Name() string { return "raw" }

// Encode concatenates the header and raw pixels.
func (c RawCodec) Encode(f *Frame) ([]byte, error) {
	return c.AppendEncode(make([]byte, 0, headerSize+len(f.Pix)), f)
}

// AppendEncode concatenates the header and raw pixels into dst's spare
// capacity.
func (RawCodec) AppendEncode(dst []byte, f *Frame) ([]byte, error) {
	dst = appendHeader(dst, f)
	return append(dst, f.Pix...), nil
}

// Decode reconstructs the frame exactly, into a pooled buffer owned by the
// caller.
func (RawCodec) Decode(data []byte) (*Frame, error) {
	seq, captured, w, h, payload, err := unmarshalHeader(data)
	if err != nil {
		return nil, err
	}
	if len(payload) != w*h*4 {
		return nil, fmt.Errorf("frame: raw payload is %d bytes, want %d", len(payload), w*h*4)
	}
	f := MustNewPooled(w, h)
	copy(f.Pix, payload)
	f.Seq = seq
	f.Captured = captured
	return f, nil
}
