// Package frame provides VideoPipe's frame subsystem: pixel buffers with
// simple drawing primitives (used to render synthetic camera scenes), a
// JPEG codec for realistic encode/decode cost and wire sizes, and the
// reference-counted frame store that lets modules pass frame *ids* through
// the pipeline instead of copying pixels (paper §3).
package frame

import (
	"fmt"
	"image"
	"image/color"
	"time"
)

// Frame is one video frame: an RGBA pixel buffer plus capture metadata.
type Frame struct {
	// Seq is the source-assigned sequence number.
	Seq uint64
	// Width and Height are the pixel dimensions.
	Width, Height int
	// Pix is the RGBA pixel data, 4 bytes per pixel, row-major.
	Pix []byte
	// Captured is the wall-clock capture time, used for end-to-end latency
	// accounting.
	Captured time.Time
}

// New allocates a black frame of the given dimensions.
func New(width, height int) (*Frame, error) {
	if width <= 0 || height <= 0 || width*height > 64<<20 {
		return nil, fmt.Errorf("frame: bad dimensions %dx%d", width, height)
	}
	return &Frame{
		Width:  width,
		Height: height,
		Pix:    make([]byte, width*height*4),
	}, nil
}

// MustNew is New for dimensions known to be valid; it panics otherwise and
// is intended for tests and fixed-size sources.
func MustNew(width, height int) *Frame {
	f, err := New(width, height)
	if err != nil {
		panic(err)
	}
	return f
}

// Clone deep-copies the frame.
func (f *Frame) Clone() *Frame {
	out := &Frame{Seq: f.Seq, Width: f.Width, Height: f.Height, Captured: f.Captured}
	out.Pix = make([]byte, len(f.Pix))
	copy(out.Pix, f.Pix)
	return out
}

// Size reports the pixel buffer size in bytes.
func (f *Frame) Size() int { return len(f.Pix) }

// inBounds reports whether (x, y) is a valid pixel coordinate.
func (f *Frame) inBounds(x, y int) bool {
	return x >= 0 && x < f.Width && y >= 0 && y < f.Height
}

// Set writes one pixel; out-of-bounds writes are ignored so drawing code
// can clip naturally.
func (f *Frame) Set(x, y int, c color.RGBA) {
	if !f.inBounds(x, y) {
		return
	}
	i := (y*f.Width + x) * 4
	f.Pix[i] = c.R
	f.Pix[i+1] = c.G
	f.Pix[i+2] = c.B
	f.Pix[i+3] = c.A
}

// At reads one pixel; out-of-bounds reads return zero.
func (f *Frame) At(x, y int) color.RGBA {
	if !f.inBounds(x, y) {
		return color.RGBA{}
	}
	i := (y*f.Width + x) * 4
	return color.RGBA{R: f.Pix[i], G: f.Pix[i+1], B: f.Pix[i+2], A: f.Pix[i+3]}
}

// Fill paints the whole frame with one color.
func (f *Frame) Fill(c color.RGBA) {
	for i := 0; i < len(f.Pix); i += 4 {
		f.Pix[i] = c.R
		f.Pix[i+1] = c.G
		f.Pix[i+2] = c.B
		f.Pix[i+3] = c.A
	}
}

// DrawRect fills an axis-aligned rectangle, clipped to the frame.
func (f *Frame) DrawRect(x0, y0, x1, y1 int, c color.RGBA) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			f.Set(x, y, c)
		}
	}
}

// DrawLine draws a 1-pixel line using Bresenham's algorithm.
func (f *Frame) DrawLine(x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		f.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// DrawCircle fills a disc of the given radius.
func (f *Frame) DrawCircle(cx, cy, r int, c color.RGBA) {
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			if x*x+y*y <= r*r {
				f.Set(cx+x, cy+y, c)
			}
		}
	}
}

// Luma reports the perceptual brightness of the pixel at (x, y) in [0, 255].
func (f *Frame) Luma(x, y int) float64 {
	c := f.At(x, y)
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// MeanLuma reports the average brightness over the whole frame.
func (f *Frame) MeanLuma() float64 {
	if f.Width == 0 || f.Height == 0 {
		return 0
	}
	var sum float64
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			sum += f.Luma(x, y)
		}
	}
	return sum / float64(f.Width*f.Height)
}

// ToImage wraps the frame as a standard library image sharing the pixel
// buffer.
func (f *Frame) ToImage() *image.RGBA {
	return &image.RGBA{
		Pix:    f.Pix,
		Stride: f.Width * 4,
		Rect:   image.Rect(0, 0, f.Width, f.Height),
	}
}

// FromImage copies an image into a new frame.
func FromImage(img image.Image) *Frame {
	b := img.Bounds()
	f := MustNew(b.Dx(), b.Dy())
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			r, g, bb, a := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
			f.Set(x, y, color.RGBA{R: uint8(r >> 8), G: uint8(g >> 8), B: uint8(bb >> 8), A: uint8(a >> 8)})
		}
	}
	return f
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
