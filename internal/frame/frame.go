// Package frame provides VideoPipe's frame subsystem: pixel buffers with
// simple drawing primitives (used to render synthetic camera scenes), a
// JPEG codec for realistic encode/decode cost and wire sizes, and the
// reference-counted frame store that lets modules pass frame *ids* through
// the pipeline instead of copying pixels (paper §3).
package frame

import (
	"fmt"
	"image"
	"image/color"
	"time"
)

// Frame is one video frame: an RGBA pixel buffer plus capture metadata.
type Frame struct {
	// Seq is the source-assigned sequence number.
	Seq uint64
	// Width and Height are the pixel dimensions.
	Width, Height int
	// Pix is the RGBA pixel data, 4 bytes per pixel, row-major.
	Pix []byte
	// Captured is the wall-clock capture time, used for end-to-end latency
	// accounting.
	Captured time.Time

	// pooled marks Pix as drawn from the BufferPool; Release recycles it.
	pooled bool
	// released flips 0->1 on Release (atomically, so concurrent
	// double-release bugs are caught rather than racing).
	released int32
}

func badDimensions(width, height int) error {
	return fmt.Errorf("frame: bad dimensions %dx%d", width, height)
}

// New allocates a black frame of the given dimensions.
func New(width, height int) (*Frame, error) {
	if width <= 0 || height <= 0 || width*height > 64<<20 {
		return nil, badDimensions(width, height)
	}
	return &Frame{
		Width:  width,
		Height: height,
		Pix:    make([]byte, width*height*4),
	}, nil
}

// MustNew is New for dimensions known to be valid; it panics otherwise and
// is intended for tests and fixed-size sources.
func MustNew(width, height int) *Frame {
	f, err := New(width, height)
	if err != nil {
		panic(err)
	}
	return f
}

// Clone deep-copies the frame into a pooled buffer. The caller owns the
// clone and should Release it when done.
func (f *Frame) Clone() *Frame {
	out := &Frame{Seq: f.Seq, Width: f.Width, Height: f.Height, Captured: f.Captured, pooled: true}
	out.Pix = Pool.Get(len(f.Pix))
	copy(out.Pix, f.Pix)
	return out
}

// Size reports the pixel buffer size in bytes.
func (f *Frame) Size() int { return len(f.Pix) }

// inBounds reports whether (x, y) is a valid pixel coordinate.
func (f *Frame) inBounds(x, y int) bool {
	return x >= 0 && x < f.Width && y >= 0 && y < f.Height
}

// Set writes one pixel; out-of-bounds writes are ignored so drawing code
// can clip naturally.
func (f *Frame) Set(x, y int, c color.RGBA) {
	if !f.inBounds(x, y) {
		return
	}
	i := (y*f.Width + x) * 4
	f.Pix[i] = c.R
	f.Pix[i+1] = c.G
	f.Pix[i+2] = c.B
	f.Pix[i+3] = c.A
}

// At reads one pixel; out-of-bounds reads return zero.
func (f *Frame) At(x, y int) color.RGBA {
	if !f.inBounds(x, y) {
		return color.RGBA{}
	}
	i := (y*f.Width + x) * 4
	return color.RGBA{R: f.Pix[i], G: f.Pix[i+1], B: f.Pix[i+2], A: f.Pix[i+3]}
}

// Fill paints the whole frame with one color. The pattern is written once
// and then copy-doubled, which compiles to memmove rather than a per-pixel
// store loop.
func (f *Frame) Fill(c color.RGBA) {
	if len(f.Pix) < 4 {
		return
	}
	f.Pix[0] = c.R
	f.Pix[1] = c.G
	f.Pix[2] = c.B
	f.Pix[3] = c.A
	for filled := 4; filled < len(f.Pix); filled *= 2 {
		copy(f.Pix[filled:], f.Pix[:filled])
	}
}

// DrawRect fills an axis-aligned rectangle, clipped to the frame.
func (f *Frame) DrawRect(x0, y0, x1, y1 int, c color.RGBA) {
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			f.Set(x, y, c)
		}
	}
}

// DrawLine draws a 1-pixel line using Bresenham's algorithm.
func (f *Frame) DrawLine(x0, y0, x1, y1 int, c color.RGBA) {
	dx := abs(x1 - x0)
	dy := -abs(y1 - y0)
	sx := 1
	if x0 > x1 {
		sx = -1
	}
	sy := 1
	if y0 > y1 {
		sy = -1
	}
	err := dx + dy
	for {
		f.Set(x0, y0, c)
		if x0 == x1 && y0 == y1 {
			return
		}
		e2 := 2 * err
		if e2 >= dy {
			err += dy
			x0 += sx
		}
		if e2 <= dx {
			err += dx
			y0 += sy
		}
	}
}

// DrawCircle fills a disc of the given radius.
func (f *Frame) DrawCircle(cx, cy, r int, c color.RGBA) {
	for y := -r; y <= r; y++ {
		for x := -r; x <= r; x++ {
			if x*x+y*y <= r*r {
				f.Set(cx+x, cy+y, c)
			}
		}
	}
}

// Luma reports the perceptual brightness of the pixel at (x, y) in [0, 255].
func (f *Frame) Luma(x, y int) float64 {
	c := f.At(x, y)
	return 0.299*float64(c.R) + 0.587*float64(c.G) + 0.114*float64(c.B)
}

// MeanLuma reports the average brightness over the whole frame.
func (f *Frame) MeanLuma() float64 {
	if f.Width == 0 || f.Height == 0 {
		return 0
	}
	var sum float64
	for y := 0; y < f.Height; y++ {
		for x := 0; x < f.Width; x++ {
			sum += f.Luma(x, y)
		}
	}
	return sum / float64(f.Width*f.Height)
}

// ToImage wraps the frame as a standard library image sharing the pixel
// buffer.
func (f *Frame) ToImage() *image.RGBA {
	return &image.RGBA{
		Pix:    f.Pix,
		Stride: f.Width * 4,
		Rect:   image.Rect(0, 0, f.Width, f.Height),
	}
}

// FromImage copies an image into a new pooled frame. The two image types
// that actually occur on the hot path — *image.YCbCr from jpeg.Decode and
// *image.RGBA from ToImage round-trips — get direct row conversions,
// striped across the shared worker group; everything else falls back to
// the generic color.Model path.
func FromImage(img image.Image) *Frame {
	b := img.Bounds()
	f := MustNewPooled(b.Dx(), b.Dy())
	switch src := img.(type) {
	case *image.YCbCr:
		Stripes(f.Height, func(lo, hi int) {
			fromYCbCrRows(f, src, b, lo, hi)
		})
	case *image.RGBA:
		Stripes(f.Height, func(lo, hi int) {
			for y := lo; y < hi; y++ {
				srcRow := src.Pix[src.PixOffset(b.Min.X, b.Min.Y+y):]
				copy(f.Pix[y*f.Width*4:(y+1)*f.Width*4], srcRow[:f.Width*4])
			}
		})
	default:
		for y := 0; y < f.Height; y++ {
			for x := 0; x < f.Width; x++ {
				r, g, bb, a := img.At(b.Min.X+x, b.Min.Y+y).RGBA()
				f.Set(x, y, color.RGBA{R: uint8(r >> 8), G: uint8(g >> 8), B: uint8(bb >> 8), A: uint8(a >> 8)})
			}
		}
	}
	return f
}

// fromYCbCrRows converts rows [lo, hi) of a YCbCr image (the jpeg.Decode
// output type) straight into the frame's RGBA buffer, indexing the chroma
// planes directly instead of going through img.At's interface and
// color-model conversions.
func fromYCbCrRows(f *Frame, src *image.YCbCr, b image.Rectangle, lo, hi int) {
	for y := lo; y < hi; y++ {
		sy := b.Min.Y + y
		yRow := src.Y[(sy-src.Rect.Min.Y)*src.YStride:]
		out := f.Pix[y*f.Width*4 : (y+1)*f.Width*4]
		for x := 0; x < f.Width; x++ {
			sx := b.Min.X + x
			ci := src.COffset(sx, sy)
			r, g, bb := color.YCbCrToRGB(yRow[sx-src.Rect.Min.X], src.Cb[ci], src.Cr[ci])
			i := x * 4
			out[i] = r
			out[i+1] = g
			out[i+2] = bb
			out[i+3] = 0xff
		}
	}
}

func abs(v int) int {
	if v < 0 {
		return -v
	}
	return v
}
