package frame

import (
	"context"
	"image/color"
	"math"
	"testing"
	"testing/quick"
	"time"
)

var (
	white = color.RGBA{R: 255, G: 255, B: 255, A: 255}
	red   = color.RGBA{R: 255, A: 255}
)

func TestNewValidation(t *testing.T) {
	if _, err := New(0, 10); err == nil {
		t.Error("New(0, 10) succeeded")
	}
	if _, err := New(10, -1); err == nil {
		t.Error("New(10, -1) succeeded")
	}
	f, err := New(8, 6)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	if f.Size() != 8*6*4 {
		t.Errorf("Size() = %d, want %d", f.Size(), 8*6*4)
	}
}

func TestSetAtRoundTrip(t *testing.T) {
	f := MustNew(10, 10)
	f.Set(3, 4, red)
	if got := f.At(3, 4); got != red {
		t.Errorf("At(3,4) = %v, want %v", got, red)
	}
	if got := f.At(0, 0); got != (color.RGBA{}) {
		t.Errorf("At(0,0) = %v, want zero", got)
	}
}

func TestOutOfBoundsIgnored(t *testing.T) {
	f := MustNew(4, 4)
	f.Set(-1, 0, red)
	f.Set(0, -1, red)
	f.Set(4, 0, red)
	f.Set(0, 4, red)
	if got := f.At(-1, 0); got != (color.RGBA{}) {
		t.Errorf("out-of-bounds At = %v", got)
	}
	for i, b := range f.Pix {
		if b != 0 {
			t.Fatalf("pixel byte %d modified by out-of-bounds Set", i)
		}
	}
}

func TestClone(t *testing.T) {
	f := MustNew(4, 4)
	f.Seq = 7
	f.Set(1, 1, red)
	c := f.Clone()
	c.Set(1, 1, white)
	if f.At(1, 1) != red {
		t.Error("Clone shares pixel buffer")
	}
	if c.Seq != 7 {
		t.Errorf("Clone Seq = %d, want 7", c.Seq)
	}
}

func TestFillAndMeanLuma(t *testing.T) {
	f := MustNew(16, 16)
	f.Fill(white)
	if got := f.MeanLuma(); math.Abs(got-255) > 0.5 {
		t.Errorf("MeanLuma(white) = %v, want ~255", got)
	}
	f.Fill(color.RGBA{A: 255})
	if got := f.MeanLuma(); got != 0 {
		t.Errorf("MeanLuma(black) = %v, want 0", got)
	}
}

func TestDrawRectClipped(t *testing.T) {
	f := MustNew(8, 8)
	f.DrawRect(6, 6, 20, 20, white) // partially off-frame
	if f.At(7, 7) != white {
		t.Error("rect interior not painted")
	}
	if f.At(5, 5) != (color.RGBA{}) {
		t.Error("rect exterior painted")
	}
	// Reversed corners behave the same.
	g := MustNew(8, 8)
	g.DrawRect(3, 3, 1, 1, white)
	if g.At(2, 2) != white {
		t.Error("reversed-corner rect not painted")
	}
}

func TestDrawLineEndpoints(t *testing.T) {
	f := MustNew(20, 20)
	f.DrawLine(2, 3, 15, 11, white)
	if f.At(2, 3) != white || f.At(15, 11) != white {
		t.Error("line endpoints not painted")
	}
	// Steep and reversed lines.
	f.DrawLine(10, 18, 10, 2, red)
	if f.At(10, 10) != red {
		t.Error("vertical line not painted")
	}
}

func TestDrawCircle(t *testing.T) {
	f := MustNew(21, 21)
	f.DrawCircle(10, 10, 5, white)
	if f.At(10, 10) != white {
		t.Error("circle center not painted")
	}
	if f.At(10, 15) != white {
		t.Error("circle edge not painted")
	}
	if f.At(10, 16) != (color.RGBA{}) {
		t.Error("outside circle painted")
	}
}

func TestRawCodecRoundTrip(t *testing.T) {
	f := MustNew(32, 24)
	f.Seq = 42
	f.Captured = time.Unix(1700000000, 12345)
	f.DrawCircle(16, 12, 6, red)

	data, err := RawCodec{}.Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	got, err := RawCodec{}.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Seq != 42 {
		t.Errorf("Seq = %d, want 42", got.Seq)
	}
	if !got.Captured.Equal(f.Captured) {
		t.Errorf("Captured = %v, want %v", got.Captured, f.Captured)
	}
	if got.Width != 32 || got.Height != 24 {
		t.Errorf("dims = %dx%d", got.Width, got.Height)
	}
	for i := range f.Pix {
		if f.Pix[i] != got.Pix[i] {
			t.Fatalf("pixel byte %d differs", i)
		}
	}
}

func TestRawCodecRoundTripProperty(t *testing.T) {
	check := func(seed uint32, w8, h8 uint8) bool {
		w := int(w8%31) + 1
		h := int(h8%31) + 1
		f := MustNew(w, h)
		s := seed
		for i := range f.Pix {
			s = s*1664525 + 1013904223
			f.Pix[i] = byte(s >> 24)
		}
		f.Seq = uint64(seed)
		data, err := RawCodec{}.Encode(f)
		if err != nil {
			return false
		}
		got, err := RawCodec{}.Decode(data)
		if err != nil || got.Seq != f.Seq || got.Width != w || got.Height != h {
			return false
		}
		for i := range f.Pix {
			if f.Pix[i] != got.Pix[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestJPEGCodecRoundTrip(t *testing.T) {
	f := MustNew(64, 48)
	f.Fill(color.RGBA{R: 100, G: 150, B: 200, A: 255})
	f.Seq = 9
	data, err := JPEGCodec{Quality: 90}.Encode(f)
	if err != nil {
		t.Fatalf("Encode: %v", err)
	}
	if len(data) >= f.Size() {
		t.Errorf("JPEG output %d bytes >= raw %d; expected compression on a flat image", len(data), f.Size())
	}
	got, err := JPEGCodec{}.Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if got.Seq != 9 || got.Width != 64 || got.Height != 48 {
		t.Errorf("metadata = seq %d %dx%d", got.Seq, got.Width, got.Height)
	}
	// Lossy but close on a flat image.
	c := got.At(32, 24)
	if math.Abs(float64(c.R)-100) > 8 || math.Abs(float64(c.G)-150) > 8 || math.Abs(float64(c.B)-200) > 8 {
		t.Errorf("decoded center pixel %v too far from (100,150,200)", c)
	}
}

func TestCodecDecodeErrors(t *testing.T) {
	codecs := []Codec{RawCodec{}, JPEGCodec{}}
	for _, c := range codecs {
		if _, err := c.Decode(nil); err == nil {
			t.Errorf("%s: Decode(nil) succeeded", c.Name())
		}
		if _, err := c.Decode(make([]byte, 10)); err == nil {
			t.Errorf("%s: Decode(short) succeeded", c.Name())
		}
		if _, err := c.Decode(make([]byte, headerSize+5)); err == nil {
			t.Errorf("%s: Decode(garbage) succeeded", c.Name())
		}
	}
	// Raw with wrong payload length.
	f := MustNew(4, 4)
	data, _ := RawCodec{}.Encode(f)
	if _, err := (RawCodec{}).Decode(data[:len(data)-1]); err == nil {
		t.Error("raw Decode with truncated payload succeeded")
	}
}

func TestCodecNames(t *testing.T) {
	if (JPEGCodec{}).Name() != "jpeg" || (RawCodec{}).Name() != "raw" {
		t.Error("codec names wrong")
	}
}

func TestStorePutGetRelease(t *testing.T) {
	s := NewStore(0)
	f := MustNew(2, 2)
	id, err := s.Put(f)
	if err != nil {
		t.Fatalf("Put: %v", err)
	}
	got, err := s.Get(id)
	if err != nil || got != f {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if s.Len() != 1 {
		t.Errorf("Len = %d, want 1", s.Len())
	}
	if err := s.Release(id); err != nil {
		t.Fatalf("Release: %v", err)
	}
	if s.Len() != 0 {
		t.Errorf("Len after release = %d, want 0", s.Len())
	}
	if _, err := s.Get(id); err == nil {
		t.Error("Get after eviction succeeded")
	}
}

func TestStoreRetain(t *testing.T) {
	s := NewStore(0)
	id, _ := s.Put(MustNew(2, 2))
	if err := s.Retain(id); err != nil {
		t.Fatalf("Retain: %v", err)
	}
	s.Release(id)
	if _, err := s.Get(id); err != nil {
		t.Error("frame evicted while references remain")
	}
	s.Release(id)
	if _, err := s.Get(id); err == nil {
		t.Error("frame not evicted at refcount zero")
	}
}

func TestStoreErrors(t *testing.T) {
	s := NewStore(2)
	if _, err := s.Put(nil); err == nil {
		t.Error("Put(nil) succeeded")
	}
	if err := s.Retain(99); err == nil {
		t.Error("Retain(unknown) succeeded")
	}
	if err := s.Release(99); err == nil {
		t.Error("Release(unknown) succeeded")
	}
	s.Put(MustNew(1, 1))
	s.Put(MustNew(1, 1))
	if _, err := s.Put(MustNew(1, 1)); err == nil {
		t.Error("Put over capacity succeeded")
	}
}

func TestStoreIDsUnique(t *testing.T) {
	s := NewStore(10)
	id1, _ := s.Put(MustNew(1, 1))
	s.Release(id1)
	id2, _ := s.Put(MustNew(1, 1))
	if id1 == id2 {
		t.Error("store reused a frame id; ids must be unique to catch stale references")
	}
}

func TestSourceValidation(t *testing.T) {
	r := SolidRenderer(2, 2, white)
	if _, err := NewSource(0, r); err == nil {
		t.Error("NewSource(0) succeeded")
	}
	if _, err := NewSource(-5, r); err == nil {
		t.Error("NewSource(-5) succeeded")
	}
	if _, err := NewSource(10, nil); err == nil {
		t.Error("NewSource(nil renderer) succeeded")
	}
}

func TestSourcePacingAndDropAccounting(t *testing.T) {
	src, err := NewSource(100, SolidRenderer(2, 2, white))
	if err != nil {
		t.Fatalf("NewSource: %v", err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()

	var n int
	err = src.Run(ctx, func(f *Frame) bool {
		n++
		return n%2 == 0 // accept every other frame
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	st := src.Stats()
	if st.Captured < 20 || st.Captured > 35 {
		t.Errorf("Captured = %d over 300ms at 100fps, want ~30", st.Captured)
	}
	if st.Emitted+st.Dropped != st.Captured {
		t.Errorf("Emitted %d + Dropped %d != Captured %d", st.Emitted, st.Dropped, st.Captured)
	}
	if st.Dropped == 0 {
		t.Error("expected drops with alternating credit")
	}
}

func TestSourceSequenceNumbersMonotonic(t *testing.T) {
	src, _ := NewSource(200, SolidRenderer(2, 2, white))
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	var last int64 = -1
	src.Run(ctx, func(f *Frame) bool {
		if int64(f.Seq) <= last {
			t.Errorf("sequence went backwards: %d after %d", f.Seq, last)
		}
		last = int64(f.Seq)
		if f.Captured.IsZero() {
			t.Error("frame missing capture timestamp")
		}
		return true
	})
}

func TestFromImageToImage(t *testing.T) {
	f := MustNew(6, 5)
	f.DrawRect(1, 1, 3, 3, red)
	img := f.ToImage()
	back := FromImage(img)
	if back.Width != 6 || back.Height != 5 {
		t.Fatalf("dims %dx%d", back.Width, back.Height)
	}
	if back.At(2, 2) != red {
		t.Error("pixel lost in image round trip")
	}
}
