package frame

import (
	"sync"
	"sync/atomic"
)

// BufferPool recycles pixel buffers across frames. Steady-state pipeline
// traffic allocates the same handful of buffer sizes (one per camera
// resolution in play) thousands of times per run; recycling them through a
// size-bucketed sync.Pool drops the per-frame allocation cost of the data
// plane to ~zero (MediaPipe's packet pools and NNStreamer's on-device
// zero-copy paths make the same trade).
//
// Buffers are bucketed by the next power of two of their byte size, so a
// 480x360 RGBA frame (691200 B) and anything else in (512KiB, 1MiB] share
// one bucket. A Get may therefore return a slice with extra capacity; the
// returned slice's length is exactly the requested size.
//
// Ownership rules (see DESIGN.md "Buffer ownership"):
//
//   - Frames built by NewPooled/MustNewPooled (and Clone, FromImage, the
//     codec Decode paths) carry a pooled buffer. Whoever holds the last
//     reference to such a frame should call Release to recycle it.
//   - Release is mandatory only for correctness of the *pool hit rate*,
//     never for memory safety: a frame dropped without Release is simply
//     collected by the GC and the pool misses once more later.
//   - Releasing twice panics — that is a real ownership bug (some other
//     holder may already be writing into the recycled buffer).
//   - After Release the frame's Pix is nil, so stale readers observe an
//     empty frame rather than another frame's pixels.
type BufferPool struct {
	buckets [poolBuckets]sync.Pool
	hits    atomic.Uint64
	misses  atomic.Uint64
}

// poolBuckets covers 1<<6 (64 B) through 1<<28 (256 MiB), beyond the
// frame-dimension cap enforced by New.
const (
	poolMinShift = 6
	poolBuckets  = 23
)

// bucketFor returns the bucket index holding buffers of capacity 1<<shift
// >= size, or -1 when size is out of pooling range.
func bucketFor(size int) int {
	if size <= 0 {
		return -1
	}
	shift := poolMinShift
	for (1 << shift) < size {
		shift++
	}
	idx := shift - poolMinShift
	if idx >= poolBuckets {
		return -1
	}
	return idx
}

// Get returns a zeroed byte slice of exactly the given length, recycled
// when a buffer of a suitable bucket is available.
func (p *BufferPool) Get(size int) []byte {
	idx := bucketFor(size)
	if idx < 0 {
		p.misses.Add(1)
		return make([]byte, size)
	}
	if v := p.buckets[idx].Get(); v != nil {
		p.hits.Add(1)
		buf := v.([]byte)[:size]
		clear(buf)
		return buf
	}
	p.misses.Add(1)
	return make([]byte, size, 1<<(idx+poolMinShift))
}

// Put recycles a buffer obtained from Get. Buffers whose capacity does not
// match a bucket exactly (foreign slices) are dropped.
func (p *BufferPool) Put(buf []byte) {
	c := cap(buf)
	if c == 0 {
		return
	}
	idx := bucketFor(c)
	if idx < 0 || (1<<(idx+poolMinShift)) != c {
		return
	}
	p.buckets[idx].Put(buf[:c]) //nolint:staticcheck // slice, not pointer: sizes are large enough that the header alloc is noise
}

// Stats reports cumulative pool hits and misses — the frame.pool.hit /
// frame.pool.miss counters surfaced by vpbench.
func (p *BufferPool) Stats() (hits, misses uint64) {
	return p.hits.Load(), p.misses.Load()
}

// Pool is the process-wide frame buffer pool used by NewPooled, Clone and
// the codec decode paths.
var Pool = &BufferPool{}

// PoolStats reports the global pool's hit/miss counters.
func PoolStats() (hits, misses uint64) { return Pool.Stats() }

// NewPooled is New with the pixel buffer drawn from the global BufferPool.
// The caller owns the frame; call Release when done to recycle the buffer.
func NewPooled(width, height int) (*Frame, error) {
	if width <= 0 || height <= 0 || width*height > 64<<20 {
		return nil, badDimensions(width, height)
	}
	return &Frame{
		Width:  width,
		Height: height,
		Pix:    Pool.Get(width * height * 4),
		pooled: true,
	}, nil
}

// MustNewPooled is NewPooled for dimensions known to be valid.
func MustNewPooled(width, height int) *Frame {
	f, err := NewPooled(width, height)
	if err != nil {
		panic(err)
	}
	return f
}

// Release returns the frame's pixel buffer to the pool and poisons the
// frame against further use. Releasing the same frame twice panics: a
// double release means two owners both believed they held the last
// reference, and the second could be recycling a buffer already handed to
// a new frame. Release on a frame not drawn from the pool is a valid no-op
// (beyond the poisoning), so ownership rules stay uniform.
func (f *Frame) Release() {
	if f == nil {
		return
	}
	if !atomic.CompareAndSwapInt32(&f.released, 0, 1) {
		panic("frame: double Release (seq " + itoa(f.Seq) + ")")
	}
	if f.pooled && f.Pix != nil {
		Pool.Put(f.Pix)
	}
	f.Pix = nil
}

// Released reports whether Release has been called on this frame.
func (f *Frame) Released() bool { return atomic.LoadInt32(&f.released) != 0 }

// itoa formats a uint64 without fmt, keeping Release allocation-free off
// the panic path.
func itoa(v uint64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}
