//go:build !race

package frame

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
