//go:build race

package frame

// raceEnabled reports that the race detector is active: allocation counts
// are skewed by instrumentation, so exact-count assertions are skipped
// (the code paths still run, so races in the pool are caught).
const raceEnabled = true
