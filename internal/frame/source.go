package frame

import (
	"context"
	"fmt"
	"image/color"
	"sync"
	"time"
)

// Renderer produces the synthetic camera image for a given frame sequence
// number and elapsed stream time. The vision package supplies renderers that
// draw exercising stick figures; tests use simple patterns.
type Renderer func(seq uint64, elapsed time.Duration) (*Frame, error)

// SolidRenderer returns a renderer producing constant-color frames, useful
// for tests and throughput measurement.
func SolidRenderer(width, height int, c color.RGBA) Renderer {
	return func(seq uint64, _ time.Duration) (*Frame, error) {
		f, err := NewPooled(width, height)
		if err != nil {
			return nil, err
		}
		f.Fill(c)
		f.Seq = seq
		return f, nil
	}
}

// SourceStats summarizes a source run: how many frames the camera captured,
// how many entered the pipeline, and how many were dropped at the source
// because the pipeline had no credit (the paper's §2.3 design pushes all
// frame dropping to the source).
type SourceStats struct {
	Captured uint64
	Emitted  uint64
	Dropped  uint64
}

// Source is a paced synthetic camera. It captures frames at a fixed rate
// and offers each to an emit callback; the callback reports whether the
// pipeline accepted the frame (credit available) or it was dropped.
type Source struct {
	fps    float64
	render Renderer

	mu    sync.Mutex
	stats SourceStats
}

// NewSource creates a source capturing at fps frames per second.
func NewSource(fps float64, render Renderer) (*Source, error) {
	if fps <= 0 || fps > 1000 {
		return nil, fmt.Errorf("frame: bad source fps %v", fps)
	}
	if render == nil {
		return nil, fmt.Errorf("frame: nil renderer")
	}
	return &Source{fps: fps, render: render}, nil
}

// FPS reports the configured capture rate.
func (s *Source) FPS() float64 { return s.fps }

// Stats returns a snapshot of the source counters.
func (s *Source) Stats() SourceStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Run captures frames at the configured rate until ctx is done, offering
// each to emit. emit must return quickly (it should only check credit and
// hand the frame off); a false return counts the frame as dropped.
//
// Ownership: the emit callback owns the frame whether or not it accepts
// it — a dropping emit must Release the frame (or hand it to an owner that
// will) so pooled buffers recycle instead of leaking to the GC.
func (s *Source) Run(ctx context.Context, emit func(*Frame) bool) error {
	interval := time.Duration(float64(time.Second) / s.fps)
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	start := time.Now()
	var seq uint64
	for {
		select {
		case <-ctx.Done():
			return nil
		case <-ticker.C:
		}
		f, err := s.render(seq, time.Since(start))
		if err != nil {
			return fmt.Errorf("frame: render seq %d: %w", seq, err)
		}
		f.Seq = seq
		f.Captured = time.Now()
		seq++

		accepted := emit(f)
		s.mu.Lock()
		s.stats.Captured++
		if accepted {
			s.stats.Emitted++
		} else {
			s.stats.Dropped++
		}
		s.mu.Unlock()
	}
}
