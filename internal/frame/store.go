package frame

import (
	"fmt"
	"sync"
)

// Store is a per-device frame store with reference counting. Modules and
// co-located services exchange frame reference ids instead of pixel copies
// (paper §3: "rather than copying the full image frames to the module, we
// pass on a reference id that identifies the frame"). A frame stays resident
// until its reference count drops to zero.
type Store struct {
	mu     sync.Mutex
	nextID uint64
	frames map[uint64]*entry
	// capacity bounds resident frames; Put fails when full, surfacing
	// leaks instead of letting them consume the device's memory.
	capacity int
}

type entry struct {
	frame *Frame
	refs  int
}

// DefaultStoreCapacity bounds resident frames per device.
const DefaultStoreCapacity = 256

// NewStore creates a store. capacity <= 0 selects DefaultStoreCapacity.
func NewStore(capacity int) *Store {
	if capacity <= 0 {
		capacity = DefaultStoreCapacity
	}
	return &Store{frames: make(map[uint64]*entry), capacity: capacity}
}

// Put registers a frame with an initial reference count of one and returns
// its reference id.
func (s *Store) Put(f *Frame) (uint64, error) {
	if f == nil {
		return 0, fmt.Errorf("frame: Put(nil)")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.frames) >= s.capacity {
		return 0, fmt.Errorf("frame: store full (%d frames resident; likely a reference leak)", len(s.frames))
	}
	s.nextID++
	id := s.nextID
	s.frames[id] = &entry{frame: f, refs: 1}
	return id, nil
}

// Get returns the frame for id without changing its reference count.
func (s *Store) Get(id uint64) (*Frame, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.frames[id]
	if !ok {
		return nil, fmt.Errorf("frame: unknown frame id %d", id)
	}
	return e.frame, nil
}

// Retain increments the reference count for id, for handing the frame to an
// additional consumer (e.g. a DAG fan-out edge).
func (s *Store) Retain(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.frames[id]
	if !ok {
		return fmt.Errorf("frame: retain of unknown frame id %d", id)
	}
	e.refs++
	return nil
}

// Release decrements the reference count; the frame is evicted at zero and
// its pixel buffer returned to the BufferPool. Put transfers ownership of
// the frame to the store, so eviction is the single point where
// store-resident frames are recycled — holders of a still-positive ref id
// may keep using the *Frame, holders of a dead id must not.
func (s *Store) Release(id uint64) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.frames[id]
	if !ok {
		return fmt.Errorf("frame: release of unknown frame id %d", id)
	}
	e.refs--
	if e.refs <= 0 {
		delete(s.frames, id)
		e.frame.Release()
	}
	return nil
}

// Len reports the number of resident frames.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.frames)
}
