package frame

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"time"
)

// Tape is a recorded frame sequence: the reproducibility primitive that
// stands in for a saved camera trace. Record a synthetic run once, then
// Replay it as a pipeline source to get bit-identical inputs across
// experiments (absent a real camera, determinism is the next best thing).
//
// On-disk layout: magic "VPT1", uint32 frame count, then per frame a
// uint32 length followed by a codec-encoded frame record.
type Tape struct {
	frames [][]byte
	codec  Codec
}

// tapeMagic identifies the container format.
var tapeMagic = [4]byte{'V', 'P', 'T', '1'}

// NewTape creates an empty tape using the given codec (nil = JPEG q85).
func NewTape(codec Codec) *Tape {
	if codec == nil {
		codec = JPEGCodec{Quality: 85}
	}
	return &Tape{codec: codec}
}

// Len reports the number of recorded frames.
func (t *Tape) Len() int { return len(t.frames) }

// Append records one frame.
func (t *Tape) Append(f *Frame) error {
	data, err := t.codec.Encode(f)
	if err != nil {
		return fmt.Errorf("frame: tape append: %w", err)
	}
	t.frames = append(t.frames, data)
	return nil
}

// RecordRenderer captures n frames from a renderer at the given fps,
// stamping sequence numbers and synthetic capture times.
func (t *Tape) RecordRenderer(r Renderer, n int, fps float64) error {
	if r == nil || n <= 0 || fps <= 0 {
		return fmt.Errorf("frame: tape record: bad arguments")
	}
	interval := time.Duration(float64(time.Second) / fps)
	for i := 0; i < n; i++ {
		f, err := r(uint64(i), time.Duration(i)*interval)
		if err != nil {
			return fmt.Errorf("frame: tape record frame %d: %w", i, err)
		}
		f.Seq = uint64(i)
		if err := t.Append(f); err != nil {
			return err
		}
		f.Release()
	}
	return nil
}

// WriteTo serializes the tape.
func (t *Tape) WriteTo(w io.Writer) (int64, error) {
	var total int64
	n, err := w.Write(tapeMagic[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("frame: tape write: %w", err)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(t.frames)))
	n, err = w.Write(hdr[:])
	total += int64(n)
	if err != nil {
		return total, fmt.Errorf("frame: tape write: %w", err)
	}
	for _, data := range t.frames {
		binary.BigEndian.PutUint32(hdr[:], uint32(len(data)))
		n, err = w.Write(hdr[:])
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("frame: tape write: %w", err)
		}
		n, err = w.Write(data)
		total += int64(n)
		if err != nil {
			return total, fmt.Errorf("frame: tape write: %w", err)
		}
	}
	return total, nil
}

// maxTapeFrames bounds a loaded tape, protecting readers from corrupt
// headers.
const maxTapeFrames = 1 << 20

// ReadTape deserializes a tape written by WriteTo.
func ReadTape(r io.Reader, codec Codec) (*Tape, error) {
	if codec == nil {
		codec = JPEGCodec{Quality: 85}
	}
	var magic [4]byte
	if _, err := io.ReadFull(r, magic[:]); err != nil {
		return nil, fmt.Errorf("frame: tape read: %w", err)
	}
	if magic != tapeMagic {
		return nil, fmt.Errorf("frame: not a tape (magic %q)", magic)
	}
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("frame: tape read count: %w", err)
	}
	count := binary.BigEndian.Uint32(hdr[:])
	if count > maxTapeFrames {
		return nil, fmt.Errorf("frame: tape claims %d frames, limit %d", count, maxTapeFrames)
	}
	t := &Tape{codec: codec}
	for i := uint32(0); i < count; i++ {
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			return nil, fmt.Errorf("frame: tape read frame %d length: %w", i, err)
		}
		size := binary.BigEndian.Uint32(hdr[:])
		if size > MaxTapeFrameBytes {
			return nil, fmt.Errorf("frame: tape frame %d is %d bytes, limit %d", i, size, MaxTapeFrameBytes)
		}
		data := make([]byte, size)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("frame: tape read frame %d: %w", i, err)
		}
		t.frames = append(t.frames, data)
	}
	return t, nil
}

// MaxTapeFrameBytes bounds one stored frame record.
const MaxTapeFrameBytes = 32 << 20

// Frame decodes recorded frame i.
func (t *Tape) Frame(i int) (*Frame, error) {
	if i < 0 || i >= len(t.frames) {
		return nil, fmt.Errorf("frame: tape index %d out of range [0,%d)", i, len(t.frames))
	}
	return t.codec.Decode(t.frames[i])
}

// Renderer replays the tape as a pipeline source; playback loops when the
// sequence runs out, so a short recording drives arbitrarily long runs.
func (t *Tape) Renderer() Renderer {
	return func(seq uint64, _ time.Duration) (*Frame, error) {
		if len(t.frames) == 0 {
			return nil, fmt.Errorf("frame: empty tape")
		}
		f, err := t.Frame(int(seq % uint64(len(t.frames))))
		if err != nil {
			return nil, err
		}
		f.Seq = seq
		return f, nil
	}
}

// Bytes serializes the tape to memory.
func (t *Tape) Bytes() ([]byte, error) {
	var buf bytes.Buffer
	if _, err := t.WriteTo(&buf); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
