package frame

import (
	"bytes"
	"image/color"
	"testing"
	"time"
)

func TestTapeRecordReplayRoundTrip(t *testing.T) {
	tape := NewTape(RawCodec{})
	r := func(seq uint64, _ time.Duration) (*Frame, error) {
		f := MustNew(16, 12)
		f.Fill(color.RGBA{R: uint8(seq * 10), A: 255})
		return f, nil
	}
	if err := tape.RecordRenderer(r, 5, 10); err != nil {
		t.Fatalf("RecordRenderer: %v", err)
	}
	if tape.Len() != 5 {
		t.Fatalf("Len = %d", tape.Len())
	}

	data, err := tape.Bytes()
	if err != nil {
		t.Fatalf("Bytes: %v", err)
	}
	loaded, err := ReadTape(bytes.NewReader(data), RawCodec{})
	if err != nil {
		t.Fatalf("ReadTape: %v", err)
	}
	if loaded.Len() != 5 {
		t.Fatalf("loaded Len = %d", loaded.Len())
	}
	for i := 0; i < 5; i++ {
		f, err := loaded.Frame(i)
		if err != nil {
			t.Fatalf("Frame(%d): %v", i, err)
		}
		if got := f.At(0, 0).R; got != uint8(i*10) {
			t.Errorf("frame %d pixel = %d, want %d", i, got, i*10)
		}
		if f.Seq != uint64(i) {
			t.Errorf("frame %d seq = %d", i, f.Seq)
		}
	}
}

func TestTapeRendererLoops(t *testing.T) {
	tape := NewTape(RawCodec{})
	for i := 0; i < 3; i++ {
		f := MustNew(4, 4)
		f.Fill(color.RGBA{G: uint8(i + 1), A: 255})
		if err := tape.Append(f); err != nil {
			t.Fatal(err)
		}
	}
	r := tape.Renderer()
	// seq 4 wraps to recorded frame 1.
	f, err := r(4, 0)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if f.At(0, 0).G != 2 {
		t.Errorf("wrapped frame pixel = %d, want 2", f.At(0, 0).G)
	}
	if f.Seq != 4 {
		t.Errorf("replayed seq = %d, want source seq 4", f.Seq)
	}
}

func TestTapeErrors(t *testing.T) {
	tape := NewTape(nil)
	if err := tape.RecordRenderer(nil, 5, 10); err == nil {
		t.Error("nil renderer accepted")
	}
	if _, err := tape.Frame(0); err == nil {
		t.Error("empty tape Frame(0) succeeded")
	}
	if _, err := tape.Renderer()(0, 0); err == nil {
		t.Error("empty tape replay succeeded")
	}
	if _, err := ReadTape(bytes.NewReader([]byte("JUNK")), nil); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadTape(bytes.NewReader(nil), nil); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated payload.
	f := MustNew(4, 4)
	tape.Append(f)
	data, _ := tape.Bytes()
	if _, err := ReadTape(bytes.NewReader(data[:len(data)-3]), nil); err == nil {
		t.Error("truncated tape accepted")
	}
	// Implausible frame count.
	bad := append([]byte{}, data[:4]...)
	bad = append(bad, 0xFF, 0xFF, 0xFF, 0xFF)
	if _, err := ReadTape(bytes.NewReader(bad), nil); err == nil {
		t.Error("implausible count accepted")
	}
}

func TestTapeDeterministicReplay(t *testing.T) {
	// Two replays of the same tape produce identical pixels — the
	// reproducibility property.
	tape := NewTape(JPEGCodec{Quality: 85})
	r := SolidRenderer(32, 24, color.RGBA{R: 120, G: 40, B: 200, A: 255})
	if err := tape.RecordRenderer(r, 3, 15); err != nil {
		t.Fatal(err)
	}
	a, err := tape.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := tape.Frame(1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Pix, b.Pix) {
		t.Error("replaying the same tape frame produced different pixels")
	}
}
