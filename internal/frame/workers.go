package frame

import (
	"runtime"
	"sync"
)

// The vision kernels and pixel conversions stripe their row loops across a
// single process-wide worker group rather than spawning goroutines per
// call. Service pools already run many kernel invocations concurrently;
// giving each invocation its own NumCPU goroutines would oversubscribe the
// machine and trade throughput for scheduler churn. Instead a fixed token
// bucket holds NumCPU-1 "extra worker" tokens: a Stripes call grabs
// whatever is free, runs the rest of its rows inline, and returns the
// tokens. Under contention every call degrades gracefully toward inline
// execution — exactly the serial code it replaced — so the worst case
// costs nothing.
var workerTokens = make(chan struct{}, maxExtraWorkers())

func maxExtraWorkers() int {
	n := runtime.NumCPU() - 1
	if n < 0 {
		n = 0
	}
	return n
}

func init() {
	for i := 0; i < cap(workerTokens); i++ {
		workerTokens <- struct{}{}
	}
}

// minStripeRows keeps tiny loops inline: below this many rows the
// goroutine handoff costs more than the work.
const minStripeRows = 64

// Stripes splits [0, n) into contiguous row ranges and runs fn on each,
// in parallel when worker tokens are free and inline otherwise. fn must
// be safe to call concurrently for disjoint ranges; Stripes returns only
// after every range completes. Callers needing deterministic results
// across worker counts must accumulate with order-independent arithmetic
// (integer sums, min/max) rather than floats.
func Stripes(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	extra := 0
	if n >= minStripeRows {
	claim:
		for extra < cap(workerTokens) {
			select {
			case <-workerTokens:
				extra++
			default:
				break claim
			}
		}
	}
	if extra == 0 {
		fn(0, n)
		return
	}
	parts := extra + 1
	chunk := (n + parts - 1) / parts
	var wg sync.WaitGroup
	lo, spawned := 0, 0
	for ; spawned < extra && lo < n; spawned++ {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
			workerTokens <- struct{}{}
		}(lo, hi)
		lo = hi
	}
	// Rows can run out before the claimed tokens do (many cores, few
	// rows); hand the surplus straight back.
	for ; spawned < extra; spawned++ {
		workerTokens <- struct{}{}
	}
	if lo < n {
		fn(lo, n)
	}
	wg.Wait()
}
