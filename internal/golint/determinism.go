package golint

import (
	"go/ast"
	"go/types"
	"strings"
)

// Determinism guards the repo's seed-reproducibility contract (PR 2's
// chaos schedules, PR 4's recovery journals, the migration snapshots):
// inside a declared deterministic scope it forbids wall-clock reads
// (time.Now / time.Since / time.Until), the global math/rand generator
// (whose state is shared and unseeded), and `range` over a map, whose
// iteration order changes run to run.
//
// A scope is declared with the //vpvet:deterministic directive, either in
// a function's doc comment (the whole function is covered) or before the
// package clause (the whole file is covered). Real-time escapes inside a
// scope — the supervisor's backoff clocks — carry per-line
// //vpvet:allow determinism comments.
var Determinism = &Analyzer{
	Name: "determinism",
	Doc:  "no wall clock, global rand, or map-order dependence in deterministic scopes",
	Run:  runDeterminism,
}

func runDeterminism(pass *Pass) {
	for _, file := range pass.Files {
		fileWide := fileDeterministic(pass, file)
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if fileWide || hasDirective(fn.Doc, deterministicD) {
				checkDeterministic(pass, fn)
			}
		}
	}
}

// fileDeterministic reports whether the directive appears before the
// package clause, marking the whole file.
func fileDeterministic(pass *Pass, file *ast.File) bool {
	for _, cg := range file.Comments {
		if cg.End() > file.Package {
			break
		}
		if hasDirective(cg, deterministicD) {
			return true
		}
	}
	return hasDirective(file.Doc, deterministicD)
}

func hasDirective(cg *ast.CommentGroup, directive string) bool {
	if cg == nil {
		return false
	}
	for _, c := range cg.List {
		text := strings.TrimSpace(c.Text)
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}

func checkDeterministic(pass *Pass, fn *ast.FuncDecl) {
	name := fn.Name.Name
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch node := n.(type) {
		case *ast.CallExpr:
			if pkg, fname, ok := pkgFuncCallee(pass, node); ok {
				switch {
				case pkg == "time" && (fname == "Now" || fname == "Since" || fname == "Until"):
					pass.Reportf(node.Pos(), "time.%s reads the wall clock inside deterministic scope %s (inject a seeded clock, or //vpvet:allow determinism for a real-time escape)",
						fname, name)
				case (pkg == "math/rand" || pkg == "math/rand/v2") && !strings.HasPrefix(fname, "New"):
					// rand.New / rand.NewSource construct seeded generators
					// and are exactly what deterministic code should use.
					pass.Reportf(node.Pos(), "global %s.%s uses shared unseeded state inside deterministic scope %s (use rand.New(rand.NewSource(seed)))",
						pkg, fname, name)
				}
			}
		case *ast.RangeStmt:
			tv, ok := pass.Info.Types[node.X]
			if ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(node.Pos(), "map iteration order is nondeterministic inside deterministic scope %s (collect and sort the keys, or //vpvet:allow determinism when order cannot reach the output)",
						name)
				}
			}
		}
		return true
	})
}

// pkgFuncCallee resolves a call to a package-level function (not a
// method), returning the package path and function name.
func pkgFuncCallee(pass *Pass, call *ast.CallExpr) (pkgPath, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fn.Pkg() == nil {
		return "", "", false
	}
	sig, isSig := fn.Type().(*types.Signature)
	if !isSig || sig.Recv() != nil {
		return "", "", false
	}
	return fn.Pkg().Path(), fn.Name(), true
}
