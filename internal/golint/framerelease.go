package golint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// FrameRelease is the pooled-frame ownership analyzer. A value obtained
// from one of the owning constructors (frame.NewPooled, MustNewPooled,
// FromImage, Clone, or a codec Decode) must, on every intra-procedural
// path, be Released, transferred (passed to another function, stored,
// sent, captured, or returned), or provably nil. It also flags any use of
// a frame after its Release and releases that can run twice — the exact
// bug classes the pool's CAS panic and Pix poisoning catch only at
// runtime (DESIGN.md §7).
//
// The analysis is deliberately optimistic at merge points: a frame
// released or transferred on either side of a branch is treated as
// handled, so findings are near-certain bugs rather than maybes.
var FrameRelease = &Analyzer{
	Name: "framerelease",
	Doc:  "pooled frames must be Released, transferred or returned on every path",
	Run:  runFrameRelease,
}

// framePkgSuffix identifies the frame package by import-path suffix, so
// the analyzer also works on corpus fixtures living under other module
// paths.
const framePkgSuffix = "internal/frame"

// frameSourceNames are the callables whose *frame.Frame result carries
// pool ownership.
var frameSourceNames = map[string]bool{
	"NewPooled":     true,
	"MustNewPooled": true,
	"FromImage":     true,
	"Clone":         true,
	"Decode":        true,
}

// ownState tracks one frame variable along the current path.
type ownState int

const (
	stOwned        ownState = iota + 1 // holds the last reference, not yet released
	stReleased                         // Release already ran on this path
	stExitReleased                     // a deferred Release will run at function exit
	stDead                             // transferred, overwritten or provably nil
)

// rank orders states for optimistic merging: the "more handled" state
// wins, so branch-dependent handling never produces a finding.
func (s ownState) rank() int {
	switch s {
	case stDead:
		return 4
	case stExitReleased:
		return 3
	case stReleased:
		return 2
	default:
		return 1
	}
}

// ownVar is the per-path fact record for one tracked frame variable.
type ownVar struct {
	name   string
	srcPos token.Pos    // where the owning constructor was called
	errObj types.Object // companion error result, for nil guards
	state  ownState
	relPos token.Pos // where Release ran (for use-after messages)
}

// frState maps tracked variables to their current fact, copied at branch
// points.
type frState map[types.Object]ownVar

func (st frState) clone() frState {
	out := make(frState, len(st))
	for k, v := range st {
		out[k] = v
	}
	return out
}

// merge combines two branch outcomes optimistically (see ownState.rank).
func (st frState) merge(other frState) frState {
	out := make(frState, len(st))
	for k, v := range st {
		if o, ok := other[k]; ok && o.state.rank() > v.state.rank() {
			v = o
		}
		out[k] = v
	}
	for k, v := range other {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func runFrameRelease(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			var body *ast.BlockStmt
			switch fn := n.(type) {
			case *ast.FuncDecl:
				body = fn.Body
			case *ast.FuncLit:
				body = fn.Body
			}
			if body != nil {
				a := &frAnalysis{pass: pass}
				st, terminated := a.walkStmts(body.List, frState{})
				if !terminated {
					a.checkLeaks(st, body.Rbrace, nil)
				}
			}
			return true // keep descending: nested FuncLits analyzed on their own
		})
	}
}

type frAnalysis struct {
	pass *Pass
}

func (a *frAnalysis) posStr(pos token.Pos) string {
	p := a.pass.Fset.Position(pos)
	return p.String()
}

// checkLeaks reports every variable still owned at an exit point. skip
// holds objects transferred by the return statement itself.
func (a *frAnalysis) checkLeaks(st frState, at token.Pos, skip map[types.Object]bool) {
	for obj, v := range st {
		if v.state != stOwned || skip[obj] {
			continue
		}
		a.pass.Reportf(at, "pooled frame %q obtained at %s is not released on this path (Release it, transfer ownership, or return it)",
			v.name, a.posStr(v.srcPos))
	}
}

// walkStmts processes a statement list, returning the resulting state and
// whether the list unconditionally terminates (return / panic / branch).
func (a *frAnalysis) walkStmts(list []ast.Stmt, st frState) (frState, bool) {
	for _, s := range list {
		var term bool
		st, term = a.walkStmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

func (a *frAnalysis) walkStmt(s ast.Stmt, st frState) (frState, bool) {
	switch stmt := s.(type) {
	case *ast.AssignStmt:
		return a.assign(stmt, st), false

	case *ast.DeclStmt:
		if gd, ok := stmt.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, val := range vs.Values {
					st = a.scanExpr(val, st)
				}
				// var f = frame.MustNewPooled(...) tracks like :=
				if len(vs.Names) >= 1 && len(vs.Values) == 1 {
					if call, ok := vs.Values[0].(*ast.CallExpr); ok && a.isSource(call) {
						st = a.track(vs.Names, call, st)
					}
				}
			}
		}
		return st, false

	case *ast.ExprStmt:
		return a.scanExpr(stmt.X, st), a.isPanic(stmt.X)

	case *ast.DeferStmt:
		return a.deferStmt(stmt, st), false

	case *ast.GoStmt:
		return a.scanExpr(stmt.Call, st), false

	case *ast.SendStmt:
		st = a.scanExpr(stmt.Chan, st)
		return a.scanExpr(stmt.Value, st), false

	case *ast.IncDecStmt:
		return a.scanExpr(stmt.X, st), false

	case *ast.ReturnStmt:
		skip := map[types.Object]bool{}
		for _, res := range stmt.Results {
			if id, ok := res.(*ast.Ident); ok {
				if obj := a.pass.Info.Uses[id]; obj != nil {
					if _, tracked := st[obj]; tracked {
						st = a.useVar(obj, id.Pos(), st)
						skip[obj] = true
						v := st[obj]
						v.state = stDead // ownership transfers to the caller
						st[obj] = v
						continue
					}
				}
			}
			st = a.scanExpr(res, st)
		}
		a.checkLeaks(st, stmt.Pos(), skip)
		return st, true

	case *ast.BranchStmt: // break / continue / goto leave this list
		return st, true

	case *ast.BlockStmt:
		return a.walkStmts(stmt.List, st)

	case *ast.IfStmt:
		return a.ifStmt(stmt, st)

	case *ast.ForStmt:
		if stmt.Init != nil {
			st, _ = a.walkStmt(stmt.Init, st)
		}
		if stmt.Cond != nil {
			st = a.scanExpr(stmt.Cond, st)
		}
		bodySt, _ := a.walkStmts(stmt.Body.List, st.clone())
		a.checkLoopLeaks(st, bodySt, stmt.Body.Rbrace)
		if stmt.Post != nil {
			bodySt, _ = a.walkStmt(stmt.Post, bodySt)
		}
		return st.merge(bodySt), false

	case *ast.RangeStmt:
		st = a.scanExpr(stmt.X, st)
		bodySt, _ := a.walkStmts(stmt.Body.List, st.clone())
		a.checkLoopLeaks(st, bodySt, stmt.Body.Rbrace)
		return st.merge(bodySt), false

	case *ast.SwitchStmt:
		if stmt.Init != nil {
			st, _ = a.walkStmt(stmt.Init, st)
		}
		if stmt.Tag != nil {
			st = a.scanExpr(stmt.Tag, st)
		}
		return a.caseBodies(stmt.Body, st)

	case *ast.TypeSwitchStmt:
		if stmt.Init != nil {
			st, _ = a.walkStmt(stmt.Init, st)
		}
		return a.caseBodies(stmt.Body, st)

	case *ast.SelectStmt:
		merged := st
		allTerm := len(stmt.Body.List) > 0
		for _, cl := range stmt.Body.List {
			comm := cl.(*ast.CommClause)
			branch := st.clone()
			if comm.Comm != nil {
				branch, _ = a.walkStmt(comm.Comm, branch)
			}
			branch, term := a.walkStmts(comm.Body, branch)
			if !term {
				allTerm = false
				merged = merged.merge(branch)
			}
		}
		return merged, allTerm

	case *ast.LabeledStmt:
		return a.walkStmt(stmt.Stmt, st)
	}
	return st, false
}

// caseBodies merges the clause bodies of a switch optimistically. A
// switch whose clauses all terminate and that has a default clause
// terminates as a whole (no fall-through path survives it).
func (a *frAnalysis) caseBodies(body *ast.BlockStmt, st frState) (frState, bool) {
	merged := st
	hasDefault, allTerm, anyClause := false, true, false
	for _, cl := range body.List {
		cc, ok := cl.(*ast.CaseClause)
		if !ok {
			continue
		}
		anyClause = true
		if cc.List == nil {
			hasDefault = true
		}
		branch := st.clone()
		for _, e := range cc.List {
			branch = a.scanExpr(e, branch)
		}
		branch, term := a.walkStmts(cc.Body, branch)
		if !term {
			allTerm = false
			merged = merged.merge(branch)
		}
	}
	return merged, anyClause && hasDefault && allTerm
}

// checkLoopLeaks flags frames created inside a loop body that the body
// fails to hand off: each iteration would strand one pooled buffer.
func (a *frAnalysis) checkLoopLeaks(before, after frState, at token.Pos) {
	for obj, v := range after {
		if _, existed := before[obj]; existed {
			continue
		}
		if v.state == stOwned {
			a.pass.Reportf(at, "pooled frame %q obtained at %s inside this loop is not released by the end of the iteration",
				v.name, a.posStr(v.srcPos))
		}
	}
}

// ifStmt walks both branches with nil-guard awareness and merges.
func (a *frAnalysis) ifStmt(stmt *ast.IfStmt, st frState) (frState, bool) {
	if stmt.Init != nil {
		st, _ = a.walkStmt(stmt.Init, st)
	}
	st = a.scanExpr(stmt.Cond, st)

	thenSt := st.clone()
	elseSt := st.clone()
	if obj, deadInThen, ok := a.nilGuard(stmt.Cond, st); ok {
		target := elseSt
		if deadInThen {
			target = thenSt
		}
		v := target[obj]
		v.state = stDead
		target[obj] = v
	}

	thenSt, thenTerm := a.walkStmts(stmt.Body.List, thenSt)
	elseTerm := false
	if stmt.Else != nil {
		elseSt, elseTerm = a.walkStmt(stmt.Else, elseSt)
	}
	switch {
	case thenTerm && elseTerm:
		return st, true
	case thenTerm:
		return elseSt, false
	case elseTerm:
		return thenSt, false
	default:
		return thenSt.merge(elseSt), false
	}
}

// nilGuard recognizes `err != nil`, `err == nil`, `f == nil` and
// `f != nil` conditions over a tracked frame (or its companion error).
// It reports which tracked object is provably nil — dead — in the then
// branch (deadInThen) or the else branch.
func (a *frAnalysis) nilGuard(cond ast.Expr, st frState) (obj types.Object, deadInThen bool, ok bool) {
	be, isBin := cond.(*ast.BinaryExpr)
	if !isBin || (be.Op != token.EQL && be.Op != token.NEQ) {
		return nil, false, false
	}
	id, other := identAndOther(be)
	if id == nil || !isNilIdent(other) {
		return nil, false, false
	}
	o := a.pass.Info.Uses[id]
	if o == nil {
		return nil, false, false
	}
	if _, tracked := st[o]; tracked {
		// f == nil: nil (dead) in then; f != nil: dead in else.
		return o, be.Op == token.EQL, true
	}
	for frameObj, v := range st {
		if v.errObj == o {
			// err != nil: the frame result is nil in then; err == nil: in else.
			return frameObj, be.Op == token.NEQ, true
		}
	}
	return nil, false, false
}

func identAndOther(be *ast.BinaryExpr) (*ast.Ident, ast.Expr) {
	if id, ok := be.X.(*ast.Ident); ok {
		return id, be.Y
	}
	if id, ok := be.Y.(*ast.Ident); ok {
		return id, be.X
	}
	return nil, nil
}

func isNilIdent(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

// assign handles tracking registration, overwrites and RHS escapes.
func (a *frAnalysis) assign(stmt *ast.AssignStmt, st frState) frState {
	source := len(stmt.Rhs) == 1 && len(stmt.Lhs) >= 1
	var srcCall *ast.CallExpr
	if source {
		if call, ok := stmt.Rhs[0].(*ast.CallExpr); ok && a.isSource(call) {
			srcCall = call
		}
	}

	for _, rhs := range stmt.Rhs {
		st = a.scanExpr(rhs, st)
	}

	// LHS idents previously tracked are overwritten: a still-owned frame
	// would be orphaned by the new value.
	for _, lhs := range stmt.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok {
			st = a.scanExpr(lhs, st)
			continue
		}
		obj := a.pass.Info.Uses[id]
		if obj == nil {
			obj = a.pass.Info.Defs[id]
		}
		if obj == nil {
			continue
		}
		if v, tracked := st[obj]; tracked && v.state == stOwned {
			a.pass.Reportf(id.Pos(), "pooled frame %q obtained at %s is overwritten while still owned (Release it first)",
				v.name, a.posStr(v.srcPos))
			v.state = stDead
			st[obj] = v
		}
	}

	if srcCall != nil {
		idents := make([]*ast.Ident, 0, len(stmt.Lhs))
		for _, lhs := range stmt.Lhs {
			if id, ok := lhs.(*ast.Ident); ok {
				idents = append(idents, id)
			} else {
				idents = append(idents, nil)
			}
		}
		st = a.trackIdents(idents, srcCall, st)
	}
	return st
}

func (a *frAnalysis) track(names []*ast.Ident, call *ast.CallExpr, st frState) frState {
	return a.trackIdents(names, call, st)
}

// trackIdents registers the first identifier bound to an owning
// constructor result, remembering a companion error variable when the
// call has the (frame, error) shape.
func (a *frAnalysis) trackIdents(idents []*ast.Ident, call *ast.CallExpr, st frState) frState {
	if len(idents) == 0 || idents[0] == nil || idents[0].Name == "_" {
		return st
	}
	obj := a.pass.Info.Defs[idents[0]]
	if obj == nil {
		obj = a.pass.Info.Uses[idents[0]]
	}
	if obj == nil || !isFramePtr(obj.Type()) {
		return st
	}
	v := ownVar{name: idents[0].Name, srcPos: call.Pos(), state: stOwned}
	if len(idents) >= 2 && idents[1] != nil && idents[1].Name != "_" {
		if eo := a.identObj(idents[1]); eo != nil && isErrorType(eo.Type()) {
			v.errObj = eo
		}
	}
	st = st.clone()
	st[obj] = v
	return st
}

func (a *frAnalysis) identObj(id *ast.Ident) types.Object {
	if o := a.pass.Info.Defs[id]; o != nil {
		return o
	}
	return a.pass.Info.Uses[id]
}

// deferStmt recognizes `defer f.Release()` and deferred closures that
// release a tracked frame; anything else is a normal escape scan.
func (a *frAnalysis) deferStmt(stmt *ast.DeferStmt, st frState) frState {
	if obj, ok := a.releaseReceiver(stmt.Call, st); ok {
		v := st[obj]
		if v.state == stReleased || v.state == stExitReleased {
			a.pass.Reportf(stmt.Call.Pos(), "frame %q is already released (at %s); this deferred Release would panic",
				v.name, a.posStr(v.relPos))
		}
		v.state = stExitReleased
		v.relPos = stmt.Call.Pos()
		st = st.clone()
		st[obj] = v
		return st
	}
	if fl, ok := stmt.Call.Fun.(*ast.FuncLit); ok {
		// A deferred closure releasing an outer frame counts as a
		// release-at-exit for that frame.
		st = st.clone()
		ast.Inspect(fl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if obj, ok := a.releaseReceiver(call, st); ok {
				v := st[obj]
				if v.state == stOwned {
					v.state = stExitReleased
					v.relPos = call.Pos()
					st[obj] = v
				}
			}
			return true
		})
		return st
	}
	return a.scanExpr(stmt.Call, st)
}

// releaseReceiver matches a call of the form `<tracked>.Release()`.
func (a *frAnalysis) releaseReceiver(call *ast.CallExpr, st frState) (types.Object, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Release" {
		return nil, false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return nil, false
	}
	obj := a.pass.Info.Uses[id]
	if obj == nil {
		return nil, false
	}
	_, tracked := st[obj]
	return obj, tracked
}

// isPanic reports whether the expression is a call to panic (a path
// terminator; leaked buffers on panic paths are not findings).
func (a *frAnalysis) isPanic(e ast.Expr) bool {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	obj := a.pass.Info.Uses[id]
	_, isBuiltin := obj.(*types.Builtin)
	return obj == nil || isBuiltin
}

// useVar checks a read of a tracked variable against its state.
func (a *frAnalysis) useVar(obj types.Object, at token.Pos, st frState) frState {
	v, ok := st[obj]
	if !ok {
		return st
	}
	if v.state == stReleased {
		a.pass.Reportf(at, "use of frame %q after Release (released at %s)", v.name, a.posStr(v.relPos))
	}
	return st
}

// scanExpr walks an expression, applying use checks and escape semantics
// to every tracked-variable occurrence.
func (a *frAnalysis) scanExpr(e ast.Expr, st frState) frState {
	switch ex := e.(type) {
	case nil:
		return st
	case *ast.Ident:
		return a.bareIdent(ex, st)
	case *ast.SelectorExpr:
		if id, ok := ex.X.(*ast.Ident); ok {
			if obj := a.pass.Info.Uses[id]; obj != nil {
				if _, tracked := st[obj]; tracked {
					// Field access reads the frame without moving ownership.
					return a.useVar(obj, id.Pos(), st)
				}
			}
		}
		return a.scanExpr(ex.X, st)
	case *ast.CallExpr:
		return a.callExpr(ex, st)
	case *ast.BinaryExpr:
		// Comparisons against nil are pure reads, not escapes.
		if (ex.Op == token.EQL || ex.Op == token.NEQ) && (isNilIdent(ex.X) || isNilIdent(ex.Y)) {
			if id, other := identAndOther(ex); id != nil && isNilIdent(other) {
				if obj := a.pass.Info.Uses[id]; obj != nil {
					if _, tracked := st[obj]; tracked {
						return a.useVar(obj, id.Pos(), st)
					}
				}
			}
		}
		st = a.scanExpr(ex.X, st)
		return a.scanExpr(ex.Y, st)
	case *ast.ParenExpr:
		return a.scanExpr(ex.X, st)
	case *ast.StarExpr:
		return a.scanExpr(ex.X, st)
	case *ast.UnaryExpr:
		return a.scanExpr(ex.X, st)
	case *ast.IndexExpr:
		st = a.scanExpr(ex.X, st)
		return a.scanExpr(ex.Index, st)
	case *ast.SliceExpr:
		st = a.scanExpr(ex.X, st)
		st = a.scanExpr(ex.Low, st)
		st = a.scanExpr(ex.High, st)
		return a.scanExpr(ex.Max, st)
	case *ast.TypeAssertExpr:
		return a.scanExpr(ex.X, st)
	case *ast.CompositeLit:
		for _, el := range ex.Elts {
			st = a.scanExpr(el, st)
		}
		return st
	case *ast.KeyValueExpr:
		st = a.scanExpr(ex.Key, st)
		return a.scanExpr(ex.Value, st)
	case *ast.FuncLit:
		// Capturing a tracked frame hands it to the closure: escape. The
		// closure body is analyzed as its own function by runFrameRelease.
		st = st.clone()
		ast.Inspect(ex.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			if obj := a.pass.Info.Uses[id]; obj != nil {
				if v, tracked := st[obj]; tracked && v.state != stDead {
					v.state = stDead
					st[obj] = v
				}
			}
			return true
		})
		return st
	}
	return st
}

// bareIdent handles a tracked variable appearing as a plain value: the
// reference escapes our view (stored, passed, aliased), so ownership
// transfers.
func (a *frAnalysis) bareIdent(id *ast.Ident, st frState) frState {
	obj := a.pass.Info.Uses[id]
	if obj == nil {
		return st
	}
	v, tracked := st[obj]
	if !tracked {
		return st
	}
	st = a.useVar(obj, id.Pos(), st)
	if v.state == stOwned {
		v.state = stDead
		st = st.clone()
		st[obj] = v
	}
	return st
}

// callExpr handles method calls on tracked frames (Release, reads) and
// argument escapes.
func (a *frAnalysis) callExpr(call *ast.CallExpr, st frState) frState {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := a.pass.Info.Uses[id]; obj != nil {
				if v, tracked := st[obj]; tracked {
					switch sel.Sel.Name {
					case "Release":
						if v.state == stReleased || v.state == stExitReleased {
							a.pass.Reportf(call.Pos(), "double Release of frame %q (first released at %s)",
								v.name, a.posStr(v.relPos))
						}
						v.state = stReleased
						v.relPos = call.Pos()
						st = st.clone()
						st[obj] = v
					case "Released":
						// Explicitly legal after Release.
					default:
						st = a.useVar(obj, id.Pos(), st)
					}
					for _, arg := range call.Args {
						st = a.scanExpr(arg, st)
					}
					return st
				}
			}
		}
		st = a.scanExpr(sel.X, st)
	} else if _, isIdent := call.Fun.(*ast.Ident); !isIdent {
		st = a.scanExpr(call.Fun, st)
	}
	for _, arg := range call.Args {
		st = a.scanExpr(arg, st)
	}
	return st
}

// isSource reports whether the call produces an owned pooled frame: a
// callee named like an owning constructor whose (first) result is
// *frame.Frame.
func (a *frAnalysis) isSource(call *ast.CallExpr) bool {
	var name string
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		name = fun.Name
	case *ast.SelectorExpr:
		name = fun.Sel.Name
	default:
		return false
	}
	if !frameSourceNames[name] {
		return false
	}
	tv, ok := a.pass.Info.Types[ast.Expr(call)]
	if !ok {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		return t.Len() >= 1 && isFramePtr(t.At(0).Type())
	default:
		return isFramePtr(t)
	}
}

// isFramePtr reports whether t is *frame.Frame (matched by package-path
// suffix).
func isFramePtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Name() != "Frame" || obj.Pkg() == nil {
		return false
	}
	return strings.HasSuffix(obj.Pkg().Path(), framePkgSuffix)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
