// Package golint is a small, self-contained static-analysis framework for
// the Go half of VideoPipe, built directly on go/parser, go/ast and
// go/types — the stdlib-only counterpart of pipevet (internal/script,
// internal/core), which guards the PipeScript layer. The driver loads and
// type-checks packages (load.go), runs a set of Analyzers over each, and
// reports positioned diagnostics that can be suppressed per line with
//
//	//vpvet:allow <check>[,<check>...] [reason]
//
// placed on the offending line or the line directly above it. The checks
// themselves (framerelease.go, determinism.go, metername.go,
// lockdiscipline.go) enforce the cross-cutting invariants PRs 2-4 made
// load-bearing: pooled-frame ownership, seed determinism and the meter
// name contract; see DESIGN.md "Static enforcement".
package golint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"sort"
	"strings"
)

// An Analyzer is one named check run over a type-checked package.
type Analyzer struct {
	// Name is the check name used in output and //vpvet:allow comments.
	Name string
	// Doc is a one-line description, shown by vpvet -list.
	Doc string
	// Run inspects the package and reports findings through the pass.
	Run func(*Pass)
}

// Pass carries one analyzer's view of one package plus the sink for its
// diagnostics.
type Pass struct {
	*Package
	Analyzer *Analyzer

	diags *[]Diagnostic
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	*p.diags = append(*p.diags, Diagnostic{
		Check:   p.Analyzer.Name,
		File:    position.Filename,
		Line:    position.Line,
		Col:     position.Column,
		Message: fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Check   string `json:"check"`
	File    string `json:"file"`
	Line    int    `json:"line"`
	Col     int    `json:"col"`
	Message string `json:"message"`
}

// String renders the diagnostic in the canonical file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.File, d.Line, d.Col, d.Check, d.Message)
}

// directive prefixes recognized in comments.
const (
	allowPrefix    = "//vpvet:allow"
	deterministicD = "//vpvet:deterministic"
	vpvetPrefix    = "//vpvet:"
)

// Run executes the analyzers over the packages and returns the surviving
// (unsuppressed) diagnostics sorted by position. Malformed or unknown
// //vpvet: directives are themselves reported under the "vpvet" check;
// known lists the valid check names for that validation (defaults to the
// analyzers being run).
func Run(pkgs []*Package, analyzers []*Analyzer, known []string) []Diagnostic {
	if known == nil {
		for _, a := range analyzers {
			known = append(known, a.Name)
		}
	}
	knownSet := make(map[string]bool, len(known))
	for _, n := range known {
		knownSet[n] = true
	}

	var diags []Diagnostic
	allows := make(map[string]map[int]map[string]bool) // file -> line -> check set
	for _, pkg := range pkgs {
		// Collect and validate //vpvet: directives first, so suppression
		// covers every analyzer's findings in this package.
		for _, f := range pkg.Files {
			collectDirectives(pkg, f, allows, knownSet, &diags)
		}
	}
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			pass := &Pass{Package: pkg, Analyzer: a, diags: &diags}
			a.Run(pass)
		}
	}

	// A finding is suppressed when an allow for its check sits on the same
	// line or the line directly above.
	kept := diags[:0]
	for _, d := range diags {
		if d.Check != "vpvet" && allowed(allows, d.File, d.Line, d.Check) {
			continue
		}
		kept = append(kept, d)
	}
	sort.Slice(kept, func(i, j int) bool {
		if kept[i].File != kept[j].File {
			return kept[i].File < kept[j].File
		}
		if kept[i].Line != kept[j].Line {
			return kept[i].Line < kept[j].Line
		}
		if kept[i].Col != kept[j].Col {
			return kept[i].Col < kept[j].Col
		}
		return kept[i].Check < kept[j].Check
	})
	return kept
}

func allowed(allows map[string]map[int]map[string]bool, file string, line int, check string) bool {
	lines, ok := allows[file]
	if !ok {
		return false
	}
	for _, ln := range []int{line, line - 1} {
		if checks, ok := lines[ln]; ok && checks[check] {
			return true
		}
	}
	return false
}

// collectDirectives scans one file's comments for //vpvet: directives,
// recording allows and validating that every named check is real.
func collectDirectives(pkg *Package, f *ast.File, allows map[string]map[int]map[string]bool, known map[string]bool, diags *[]Diagnostic) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := strings.TrimSpace(c.Text)
			if !strings.HasPrefix(text, vpvetPrefix) {
				continue
			}
			pos := pkg.Fset.Position(c.Slash)
			if text == deterministicD || strings.HasPrefix(text, deterministicD+" ") {
				continue // scope directive, consumed by the determinism analyzer
			}
			rest, isAllow := strings.CutPrefix(text, allowPrefix)
			if !isAllow {
				*diags = append(*diags, Diagnostic{
					Check: "vpvet", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: fmt.Sprintf("unknown vpvet directive %q (known: allow, deterministic)", firstField(text)),
				})
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				*diags = append(*diags, Diagnostic{
					Check: "vpvet", File: pos.Filename, Line: pos.Line, Col: pos.Column,
					Message: "//vpvet:allow names no check (want \"//vpvet:allow <check> [reason]\")",
				})
				continue
			}
			for _, check := range strings.Split(fields[0], ",") {
				if !known[check] {
					*diags = append(*diags, Diagnostic{
						Check: "vpvet", File: pos.Filename, Line: pos.Line, Col: pos.Column,
						Message: fmt.Sprintf("//vpvet:allow names unknown check %q (known: %s)", check, strings.Join(sortedKeys(known), ", ")),
					})
					continue
				}
				if allows[pos.Filename] == nil {
					allows[pos.Filename] = make(map[int]map[string]bool)
				}
				if allows[pos.Filename][pos.Line] == nil {
					allows[pos.Filename][pos.Line] = make(map[string]bool)
				}
				allows[pos.Filename][pos.Line][check] = true
			}
		}
	}
}

func firstField(s string) string {
	if f := strings.Fields(s); len(f) > 0 {
		return f[0]
	}
	return s
}

func sortedKeys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// WriteText renders diagnostics one per line in file:line:col form,
// relative to dir when possible.
func WriteText(w io.Writer, diags []Diagnostic, dir string) {
	for _, d := range diags {
		rel := d.File
		if dir != "" {
			if r, ok := strings.CutPrefix(d.File, dir+"/"); ok {
				rel = r
			}
		}
		fmt.Fprintf(w, "%s:%d:%d: %s: %s\n", rel, d.Line, d.Col, d.Check, d.Message)
	}
}

// WriteJSON renders diagnostics as a JSON array.
func WriteJSON(w io.Writer, diags []Diagnostic) error {
	if diags == nil {
		diags = []Diagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}
