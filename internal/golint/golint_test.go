package golint

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// corpusRegistry is the fixed meter registry the metername corpus is
// written against (see testdata/metername/corpus.go).
var corpusRegistry = []string{
	"chaos.errors",
	"module.*.events",
	"pipeline.*.frames_done",
	"pool.*.size",
}

// goldenCases maps each corpus directory to the analyzer under test.
var goldenCases = []struct {
	dir      string
	analyzer *Analyzer
}{
	{"testdata/framerelease", FrameRelease},
	{"testdata/determinism", Determinism},
	{"testdata/metername", MeterName(corpusRegistry)},
	{"testdata/lockdiscipline", LockDiscipline},
}

// TestGolden runs each analyzer over its corpus and checks the
// diagnostics against the `// want <regexp>` comments: every want must
// be hit by a diagnostic on its line, and every diagnostic must be
// wanted.
func TestGolden(t *testing.T) {
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	for _, tc := range goldenCases {
		t.Run(tc.analyzer.Name, func(t *testing.T) {
			pkg, err := loader.LoadDir(tc.dir)
			if err != nil {
				t.Fatalf("load %s: %v", tc.dir, err)
			}
			diags := Run([]*Package{pkg}, []*Analyzer{tc.analyzer}, []string{tc.analyzer.Name})
			wants := collectWants(t, pkg)
			if len(wants) < 3 {
				t.Fatalf("corpus %s has %d positive cases; the suite requires at least 3", tc.dir, len(wants))
			}

			matched := make([]bool, len(diags))
			for _, w := range wants {
				hit := false
				for i, d := range diags {
					if matched[i] || d.Line != w.line {
						continue
					}
					if w.re.MatchString(d.Message) {
						matched[i] = true
						hit = true
						break
					}
				}
				if !hit {
					t.Errorf("%s:%d: want diagnostic matching %q, got none", w.file, w.line, w.re)
					for _, d := range diags {
						if d.Line == w.line {
							t.Errorf("  diagnostic on that line: %s", d.Message)
						}
					}
				}
			}
			for i, d := range diags {
				if !matched[i] {
					t.Errorf("unexpected diagnostic %s", d)
				}
			}
		})
	}
}

// want is one expected diagnostic parsed from a corpus comment.
type want struct {
	file string
	line int
	re   *regexp.Regexp
}

// collectWants parses `// want <regexp>` comments; everything after
// "want " is the pattern, matched against the diagnostic message.
func collectWants(t *testing.T, pkg *Package) []want {
	t.Helper()
	var out []want
	for _, file := range pkg.Files {
		for _, cg := range file.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "// want ")
				if !ok {
					continue
				}
				re, err := regexp.Compile(strings.TrimSpace(text))
				if err != nil {
					pos := pkg.Fset.Position(c.Pos())
					t.Fatalf("%s: bad want pattern: %v", pos, err)
				}
				pos := pkg.Fset.Position(c.Pos())
				out = append(out, want{file: pos.Filename, line: pos.Line, re: re})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].file != out[j].file {
			return out[i].file < out[j].file
		}
		return out[i].line < out[j].line
	})
	return out
}

// TestCleanRepo asserts the full suite reports zero findings over the
// repository itself — the invariant `make vet` enforces in CI. The
// registry snapshot (internal/metrics/names.go) must also be current.
func TestCleanRepo(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	start := time.Now()
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	// Load from the module root: the test binary's working directory is
	// this package, but the clean-repo invariant covers the whole module.
	pkgs, err := loader.Load(filepath.Join(loader.ModuleDir, "..."))
	if err != nil {
		t.Fatal(err)
	}
	registry := readRepoRegistry(t, pkgs)
	analyzers := []*Analyzer{FrameRelease, Determinism, MeterName(registry), LockDiscipline}
	known := make([]string, 0, len(analyzers))
	for _, a := range analyzers {
		known = append(known, a.Name)
	}
	diags := Run(pkgs, analyzers, known)
	for _, d := range diags {
		t.Errorf("repo is not vpvet-clean: %s", d)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("full-repo analysis took %s; the suite must stay under 30s", elapsed)
	}

	// The generated registry must match what a fresh -write-meters scan
	// would produce, so call sites and names.go cannot drift apart.
	scanned := CollectMeterNames(pkgs)
	if got, want := fmt.Sprint(scanned), fmt.Sprint(registry); got != want {
		t.Errorf("internal/metrics/names.go is stale: regenerate with `make meters`\n scanned: %s\n registry: %s", got, want)
	}
}

// readRepoRegistry extracts MeterNamePatterns from the already-loaded
// internal/metrics package, keeping the test independent of an import
// cycle on the generated file.
func readRepoRegistry(t *testing.T, pkgs []*Package) []string {
	t.Helper()
	for _, pkg := range pkgs {
		if !strings.HasSuffix(pkg.Path, "internal/metrics") {
			continue
		}
		var out []string
		for _, file := range pkg.Files {
			pos := pkg.Fset.Position(file.Pos())
			if !strings.HasSuffix(pos.Filename, "names.go") {
				continue
			}
			out = append(out, stringLiterals(file)...)
		}
		if len(out) == 0 {
			t.Fatal("no patterns found in internal/metrics/names.go; run `make meters`")
		}
		return out
	}
	t.Fatal("internal/metrics not among loaded packages")
	return nil
}

// stringLiterals returns every string literal in the file, in source
// order — for names.go that is exactly the registry slice.
func stringLiterals(file *ast.File) []string {
	var out []string
	ast.Inspect(file, func(n ast.Node) bool {
		lit, ok := n.(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		if s, err := strconv.Unquote(lit.Value); err == nil {
			out = append(out, s)
		}
		return true
	})
	return out
}
