package golint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit an Analyzer runs
// over. Files holds only the non-test sources (tests assert on findings,
// they are not subject to them).
type Package struct {
	// Path is the import path ("videopipe/internal/frame").
	Path string
	// Dir is the absolute directory holding the sources.
	Dir string
	// Fset positions every file in the loader's shared FileSet.
	Fset *token.FileSet
	// Files are the parsed sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's expression/object tables.
	Info *types.Info
}

// Loader discovers, parses and type-checks packages inside one module.
// Imports within the module are resolved recursively by the loader itself;
// everything else (the standard library) is delegated to the stdlib source
// importer, so the whole pipeline needs nothing beyond the standard
// library and a GOROOT.
type Loader struct {
	// ModulePath is the module's import-path prefix, read from go.mod.
	ModulePath string
	// ModuleDir is the module root directory.
	ModuleDir string

	fset  *token.FileSet
	std   types.ImporterFrom
	cache map[string]*Package
	ctx   build.Context
}

// NewLoader returns a loader rooted at the module containing dir. It walks
// up from dir until it finds a go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("golint: no go.mod found above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("golint: no module line in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	ctx := build.Default
	l := &Loader{
		ModulePath: modPath,
		ModuleDir:  root,
		fset:       fset,
		cache:      make(map[string]*Package),
		ctx:        ctx,
	}
	l.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)
	return l, nil
}

// Fset returns the loader's shared FileSet.
func (l *Loader) Fset() *token.FileSet { return l.fset }

// Load resolves package patterns ("./...", "./internal/frame", ".") to
// directories under the module root and loads each, returning packages
// sorted by import path.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	dirs := map[string]bool{}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "" {
				pat = "."
			}
		} else if pat == "..." {
			recursive = true
			pat = "."
		}
		base, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			dirs[base] = true
			continue
		}
		err = filepath.WalkDir(base, func(p string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if p != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			dirs[p] = true
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	var pkgs []*Package
	for dir := range dirs {
		pkg, err := l.LoadDir(dir)
		if err != nil {
			if _, nogo := err.(*build.NoGoError); nogo {
				continue
			}
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	sort.Slice(pkgs, func(i, j int) bool { return pkgs[i].Path < pkgs[j].Path })
	return pkgs, nil
}

// LoadDir loads and type-checks the package in one directory. The import
// path is derived from the directory's position under the module root.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	rel, err := filepath.Rel(l.ModuleDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("golint: %s is outside module %s", abs, l.ModuleDir)
	}
	path := l.ModulePath
	if rel != "." {
		path = l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	return l.loadPath(path, abs)
}

// loadPath loads the package with the given import path from dir, caching
// the result so shared dependencies type-check once.
func (l *Loader) loadPath(path, dir string) (*Package, error) {
	if p, ok := l.cache[path]; ok {
		if p == nil {
			return nil, fmt.Errorf("golint: import cycle through %s", path)
		}
		return p, nil
	}
	l.cache[path] = nil // cycle guard

	// go/build selects the files honoring build constraints.
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		delete(l.cache, path)
		return nil, err
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			delete(l.cache, path)
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{Importer: importerFunc(l.importDep)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		delete(l.cache, path)
		return nil, fmt.Errorf("golint: type-checking %s: %w", path, err)
	}
	p := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.cache[path] = p
	return p, nil
}

// importDep resolves one import during type checking: module-internal
// paths recurse through the loader, everything else goes to the stdlib
// source importer.
func (l *Loader) importDep(path, srcDir string) (*types.Package, error) {
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		p, err := l.loadPath(path, filepath.Join(l.ModuleDir, filepath.FromSlash(rel)))
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, 0)
}

// importerFunc adapts a function to types.ImporterFrom.
type importerFunc func(path, srcDir string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path, "") }
func (f importerFunc) ImportFrom(path, dir string, _ types.ImportMode) (*types.Package, error) {
	return f(path, dir)
}
