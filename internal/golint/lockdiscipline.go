package golint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockDiscipline enforces two locking rules the runtime depends on:
//
//  1. No sync.Mutex / RWMutex / WaitGroup / Once / Cond is copied by
//     value — value receivers, value parameters and results, plain
//     assignments from existing values, and range copies are all flagged
//     (a copied lock guards nothing).
//  2. No channel send and no blocking RPC (wire / services Call, Send)
//     runs while a mutex locked in the same function is still held: the
//     receiver may itself need that lock to drain, which is how the data
//     plane deadlocks under backpressure. Sends inside a select with a
//     default branch are non-blocking and exempt.
var LockDiscipline = &Analyzer{
	Name: "lockdiscipline",
	Doc:  "no locks copied by value; no blocking send while a mutex is held",
	Run:  runLockDiscipline,
}

// lockTypeNames are the sync types whose copy is always a bug.
var lockTypeNames = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true, "Cond": true,
}

// blockingRPCPkgs are package-path suffixes whose Call/Send methods block
// on the network (or a remote peer) and must not run under a mutex.
var blockingRPCPkgs = []string{"internal/wire", "internal/services"}

var blockingRPCMethods = map[string]bool{"Call": true, "Send": true}

func runLockDiscipline(pass *Pass) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.FuncDecl:
				checkFuncSig(pass, node)
				if node.Body != nil {
					h := &heldAnalysis{pass: pass}
					h.walkStmts(node.Body.List, heldSet{})
				}
			case *ast.FuncLit:
				h := &heldAnalysis{pass: pass}
				h.walkStmts(node.Body.List, heldSet{})
			case *ast.AssignStmt:
				checkCopyAssign(pass, node)
			case *ast.RangeStmt:
				checkCopyRange(pass, node)
			case *ast.CallExpr:
				checkCopyArgs(pass, node)
			}
			return true
		})
	}
}

// ---- rule 1: locks copied by value ----

// containsLock reports whether t (followed through structs and arrays,
// but not pointers, slices or maps) embeds one of the sync lock types.
func containsLock(t types.Type) bool {
	return containsLockDepth(t, 0)
}

func containsLockDepth(t types.Type, depth int) bool {
	if depth > 10 {
		return false
	}
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypeNames[obj.Name()] {
			return true
		}
		return containsLockDepth(named.Underlying(), depth+1)
	}
	switch u := t.(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockDepth(u.Field(i).Type(), depth+1) {
				return true
			}
		}
	case *types.Array:
		return containsLockDepth(u.Elem(), depth+1)
	}
	return false
}

// checkFuncSig flags value receivers, parameters and results whose type
// carries a lock.
func checkFuncSig(pass *Pass, fn *ast.FuncDecl) {
	check := func(fl *ast.FieldList, what string) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			tv, ok := pass.Info.Types[field.Type]
			if !ok {
				continue
			}
			if _, isPtr := tv.Type.(*types.Pointer); isPtr {
				continue
			}
			if containsLock(tv.Type) {
				pass.Reportf(field.Type.Pos(), "%s of %s copies a lock: %s contains a sync type (pass a pointer)",
					what, fn.Name.Name, tv.Type.String())
			}
		}
	}
	check(fn.Recv, "value receiver")
	check(fn.Type.Params, "parameter")
	check(fn.Type.Results, "result")
}

// freshValue reports whether the expression constructs a new value (no
// existing lock state can be copied out of it).
func freshValue(e ast.Expr) bool {
	switch v := e.(type) {
	case *ast.CompositeLit, *ast.FuncLit, *ast.BasicLit:
		return true
	case *ast.CallExpr:
		return true // the callee's problem if it returns a lock by value
	case *ast.UnaryExpr:
		return v.Op == token.AND
	}
	return false
}

func checkCopyAssign(pass *Pass, stmt *ast.AssignStmt) {
	for i, rhs := range stmt.Rhs {
		if len(stmt.Rhs) != len(stmt.Lhs) {
			break
		}
		if freshValue(rhs) {
			continue
		}
		// Assigning to the blank identifier evaluates, not copies.
		if id, ok := stmt.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
			continue
		}
		tv, ok := pass.Info.Types[rhs]
		if !ok || tv.Type == nil {
			continue
		}
		if containsLock(tv.Type) {
			pass.Reportf(stmt.Lhs[i].Pos(), "assignment copies a lock: %s contains a sync type (use a pointer)", tv.Type.String())
		}
	}
}

func checkCopyRange(pass *Pass, stmt *ast.RangeStmt) {
	if stmt.Value == nil {
		return
	}
	tv, ok := pass.Info.Types[stmt.Value]
	if !ok || tv.Type == nil {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return
	}
	if containsLock(tv.Type) {
		pass.Reportf(stmt.Value.Pos(), "range copies a lock per iteration: %s contains a sync type (range over indices or pointers)", tv.Type.String())
	}
}

func checkCopyArgs(pass *Pass, call *ast.CallExpr) {
	for _, arg := range call.Args {
		if freshValue(arg) {
			continue
		}
		tv, ok := pass.Info.Types[arg]
		if !ok || tv.Type == nil {
			continue
		}
		if tv.IsType() {
			continue // conversions like sync.Mutex(x) are not calls
		}
		if containsLock(tv.Type) {
			pass.Reportf(arg.Pos(), "argument copies a lock: %s contains a sync type (pass a pointer)", tv.Type.String())
		}
	}
}

// ---- rule 2: blocking operations while a mutex is held ----

// heldLock records one acquired mutex on the current path.
type heldLock struct {
	pos       token.Pos // where Lock ran
	untilExit bool      // released only by a deferred Unlock
}

// heldSet maps the canonical receiver expression ("m.mu") to its lock
// record.
type heldSet map[string]heldLock

func (h heldSet) clone() heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		out[k] = v
	}
	return out
}

// intersect keeps locks held on both branch outcomes — the conservative
// (finding-averse) merge.
func (h heldSet) intersect(other heldSet) heldSet {
	out := make(heldSet, len(h))
	for k, v := range h {
		if _, ok := other[k]; ok {
			out[k] = v
		}
	}
	return out
}

type heldAnalysis struct {
	pass *Pass
}

func (h *heldAnalysis) walkStmts(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, s := range list {
		var term bool
		held, term = h.walkStmt(s, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (h *heldAnalysis) walkStmt(s ast.Stmt, held heldSet) (heldSet, bool) {
	switch stmt := s.(type) {
	case *ast.ExprStmt:
		return h.exprStmt(stmt.X, held), false
	case *ast.DeferStmt:
		if key, kind, ok := h.lockCall(stmt.Call); ok && (kind == "Unlock" || kind == "RUnlock") {
			if l, isHeld := held[key]; isHeld {
				l.untilExit = true
				held = held.clone()
				held[key] = l
			}
		}
		return held, false
	case *ast.SendStmt:
		h.checkBlocked(stmt.Arrow, "channel send", held)
		return held, false
	case *ast.AssignStmt:
		for _, rhs := range stmt.Rhs {
			h.scanCalls(rhs, held)
		}
		return held, false
	case *ast.ReturnStmt:
		for _, res := range stmt.Results {
			h.scanCalls(res, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, true
	case *ast.BlockStmt:
		return h.walkStmts(stmt.List, held)
	case *ast.IfStmt:
		if stmt.Init != nil {
			held, _ = h.walkStmt(stmt.Init, held)
		}
		h.scanCalls(stmt.Cond, held)
		thenHeld, thenTerm := h.walkStmts(stmt.Body.List, held.clone())
		elseHeld, elseTerm := held.clone(), false
		if stmt.Else != nil {
			elseHeld, elseTerm = h.walkStmt(stmt.Else, elseHeld)
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return thenHeld.intersect(elseHeld), false
		}
	case *ast.ForStmt:
		if stmt.Init != nil {
			held, _ = h.walkStmt(stmt.Init, held)
		}
		if stmt.Cond != nil {
			h.scanCalls(stmt.Cond, held)
		}
		h.walkStmts(stmt.Body.List, held.clone())
		return held, false
	case *ast.RangeStmt:
		h.scanCalls(stmt.X, held)
		h.walkStmts(stmt.Body.List, held.clone())
		return held, false
	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var body *ast.BlockStmt
		if sw, ok := stmt.(*ast.SwitchStmt); ok {
			if sw.Init != nil {
				held, _ = h.walkStmt(sw.Init, held)
			}
			if sw.Tag != nil {
				h.scanCalls(sw.Tag, held)
			}
			body = sw.Body
		} else {
			body = stmt.(*ast.TypeSwitchStmt).Body
		}
		merged := held
		for _, cl := range body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				branch, term := h.walkStmts(cc.Body, held.clone())
				if !term {
					merged = merged.intersect(branch)
				}
			}
		}
		return merged, false
	case *ast.SelectStmt:
		// A select with a default clause never blocks; without one, its
		// sends and receives block like bare sends.
		hasDefault := false
		for _, cl := range stmt.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok && comm.Comm == nil {
				hasDefault = true
			}
		}
		merged := held
		for _, cl := range stmt.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			if send, isSend := comm.Comm.(*ast.SendStmt); isSend && !hasDefault {
				h.checkBlocked(send.Arrow, "channel send (in select without default)", held)
			}
			branch, term := h.walkStmts(comm.Body, held.clone())
			if !term {
				merged = merged.intersect(branch)
			}
		}
		return merged, false
	case *ast.GoStmt:
		return held, false // runs on its own goroutine, own lock context
	case *ast.LabeledStmt:
		return h.walkStmt(stmt.Stmt, held)
	}
	return held, false
}

// exprStmt handles Lock/Unlock transitions and blocking calls at
// statement level.
func (h *heldAnalysis) exprStmt(e ast.Expr, held heldSet) heldSet {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		h.scanCalls(e, held)
		return held
	}
	if key, kind, ok := h.lockCall(call); ok {
		held = held.clone()
		switch kind {
		case "Lock", "RLock":
			held[key] = heldLock{pos: call.Pos()}
		case "Unlock", "RUnlock":
			delete(held, key)
		}
		return held
	}
	h.scanCalls(call, held)
	return held
}

// scanCalls looks inside an expression for blocking RPC calls while locks
// are held. Nested FuncLits run later, in their own context.
func (h *heldAnalysis) scanCalls(e ast.Expr, held heldSet) {
	if e == nil || len(held) == 0 {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if _, isLit := n.(*ast.FuncLit); isLit {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if h.isBlockingRPC(call) {
			h.checkBlocked(call.Pos(), "blocking "+callName(call)+" call", held)
		}
		return true
	})
}

func callName(call *ast.CallExpr) string {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		return sel.Sel.Name
	}
	return "RPC"
}

// checkBlocked reports every currently-held mutex at a blocking point.
func (h *heldAnalysis) checkBlocked(pos token.Pos, what string, held heldSet) {
	for key, l := range held {
		h.pass.Reportf(pos, "%s while %s is held (locked at %s): the peer may need the lock to make progress",
			what, key, h.pass.Fset.Position(l.pos))
	}
}

// lockCall matches `<expr>.Lock/RLock/Unlock/RUnlock()` where the
// receiver's type comes from package sync, returning the canonical
// receiver key.
func (h *heldAnalysis) lockCall(call *ast.CallExpr) (key, kind string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	name := sel.Sel.Name
	switch name {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", "", false
	}
	fnObj, isFn := h.pass.Info.Uses[sel.Sel].(*types.Func)
	if !isFn || fnObj.Pkg() == nil || fnObj.Pkg().Path() != "sync" {
		return "", "", false
	}
	return exprKey(sel.X), name, true
}

// isBlockingRPC matches Call/Send methods on wire or services types.
func (h *heldAnalysis) isBlockingRPC(call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !blockingRPCMethods[sel.Sel.Name] {
		return false
	}
	fnObj, ok := h.pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok || fnObj.Pkg() == nil {
		return false
	}
	for _, suffix := range blockingRPCPkgs {
		if strings.HasSuffix(fnObj.Pkg().Path(), suffix) {
			return true
		}
	}
	return false
}

// exprKey renders a receiver expression canonically ("m.mu", "mu").
func exprKey(e ast.Expr) string {
	switch v := e.(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return exprKey(v.X) + "." + v.Sel.Name
	case *ast.ParenExpr:
		return exprKey(v.X)
	case *ast.StarExpr:
		return exprKey(v.X)
	case *ast.IndexExpr:
		return exprKey(v.X) + "[...]"
	case *ast.CallExpr:
		return exprKey(v.Fun) + "()"
	}
	return "<lock>"
}
