package golint

import (
	"go/ast"
	"go/constant"
	"go/types"
	"sort"
	"strings"
)

// MeterName returns the meter-name contract analyzer, checking every name
// passed to a metrics sink against the generated registry (the patterns
// in internal/metrics/names.go, where '*' stands for one dynamic
// segment). Tests, vpbench and the monitor all address instruments by
// these stringly-typed names, so a typo silently records into a fresh,
// never-read meter; the analyzer catches unknown names at build time and
// suggests near misses by edit distance. Names computed entirely at
// runtime must carry //vpvet:allow metername with a reason.
//
// Sinks: metrics.Registry.Meter / .Histogram / .Gauge, and benchio.Entry.Set /
// .SetDurationMS (the BENCH_results.json keys vpbench and vpflood write,
// held to the same registry so benchmark output never contains an
// unregistered name).
func MeterName(registry []string) *Analyzer {
	return &Analyzer{
		Name: "metername",
		Doc:  "meter and histogram names must match the generated registry",
		Run: func(pass *Pass) {
			runMeterName(pass, registry)
		},
	}
}

// meterSinks maps receiver type name -> method names whose first string
// argument is a metric name. Receiver types are matched by name plus a
// package-path suffix (meterSinkPkgs), so an unrelated type that happens
// to be called Entry is never mistaken for a sink.
var meterSinks = map[string]map[string]bool{
	"Registry": {"Meter": true, "Histogram": true, "Gauge": true},
	"Entry":    {"Set": true, "SetDurationMS": true},
}

// meterSinkPkgs pins each sink receiver type to its defining package.
var meterSinkPkgs = map[string]string{
	"Registry": "internal/metrics",
	"Entry":    "internal/benchio",
}

func runMeterName(pass *Pass, registry []string) {
	forEachMeterName(pass, func(call *ast.CallExpr, pattern string) {
		checkMeterName(pass, call, pattern, registry)
	})
}

// CollectMeterNames scans the packages for every statically-visible
// metric name pattern — the input to `vpvet -write-meters`, which
// regenerates internal/metrics/names.go from it.
func CollectMeterNames(pkgs []*Package) []string {
	seen := map[string]bool{}
	for _, pkg := range pkgs {
		pass := &Pass{Package: pkg}
		forEachMeterName(pass, func(_ *ast.CallExpr, pattern string) {
			if pattern != "*" {
				seen[pattern] = true
			}
		})
	}
	out := make([]string, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// forEachMeterName invokes fn with the extracted name pattern of every
// metric-sink call in the package.
func forEachMeterName(pass *Pass, fn func(call *ast.CallExpr, pattern string)) {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if !isMeterSink(pass, sel) {
				return true
			}
			fn(call, namePattern(pass, call.Args[0]))
			return true
		})
	}
}

// isMeterSink reports whether the selector resolves to a known metric
// sink method.
func isMeterSink(pass *Pass, sel *ast.SelectorExpr) bool {
	fnObj, ok := pass.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return false
	}
	sig, ok := fnObj.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if ptr, isPtr := recv.(*types.Pointer); isPtr {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	typeName := named.Obj().Name()
	methods, ok := meterSinks[typeName]
	if !ok || !methods[fnObj.Name()] {
		return false
	}
	pkg := named.Obj().Pkg()
	return pkg != nil && strings.HasSuffix(pkg.Path(), meterSinkPkgs[typeName])
}

// namePattern renders the name argument as a registry pattern: constant
// string parts stay literal, every dynamic part becomes one '*'. A result
// of "*" means nothing about the name is statically known.
func namePattern(pass *Pass, e ast.Expr) string {
	if tv, ok := pass.Info.Types[e]; ok && tv.Value != nil && tv.Value.Kind() == constant.String {
		return constant.StringVal(tv.Value)
	}
	if be, ok := e.(*ast.BinaryExpr); ok {
		left := namePattern(pass, be.X)
		right := namePattern(pass, be.Y)
		joined := left + right
		for strings.Contains(joined, "**") {
			joined = strings.ReplaceAll(joined, "**", "*")
		}
		return joined
	}
	if pe, ok := e.(*ast.ParenExpr); ok {
		return namePattern(pass, pe.X)
	}
	return "*"
}

func checkMeterName(pass *Pass, call *ast.CallExpr, pattern string, registry []string) {
	if pattern == "*" {
		pass.Reportf(call.Args[0].Pos(), "metric name is computed entirely at runtime; add //vpvet:allow metername with a reason, or restructure so the literal parts reach the call site")
		return
	}
	if strings.Contains(pattern, "*") {
		// Partially dynamic: the extracted pattern must itself be a
		// registry entry.
		for _, p := range registry {
			if p == pattern {
				return
			}
		}
		report(pass, call, pattern, registry, "metric name pattern")
		return
	}
	// Fully literal: any registry pattern may match it.
	for _, p := range registry {
		if meterPatternMatch(p, pattern) {
			return
		}
	}
	report(pass, call, pattern, registry, "metric name")
}

func report(pass *Pass, call *ast.CallExpr, pattern string, registry []string, noun string) {
	if near, d := nearestPattern(pattern, registry); d > 0 && d <= 2 {
		pass.Reportf(call.Args[0].Pos(), "%s %q is not in the generated registry (internal/metrics/names.go); did you mean %q?", noun, pattern, near)
		return
	}
	pass.Reportf(call.Args[0].Pos(), "%s %q is not in the generated registry (internal/metrics/names.go); register it with `make meters` if intentional", noun, pattern)
}

// meterPatternMatch reports whether name matches pattern, where each '*'
// stands for one or more characters.
func meterPatternMatch(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	rest := name[len(parts[0]):]
	for i := 1; i < len(parts); i++ {
		p := parts[i]
		if i == len(parts)-1 {
			if p == "" {
				return len(rest) >= 1
			}
			return strings.HasSuffix(rest, p) && len(rest) >= len(p)+1
		}
		if len(rest) < 1 {
			return false
		}
		idx := strings.Index(rest[1:], p)
		if idx < 0 {
			return false
		}
		rest = rest[1+idx+len(p):]
	}
	return true
}

// nearestPattern finds the registry entry with the smallest edit distance
// to the candidate.
func nearestPattern(name string, registry []string) (string, int) {
	best, bestDist := "", 1<<30
	for _, p := range registry {
		if d := editDistance(name, p); d < bestDist {
			best, bestDist = p, d
		}
	}
	return best, bestDist
}

// editDistance is the Levenshtein distance between two strings.
func editDistance(a, b string) int {
	if a == b {
		return 0
	}
	prev := make([]int, len(b)+1)
	cur := make([]int, len(b)+1)
	for j := range prev {
		prev[j] = j
	}
	for i := 1; i <= len(a); i++ {
		cur[0] = i
		for j := 1; j <= len(b); j++ {
			cost := 1
			if a[i-1] == b[j-1] {
				cost = 0
			}
			cur[j] = min(prev[j]+1, min(cur[j-1]+1, prev[j-1]+cost))
		}
		prev, cur = cur, prev
	}
	return prev[len(b)]
}
