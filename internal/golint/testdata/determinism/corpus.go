// Package det is the determinism golden corpus: wall clocks, shared
// rand and map ranges are only flagged inside //vpvet:deterministic
// scopes.
package det

import (
	"math/rand"
	"sort"
	"time"
)

// genOrder is a declared-deterministic function with every violation
// class.
//
//vpvet:deterministic
func genOrder(seed int64, weights map[string]int) []string {
	start := time.Now() // want time.Now reads the wall clock inside deterministic scope genOrder
	_ = start
	_ = time.Since(start) // want time.Since reads the wall clock inside deterministic scope genOrder

	jitter := rand.Intn(10) // want global math/rand.Intn uses shared unseeded state inside deterministic scope genOrder
	_ = jitter

	var names []string
	for name := range weights { // want map iteration order is nondeterministic inside deterministic scope genOrder
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// seededIsFine is clean: explicitly seeded rand is the sanctioned
// source of randomness in deterministic scopes.
//
//vpvet:deterministic
func seededIsFine(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(10)
}

// sliceRangeIsFine is clean: only map ranges are unordered.
//
//vpvet:deterministic
func sliceRangeIsFine(xs []int) int {
	total := 0
	for _, x := range xs {
		total += x
	}
	return total
}

// undeclaredScope is clean: without the directive the function may use
// wall clocks freely.
func undeclaredScope() time.Time {
	return time.Now()
}

// allowedEscape is clean: the per-line allow sanctions the real-time
// read.
//
//vpvet:deterministic
func allowedEscape() time.Time {
	//vpvet:allow determinism real-time escape exercised by the corpus
	return time.Now()
}
