// Package fr is the framerelease golden corpus. Lines carrying a
// `// want ...` comment must produce a diagnostic matching the regexp;
// all other lines must stay clean.
package fr

import (
	"fmt"

	"videopipe/internal/frame"
)

// leakOnError drops the pooled frame on the early error return.
func leakOnError(data []byte) (*frame.Frame, error) {
	f := frame.MustNewPooled(4, 4)
	if len(data) == 0 {
		return nil, fmt.Errorf("empty payload") // want pooled frame "f" obtained at .* is not released on this path
	}
	return f, nil
}

// useAfterRelease touches the frame after giving it back to the pool.
func useAfterRelease() int {
	f := frame.MustNewPooled(4, 4)
	f.Release()
	return f.Width // want use of frame "f" after Release
}

// doubleRelease releases the same frame twice (the pool panics at
// runtime; the analyzer catches it statically).
func doubleRelease() {
	f := frame.MustNewPooled(4, 4)
	f.Release()
	f.Release() // want double Release of frame "f"
}

// overwriteOwned loses the only reference to the first pooled frame.
func overwriteOwned() {
	f := frame.MustNewPooled(4, 4)
	f = frame.MustNewPooled(8, 8) // want pooled frame "f" obtained at .* is overwritten while still owned
	f.Release()
}

// cloneLeak leaks a Clone on one branch of a switch.
func cloneLeak(src *frame.Frame, mode int) *frame.Frame {
	out := src.Clone()
	switch mode {
	case 0:
		return out
	default:
		return src // want pooled frame "out" obtained at .* is not released on this path
	}
}

// releasedOnEveryPath is clean: defer covers all exits.
func releasedOnEveryPath(data []byte) (int, error) {
	f := frame.MustNewPooled(4, 4)
	defer f.Release()
	if len(data) == 0 {
		return 0, fmt.Errorf("empty payload")
	}
	return f.Width, nil
}

// transferredByReturn is clean: ownership moves to the caller.
func transferredByReturn() *frame.Frame {
	f := frame.MustNewPooled(4, 4)
	f.Seq = 1
	return f
}

// nilGuarded is clean: the error branch means f is nil, and the happy
// path releases.
func nilGuarded(c frame.Codec, data []byte) (int, error) {
	f, err := c.Decode(data)
	if err != nil {
		return 0, err
	}
	defer f.Release()
	return f.Width, nil
}

// transferredByCall is clean: passing the frame to another function
// hands over ownership.
func transferredByCall(sink func(*frame.Frame)) {
	f := frame.MustNewPooled(4, 4)
	sink(f)
}

// budgetAbortLeak models a handler aborted mid-event by a sandbox budget
// breach: the error return drops the pooled frame the event had pinned.
func budgetAbortLeak(handle func() error) error {
	f := frame.MustNewPooled(4, 4)
	if err := handle(); err != nil {
		return err // want pooled frame "f" obtained at .* is not released on this path
	}
	f.Release()
	return nil
}

// budgetAbortAbandoned is clean: the abandonment path releases the frame
// (returning its flow-control credit) before surfacing the breach.
func budgetAbortAbandoned(handle func() error) error {
	f := frame.MustNewPooled(4, 4)
	if err := handle(); err != nil {
		f.Release()
		return err
	}
	f.Release()
	return nil
}
