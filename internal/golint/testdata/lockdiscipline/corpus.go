// Package ld is the lockdiscipline golden corpus: locks copied by
// value, and channel sends while a mutex is held.
package ld

import "sync"

type guarded struct {
	mu    sync.Mutex
	out   chan int
	count int
}

// sendWhileHeld blocks on a channel send with the mutex held: the
// receiver may need the same lock, so this can deadlock.
func (g *guarded) sendWhileHeld(v int) {
	g.mu.Lock()
	g.count++
	g.out <- v // want channel send while g\.mu is held
	g.mu.Unlock()
}

// selectWhileHeld blocks in a select with no default while holding the
// lock.
func (g *guarded) selectWhileHeld(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.out <- v: // want channel send \(in select without default\) while g\.mu is held
	}
}

// byValue copies the receiver's mutex.
func byValue(g guarded) int { // want parameter of byValue copies a lock
	return g.count
}

// derefCopy duplicates the lock through a pointer dereference.
func derefCopy(g *guarded) {
	snapshot := *g // want assignment copies a lock
	_ = snapshot
}

// sendAfterUnlock is clean: the critical section ends before the send.
func (g *guarded) sendAfterUnlock(v int) {
	g.mu.Lock()
	g.count++
	g.mu.Unlock()
	g.out <- v
}

// selectWithDefault is clean: a default case means the send cannot
// block.
func (g *guarded) selectWithDefault(v int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	select {
	case g.out <- v:
	default:
	}
}

// pointerUse is clean: no lock value is copied.
func pointerUse(g *guarded) int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.count
}
