// Package mn is the metername golden corpus. The test driver runs the
// analyzer against a fixed registry:
//
//	chaos.errors
//	pipeline.*.frames_done
//	module.*.events
//	pool.*.size
package mn

import "videopipe/internal/metrics"

func record(reg *metrics.Registry, pipeline string, dynamic string) {
	reg.Meter("chaos.errors").Mark()

	reg.Meter("pipeline." + pipeline + ".frames_done").Mark()

	reg.Meter("module.cam.events").Mark()

	reg.Meter("chaos.error").Mark() // want metric name "chaos.error" is not in the generated registry .* did you mean "chaos.errors"\?

	reg.Meter("totally.unregistered.name").Mark() // want metric name "totally.unregistered.name" is not in the generated registry

	reg.Histogram("pipeline." + pipeline + ".e2e").Observe(0) // want metric name pattern "pipeline\.\*\.e2e" is not in the generated registry

	reg.Meter(dynamic).Mark() // want metric name is computed entirely at runtime

	//vpvet:allow metername corpus fixture for the runtime-name escape
	reg.Meter(dynamic).Mark()

	reg.Gauge("pool." + pipeline + ".size").Set(1)

	reg.Gauge("pool.size").Set(0) // want metric name "pool.size" is not in the generated registry

	reg.Gauge("pool." + pipeline + ".sizes").Set(0) // want metric name pattern "pool\.\*\.sizes" is not in the generated registry .* did you mean "pool\.\*\.size"\?

	reg.Gauge(dynamic).Set(0) // want metric name is computed entirely at runtime
}
