package metrics

import "sync/atomic"

// Gauge is a point-in-time level — queue depths, busy workers, pool
// sizes. Unlike a Meter it has no rate semantics: writers Set (or Add to)
// the current value and readers see the latest level. It is safe for
// concurrent use and cheap enough for per-request updates on the service
// hot path.
//
// The zero value is ready to use.
type Gauge struct {
	v atomic.Int64
}

// NewGauge returns a Gauge. The zero value is equivalent; the constructor
// exists for symmetry with the other instruments.
func NewGauge() *Gauge { return &Gauge{} }

// Set records the current level.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the level by delta and returns the new value.
func (g *Gauge) Add(delta int64) int64 { return g.v.Add(delta) }

// Value reports the most recent level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Reset returns the gauge to zero.
func (g *Gauge) Reset() { g.v.Store(0) }
