package metrics

import (
	"sync"
	"testing"
)

func TestGaugeLevels(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Errorf("zero-value gauge = %d", g.Value())
	}
	g.Set(7)
	if g.Value() != 7 {
		t.Errorf("after Set(7): %d", g.Value())
	}
	if got := g.Add(-3); got != 4 {
		t.Errorf("Add(-3) = %d, want 4", got)
	}
	g.Set(2) // Set overwrites, it does not accumulate
	if g.Value() != 2 {
		t.Errorf("after Set(2): %d", g.Value())
	}
	g.Reset()
	if g.Value() != 0 {
		t.Errorf("after Reset: %d", g.Value())
	}
	if NewGauge().Value() != 0 {
		t.Error("NewGauge not zero")
	}
}

func TestGaugeConcurrentAdds(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				g.Add(1)
				g.Add(-1)
			}
			g.Add(1)
		}()
	}
	wg.Wait()
	if g.Value() != 8 {
		t.Errorf("concurrent adds settled at %d, want 8", g.Value())
	}
}

func TestRegistryGauges(t *testing.T) {
	r := NewRegistry()
	//vpvet:allow metername test-local instrument names
	g := r.Gauge("service.x.queue_depth")
	g.Set(5)
	//vpvet:allow metername test-local instrument names
	if again := r.Gauge("service.x.queue_depth"); again != g || again.Value() != 5 {
		t.Error("Gauge did not return the registered instrument")
	}
	//vpvet:allow metername test-local instrument names
	r.Gauge("service.x.busy_workers").Set(2)
	names := r.GaugeNames()
	if len(names) != 2 || names[0] != "service.x.busy_workers" {
		t.Errorf("GaugeNames = %v", names)
	}
	r.Reset()
	if g.Value() != 0 {
		t.Errorf("registry Reset left gauge at %d", g.Value())
	}
}
