// Package metrics provides the measurement primitives used throughout
// VideoPipe: latency histograms with percentile queries, event-rate meters
// for frame-per-second accounting, and named per-stage timing registries.
//
// All types are safe for concurrent use and have useful zero values where
// practical; constructors are provided for types that need configuration.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// maxSamples bounds the memory used by a Histogram. Once full, new samples
// replace pseudo-randomly chosen old ones (seeded reservoir sampling,
// Algorithm R) so the distribution stays representative over long runs:
// after n observations every sample was retained with probability
// maxSamples/n, so a long run's quantiles are never biased toward its
// warm-up samples the way a fill-then-drop buffer's would be. The bias
// regression test in metrics_test.go pins this contract against a
// bimodal stream.
const maxSamples = 8192

// defaultReservoirSeed is the xorshift state a histogram starts from when
// Seed was never called. Any odd constant works; it is fixed so that two
// histograms fed the same observation sequence retain byte-identical
// reservoirs — the determinism the vpflood harness's reproducibility
// tests rely on.
const defaultReservoirSeed = 0x9e3779b97f4a7c15

// Histogram records duration samples and answers distribution queries.
// The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	// rng is a tiny xorshift64 state used for reservoir replacement. It is
	// seeded deterministically (defaultReservoirSeed, or Seed's value),
	// keeping the type dependency-free and every run byte-reproducible.
	rng uint64
}

// Seed resets the reservoir's replacement RNG. Calling it (before or
// between observations) makes the retained sample set a pure function of
// the seed and the observation sequence; histograms that are never seeded
// use a fixed default state and are equally deterministic. A zero seed is
// mapped to the default so the xorshift state never sticks at zero.
func (h *Histogram) Seed(seed uint64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if seed == 0 {
		seed = defaultReservoirSeed
	}
	h.rng = seed
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()

	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < maxSamples {
		h.samples = append(h.samples, d)
		return
	}
	// Reservoir replacement: keep each sample with probability maxSamples/count.
	if h.rng == 0 {
		h.rng = defaultReservoirSeed
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if idx := h.rng % h.count; idx < maxSamples {
		h.samples[idx] = d
	}
}

// Count reports the number of observed samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the arithmetic mean of all observed samples, or zero when no
// samples have been recorded.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(int64(h.sum) / int64(h.count))
}

// Min reports the smallest observed sample, or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observed sample, or zero when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) of the retained samples.
// It returns zero when no samples have been recorded.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// Samples returns a copy of the retained reservoir. Consumers that need
// quantiles across several histograms (the vpflood harness merging
// per-pipeline latency distributions) re-observe these into a fresh
// histogram; the merge is approximate, weighted by each source's retained
// count.
func (h *Histogram) Samples() []time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := make([]time.Duration, len(h.samples))
	copy(out, h.samples)
	return out
}

// Snapshot captures the histogram's summary statistics at a point in time.
type Snapshot struct {
	Count uint64
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	P999  time.Duration
}

// Snapshot returns a consistent summary of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
		P999:  h.Quantile(0.999),
	}
}

// String renders the snapshot in a compact, human-readable form.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v p999=%v min=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.P999.Round(time.Microsecond),
		s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Reset discards all recorded samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}
