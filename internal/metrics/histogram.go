// Package metrics provides the measurement primitives used throughout
// VideoPipe: latency histograms with percentile queries, event-rate meters
// for frame-per-second accounting, and named per-stage timing registries.
//
// All types are safe for concurrent use and have useful zero values where
// practical; constructors are provided for types that need configuration.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"
)

// maxSamples bounds the memory used by a Histogram. Once full, new samples
// replace pseudo-randomly chosen old ones (reservoir sampling) so the
// distribution stays representative over long runs.
const maxSamples = 8192

// Histogram records duration samples and answers distribution queries.
// The zero value is ready to use.
type Histogram struct {
	mu      sync.Mutex
	samples []time.Duration
	count   uint64
	sum     time.Duration
	min     time.Duration
	max     time.Duration
	// rng is a tiny xorshift state used for reservoir replacement. It is
	// seeded lazily from the sample count, keeping the type dependency-free
	// and deterministic for tests.
	rng uint64
}

// Observe records one duration sample.
func (h *Histogram) Observe(d time.Duration) {
	h.mu.Lock()
	defer h.mu.Unlock()

	h.count++
	h.sum += d
	if h.count == 1 || d < h.min {
		h.min = d
	}
	if d > h.max {
		h.max = d
	}
	if len(h.samples) < maxSamples {
		h.samples = append(h.samples, d)
		return
	}
	// Reservoir replacement: keep each sample with probability maxSamples/count.
	if h.rng == 0 {
		h.rng = h.count*2862933555777941757 + 3037000493
	}
	h.rng ^= h.rng << 13
	h.rng ^= h.rng >> 7
	h.rng ^= h.rng << 17
	if idx := h.rng % h.count; idx < maxSamples {
		h.samples[idx] = d
	}
}

// Count reports the number of observed samples.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Mean reports the arithmetic mean of all observed samples, or zero when no
// samples have been recorded.
func (h *Histogram) Mean() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.count == 0 {
		return 0
	}
	return time.Duration(int64(h.sum) / int64(h.count))
}

// Min reports the smallest observed sample, or zero when empty.
func (h *Histogram) Min() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.min
}

// Max reports the largest observed sample, or zero when empty.
func (h *Histogram) Max() time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Quantile reports the q-quantile (0 ≤ q ≤ 1) of the retained samples.
// It returns zero when no samples have been recorded.
func (h *Histogram) Quantile(q float64) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(h.samples))
	copy(sorted, h.samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo] + time.Duration(frac*float64(sorted[hi]-sorted[lo]))
}

// Snapshot captures the histogram's summary statistics at a point in time.
type Snapshot struct {
	Count uint64
	Mean  time.Duration
	Min   time.Duration
	Max   time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
}

// Snapshot returns a consistent summary of the histogram.
func (h *Histogram) Snapshot() Snapshot {
	return Snapshot{
		Count: h.Count(),
		Mean:  h.Mean(),
		Min:   h.Min(),
		Max:   h.Max(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
}

// String renders the snapshot in a compact, human-readable form.
func (s Snapshot) String() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v min=%v max=%v",
		s.Count, s.Mean.Round(time.Microsecond), s.P50.Round(time.Microsecond),
		s.P95.Round(time.Microsecond), s.P99.Round(time.Microsecond),
		s.Min.Round(time.Microsecond), s.Max.Round(time.Microsecond))
}

// Reset discards all recorded samples.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.samples = h.samples[:0]
	h.count = 0
	h.sum = 0
	h.min = 0
	h.max = 0
}
