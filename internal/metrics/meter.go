package metrics

import (
	"sync"
	"time"
)

// Meter measures the rate of discrete events (frames, calls) per second.
// It records the wall-clock time of the first and most recent Mark along
// with the total count; Rate reports count over elapsed time, which is the
// steady-state rate used for the paper's end-to-end FPS numbers.
//
// The zero value is ready to use.
type Meter struct {
	mu    sync.Mutex
	count uint64
	first time.Time
	last  time.Time
	// ring holds the most recent MarkN records so RateWindow can count
	// events inside a trailing window. Allocated on first Mark.
	ring     []markRecord
	ringHead int // next write slot
	ringLen  int // records currently stored (<= meterRingSize)
	// now allows tests to substitute a fake clock.
	now func() time.Time
}

// markRecord is one MarkN call: its wall-clock time and event count.
type markRecord struct {
	t time.Time
	n uint64
}

// meterRingSize bounds the trailing-mark history kept for RateWindow. At
// 60 fps that covers a ~17 s window of per-frame marks.
const meterRingSize = 1024

// NewMeter returns a Meter using the real clock. The zero value is
// equivalent; the constructor exists for symmetry and future options.
func NewMeter() *Meter { return &Meter{} }

// Mark records one event occurrence.
func (m *Meter) Mark() { m.MarkN(1) }

// MarkN records n simultaneous event occurrences.
func (m *Meter) MarkN(n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.clock()
	if m.count == 0 {
		m.first = t
	}
	m.count += n
	m.last = t
	if m.ring == nil {
		m.ring = make([]markRecord, meterRingSize)
	}
	m.ring[m.ringHead] = markRecord{t: t, n: n}
	m.ringHead = (m.ringHead + 1) % meterRingSize
	if m.ringLen < meterRingSize {
		m.ringLen++
	}
}

// Count reports the total number of events marked.
func (m *Meter) Count() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Rate reports events per second between the first and last Mark.
// Fewer than two events yield a rate of zero: a single instantaneous
// event has no measurable rate.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count < 2 {
		return 0
	}
	elapsed := m.last.Sub(m.first).Seconds()
	if elapsed <= 0 {
		return 0
	}
	// count-1 intervals span the elapsed window.
	return float64(m.count-1) / elapsed
}

// RateSince reports events per second between the first Mark and t,
// counting all marked events. It is useful when the measurement window is
// ended by the caller rather than by the final event.
func (m *Meter) RateSince(t time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return 0
	}
	elapsed := t.Sub(m.first).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count) / elapsed
}

// RateWindow reports events per second over the trailing window d, ending
// now: the count of events marked within the window divided by the window
// length. Unlike Rate, which spans first-to-last mark, the denominator is
// the fixed window, so short bursts that cluster deliveries do not inflate
// the rate — this is the estimator chaos experiments use to compare
// like-for-like measurement phases.
//
// The window is clamped to the meter's lifetime (time since the first
// mark), and to the span actually covered by the mark ring if more than
// meterRingSize MarkN calls have landed inside d.
func (m *Meter) RateWindow(d time.Duration) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 || d <= 0 {
		return 0
	}
	now := m.clock()
	cutoff := now.Add(-d)

	// Sum events inside the window and find the oldest retained record.
	var inWindow uint64
	oldest := now
	for i := 0; i < m.ringLen; i++ {
		rec := m.ring[(m.ringHead-1-i+meterRingSize)%meterRingSize]
		if rec.t.Before(oldest) {
			oldest = rec.t
		}
		if !rec.t.Before(cutoff) {
			inWindow += rec.n
		}
	}

	// Effective window start: never before the first mark, and never
	// before the oldest record still in the ring once history has been
	// evicted (otherwise evicted marks would deflate the rate).
	start := cutoff
	if m.first.After(start) {
		start = m.first
	}
	if m.ringLen == meterRingSize && oldest.After(start) {
		start = oldest
	}
	elapsed := now.Sub(start).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(inWindow) / elapsed
}

// Reset discards all recorded events.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count = 0
	m.first = time.Time{}
	m.last = time.Time{}
	m.ringHead = 0
	m.ringLen = 0
}

// SetClock substitutes the time source, for tests. Passing nil restores the
// real clock.
func (m *Meter) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

func (m *Meter) clock() time.Time {
	if m.now != nil {
		return m.now()
	}
	return time.Now()
}
