package metrics

import (
	"sync"
	"time"
)

// Meter measures the rate of discrete events (frames, calls) per second.
// It records the wall-clock time of the first and most recent Mark along
// with the total count; Rate reports count over elapsed time, which is the
// steady-state rate used for the paper's end-to-end FPS numbers.
//
// The zero value is ready to use.
type Meter struct {
	mu    sync.Mutex
	count uint64
	first time.Time
	last  time.Time
	// now allows tests to substitute a fake clock.
	now func() time.Time
}

// NewMeter returns a Meter using the real clock. The zero value is
// equivalent; the constructor exists for symmetry and future options.
func NewMeter() *Meter { return &Meter{} }

// Mark records one event occurrence.
func (m *Meter) Mark() { m.MarkN(1) }

// MarkN records n simultaneous event occurrences.
func (m *Meter) MarkN(n uint64) {
	m.mu.Lock()
	defer m.mu.Unlock()
	t := m.clock()
	if m.count == 0 {
		m.first = t
	}
	m.count += n
	m.last = t
}

// Count reports the total number of events marked.
func (m *Meter) Count() uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.count
}

// Rate reports events per second between the first and last Mark.
// Fewer than two events yield a rate of zero: a single instantaneous
// event has no measurable rate.
func (m *Meter) Rate() float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count < 2 {
		return 0
	}
	elapsed := m.last.Sub(m.first).Seconds()
	if elapsed <= 0 {
		return 0
	}
	// count-1 intervals span the elapsed window.
	return float64(m.count-1) / elapsed
}

// RateSince reports events per second between the first Mark and t,
// counting all marked events. It is useful when the measurement window is
// ended by the caller rather than by the final event.
func (m *Meter) RateSince(t time.Time) float64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.count == 0 {
		return 0
	}
	elapsed := t.Sub(m.first).Seconds()
	if elapsed <= 0 {
		return 0
	}
	return float64(m.count) / elapsed
}

// Reset discards all recorded events.
func (m *Meter) Reset() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.count = 0
	m.first = time.Time{}
	m.last = time.Time{}
}

// SetClock substitutes the time source, for tests. Passing nil restores the
// real clock.
func (m *Meter) SetClock(now func() time.Time) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.now = now
}

func (m *Meter) clock() time.Time {
	if m.now != nil {
		return m.now()
	}
	return time.Now()
}
