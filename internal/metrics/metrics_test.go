package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("Mean() = %v, want 0", got)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %v, want 0", got)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		h.Observe(d * time.Millisecond)
	}
	if got, want := h.Count(), uint64(5); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
	if got, want := h.Mean(), 30*time.Millisecond; got != want {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if got, want := h.Min(), 10*time.Millisecond; got != want {
		t.Errorf("Min() = %v, want %v", got, want)
	}
	if got, want := h.Max(), 50*time.Millisecond; got != want {
		t.Errorf("Max() = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.5), 30*time.Millisecond; got != want {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0), 10*time.Millisecond; got != want {
		t.Errorf("Quantile(0) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(1), 50*time.Millisecond; got != want {
		t.Errorf("Quantile(1) = %v, want %v", got, want)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(100 * time.Millisecond)
	if got, want := h.Quantile(0.5), 50*time.Millisecond; got != want {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.25), 25*time.Millisecond; got != want {
		t.Errorf("Quantile(0.25) = %v, want %v", got, want)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	var h Histogram
	for i := 0; i < 3*maxSamples; i++ {
		h.Observe(time.Duration(i))
	}
	if got, want := h.Count(), uint64(3*maxSamples); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
	h.mu.Lock()
	n := len(h.samples)
	h.mu.Unlock()
	if n > maxSamples {
		t.Errorf("len(samples) = %d, want <= %d", n, maxSamples)
	}
	// Max must be exact even though samples are downsampled.
	if got, want := h.Max(), time.Duration(3*maxSamples-1); got != want {
		t.Errorf("Max() = %v, want %v", got, want)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("after Reset: %+v, want all zeros", h.Snapshot())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), uint64(8000); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	// Property: quantiles are monotonically non-decreasing in q, and bounded
	// by min and max, for any sample set.
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		prev := h.Quantile(0)
		if prev < h.Min() {
			return false
		}
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return prev <= h.Max()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	tick := 0
	m.SetClock(func() time.Time {
		t := base.Add(time.Duration(tick) * 100 * time.Millisecond)
		tick++
		return t
	})
	for i := 0; i < 11; i++ {
		m.Mark()
	}
	// 11 marks spaced 100ms apart => 10 intervals over 1s => 10/s.
	if got := m.Rate(); got < 9.99 || got > 10.01 {
		t.Errorf("Rate() = %f, want 10", got)
	}
	if got, want := m.Count(), uint64(11); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
}

func TestMeterRateSince(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	m.SetClock(func() time.Time { return base })
	for i := 0; i < 20; i++ {
		m.Mark()
	}
	if got := m.RateSince(base.Add(2 * time.Second)); got < 9.99 || got > 10.01 {
		t.Errorf("RateSince(+2s) = %f, want 10", got)
	}
}

func TestMeterZeroAndSingle(t *testing.T) {
	var m Meter
	if got := m.Rate(); got != 0 {
		t.Errorf("empty Rate() = %f, want 0", got)
	}
	m.Mark()
	if got := m.Rate(); got != 0 {
		t.Errorf("single-mark Rate() = %f, want 0", got)
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.MarkN(5)
	m.Reset()
	if got := m.Count(); got != 0 {
		t.Errorf("Count() after Reset = %d, want 0", got)
	}
}

func TestRegistryReusesInstruments(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("stage.pose")
	h2 := r.Histogram("stage.pose")
	if h1 != h2 {
		t.Error("Histogram returned distinct instances for the same name")
	}
	m1 := r.Meter("fps")
	m2 := r.Meter("fps")
	if m1 != m2 {
		t.Error("Meter returned distinct instances for the same name")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Histogram("b")
	r.Histogram("a")
	r.Meter("z")
	r.Meter("y")
	hn := r.HistogramNames()
	if len(hn) != 2 || hn[0] != "a" || hn[1] != "b" {
		t.Errorf("HistogramNames() = %v, want [a b]", hn)
	}
	mn := r.MeterNames()
	if len(mn) != 2 || mn[0] != "y" || mn[1] != "z" {
		t.Errorf("MeterNames() = %v, want [y z]", mn)
	}
}

func TestRegistryTime(t *testing.T) {
	r := NewRegistry()
	err := r.Time("op", func() error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatalf("Time() error = %v", err)
	}
	if got := r.Histogram("op").Count(); got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
	if got := r.Histogram("op").Mean(); got < time.Millisecond {
		t.Errorf("histogram mean = %v, want >= 1ms", got)
	}
}

func TestRegistryReport(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat").Observe(time.Millisecond)
	r.Meter("fps").MarkN(3)
	rep := r.Report()
	if rep == "" {
		t.Error("Report() returned empty string")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat").Observe(time.Millisecond)
	r.Meter("fps").Mark()
	r.Reset()
	if got := r.Histogram("lat").Count(); got != 0 {
		t.Errorf("histogram count after Reset = %d, want 0", got)
	}
	if got := r.Meter("fps").Count(); got != 0 {
		t.Errorf("meter count after Reset = %d, want 0", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Histogram("h").Observe(time.Duration(i))
				r.Meter("m").Mark()
			}
		}()
	}
	wg.Wait()
	if got, want := r.Histogram("h").Count(), uint64(1600); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

func TestMeterRateWindow(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	now := base
	m.SetClock(func() time.Time { return now })

	// 10 marks in the first second, then a 9-second silent gap.
	for i := 0; i < 10; i++ {
		now = base.Add(time.Duration(i) * 100 * time.Millisecond)
		m.Mark()
	}
	now = base.Add(10 * time.Second)

	// First-to-last rate is inflated by the clustering (10 marks over
	// 0.9s); the trailing 10s window sees 10 marks over 10s.
	if got := m.RateWindow(10 * time.Second); got < 0.99 || got > 1.01 {
		t.Errorf("RateWindow(10s) = %f, want 1", got)
	}
	// A trailing window covering only the silent tail sees zero.
	if got := m.RateWindow(5 * time.Second); got != 0 {
		t.Errorf("RateWindow(5s) = %f, want 0", got)
	}
	// A window longer than the meter's lifetime clamps to the lifetime:
	// 10 events over 10s, not over 60s.
	if got := m.RateWindow(time.Minute); got < 0.99 || got > 1.01 {
		t.Errorf("RateWindow(1m) = %f, want 1", got)
	}
	if got := m.RateWindow(0); got != 0 {
		t.Errorf("RateWindow(0) = %f, want 0", got)
	}
}

func TestMeterRateWindowRingEviction(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	now := base
	m.SetClock(func() time.Time { return now })

	// Overflow the ring: 2*meterRingSize marks at 1ms spacing. Only the
	// newest meterRingSize records survive, so the window clamps to the
	// span the ring still covers and the rate stays ~1000/s instead of
	// halving.
	total := 2 * meterRingSize
	for i := 0; i < total; i++ {
		now = base.Add(time.Duration(i) * time.Millisecond)
		m.Mark()
	}
	if got := m.RateWindow(time.Hour); got < 900 || got > 1100 {
		t.Errorf("RateWindow after eviction = %f, want ~1000", got)
	}
}
