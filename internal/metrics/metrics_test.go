package metrics

import (
	"sync"
	"testing"
	"testing/quick"
	"time"
)

func TestHistogramEmpty(t *testing.T) {
	var h Histogram
	if got := h.Count(); got != 0 {
		t.Errorf("Count() = %d, want 0", got)
	}
	if got := h.Mean(); got != 0 {
		t.Errorf("Mean() = %v, want 0", got)
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Errorf("Quantile(0.5) = %v, want 0", got)
	}
}

func TestHistogramBasicStats(t *testing.T) {
	var h Histogram
	for _, d := range []time.Duration{10, 20, 30, 40, 50} {
		h.Observe(d * time.Millisecond)
	}
	if got, want := h.Count(), uint64(5); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
	if got, want := h.Mean(), 30*time.Millisecond; got != want {
		t.Errorf("Mean() = %v, want %v", got, want)
	}
	if got, want := h.Min(), 10*time.Millisecond; got != want {
		t.Errorf("Min() = %v, want %v", got, want)
	}
	if got, want := h.Max(), 50*time.Millisecond; got != want {
		t.Errorf("Max() = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.5), 30*time.Millisecond; got != want {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0), 10*time.Millisecond; got != want {
		t.Errorf("Quantile(0) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(1), 50*time.Millisecond; got != want {
		t.Errorf("Quantile(1) = %v, want %v", got, want)
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	var h Histogram
	h.Observe(0)
	h.Observe(100 * time.Millisecond)
	if got, want := h.Quantile(0.5), 50*time.Millisecond; got != want {
		t.Errorf("Quantile(0.5) = %v, want %v", got, want)
	}
	if got, want := h.Quantile(0.25), 25*time.Millisecond; got != want {
		t.Errorf("Quantile(0.25) = %v, want %v", got, want)
	}
}

func TestHistogramReservoirBounded(t *testing.T) {
	var h Histogram
	for i := 0; i < 3*maxSamples; i++ {
		h.Observe(time.Duration(i))
	}
	if got, want := h.Count(), uint64(3*maxSamples); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
	h.mu.Lock()
	n := len(h.samples)
	h.mu.Unlock()
	if n > maxSamples {
		t.Errorf("len(samples) = %d, want <= %d", n, maxSamples)
	}
	// Max must be exact even though samples are downsampled.
	if got, want := h.Max(), time.Duration(3*maxSamples-1); got != want {
		t.Errorf("Max() = %v, want %v", got, want)
	}
}

func TestHistogramReset(t *testing.T) {
	var h Histogram
	h.Observe(time.Second)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 || h.Max() != 0 {
		t.Errorf("after Reset: %+v, want all zeros", h.Snapshot())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i))
			}
		}()
	}
	wg.Wait()
	if got, want := h.Count(), uint64(8000); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
}

func TestHistogramQuantileMonotonic(t *testing.T) {
	// Property: quantiles are monotonically non-decreasing in q, and bounded
	// by min and max, for any sample set.
	check := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var h Histogram
		for _, v := range raw {
			h.Observe(time.Duration(v))
		}
		prev := h.Quantile(0)
		if prev < h.Min() {
			return false
		}
		for q := 0.1; q <= 1.0; q += 0.1 {
			cur := h.Quantile(q)
			if cur < prev {
				return false
			}
			prev = cur
		}
		return prev <= h.Max()
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestMeterRate(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	tick := 0
	m.SetClock(func() time.Time {
		t := base.Add(time.Duration(tick) * 100 * time.Millisecond)
		tick++
		return t
	})
	for i := 0; i < 11; i++ {
		m.Mark()
	}
	// 11 marks spaced 100ms apart => 10 intervals over 1s => 10/s.
	if got := m.Rate(); got < 9.99 || got > 10.01 {
		t.Errorf("Rate() = %f, want 10", got)
	}
	if got, want := m.Count(), uint64(11); got != want {
		t.Errorf("Count() = %d, want %d", got, want)
	}
}

func TestMeterRateSince(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	m.SetClock(func() time.Time { return base })
	for i := 0; i < 20; i++ {
		m.Mark()
	}
	if got := m.RateSince(base.Add(2 * time.Second)); got < 9.99 || got > 10.01 {
		t.Errorf("RateSince(+2s) = %f, want 10", got)
	}
}

func TestMeterZeroAndSingle(t *testing.T) {
	var m Meter
	if got := m.Rate(); got != 0 {
		t.Errorf("empty Rate() = %f, want 0", got)
	}
	m.Mark()
	if got := m.Rate(); got != 0 {
		t.Errorf("single-mark Rate() = %f, want 0", got)
	}
}

func TestMeterReset(t *testing.T) {
	var m Meter
	m.MarkN(5)
	m.Reset()
	if got := m.Count(); got != 0 {
		t.Errorf("Count() after Reset = %d, want 0", got)
	}
}

func TestRegistryReusesInstruments(t *testing.T) {
	r := NewRegistry()
	h1 := r.Histogram("stage.pose")
	h2 := r.Histogram("stage.pose")
	if h1 != h2 {
		t.Error("Histogram returned distinct instances for the same name")
	}
	m1 := r.Meter("fps")
	m2 := r.Meter("fps")
	if m1 != m2 {
		t.Error("Meter returned distinct instances for the same name")
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Histogram("b")
	r.Histogram("a")
	r.Meter("z")
	r.Meter("y")
	hn := r.HistogramNames()
	if len(hn) != 2 || hn[0] != "a" || hn[1] != "b" {
		t.Errorf("HistogramNames() = %v, want [a b]", hn)
	}
	mn := r.MeterNames()
	if len(mn) != 2 || mn[0] != "y" || mn[1] != "z" {
		t.Errorf("MeterNames() = %v, want [y z]", mn)
	}
}

func TestRegistryTime(t *testing.T) {
	r := NewRegistry()
	err := r.Time("op", func() error {
		time.Sleep(time.Millisecond)
		return nil
	})
	if err != nil {
		t.Fatalf("Time() error = %v", err)
	}
	if got := r.Histogram("op").Count(); got != 1 {
		t.Errorf("histogram count = %d, want 1", got)
	}
	if got := r.Histogram("op").Mean(); got < time.Millisecond {
		t.Errorf("histogram mean = %v, want >= 1ms", got)
	}
}

func TestRegistryReport(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat").Observe(time.Millisecond)
	r.Meter("fps").MarkN(3)
	rep := r.Report()
	if rep == "" {
		t.Error("Report() returned empty string")
	}
}

func TestRegistryReset(t *testing.T) {
	r := NewRegistry()
	r.Histogram("lat").Observe(time.Millisecond)
	r.Meter("fps").Mark()
	r.Reset()
	if got := r.Histogram("lat").Count(); got != 0 {
		t.Errorf("histogram count after Reset = %d, want 0", got)
	}
	if got := r.Meter("fps").Count(); got != 0 {
		t.Errorf("meter count after Reset = %d, want 0", got)
	}
}

func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				r.Histogram("h").Observe(time.Duration(i))
				r.Meter("m").Mark()
			}
		}()
	}
	wg.Wait()
	if got, want := r.Histogram("h").Count(), uint64(1600); got != want {
		t.Errorf("histogram count = %d, want %d", got, want)
	}
}

func TestMeterRateWindow(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	now := base
	m.SetClock(func() time.Time { return now })

	// 10 marks in the first second, then a 9-second silent gap.
	for i := 0; i < 10; i++ {
		now = base.Add(time.Duration(i) * 100 * time.Millisecond)
		m.Mark()
	}
	now = base.Add(10 * time.Second)

	// First-to-last rate is inflated by the clustering (10 marks over
	// 0.9s); the trailing 10s window sees 10 marks over 10s.
	if got := m.RateWindow(10 * time.Second); got < 0.99 || got > 1.01 {
		t.Errorf("RateWindow(10s) = %f, want 1", got)
	}
	// A trailing window covering only the silent tail sees zero.
	if got := m.RateWindow(5 * time.Second); got != 0 {
		t.Errorf("RateWindow(5s) = %f, want 0", got)
	}
	// A window longer than the meter's lifetime clamps to the lifetime:
	// 10 events over 10s, not over 60s.
	if got := m.RateWindow(time.Minute); got < 0.99 || got > 1.01 {
		t.Errorf("RateWindow(1m) = %f, want 1", got)
	}
	if got := m.RateWindow(0); got != 0 {
		t.Errorf("RateWindow(0) = %f, want 0", got)
	}
}

func TestMeterRateWindowRingEviction(t *testing.T) {
	m := NewMeter()
	base := time.Unix(1000, 0)
	now := base
	m.SetClock(func() time.Time { return now })

	// Overflow the ring: 2*meterRingSize marks at 1ms spacing. Only the
	// newest meterRingSize records survive, so the window clamps to the
	// span the ring still covers and the rate stays ~1000/s instead of
	// halving.
	total := 2 * meterRingSize
	for i := 0; i < total; i++ {
		now = base.Add(time.Duration(i) * time.Millisecond)
		m.Mark()
	}
	if got := m.RateWindow(time.Hour); got < 900 || got > 1100 {
		t.Errorf("RateWindow after eviction = %f, want ~1000", got)
	}
}

// truncatingObserver replays the failure mode this suite regression-guards
// against: a sampler that fills its buffer and then drops every later
// observation on the floor. Long-run quantiles from such a buffer are
// frozen at the warm-up distribution — exactly what a load harness must
// not report. durationObserver abstracts Observe so checkBimodalUnbiased
// exercises the real Histogram and this reference impl identically.
type durationObserver interface {
	Observe(time.Duration)
}

type truncatingObserver struct {
	samples []time.Duration
}

func (o *truncatingObserver) Observe(d time.Duration) {
	if len(o.samples) >= maxSamples {
		return // the pre-reservoir behavior: full means deaf
	}
	o.samples = append(o.samples, d)
}

func (o *truncatingObserver) quantile(q float64) time.Duration {
	h := Histogram{samples: o.samples}
	return h.Quantile(q)
}

// feedBimodal drives obs with a stream whose first maxSamples observations
// sit at earlyMode and whose following lateN sit at lateMode — the shape
// of a benchmark with a fast warm-up and a slower steady state.
func feedBimodal(obs durationObserver, earlyMode, lateMode time.Duration, lateN int) {
	for i := 0; i < maxSamples; i++ {
		obs.Observe(earlyMode)
	}
	for i := 0; i < lateN; i++ {
		obs.Observe(lateMode)
	}
}

// TestHistogramBimodalUnbiased is the reservoir-bias regression test: once
// the late mode dominates the stream ~12:1, the median and p99 of the
// retained samples must sit on the late mode, and the late mode's retained
// share must be near its true share of the stream. A histogram that stops
// sampling when full (truncatingObserver, the old failure mode) reports
// warm-up-only quantiles and fails these assertions — see
// TestTruncatingSamplerIsBiased, which proves the check has teeth.
func TestHistogramBimodalUnbiased(t *testing.T) {
	const early, late = 1 * time.Millisecond, 10 * time.Millisecond
	const lateN = 100000

	var h Histogram
	h.Seed(42)
	feedBimodal(&h, early, late, lateN)

	if got := h.Quantile(0.5); got != late {
		t.Errorf("p50 = %v, want the late mode %v (quantiles biased toward warm-up)", got, late)
	}
	if got := h.Quantile(0.99); got != late {
		t.Errorf("p99 = %v, want the late mode %v", got, late)
	}
	lateFrac := sampleShare(h.Samples(), late)
	trueFrac := float64(lateN) / float64(lateN+maxSamples)
	if lateFrac < trueFrac-0.05 || lateFrac > trueFrac+0.05 {
		t.Errorf("late-mode share of reservoir = %.3f, want %.3f ± 0.05", lateFrac, trueFrac)
	}
}

// TestTruncatingSamplerIsBiased locks in that the bimodal check actually
// distinguishes the two behaviors: the fill-then-drop sampler must FAIL
// the assertions the real Histogram passes. If someone reverts Observe to
// truncation, TestHistogramBimodalUnbiased goes red; if someone weakens
// the check until truncation passes it, this test goes red instead.
func TestTruncatingSamplerIsBiased(t *testing.T) {
	const early, late = 1 * time.Millisecond, 10 * time.Millisecond
	var o truncatingObserver
	feedBimodal(&o, early, late, 100000)

	if got := o.quantile(0.5); got != early {
		t.Fatalf("reference truncating sampler p50 = %v, want warm-up mode %v — the regression fixture no longer models the old bug", got, early)
	}
	if share := sampleShare(o.samples, late); share != 0 {
		t.Fatalf("reference truncating sampler retained %.3f late-mode share, want 0", share)
	}
}

func sampleShare(samples []time.Duration, mode time.Duration) float64 {
	if len(samples) == 0 {
		return 0
	}
	n := 0
	for _, s := range samples {
		if s == mode {
			n++
		}
	}
	return float64(n) / float64(len(samples))
}

// TestHistogramSeedDeterminism: same seed and observation sequence ⇒
// byte-identical reservoirs; the default (unseeded) state is itself fixed.
func TestHistogramSeedDeterminism(t *testing.T) {
	run := func(seed uint64) []time.Duration {
		var h Histogram
		if seed != 0 {
			h.Seed(seed)
		}
		for i := 0; i < 4*maxSamples; i++ {
			h.Observe(time.Duration(i) * time.Microsecond)
		}
		return h.Samples()
	}
	for _, seed := range []uint64{0, 7, 7} {
		a, b := run(seed), run(seed)
		if len(a) != len(b) {
			t.Fatalf("seed %d: reservoir sizes differ: %d vs %d", seed, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("seed %d: reservoirs diverge at %d: %v vs %v", seed, i, a[i], b[i])
			}
		}
	}
}

func TestHistogramP999(t *testing.T) {
	var h Histogram
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.P999 < s.P99 || s.P999 > s.Max {
		t.Errorf("p999 = %v, want within [p99=%v, max=%v]", s.P999, s.P99, s.Max)
	}
	if s.P999 < 998*time.Millisecond {
		t.Errorf("p999 = %v, want ≥ 998ms on a 1..1000ms ramp", s.P999)
	}
}

// TestHistogramSamplesMerge documents the cross-histogram merge idiom the
// vpflood harness uses for fleet-wide percentiles.
func TestHistogramSamplesMerge(t *testing.T) {
	var a, b, merged Histogram
	for i := 0; i < 100; i++ {
		a.Observe(1 * time.Millisecond)
		b.Observe(9 * time.Millisecond)
	}
	for _, src := range []*Histogram{&a, &b} {
		for _, s := range src.Samples() {
			merged.Observe(s)
		}
	}
	if got := merged.Count(); got != 200 {
		t.Fatalf("merged count = %d, want 200", got)
	}
	if p50 := merged.Quantile(0.5); p50 < 1*time.Millisecond || p50 > 9*time.Millisecond {
		t.Errorf("merged p50 = %v, want between the two modes", p50)
	}
}
