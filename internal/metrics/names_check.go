package metrics

import "strings"

// KnownMetricName reports whether name matches one of the generated
// MeterNamePatterns (names.go), where each '*' stands for one or more
// characters. vpbench validates every -out JSON metric key through this
// before writing, so benchmark output can never carry a name the rest of
// the system (tests, the monitor, EXPERIMENTS.md tooling) does not know.
func KnownMetricName(name string) bool {
	for _, p := range MeterNamePatterns {
		if MatchMetricPattern(p, name) {
			return true
		}
	}
	return false
}

// MatchMetricPattern reports whether name matches pattern; '*' matches
// one or more characters. The same semantics drive the static metername
// check in internal/golint.
func MatchMetricPattern(pattern, name string) bool {
	parts := strings.Split(pattern, "*")
	if len(parts) == 1 {
		return pattern == name
	}
	if !strings.HasPrefix(name, parts[0]) {
		return false
	}
	rest := name[len(parts[0]):]
	for i := 1; i < len(parts); i++ {
		p := parts[i]
		if i == len(parts)-1 {
			if p == "" {
				return len(rest) >= 1
			}
			return strings.HasSuffix(rest, p) && len(rest) >= len(p)+1
		}
		if len(rest) < 1 {
			return false
		}
		idx := strings.Index(rest[1:], p)
		if idx < 0 {
			return false
		}
		rest = rest[1+idx+len(p):]
	}
	return true
}
