package metrics

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Registry is a named collection of histograms and meters, used to gather
// per-stage latencies and per-pipeline frame rates for an experiment run.
// The zero value is ready to use.
type Registry struct {
	mu     sync.Mutex
	hists  map[string]*Histogram
	meters map[string]*Meter
	gauges map[string]*Gauge
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Histogram returns the histogram registered under name, creating it on
// first use.
func (r *Registry) Histogram(name string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.hists == nil {
		r.hists = make(map[string]*Histogram)
	}
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Meter returns the meter registered under name, creating it on first use.
func (r *Registry) Meter(name string) *Meter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.meters == nil {
		r.meters = make(map[string]*Meter)
	}
	m, ok := r.meters[name]
	if !ok {
		m = &Meter{}
		r.meters[name] = m
	}
	return m
}

// Gauge returns the gauge registered under name, creating it on first
// use. Gauge names are held to the same generated registry as meters and
// histograms (the metername analyzer checks call sites).
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.gauges == nil {
		r.gauges = make(map[string]*Gauge)
	}
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Time records the duration of fn into the named histogram and returns any
// error fn produced.
func (r *Registry) Time(name string, fn func() error) error {
	start := time.Now()
	err := fn()
	//vpvet:allow metername generic plumbing; callers' literal names are checked at their call sites
	r.Histogram(name).Observe(time.Since(start))
	return err
}

// HistogramNames reports the sorted names of all registered histograms.
func (r *Registry) HistogramNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// MeterNames reports the sorted names of all registered meters.
func (r *Registry) MeterNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.meters))
	for n := range r.meters {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// GaugeNames reports the sorted names of all registered gauges.
func (r *Registry) GaugeNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.gauges))
	for n := range r.gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Report renders all registered instruments as an aligned, human-readable
// table, suitable for experiment output.
func (r *Registry) Report() string {
	var b strings.Builder
	for _, n := range r.HistogramNames() {
		//vpvet:allow metername re-reads an instrument already registered under this name
		fmt.Fprintf(&b, "%-32s %s\n", n, r.Histogram(n).Snapshot())
	}
	for _, n := range r.MeterNames() {
		//vpvet:allow metername re-reads an instrument already registered under this name
		m := r.Meter(n)
		fmt.Fprintf(&b, "%-32s rate=%.2f/s count=%d\n", n, m.Rate(), m.Count())
	}
	for _, n := range r.GaugeNames() {
		//vpvet:allow metername re-reads an instrument already registered under this name
		fmt.Fprintf(&b, "%-32s level=%d\n", n, r.Gauge(n).Value())
	}
	return b.String()
}

// Reset clears every registered instrument but keeps the registrations.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, h := range r.hists {
		h.Reset()
	}
	for _, m := range r.meters {
		m.Reset()
	}
	for _, g := range r.gauges {
		g.Reset()
	}
}
