package netsim

import "net"

// Host is a view of the network from one named device. It satisfies the
// transport interface expected by the wire layer (structural typing keeps
// netsim free of upward dependencies): Listen binds a port on this host and
// Dial connects from this host to a "host:port" address.
type Host struct {
	net  *Network
	name string
}

// Host returns the named device's view of the network.
func (n *Network) Host(name string) *Host {
	return &Host{net: n, name: name}
}

// Name reports the device name this view belongs to.
func (h *Host) Name() string { return h.name }

// Listen binds a simulated listener on this host. Port 0 allocates an
// ephemeral port.
func (h *Host) Listen(port int) (net.Listener, error) {
	return h.net.Listen(h.name, port)
}

// Dial connects from this host to the given "host:port" address.
func (h *Host) Dial(address string) (net.Conn, error) {
	return h.net.Dial(h.name, address)
}
