package netsim

import (
	"bytes"
	"io"
	"net"
	"sync"
	"testing"
	"testing/quick"
	"time"
)

// fastNet returns a network with near-zero delays for functional tests.
func fastNet() *Network {
	return NewNetwork(LinkProfile{Latency: 0, Bandwidth: 0})
}

// dialPair returns a connected client/server conn pair on nw.
func dialPair(t *testing.T, nw *Network, from, to string) (client, server net.Conn) {
	t.Helper()
	l, err := nw.Listen(to, 0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	done := make(chan struct{})
	go func() {
		defer close(done)
		c, err := l.Accept()
		if err != nil {
			t.Errorf("Accept: %v", err)
			return
		}
		server = c
	}()
	client, err = nw.Dial(from, l.Addr().String())
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	<-done
	if server == nil {
		t.Fatal("no server conn")
	}
	return client, server
}

func TestDialTransferAndEOF(t *testing.T) {
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")

	msg := []byte("hello from the phone")
	if _, err := client.Write(msg); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 64)
	n, err := server.Read(buf)
	if err != nil {
		t.Fatalf("Read: %v", err)
	}
	if !bytes.Equal(buf[:n], msg) {
		t.Errorf("Read = %q, want %q", buf[:n], msg)
	}

	// Close client: server drains then sees EOF.
	if err := client.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if _, err := server.Read(buf); err != io.EOF {
		t.Errorf("Read after peer close = %v, want io.EOF", err)
	}
}

func TestBidirectional(t *testing.T) {
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	if _, err := server.Write([]byte("pong")); err != nil {
		t.Fatalf("server Write: %v", err)
	}
	buf := make([]byte, 16)
	n, err := client.Read(buf)
	if err != nil || string(buf[:n]) != "pong" {
		t.Fatalf("client Read = %q, %v; want pong", buf[:n], err)
	}
}

func TestDialRefused(t *testing.T) {
	nw := fastNet()
	if _, err := nw.Dial("phone", "desktop:9999"); err == nil {
		t.Error("Dial to unbound port succeeded, want refusal")
	}
}

func TestListenPortInUse(t *testing.T) {
	nw := fastNet()
	l, err := nw.Listen("desktop", 5000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()
	if _, err := nw.Listen("desktop", 5000); err == nil {
		t.Error("second Listen on same port succeeded, want error")
	}
	// Same port on a different host is fine.
	l2, err := nw.Listen("tv", 5000)
	if err != nil {
		t.Errorf("Listen on other host: %v", err)
	} else {
		l2.Close()
	}
}

func TestListenPortReuseAfterClose(t *testing.T) {
	nw := fastNet()
	l, err := nw.Listen("desktop", 5000)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	l.Close()
	l2, err := nw.Listen("desktop", 5000)
	if err != nil {
		t.Errorf("Listen after close: %v", err)
	} else {
		l2.Close()
	}
}

func TestEphemeralPortsDistinct(t *testing.T) {
	nw := fastNet()
	seen := map[string]bool{}
	for i := 0; i < 10; i++ {
		l, err := nw.Listen("desktop", 0)
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		defer l.Close()
		addr := l.Addr().String()
		if seen[addr] {
			t.Errorf("duplicate ephemeral address %s", addr)
		}
		seen[addr] = true
	}
}

func TestLatencyShaping(t *testing.T) {
	nw := NewNetwork(LinkProfile{Latency: 20 * time.Millisecond})
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	start := time.Now()
	if _, err := client.Write([]byte("x")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	elapsed := time.Since(start)
	if elapsed < 20*time.Millisecond {
		t.Errorf("one-way delivery took %v, want >= 20ms", elapsed)
	}
	if elapsed > 200*time.Millisecond {
		t.Errorf("one-way delivery took %v, suspiciously slow", elapsed)
	}
}

func TestBandwidthShaping(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100ms of serialization.
	nw := NewNetwork(LinkProfile{Bandwidth: 10_000_000})
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	payload := make([]byte, 1_000_000)
	start := time.Now()
	go func() {
		client.Write(payload)
	}()
	got := 0
	buf := make([]byte, 64<<10)
	for got < len(payload) {
		n, err := server.Read(buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got += n
	}
	elapsed := time.Since(start)
	if elapsed < 80*time.Millisecond {
		t.Errorf("1MB at 10MB/s arrived in %v, want >= ~100ms", elapsed)
	}
}

func TestIntraHostUsesLoopback(t *testing.T) {
	nw := NewNetwork(LinkProfile{Latency: 50 * time.Millisecond})
	client, server := dialPair(t, nw, "desktop", "desktop")
	defer client.Close()
	defer server.Close()

	start := time.Now()
	client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 20*time.Millisecond {
		t.Errorf("loopback delivery took %v, want fast", elapsed)
	}
}

func TestSetLinkOverridesDefault(t *testing.T) {
	nw := NewNetwork(LinkProfile{Latency: 50 * time.Millisecond})
	nw.SetLink("phone", "desktop", LinkProfile{Latency: 0})
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	start := time.Now()
	client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Millisecond {
		t.Errorf("overridden link delivery took %v, want fast", elapsed)
	}
}

func TestReadDeadline(t *testing.T) {
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	server.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	buf := make([]byte, 1)
	_, err := server.Read(buf)
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Errorf("Read with expired deadline = %v, want net.Error timeout", err)
	}

	// Clearing the deadline allows reads again.
	server.SetReadDeadline(time.Time{})
	client.Write([]byte("y"))
	if _, err := server.Read(buf); err != nil {
		t.Errorf("Read after deadline cleared: %v", err)
	}
}

func TestWriteAfterCloseFails(t *testing.T) {
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")
	defer server.Close()
	client.Close()
	if _, err := client.Write([]byte("x")); err == nil {
		t.Error("Write after Close succeeded, want error")
	}
}

func TestAcceptAfterListenerClose(t *testing.T) {
	nw := fastNet()
	l, err := nw.Listen("desktop", 0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := l.Accept()
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	l.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("Accept returned nil after Close")
		}
	case <-time.After(time.Second):
		t.Error("Accept did not return after Close")
	}
}

func TestNetworkClose(t *testing.T) {
	nw := fastNet()
	l, _ := nw.Listen("desktop", 0)
	addr := l.Addr().String()
	nw.Close()
	if _, err := nw.Dial("phone", addr); err == nil {
		t.Error("Dial on closed network succeeded")
	}
	if _, err := nw.Listen("tv", 0); err == nil {
		t.Error("Listen on closed network succeeded")
	}
}

func TestAddrs(t *testing.T) {
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	if got := client.RemoteAddr().String(); got != server.LocalAddr().String() {
		t.Errorf("client.RemoteAddr=%s, server.LocalAddr=%s; want equal", got, server.LocalAddr())
	}
	if host, _, err := net.SplitHostPort(client.LocalAddr().String()); err != nil || host != "phone" {
		t.Errorf("client.LocalAddr=%s, want phone:*", client.LocalAddr())
	}
}

func TestParseAddress(t *testing.T) {
	a, err := ParseAddress("desktop:5861")
	if err != nil {
		t.Fatalf("ParseAddress: %v", err)
	}
	if a.Host != "desktop" || a.Port != 5861 {
		t.Errorf("ParseAddress = %+v, want desktop:5861", a)
	}
	if _, err := ParseAddress("nonsense"); err == nil {
		t.Error("ParseAddress(nonsense) succeeded")
	}
	if _, err := ParseAddress("host:notaport"); err == nil {
		t.Error("ParseAddress(host:notaport) succeeded")
	}
}

func TestConcurrentConnections(t *testing.T) {
	nw := fastNet()
	l, err := nw.Listen("desktop", 0)
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	defer l.Close()

	// Echo server.
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				io.Copy(c, c)
			}(c)
		}
	}()

	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := nw.Dial("phone", l.Addr().String())
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer c.Close()
			msg := bytes.Repeat([]byte{byte(i)}, 1000)
			if _, err := c.Write(msg); err != nil {
				t.Errorf("Write: %v", err)
				return
			}
			got := make([]byte, len(msg))
			if _, err := io.ReadFull(c, got); err != nil {
				t.Errorf("ReadFull: %v", err)
				return
			}
			if !bytes.Equal(got, msg) {
				t.Errorf("echo mismatch for conn %d", i)
			}
		}(i)
	}
	wg.Wait()
}

func TestDataIntegrityProperty(t *testing.T) {
	// Property: any sequence of writes is received intact and in order,
	// regardless of chunk boundaries, with jitter and loss enabled.
	nw := NewNetwork(LinkProfile{
		Latency: 100 * time.Microsecond,
		Jitter:  100 * time.Microsecond,
		Loss:    0.05,
	})
	client, server := dialPair(t, nw, "phone", "desktop")
	defer server.Close()

	check := func(parts [][]byte) bool {
		var want []byte
		for _, p := range parts {
			want = append(want, p...)
		}
		done := make(chan []byte, 1)
		go func() {
			got := make([]byte, len(want))
			if len(want) > 0 {
				if _, err := io.ReadFull(server, got); err != nil {
					done <- nil
					return
				}
			}
			done <- got
		}()
		for _, p := range parts {
			if len(p) == 0 {
				continue
			}
			if _, err := client.Write(p); err != nil {
				return false
			}
		}
		got := <-done
		return got != nil && bytes.Equal(got, want)
	}
	cfg := &quick.Config{MaxCount: 20}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
	client.Close()
}

func TestProfileTxDelay(t *testing.T) {
	p := LinkProfile{Bandwidth: 1000}
	if got, want := p.txDelay(1000), time.Second; got != want {
		t.Errorf("txDelay(1000) = %v, want %v", got, want)
	}
	if got := (LinkProfile{}).txDelay(1000); got != 0 {
		t.Errorf("unlimited txDelay = %v, want 0", got)
	}
	if got := p.txDelay(0); got != 0 {
		t.Errorf("txDelay(0) = %v, want 0", got)
	}
}

func TestProfileRTT(t *testing.T) {
	p := LinkProfile{Latency: 5 * time.Millisecond}
	if got, want := p.RTT(), 10*time.Millisecond; got != want {
		t.Errorf("RTT() = %v, want %v", got, want)
	}
}

func TestLargeTransferBackpressure(t *testing.T) {
	// Transfer larger than maxBuffered must still complete (writer blocks
	// until the reader drains).
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	total := maxBuffered + 1<<20
	go func() {
		payload := make([]byte, 256<<10)
		sent := 0
		for sent < total {
			n := len(payload)
			if total-sent < n {
				n = total - sent
			}
			if _, err := client.Write(payload[:n]); err != nil {
				return
			}
			sent += n
		}
	}()

	got := 0
	buf := make([]byte, 256<<10)
	deadline := time.Now().Add(10 * time.Second)
	for got < total {
		if time.Now().After(deadline) {
			t.Fatalf("transfer stalled at %d/%d bytes", got, total)
		}
		n, err := server.Read(buf)
		if err != nil {
			t.Fatalf("Read: %v", err)
		}
		got += n
	}
}

func TestLossAddsRetransmitDelay(t *testing.T) {
	// With Loss=1 every chunk pays one extra RTT; data still arrives
	// intact (TCP semantics: loss is delay, not corruption).
	nw := NewNetwork(LinkProfile{Latency: 5 * time.Millisecond, Loss: 1.0})
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	start := time.Now()
	client.Write([]byte("x"))
	buf := make([]byte, 1)
	if _, err := server.Read(buf); err != nil {
		t.Fatalf("Read: %v", err)
	}
	// Expected: latency (5ms) + penalty RTT (10ms) = 15ms minimum.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Errorf("lossy delivery took %v, want >= 15ms", elapsed)
	}
	if buf[0] != 'x' {
		t.Error("data corrupted by loss model")
	}
}

func TestWriteDeadline(t *testing.T) {
	// Fill the pipe buffer with an unread bulk write, then a deadline-bound
	// write must time out rather than block forever.
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	go client.Write(make([]byte, maxBuffered)) // fills the buffer
	time.Sleep(20 * time.Millisecond)
	client.SetWriteDeadline(time.Now().Add(30 * time.Millisecond))
	_, err := client.Write(make([]byte, 1024))
	nerr, ok := err.(net.Error)
	if !ok || !nerr.Timeout() {
		t.Errorf("Write past full buffer = %v, want timeout", err)
	}
}

func TestJitterVariesDelivery(t *testing.T) {
	// With large jitter, chunk delays vary; measure spread over several
	// one-byte messages.
	nw := NewNetwork(LinkProfile{Latency: time.Millisecond, Jitter: 20 * time.Millisecond})
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	var minD, maxD time.Duration
	buf := make([]byte, 1)
	for i := 0; i < 10; i++ {
		start := time.Now()
		client.Write([]byte{byte(i)})
		if _, err := server.Read(buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
		d := time.Since(start)
		if i == 0 || d < minD {
			minD = d
		}
		if d > maxD {
			maxD = d
		}
	}
	if maxD-minD < 2*time.Millisecond {
		t.Errorf("jitter spread = %v, want visible variation", maxD-minD)
	}
}

func TestPartitionSeversAndHealRestores(t *testing.T) {
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")
	defer server.Close()

	if nw.Partitioned("phone", "desktop") {
		t.Fatal("partitioned before Partition")
	}
	nw.Partition("phone", "desktop")
	if !nw.Partitioned("desktop", "phone") {
		t.Error("Partitioned not symmetric")
	}

	// Established connection is severed: reads fail or EOF promptly.
	buf := make([]byte, 1)
	server.SetReadDeadline(time.Now().Add(500 * time.Millisecond))
	if _, err := server.Read(buf); err == nil {
		t.Error("read succeeded across severed connection")
	}
	// Writes on the severed client fail.
	if _, err := client.Write([]byte("x")); err == nil {
		t.Error("write succeeded across severed connection")
	}
	// New dials refused.
	l, err := nw.Listen("desktop", 0)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := nw.Dial("phone", l.Addr().String()); err == nil {
		t.Error("dial succeeded across partition")
	}
	// Other pairs unaffected.
	c2, s2 := dialPair(t, nw, "tv", "desktop")
	c2.Close()
	s2.Close()

	nw.Heal("phone", "desktop")
	c3, err := nw.Dial("phone", l.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	c3.Close()
}

func TestConnTrackingPrunes(t *testing.T) {
	nw := fastNet()
	l, _ := nw.Listen("desktop", 0)
	defer l.Close()
	go func() {
		for {
			c, err := l.Accept()
			if err != nil {
				return
			}
			c.Close()
		}
	}()
	for i := 0; i < 50; i++ {
		c, err := nw.Dial("phone", l.Addr().String())
		if err != nil {
			t.Fatalf("Dial %d: %v", i, err)
		}
		c.Close()
	}
	// The server side closes asynchronously; give it a moment, then one
	// final dial triggers the prune pass.
	time.Sleep(50 * time.Millisecond)
	if c, err := nw.Dial("phone", l.Addr().String()); err == nil {
		defer c.Close()
	}
	nw.mu.Lock()
	n := len(nw.conns[makePair("phone", "desktop")])
	nw.mu.Unlock()
	if n > 10 {
		t.Errorf("tracking %d conns after 50 closed dials; pruning broken", n)
	}
}

func TestShapeAffectsEstablishedConnections(t *testing.T) {
	nw := fastNet()
	client, server := dialPair(t, nw, "phone", "desktop")
	defer client.Close()
	defer server.Close()

	roundTrip := func() time.Duration {
		start := time.Now()
		if _, err := client.Write([]byte("x")); err != nil {
			t.Fatalf("Write: %v", err)
		}
		buf := make([]byte, 1)
		if _, err := server.Read(buf); err != nil {
			t.Fatalf("Read: %v", err)
		}
		return time.Since(start)
	}

	if d := roundTrip(); d > 50*time.Millisecond {
		t.Fatalf("unshaped delivery took %v", d)
	}

	// A latency spike applied mid-connection must slow the existing pipe.
	nw.Shape("phone", "desktop", LinkProfile{Latency: 30 * time.Millisecond})
	if !nw.Shaped("phone", "desktop") {
		t.Fatal("Shaped not reported after Shape")
	}
	if d := roundTrip(); d < 30*time.Millisecond {
		t.Errorf("shaped delivery took %v, want >= 30ms", d)
	}

	// Clearing the shape restores the configured (fast) profile.
	nw.ClearShape("phone", "desktop")
	if nw.Shaped("phone", "desktop") {
		t.Fatal("Shaped still reported after ClearShape")
	}
	if d := roundTrip(); d > 50*time.Millisecond {
		t.Errorf("delivery after ClearShape took %v", d)
	}
}
