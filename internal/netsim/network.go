package netsim

import (
	"fmt"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Addr is the net.Addr implementation for simulated endpoints.
type Addr struct {
	// Host is the simulated device name, e.g. "desktop".
	Host string
	// Port is the simulated port number.
	Port int
}

// Network implements net.Addr.
func (a Addr) Network() string { return "sim" }

// String renders the address as host:port.
func (a Addr) String() string { return net.JoinHostPort(a.Host, strconv.Itoa(a.Port)) }

// hostPair is an unordered pair of host names used as a link key.
type hostPair struct{ a, b string }

func makePair(a, b string) hostPair {
	if a > b {
		a, b = b, a
	}
	return hostPair{a, b}
}

// Network is a simulated network fabric connecting named hosts. Links
// between host pairs carry configurable profiles; unconfigured pairs use the
// default profile, and intra-host traffic uses the Loopback profile unless
// overridden.
type Network struct {
	mu           sync.Mutex
	defaultLink  LinkProfile
	links        map[hostPair]LinkProfile
	shapes       map[hostPair]LinkProfile // transient overrides (chaos)
	listeners    map[string]*listener     // key host:port
	nextPort     map[string]int
	nextPipeSeed int64
	partitioned  map[hostPair]bool
	conns        map[hostPair][]*conn
	closed       bool
}

// NewNetwork creates a network whose unconfigured host pairs use def.
func NewNetwork(def LinkProfile) *Network {
	return &Network{
		defaultLink:  def,
		links:        make(map[hostPair]LinkProfile),
		shapes:       make(map[hostPair]LinkProfile),
		listeners:    make(map[string]*listener),
		nextPort:     make(map[string]int),
		nextPipeSeed: 1,
		partitioned:  make(map[hostPair]bool),
		conns:        make(map[hostPair][]*conn),
	}
}

// SetLink configures the profile used between hosts a and b, in both
// directions. Setting a == b overrides the intra-host profile for that host.
func (n *Network) SetLink(a, b string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.links[makePair(a, b)] = p
}

// Shape installs a transient profile override between two hosts — the
// failure-injection knob for latency spikes and loss bursts. Unlike
// SetLink it takes effect on established connections immediately (every
// pipe resolves its profile per write) and is reversed by ClearShape.
func (n *Network) Shape(a, b string, p LinkProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.shapes[makePair(a, b)] = p
}

// ClearShape removes a Shape override, restoring the configured profile.
func (n *Network) ClearShape(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.shapes, makePair(a, b))
}

// Shaped reports whether a transient shaping override is active between
// two hosts.
func (n *Network) Shaped(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	_, ok := n.shapes[makePair(a, b)]
	return ok
}

// linkProfile reports the profile between two hosts.
func (n *Network) linkProfile(a, b string) LinkProfile {
	n.mu.Lock()
	defer n.mu.Unlock()
	if p, ok := n.shapes[makePair(a, b)]; ok {
		return p
	}
	if p, ok := n.links[makePair(a, b)]; ok {
		return p
	}
	if a == b {
		return Loopback
	}
	return n.defaultLink
}

// Listen opens a simulated listener on host at port. Port 0 allocates an
// unused ephemeral port. The listener's Addr reports the bound address.
func (n *Network) Listen(host string, port int) (net.Listener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return nil, fmt.Errorf("netsim: listen on closed network")
	}
	if host == "" {
		return nil, fmt.Errorf("netsim: listen: empty host")
	}
	if port == 0 {
		port = n.allocPortLocked(host)
	}
	key := Addr{Host: host, Port: port}.String()
	if _, exists := n.listeners[key]; exists {
		return nil, fmt.Errorf("netsim: listen %s: address already in use", key)
	}
	l := &listener{
		net:    n,
		addr:   Addr{Host: host, Port: port},
		accept: make(chan net.Conn, 16),
		done:   make(chan struct{}),
	}
	n.listeners[key] = l
	return l, nil
}

func (n *Network) allocPortLocked(host string) int {
	p := n.nextPort[host]
	if p < 40000 {
		p = 40000
	}
	for {
		p++
		if _, used := n.listeners[Addr{Host: host, Port: p}.String()]; !used {
			n.nextPort[host] = p
			return p
		}
	}
}

// Dial connects from the named host to address "host:port", simulating a
// connection-establishment handshake of one RTT on the link.
func (n *Network) Dial(fromHost, address string) (net.Conn, error) {
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: %w", address, err)
	}
	port, err := strconv.Atoi(portStr)
	if err != nil {
		return nil, fmt.Errorf("netsim: dial %s: bad port: %w", address, err)
	}

	n.mu.Lock()
	if n.closed {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: dial on closed network")
	}
	if n.partitioned[makePair(fromHost, host)] {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: dial %s: network partition between %s and %s", address, fromHost, host)
	}
	l, ok := n.listeners[Addr{Host: host, Port: port}.String()]
	if !ok {
		n.mu.Unlock()
		return nil, fmt.Errorf("netsim: dial %s: connection refused", address)
	}
	seed := n.nextPipeSeed
	n.nextPipeSeed += 2
	localPort := n.allocPortLocked(fromHost)
	n.mu.Unlock()

	// Pipes resolve the profile per write so shaping changes mid-connection
	// (Shape/ClearShape) apply to traffic already in flight.
	profile := func() LinkProfile { return n.linkProfile(fromHost, host) }
	// Handshake: one round trip before the connection is usable.
	if rtt := profile().RTT(); rtt > 0 {
		time.Sleep(rtt)
	}

	clientAddr := Addr{Host: fromHost, Port: localPort}
	serverAddr := Addr{Host: host, Port: port}
	c2s := newShapedPipe(profile, seed)
	s2c := newShapedPipe(profile, seed+1)
	clientConn := &conn{local: clientAddr, remote: serverAddr, rd: s2c, wr: c2s}
	serverConn := &conn{local: serverAddr, remote: clientAddr, rd: c2s, wr: s2c}

	n.mu.Lock()
	pair := makePair(fromHost, host)
	// Prune dead connections so long-lived networks with reconnecting
	// peers don't accumulate tracking entries.
	live := n.conns[pair][:0]
	for _, c := range n.conns[pair] {
		if !c.isClosed() {
			live = append(live, c)
		}
	}
	n.conns[pair] = append(live, clientConn, serverConn)
	n.mu.Unlock()

	select {
	case l.accept <- serverConn:
		return clientConn, nil
	case <-l.done:
		return nil, fmt.Errorf("netsim: dial %s: connection refused", address)
	}
}

// Partition cuts the link between hosts a and b — a failure-injection
// knob: every established connection between them is severed and new
// dials are refused until Heal. Modelled on a device leaving Wi-Fi range.
func (n *Network) Partition(a, b string) {
	pair := makePair(a, b)
	n.mu.Lock()
	n.partitioned[pair] = true
	broken := n.conns[pair]
	n.conns[pair] = nil
	n.mu.Unlock()
	for _, c := range broken {
		c.Close()
	}
}

// Heal removes a partition; new connections between the hosts succeed
// again (severed connections stay dead — endpoints must redial).
func (n *Network) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.partitioned, makePair(a, b))
}

// Partitioned reports whether the link between a and b is cut.
func (n *Network) Partitioned(a, b string) bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.partitioned[makePair(a, b)]
}

// Close shuts down the network: all listeners stop accepting. Established
// connections are unaffected.
func (n *Network) Close() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.closed {
		return
	}
	n.closed = true
	for key, l := range n.listeners {
		l.closeLocked()
		delete(n.listeners, key)
	}
}

func (n *Network) removeListener(a Addr) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.listeners, a.String())
}

// listener implements net.Listener over the simulated network.
type listener struct {
	net    *Network
	addr   Addr
	accept chan net.Conn

	mu     sync.Mutex
	closed bool
	done   chan struct{}
}

var _ net.Listener = (*listener)(nil)

// Accept waits for the next inbound connection.
func (l *listener) Accept() (net.Conn, error) {
	select {
	case c := <-l.accept:
		return c, nil
	case <-l.done:
		return nil, fmt.Errorf("netsim: accept %s: listener closed", l.addr)
	}
}

// Close stops the listener.
func (l *listener) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	close(l.done)
	l.net.removeListener(l.addr)
	return nil
}

func (l *listener) closeLocked() {
	l.mu.Lock()
	defer l.mu.Unlock()
	if !l.closed {
		l.closed = true
		close(l.done)
	}
}

// Addr reports the listener's bound address.
func (l *listener) Addr() net.Addr { return l.addr }

// conn is one endpoint of a simulated connection.
type conn struct {
	local  Addr
	remote Addr
	rd     *shapedPipe // inbound direction
	wr     *shapedPipe // outbound direction

	mu     sync.Mutex
	closed bool
}

var _ net.Conn = (*conn)(nil)

func (c *conn) Read(b []byte) (int, error)  { return c.rd.read(b) }
func (c *conn) Write(b []byte) (int, error) { return c.wr.write(b) }

// Close shuts down both directions: the peer's reads drain then return EOF,
// and local reads fail.
func (c *conn) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return nil
	}
	c.closed = true
	c.wr.closeWrite()
	c.rd.closeRead()
	return nil
}

func (c *conn) isClosed() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.closed
}

func (c *conn) LocalAddr() net.Addr  { return c.local }
func (c *conn) RemoteAddr() net.Addr { return c.remote }

func (c *conn) SetDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	c.wr.setWriteDeadline(t)
	return nil
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.rd.setReadDeadline(t)
	return nil
}

func (c *conn) SetWriteDeadline(t time.Time) error {
	c.wr.setWriteDeadline(t)
	return nil
}

// ParseAddress splits a "host:port" simulated address string.
func ParseAddress(address string) (Addr, error) {
	host, portStr, err := net.SplitHostPort(address)
	if err != nil {
		return Addr{}, fmt.Errorf("netsim: parse %q: %w", address, err)
	}
	port, err := strconv.Atoi(strings.TrimSpace(portStr))
	if err != nil {
		return Addr{}, fmt.Errorf("netsim: parse %q: bad port: %w", address, err)
	}
	return Addr{Host: host, Port: port}, nil
}

// Profile reports the link profile in effect between two hosts — the cost
// model input for latency-aware placement.
func (n *Network) Profile(a, b string) LinkProfile { return n.linkProfile(a, b) }
