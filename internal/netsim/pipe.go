package netsim

import (
	"io"
	"math/rand"
	"sync"
	"time"
)

// errTimeout is returned from Read/Write when a deadline expires. It
// satisfies net.Error.
type errTimeout struct{}

func (errTimeout) Error() string   { return "netsim: i/o timeout" }
func (errTimeout) Timeout() bool   { return true }
func (errTimeout) Temporary() bool { return true }

// errClosed is returned when operating on a closed connection.
type errClosed struct{}

func (errClosed) Error() string { return "netsim: use of closed connection" }

// chunk is a contiguous run of written bytes with a delivery time.
type chunk struct {
	data    []byte
	readyAt time.Time
}

// shapedPipe is a unidirectional, shaped byte stream. Writers append chunks
// whose delivery times reflect the link profile; readers block until the
// head chunk's delivery time has passed. The profile is resolved per write
// through a getter so mid-connection shaping changes (chaos latency spikes,
// loss bursts) affect established connections, not just new dials.
type shapedPipe struct {
	profile func() LinkProfile

	mu       sync.Mutex
	rng      *rand.Rand
	chunks   []chunk
	buffered int // total undelivered bytes, for write backpressure
	nextFree time.Time
	closed   bool // write side closed: readers drain then EOF
	broken   bool // reader side closed: writers fail immediately
	notify   chan struct{}

	readDeadline  time.Time
	writeDeadline time.Time
}

// maxBuffered bounds the bytes in flight in one pipe direction before
// writers block, modelling a bounded socket buffer.
const maxBuffered = 4 << 20

func newShapedPipe(profile func() LinkProfile, seed int64) *shapedPipe {
	return &shapedPipe{
		profile: profile,
		rng:     rand.New(rand.NewSource(seed)),
		notify:  make(chan struct{}),
	}
}

// broadcast wakes all waiters; callers must hold mu.
func (p *shapedPipe) broadcast() {
	close(p.notify)
	p.notify = make(chan struct{})
}

// write appends b (copied) as a shaped chunk. It blocks while the pipe
// buffer is full.
func (p *shapedPipe) write(b []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.closed || p.broken {
			return 0, errClosed{}
		}
		if !p.writeDeadline.IsZero() && !time.Now().Before(p.writeDeadline) {
			return 0, errTimeout{}
		}
		if p.buffered < maxBuffered {
			break
		}
		p.wait(p.writeDeadline)
	}

	prof := p.profile()
	now := time.Now()
	start := now
	if p.nextFree.After(start) {
		start = p.nextFree
	}
	txEnd := start.Add(prof.txDelay(len(b)))
	p.nextFree = txEnd
	readyAt := txEnd.Add(prof.chunkDelay(p.rng))

	data := make([]byte, len(b))
	copy(data, b)
	p.chunks = append(p.chunks, chunk{data: data, readyAt: readyAt})
	p.buffered += len(data)
	p.broadcast()
	return len(b), nil
}

// read copies delivered bytes into out, blocking until at least one byte is
// deliverable, the write side is closed and drained (io.EOF), or the read
// deadline expires.
func (p *shapedPipe) read(out []byte) (int, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.broken {
			return 0, errClosed{}
		}
		if !p.readDeadline.IsZero() && !time.Now().Before(p.readDeadline) {
			return 0, errTimeout{}
		}
		if len(p.chunks) > 0 {
			head := &p.chunks[0]
			now := time.Now()
			if !now.Before(head.readyAt) {
				n := copy(out, head.data)
				head.data = head.data[n:]
				p.buffered -= n
				if len(head.data) == 0 {
					p.chunks = p.chunks[1:]
				}
				p.broadcast() // free buffer space for writers
				return n, nil
			}
			// Head not deliverable yet: wait until it is (or deadline).
			target := head.readyAt
			if !p.readDeadline.IsZero() && p.readDeadline.Before(target) {
				target = p.readDeadline
			}
			p.wait(target)
			continue
		}
		if p.closed {
			return 0, io.EOF
		}
		p.wait(p.readDeadline)
	}
}

// wait blocks until the pipe state changes or until t (if nonzero), with mu
// held on entry and exit.
func (p *shapedPipe) wait(t time.Time) {
	ch := p.notify
	p.mu.Unlock()
	defer p.mu.Lock()
	if t.IsZero() {
		<-ch
		return
	}
	d := time.Until(t)
	if d <= 0 {
		return
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-ch:
	case <-timer.C:
	}
}

// closeWrite marks the write side closed; readers drain remaining chunks and
// then observe io.EOF.
func (p *shapedPipe) closeWrite() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return
	}
	p.closed = true
	p.broadcast()
}

// closeRead tears the pipe down from the reader side: pending and future
// operations on either side fail.
func (p *shapedPipe) closeRead() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.broken {
		return
	}
	p.broken = true
	p.chunks = nil
	p.buffered = 0
	p.broadcast()
}

func (p *shapedPipe) setReadDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.readDeadline = t
	p.broadcast()
}

func (p *shapedPipe) setWriteDeadline(t time.Time) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.writeDeadline = t
	p.broadcast()
}
