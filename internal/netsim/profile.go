// Package netsim simulates the home network connecting edge devices.
//
// It provides in-memory implementations of net.Conn and net.Listener whose
// transfers are shaped by per-link profiles: one-way propagation latency,
// jitter, serialization bandwidth and a loss-induced retransmit penalty.
// The paper's testbed connects a phone, a desktop and a TV over Wi-Fi; the
// presets here model that fabric so frame-rate and latency experiments are
// reproducible on a single machine.
//
// The simulator preserves TCP-like semantics: bytes are never reordered or
// dropped within a connection (loss manifests as added delay, as TCP
// retransmission would), writes are subject to bandwidth serialization, and
// closing the write side yields io.EOF at the reader after the in-flight
// bytes drain.
package netsim

import (
	"math/rand"
	"time"
)

// LinkProfile describes the characteristics of one network link direction.
type LinkProfile struct {
	// Latency is the one-way propagation delay added to every chunk.
	Latency time.Duration
	// Jitter is the maximum random additional delay; each chunk gets a
	// uniform random delay in [0, Jitter).
	Jitter time.Duration
	// Bandwidth is the serialization rate in bytes per second. Zero means
	// unlimited (no serialization delay).
	Bandwidth int64
	// Loss is the probability, per written chunk, of incurring a
	// retransmission penalty (one extra RTT of delay). It models TCP-level
	// recovery rather than actual byte loss.
	Loss float64
}

// RTT reports the nominal round-trip time of the link, excluding jitter,
// bandwidth and loss effects.
func (p LinkProfile) RTT() time.Duration { return 2 * p.Latency }

// txDelay reports the serialization time for n bytes at the profile's
// bandwidth.
func (p LinkProfile) txDelay(n int) time.Duration {
	if p.Bandwidth <= 0 || n <= 0 {
		return 0
	}
	return time.Duration(float64(n) / float64(p.Bandwidth) * float64(time.Second))
}

// chunkDelay computes the post-serialization delivery delay for one chunk:
// propagation latency, plus uniform jitter, plus a possible loss penalty.
func (p LinkProfile) chunkDelay(rng *rand.Rand) time.Duration {
	d := p.Latency
	if p.Jitter > 0 {
		d += time.Duration(rng.Int63n(int64(p.Jitter)))
	}
	if p.Loss > 0 && rng.Float64() < p.Loss {
		d += p.RTT()
	}
	return d
}

// Common link presets used by the experiments.
var (
	// Loopback models intra-device communication: effectively free.
	Loopback = LinkProfile{Latency: 20 * time.Microsecond, Bandwidth: 0}

	// WiFi models a home 802.11ac network, as in the paper's testbed:
	// ~3 ms one-way delay (6 ms RTT, typical for contended home Wi-Fi),
	// ~200 Mbit/s goodput and a small retransmit probability.
	WiFi = LinkProfile{
		Latency:   3 * time.Millisecond,
		Jitter:    time.Millisecond,
		Bandwidth: 25_000_000, // 200 Mbit/s in bytes/s
		Loss:      0.002,
	}

	// Ethernet models a wired segment between desktop-class devices.
	Ethernet = LinkProfile{
		Latency:   200 * time.Microsecond,
		Jitter:    50 * time.Microsecond,
		Bandwidth: 125_000_000, // 1 Gbit/s in bytes/s
	}

	// WAN models an uplink to a nearby cloud region, used by ablations that
	// contrast edge and cloud placement.
	WAN = LinkProfile{
		Latency:   15 * time.Millisecond,
		Jitter:    3 * time.Millisecond,
		Bandwidth: 6_250_000, // 50 Mbit/s in bytes/s
		Loss:      0.005,
	}
)
