package script

import (
	"fmt"
	"sort"
)

// pipevet: a static analyzer for PipeScript module sources. Analyze walks
// the AST produced by parse and reports positioned diagnostics for the
// mistakes that would otherwise surface as RuntimeErrors mid-stream:
// undefined identifiers, straight-line use before declaration, duplicate
// declarations, assignments to consts, arity/type mismatches against the
// shared host/builtin signature table (signatures.go), plus style-level
// warnings (unused variables, unreachable code, assignment-in-condition).
//
// The checker mirrors the interpreter's actual scoping rules rather than
// JavaScript's: declarations are NOT hoisted and take effect at their
// execution point, var/let/const are all block-scoped, and assignment to an
// undeclared name is an error (no implicit globals). References from inside
// a nested function body to a later top-level declaration are legal — the
// function runs after the whole unit loaded — so use-before-declaration
// only fires when the reference executes in the same straight-line function
// depth as the declaration.

// Severity ranks diagnostics. Errors reject a pipeline at deploy time;
// warnings are advisory and only logged.
type Severity int

const (
	SeverityWarning Severity = iota
	SeverityError
)

func (s Severity) String() string {
	if s == SeverityError {
		return "error"
	}
	return "warning"
}

// Diagnostic codes reported by Analyze. internal/core adds the PV1xx range
// for config cross-checks.
const (
	CodeSyntax          = "PV000" // source does not parse
	CodeUndefined       = "PV001" // reference to an undefined identifier
	CodeUseBeforeDecl   = "PV002" // straight-line use before declaration
	CodeUnused          = "PV003" // variable or parameter never read
	CodeUnreachable     = "PV004" // statement after return/throw/break/continue
	CodeCondAssign      = "PV005" // assignment used as a condition
	CodeDuplicate       = "PV006" // duplicate declaration in one scope
	CodeBadCall         = "PV007" // arity/type mismatch against a known signature
	CodeNoHandler       = "PV008" // reachable module defines no event_received
	CodeBadCallback     = "PV009" // lifecycle callback declared with wrong arity
	CodeConstAssign     = "PV010" // assignment to a const
	CodeFrameHeld       = "PV011" // frame held across call_service, neither forwarded nor dropped
	CodeUnboundedLoop   = "PV012" // loop with no statically inferable iteration bound
	CodeUnboundableCost = "PV013" // handler cost unboundable (recursion or dynamic call)
	CodeShapeUnknown    = "PV018" // emitted payload shape unknowable (dynamic construction)
)

// Diagnostic is one positioned finding.
type Diagnostic struct {
	Pos      Position
	Code     string
	Severity Severity
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s %s: %s", d.Pos, d.Severity, d.Code, d.Message)
}

// Options configures an Analyze pass.
type Options struct {
	// Globals names extra identifiers to treat as defined (beyond the
	// signature table), e.g. host bindings added by a test harness.
	Globals []string
	// Signatures overrides the call-site signature table; nil means
	// CallSignatures() — the merged stdlib + Table-1 host API.
	Signatures map[string]Signature
	// RequireEventReceived makes a missing event_received definition an
	// error (PV008). core sets it for modules reachable from the source.
	RequireEventReceived bool
}

// TargetRef records a literal call_service / call_module target and where
// it appears, for config cross-checking.
type TargetRef struct {
	Name string
	Pos  Position
}

// Facts summarizes what the analyzer learned about a module beyond
// diagnostics; internal/core cross-checks them against the ModuleConfig.
type Facts struct {
	// ServiceTargets / ModuleTargets list literal first arguments of
	// call_service / call_module call sites.
	ServiceTargets []TargetRef
	ModuleTargets  []TargetRef
	// DynamicServiceTargets / DynamicModuleTargets count call sites whose
	// target is computed at runtime; when non-zero, "declared but never
	// referenced" warnings are suppressed.
	DynamicServiceTargets int
	DynamicModuleTargets  int
	// HasEventReceived / HasInit report whether the module defines the
	// lifecycle callbacks at the top level.
	HasEventReceived bool
	HasInit          bool
}

// Report is the result of one Analyze pass.
type Report struct {
	Diagnostics []Diagnostic
	Facts       Facts
	// Cost is the pipecost result: per-handler worst-case instruction and
	// allocation bounds (cost.go). Empty when the source does not parse.
	Cost CostReport
	// Shapes is the pipetype result: produced payload shapes per
	// call_module target and the consumed shape of event_received
	// (shapes.go). Empty when the source does not parse.
	Shapes ShapeReport
}

// HasErrors reports whether any diagnostic is error severity.
func (r Report) HasErrors() bool {
	for _, d := range r.Diagnostics {
		if d.Severity == SeverityError {
			return true
		}
	}
	return false
}

// Errors returns only the error-severity diagnostics.
func (r Report) Errors() []Diagnostic {
	var out []Diagnostic
	for _, d := range r.Diagnostics {
		if d.Severity == SeverityError {
			out = append(out, d)
		}
	}
	return out
}

// Analyze parses src and runs the pipevet checks over it. A syntax error
// yields a single PV000 diagnostic. Diagnostics come back sorted by
// position.
func Analyze(src string, opts Options) Report {
	prog, err := parse(src)
	if err != nil {
		var rep Report
		if se, ok := err.(*SyntaxError); ok {
			rep.Diagnostics = []Diagnostic{{Pos: se.Pos, Code: CodeSyntax, Severity: SeverityError, Message: se.Msg}}
		} else {
			rep.Diagnostics = []Diagnostic{{Code: CodeSyntax, Severity: SeverityError, Message: err.Error()}}
		}
		return rep
	}

	a := &analyzer{opts: opts, sigs: opts.Signatures}
	if a.sigs == nil {
		a.sigs = CallSignatures()
	}
	a.run(prog)

	// pipecost: worst-case instruction/allocation bounds per handler, with
	// PV012/PV013 diagnostics for what cannot be bounded (cost.go).
	cost, costDiags := costPass(prog, a.sigs, opts.Globals)
	a.diags = append(a.diags, costDiags...)

	// pipetype: produced/consumed event shapes per module, with PV018 for
	// payloads that degrade to top (shapes.go).
	shapes, shapeDiags := shapePass(prog, a.sigs, opts.Globals)
	a.diags = append(a.diags, shapeDiags...)

	sort.SliceStable(a.diags, func(i, j int) bool {
		pi, pj := a.diags[i].Pos, a.diags[j].Pos
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Col < pj.Col
	})
	return Report{Diagnostics: a.diags, Facts: a.facts, Cost: cost, Shapes: shapes}
}

// ---- scope model ----

type declKind int

const (
	declBuiltin declKind = iota
	declVar
	declConst
	declFunc
	declParam
	declCatch
)

type declInfo struct {
	name string
	pos  Position
	kind declKind
	// reached flips true once straight-line execution passes the
	// declaration; references before that at the same function depth are
	// PV002.
	reached bool
	reads   int
	sig     *Signature // non-nil for signature-table builtins
}

type aScope struct {
	parent *aScope
	// funcDepth is how many function bodies enclose this scope; the global
	// scope is 0.
	funcDepth int
	decls     map[string]*declInfo
	// order keeps user declarations in source order for deterministic
	// unused-variable reporting.
	order []*declInfo
}

func newAScope(parent *aScope, funcDepth int) *aScope {
	return &aScope{parent: parent, funcDepth: funcDepth, decls: make(map[string]*declInfo)}
}

type analyzer struct {
	opts  Options
	sigs  map[string]Signature
	diags []Diagnostic
	facts Facts
}

func (a *analyzer) diag(pos Position, code string, sev Severity, msg string) {
	a.diags = append(a.diags, Diagnostic{Pos: pos, Code: code, Severity: sev, Message: msg})
}

func (a *analyzer) run(prog *program) {
	global := newAScope(nil, 0)
	for name := range a.sigs {
		s := a.sigs[name]
		if s.Callback {
			continue // init/event_received are defined by the module, not for it
		}
		global.decls[name] = &declInfo{name: name, kind: declBuiltin, reached: true, sig: &s}
	}
	for _, name := range a.opts.Globals {
		if _, ok := global.decls[name]; !ok {
			global.decls[name] = &declInfo{name: name, kind: declBuiltin, reached: true}
		}
	}

	a.collect(prog.stmts, global)
	a.stmts(prog.stmts, global, 0)
	a.finish(global)

	for _, s := range prog.stmts {
		switch st := s.(type) {
		case *funcDecl:
			a.noteCallback(st.fn.name, len(st.fn.params), st.pos)
		case *declStmt:
			if fn, ok := st.init.(*funcLit); ok {
				a.noteCallback(st.name, len(fn.params), st.pos)
			}
		}
	}
	if a.opts.RequireEventReceived && !a.facts.HasEventReceived {
		a.diag(Position{Line: 1, Col: 1}, CodeNoHandler, SeverityError,
			"module defines no event_received(message) handler but is reachable from the source")
	}

	a.frameFlow(prog) // PV011: frame held across call_service (frameflow.go)
}

// noteCallback records lifecycle-callback definitions and checks their
// declared arity against the callback signature (PV009).
func (a *analyzer) noteCallback(name string, nparams int, pos Position) {
	switch name {
	case "event_received":
		a.facts.HasEventReceived = true
	case "init":
		a.facts.HasInit = true
	default:
		return
	}
	sig, ok := HostSignature(name)
	if !ok || !sig.Callback {
		return
	}
	if nparams < sig.Min || (sig.Max >= 0 && nparams > sig.Max) {
		a.diag(pos, CodeBadCallback, SeverityWarning,
			fmt.Sprintf("%s is declared with %d parameters; the runtime passes %s", name, nparams, callbackArgs(sig)))
	}
}

func callbackArgs(sig Signature) string {
	if sig.Max == 0 {
		return "none"
	}
	return fmt.Sprintf("at most %d", sig.Max)
}

// collect pre-registers the declarations of one statement list so duplicate
// declarations (PV006) are caught and later straight-line references can be
// distinguished from truly undefined names (PV002 vs PV001).
func (a *analyzer) collect(list []stmt, sc *aScope) {
	for _, s := range list {
		switch st := s.(type) {
		case *declStmt:
			kind := declVar
			if st.constant {
				kind = declConst
			}
			a.declare(sc, st.name, st.pos, kind)
		case *funcDecl:
			a.declare(sc, st.fn.name, st.pos, declFunc)
		}
	}
}

func (a *analyzer) declare(sc *aScope, name string, pos Position, kind declKind) *declInfo {
	if prev, ok := sc.decls[name]; ok && prev.kind != declBuiltin {
		a.diag(pos, CodeDuplicate, SeverityError,
			fmt.Sprintf("%q is already declared in this scope (first at %s)", name, prev.pos))
	}
	d := &declInfo{name: name, pos: pos, kind: kind}
	sc.decls[name] = d
	sc.order = append(sc.order, d)
	return d
}

// resolve walks the scope chain; it returns the declaration and the scope
// that holds it.
func (a *analyzer) resolve(name string, sc *aScope) (*declInfo, *aScope) {
	for s := sc; s != nil; s = s.parent {
		if d, ok := s.decls[name]; ok {
			return d, s
		}
	}
	return nil, nil
}

// finish reports unused declarations (PV003) when a scope closes. Function
// declarations and catch variables are exempt; so is the implicit
// `arguments` array.
func (a *analyzer) finish(sc *aScope) {
	for _, d := range sc.order {
		if d.reads > 0 || d.kind == declFunc || d.kind == declCatch || d.kind == declBuiltin {
			continue
		}
		noun := "variable"
		if d.kind == declParam {
			noun = "parameter"
		}
		a.diag(d.pos, CodeUnused, SeverityWarning,
			fmt.Sprintf("%s %q is declared and never read", noun, d.name))
	}
}

// ---- statements ----

// stmts walks a statement list, tracking termination to flag the first
// unreachable statement (PV004).
func (a *analyzer) stmts(list []stmt, sc *aScope, fd int) {
	terminated := false
	for _, s := range list {
		if terminated {
			a.diag(s.position(), CodeUnreachable, SeverityWarning,
				"unreachable code (follows return/throw/break/continue)")
			terminated = false // report once per list, keep checking the rest
		}
		a.stmt(s, sc, fd)
		if terminates(s) {
			terminated = true
		}
	}
}

// terminates reports whether a statement unconditionally leaves the
// enclosing statement list.
func terminates(s stmt) bool {
	switch st := s.(type) {
	case *returnStmt, *throwStmt, *breakStmt, *continueStmt:
		return true
	case *blockStmt:
		for _, inner := range st.stmts {
			if terminates(inner) {
				return true
			}
		}
	case *ifStmt:
		return st.elsE != nil && terminates(st.then) && terminates(st.elsE)
	}
	return false
}

func (a *analyzer) stmt(s stmt, sc *aScope, fd int) {
	switch st := s.(type) {
	case *exprStmt:
		a.expr(st.x, sc, fd)
	case *declStmt:
		if st.init != nil {
			a.expr(st.init, sc, fd)
		}
		if d, ok := sc.decls[st.name]; ok {
			d.reached = true
		}
	case *blockStmt:
		ns := newAScope(sc, fd)
		a.collect(st.stmts, ns)
		a.stmts(st.stmts, ns, fd)
		a.finish(ns)
	case *ifStmt:
		a.cond(st.cond, sc, fd)
		a.stmt(st.then, sc, fd)
		if st.elsE != nil {
			a.stmt(st.elsE, sc, fd)
		}
	case *whileStmt:
		a.cond(st.cond, sc, fd)
		a.stmt(st.body, sc, fd)
	case *forStmt:
		ns := newAScope(sc, fd)
		if st.init != nil {
			a.collect([]stmt{st.init}, ns)
			a.stmt(st.init, ns, fd)
		}
		if st.cond != nil {
			a.cond(st.cond, ns, fd)
		}
		a.stmt(st.body, ns, fd)
		if st.post != nil {
			a.expr(st.post, ns, fd)
		}
		a.finish(ns)
	case *forOfStmt:
		a.expr(st.iter, sc, fd)
		ns := newAScope(sc, fd)
		d := a.declare(ns, st.varName, st.pos, declVar)
		d.reached = true
		d.reads++ // the loop variable is bound each iteration; not "unused"
		a.stmt(st.body, ns, fd)
		a.finish(ns)
	case *returnStmt:
		if st.value != nil {
			a.expr(st.value, sc, fd)
		}
	case *breakStmt, *continueStmt:
		// nothing to check
	case *throwStmt:
		a.expr(st.value, sc, fd)
	case *tryStmt:
		a.stmt(st.body, sc, fd)
		if st.catch != nil {
			// The interpreter binds the catch variable in the same
			// environment the catch statements execute in.
			ns := newAScope(sc, fd)
			if st.catchVar != "" {
				d := a.declare(ns, st.catchVar, st.catch.pos, declCatch)
				d.reached = true
			}
			a.collect(st.catch.stmts, ns)
			a.stmts(st.catch.stmts, ns, fd)
			a.finish(ns)
		}
		if st.finally != nil {
			a.stmt(st.finally, sc, fd)
		}
	case *switchStmt:
		a.expr(st.subject, sc, fd)
		// The interpreter shares one environment across all case bodies;
		// analyzing each body in its own scope is slightly stricter (a
		// fallthrough reference to a previous case's variable is flagged)
		// but catches the common bug of relying on a sibling case's state.
		for _, c := range st.cases {
			a.expr(c.value, sc, fd)
			ns := newAScope(sc, fd)
			a.collect(c.body, ns)
			a.stmts(c.body, ns, fd)
			a.finish(ns)
		}
		if st.defaultBody != nil {
			ns := newAScope(sc, fd)
			a.collect(st.defaultBody, ns)
			a.stmts(st.defaultBody, ns, fd)
			a.finish(ns)
		}
	case *funcDecl:
		if d, ok := sc.decls[st.fn.name]; ok {
			d.reached = true
		}
		a.function(st.fn, sc, fd)
	}
}

// cond analyzes a condition expression, flagging plain assignment used as a
// condition (PV005).
func (a *analyzer) cond(e expr, sc *aScope, fd int) {
	if as, ok := e.(*assignExpr); ok && as.op == "=" {
		a.diag(as.pos, CodeCondAssign, SeverityWarning,
			"assignment in condition (use == to compare)")
	}
	a.expr(e, sc, fd)
}

// function analyzes a function body one function depth deeper. Parameters
// live in the same environment the body statements execute in, matching the
// interpreter.
func (a *analyzer) function(fn *funcLit, sc *aScope, fd int) {
	ns := newAScope(sc, fd+1)
	for _, p := range fn.params {
		d := a.declare(ns, p, fn.pos, declParam)
		d.reached = true
	}
	// The interpreter defines `arguments` implicitly in every call frame.
	ns.decls["arguments"] = &declInfo{name: "arguments", kind: declBuiltin, reached: true}
	a.collect(fn.body.stmts, ns)
	a.stmts(fn.body.stmts, ns, fd+1)
	a.finish(ns)
}

// ---- expressions ----

func (a *analyzer) expr(e expr, sc *aScope, fd int) {
	switch ex := e.(type) {
	case *numberLit, *stringLit, *boolLit, *nullLit:
		// literals
	case *identExpr:
		a.use(ex, sc, fd)
	case *arrayLit:
		for _, el := range ex.elems {
			a.expr(el, sc, fd)
		}
	case *objectLit:
		for _, f := range ex.fields {
			a.expr(f.value, sc, fd)
		}
	case *funcLit:
		a.function(ex, sc, fd)
	case *unaryExpr:
		a.expr(ex.x, sc, fd)
	case *binaryExpr:
		a.expr(ex.x, sc, fd)
		a.expr(ex.y, sc, fd)
	case *logicalExpr:
		a.expr(ex.x, sc, fd)
		a.expr(ex.y, sc, fd)
	case *condExpr:
		a.cond(ex.cond, sc, fd)
		a.expr(ex.then, sc, fd)
		a.expr(ex.elsE, sc, fd)
	case *assignExpr:
		a.expr(ex.value, sc, fd)
		a.assignTarget(ex.target, sc, fd, ex.op != "=")
	case *updateExpr:
		a.assignTarget(ex.target, sc, fd, true)
	case *callExpr:
		a.call(ex, sc, fd)
	case *memberExpr:
		a.expr(ex.obj, sc, fd)
	case *indexExpr:
		a.expr(ex.obj, sc, fd)
		a.expr(ex.index, sc, fd)
	}
}

// use resolves an identifier read, counting it and reporting PV001/PV002.
func (a *analyzer) use(ex *identExpr, sc *aScope, fd int) *declInfo {
	d, ds := a.resolve(ex.name, sc)
	if d == nil {
		a.diag(ex.pos, CodeUndefined, SeverityError,
			fmt.Sprintf("%q is not defined", ex.name))
		return nil
	}
	d.reads++
	if !d.reached && ds.funcDepth == fd {
		a.diag(ex.pos, CodeUseBeforeDecl, SeverityError,
			fmt.Sprintf("%q is used before its declaration at %s", ex.name, d.pos))
	}
	return d
}

// assignTarget resolves an assignment/update target. reads marks compound
// forms (+=, ++) that read the previous value.
func (a *analyzer) assignTarget(target expr, sc *aScope, fd int, reads bool) {
	switch tg := target.(type) {
	case *identExpr:
		d, ds := a.resolve(tg.name, sc)
		if d == nil {
			a.diag(tg.pos, CodeUndefined, SeverityError,
				fmt.Sprintf("%q is not defined (PipeScript has no implicit globals; declare it with var)", tg.name))
			return
		}
		if d.kind == declConst {
			a.diag(tg.pos, CodeConstAssign, SeverityError,
				fmt.Sprintf("cannot assign to constant %q (declared at %s)", tg.name, d.pos))
		}
		if reads {
			d.reads++
		}
		if !d.reached && ds.funcDepth == fd {
			a.diag(tg.pos, CodeUseBeforeDecl, SeverityError,
				fmt.Sprintf("%q is assigned before its declaration at %s", tg.name, d.pos))
		}
	case *memberExpr:
		a.expr(tg.obj, sc, fd)
	case *indexExpr:
		a.expr(tg.obj, sc, fd)
		a.expr(tg.index, sc, fd)
	default:
		a.expr(target, sc, fd)
	}
}

// call analyzes a call site. When the callee resolves to a signature-table
// builtin, arity and literal argument types are checked (PV007), and
// call_service / call_module literal targets are recorded as Facts.
func (a *analyzer) call(ex *callExpr, sc *aScope, fd int) {
	for _, arg := range ex.args {
		a.expr(arg, sc, fd)
	}
	id, ok := ex.callee.(*identExpr)
	if !ok {
		a.expr(ex.callee, sc, fd)
		return
	}
	d := a.use(id, sc, fd)
	if d == nil || d.kind != declBuiltin || d.sig == nil {
		return
	}
	sig := *d.sig

	n := len(ex.args)
	switch {
	case n < sig.Min:
		a.diag(ex.pos, CodeBadCall, SeverityError,
			fmt.Sprintf("%s expects %s, got %d", sig.Name, arityWord(sig), n))
	case sig.Max >= 0 && n > sig.Max:
		a.diag(ex.pos, CodeBadCall, SeverityError,
			fmt.Sprintf("%s expects %s, got %d", sig.Name, arityWord(sig), n))
	default:
		for i, arg := range ex.args {
			var want string
			if i < len(sig.Params) {
				want = sig.Params[i].Type
			} else {
				want = sig.Rest
			}
			if want == "" || want == "any" {
				continue
			}
			got := litType(arg)
			if got == "" {
				continue // not a literal; checked at runtime
			}
			if got == "null" && i >= sig.Min {
				continue
			}
			if !typeAllowed(want, got) {
				name := fmt.Sprintf("argument %d", i+1)
				if i < len(sig.Params) {
					name = sig.Params[i].Name
				}
				a.diag(arg.position(), CodeBadCall, SeverityError,
					fmt.Sprintf("%s: %s must be %s, got %s", sig.Name, name, withArticle(want), got))
			}
		}
	}

	switch id.name {
	case "call_service":
		a.recordTarget(ex, &a.facts.ServiceTargets, &a.facts.DynamicServiceTargets)
	case "call_module":
		a.recordTarget(ex, &a.facts.ModuleTargets, &a.facts.DynamicModuleTargets)
	}
}

func (a *analyzer) recordTarget(ex *callExpr, refs *[]TargetRef, dynamic *int) {
	if len(ex.args) == 0 {
		return
	}
	if s, ok := ex.args[0].(*stringLit); ok {
		*refs = append(*refs, TargetRef{Name: s.value, Pos: s.pos})
	} else {
		*dynamic++
	}
}

// arityWord renders a signature's accepted argument count for messages.
func arityWord(sig Signature) string {
	switch {
	case sig.Max < 0:
		return fmt.Sprintf("at least %d arguments", sig.Min)
	case sig.Min == sig.Max && sig.Min == 0:
		return "no arguments"
	case sig.Min == sig.Max && sig.Min == 1:
		return "1 argument"
	case sig.Min == sig.Max:
		return fmt.Sprintf("%d arguments", sig.Min)
	default:
		return fmt.Sprintf("%d to %d arguments", sig.Min, sig.Max)
	}
}

// litType returns the PipeScript type of a literal expression, or "" when
// the value is only known at runtime.
func litType(e expr) string {
	switch ex := e.(type) {
	case *numberLit:
		return "number"
	case *stringLit:
		return "string"
	case *boolLit:
		return "boolean"
	case *nullLit:
		return "null"
	case *arrayLit:
		return "array"
	case *objectLit:
		return "object"
	case *funcLit:
		return "function"
	case *unaryExpr:
		if ex.op == "-" {
			if litType(ex.x) == "number" {
				return "number"
			}
		}
		if ex.op == "!" {
			return "boolean"
		}
		if ex.op == "typeof" {
			return "string"
		}
	}
	return ""
}
