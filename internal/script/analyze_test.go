package script

import (
	"fmt"
	"strings"
	"testing"
)

// TestAnalyzeNegativeCorpus locks in the diagnostic contract: one minimal
// snippet per code, asserting the exact code, severity and line:col.
func TestAnalyzeNegativeCorpus(t *testing.T) {
	cases := []struct {
		name string
		src  string
		opts Options
		code string
		sev  Severity
		pos  string // "line:col"
	}{
		{
			name: "PV000 syntax error",
			src:  "function (", code: CodeSyntax, sev: SeverityError, pos: "1:10",
		},
		{
			name: "PV001 undefined identifier",
			src:  "var x = missing;\nlog(x);",
			code: CodeUndefined, sev: SeverityError, pos: "1:9",
		},
		{
			name: "PV001 assignment to undeclared name",
			src:  "total = 1;",
			code: CodeUndefined, sev: SeverityError, pos: "1:1",
		},
		{
			name: "PV002 use before declaration",
			src:  "log(a);\nvar a = 1;\nlog(a);",
			code: CodeUseBeforeDecl, sev: SeverityError, pos: "1:5",
		},
		{
			name: "PV003 unused variable",
			src:  "var unused = 1;",
			code: CodeUnused, sev: SeverityWarning, pos: "1:1",
		},
		{
			name: "PV003 unused parameter",
			src:  "function f(x) { return 1; }\nlog(f(2));",
			code: CodeUnused, sev: SeverityWarning, pos: "1:1",
		},
		{
			name: "PV004 unreachable after return",
			src:  "function f() { return 1; log(2); }\nlog(f());",
			code: CodeUnreachable, sev: SeverityWarning, pos: "1:26",
		},
		{
			name: "PV005 assignment in condition",
			src:  "var x = 0;\nif (x = 1) { log(x); }",
			code: CodeCondAssign, sev: SeverityWarning, pos: "2:7",
		},
		{
			name: "PV006 duplicate declaration",
			src:  "var x = 1;\nvar x = 2;\nlog(x);",
			code: CodeDuplicate, sev: SeverityError, pos: "2:1",
		},
		{
			name: "PV007 wrong arity",
			src:  "now_ms(1);",
			code: CodeBadCall, sev: SeverityError, pos: "1:7",
		},
		{
			name: "PV007 wrong literal argument type",
			src:  `metric("stage", "fast");`,
			code: CodeBadCall, sev: SeverityError, pos: "1:17",
		},
		{
			name: "PV008 missing event_received",
			src:  "var x = 1;\nlog(x);",
			opts: Options{RequireEventReceived: true},
			code: CodeNoHandler, sev: SeverityError, pos: "1:1",
		},
		{
			name: "PV009 callback arity",
			src:  "function event_received(a, b) { log(a, b); }",
			code: CodeBadCallback, sev: SeverityWarning, pos: "1:1",
		},
		{
			name: "PV010 assignment to const",
			src:  "const c = 1;\nc = 2;\nlog(c);",
			code: CodeConstAssign, sev: SeverityError, pos: "2:1",
		},
	}

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			rep := Analyze(tc.src, tc.opts)
			var hit *Diagnostic
			for i := range rep.Diagnostics {
				if rep.Diagnostics[i].Code == tc.code {
					hit = &rep.Diagnostics[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %s diagnostic; got %v", tc.code, rep.Diagnostics)
			}
			if hit.Severity != tc.sev {
				t.Errorf("severity = %v, want %v", hit.Severity, tc.sev)
			}
			if got := hit.Pos.String(); got != tc.pos {
				t.Errorf("position = %s, want %s (%s)", got, tc.pos, hit.Message)
			}
		})
	}
}

// TestAnalyzeCleanPrograms guards against false positives on idiomatic
// module code: nested functions referencing later top-level declarations,
// compound-assignment reads, catch variables, loops, switches.
func TestAnalyzeCleanPrograms(t *testing.T) {
	srcs := []string{
		// Mutual recursion and later declarations from nested bodies.
		`function even(n) { if (n == 0) { return true; } return odd(n - 1); }
		 function odd(n) { if (n == 0) { return false; } return even(n - 1); }
		 log(even(4));`,
		// State mutated by ++ only still counts as used.
		`var frames = 0;
		 function event_received(message) { frames++; metric("n", frames + message.seq); frame_done(); }`,
		// Catch variables may go unused; loops, switch, for-of.
		`function event_received(message) {
			var total = 0;
			for (var i = 0; i < 3; i++) { total += i; }
			for (k of keys({a: 1})) { log(k); }
			switch (total) {
			case 3: log("three"); break;
			default: log(total);
			}
			try { call_service("svc", {frame_ref: message.frame_ref}); } catch (e) { frame_done(); return; }
			frame_done();
		 }`,
		// Ternaries, logical operators, member/index writes.
		`var state = {count: 0};
		 function event_received(message) {
			state.count = state.count + 1;
			var label = message.found ? "hit" : "miss";
			log(label, state["count"]);
			frame_done();
		 }`,
	}
	for i, src := range srcs {
		rep := Analyze(src, Options{})
		for _, d := range rep.Diagnostics {
			// The pipecost codes are exercised by their own corpus
			// (cost_test.go); the mutual-recursion sample above is a true
			// PV013 positive, not a scoping false positive.
			if d.Code == CodeUnboundedLoop || d.Code == CodeUnboundableCost {
				continue
			}
			t.Errorf("program %d: unexpected diagnostic %s", i, d)
		}
	}
}

// TestAnalyzeFacts checks the cross-check inputs: literal targets with
// positions, dynamic-target counting, callback detection.
func TestAnalyzeFacts(t *testing.T) {
	src := `var targets = ["a", "b"];
function init() { log("up"); }
function event_received(message) {
	call_service("pose_detector", {frame_ref: message.frame_ref});
	call_module(targets[0], {});
	call_module("display", {});
	frame_done();
}`
	rep := Analyze(src, Options{})
	if rep.HasErrors() {
		t.Fatalf("unexpected errors: %v", rep.Errors())
	}
	f := rep.Facts
	if !f.HasEventReceived || !f.HasInit {
		t.Errorf("callbacks not detected: %+v", f)
	}
	if len(f.ServiceTargets) != 1 || f.ServiceTargets[0].Name != "pose_detector" {
		t.Errorf("service targets = %+v", f.ServiceTargets)
	}
	if f.ServiceTargets[0].Pos.Line != 4 {
		t.Errorf("service target line = %d, want 4", f.ServiceTargets[0].Pos.Line)
	}
	if len(f.ModuleTargets) != 1 || f.ModuleTargets[0].Name != "display" {
		t.Errorf("module targets = %+v", f.ModuleTargets)
	}
	if f.DynamicModuleTargets != 1 || f.DynamicServiceTargets != 0 {
		t.Errorf("dynamic counts = %d/%d", f.DynamicServiceTargets, f.DynamicModuleTargets)
	}
}

// TestCheckHostArgs exercises the runtime side of the shared signature
// table, which the device host API delegates to.
func TestCheckHostArgs(t *testing.T) {
	cases := []struct {
		name    string
		args    []Value
		wantErr string
	}{
		{"call_service", nil, "call_service: missing service name"},
		{"call_service", []Value{42.0}, "call_service: service name must be a string, got number"},
		{"call_service", []Value{"pose"}, ""},
		{"call_service", []Value{"pose", nil}, ""},
		{"call_module", []Value{"next", "payload"}, "call_module: message must be an object, got string"},
		{"metric", []Value{"stage"}, "metric: missing value"},
		{"metric", []Value{"stage", "fast"}, "metric: value must be a number, got string"},
		{"metric", []Value{"stage", 1.5}, ""},
		{"unknown_binding", []Value{1.0, 2.0}, ""}, // not in the table: permitted
	}
	for _, tc := range cases {
		err := CheckHostArgs(tc.name, tc.args)
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s(%v): unexpected error %v", tc.name, tc.args, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s(%v): error = %v, want %q", tc.name, tc.args, err, tc.wantErr)
		}
	}
}

// TestDiagnosticString pins the file:line:col code message layout consumers
// (the -lint CLI, AnalysisError) build on.
func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{Pos: Position{Line: 3, Col: 9}, Code: CodeUndefined,
		Severity: SeverityError, Message: `"ghost" is not defined`}
	want := fmt.Sprintf("3:9: error %s: %q is not defined", CodeUndefined, "ghost")
	if d.String() != want {
		t.Errorf("String() = %q, want %q", d.String(), want)
	}
}
