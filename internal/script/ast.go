package script

// The AST node hierarchy. Expressions and statements are separate interface
// families; every node carries its source position for error reporting.

type node interface{ position() Position }

// ---- Expressions ----

type expr interface {
	node
	exprNode()
}

type numberLit struct {
	pos   Position
	value float64
}

type stringLit struct {
	pos   Position
	value string
}

type boolLit struct {
	pos   Position
	value bool
}

type nullLit struct{ pos Position }

type identExpr struct {
	pos  Position
	name string
}

type arrayLit struct {
	pos   Position
	elems []expr
}

type objectField struct {
	key   string
	value expr
}

type objectLit struct {
	pos    Position
	fields []objectField
}

// funcLit covers both function expressions and (via name) declarations.
type funcLit struct {
	pos    Position
	name   string // empty for anonymous
	params []string
	body   *blockStmt
}

type unaryExpr struct {
	pos Position
	op  string // "-", "!", "typeof"
	x   expr
}

type binaryExpr struct {
	pos  Position
	op   string
	x, y expr
}

// logicalExpr short-circuits, unlike binaryExpr.
type logicalExpr struct {
	pos  Position
	op   string // "&&", "||"
	x, y expr
}

type condExpr struct {
	pos        Position
	cond       expr
	then, elsE expr
}

type assignExpr struct {
	pos    Position
	op     string // "=", "+=", ...
	target expr   // identExpr, memberExpr or indexExpr
	value  expr
}

// updateExpr is ++/-- (prefix or postfix).
type updateExpr struct {
	pos     Position
	op      string // "++", "--"
	target  expr
	postfix bool
}

type callExpr struct {
	pos    Position
	callee expr
	args   []expr
}

type memberExpr struct {
	pos  Position
	obj  expr
	name string
}

type indexExpr struct {
	pos   Position
	obj   expr
	index expr
}

func (e *numberLit) position() Position  { return e.pos }
func (e *stringLit) position() Position  { return e.pos }
func (e *boolLit) position() Position    { return e.pos }
func (e *nullLit) position() Position    { return e.pos }
func (e *identExpr) position() Position  { return e.pos }
func (e *arrayLit) position() Position   { return e.pos }
func (e *objectLit) position() Position  { return e.pos }
func (e *funcLit) position() Position    { return e.pos }
func (e *unaryExpr) position() Position  { return e.pos }
func (e *binaryExpr) position() Position { return e.pos }
func (e *logicalExpr) position() Position {
	return e.pos
}
func (e *condExpr) position() Position   { return e.pos }
func (e *assignExpr) position() Position { return e.pos }
func (e *updateExpr) position() Position { return e.pos }
func (e *callExpr) position() Position   { return e.pos }
func (e *memberExpr) position() Position { return e.pos }
func (e *indexExpr) position() Position  { return e.pos }

func (*numberLit) exprNode()   {}
func (*stringLit) exprNode()   {}
func (*boolLit) exprNode()     {}
func (*nullLit) exprNode()     {}
func (*identExpr) exprNode()   {}
func (*arrayLit) exprNode()    {}
func (*objectLit) exprNode()   {}
func (*funcLit) exprNode()     {}
func (*unaryExpr) exprNode()   {}
func (*binaryExpr) exprNode()  {}
func (*logicalExpr) exprNode() {}
func (*condExpr) exprNode()    {}
func (*assignExpr) exprNode()  {}
func (*updateExpr) exprNode()  {}
func (*callExpr) exprNode()    {}
func (*memberExpr) exprNode()  {}
func (*indexExpr) exprNode()   {}

// ---- Statements ----

type stmt interface {
	node
	stmtNode()
}

type exprStmt struct {
	pos Position
	x   expr
}

// declStmt declares one variable (var/let/const).
type declStmt struct {
	pos      Position
	kind     string // "var", "let", "const"
	name     string
	init     expr // may be nil
	constant bool
}

type blockStmt struct {
	pos   Position
	stmts []stmt
}

type ifStmt struct {
	pos  Position
	cond expr
	then stmt
	elsE stmt // may be nil
}

type whileStmt struct {
	pos  Position
	cond expr
	body stmt
}

type forStmt struct {
	pos  Position
	init stmt // may be nil (declStmt or exprStmt)
	cond expr // may be nil
	post expr // may be nil
	body stmt
}

// forOfStmt iterates over array elements or object keys.
type forOfStmt struct {
	pos     Position
	varName string
	iter    expr
	body    stmt
}

type returnStmt struct {
	pos   Position
	value expr // may be nil
}

type breakStmt struct{ pos Position }

type continueStmt struct{ pos Position }

type throwStmt struct {
	pos   Position
	value expr
}

type tryStmt struct {
	pos      Position
	body     *blockStmt
	catchVar string
	catch    *blockStmt // may be nil
	finally  *blockStmt // may be nil
}

// switchStmt is a switch over strict-equality cases.
type switchStmt struct {
	pos     Position
	subject expr
	cases   []switchCase
	// defaultBody may be nil.
	defaultBody []stmt
}

type switchCase struct {
	value expr
	body  []stmt
}

// funcDecl binds a function literal to a name in the current scope.
type funcDecl struct {
	pos Position
	fn  *funcLit
}

func (s *exprStmt) position() Position     { return s.pos }
func (s *declStmt) position() Position     { return s.pos }
func (s *blockStmt) position() Position    { return s.pos }
func (s *ifStmt) position() Position       { return s.pos }
func (s *whileStmt) position() Position    { return s.pos }
func (s *forStmt) position() Position      { return s.pos }
func (s *forOfStmt) position() Position    { return s.pos }
func (s *returnStmt) position() Position   { return s.pos }
func (s *breakStmt) position() Position    { return s.pos }
func (s *continueStmt) position() Position { return s.pos }
func (s *throwStmt) position() Position    { return s.pos }
func (s *tryStmt) position() Position      { return s.pos }
func (s *switchStmt) position() Position   { return s.pos }
func (s *funcDecl) position() Position     { return s.pos }

func (*exprStmt) stmtNode()     {}
func (*declStmt) stmtNode()     {}
func (*blockStmt) stmtNode()    {}
func (*ifStmt) stmtNode()       {}
func (*whileStmt) stmtNode()    {}
func (*forStmt) stmtNode()      {}
func (*forOfStmt) stmtNode()    {}
func (*returnStmt) stmtNode()   {}
func (*breakStmt) stmtNode()    {}
func (*continueStmt) stmtNode() {}
func (*throwStmt) stmtNode()    {}
func (*tryStmt) stmtNode()      {}
func (*switchStmt) stmtNode()   {}
func (*funcDecl) stmtNode()     {}

// program is a parsed compilation unit.
type program struct {
	stmts []stmt
}
