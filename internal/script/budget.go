package script

import (
	"fmt"
	"time"
)

// Sandbox resource governance (heka-style instruction/memory/output limits
// plus a goagent-style wall-clock backstop). A Context carries a Limits
// set; every Load/Eval/Call meters itself against it and aborts the
// invocation with a *BudgetError on breach. Limits are per invocation —
// one event, one init() run, one top-level load — so a breach costs the
// offending handler its event, never the whole module lifetime.

// Resource names carried by BudgetError, and used as breach-meter labels.
const (
	// ResourceInstructions is the interpreter-step budget (the same counter
	// LastInstructions reports and pipecost bounds statically).
	ResourceInstructions = "instructions"
	// ResourceMemory is the value-allocation budget in (approximate) bytes.
	ResourceMemory = "memory"
	// ResourceOutput is the host-emit budget (call_module / call_service /
	// log payload bytes), enforced by the module runtime.
	ResourceOutput = "output"
	// ResourceTimeout is the wall-clock backstop, excluding host-call time.
	ResourceTimeout = "timeout"
)

// Limits is one module's resource budget. Zero fields are unlimited at
// the script layer; the core runtime resolves cluster-wide defaults before
// a module spawns, so deployed contexts always run fully bounded
// (deny-by-default), while embedders and tests keep the permissive zero
// value.
type Limits struct {
	// Instructions bounds interpreter steps per event invocation. It must
	// not exceed the hard ceiling DefaultMaxSteps to be effective.
	Instructions int64
	// InitInstructions bounds steps for init() and top-level load; zero
	// falls back to Instructions.
	InitInstructions int64
	// Memory bounds bytes of script-value allocation per invocation. The
	// accounting is an estimate of allocation volume (strings by length,
	// arrays and objects by slot count), charged at every construction
	// site — literals, concatenation, array growth, builtin and host-call
	// results — not a byte-exact heap measure.
	Memory int64
	// Output bounds bytes emitted through the host API per event.
	Output int64
	// Timeout bounds one invocation's wall-clock script time, excluding
	// time spent inside host calls (a slow service must not breach the
	// module that called it).
	Timeout time.Duration
}

// Bounded reports whether any budget is set.
func (l Limits) Bounded() bool {
	return l.Instructions > 0 || l.InitInstructions > 0 || l.Memory > 0 ||
		l.Output > 0 || l.Timeout > 0
}

// BudgetError is a resource-budget breach. It aborts the invocation that
// overran and is deliberately not catchable by script try/catch — a
// runaway loop inside try{} must not be able to swallow its own abort.
type BudgetError struct {
	// Resource is one of the Resource* constants.
	Resource string
	// Limit is the configured budget; Used is the consumption that tripped
	// it (instructions, bytes, or milliseconds for ResourceTimeout).
	Limit int64
	Used  int64
	// Pos locates the script position at the moment of the breach (zero
	// for breaches raised outside the interpreter loop, e.g. output).
	Pos Position
}

// Error satisfies the error interface.
func (e *BudgetError) Error() string {
	unit := ""
	switch e.Resource {
	case ResourceMemory, ResourceOutput:
		unit = " bytes"
	case ResourceTimeout:
		unit = " ms"
	}
	if e.Pos != (Position{}) {
		return fmt.Sprintf("script: %s budget exceeded at %s: used %d of %d%s",
			e.Resource, e.Pos, e.Used, e.Limit, unit)
	}
	return fmt.Sprintf("script: %s budget exceeded: used %d of %d%s",
		e.Resource, e.Used, e.Limit, unit)
}

// SetLimits installs the resource budget enforced on every subsequent
// Load, Eval and Call.
func (c *Context) SetLimits(l Limits) { c.limits = l }

// Limits returns the context's current resource budget.
func (c *Context) Limits() Limits { return c.limits }

// PreservationVersionGlobal is the global a module declares to version its
// preserved state (heka's _PRESERVATION_VERSION): a snapshot restores into
// a fresh context only when both sides agree on the version. Undeclared
// means version 0.
const PreservationVersionGlobal = "_PRESERVATION_VERSION"

// PreservationVersion reads the module-declared state version: the numeric
// value of _PRESERVATION_VERSION, or 0 when unset or non-numeric. Constant
// declarations count — the version is metadata, not mutable state.
func (c *Context) PreservationVersion() int64 {
	b, ok := c.globals.lookup(PreservationVersionGlobal)
	if !ok {
		return 0
	}
	if n, ok := b.value.(float64); ok {
		return int64(n)
	}
	return 0
}

// sizeEstimate is the memory-accounting charge for one constructed value:
// strings by length, containers by slot count. Shallow — elements were
// charged at their own construction sites.
func sizeEstimate(v Value) int64 {
	switch x := v.(type) {
	case string:
		return int64(len(x)) + 16
	case *Array:
		return 24 + 16*int64(len(x.Elems))
	case *Object:
		return 48 + 32*int64(len(x.Fields))
	case *Function:
		return 64
	default:
		return 0
	}
}
