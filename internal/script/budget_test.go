package script

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestBudgetInstructionBreach(t *testing.T) {
	c := NewContext()
	c.SetLimits(Limits{Instructions: 1000})
	if err := c.Load(`function event_received(m) { while (true) {} }`); err != nil {
		t.Fatalf("load: %v", err)
	}
	_, err := c.Call("event_received", nil)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %v", err)
	}
	if be.Resource != ResourceInstructions {
		t.Fatalf("resource = %q, want instructions", be.Resource)
	}
	if be.Limit != 1000 {
		t.Fatalf("limit = %d, want 1000", be.Limit)
	}
	// Overshoot is bounded by one dispatch quantum: the breach is raised on
	// the first step past the limit.
	if got := c.LastInstructions(); got != 1001 {
		t.Fatalf("LastInstructions = %d, want limit+1 = 1001", got)
	}
}

func TestBudgetInitVersusEventBudget(t *testing.T) {
	// init() runs under InitInstructions, events under Instructions.
	c := NewContext()
	c.SetLimits(Limits{Instructions: 100_000, InitInstructions: 200})
	src := `
		function spin(n) { var i = 0; while (i < n) { i = i + 1; } return i; }
		function init() { spin(1000); }
		function event_received(m) { spin(1000); }
	`
	if err := c.Load(src); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Call("init"); err == nil {
		t.Fatal("init should breach the 200-step init budget")
	}
	if _, err := c.Call("event_received", nil); err != nil {
		t.Fatalf("event should fit the 100k event budget: %v", err)
	}
}

func TestBudgetInitFallsBackToInstructions(t *testing.T) {
	c := NewContext()
	c.SetLimits(Limits{Instructions: 200})
	// Top-level load shares the init phase; with no InitInstructions the
	// event budget applies.
	err := c.Load(`var i = 0; while (i < 1000) { i = i + 1; }`)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != ResourceInstructions {
		t.Fatalf("want instruction BudgetError from load, got %v", err)
	}
}

func TestBudgetMemoryBreach(t *testing.T) {
	c := NewContext()
	c.SetLimits(Limits{Memory: 64 * 1024})
	if err := c.Load(`
		function event_received(m) {
			var s = "0123456789abcdef";
			while (true) { s = s + s; }
		}
	`); err != nil {
		t.Fatalf("load: %v", err)
	}
	_, err := c.Call("event_received", nil)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %v", err)
	}
	if be.Resource != ResourceMemory {
		t.Fatalf("resource = %q, want memory", be.Resource)
	}
	// Doubling means the final charge is at most the limit itself, so
	// total accounted use stays under 2x the limit.
	if be.Used > 2*be.Limit {
		t.Fatalf("used %d overshoots limit %d by more than one allocation", be.Used, be.Limit)
	}
}

func TestBudgetMemoryResetsPerInvocation(t *testing.T) {
	c := NewContext()
	c.SetLimits(Limits{Memory: 16 * 1024})
	if err := c.Load(`
		function event_received(m) {
			var a = [];
			var i = 0;
			while (i < 100) { push(a, "xxxxxxxx"); i = i + 1; }
			return len(a);
		}
	`); err != nil {
		t.Fatalf("load: %v", err)
	}
	// Each event allocates ~a few KiB; the budget is per invocation, so
	// many sequential events must all pass.
	for i := 0; i < 50; i++ {
		if _, err := c.Call("event_received", nil); err != nil {
			t.Fatalf("event %d breached a per-invocation budget: %v", i, err)
		}
	}
}

func TestBudgetTimeoutBreach(t *testing.T) {
	c := NewContext()
	c.SetLimits(Limits{Timeout: 20 * time.Millisecond})
	if err := c.Load(`function event_received(m) { while (true) {} }`); err != nil {
		t.Fatalf("load: %v", err)
	}
	start := time.Now()
	_, err := c.Call("event_received", nil)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("want BudgetError, got %v", err)
	}
	if be.Resource != ResourceTimeout {
		t.Fatalf("resource = %q, want timeout", be.Resource)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout enforcement took %v", elapsed)
	}
}

func TestBudgetTimeoutExcludesHostTime(t *testing.T) {
	c := NewContext()
	c.SetLimits(Limits{Timeout: 50 * time.Millisecond})
	c.Bind("slow_host", func(args []Value) (Value, error) {
		time.Sleep(120 * time.Millisecond)
		return nil, nil
	})
	if err := c.Load(`function event_received(m) { slow_host(); return "ok"; }`); err != nil {
		t.Fatalf("load: %v", err)
	}
	if _, err := c.Call("event_received", nil); err != nil {
		t.Fatalf("host-call time must not count against the script timeout: %v", err)
	}
}

func TestBudgetUncatchableByScript(t *testing.T) {
	c := NewContext()
	c.SetLimits(Limits{Instructions: 1000})
	if err := c.Load(`
		var caught = false;
		function event_received(m) {
			try { while (true) {} } catch (e) { caught = true; }
			return "survived";
		}
	`); err != nil {
		t.Fatalf("load: %v", err)
	}
	_, err := c.Call("event_received", nil)
	var be *BudgetError
	if !errors.As(err, &be) {
		t.Fatalf("try/catch must not swallow a budget breach, got %v", err)
	}
	if v, _ := c.Global("caught"); v == true {
		t.Fatal("catch block ran on a budget breach")
	}
}

func TestBudgetHostErrorUncatchable(t *testing.T) {
	// A *BudgetError returned by a host function (the module runtime's
	// output limit) must pass through try/catch untouched.
	c := NewContext()
	c.Bind("emit", func(args []Value) (Value, error) {
		return nil, &BudgetError{Resource: ResourceOutput, Limit: 10, Used: 99}
	})
	if err := c.Load(`
		function event_received(m) {
			try { emit("x"); } catch (e) { return "caught"; }
			return "no error";
		}
	`); err != nil {
		t.Fatalf("load: %v", err)
	}
	_, err := c.Call("event_received", nil)
	var be *BudgetError
	if !errors.As(err, &be) || be.Resource != ResourceOutput {
		t.Fatalf("want output BudgetError through try/catch, got %v", err)
	}
}

func TestBudgetZeroLimitsKeepLegacyCeiling(t *testing.T) {
	c := NewContext()
	c.SetMaxSteps(5000)
	if err := c.Load(`function event_received(m) { while (true) {} }`); err != nil {
		t.Fatalf("load: %v", err)
	}
	_, err := c.Call("event_received", nil)
	if err == nil {
		t.Fatal("want step-budget error")
	}
	var be *BudgetError
	if errors.As(err, &be) {
		t.Fatalf("ungoverned context must raise the legacy RuntimeError, got BudgetError %v", err)
	}
	if !strings.Contains(err.Error(), "step budget exhausted") {
		t.Fatalf("legacy ceiling message changed: %v", err)
	}
}

func TestBudgetErrorMessage(t *testing.T) {
	e := &BudgetError{Resource: ResourceMemory, Limit: 1024, Used: 2048}
	if got := e.Error(); got != "script: memory budget exceeded: used 2048 of 1024 bytes" {
		t.Fatalf("message = %q", got)
	}
	e2 := &BudgetError{Resource: ResourceTimeout, Limit: 20, Used: 25, Pos: Position{Line: 3, Col: 7}}
	if !strings.Contains(e2.Error(), "timeout budget exceeded at") || !strings.Contains(e2.Error(), " ms") {
		t.Fatalf("message = %q", e2.Error())
	}
}

func TestPreservationVersion(t *testing.T) {
	cases := []struct {
		src  string
		want int64
	}{
		{``, 0},
		{`var _PRESERVATION_VERSION = 3;`, 3},
		{`const _PRESERVATION_VERSION = 7;`, 7},
		{`var _PRESERVATION_VERSION = "not a number";`, 0},
	}
	for _, tc := range cases {
		c := NewContext()
		if err := c.Load(tc.src); err != nil {
			t.Fatalf("load %q: %v", tc.src, err)
		}
		if got := c.PreservationVersion(); got != tc.want {
			t.Errorf("PreservationVersion(%q) = %d, want %d", tc.src, got, tc.want)
		}
	}
}

func TestSnapshotCarriesVersion(t *testing.T) {
	c := NewContext()
	if err := c.Load(`const _PRESERVATION_VERSION = 4; var counter = 9;`); err != nil {
		t.Fatalf("load: %v", err)
	}
	snap := c.Snapshot()
	if snap.Version() != 4 {
		t.Fatalf("snapshot version = %d, want 4 (const declarations count)", snap.Version())
	}
	if (*Snapshot)(nil).Version() != 0 {
		t.Fatal("nil snapshot version must be 0")
	}
	fresh := NewContext()
	if err := fresh.Load(`var counter = 0;`); err != nil {
		t.Fatalf("load: %v", err)
	}
	if fresh.PreservationVersion() != 0 {
		t.Fatal("fresh context should be version 0")
	}
	// Restore itself is version-agnostic; the version policy lives in the
	// module runtime, which compares Snapshot.Version against the
	// destination's PreservationVersion before calling Restore.
	fresh.Restore(snap)
	if v, _ := fresh.Global("counter"); v != float64(9) {
		t.Fatalf("restore skipped counter: %v", v)
	}
}

// FuzzBudget runs random programs under random budgets: enforcement must
// never panic, and a breached run must never exceed its instruction limit
// by more than one dispatch quantum.
func FuzzBudget(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed, int64(1000), int64(4096))
	}
	f.Add(`function event_received(m) { while (true) {} }`, int64(50), int64(128))
	f.Add(`var s = "x"; function event_received(m) { while (true) { s = s + s; } }`, int64(100000), int64(64))
	f.Fuzz(func(t *testing.T, src string, instr, mem int64) {
		if instr <= 0 {
			instr = 1
		}
		if instr > 1_000_000 {
			instr = 1_000_000
		}
		if mem <= 0 {
			mem = 1
		}
		if mem > 1<<22 {
			mem = 1 << 22
		}
		c := NewContext()
		c.SetLimits(Limits{Instructions: instr, Memory: mem, Timeout: 250 * time.Millisecond})
		checkBreach := func(err error) {
			var be *BudgetError
			if !errors.As(err, &be) {
				return
			}
			if be.Resource == ResourceInstructions && c.LastInstructions() > instr+1 {
				t.Fatalf("instruction overshoot: ran %d with limit %d", c.LastInstructions(), instr)
			}
		}
		if err := c.Load(src); err != nil {
			checkBreach(err)
			return
		}
		if c.Has("event_received") {
			_, err := c.Call("event_received", FromGo(map[string]any{"kind": "fuzz"}))
			checkBreach(err)
		}
	})
}
