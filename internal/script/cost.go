package script

// pipecost: a static worst-case cost analysis over PipeScript module ASTs.
//
// For every lifecycle entry point — the module's top-level load, init() and
// event_received() — the pass computes a sound upper bound on the number of
// interpreter instructions one invocation can execute and on the number of
// values it can allocate. "Instruction" means exactly what the interpreter
// meters: one step per statement executed, one per expression evaluated,
// and one per loop-iteration check (interp.go charges in.step at the same
// points), so the static bound is directly comparable to the runtime
// counter exposed by Context.LastInstructions and the
// `script.<module>.instructions` meter. The soundness contract — static
// bound >= measured count for every handler — is enforced by the golden
// test at the repository root (cost_soundness_test.go).
//
// The analysis is an abstract interpretation over the AST:
//
//   - Straight-line code sums; branches (if, ?:, switch) take the
//     elementwise maximum over arms, which upper-bounds any single path.
//   - Counted `for` loops with a constant-foldable bound, constant step and
//     an untouched induction variable get a closed-form iteration count;
//     `for-of` over literals or range(k) likewise. Everything else is
//     statically unbounded and reported as PV012 (the runtime step budget
//     still caps it, but the planner cannot price it).
//   - Calls to the module's own top-level functions are inlined through a
//     memoized call-graph traversal; cycles are recursion, reported as
//     PV013 and unbounded. Calls through dynamic function values (locals,
//     parameters, members) are unboundable, also PV013.
//   - Host bindings and stdlib builtins execute in Go and cost zero
//     interpreter instructions; the pass instead records a worst-case
//     invocation count per callable name (HandlerCost.HostCalls). The
//     planner weights those counts with the Cost declared in the shared
//     signature table — DNN-backed calls such as call_service carry a
//     large Symbolic cost, since their true latency belongs to the
//     service, not the script.
//
// Both PV012 and PV013 are warnings: an unbounded handler is legal (the
// sandbox step budget protects the device) but opaque to cost-aware
// placement and to the instruction-limit governance this analysis feeds.

import (
	"fmt"
	"math"
	"sort"
)

// Handler names a CostReport entry can carry beyond the module-defined
// lifecycle callbacks.
const (
	// LoadHandler keys the cost of executing the module's top level once —
	// what Context.Load spends when the module is (re)deployed.
	LoadHandler = "(load)"
)

// UnboundedWeight is the planner weight of a handler whose cost the
// analysis could not bound. It dominates any realistic bounded weight
// without saturating int64 arithmetic in the planner's sums.
const UnboundedWeight = int64(1) << 40

// costCap saturates bound arithmetic: any bound that climbs past it stays
// pinned there, keeping deeply nested counted loops from overflowing.
const costCap = int64(1) << 50

// HandlerCost is the worst-case cost of one invocation of a module entry
// point.
type HandlerCost struct {
	// Name is the entry point: "event_received", "init" or LoadHandler.
	Name string
	// Pos locates the handler's definition (zero for LoadHandler).
	Pos Position
	// Bounded reports whether the analysis found a finite bound. When
	// false, Steps/Allocs are meaningless and Reasons explains why.
	Bounded bool
	// Steps bounds the interpreter instructions one invocation executes —
	// comparable to Context.LastInstructions.
	Steps int64
	// Allocs bounds the script values (arrays, objects, functions,
	// strings) one invocation allocates. Advisory: builtin allocation
	// behavior is approximated by a per-call estimate.
	Allocs int64
	// HostCalls bounds how many times each host binding or builtin can be
	// invoked, keyed by global name. Host calls run in Go and contribute
	// zero Steps; the planner prices them via the signature table's Cost.
	HostCalls map[string]int64
	// Reasons lists why the bound is unbounded (loop, recursion, dynamic
	// call), deduplicated, for diagnostics and reports.
	Reasons []string
}

// Weight folds a handler's cost into one scalar for the planner: the
// instruction bound plus every worst-case host/builtin invocation priced
// at its signature-table Cost (default 1). Unbounded handlers weigh
// UnboundedWeight.
func (h HandlerCost) Weight() int64 {
	if !h.Bounded {
		return UnboundedWeight
	}
	w := h.Steps
	for name, n := range h.HostCalls {
		cost := int64(1)
		if sig, ok := callSignatures[name]; ok && sig.Cost > 0 {
			cost = sig.Cost
		}
		w = satAdd(w, satMul(n, cost))
	}
	return w
}

// Symbolic reports whether the handler can invoke a host call whose cost
// is symbolic (DNN-backed, e.g. call_service) — the signal the planner
// uses to count a pipeline's heavy stages.
func (h HandlerCost) Symbolic() bool {
	for name, n := range h.HostCalls {
		if n <= 0 {
			continue
		}
		if sig, ok := callSignatures[name]; ok && sig.Symbolic {
			return true
		}
	}
	return false
}

// CostReport is the pipecost result for one module: worst-case bounds per
// entry point, sorted by name for determinism.
type CostReport struct {
	Handlers []HandlerCost
}

// Handler returns the named entry's cost.
func (r CostReport) Handler(name string) (HandlerCost, bool) {
	for _, h := range r.Handlers {
		if h.Name == name {
			return h, true
		}
	}
	return HandlerCost{}, false
}

// EventWeight is the planner weight of the module's event_received
// handler — the per-frame cost signal. Modules without a handler (pure
// sources analyzed standalone) weigh 1.
func (r CostReport) EventWeight() int64 {
	if h, ok := r.Handler("event_received"); ok {
		return h.Weight()
	}
	return 1
}

// EventSymbolic reports whether the event handler makes symbolic
// (DNN-backed) host calls.
func (r CostReport) EventSymbolic() bool {
	h, ok := r.Handler("event_received")
	return ok && h.Symbolic()
}

// AnalyzeCost parses src and runs only the pipecost pass, without the rest
// of the pipevet checks — the entry point planners use. Unparseable
// sources yield an empty report (deploy-time analysis rejects them
// separately).
func AnalyzeCost(src string) CostReport {
	prog, err := parse(src)
	if err != nil {
		return CostReport{}
	}
	report, _ := costPass(prog, CallSignatures(), nil)
	return report
}

// ---- bound arithmetic ----

// bound is the abstract cost value the pass propagates: either a finite
// (steps, allocs, per-callable counts) triple or "unbounded" with reasons.
type bound struct {
	ok     bool
	steps  int64
	allocs int64
	calls  map[string]int64
	// unbounded classification, used to pick PV012 vs PV013.
	reasons   []string
	recursion bool
	dynamic   bool
}

func finite(steps, allocs int64) bound { return bound{ok: true, steps: steps, allocs: allocs} }

func unboundedBy(reason string) bound { return bound{reasons: []string{reason}} }

func satAdd(a, b int64) int64 {
	if a > costCap-b {
		return costCap
	}
	return a + b
}

func satMul(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	if a > costCap/b {
		return costCap
	}
	return a * b
}

func mergeReasons(dst []string, src []string) []string {
	for _, r := range src {
		found := false
		for _, d := range dst {
			if d == r {
				found = true
				break
			}
		}
		if !found && len(dst) < 8 {
			dst = append(dst, r)
		}
	}
	return dst
}

// add sequences two bounds.
func (b bound) add(o bound) bound {
	if !b.ok || !o.ok {
		out := bound{
			reasons:   mergeReasons(append([]string(nil), b.reasons...), o.reasons),
			recursion: b.recursion || o.recursion,
			dynamic:   b.dynamic || o.dynamic,
		}
		return out
	}
	out := bound{ok: true, steps: satAdd(b.steps, o.steps), allocs: satAdd(b.allocs, o.allocs)}
	out.calls = mergeCalls(b.calls, o.calls, 1)
	return out
}

// addSteps adds a constant instruction cost.
func (b bound) addSteps(n int64) bound {
	if !b.ok {
		return b
	}
	b.steps = satAdd(b.steps, n)
	return b
}

// addAllocs adds a constant allocation cost.
func (b bound) addAllocs(n int64) bound {
	if !b.ok {
		return b
	}
	b.allocs = satAdd(b.allocs, n)
	return b
}

// addCall records one worst-case invocation of a host/builtin callable.
func (b bound) addCall(name string) bound {
	if !b.ok {
		return b
	}
	out := b
	out.calls = mergeCalls(b.calls, map[string]int64{name: 1}, 1)
	return out
}

// scale multiplies a bound by an iteration count.
func (b bound) scale(n int64) bound {
	if !b.ok {
		return b
	}
	if n <= 0 {
		return finite(0, 0)
	}
	out := bound{ok: true, steps: satMul(b.steps, n), allocs: satMul(b.allocs, n)}
	out.calls = mergeCalls(nil, b.calls, n)
	return out
}

// maxBound takes the elementwise maximum over two alternative paths — a
// sound upper bound for whichever path executes.
func maxBound(a, b bound) bound {
	if !a.ok || !b.ok {
		out := bound{
			reasons:   mergeReasons(append([]string(nil), a.reasons...), b.reasons),
			recursion: a.recursion || b.recursion,
			dynamic:   a.dynamic || b.dynamic,
		}
		return out
	}
	out := bound{ok: true, steps: a.steps, allocs: a.allocs}
	if b.steps > out.steps {
		out.steps = b.steps
	}
	if b.allocs > out.allocs {
		out.allocs = b.allocs
	}
	out.calls = maxCalls(a.calls, b.calls)
	return out
}

func mergeCalls(dst, src map[string]int64, factor int64) map[string]int64 {
	if len(src) == 0 {
		return cloneCalls(dst)
	}
	out := cloneCalls(dst)
	if out == nil {
		out = make(map[string]int64, len(src))
	}
	for name, n := range src {
		out[name] = satAdd(out[name], satMul(n, factor))
	}
	return out
}

func maxCalls(a, b map[string]int64) map[string]int64 {
	if len(a) == 0 && len(b) == 0 {
		return nil
	}
	out := cloneCalls(a)
	if out == nil {
		out = make(map[string]int64, len(b))
	}
	for name, n := range b {
		if n > out[name] {
			out[name] = n
		}
	}
	return out
}

func cloneCalls(m map[string]int64) map[string]int64 {
	if m == nil {
		return nil
	}
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// ---- the pass ----

// costPass analyzes the parsed program and returns the per-handler report
// plus the PV012/PV013 diagnostics it produced.
func costPass(prog *program, sigs map[string]Signature, globals []string) (CostReport, []Diagnostic) {
	ca := &costAnalysis{
		sigs:         sigs,
		globals:      make(map[string]bool, len(globals)),
		funcs:        make(map[string]*funcLit),
		funcPos:      make(map[string]Position),
		memo:         make(map[string]bound),
		state:        make(map[string]int),
		loopReported: make(map[Position]bool),
	}
	for _, g := range globals {
		ca.globals[g] = true
	}

	// Top-level function table; the last definition of a name wins, matching
	// the interpreter's load semantics.
	for _, s := range prog.stmts {
		switch st := s.(type) {
		case *funcDecl:
			ca.funcs[st.fn.name] = st.fn
			ca.funcPos[st.fn.name] = st.pos
		case *declStmt:
			if fn, ok := st.init.(*funcLit); ok {
				ca.funcs[st.name] = fn
				ca.funcPos[st.name] = st.pos
			}
		}
	}

	var report CostReport
	bounds := make(map[string]bound)

	// Module load: the top-level statements, once. Top-level names that are
	// not functions shadow same-named builtins for call resolution.
	loadLocals := make(map[string]bool)
	for _, s := range prog.stmts {
		if d, ok := s.(*declStmt); ok {
			if _, isFunc := d.init.(*funcLit); !isFunc {
				loadLocals[d.name] = true
			}
		}
	}
	load := finite(0, 0)
	for _, s := range prog.stmts {
		load = load.add(ca.stmtCost(s, loadLocals))
	}
	bounds[LoadHandler] = load
	report.Handlers = append(report.Handlers, ca.handlerCost(LoadHandler, Position{Line: 1, Col: 1}, load))

	// Lifecycle handlers.
	for _, name := range []string{"init", "event_received"} {
		fn, ok := ca.funcs[name]
		if !ok {
			continue
		}
		b := ca.functionCost(name, fn)
		bounds[name] = b
		report.Handlers = append(report.Handlers, ca.handlerCost(name, ca.funcPos[name], b))
	}

	sort.Slice(report.Handlers, func(i, j int) bool {
		return report.Handlers[i].Name < report.Handlers[j].Name
	})

	// PV013: handlers unboundable for a non-loop reason. Loop-caused
	// unboundedness is already positioned at the loop itself (PV012).
	for _, h := range report.Handlers {
		if h.Bounded {
			continue
		}
		b := bounds[h.Name]
		if b.recursion || b.dynamic {
			ca.diags = append(ca.diags, Diagnostic{
				Pos: h.Pos, Code: CodeUnboundableCost, Severity: SeverityWarning,
				Message: fmt.Sprintf("%s: worst-case cost is unboundable (%s); the planner cannot price this handler", handlerLabel(h.Name), joinReasons(h.Reasons)),
			})
		}
	}

	return report, ca.diags
}

// handlerLabel renders a handler name for diagnostics.
func handlerLabel(name string) string {
	if name == LoadHandler {
		return "module top level"
	}
	return name
}

func joinReasons(reasons []string) string {
	if len(reasons) == 0 {
		return "unknown"
	}
	out := reasons[0]
	for _, r := range reasons[1:] {
		out += "; " + r
	}
	return out
}

type costAnalysis struct {
	sigs    map[string]Signature
	globals map[string]bool
	funcs   map[string]*funcLit
	funcPos map[string]Position
	// memo caches per-function bounds; state tracks the DFS for recursion
	// detection (0 unvisited, 1 in progress, 2 done).
	memo  map[string]bound
	state map[string]int
	diags []Diagnostic
	// loopReported dedupes PV012 per loop position.
	loopReported map[Position]bool
}

func (ca *costAnalysis) handlerCost(name string, pos Position, b bound) HandlerCost {
	h := HandlerCost{Name: name, Pos: pos, Bounded: b.ok}
	if b.ok {
		h.Steps = b.steps
		h.Allocs = b.allocs
		h.HostCalls = cloneCalls(b.calls)
	} else {
		h.Reasons = append([]string(nil), b.reasons...)
	}
	return h
}

// functionCost computes (and memoizes) the cost of calling one top-level
// function, detecting recursion through the visiting state.
func (ca *costAnalysis) functionCost(name string, fn *funcLit) bound {
	switch ca.state[name] {
	case 2:
		return ca.memo[name]
	case 1:
		b := unboundedBy(fmt.Sprintf("recursion through %q", name))
		b.recursion = true
		return b
	}
	ca.state[name] = 1

	locals := make(map[string]bool, len(fn.params))
	for _, p := range fn.params {
		locals[p] = true
	}
	locals["arguments"] = true
	collectDeclaredNames(fn.body.stmts, locals)

	// Calling a script function allocates its `arguments` array; the body
	// statements execute via execStmt with no extra call-frame step.
	b := finite(0, 1)
	for _, s := range fn.body.stmts {
		b = b.add(ca.stmtCost(s, locals))
	}

	ca.state[name] = 2
	ca.memo[name] = b
	return b
}

// collectDeclaredNames gathers every name a statement list declares,
// including nested blocks (not nested function bodies — pessimistically
// close enough: a declaration anywhere in the function makes same-named
// calls dynamic).
func collectDeclaredNames(list []stmt, into map[string]bool) {
	for _, s := range list {
		switch st := s.(type) {
		case *declStmt:
			if _, isFunc := st.init.(*funcLit); !isFunc {
				into[st.name] = true
			}
		case *blockStmt:
			collectDeclaredNames(st.stmts, into)
		case *ifStmt:
			collectDeclaredNames([]stmt{st.then}, into)
			if st.elsE != nil {
				collectDeclaredNames([]stmt{st.elsE}, into)
			}
		case *whileStmt:
			collectDeclaredNames([]stmt{st.body}, into)
		case *forStmt:
			if st.init != nil {
				collectDeclaredNames([]stmt{st.init}, into)
			}
			collectDeclaredNames([]stmt{st.body}, into)
		case *forOfStmt:
			into[st.varName] = true
			collectDeclaredNames([]stmt{st.body}, into)
		case *tryStmt:
			collectDeclaredNames(st.body.stmts, into)
			if st.catch != nil {
				if st.catchVar != "" {
					into[st.catchVar] = true
				}
				collectDeclaredNames(st.catch.stmts, into)
			}
			if st.finally != nil {
				collectDeclaredNames(st.finally.stmts, into)
			}
		case *switchStmt:
			for _, c := range st.cases {
				collectDeclaredNames(c.body, into)
			}
			collectDeclaredNames(st.defaultBody, into)
		case *funcDecl:
			// A nested function declaration shadows; calls to it through
			// the local name are dynamic for this analysis.
			into[st.fn.name] = true
		}
	}
}

// ---- statement costs ----
//
// Each case mirrors interp.go's execStmt step accounting exactly: every
// statement charges 1 on entry, plus its parts.

func (ca *costAnalysis) stmtCost(s stmt, locals map[string]bool) bound {
	one := finite(1, 0)
	switch st := s.(type) {
	case *exprStmt:
		return one.add(ca.exprCost(st.x, locals))
	case *declStmt:
		b := one
		if st.init != nil {
			b = b.add(ca.exprCost(st.init, locals))
		}
		return b
	case *blockStmt:
		b := one
		for _, inner := range st.stmts {
			b = b.add(ca.stmtCost(inner, locals))
		}
		return b
	case *ifStmt:
		b := one.add(ca.condCost(st.cond, locals))
		thenB := ca.stmtCost(st.then, locals)
		var elseB bound
		elseB = finite(0, 0)
		if st.elsE != nil {
			elseB = ca.stmtCost(st.elsE, locals)
		}
		return b.add(maxBound(thenB, elseB))
	case *whileStmt:
		return ca.whileCost(st, locals)
	case *forStmt:
		return ca.forCost(st, locals)
	case *forOfStmt:
		return ca.forOfCost(st, locals)
	case *returnStmt:
		b := one
		if st.value != nil {
			b = b.add(ca.exprCost(st.value, locals))
		}
		return b
	case *breakStmt, *continueStmt:
		return one
	case *throwStmt:
		return one.add(ca.exprCost(st.value, locals))
	case *tryStmt:
		// Worst case: the body runs fully, then the catch runs fully (the
		// throw can land on the last body statement), then finally.
		b := one.add(ca.stmtCost(st.body, locals))
		if st.catch != nil {
			for _, inner := range st.catch.stmts {
				b = b.add(ca.stmtCost(inner, locals))
			}
		}
		if st.finally != nil {
			b = b.add(ca.stmtCost(st.finally, locals))
		}
		return b
	case *switchStmt:
		// Worst case evaluates every case value; a match can fall through
		// every case body, a miss runs the default.
		b := one.add(ca.exprCost(st.subject, locals))
		var bodies bound
		bodies = finite(0, 0)
		for _, c := range st.cases {
			b = b.add(ca.exprCost(c.value, locals))
			for _, inner := range c.body {
				bodies = bodies.add(ca.stmtCost(inner, locals))
			}
		}
		var def bound
		def = finite(0, 0)
		for _, inner := range st.defaultBody {
			def = def.add(ca.stmtCost(inner, locals))
		}
		return b.add(maxBound(bodies, def))
	case *funcDecl:
		return one.addAllocs(1)
	default:
		return one
	}
}

// condCost is exprCost; conditions have no extra interpreter charge.
func (ca *costAnalysis) condCost(e expr, locals map[string]bool) bound {
	return ca.exprCost(e, locals)
}

// whileCost: only a constant-false condition terminates provably without
// body execution; every other while loop is statically unbounded (PV012).
func (ca *costAnalysis) whileCost(st *whileStmt, locals map[string]bool) bound {
	cond := ca.condCost(st.cond, locals)
	if v, ok := foldConst(st.cond); ok && v == 0 {
		// One iteration check, body never runs: 1 (stmt) + 1 (head) + cond.
		return finite(2, 0).add(cond)
	}
	ca.reportLoop(st.pos, "while loop has no statically inferable iteration bound")
	// Walk the body anyway so nested diagnostics (inner loops, recursion)
	// still surface.
	ca.stmtCost(st.body, locals)
	b := unboundedBy("while loop at " + st.pos.String())
	return b
}

// forCost handles the counted-loop pattern: `for (var i = S; i (<|<=|>|>=) K; i += d)`
// with S, K, d constant-foldable and i never written in the body.
func (ca *costAnalysis) forCost(st *forStmt, locals map[string]bool) bound {
	n, ok := inferForIterations(st)
	if !ok {
		ca.reportLoop(st.pos, "for loop bound cannot be inferred statically (need constant init, bound and step, with an untouched induction variable)")
		if st.init != nil {
			ca.stmtCost(st.init, locals)
		}
		if st.cond != nil {
			ca.condCost(st.cond, locals)
		}
		ca.stmtCost(st.body, locals)
		if st.post != nil {
			ca.exprCost(st.post, locals)
		}
		return unboundedBy("for loop at " + st.pos.String())
	}

	b := finite(1, 0)
	if st.init != nil {
		b = b.add(ca.stmtCost(st.init, locals))
	}
	var cond bound
	cond = finite(0, 0)
	if st.cond != nil {
		cond = ca.condCost(st.cond, locals)
	}
	body := ca.stmtCost(st.body, locals)
	var post bound
	post = finite(0, 0)
	if st.post != nil {
		post = ca.exprCost(st.post, locals)
	}
	// Each of the n iterations charges the head step, the condition, the
	// body and the post; the final (failing) check charges head + cond.
	perIter := finite(1, 0).add(cond).add(body).add(post)
	return b.add(perIter.scale(n)).add(finite(1, 0)).add(cond)
}

// forOfCost bounds iteration over literal collections and range(k).
func (ca *costAnalysis) forOfCost(st *forOfStmt, locals map[string]bool) bound {
	n, ok := ca.inferIterableLen(st.iter, locals)
	if !ok {
		ca.reportLoop(st.pos, "for-of iterates a value whose length is not statically known")
		ca.exprCost(st.iter, locals)
		ca.stmtCost(st.body, locals)
		return unboundedBy("for-of loop at " + st.pos.String())
	}
	b := finite(1, 0).add(ca.exprCost(st.iter, locals))
	body := ca.stmtCost(st.body, locals)
	// Each item charges the head step plus the body; string iteration can
	// allocate one value per rune, so charge one alloc per item.
	perIter := finite(1, 1).add(body)
	return b.add(perIter.scale(n))
}

func (ca *costAnalysis) reportLoop(pos Position, msg string) {
	if ca.loopReported[pos] {
		return
	}
	ca.loopReported[pos] = true
	ca.diags = append(ca.diags, Diagnostic{
		Pos: pos, Code: CodeUnboundedLoop, Severity: SeverityWarning, Message: msg,
	})
}

// ---- expression costs ----
//
// Mirrors evalExpr: every expression node charges 1, plus its parts.

func (ca *costAnalysis) exprCost(e expr, locals map[string]bool) bound {
	one := finite(1, 0)
	switch ex := e.(type) {
	case *numberLit, *stringLit, *boolLit, *nullLit, *identExpr:
		return one
	case *arrayLit:
		b := one.addAllocs(1)
		for _, el := range ex.elems {
			b = b.add(ca.exprCost(el, locals))
		}
		return b
	case *objectLit:
		b := one.addAllocs(1)
		for _, f := range ex.fields {
			b = b.add(ca.exprCost(f.value, locals))
		}
		return b
	case *funcLit:
		return one.addAllocs(1)
	case *unaryExpr:
		return one.add(ca.exprCost(ex.x, locals))
	case *binaryExpr:
		b := one.add(ca.exprCost(ex.x, locals)).add(ca.exprCost(ex.y, locals))
		if ex.op == "+" {
			// String concatenation allocates; numeric + does not, but the
			// operand types are dynamic — charge the worst case.
			b = b.addAllocs(1)
		}
		return b
	case *logicalExpr:
		return one.add(ca.exprCost(ex.x, locals)).add(ca.exprCost(ex.y, locals))
	case *condExpr:
		b := one.add(ca.condCost(ex.cond, locals))
		return b.add(maxBound(ca.exprCost(ex.then, locals), ca.exprCost(ex.elsE, locals)))
	case *assignExpr:
		b := one.add(ca.exprCost(ex.value, locals))
		if ex.op != "=" {
			// Compound assignment reads the target first.
			b = b.add(ca.exprCost(ex.target, locals))
			if ex.op == "+=" {
				b = b.addAllocs(1)
			}
		}
		return b.add(ca.writeCost(ex.target, locals))
	case *updateExpr:
		return one.add(ca.exprCost(ex.target, locals)).add(ca.writeCost(ex.target, locals))
	case *callExpr:
		return ca.callCost(ex, locals)
	case *memberExpr:
		return one.add(ca.exprCost(ex.obj, locals))
	case *indexExpr:
		return one.add(ca.exprCost(ex.obj, locals)).add(ca.exprCost(ex.index, locals))
	default:
		return one
	}
}

// writeCost mirrors interp.writeTarget: identifier writes are free beyond
// the expression's own evaluation; member/index writes re-evaluate their
// object (and index) expressions.
func (ca *costAnalysis) writeCost(target expr, locals map[string]bool) bound {
	switch tg := target.(type) {
	case *memberExpr:
		return ca.exprCost(tg.obj, locals)
	case *indexExpr:
		// Index assignment into an array may grow it.
		return ca.exprCost(tg.obj, locals).add(ca.exprCost(tg.index, locals)).addAllocs(1)
	default:
		return finite(0, 0)
	}
}

// callCost resolves the callee: module functions inline their memoized
// cost, host/builtin names record an invocation, everything else is
// dynamic and unboundable.
func (ca *costAnalysis) callCost(ex *callExpr, locals map[string]bool) bound {
	// The call expression itself plus argument evaluation.
	b := finite(1, 0)
	for _, arg := range ex.args {
		b = b.add(ca.exprCost(arg, locals))
	}

	id, ok := ex.callee.(*identExpr)
	if !ok {
		b = b.add(ca.exprCost(ex.callee, locals))
		dyn := unboundedBy(fmt.Sprintf("dynamic call at %s", ex.pos))
		dyn.dynamic = true
		return b.add(dyn)
	}
	// Callee identifier evaluation.
	b = b.addSteps(1)

	if locals[id.name] {
		dyn := unboundedBy(fmt.Sprintf("call through local function value %q at %s", id.name, ex.pos))
		dyn.dynamic = true
		return b.add(dyn)
	}
	if fn, isFunc := ca.funcs[id.name]; isFunc {
		return b.add(ca.functionCost(id.name, fn))
	}
	if _, isSig := ca.sigs[id.name]; isSig || ca.globals[id.name] {
		// Host bindings and builtins execute in Go: zero interpreter steps.
		return b.addCall(id.name).addAllocs(builtinAllocCost(id.name))
	}
	// Unknown name: PV001 territory; cost-wise it cannot be priced.
	dyn := unboundedBy(fmt.Sprintf("call to unresolvable callee %q at %s", id.name, ex.pos))
	dyn.dynamic = true
	return b.add(dyn)
}

// builtinAllocCost estimates the script values a host/builtin call
// allocates (advisory; see HandlerCost.Allocs).
func builtinAllocCost(name string) int64 {
	switch name {
	case "str", "push", "unshift", "slice", "concat", "reverse", "sort", "range",
		"keys", "values", "split", "substr", "upper", "lower", "trim", "join",
		"json_encode", "json_decode", "call_service":
		return 1
	}
	return 0
}

// ---- loop-bound inference ----

// inferForIterations matches the counted-loop idiom and returns the number
// of body executions.
func inferForIterations(st *forStmt) (int64, bool) {
	if st.init == nil || st.cond == nil || st.post == nil {
		return 0, false
	}

	// Induction variable and start value.
	var iv string
	var start float64
	switch init := st.init.(type) {
	case *declStmt:
		v, ok := foldConst(init.init)
		if !ok {
			return 0, false
		}
		iv, start = init.name, v
	case *exprStmt:
		as, ok := init.x.(*assignExpr)
		if !ok || as.op != "=" {
			return 0, false
		}
		id, ok := as.target.(*identExpr)
		if !ok {
			return 0, false
		}
		v, ok := foldConst(as.value)
		if !ok {
			return 0, false
		}
		iv, start = id.name, v
	default:
		return 0, false
	}

	// Condition: iv OP const (or const OP iv, mirrored).
	cmp, ok := st.cond.(*binaryExpr)
	if !ok {
		return 0, false
	}
	op := cmp.op
	var limit float64
	if id, isID := cmp.x.(*identExpr); isID && id.name == iv {
		v, okc := foldConst(cmp.y)
		if !okc {
			return 0, false
		}
		limit = v
	} else if id, isID := cmp.y.(*identExpr); isID && id.name == iv {
		v, okc := foldConst(cmp.x)
		if !okc {
			return 0, false
		}
		limit = v
		// Mirror: `K > i` is `i < K`, etc.
		switch op {
		case "<":
			op = ">"
		case "<=":
			op = ">="
		case ">":
			op = "<"
		case ">=":
			op = "<="
		default:
			return 0, false
		}
	} else {
		return 0, false
	}

	// Step: i++, i--, i += c, i -= c, i = i + c, i = i - c, i = c + i.
	step, ok := inferStep(st.post, iv)
	if !ok || step == 0 {
		return 0, false
	}

	// The body (and the post beyond the recognized update) must not write
	// the induction variable.
	if stmtWrites(st.body, iv) {
		return 0, false
	}

	return iterationsFor(start, limit, step, op)
}

// inferStep extracts the per-iteration increment applied to iv.
func inferStep(post expr, iv string) (float64, bool) {
	switch p := post.(type) {
	case *updateExpr:
		id, ok := p.target.(*identExpr)
		if !ok || id.name != iv {
			return 0, false
		}
		if p.op == "++" {
			return 1, true
		}
		return -1, true
	case *assignExpr:
		id, ok := p.target.(*identExpr)
		if !ok || id.name != iv {
			return 0, false
		}
		switch p.op {
		case "+=":
			v, okc := foldConst(p.value)
			return v, okc
		case "-=":
			v, okc := foldConst(p.value)
			return -v, okc
		case "=":
			bin, okb := p.value.(*binaryExpr)
			if !okb {
				return 0, false
			}
			switch bin.op {
			case "+":
				if lid, isID := bin.x.(*identExpr); isID && lid.name == iv {
					v, okc := foldConst(bin.y)
					return v, okc
				}
				if rid, isID := bin.y.(*identExpr); isID && rid.name == iv {
					v, okc := foldConst(bin.x)
					return v, okc
				}
			case "-":
				if lid, isID := bin.x.(*identExpr); isID && lid.name == iv {
					v, okc := foldConst(bin.y)
					return -v, okc
				}
			}
		}
	}
	return 0, false
}

// iterationsFor solves the closed form, rejecting diverging combinations.
func iterationsFor(start, limit, step float64, op string) (int64, bool) {
	if math.IsNaN(start) || math.IsNaN(limit) || math.IsNaN(step) ||
		math.IsInf(start, 0) || math.IsInf(limit, 0) || math.IsInf(step, 0) {
		return 0, false
	}
	var n float64
	switch op {
	case "<":
		if step <= 0 {
			return 0, false
		}
		n = math.Ceil((limit - start) / step)
	case "<=":
		if step <= 0 {
			return 0, false
		}
		n = math.Floor((limit-start)/step) + 1
	case ">":
		if step >= 0 {
			return 0, false
		}
		n = math.Ceil((start - limit) / -step)
	case ">=":
		if step >= 0 {
			return 0, false
		}
		n = math.Floor((start-limit)/-step) + 1
	default:
		return 0, false
	}
	if n <= 0 {
		return 0, true
	}
	if n > float64(costCap) {
		return costCap, true
	}
	return int64(n), true
}

// stmtWrites reports whether any statement (including nested function
// literals, pessimistically) assigns to name.
func stmtWrites(s stmt, name string) bool {
	switch st := s.(type) {
	case nil:
		return false
	case *exprStmt:
		return exprWrites(st.x, name)
	case *declStmt:
		// Redeclaring the induction variable in the body shadows it; give
		// up rather than model block scoping.
		return st.name == name || (st.init != nil && exprWrites(st.init, name))
	case *blockStmt:
		for _, inner := range st.stmts {
			if stmtWrites(inner, name) {
				return true
			}
		}
	case *ifStmt:
		return exprWrites(st.cond, name) || stmtWrites(st.then, name) || stmtWrites(st.elsE, name)
	case *whileStmt:
		return exprWrites(st.cond, name) || stmtWrites(st.body, name)
	case *forStmt:
		return stmtWrites(st.init, name) || exprWrites(st.cond, name) ||
			exprWrites(st.post, name) || stmtWrites(st.body, name)
	case *forOfStmt:
		return st.varName == name || exprWrites(st.iter, name) || stmtWrites(st.body, name)
	case *returnStmt:
		return exprWrites(st.value, name)
	case *throwStmt:
		return exprWrites(st.value, name)
	case *tryStmt:
		if stmtWrites(st.body, name) {
			return true
		}
		if st.catch != nil && (st.catchVar == name || stmtWrites(st.catch, name)) {
			return true
		}
		return st.finally != nil && stmtWrites(st.finally, name)
	case *switchStmt:
		if exprWrites(st.subject, name) {
			return true
		}
		for _, c := range st.cases {
			if exprWrites(c.value, name) {
				return true
			}
			for _, inner := range c.body {
				if stmtWrites(inner, name) {
					return true
				}
			}
		}
		for _, inner := range st.defaultBody {
			if stmtWrites(inner, name) {
				return true
			}
		}
	case *funcDecl:
		return st.fn.name == name || stmtWrites(st.fn.body, name)
	}
	return false
}

func exprWrites(e expr, name string) bool {
	switch ex := e.(type) {
	case nil:
		return false
	case *assignExpr:
		if id, ok := ex.target.(*identExpr); ok && id.name == name {
			return true
		}
		return exprWrites(ex.target, name) || exprWrites(ex.value, name)
	case *updateExpr:
		if id, ok := ex.target.(*identExpr); ok && id.name == name {
			return true
		}
		return exprWrites(ex.target, name)
	case *unaryExpr:
		return exprWrites(ex.x, name)
	case *binaryExpr:
		return exprWrites(ex.x, name) || exprWrites(ex.y, name)
	case *logicalExpr:
		return exprWrites(ex.x, name) || exprWrites(ex.y, name)
	case *condExpr:
		return exprWrites(ex.cond, name) || exprWrites(ex.then, name) || exprWrites(ex.elsE, name)
	case *callExpr:
		if exprWrites(ex.callee, name) {
			return true
		}
		for _, arg := range ex.args {
			if exprWrites(arg, name) {
				return true
			}
		}
	case *memberExpr:
		return exprWrites(ex.obj, name)
	case *indexExpr:
		return exprWrites(ex.obj, name) || exprWrites(ex.index, name)
	case *arrayLit:
		for _, el := range ex.elems {
			if exprWrites(el, name) {
				return true
			}
		}
	case *objectLit:
		for _, f := range ex.fields {
			if exprWrites(f.value, name) {
				return true
			}
		}
	case *funcLit:
		// The closure could run inside the loop and write the variable.
		return stmtWrites(ex.body, name)
	}
	return false
}

// inferIterableLen bounds the element count of a for-of iterable. Builtin
// calls (range, keys, values) only count when the name still resolves to
// the builtin — a local or module function shadowing it defeats inference.
func (ca *costAnalysis) inferIterableLen(e expr, locals map[string]bool) (int64, bool) {
	switch ex := e.(type) {
	case *arrayLit:
		return int64(len(ex.elems)), true
	case *objectLit:
		return int64(len(ex.fields)), true
	case *stringLit:
		n := int64(0)
		for range ex.value {
			n++
		}
		return n, true
	case *callExpr:
		id, ok := ex.callee.(*identExpr)
		if !ok || len(ex.args) != 1 {
			return 0, false
		}
		if locals[id.name] {
			return 0, false
		}
		if _, shadowed := ca.funcs[id.name]; shadowed {
			return 0, false
		}
		switch id.name {
		case "range":
			// range(K) with a constant K yields exactly K items.
			if v, okc := foldConst(ex.args[0]); okc {
				if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
					return 0, false
				}
				if v > float64(costCap) {
					return costCap, true
				}
				return int64(v), true
			}
		case "keys", "values":
			// keys/values of an object literal yield one item per field.
			if obj, okc := ex.args[0].(*objectLit); okc {
				return int64(len(obj.fields)), true
			}
		}
	}
	return 0, false
}

// foldConst evaluates constant numeric expressions: literals, unary minus,
// and the four arithmetic operators over constants.
func foldConst(e expr) (float64, bool) {
	switch ex := e.(type) {
	case *numberLit:
		return ex.value, true
	case *boolLit:
		if ex.value {
			return 1, true
		}
		return 0, true
	case *unaryExpr:
		if ex.op == "-" {
			v, ok := foldConst(ex.x)
			return -v, ok
		}
	case *binaryExpr:
		x, okx := foldConst(ex.x)
		y, oky := foldConst(ex.y)
		if !okx || !oky {
			return 0, false
		}
		switch ex.op {
		case "+":
			return x + y, true
		case "-":
			return x - y, true
		case "*":
			return x * y, true
		case "/":
			if y == 0 {
				return 0, false
			}
			return x / y, true
		case "%":
			if y == 0 {
				return 0, false
			}
			return math.Mod(x, y), true
		}
	}
	return 0, false
}
