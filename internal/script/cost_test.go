package script

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestCostGoldenCorpus drives the testdata/cost corpus: each file's first
// line declares the PV012/PV013 codes it must (and must only) trigger,
// `// expect: PV012 PV013` or `// expect: none`.
func TestCostGoldenCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "cost", "*.js"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 5 {
		t.Fatalf("corpus too small: %d files", len(files))
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			first, _, _ := strings.Cut(src, "\n")
			spec, ok := strings.CutPrefix(strings.TrimSpace(first), "// expect:")
			if !ok {
				t.Fatalf("first line must be an `// expect:` header, got %q", first)
			}
			want := map[string]bool{}
			for _, code := range strings.Fields(spec) {
				if code != "none" {
					want[code] = true
				}
			}

			rep := Analyze(src, Options{})
			got := map[string]bool{}
			for _, d := range rep.Diagnostics {
				if d.Code == CodeUnboundedLoop || d.Code == CodeUnboundableCost {
					got[d.Code] = true
					if d.Severity != SeverityWarning {
						t.Errorf("%s must be a warning, got %v", d.Code, d.Severity)
					}
				}
			}
			for code := range want {
				if !got[code] {
					t.Errorf("expected %s, not reported; diagnostics: %v", code, rep.Diagnostics)
				}
			}
			for code := range got {
				if !want[code] {
					t.Errorf("unexpected %s; diagnostics: %v", code, rep.Diagnostics)
				}
			}

			// Cross-check the report's view: a corpus file expecting cost
			// diagnostics must have an unbounded event handler, a clean one
			// must be fully bounded.
			h, okH := rep.Cost.Handler("event_received")
			if !okH {
				t.Fatal("corpus file defines no event_received")
			}
			if len(want) == 0 && !h.Bounded {
				t.Errorf("handler should be bounded, reasons: %v", h.Reasons)
			}
			if len(want) > 0 && h.Bounded {
				t.Errorf("handler should be unbounded (steps=%d)", h.Steps)
			}
		})
	}
}

// costStub binds the host API so corpus sources can actually run; the
// interpreter's measured step count is then compared with the static
// bound.
func costStub(ctx *Context) {
	ctx.Bind("call_service", func(args []Value) (Value, error) {
		r := NewObject()
		r.Set("found", true)
		r.Set("confidence", 0.9)
		r.Set("pose", "squat")
		return r, nil
	})
	ctx.Bind("call_module", func(args []Value) (Value, error) { return nil, nil })
	ctx.Bind("metric", func(args []Value) (Value, error) { return nil, nil })
	ctx.Bind("log", func(args []Value) (Value, error) { return nil, nil })
	ctx.Bind("now_ms", func(args []Value) (Value, error) { return float64(12345), nil })
	ctx.Bind("frame_done", func(args []Value) (Value, error) { return nil, nil })
	ctx.Bind("device_name", func(args []Value) (Value, error) { return "phone", nil })
}

// TestCostSoundnessOnCorpus checks static >= measured for every bounded
// handler in the corpus, driving event_received with a representative
// message.
func TestCostSoundnessOnCorpus(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("testdata", "cost", "*.js"))
	if err != nil {
		t.Fatal(err)
	}
	for _, file := range files {
		t.Run(filepath.Base(file), func(t *testing.T) {
			data, err := os.ReadFile(file)
			if err != nil {
				t.Fatal(err)
			}
			src := string(data)
			rep := Analyze(src, Options{})

			ctx := NewContext()
			costStub(ctx)
			if err := ctx.Load(src); err != nil {
				t.Fatalf("load: %v", err)
			}
			if h, ok := rep.Cost.Handler(LoadHandler); ok && h.Bounded {
				if got := ctx.LastInstructions(); got > h.Steps {
					t.Errorf("load: measured %d > static bound %d", got, h.Steps)
				}
			}

			h, ok := rep.Cost.Handler("event_received")
			if !ok || !h.Bounded {
				return
			}
			for seq := 0; seq < 10; seq++ {
				msg := NewObject()
				msg.Set("frame_ref", "f1")
				msg.Set("seq", float64(seq))
				msg.Set("count", float64(seq*3))
				msg.Set("skip", seq%2 == 0)
				msg.Set("heavy", seq%2 == 1)
				if _, err := ctx.Call("event_received", msg); err != nil {
					t.Fatalf("event %d: %v", seq, err)
				}
				if got := ctx.LastInstructions(); got > h.Steps {
					t.Errorf("event %d: measured %d > static bound %d", seq, got, h.Steps)
				}
			}
		})
	}
}

// TestCostExactness pins the static bound to the measured count on
// branch-free code — the bound should be tight there, catching model
// drift in either direction.
func TestCostExactness(t *testing.T) {
	src := `var count = 0;
function event_received(message) {
  count = count + 1;
  var x = count * 2 + message.seq;
  metric("x", x);
  frame_done();
}`
	rep := Analyze(src, Options{})
	h, ok := rep.Cost.Handler("event_received")
	if !ok || !h.Bounded {
		t.Fatalf("handler not bounded: %+v", h)
	}

	ctx := NewContext()
	costStub(ctx)
	if err := ctx.Load(src); err != nil {
		t.Fatal(err)
	}
	msg := NewObject()
	msg.Set("seq", float64(7))
	if _, err := ctx.Call("event_received", msg); err != nil {
		t.Fatal(err)
	}
	if got := ctx.LastInstructions(); got != h.Steps {
		t.Errorf("straight-line bound not tight: static %d, measured %d", h.Steps, got)
	}
}

// TestCostCountedLoopTight pins the bound on a constant counted loop.
func TestCostCountedLoopTight(t *testing.T) {
	src := `function event_received(message) {
  var sum = 0;
  for (var i = 0; i < 16; i++) {
    sum += i;
  }
  metric("sum", sum);
  frame_done();
}`
	rep := Analyze(src, Options{})
	h, ok := rep.Cost.Handler("event_received")
	if !ok || !h.Bounded {
		t.Fatalf("handler not bounded: %+v", h)
	}
	ctx := NewContext()
	costStub(ctx)
	if err := ctx.Load(src); err != nil {
		t.Fatal(err)
	}
	if _, err := ctx.Call("event_received", NewObject()); err != nil {
		t.Fatal(err)
	}
	if got := ctx.LastInstructions(); got != h.Steps {
		t.Errorf("counted-loop bound not tight: static %d, measured %d", h.Steps, got)
	}
}

// TestCostWeight checks the planner-facing scalar: host calls priced from
// the signature table, symbolic detection, unbounded domination.
func TestCostWeight(t *testing.T) {
	light := AnalyzeCost(`function event_received(message) { log(message.seq); frame_done(); }`)
	heavy := AnalyzeCost(`function event_received(message) {
  var r = call_service("pose_detector", {frame_ref: message.frame_ref});
  call_module("next", {pose: r.pose});
}`)
	if light.EventSymbolic() {
		t.Error("light handler should not be symbolic")
	}
	if !heavy.EventSymbolic() {
		t.Error("call_service handler should be symbolic")
	}
	lw, hw := light.EventWeight(), heavy.EventWeight()
	if lw <= 0 || hw <= 0 {
		t.Fatalf("weights must be positive: light %d, heavy %d", lw, hw)
	}
	if hw <= lw {
		t.Errorf("call_service must dominate: light %d, heavy %d", lw, hw)
	}
	if sig := callSignatures["call_service"]; hw < sig.Cost {
		t.Errorf("heavy weight %d below call_service cost %d", hw, sig.Cost)
	}

	unbounded := AnalyzeCost(`function event_received(message) { while (message.go) { log(1); } }`)
	if w := unbounded.EventWeight(); w != UnboundedWeight {
		t.Errorf("unbounded weight = %d, want UnboundedWeight", w)
	}

	// Loop scaling: 100 iterations of a metric call must weigh roughly
	// 100x the single call.
	looped := AnalyzeCost(`function event_received(message) {
  for (var i = 0; i < 100; i++) { metric("i", i); }
  frame_done();
}`)
	h, _ := looped.Handler("event_received")
	if n := h.HostCalls["metric"]; n != 100 {
		t.Errorf("metric call bound = %d, want 100", n)
	}
}

// TestCostAllocs sanity-checks the advisory allocation bound.
func TestCostAllocs(t *testing.T) {
	rep := AnalyzeCost(`function event_received(message) {
  var box = {x: 1, y: 2};
  var pts = [box, box];
  var label = "p" + message.seq;
  log(label, pts);
  frame_done();
}`)
	h, ok := rep.Handler("event_received")
	if !ok || !h.Bounded {
		t.Fatalf("handler not bounded: %+v", h)
	}
	// At least: arguments array, object literal, array literal, concat.
	if h.Allocs < 4 {
		t.Errorf("allocation bound %d too small", h.Allocs)
	}
}

// TestCostShadowedBuiltin: a module function shadowing a builtin must not
// be priced as the builtin (that would be unsound if it recursed).
func TestCostShadowedBuiltin(t *testing.T) {
	rep := AnalyzeCost(`function range(n) { return range(n); }
function event_received(message) {
  for (x of range(3)) { log(x); }
  frame_done();
}`)
	h, ok := rep.Handler("event_received")
	if !ok {
		t.Fatal("no handler")
	}
	if h.Bounded {
		t.Error("for-of over shadowed recursive range() must be unbounded")
	}
}

// TestAnalyzeCostUnparseable: bad sources yield an empty report, not a
// panic.
func TestAnalyzeCostUnparseable(t *testing.T) {
	rep := AnalyzeCost("function ( {")
	if len(rep.Handlers) != 0 {
		t.Errorf("want empty report, got %+v", rep.Handlers)
	}
}
