package script

import "fmt"

// RuntimeError is a script execution failure (including uncaught script
// throws) with the source position where it occurred.
type RuntimeError struct {
	Pos Position
	Msg string
	// Thrown holds the script value for errors raised by throw statements;
	// nil for interpreter-generated errors.
	Thrown Value
}

// Error satisfies the error interface.
func (e *RuntimeError) Error() string {
	return fmt.Sprintf("script: runtime error at %s: %s", e.Pos, e.Msg)
}

// binding is one variable slot.
type binding struct {
	value    Value
	constant bool
}

// environment is a lexical scope chain node.
type environment struct {
	vars   map[string]*binding
	parent *environment
}

func newEnvironment(parent *environment) *environment {
	return &environment{vars: make(map[string]*binding), parent: parent}
}

// define creates a new binding in this scope, shadowing outer scopes.
func (e *environment) define(name string, v Value, constant bool) {
	e.vars[name] = &binding{value: v, constant: constant}
}

// lookup finds the binding for name, walking the scope chain.
func (e *environment) lookup(name string) (*binding, bool) {
	for s := e; s != nil; s = s.parent {
		if b, ok := s.vars[name]; ok {
			return b, true
		}
	}
	return nil, false
}
