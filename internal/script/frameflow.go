package script

// PV011: the script-level mirror of vpvet's framerelease check. An
// event_received handler holds the incoming frame's flow-control credit
// (and usually a frame_ref) until it either drops the frame with
// frame_done() or forwards it downstream with call_module(...). A path
// that performs a call_service — the module is clearly still working on
// the frame — and then falls off the handler without doing either leaves
// the frame stranded: the credit never returns to the source and the
// pipeline's window shrinks by one forever.
//
// The analysis is intra-procedural and pessimistic at merges (a frame is
// resolved only when every surviving path resolved it), with one
// indirection allowance: calling a top-level helper function whose body
// itself calls frame_done or call_module counts as resolving. throw paths
// are exempt — the runtime's abandoned-frame hook reclaims the credit
// when an event fails (internal/device/module.go).

// flowPend is the per-path set of call_service positions whose frame
// reference has not been forwarded or dropped yet.
type flowPend []Position

func clonePend(p flowPend) flowPend {
	return append(flowPend(nil), p...)
}

func unionPend(a, b flowPend) flowPend {
	out := clonePend(a)
	for _, p := range b {
		out = addPend(out, p)
	}
	return out
}

func addPend(pend flowPend, pos Position) flowPend {
	for _, p := range pend {
		if p == pos {
			return pend
		}
	}
	return append(pend, pos)
}

// frameFlow runs the PV011 check over the module's top-level
// event_received handler, if any.
func (a *analyzer) frameFlow(prog *program) {
	resolvers := map[string]bool{}
	var handler *funcLit
	for _, s := range prog.stmts {
		var name string
		var fn *funcLit
		switch st := s.(type) {
		case *funcDecl:
			name, fn = st.fn.name, st.fn
		case *declStmt:
			if fl, ok := st.init.(*funcLit); ok {
				name, fn = st.name, fl
			}
		}
		if fn == nil {
			continue
		}
		if name == "event_received" {
			handler = fn
			continue
		}
		// A helper that drops or forwards the frame resolves it for its
		// caller.
		if stmtsResolveFrame(fn.body.stmts) {
			resolvers[name] = true
		}
	}
	if handler == nil {
		return
	}
	f := &frameFlowChecker{a: a, resolvers: resolvers, reported: map[Position]bool{}}
	pend, term := f.walkStmts(handler.body.stmts, nil)
	if !term {
		f.exit(pend)
	}
}

type frameFlowChecker struct {
	a         *analyzer
	resolvers map[string]bool
	reported  map[Position]bool // dedupes one call_service reported from several exits
}

// exit reports every call_service whose frame is still pending when the
// handler returns.
func (f *frameFlowChecker) exit(pend flowPend) {
	for _, p := range pend {
		if f.reported[p] {
			continue
		}
		f.reported[p] = true
		f.a.diag(p, CodeFrameHeld, SeverityWarning,
			"frame reference held across call_service is neither forwarded (call_module) nor dropped (frame_done) before event_received returns on some path")
	}
}

// walkStmts processes a list, returning the pending set and whether the
// list unconditionally terminates.
func (f *frameFlowChecker) walkStmts(list []stmt, pend flowPend) (flowPend, bool) {
	for _, s := range list {
		var term bool
		pend, term = f.walkStmt(s, pend)
		if term {
			return nil, true
		}
	}
	return pend, false
}

func (f *frameFlowChecker) walkStmt(s stmt, pend flowPend) (flowPend, bool) {
	switch st := s.(type) {
	case *exprStmt:
		return f.scanExpr(st.x, pend), false

	case *declStmt:
		if st.init != nil {
			pend = f.scanExpr(st.init, pend)
		}
		return pend, false

	case *blockStmt:
		return f.walkStmts(st.stmts, pend)

	case *ifStmt:
		pend = f.scanExpr(st.cond, pend)
		thenPend, thenTerm := f.walkStmt(st.then, clonePend(pend))
		elsePend, elseTerm := clonePend(pend), false
		if st.elsE != nil {
			elsePend, elseTerm = f.walkStmt(st.elsE, elsePend)
		}
		switch {
		case thenTerm && elseTerm:
			return nil, true
		case thenTerm:
			return elsePend, false
		case elseTerm:
			return thenPend, false
		default:
			return unionPend(thenPend, elsePend), false
		}

	case *whileStmt:
		pend = f.scanExpr(st.cond, pend)
		bodyPend, _ := f.walkStmt(st.body, clonePend(pend))
		return unionPend(pend, bodyPend), false

	case *forStmt:
		if st.init != nil {
			pend, _ = f.walkStmt(st.init, pend)
		}
		if st.cond != nil {
			pend = f.scanExpr(st.cond, pend)
		}
		bodyPend, _ := f.walkStmt(st.body, clonePend(pend))
		if st.post != nil {
			bodyPend = f.scanExpr(st.post, bodyPend)
		}
		return unionPend(pend, bodyPend), false

	case *forOfStmt:
		pend = f.scanExpr(st.iter, pend)
		bodyPend, _ := f.walkStmt(st.body, clonePend(pend))
		return unionPend(pend, bodyPend), false

	case *returnStmt:
		if st.value != nil {
			pend = f.scanExpr(st.value, pend)
		}
		f.exit(pend)
		return nil, true

	case *throwStmt:
		// A throw abandons the event; the runtime's onFrameAbandoned hook
		// returns the credit, so this is not a leak path.
		f.scanExpr(st.value, pend)
		return nil, true

	case *breakStmt, *continueStmt:
		return pend, true

	case *tryStmt:
		bodyPend, bodyTerm := f.walkStmts(st.body.stmts, clonePend(pend))
		var out flowPend
		term := false
		if bodyTerm {
			term = st.catch == nil
		} else {
			out = bodyPend
		}
		if st.catch != nil {
			// The body may fail at any point, so the catch sees anything
			// between the pre- and post-body states.
			catchPend, catchTerm := f.walkStmts(st.catch.stmts, unionPend(pend, bodyPend))
			if !catchTerm {
				out = unionPend(out, catchPend)
			} else if bodyTerm {
				term = true
			}
		}
		if st.finally != nil {
			var fTerm bool
			out, fTerm = f.walkStmts(st.finally.stmts, out)
			term = term || fTerm
		}
		return out, term

	case *switchStmt:
		pend = f.scanExpr(st.subject, pend)
		var out flowPend
		allTerm := true
		for _, c := range st.cases {
			pend = f.scanExpr(c.value, pend)
			casePend, caseTerm := f.walkStmts(c.body, clonePend(pend))
			if !caseTerm {
				allTerm = false
				out = unionPend(out, casePend)
			}
		}
		if st.defaultBody != nil {
			defPend, defTerm := f.walkStmts(st.defaultBody, clonePend(pend))
			if !defTerm {
				allTerm = false
				out = unionPend(out, defPend)
			}
		} else {
			// No default: the no-case-matched path falls through unchanged.
			allTerm = false
			out = unionPend(out, pend)
		}
		return out, allTerm

	case *funcDecl:
		return pend, false // runs when called, not here
	}
	return pend, false
}

// scanExpr applies frame-flow effects in evaluation order: call_service
// marks the frame pending, frame_done / call_module / a resolving helper
// clears it. Calls inside a conditionally-evaluated operand only add
// obligations; they never clear them (the other path skipped the call).
func (f *frameFlowChecker) scanExpr(e expr, pend flowPend) flowPend {
	switch ex := e.(type) {
	case nil:
		return pend
	case *callExpr:
		for _, arg := range ex.args {
			pend = f.scanExpr(arg, pend)
		}
		if id, ok := ex.callee.(*identExpr); ok {
			switch {
			case id.name == "call_service":
				pend = addPend(clonePend(pend), ex.pos)
			case id.name == "frame_done" || id.name == "call_module" || f.resolvers[id.name]:
				pend = nil
			}
			return pend
		}
		return f.scanExpr(ex.callee, pend)
	case *unaryExpr:
		return f.scanExpr(ex.x, pend)
	case *binaryExpr:
		pend = f.scanExpr(ex.x, pend)
		return f.scanExpr(ex.y, pend)
	case *logicalExpr:
		// The right operand may be skipped: union its effects pessimistically.
		afterX := f.scanExpr(ex.x, pend)
		afterY := f.scanExpr(ex.y, clonePend(afterX))
		return unionPend(afterX, afterY)
	case *condExpr:
		pend = f.scanExpr(ex.cond, pend)
		thenPend := f.scanExpr(ex.then, clonePend(pend))
		elsePend := f.scanExpr(ex.elsE, clonePend(pend))
		return unionPend(thenPend, elsePend)
	case *assignExpr:
		pend = f.scanExpr(ex.value, pend)
		return f.scanExpr(ex.target, pend)
	case *updateExpr:
		return f.scanExpr(ex.target, pend)
	case *arrayLit:
		for _, el := range ex.elems {
			pend = f.scanExpr(el, pend)
		}
		return pend
	case *objectLit:
		for _, fl := range ex.fields {
			pend = f.scanExpr(fl.value, pend)
		}
		return pend
	case *memberExpr:
		return f.scanExpr(ex.obj, pend)
	case *indexExpr:
		pend = f.scanExpr(ex.obj, pend)
		return f.scanExpr(ex.index, pend)
	case *funcLit:
		return pend // executes later, in its own frame context
	}
	return pend
}

// stmtsResolveFrame reports whether a statement list contains a direct
// frame_done or call_module call — the helper-function allowance.
func stmtsResolveFrame(list []stmt) bool {
	for _, s := range list {
		if stmtResolvesFrame(s) {
			return true
		}
	}
	return false
}

func stmtResolvesFrame(s stmt) bool {
	switch st := s.(type) {
	case *exprStmt:
		return exprResolvesFrame(st.x)
	case *declStmt:
		return st.init != nil && exprResolvesFrame(st.init)
	case *blockStmt:
		return stmtsResolveFrame(st.stmts)
	case *ifStmt:
		return exprResolvesFrame(st.cond) || stmtResolvesFrame(st.then) ||
			(st.elsE != nil && stmtResolvesFrame(st.elsE))
	case *whileStmt:
		return exprResolvesFrame(st.cond) || stmtResolvesFrame(st.body)
	case *forStmt:
		return (st.init != nil && stmtResolvesFrame(st.init)) ||
			(st.cond != nil && exprResolvesFrame(st.cond)) ||
			(st.post != nil && exprResolvesFrame(st.post)) ||
			stmtResolvesFrame(st.body)
	case *forOfStmt:
		return exprResolvesFrame(st.iter) || stmtResolvesFrame(st.body)
	case *returnStmt:
		return st.value != nil && exprResolvesFrame(st.value)
	case *throwStmt:
		return exprResolvesFrame(st.value)
	case *tryStmt:
		if stmtsResolveFrame(st.body.stmts) {
			return true
		}
		if st.catch != nil && stmtsResolveFrame(st.catch.stmts) {
			return true
		}
		return st.finally != nil && stmtsResolveFrame(st.finally.stmts)
	case *switchStmt:
		if exprResolvesFrame(st.subject) {
			return true
		}
		for _, c := range st.cases {
			if exprResolvesFrame(c.value) || stmtsResolveFrame(c.body) {
				return true
			}
		}
		return st.defaultBody != nil && stmtsResolveFrame(st.defaultBody)
	}
	return false
}

func exprResolvesFrame(e expr) bool {
	switch ex := e.(type) {
	case *callExpr:
		if id, ok := ex.callee.(*identExpr); ok &&
			(id.name == "frame_done" || id.name == "call_module") {
			return true
		}
		if exprResolvesFrame(ex.callee) {
			return true
		}
		for _, arg := range ex.args {
			if exprResolvesFrame(arg) {
				return true
			}
		}
	case *unaryExpr:
		return exprResolvesFrame(ex.x)
	case *binaryExpr:
		return exprResolvesFrame(ex.x) || exprResolvesFrame(ex.y)
	case *logicalExpr:
		return exprResolvesFrame(ex.x) || exprResolvesFrame(ex.y)
	case *condExpr:
		return exprResolvesFrame(ex.cond) || exprResolvesFrame(ex.then) || exprResolvesFrame(ex.elsE)
	case *assignExpr:
		return exprResolvesFrame(ex.value) || exprResolvesFrame(ex.target)
	case *updateExpr:
		return exprResolvesFrame(ex.target)
	case *arrayLit:
		for _, el := range ex.elems {
			if exprResolvesFrame(el) {
				return true
			}
		}
	case *objectLit:
		for _, fl := range ex.fields {
			if exprResolvesFrame(fl.value) {
				return true
			}
		}
	case *memberExpr:
		return exprResolvesFrame(ex.obj)
	case *indexExpr:
		return exprResolvesFrame(ex.obj) || exprResolvesFrame(ex.index)
	}
	return false
}
