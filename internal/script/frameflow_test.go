package script

import (
	"fmt"
	"strings"
	"testing"
)

// TestFrameFlowCorpus is the PV011 golden corpus — the script-level
// mirror of vpvet's framerelease check: a path through event_received
// that performs a call_service must forward the frame (call_module),
// drop it (frame_done), or hand it to a helper that does, before the
// handler returns.
func TestFrameFlowCorpus(t *testing.T) {
	positives := []struct {
		name string
		src  string
		line int // line of the offending call_service
	}{
		{
			name: "held across plain fall-off",
			src: `function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	metric("found", num(r.found));
}`,
			line: 2,
		},
		{
			name: "resolved on one branch only",
			src: `function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	if (r.found) {
		frame_done();
	}
}`,
			line: 2,
		},
		{
			name: "early return skips resolution",
			src: `function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	if (!r.found) {
		return;
	}
	call_module("next", {frame_ref: message.frame_ref, pose: r.pose});
}`,
			line: 2,
		},
		{
			name: "switch without default leaks the fall-through",
			src: `function event_received(message) {
	var r = call_service("classifier", {frame_ref: message.frame_ref});
	switch (r.label) {
	case "person":
		call_module("alert", {frame_ref: message.frame_ref});
		break;
	}
}`,
			line: 2,
		},
	}
	for _, tc := range positives {
		t.Run(tc.name, func(t *testing.T) {
			rep := Analyze(tc.src, Options{})
			var hit *Diagnostic
			for i := range rep.Diagnostics {
				if rep.Diagnostics[i].Code == CodeFrameHeld {
					hit = &rep.Diagnostics[i]
					break
				}
			}
			if hit == nil {
				t.Fatalf("no %s diagnostic; got %v", CodeFrameHeld, rep.Diagnostics)
			}
			if hit.Severity != SeverityWarning {
				t.Errorf("severity = %v, want warning", hit.Severity)
			}
			if hit.Pos.Line != tc.line {
				t.Errorf("position = %s, want line %d (%s)", hit.Pos, tc.line, hit.Message)
			}
			if !strings.Contains(hit.Message, "call_service") {
				t.Errorf("message does not name call_service: %s", hit.Message)
			}
			// One finding per offending call, even with several leaky exits.
			n := 0
			for _, d := range rep.Diagnostics {
				if d.Code == CodeFrameHeld {
					n++
				}
			}
			if n != 1 {
				t.Errorf("got %d PV011 diagnostics, want 1: %v", n, rep.Diagnostics)
			}
		})
	}

	negatives := []struct {
		name string
		src  string
	}{
		{
			name: "branch drops, fall-through forwards",
			src: `function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	if (!r.found) {
		frame_done();
		return;
	}
	call_module("next", {frame_ref: message.frame_ref, pose: r.pose});
}`,
		},
		{
			name: "resolving helper function",
			src: `function finish(ok) {
	metric("ok", num(ok));
	frame_done();
}
function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	finish(r.found);
}`,
		},
		{
			name: "throw path is reclaimed by the runtime",
			src: `function event_received(message) {
	var r = call_service("pose_detector", {frame_ref: message.frame_ref});
	if (!r.found) {
		throw "no subject";
	}
	call_module("next", {frame_ref: message.frame_ref});
}`,
		},
		{
			name: "no call_service means no PV011 obligation",
			src: `function event_received(message) {
	metric("seen", message.seq);
}`,
		},
		{
			name: "call_service inside a loop, resolved after",
			src: `function event_received(message) {
	var hits = 0;
	for (var i = 0; i < 3; i++) {
		var r = call_service("classifier", {frame_ref: message.frame_ref, band: i});
		if (r.found) {
			hits++;
		}
	}
	metric("hits", hits);
	frame_done();
}`,
		},
	}
	for _, tc := range negatives {
		t.Run(tc.name, func(t *testing.T) {
			rep := Analyze(tc.src, Options{})
			for _, d := range rep.Diagnostics {
				if d.Code == CodeFrameHeld {
					t.Errorf("unexpected PV011: %s", d)
				}
			}
		})
	}
}

// TestFrameFlowDiagnosticShape pins the rendered diagnostic the -lint CLI
// prints for PV011.
func TestFrameFlowDiagnosticShape(t *testing.T) {
	src := `function event_received(message) {
	var r = call_service("svc", {frame_ref: message.frame_ref});
	log(r);
}`
	rep := Analyze(src, Options{})
	for _, d := range rep.Diagnostics {
		if d.Code != CodeFrameHeld {
			continue
		}
		got := d.String()
		want := fmt.Sprintf("%s: warning %s:", d.Pos, CodeFrameHeld)
		if !strings.HasPrefix(got, want) {
			t.Errorf("String() = %q, want prefix %q", got, want)
		}
		return
	}
	t.Fatal("no PV011 diagnostic produced")
}
