package script

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds are hand-picked inputs exercising every syntactic corner the
// grammar has tripped on: empty programs, nesting, operator precedence,
// unterminated constructs and stray bytes.
var fuzzSeeds = []string{
	"",
	";",
	"var x = 1;",
	"function event_received(message) { frame_done(); }",
	"function f(a, b) { return a + b * -c; }",
	"if (x) { y(); } else if (z) { w(); }",
	"while (i < 10) { i = i + 1; }",
	"for (var i = 0; i < n; i = i + 1) { emit(i); }",
	"var o = { a: 1, b: [1, 2, 3], c: { d: \"s\" } };",
	"var s = \"escaped \\\" quote and \\n newline\";",
	"x = a && b || !c == d != e <= f >= g;",
	"call_service(\"pose_detector\", {frame_ref: m.frame_ref});",
	"// comment only\n",
	"/* block\ncomment */ var x = 0;",
	"function broken( {",
	"var x = ;",
	"\"unterminated",
	"}{",
	"var \x00 = 1;",
	"function event_received(m) { return { nested: [{}, [[]]] }; }",
}

// FuzzParse feeds arbitrary source through the full front end — lexer,
// parser and static analyzer — asserting none of it panics. Parse errors
// are expected and fine; crashing on malformed input is not.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	// The example PipeScript modules are the richest well-formed seeds.
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "configs", "*.js"))
	if err != nil {
		f.Fatalf("glob examples: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read %s: %v", p, err)
		}
		f.Add(string(src))
	}

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parse(src)
		if err != nil && prog != nil {
			t.Errorf("parse returned both a program and error %v", err)
		}
		// The analyzer must also hold on anything the parser accepts
		// (and on anything it rejects — Analyze reports, never panics).
		_ = Analyze(src, Options{RequireEventReceived: true})
	})
}

// FuzzCost drives the pipecost pass with arbitrary handler bodies,
// asserting two properties: the pass never panics, and the bound is
// monotone — appending a statement to the body never lowers the computed
// instruction or allocation bound.
func FuzzCost(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "configs", "*.js"))
	if err != nil {
		f.Fatalf("glob examples: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read %s: %v", p, err)
		}
		f.Add(string(src))
	}

	f.Fuzz(func(t *testing.T, body string) {
		// No panics on raw input, parseable or not.
		_ = AnalyzeCost(body)

		// Monotonicity: the same body with one more statement appended must
		// not get a smaller bound. Skip bodies the wrapper cannot absorb
		// (e.g. an unbalanced brace swallowing the closer).
		base := "function event_received(message) {\n" + body + "\n}"
		grown := "function event_received(message) {\n" + body + "\nvar __fz_pad = 0;\n}"
		repBase := AnalyzeCost(base)
		repGrown := AnalyzeCost(grown)
		hb, okb := repBase.Handler("event_received")
		hg, okg := repGrown.Handler("event_received")
		if !okb || !okg {
			return
		}
		if !hb.Bounded {
			// Unbounded stays unbounded when statements are added.
			if hg.Bounded {
				t.Errorf("bound appeared when growing the body:\n%s", body)
			}
			return
		}
		if !hg.Bounded {
			// Growing can only make things unbounded via the pad statement's
			// interaction with the tail (e.g. body ends mid-statement); that
			// changes the parse, not the model — ignore.
			return
		}
		if hg.Steps < hb.Steps {
			t.Errorf("instruction bound shrank %d -> %d when growing the body:\n%s", hb.Steps, hg.Steps, body)
		}
		if hg.Allocs < hb.Allocs {
			t.Errorf("allocation bound shrank %d -> %d when growing the body:\n%s", hb.Allocs, hg.Allocs, body)
		}
	})
}

// FuzzShapes drives the pipetype shape pass with arbitrary handler bodies,
// asserting two properties: the pass never panics (parseable input or
// not), and emission collection is monotone — appending one more
// call_module site never loses an already-inferred target, and the join of
// two shapes contains both operands.
func FuzzShapes(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "configs", "*.js"))
	if err != nil {
		f.Fatalf("glob examples: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read %s: %v", p, err)
		}
		f.Add(string(src))
	}

	f.Fuzz(func(t *testing.T, body string) {
		// No panics on raw input.
		_ = AnalyzeShapes(body)

		// The probe emission is prepended, not appended: bodies can
		// truncate everything after themselves (a NUL byte reads as EOF),
		// but a leading statement always survives if the program parses.
		base := "function event_received(message) {\n" + body + "\n}"
		grown := "call_module(\"__fz_t\", {__fz_f: 1});\n" + base
		repBase := AnalyzeShapes(base)
		if !repBase.Consumed.HasHandler {
			// The wrapper did not survive the body (unbalanced braces and
			// the like): the grown variant parses differently, skip.
			return
		}
		repGrown := AnalyzeShapes(grown)
		if !repGrown.Consumed.HasHandler {
			return
		}
		for target, shape := range repBase.Emits {
			grownShape, ok := repGrown.Emits[target]
			if !ok {
				t.Errorf("target %q lost when growing the body:\n%s", target, body)
				continue
			}
			// Join-monotonicity: the lattice join of the two inferences
			// contains each operand.
			joined := shape.Join(grownShape)
			if !joined.Contains(shape) || !joined.Contains(grownShape) {
				t.Errorf("join %s does not contain operands %s / %s:\n%s",
					joined, shape, grownShape, body)
			}
		}
		if _, ok := repGrown.Emits["__fz_t"]; !ok {
			t.Errorf("prepended emission not inferred:\n%s", body)
		}
	})
}
