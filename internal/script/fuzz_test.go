package script

import (
	"os"
	"path/filepath"
	"testing"
)

// fuzzSeeds are hand-picked inputs exercising every syntactic corner the
// grammar has tripped on: empty programs, nesting, operator precedence,
// unterminated constructs and stray bytes.
var fuzzSeeds = []string{
	"",
	";",
	"var x = 1;",
	"function event_received(message) { frame_done(); }",
	"function f(a, b) { return a + b * -c; }",
	"if (x) { y(); } else if (z) { w(); }",
	"while (i < 10) { i = i + 1; }",
	"for (var i = 0; i < n; i = i + 1) { emit(i); }",
	"var o = { a: 1, b: [1, 2, 3], c: { d: \"s\" } };",
	"var s = \"escaped \\\" quote and \\n newline\";",
	"x = a && b || !c == d != e <= f >= g;",
	"call_service(\"pose_detector\", {frame_ref: m.frame_ref});",
	"// comment only\n",
	"/* block\ncomment */ var x = 0;",
	"function broken( {",
	"var x = ;",
	"\"unterminated",
	"}{",
	"var \x00 = 1;",
	"function event_received(m) { return { nested: [{}, [[]]] }; }",
}

// FuzzParse feeds arbitrary source through the full front end — lexer,
// parser and static analyzer — asserting none of it panics. Parse errors
// are expected and fine; crashing on malformed input is not.
func FuzzParse(f *testing.F) {
	for _, seed := range fuzzSeeds {
		f.Add(seed)
	}
	// The example PipeScript modules are the richest well-formed seeds.
	paths, err := filepath.Glob(filepath.Join("..", "..", "examples", "configs", "*.js"))
	if err != nil {
		f.Fatalf("glob examples: %v", err)
	}
	for _, p := range paths {
		src, err := os.ReadFile(p)
		if err != nil {
			f.Fatalf("read %s: %v", p, err)
		}
		f.Add(string(src))
	}

	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parse(src)
		if err != nil && prog != nil {
			t.Errorf("parse returned both a program and error %v", err)
		}
		// The analyzer must also hold on anything the parser accepts
		// (and on anything it rejects — Analyze reports, never panics).
		_ = Analyze(src, Options{RequireEventReceived: true})
	})
}
