package script

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"time"
)

// Default sandbox limits. A module that exceeds them fails its current event
// rather than wedging the hosting device.
const (
	// DefaultMaxSteps bounds evaluation steps per top-level invocation.
	DefaultMaxSteps = 10_000_000
	// DefaultMaxDepth bounds the script call stack.
	DefaultMaxDepth = 200
	// maxArrayLen bounds array growth from index assignment.
	maxArrayLen = 1 << 24
)

// control-flow signals, passed through the error channel internally.
type breakSignal struct{}
type continueSignal struct{}

func (breakSignal) Error() string    { return "break outside loop" }
func (continueSignal) Error() string { return "continue outside loop" }

type returnSignal struct{ value Value }

func (returnSignal) Error() string { return "return outside function" }

// throwSignal carries a script-thrown value until caught.
type throwSignal struct {
	value Value
	pos   Position
}

func (t throwSignal) Error() string {
	return fmt.Sprintf("uncaught: %s", Stringify(t.value))
}

// Context is one isolated PipeScript execution environment — the analogue
// of a Duktape context in the paper. A Context owns its globals and host
// bindings; nothing is shared between contexts, which is what isolates
// modules from one another. A Context is not safe for concurrent use; the
// device runtime serializes events per module, matching the paper's
// event-driven module model.
type Context struct {
	globals  *environment
	maxSteps int64
	maxDepth int
	// instructions accumulates interpreter steps across every Load/Eval/Call
	// on this context; lastInstructions holds the count of the most recent
	// one. The device runtime exports them as the
	// `script.<module>.instructions` meter, and the pipecost soundness test
	// checks lastInstructions against the static bound. Not synchronized —
	// the Context itself is single-threaded by contract.
	instructions     int64
	lastInstructions int64
	// limits is the resource budget enforced per invocation; the zero
	// value is unlimited (see budget.go).
	limits Limits
}

// NewContext creates a context with the standard library installed.
func NewContext() *Context {
	c := &Context{
		globals:  newEnvironment(nil),
		maxSteps: DefaultMaxSteps,
		maxDepth: DefaultMaxDepth,
	}
	installStdlib(c)
	return c
}

// SetMaxSteps overrides the per-invocation evaluation step budget.
func (c *Context) SetMaxSteps(n int64) { c.maxSteps = n }

// SetMaxDepth overrides the script call-stack limit.
func (c *Context) SetMaxDepth(n int) { c.maxDepth = n }

// Bind exposes a Go function to scripts under the given global name.
func (c *Context) Bind(name string, fn HostFunc) {
	c.globals.define(name, fn, false)
}

// BindValue exposes a value to scripts under the given global name.
func (c *Context) BindValue(name string, v Value) {
	c.globals.define(name, v, false)
}

// Global returns the value of a global binding.
func (c *Context) Global(name string) (Value, bool) {
	b, ok := c.globals.lookup(name)
	if !ok {
		return nil, false
	}
	return b.value, true
}

// Has reports whether a global binding exists. It is how the module runtime
// probes for optional callbacks such as init().
func (c *Context) Has(name string) bool {
	_, ok := c.globals.lookup(name)
	return ok
}

// Instructions returns the total interpreter steps executed by this
// context across all invocations so far.
func (c *Context) Instructions() int64 { return c.instructions }

// LastInstructions returns the interpreter steps of the most recent
// Load, Eval or Call — the per-event count the
// `script.<module>.instructions` meter records.
func (c *Context) LastInstructions() int64 { return c.lastInstructions }

// account records one finished invocation's step count, including failed
// ones — a partial run still consumed its steps.
func (c *Context) account(in *interp) {
	c.lastInstructions = in.steps
	c.instructions += in.steps
}

// newInterp builds one invocation's execution state from the context's
// limits. Top-level load and init() run under the init budget
// (InitInstructions, falling back to Instructions); events run under
// Instructions.
func (c *Context) newInterp(initPhase bool) *interp {
	in := &interp{ctx: c}
	in.stepLimit = c.limits.Instructions
	if initPhase && c.limits.InitInstructions > 0 {
		in.stepLimit = c.limits.InitInstructions
	}
	in.memLimit = c.limits.Memory
	if c.limits.Timeout > 0 {
		in.timeout = c.limits.Timeout
		in.start = time.Now()
	}
	return in
}

// Load parses and executes src at the top level: declarations become
// globals, top-level statements run immediately.
func (c *Context) Load(src string) error {
	prog, err := parse(src)
	if err != nil {
		return err
	}
	in := c.newInterp(true)
	defer c.account(in)
	for _, s := range prog.stmts {
		if err := in.execStmt(s, c.globals); err != nil {
			return in.publicError(err)
		}
	}
	return nil
}

// Eval parses and evaluates src as a single expression and returns its
// value.
func (c *Context) Eval(src string) (Value, error) {
	prog, err := parse(src)
	if err != nil {
		return nil, err
	}
	in := c.newInterp(false)
	defer c.account(in)
	var last Value
	for _, s := range prog.stmts {
		es, ok := s.(*exprStmt)
		if !ok {
			if err := in.execStmt(s, c.globals); err != nil {
				return nil, in.publicError(err)
			}
			last = nil
			continue
		}
		v, err := in.evalExpr(es.x, c.globals)
		if err != nil {
			return nil, in.publicError(err)
		}
		last = v
	}
	return last, nil
}

// Call invokes the named global function with args.
func (c *Context) Call(name string, args ...Value) (Value, error) {
	b, ok := c.globals.lookup(name)
	if !ok {
		return nil, &RuntimeError{Msg: fmt.Sprintf("function %q is not defined", name)}
	}
	in := c.newInterp(name == "init")
	defer c.account(in)
	v, err := in.callValue(b.value, args, Position{})
	if err != nil {
		return nil, in.publicError(err)
	}
	return v, nil
}

// interp carries per-invocation execution state: the step budget, call
// depth, and the resource meters the sandbox limits are enforced against.
type interp struct {
	ctx   *Context
	steps int64
	depth int
	// stepLimit is the configured instruction budget for this invocation
	// (0 = only the hard DefaultMaxSteps ceiling applies).
	stepLimit int64
	// memLimit/memUsed meter script-value allocation (0 limit = off).
	memLimit int64
	memUsed  int64
	// timeout/start/hostDur implement the wall-clock backstop; hostDur
	// accumulates time spent inside host calls, which is excluded so a
	// slow service cannot breach its caller.
	timeout time.Duration
	start   time.Time
	hostDur time.Duration
}

// publicError converts internal control-flow signals into user-facing
// errors.
func (in *interp) publicError(err error) error {
	var t throwSignal
	if errors.As(err, &t) {
		return &RuntimeError{Pos: t.pos, Msg: "uncaught exception: " + Stringify(t.value), Thrown: t.value}
	}
	switch err.(type) {
	case breakSignal, continueSignal, returnSignal:
		return &RuntimeError{Msg: err.Error()}
	}
	return err
}

func (in *interp) step(pos Position) error {
	in.steps++
	if in.stepLimit > 0 && in.steps > in.stepLimit {
		return &BudgetError{Resource: ResourceInstructions, Limit: in.stepLimit, Used: in.steps, Pos: pos}
	}
	if in.steps > in.ctx.maxSteps {
		return &RuntimeError{Pos: pos, Msg: "step budget exhausted (possible infinite loop)"}
	}
	// The wall-clock backstop is checked every 1024 steps: cheap enough to
	// leave on, frequent enough that a spin costs at most a few µs past
	// the deadline.
	if in.timeout > 0 && in.steps&1023 == 0 {
		if used := time.Since(in.start) - in.hostDur; used > in.timeout {
			return &BudgetError{
				Resource: ResourceTimeout,
				Limit:    in.timeout.Milliseconds(),
				Used:     used.Milliseconds(),
				Pos:      pos,
			}
		}
	}
	return nil
}

// charge meters n bytes of value allocation against the memory budget.
func (in *interp) charge(n int64, pos Position) error {
	if in.memLimit <= 0 {
		return nil
	}
	in.memUsed += n
	if in.memUsed > in.memLimit {
		return &BudgetError{Resource: ResourceMemory, Limit: in.memLimit, Used: in.memUsed, Pos: pos}
	}
	return nil
}

func (in *interp) errorf(pos Position, format string, args ...any) error {
	return &RuntimeError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

// ---- Statements ----

func (in *interp) execStmt(s stmt, env *environment) error {
	if err := in.step(s.position()); err != nil {
		return err
	}
	switch st := s.(type) {
	case *exprStmt:
		_, err := in.evalExpr(st.x, env)
		return err
	case *declStmt:
		var v Value
		if st.init != nil {
			var err error
			if v, err = in.evalExpr(st.init, env); err != nil {
				return err
			}
		}
		env.define(st.name, v, st.constant)
		return nil
	case *blockStmt:
		inner := newEnvironment(env)
		for _, s := range st.stmts {
			if err := in.execStmt(s, inner); err != nil {
				return err
			}
		}
		return nil
	case *ifStmt:
		cond, err := in.evalExpr(st.cond, env)
		if err != nil {
			return err
		}
		if Truthy(cond) {
			return in.execStmt(st.then, env)
		}
		if st.elsE != nil {
			return in.execStmt(st.elsE, env)
		}
		return nil
	case *whileStmt:
		for {
			if err := in.step(st.pos); err != nil {
				return err
			}
			cond, err := in.evalExpr(st.cond, env)
			if err != nil {
				return err
			}
			if !Truthy(cond) {
				return nil
			}
			if err := in.execStmt(st.body, env); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					continue
				default:
					return err
				}
			}
		}
	case *forStmt:
		inner := newEnvironment(env)
		if st.init != nil {
			if err := in.execStmt(st.init, inner); err != nil {
				return err
			}
		}
		for {
			if err := in.step(st.pos); err != nil {
				return err
			}
			if st.cond != nil {
				cond, err := in.evalExpr(st.cond, inner)
				if err != nil {
					return err
				}
				if !Truthy(cond) {
					return nil
				}
			}
			err := in.execStmt(st.body, inner)
			if err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					// fall through to post
				default:
					return err
				}
			}
			if st.post != nil {
				if _, err := in.evalExpr(st.post, inner); err != nil {
					return err
				}
			}
		}
	case *forOfStmt:
		iter, err := in.evalExpr(st.iter, env)
		if err != nil {
			return err
		}
		runBody := func(v Value) error {
			inner := newEnvironment(env)
			inner.define(st.varName, v, false)
			return in.execStmt(st.body, inner)
		}
		var items []Value
		switch x := iter.(type) {
		case *Array:
			items = x.Elems
		case *Object:
			for _, k := range x.SortedKeys() {
				items = append(items, k)
			}
		case string:
			for _, r := range x {
				items = append(items, string(r))
			}
		case nil:
			return nil
		default:
			return in.errorf(st.pos, "for-of requires array, object or string, got %s", TypeName(iter))
		}
		for _, v := range items {
			if err := in.step(st.pos); err != nil {
				return err
			}
			if err := runBody(v); err != nil {
				switch err.(type) {
				case breakSignal:
					return nil
				case continueSignal:
					continue
				default:
					return err
				}
			}
		}
		return nil
	case *returnStmt:
		var v Value
		if st.value != nil {
			var err error
			if v, err = in.evalExpr(st.value, env); err != nil {
				return err
			}
		}
		return returnSignal{value: v}
	case *breakStmt:
		return breakSignal{}
	case *continueStmt:
		return continueSignal{}
	case *throwStmt:
		v, err := in.evalExpr(st.value, env)
		if err != nil {
			return err
		}
		return throwSignal{value: v, pos: st.pos}
	case *tryStmt:
		err := in.execStmt(st.body, env)
		var thrown throwSignal
		if errors.As(err, &thrown) && st.catch != nil {
			inner := newEnvironment(env)
			if st.catchVar != "" {
				inner.define(st.catchVar, thrown.value, false)
			}
			err = nil
			for _, s := range st.catch.stmts {
				if err = in.execStmt(s, inner); err != nil {
					break
				}
			}
		}
		if st.finally != nil {
			if ferr := in.execStmt(st.finally, env); ferr != nil {
				return ferr // finally's completion overrides
			}
		}
		return err
	case *switchStmt:
		subject, err := in.evalExpr(st.subject, env)
		if err != nil {
			return err
		}
		// Find the matching case (strict equality), falling back to
		// default; execution falls through subsequent cases until break,
		// as in JavaScript.
		start := -1
		for i, c := range st.cases {
			v, err := in.evalExpr(c.value, env)
			if err != nil {
				return err
			}
			if valuesEqual(subject, v) {
				start = i
				break
			}
		}
		inner := newEnvironment(env)
		runBody := func(body []stmt) (stop bool, err error) {
			for _, s := range body {
				if err := in.execStmt(s, inner); err != nil {
					if _, isBreak := err.(breakSignal); isBreak {
						return true, nil
					}
					return true, err
				}
			}
			return false, nil
		}
		if start >= 0 {
			for i := start; i < len(st.cases); i++ {
				stop, err := runBody(st.cases[i].body)
				if err != nil {
					return err
				}
				if stop {
					return nil
				}
			}
		}
		if st.defaultBody != nil && start < 0 {
			if _, err := runBody(st.defaultBody); err != nil {
				return err
			}
		}
		return nil
	case *funcDecl:
		if err := in.charge(64, st.position()); err != nil {
			return err
		}
		fn := &Function{name: st.fn.name, params: st.fn.params, body: st.fn.body, env: env}
		env.define(st.fn.name, fn, false)
		return nil
	default:
		return in.errorf(s.position(), "unhandled statement %T", s)
	}
}

// ---- Expressions ----

func (in *interp) evalExpr(e expr, env *environment) (Value, error) {
	if err := in.step(e.position()); err != nil {
		return nil, err
	}
	switch ex := e.(type) {
	case *numberLit:
		return ex.value, nil
	case *stringLit:
		return ex.value, nil
	case *boolLit:
		return ex.value, nil
	case *nullLit:
		return nil, nil
	case *identExpr:
		b, ok := env.lookup(ex.name)
		if !ok {
			return nil, in.errorf(ex.pos, "%q is not defined", ex.name)
		}
		return b.value, nil
	case *arrayLit:
		if err := in.charge(24+16*int64(len(ex.elems)), ex.pos); err != nil {
			return nil, err
		}
		arr := &Array{Elems: make([]Value, len(ex.elems))}
		for i, el := range ex.elems {
			v, err := in.evalExpr(el, env)
			if err != nil {
				return nil, err
			}
			arr.Elems[i] = v
		}
		return arr, nil
	case *objectLit:
		if err := in.charge(48+32*int64(len(ex.fields)), ex.pos); err != nil {
			return nil, err
		}
		obj := NewObject()
		for _, f := range ex.fields {
			v, err := in.evalExpr(f.value, env)
			if err != nil {
				return nil, err
			}
			obj.Set(f.key, v)
		}
		return obj, nil
	case *funcLit:
		if err := in.charge(64, ex.pos); err != nil {
			return nil, err
		}
		return &Function{name: ex.name, params: ex.params, body: ex.body, env: env}, nil
	case *unaryExpr:
		return in.evalUnary(ex, env)
	case *binaryExpr:
		return in.evalBinary(ex, env)
	case *logicalExpr:
		x, err := in.evalExpr(ex.x, env)
		if err != nil {
			return nil, err
		}
		if ex.op == "&&" {
			if !Truthy(x) {
				return x, nil
			}
		} else if Truthy(x) {
			return x, nil
		}
		return in.evalExpr(ex.y, env)
	case *condExpr:
		cond, err := in.evalExpr(ex.cond, env)
		if err != nil {
			return nil, err
		}
		if Truthy(cond) {
			return in.evalExpr(ex.then, env)
		}
		return in.evalExpr(ex.elsE, env)
	case *assignExpr:
		return in.evalAssign(ex, env)
	case *updateExpr:
		return in.evalUpdate(ex, env)
	case *callExpr:
		callee, err := in.evalExpr(ex.callee, env)
		if err != nil {
			return nil, err
		}
		args := make([]Value, len(ex.args))
		for i, a := range ex.args {
			if args[i], err = in.evalExpr(a, env); err != nil {
				return nil, err
			}
		}
		return in.callValue(callee, args, ex.pos)
	case *memberExpr:
		obj, err := in.evalExpr(ex.obj, env)
		if err != nil {
			return nil, err
		}
		return in.member(obj, ex.name, ex.pos)
	case *indexExpr:
		obj, err := in.evalExpr(ex.obj, env)
		if err != nil {
			return nil, err
		}
		idx, err := in.evalExpr(ex.index, env)
		if err != nil {
			return nil, err
		}
		return in.index(obj, idx, ex.pos)
	default:
		return nil, in.errorf(e.position(), "unhandled expression %T", e)
	}
}

func (in *interp) evalUnary(ex *unaryExpr, env *environment) (Value, error) {
	x, err := in.evalExpr(ex.x, env)
	if err != nil {
		return nil, err
	}
	switch ex.op {
	case "-":
		n, ok := x.(float64)
		if !ok {
			return nil, in.errorf(ex.pos, "cannot negate %s", TypeName(x))
		}
		return -n, nil
	case "!":
		return !Truthy(x), nil
	case "typeof":
		return TypeName(x), nil
	default:
		return nil, in.errorf(ex.pos, "unknown unary operator %q", ex.op)
	}
}

func (in *interp) evalBinary(ex *binaryExpr, env *environment) (Value, error) {
	x, err := in.evalExpr(ex.x, env)
	if err != nil {
		return nil, err
	}
	y, err := in.evalExpr(ex.y, env)
	if err != nil {
		return nil, err
	}
	return in.applyBinary(ex.op, x, y, ex.pos)
}

func (in *interp) applyBinary(op string, x, y Value, pos Position) (Value, error) {
	switch op {
	case "==":
		return valuesEqual(x, y), nil
	case "!=":
		return !valuesEqual(x, y), nil
	}

	// String concatenation mirrors JS: + with a string operand concatenates.
	if op == "+" {
		if xs, ok := x.(string); ok {
			s := xs + Stringify(y)
			if err := in.charge(int64(len(s)), pos); err != nil {
				return nil, err
			}
			return s, nil
		}
		if ys, ok := y.(string); ok {
			s := Stringify(x) + ys
			if err := in.charge(int64(len(s)), pos); err != nil {
				return nil, err
			}
			return s, nil
		}
	}

	// String ordering comparisons.
	if xs, okx := x.(string); okx {
		if ys, oky := y.(string); oky {
			switch op {
			case "<":
				return xs < ys, nil
			case "<=":
				return xs <= ys, nil
			case ">":
				return xs > ys, nil
			case ">=":
				return xs >= ys, nil
			}
		}
	}

	xn, okx := x.(float64)
	yn, oky := y.(float64)
	if !okx || !oky {
		return nil, in.errorf(pos, "operator %q requires numbers, got %s and %s", op, TypeName(x), TypeName(y))
	}
	switch op {
	case "+":
		return xn + yn, nil
	case "-":
		return xn - yn, nil
	case "*":
		return xn * yn, nil
	case "/":
		if yn == 0 {
			return nil, in.errorf(pos, "division by zero")
		}
		return xn / yn, nil
	case "%":
		if yn == 0 {
			return nil, in.errorf(pos, "modulo by zero")
		}
		return math.Mod(xn, yn), nil
	case "<":
		return xn < yn, nil
	case "<=":
		return xn <= yn, nil
	case ">":
		return xn > yn, nil
	case ">=":
		return xn >= yn, nil
	default:
		return nil, in.errorf(pos, "unknown operator %q", op)
	}
}

func (in *interp) evalAssign(ex *assignExpr, env *environment) (Value, error) {
	rhs, err := in.evalExpr(ex.value, env)
	if err != nil {
		return nil, err
	}
	if ex.op != "=" {
		cur, err := in.readTarget(ex.target, env)
		if err != nil {
			return nil, err
		}
		op := strings.TrimSuffix(ex.op, "=")
		if rhs, err = in.applyBinary(op, cur, rhs, ex.pos); err != nil {
			return nil, err
		}
	}
	if err := in.writeTarget(ex.target, rhs, env); err != nil {
		return nil, err
	}
	return rhs, nil
}

func (in *interp) evalUpdate(ex *updateExpr, env *environment) (Value, error) {
	cur, err := in.readTarget(ex.target, env)
	if err != nil {
		return nil, err
	}
	n, ok := cur.(float64)
	if !ok {
		return nil, in.errorf(ex.pos, "%s requires a number, got %s", ex.op, TypeName(cur))
	}
	next := n + 1
	if ex.op == "--" {
		next = n - 1
	}
	if err := in.writeTarget(ex.target, next, env); err != nil {
		return nil, err
	}
	if ex.postfix {
		return n, nil
	}
	return next, nil
}

func (in *interp) readTarget(target expr, env *environment) (Value, error) {
	return in.evalExpr(target, env)
}

func (in *interp) writeTarget(target expr, v Value, env *environment) error {
	switch t := target.(type) {
	case *identExpr:
		b, ok := env.lookup(t.name)
		if !ok {
			return in.errorf(t.pos, "%q is not defined", t.name)
		}
		if b.constant {
			return in.errorf(t.pos, "cannot assign to constant %q", t.name)
		}
		b.value = v
		return nil
	case *memberExpr:
		obj, err := in.evalExpr(t.obj, env)
		if err != nil {
			return err
		}
		o, ok := obj.(*Object)
		if !ok {
			return in.errorf(t.pos, "cannot set field %q on %s", t.name, TypeName(obj))
		}
		o.Set(t.name, v)
		return nil
	case *indexExpr:
		obj, err := in.evalExpr(t.obj, env)
		if err != nil {
			return err
		}
		idx, err := in.evalExpr(t.index, env)
		if err != nil {
			return err
		}
		switch o := obj.(type) {
		case *Array:
			n, ok := idx.(float64)
			if !ok || n != math.Trunc(n) || n < 0 {
				return in.errorf(t.pos, "bad array index %s", Stringify(idx))
			}
			i := int(n)
			if i >= maxArrayLen {
				return in.errorf(t.pos, "array index %d exceeds limit", i)
			}
			if grow := i + 1 - len(o.Elems); grow > 0 {
				if err := in.charge(16*int64(grow), t.pos); err != nil {
					return err
				}
			}
			for len(o.Elems) <= i {
				o.Elems = append(o.Elems, nil)
			}
			o.Elems[i] = v
			return nil
		case *Object:
			key, ok := idx.(string)
			if !ok {
				key = Stringify(idx)
			}
			o.Set(key, v)
			return nil
		default:
			return in.errorf(t.pos, "cannot index-assign into %s", TypeName(obj))
		}
	default:
		return in.errorf(target.position(), "invalid assignment target")
	}
}

func (in *interp) member(obj Value, name string, pos Position) (Value, error) {
	switch o := obj.(type) {
	case *Object:
		return o.Get(name), nil
	case *Array:
		if name == "length" {
			return float64(len(o.Elems)), nil
		}
		return nil, in.errorf(pos, "array has no member %q (use builtins: push, pop, slice, ...)", name)
	case string:
		if name == "length" {
			return float64(len(o)), nil
		}
		return nil, in.errorf(pos, "string has no member %q", name)
	case nil:
		return nil, in.errorf(pos, "cannot read %q of null", name)
	default:
		return nil, in.errorf(pos, "cannot read member %q of %s", name, TypeName(obj))
	}
}

func (in *interp) index(obj, idx Value, pos Position) (Value, error) {
	switch o := obj.(type) {
	case *Array:
		n, ok := idx.(float64)
		if !ok || n != math.Trunc(n) {
			return nil, in.errorf(pos, "bad array index %s", Stringify(idx))
		}
		i := int(n)
		if i < 0 || i >= len(o.Elems) {
			return nil, nil // out-of-range reads yield null, like JS undefined
		}
		return o.Elems[i], nil
	case *Object:
		key, ok := idx.(string)
		if !ok {
			key = Stringify(idx)
		}
		return o.Get(key), nil
	case string:
		n, ok := idx.(float64)
		if !ok || n != math.Trunc(n) {
			return nil, in.errorf(pos, "bad string index %s", Stringify(idx))
		}
		i := int(n)
		if i < 0 || i >= len(o) {
			return nil, nil
		}
		return string(o[i]), nil
	case nil:
		return nil, in.errorf(pos, "cannot index null")
	default:
		return nil, in.errorf(pos, "cannot index %s", TypeName(obj))
	}
}

// callValue invokes a script function or host function.
func (in *interp) callValue(callee Value, args []Value, pos Position) (Value, error) {
	switch fn := callee.(type) {
	case HostFunc:
		var hostStart time.Time
		if in.timeout > 0 {
			hostStart = time.Now()
		}
		v, err := fn(args)
		if in.timeout > 0 {
			in.hostDur += time.Since(hostStart)
		}
		if err != nil {
			// Host errors surface as catchable script throws carrying the
			// error text, so modules can recover from failed service calls.
			// Runtime and budget errors stay typed and uncatchable — a
			// handler must not swallow its own abort.
			var rt *RuntimeError
			if errors.As(err, &rt) {
				return nil, err
			}
			var be *BudgetError
			if errors.As(err, &be) {
				return nil, err
			}
			return nil, throwSignal{value: err.Error(), pos: pos}
		}
		// Host and builtin results are charged shallowly here — the one
		// choke point every host-constructed value passes through.
		if err := in.charge(sizeEstimate(v), pos); err != nil {
			return nil, err
		}
		return v, nil
	case *Function:
		in.depth++
		defer func() { in.depth-- }()
		if in.depth > in.ctx.maxDepth {
			return nil, in.errorf(pos, "call stack depth limit exceeded")
		}
		if err := in.charge(24+16*int64(len(args)), pos); err != nil {
			return nil, err
		}
		env := newEnvironment(fn.env)
		for i, p := range fn.params {
			var v Value
			if i < len(args) {
				v = args[i]
			}
			env.define(p, v, false)
		}
		env.define("arguments", &Array{Elems: args}, false)
		for _, s := range fn.body.stmts {
			if err := in.execStmt(s, env); err != nil {
				if ret, ok := err.(returnSignal); ok {
					return ret.value, nil
				}
				return nil, err
			}
		}
		return nil, nil
	case nil:
		return nil, in.errorf(pos, "cannot call null")
	default:
		return nil, in.errorf(pos, "%s is not callable", TypeName(callee))
	}
}
