package script

import (
	"errors"
	"math"
	"strings"
	"testing"
)

// evalNum is a test helper: evaluate src and require a numeric result.
func evalNum(t *testing.T, src string) float64 {
	t.Helper()
	v, err := NewContext().Eval(src)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	n, ok := v.(float64)
	if !ok {
		t.Fatalf("Eval(%q) = %v (%s), want number", src, v, TypeName(v))
	}
	return n
}

func evalVal(t *testing.T, src string) Value {
	t.Helper()
	v, err := NewContext().Eval(src)
	if err != nil {
		t.Fatalf("Eval(%q): %v", src, err)
	}
	return v
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want float64
	}{
		{"1 + 2", 3},
		{"2 * 3 + 4", 10},
		{"2 + 3 * 4", 14},
		{"(2 + 3) * 4", 20},
		{"10 / 4", 2.5},
		{"10 % 3", 1},
		{"-5 + 2", -3},
		{"2 * -3", -6},
		{"0x10 + 1", 17},
		{"1.5e2", 150},
		{"7 % 2.5", 2},
	}
	for _, c := range cases {
		if got := evalNum(t, c.src); got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestComparisonAndLogic(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 4", false},
		{"3 >= 3", true},
		{"1 == 1", true},
		{"1 != 2", true},
		{"1 === 1", true},
		{"1 !== 1", false},
		{"'a' < 'b'", true},
		{"'abc' == 'abc'", true},
		{"1 == '1'", false}, // no coercion
		{"true && false", false},
		{"true || false", true},
		{"!false", true},
		{"null == null", true},
		{"null == 0", false},
		{"1 < 2 && 2 < 3", true},
	}
	for _, c := range cases {
		v := evalVal(t, c.src)
		if got, ok := v.(bool); !ok || got != c.want {
			t.Errorf("Eval(%q) = %v, want %v", c.src, v, c.want)
		}
	}
}

func TestShortCircuit(t *testing.T) {
	// RHS must not evaluate when the LHS decides.
	src := `
		var called = false;
		function boom() { called = true; return true; }
		false && boom();
		true || boom();
		called
	`
	if v := evalVal(t, src); v != false {
		t.Errorf("short circuit evaluated RHS: called = %v", v)
	}
}

func TestStringOps(t *testing.T) {
	cases := []struct {
		src  string
		want string
	}{
		{`"a" + "b"`, "ab"},
		{`"n=" + 42`, "n=42"},
		{`1 + "x"`, "1x"},
		{`"pi=" + 3.5`, "pi=3.5"},
		{`'single' + "double"`, "singledouble"},
		{`"esc\n\t\"'"`, "esc\n\t\"'"},
		{`"A"`, "A"},
	}
	for _, c := range cases {
		v := evalVal(t, c.src)
		if got, ok := v.(string); !ok || got != c.want {
			t.Errorf("Eval(%q) = %q, want %q", c.src, v, c.want)
		}
	}
}

func TestTernary(t *testing.T) {
	if got := evalNum(t, "1 < 2 ? 10 : 20"); got != 10 {
		t.Errorf("ternary = %v, want 10", got)
	}
	if got := evalNum(t, "false ? 1 : true ? 2 : 3"); got != 2 {
		t.Errorf("nested ternary = %v, want 2", got)
	}
}

func TestVariablesAndScope(t *testing.T) {
	src := `
		var x = 1;
		let y = 2;
		{
			let y = 20;
			x = x + y;
		}
		x + y
	`
	if got := evalNum(t, src); got != 23 {
		t.Errorf("scope test = %v, want 23", got)
	}
}

func TestConstAssignmentFails(t *testing.T) {
	_, err := NewContext().Eval("const k = 1; k = 2;")
	if err == nil || !strings.Contains(err.Error(), "constant") {
		t.Errorf("assigning to const: err = %v, want constant error", err)
	}
}

func TestConstRequiresInit(t *testing.T) {
	if _, err := NewContext().Eval("const k;"); err == nil {
		t.Error("const without initializer parsed")
	}
}

func TestUndefinedVariable(t *testing.T) {
	_, err := NewContext().Eval("nosuchvar + 1")
	var rt *RuntimeError
	if !errors.As(err, &rt) || !strings.Contains(rt.Msg, "not defined") {
		t.Errorf("undefined var: err = %v", err)
	}
}

func TestCompoundAssignment(t *testing.T) {
	src := `
		var x = 10;
		x += 5; x -= 3; x *= 2; x /= 4; x %= 4;
		x
	`
	// ((10+5-3)*2)/4 = 6; 6 % 4 = 2
	if got := evalNum(t, src); got != 2 {
		t.Errorf("compound assignment = %v, want 2", got)
	}
}

func TestIncrementDecrement(t *testing.T) {
	src := `
		var x = 5;
		var a = x++;
		var b = ++x;
		var c = x--;
		var d = --x;
		"" + a + b + c + d + x
	`
	if got := evalVal(t, src); got != "57755" {
		t.Errorf("inc/dec = %v, want 57755", got)
	}
}

func TestIfElse(t *testing.T) {
	src := `
		function grade(n) {
			if (n >= 90) { return "A"; }
			else if (n >= 80) { return "B"; }
			else { return "C"; }
		}
		grade(95) + grade(85) + grade(10)
	`
	if got := evalVal(t, src); got != "ABC" {
		t.Errorf("if/else = %v, want ABC", got)
	}
}

func TestWhileLoop(t *testing.T) {
	src := `
		var sum = 0; var i = 0;
		while (i < 10) { sum += i; i++; }
		sum
	`
	if got := evalNum(t, src); got != 45 {
		t.Errorf("while = %v, want 45", got)
	}
}

func TestForLoop(t *testing.T) {
	src := `
		var sum = 0;
		for (var i = 0; i < 5; i++) { sum += i * i; }
		sum
	`
	if got := evalNum(t, src); got != 30 {
		t.Errorf("for = %v, want 30", got)
	}
}

func TestForLoopBreakContinue(t *testing.T) {
	src := `
		var sum = 0;
		for (var i = 0; i < 100; i++) {
			if (i % 2 == 0) { continue; }
			if (i > 10) { break; }
			sum += i;
		}
		sum
	`
	// 1+3+5+7+9 = 25
	if got := evalNum(t, src); got != 25 {
		t.Errorf("break/continue = %v, want 25", got)
	}
}

func TestForOfArray(t *testing.T) {
	src := `
		var total = 0;
		for (x of [1, 2, 3, 4]) { total += x; }
		total
	`
	if got := evalNum(t, src); got != 10 {
		t.Errorf("for-of array = %v, want 10", got)
	}
}

func TestForOfObjectKeys(t *testing.T) {
	src := `
		var ks = "";
		for (let k of {b: 1, a: 2}) { ks += k; }
		ks
	`
	if got := evalVal(t, src); got != "ab" {
		t.Errorf("for-of object = %v, want ab (sorted keys)", got)
	}
}

func TestForOfString(t *testing.T) {
	src := `
		var out = "";
		for (const ch of "abc") { out = ch + out; }
		out
	`
	if got := evalVal(t, src); got != "cba" {
		t.Errorf("for-of string = %v, want cba", got)
	}
}

func TestNestedLoopsBreakInner(t *testing.T) {
	src := `
		var count = 0;
		for (var i = 0; i < 3; i++) {
			for (var j = 0; j < 10; j++) {
				if (j == 2) { break; }
				count++;
			}
		}
		count
	`
	if got := evalNum(t, src); got != 6 {
		t.Errorf("nested break = %v, want 6", got)
	}
}

func TestFunctionsAndClosures(t *testing.T) {
	src := `
		function makeCounter() {
			var n = 0;
			return function() { n++; return n; };
		}
		var c1 = makeCounter();
		var c2 = makeCounter();
		c1(); c1(); c2();
		"" + c1() + c2()
	`
	if got := evalVal(t, src); got != "32" {
		t.Errorf("closures = %v, want 32", got)
	}
}

func TestRecursion(t *testing.T) {
	src := `
		function fib(n) { return n < 2 ? n : fib(n-1) + fib(n-2); }
		fib(15)
	`
	if got := evalNum(t, src); got != 610 {
		t.Errorf("fib(15) = %v, want 610", got)
	}
}

func TestHigherOrderFunctions(t *testing.T) {
	src := `
		function map(arr, f) {
			var out = [];
			for (x of arr) { push(out, f(x)); }
			return out;
		}
		var doubled = map([1,2,3], function(x) { return x * 2; });
		doubled[0] + doubled[1] + doubled[2]
	`
	if got := evalNum(t, src); got != 12 {
		t.Errorf("higher-order = %v, want 12", got)
	}
}

func TestMissingArgsAreNull(t *testing.T) {
	src := `
		function f(a, b) { return b == null ? "missing" : "present"; }
		f(1)
	`
	if got := evalVal(t, src); got != "missing" {
		t.Errorf("missing arg = %v", got)
	}
}

func TestArgumentsArray(t *testing.T) {
	src := `
		function count() { return arguments.length; }
		count(1, 2, 3, 4)
	`
	if got := evalNum(t, src); got != 4 {
		t.Errorf("arguments.length = %v, want 4", got)
	}
}

func TestArraysBasics(t *testing.T) {
	src := `
		var a = [1, 2, 3];
		a[0] = 10;
		a[3] = 40;
		a[0] + a[3] + a.length
	`
	if got := evalNum(t, src); got != 54 {
		t.Errorf("arrays = %v, want 54", got)
	}
}

func TestArrayOutOfRangeReadIsNull(t *testing.T) {
	if got := evalVal(t, "[1,2][5] == null"); got != true {
		t.Errorf("out-of-range read = %v, want null", got)
	}
}

func TestArrayAutoExtend(t *testing.T) {
	src := `
		var a = [];
		a[3] = 1;
		"" + a.length + (a[0] == null)
	`
	if got := evalVal(t, src); got != "4true" {
		t.Errorf("auto-extend = %v", got)
	}
}

func TestObjectsBasics(t *testing.T) {
	src := `
		var o = {name: "pose", "count": 2, nested: {x: 1}};
		o.count = o.count + 1;
		o["extra"] = o.nested.x;
		o.count + o.extra + len(o)
	`
	if got := evalNum(t, src); got != 8 {
		t.Errorf("objects = %v, want 8", got)
	}
}

func TestObjectMissingFieldIsNull(t *testing.T) {
	if got := evalVal(t, "({a: 1}).missing == null"); got != true {
		t.Errorf("missing field = %v, want null", got)
	}
}

func TestReferenceSemantics(t *testing.T) {
	src := `
		var a = [1];
		var b = a;
		push(b, 2);
		a.length
	`
	if got := evalNum(t, src); got != 2 {
		t.Errorf("reference semantics = %v, want 2", got)
	}
}

func TestThrowCatch(t *testing.T) {
	src := `
		function risky(n) {
			if (n < 0) { throw "negative input"; }
			return n * 2;
		}
		var result = "";
		try {
			result = risky(-1);
		} catch (e) {
			result = "caught: " + e;
		}
		result
	`
	if got := evalVal(t, src); got != "caught: negative input" {
		t.Errorf("throw/catch = %v", got)
	}
}

func TestFinallyRuns(t *testing.T) {
	src := `
		var log = "";
		try {
			try { throw "x"; } finally { log += "F"; }
		} catch (e) { log += "C"; }
		log
	`
	if got := evalVal(t, src); got != "FC" {
		t.Errorf("finally = %v, want FC", got)
	}
}

func TestUncaughtThrowSurfacesValue(t *testing.T) {
	_, err := NewContext().Eval(`throw {code: 42};`)
	var rt *RuntimeError
	if !errors.As(err, &rt) {
		t.Fatalf("uncaught throw: %v", err)
	}
	obj, ok := rt.Thrown.(*Object)
	if !ok || obj.Get("code") != float64(42) {
		t.Errorf("Thrown = %v, want object with code 42", rt.Thrown)
	}
}

func TestTypeof(t *testing.T) {
	cases := map[string]string{
		"typeof 1":              "number",
		"typeof 'x'":            "string",
		"typeof true":           "boolean",
		"typeof null":           "null",
		"typeof [1]":            "array",
		"typeof {}":             "object",
		"typeof function() {}":  "function",
		"typeof len":            "function",
		"typeof undefined":      "null",
		"typeof (typeof false)": "string",
	}
	for src, want := range cases {
		if got := evalVal(t, src); got != want {
			t.Errorf("Eval(%q) = %v, want %q", src, got, want)
		}
	}
}

func TestComments(t *testing.T) {
	src := `
		// a line comment
		var x = 1; /* block
		comment */ x += 2;
		x // trailing
	`
	if got := evalNum(t, src); got != 3 {
		t.Errorf("comments = %v, want 3", got)
	}
}

func TestDivisionByZero(t *testing.T) {
	if _, err := NewContext().Eval("1 / 0"); err == nil {
		t.Error("division by zero succeeded")
	}
	if _, err := NewContext().Eval("1 % 0"); err == nil {
		t.Error("modulo by zero succeeded")
	}
}

func TestTypeErrors(t *testing.T) {
	cases := []string{
		"1 + null",
		"'a' - 1",
		"-'x'",
		"null < 1",
		"true * 2",
		"(null)()",
		"5()",
		"null.field",
		"null[0]",
		"(1).member",
	}
	for _, src := range cases {
		if _, err := NewContext().Eval(src); err == nil {
			t.Errorf("Eval(%q) succeeded, want type error", src)
		}
	}
}

func TestStepBudget(t *testing.T) {
	c := NewContext()
	c.SetMaxSteps(10_000)
	_, err := c.Eval("while (true) {}")
	var rt *RuntimeError
	if !errors.As(err, &rt) || !strings.Contains(rt.Msg, "step budget") {
		t.Errorf("infinite loop: err = %v, want step budget error", err)
	}
}

func TestStackDepthLimit(t *testing.T) {
	c := NewContext()
	_, err := c.Eval("function f() { return f(); } f()")
	var rt *RuntimeError
	if !errors.As(err, &rt) || !strings.Contains(rt.Msg, "depth") {
		t.Errorf("infinite recursion: err = %v, want depth error", err)
	}
}

func TestStepBudgetResetsPerInvocation(t *testing.T) {
	c := NewContext()
	c.SetMaxSteps(50_000)
	if err := c.Load("function work() { var s = 0; for (var i = 0; i < 1000; i++) { s += i; } return s; }"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := 0; i < 20; i++ {
		if _, err := c.Call("work"); err != nil {
			t.Fatalf("Call %d: %v (budget must reset per call)", i, err)
		}
	}
}

func TestContextIsolation(t *testing.T) {
	c1 := NewContext()
	c2 := NewContext()
	if err := c1.Load("var secret = 42;"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if _, err := c2.Eval("secret"); err == nil {
		t.Error("contexts share globals; must be isolated")
	}
}

func TestHostBinding(t *testing.T) {
	c := NewContext()
	var got []Value
	c.Bind("call_service", func(args []Value) (Value, error) {
		got = args
		return "service-result", nil
	})
	v, err := c.Eval(`call_service("pose_detector", {frame: 7})`)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if v != "service-result" {
		t.Errorf("host call = %v", v)
	}
	if len(got) != 2 || got[0] != "pose_detector" {
		t.Errorf("host args = %v", got)
	}
	if obj, ok := got[1].(*Object); !ok || obj.Get("frame") != float64(7) {
		t.Errorf("host arg 1 = %v, want object", got[1])
	}
}

func TestHostErrorIsCatchable(t *testing.T) {
	c := NewContext()
	c.Bind("failing", func(args []Value) (Value, error) {
		return nil, errors.New("service unavailable")
	})
	v, err := c.Eval(`
		var out = "";
		try { failing(); } catch (e) { out = e; }
		out
	`)
	if err != nil {
		t.Fatalf("Eval: %v", err)
	}
	if s, ok := v.(string); !ok || !strings.Contains(s, "service unavailable") {
		t.Errorf("caught host error = %v", v)
	}
}

func TestCallUndefinedFunction(t *testing.T) {
	if _, err := NewContext().Call("no_such_fn"); err == nil {
		t.Error("Call on undefined function succeeded")
	}
}

func TestCallWithArgs(t *testing.T) {
	c := NewContext()
	if err := c.Load("function add(a, b) { return a + b; }"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	v, err := c.Call("add", float64(2), float64(3))
	if err != nil {
		t.Fatalf("Call: %v", err)
	}
	if v != float64(5) {
		t.Errorf("Call(add, 2, 3) = %v, want 5", v)
	}
}

func TestHasAndGlobal(t *testing.T) {
	c := NewContext()
	if err := c.Load("function init() {} var state = 9;"); err != nil {
		t.Fatalf("Load: %v", err)
	}
	if !c.Has("init") {
		t.Error("Has(init) = false")
	}
	if c.Has("event_received") {
		t.Error("Has(event_received) = true for undeclared fn")
	}
	v, ok := c.Global("state")
	if !ok || v != float64(9) {
		t.Errorf("Global(state) = %v, %v", v, ok)
	}
}

func TestModuleStatePersistsAcrossCalls(t *testing.T) {
	// The module pattern from the paper: encapsulated state mutated by
	// successive event_received invocations.
	c := NewContext()
	src := `
		var frames_seen = 0;
		function event_received(message) {
			frames_seen++;
			return frames_seen;
		}
	`
	if err := c.Load(src); err != nil {
		t.Fatalf("Load: %v", err)
	}
	for i := 1; i <= 3; i++ {
		v, err := c.Call("event_received", NewObject())
		if err != nil {
			t.Fatalf("Call: %v", err)
		}
		if v != float64(i) {
			t.Errorf("call %d = %v, want %d", i, v, i)
		}
	}
}

func TestNaNHandling(t *testing.T) {
	v := evalVal(t, "num('not a number')")
	if n, ok := v.(float64); !ok || !math.IsNaN(n) {
		t.Errorf("num(junk) = %v, want NaN", v)
	}
	if got := evalVal(t, "is_nan(num('x'))"); got != true {
		t.Errorf("is_nan = %v", got)
	}
}

func TestSyntaxErrors(t *testing.T) {
	cases := []string{
		"var = 3",
		"function () {}", // decl needs name... parsed as expr stmt: function expr without name then `{}` — actually "function () {}" is a valid function expression statement. Hmm.
		"if true {}",
		"while () {}",
		"var a = ;",
		"a +",
		"[1, 2",
		"{a: }",
		"'unterminated",
		"/* unterminated",
		"1 ?? 2",
		"try {}",
		"x ==",
	}
	for _, src := range cases {
		if src == "function () {}" {
			continue // valid: anonymous function expression statement
		}
		if _, err := NewContext().Eval(src); err == nil {
			t.Errorf("Eval(%q) succeeded, want syntax error", src)
		}
	}
}

func TestSyntaxErrorHasPosition(t *testing.T) {
	_, err := NewContext().Eval("var x = 1;\nvar = 2;")
	var se *SyntaxError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want SyntaxError", err)
	}
	if se.Pos.Line != 2 {
		t.Errorf("error line = %d, want 2", se.Pos.Line)
	}
}

func TestRuntimeErrorHasPosition(t *testing.T) {
	_, err := NewContext().Eval("var x = 1;\n\nboom()")
	var rt *RuntimeError
	if !errors.As(err, &rt) {
		t.Fatalf("err = %v, want RuntimeError", err)
	}
	if rt.Pos.Line != 3 {
		t.Errorf("error line = %d, want 3", rt.Pos.Line)
	}
}

func TestStringifyFormats(t *testing.T) {
	cases := map[string]string{
		`str(null)`:           "null",
		`str(1.5)`:            "1.5",
		`str(3)`:              "3",
		`str(true)`:           "true",
		`str([1, "a", null])`: `[1, a, null]`,
		`str({b: 2, a: 1})`:   "{a: 1, b: 2}",
	}
	for src, want := range cases {
		if got := evalVal(t, src); got != want {
			t.Errorf("Eval(%q) = %q, want %q", src, got, want)
		}
	}
}
