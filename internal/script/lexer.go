package script

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
	"unicode/utf8"
)

// SyntaxError reports a lexical or parse failure with its source position.
type SyntaxError struct {
	Pos Position
	Msg string
}

// Error satisfies the error interface.
func (e *SyntaxError) Error() string {
	return fmt.Sprintf("script: syntax error at %s: %s", e.Pos, e.Msg)
}

// lexer scans PipeScript source into tokens.
type lexer struct {
	src  string
	off  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errorf(pos Position, format string, args ...any) error {
	return &SyntaxError{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekRune() (rune, int) {
	if l.off >= len(l.src) {
		return 0, 0
	}
	return utf8.DecodeRuneInString(l.src[l.off:])
}

func (l *lexer) advance() rune {
	r, w := l.peekRune()
	l.off += w
	if r == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return r
}

func (l *lexer) pos() Position { return Position{Line: l.line, Col: l.col} }

// skipSpaceAndComments consumes whitespace, // line comments and /* block
// comments.
func (l *lexer) skipSpaceAndComments() error {
	for {
		r, _ := l.peekRune()
		switch {
		case r == 0:
			return nil
		case unicode.IsSpace(r):
			l.advance()
		case r == '/' && strings.HasPrefix(l.src[l.off:], "//"):
			for {
				r, _ := l.peekRune()
				if r == 0 || r == '\n' {
					break
				}
				l.advance()
			}
		case r == '/' && strings.HasPrefix(l.src[l.off:], "/*"):
			start := l.pos()
			l.advance()
			l.advance()
			closed := false
			for !closed {
				r, _ := l.peekRune()
				if r == 0 {
					return l.errorf(start, "unterminated block comment")
				}
				if r == '*' && strings.HasPrefix(l.src[l.off:], "*/") {
					l.advance()
					l.advance()
					closed = true
					continue
				}
				l.advance()
			}
		default:
			return nil
		}
	}
}

// punctuators, longest first so multi-rune operators win.
var punctuators = []string{
	"===", "!==", "&&", "||", "==", "!=", "<=", ">=",
	"+=", "-=", "*=", "/=", "%=", "++", "--",
	"(", ")", "{", "}", "[", "]", ",", ";", ":", ".", "?",
	"+", "-", "*", "/", "%", "<", ">", "=", "!",
}

// next scans and returns the next token.
func (l *lexer) next() (token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return token{}, err
	}
	pos := l.pos()
	r, _ := l.peekRune()
	if r == 0 {
		return token{kind: tokenEOF, pos: pos}, nil
	}

	switch {
	case unicode.IsDigit(r):
		return l.scanNumber(pos)
	case r == '"' || r == '\'':
		return l.scanString(pos)
	case r == '_' || r == '$' || unicode.IsLetter(r):
		return l.scanIdent(pos)
	}

	rest := l.src[l.off:]
	for _, p := range punctuators {
		if strings.HasPrefix(rest, p) {
			for range p {
				l.advance()
			}
			return token{kind: tokenPunct, text: p, pos: pos}, nil
		}
	}
	return token{}, l.errorf(pos, "unexpected character %q", r)
}

func (l *lexer) scanNumber(pos Position) (token, error) {
	start := l.off
	if strings.HasPrefix(l.src[l.off:], "0x") || strings.HasPrefix(l.src[l.off:], "0X") {
		l.advance()
		l.advance()
		for {
			r, _ := l.peekRune()
			if !isHexDigit(r) {
				break
			}
			l.advance()
		}
		v, err := strconv.ParseUint(l.src[start+2:l.off], 16, 64)
		if err != nil {
			return token{}, l.errorf(pos, "bad hex literal %q", l.src[start:l.off])
		}
		return token{kind: tokenNumber, text: l.src[start:l.off], num: float64(v), pos: pos}, nil
	}

	seenDot, seenExp := false, false
	for {
		r, _ := l.peekRune()
		switch {
		case unicode.IsDigit(r):
			l.advance()
		case r == '.' && !seenDot && !seenExp:
			seenDot = true
			l.advance()
		case (r == 'e' || r == 'E') && !seenExp:
			seenExp = true
			l.advance()
			if nr, _ := l.peekRune(); nr == '+' || nr == '-' {
				l.advance()
			}
		default:
			text := l.src[start:l.off]
			v, err := strconv.ParseFloat(text, 64)
			if err != nil {
				return token{}, l.errorf(pos, "bad number literal %q", text)
			}
			return token{kind: tokenNumber, text: text, num: v, pos: pos}, nil
		}
	}
}

func isHexDigit(r rune) bool {
	return unicode.IsDigit(r) || (r >= 'a' && r <= 'f') || (r >= 'A' && r <= 'F')
}

func (l *lexer) scanString(pos Position) (token, error) {
	quote := l.advance()
	var b strings.Builder
	for {
		r, _ := l.peekRune()
		switch r {
		case 0, '\n':
			return token{}, l.errorf(pos, "unterminated string literal")
		case quote:
			l.advance()
			return token{kind: tokenString, text: b.String(), pos: pos}, nil
		case '\\':
			l.advance()
			esc := l.advance()
			switch esc {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\':
				b.WriteByte('\\')
			case '\'':
				b.WriteByte('\'')
			case '"':
				b.WriteByte('"')
			case '0':
				b.WriteByte(0)
			case 'u':
				var code int
				for i := 0; i < 4; i++ {
					h := l.advance()
					if !isHexDigit(h) {
						return token{}, l.errorf(pos, "bad \\u escape")
					}
					code = code*16 + hexVal(h)
				}
				b.WriteRune(rune(code))
			default:
				return token{}, l.errorf(pos, "unknown escape \\%c", esc)
			}
		default:
			b.WriteRune(l.advance())
		}
	}
}

func hexVal(r rune) int {
	switch {
	case r >= '0' && r <= '9':
		return int(r - '0')
	case r >= 'a' && r <= 'f':
		return int(r-'a') + 10
	default:
		return int(r-'A') + 10
	}
}

func (l *lexer) scanIdent(pos Position) (token, error) {
	start := l.off
	for {
		r, _ := l.peekRune()
		if r == '_' || r == '$' || unicode.IsLetter(r) || unicode.IsDigit(r) {
			l.advance()
			continue
		}
		break
	}
	text := l.src[start:l.off]
	kind := tokenIdent
	if keywords[text] {
		kind = tokenKeyword
	}
	return token{kind: kind, text: text, pos: pos}, nil
}

// lexAll scans the entire source, for the parser.
func lexAll(src string) ([]token, error) {
	l := newLexer(src)
	var out []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		out = append(out, t)
		if t.kind == tokenEOF {
			return out, nil
		}
	}
}
